package klotski_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"klotski"
)

// Lower-bound engine integration tests: certified optimality gaps on every
// planner run, byte-identical plans with bound-guided pruning attached
// (across planners, worker counts, and cold/warm engines), brute-force
// admissibility on exhaustively enumerable fabrics, and gap restoration
// across checkpoint/resume.

// assertSameSequence fails unless got matches ref exactly.
func assertSameSequence(t *testing.T, label string, ref, got *klotski.Plan) {
	t.Helper()
	if got.Cost != ref.Cost {
		t.Fatalf("%s: cost %v != reference %v", label, got.Cost, ref.Cost)
	}
	if len(got.Sequence) != len(ref.Sequence) {
		t.Fatalf("%s: sequence length %d != reference %d", label, len(got.Sequence), len(ref.Sequence))
	}
	for i := range got.Sequence {
		if got.Sequence[i] != ref.Sequence[i] {
			t.Fatalf("%s: sequence diverges at step %d: %v vs %v", label, i, got.Sequence, ref.Sequence)
		}
	}
}

// assertCertifiedOptimal requires a successful optimal-planner run to
// carry a closed certificate: incumbent = lower bound = plan cost, gap 0.
func assertCertifiedOptimal(t *testing.T, label string, plan *klotski.Plan) {
	t.Helper()
	m := plan.Metrics
	if m.OptimalityGap != 0 {
		t.Errorf("%s: OptimalityGap = %v, want 0 on a completed optimal run", label, m.OptimalityGap)
	}
	if m.IncumbentCost != plan.Cost {
		t.Errorf("%s: IncumbentCost = %v, want plan cost %v", label, m.IncumbentCost, plan.Cost)
	}
	if m.LowerBound != plan.Cost {
		t.Errorf("%s: LowerBound = %v, want plan cost %v", label, m.LowerBound, plan.Cost)
	}
	if plan.Audit != nil && plan.Audit.Gap != m.OptimalityGap {
		t.Errorf("%s: audit report gap %v != metrics gap %v", label, plan.Audit.Gap, m.OptimalityGap)
	}
}

// TestCertifiedGapOnEveryPlanner verifies all four planners stamp a
// certificate: the optimal planners close it (gap 0), the baselines
// report a zero (absent) certificate rather than a false claim.
func TestCertifiedGapOnEveryPlanner(t *testing.T) {
	task := buildTinyTask(t)
	astar, err := klotski.PlanAStar(task, klotski.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertCertifiedOptimal(t, "astar", astar)
	dp, err := klotski.PlanDP(task, klotski.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertCertifiedOptimal(t, "dp", dp)

	mrc, err := klotski.PlanMRC(task, klotski.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := mrc.Metrics
	if m.IncumbentCost != 0 || m.LowerBound != 0 || m.OptimalityGap != 0 {
		t.Errorf("mrc: baselines must not claim a certificate, got (%v, %v, %v)",
			m.IncumbentCost, m.LowerBound, m.OptimalityGap)
	}
}

func TestCertifiedGapSuites(t *testing.T) {
	for _, name := range []string{"A", "C"} {
		t.Run(name, func(t *testing.T) {
			s, err := klotski.Suite(name, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{0, 4} {
				astar, err := klotski.PlanAStar(s.Task, klotski.Options{Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				assertCertifiedOptimal(t, fmt.Sprintf("astar/w=%d", w), astar)
				dp, err := klotski.PlanDP(s.Task, klotski.Options{Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				assertCertifiedOptimal(t, fmt.Sprintf("dp/w=%d", w), dp)
			}
		})
	}
}

// assertBoundedByteIdentical is the pruning differential harness: for each
// planner and worker count, a fresh engine is warmed by one cold serial
// run and the warm run's plan must be byte-identical to the unpruned
// reference. Warm-run prune counters must agree across worker counts —
// pruning decisions are a function of the engine state, not of timing.
func assertBoundedByteIdentical(t *testing.T, task *klotski.Task, opts klotski.Options, wantPrune bool) {
	t.Helper()
	refA, err := klotski.PlanAStar(task, opts)
	if err != nil {
		t.Fatalf("reference astar: %v", err)
	}
	refD, err := klotski.PlanDP(task, opts)
	if err != nil {
		t.Fatalf("reference dp: %v", err)
	}
	assertSameSequence(t, "astar-vs-dp", refA, refD)

	workers := []int{1, 2, 4, runtime.NumCPU()}
	planners := []struct {
		name string
		ref  *klotski.Plan
		plan func(o klotski.Options, w int) (*klotski.Plan, error)
	}{
		{"astar", refA, func(o klotski.Options, w int) (*klotski.Plan, error) {
			return klotski.PlanAStarParallel(task, o, w)
		}},
		{"dp", refD, func(o klotski.Options, w int) (*klotski.Plan, error) {
			return klotski.PlanDPParallel(task, o, w)
		}},
	}
	for _, p := range planners {
		pruned := make([]int, 0, len(workers))
		for _, w := range workers {
			// Fresh engine per worker count so every warm run measures
			// pruning against the identical engine state.
			bopts := opts
			bopts.Bound = klotski.NewBoundEngine(task, opts)
			cold, err := p.plan(bopts, 1)
			if err != nil {
				t.Fatalf("%s cold w=%d: %v", p.name, w, err)
			}
			assertSameSequence(t, fmt.Sprintf("%s/cold/w=%d", p.name, w), p.ref, cold)
			warm, err := p.plan(bopts, w)
			if err != nil {
				t.Fatalf("%s warm w=%d: %v", p.name, w, err)
			}
			assertSameSequence(t, fmt.Sprintf("%s/warm/w=%d", p.name, w), p.ref, warm)
			assertCertifiedOptimal(t, fmt.Sprintf("%s/warm/w=%d", p.name, w), warm)
			pruned = append(pruned, warm.Metrics.BoundStatesPruned)
			if warm.Metrics.BoundCutsLearned < 0 || warm.Metrics.BoundCutHits < 0 {
				t.Fatalf("%s warm w=%d: negative bound counters: %+v", p.name, w, warm.Metrics)
			}
		}
		for i := 1; i < len(pruned); i++ {
			if pruned[i] != pruned[0] {
				t.Errorf("%s: BoundStatesPruned varies with workers: %v (workers %v)", p.name, pruned, workers)
			}
		}
		if wantPrune && pruned[0] == 0 {
			t.Errorf("%s: warm run pruned nothing on a fixture with infeasible walls", p.name)
		}
	}
}

func TestBoundedPlansByteIdenticalTiny(t *testing.T) {
	// The tiny task has no infeasible interior, so this pins the inert
	// case: an attached engine that never fires must change nothing.
	assertBoundedByteIdentical(t, buildTinyTask(t), klotski.Options{}, false)
}

func TestBoundedPlansByteIdenticalSuites(t *testing.T) {
	for _, tc := range []struct {
		name  string
		scale float64
	}{{"C", 0.1}, {"E", 0.25}} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := klotski.Suite(tc.name, tc.scale)
			if err != nil {
				t.Fatal(err)
			}
			assertBoundedByteIdentical(t, s.Task, klotski.Options{}, true)
		})
	}
}

// TestBoundedPlansRandomFabrics is the seeded property sweep: random
// HGRID fabrics must keep bounded plans byte-identical too.
func TestBoundedPlansRandomFabrics(t *testing.T) {
	if testing.Short() {
		t.Skip("property test over generated fabrics")
	}
	rng := rand.New(rand.NewSource(20260808))
	const cases = 5
	for i := 0; i < cases; i++ {
		p := klotski.HGRIDScenarioParams{
			Region: klotski.RegionParams{
				Name: fmt.Sprintf("bound-%d", i),
				DCs: []klotski.FabricParams{{
					Pods:        1 + rng.Intn(2),
					RSWPerPod:   2,
					Planes:      4,
					SSWPerPlane: 1 + rng.Intn(2),
					FSWUplinks:  1,
				}},
				HGRID: klotski.HGRIDParams{
					Grids:        2 + rng.Intn(3),
					FADUPerGrid:  1 + rng.Intn(2),
					FAUUPerGrid:  1,
					SSWDownlinks: 1,
				},
				EBs: 2, DRs: 1, EBBs: 1,
			},
			Demand:            klotski.DemandSpec{BaseUtil: 0.30 + 0.15*rng.Float64()},
			V2GridFactor:      1 + rng.Intn(2),
			V2CapFactor:       0.5 + 0.5*rng.Float64(),
			PortHeadroomGrids: 1,
		}
		theta := 0.65 + 0.2*rng.Float64()
		t.Run(fmt.Sprintf("case=%d", i), func(t *testing.T) {
			s, err := klotski.HGRIDScenario(p.Region.Name, p)
			if err != nil {
				t.Fatalf("generating fabric: %v", err)
			}
			_, errA := klotski.PlanAStar(s.Task, klotski.Options{Theta: theta, MaxStates: 500_000})
			if errA != nil {
				if errors.Is(errA, klotski.ErrInfeasible) {
					return // nothing to compare on an infeasible draw
				}
				t.Fatalf("reference: %v", errA)
			}
			assertBoundedByteIdentical(t, s.Task, klotski.Options{Theta: theta, MaxStates: 500_000}, false)
		})
	}
}

// bruteForcePaths enumerates every canonical monotone completion of the
// task's count lattice, returning for each feasible full path its cost —
// an independent brute-force optimum the planners and the bound engine
// are checked against. It also records, per visited (counts, last)
// prefix state, the cheapest feasible completion cost observed from it.
type bruteState struct {
	counts string // fmt of per-type counts
	last   klotski.ActionType
}

func bruteForce(t *testing.T, task *klotski.Task, opts klotski.Options) (best float64, completions map[bruteState]float64) {
	t.Helper()
	totals := task.Counts()
	nTypes := task.NumTypes()
	byType := make([][]int, nTypes)
	for a := 0; a < nTypes; a++ {
		byType[a] = task.BlocksOfType(klotski.ActionType(a))
	}
	best = math.Inf(1)
	completions = make(map[bruteState]float64)

	counts := make([]int, nTypes)
	var seq []int
	var walk func()
	walk = func() {
		done := true
		for a := 0; a < nTypes; a++ {
			if counts[a] < totals[a] {
				done = false
				break
			}
		}
		if done {
			if klotski.VerifyPlan(task, seq, opts) != nil {
				return
			}
			total := klotski.SequenceCost(task, seq, opts.Alpha, klotski.NoLast)
			if total < best {
				best = total
			}
			// Credit every prefix state with this completion's suffix cost.
			for k := 0; k <= len(seq); k++ {
				last := klotski.NoLast
				if k > 0 {
					last = task.Blocks[seq[k-1]].Type
				}
				pc := make([]int, nTypes)
				for _, id := range seq[:k] {
					pc[task.Blocks[id].Type]++
				}
				st := bruteState{fmt.Sprint(pc), last}
				suffix := total - klotski.SequenceCost(task, seq[:k], opts.Alpha, klotski.NoLast)
				if cur, ok := completions[st]; !ok || suffix < cur {
					completions[st] = suffix
				}
			}
			return
		}
		for a := 0; a < nTypes; a++ {
			if counts[a] >= totals[a] {
				continue
			}
			seq = append(seq, byType[a][counts[a]])
			counts[a]++
			walk()
			counts[a]--
			seq = seq[:len(seq)-1]
		}
	}
	walk()
	return best, completions
}

// TestBruteForceOptimalAndAdmissible exhaustively enumerates small
// fabrics: the planners must hit the brute-force optimum exactly, and the
// completion lower bound must never exceed the cheapest feasible
// completion from any reachable state.
func TestBruteForceOptimalAndAdmissible(t *testing.T) {
	fabrics := []struct {
		name string
		task *klotski.Task
	}{{"tiny", buildTinyTask(t)}}
	if s, err := klotski.Suite("C", 0.1); err == nil {
		fabrics = append(fabrics, struct {
			name string
			task *klotski.Task
		}{"suiteC", s.Task})
	}
	for _, f := range fabrics {
		t.Run(f.name, func(t *testing.T) {
			opts := klotski.Options{}
			best, completions := bruteForce(t, f.task, opts)
			if math.IsInf(best, 1) {
				t.Fatal("brute force found no feasible plan")
			}
			plan, err := klotski.PlanAStar(f.task, opts)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(plan.Cost-best) > 1e-9 {
				t.Fatalf("planner cost %v != brute-force optimum %v", plan.Cost, best)
			}
			assertCertifiedOptimal(t, "astar", plan)

			// Admissibility: the counting relaxation must lower-bound the
			// cheapest observed feasible completion from every state.
			nTypes := f.task.NumTypes()
			for st, suffix := range completions {
				counts := parseCounts(st.counts, nTypes)
				lb := klotski.CompletionLowerBound(f.task, counts, st.last, opts.Alpha, opts.MaxRunLength)
				if lb > suffix+1e-9 {
					t.Errorf("inadmissible bound at counts=%v last=%d: lb %v > feasible completion %v",
						counts, st.last, lb, suffix)
				}
			}
		})
	}
}

// trimBrackets strips the surrounding [ ] of a fmt.Sprint'ed int slice.
func trimBrackets(s string) string {
	if len(s) >= 2 && s[0] == '[' && s[len(s)-1] == ']' {
		return s[1 : len(s)-1]
	}
	return s
}

// parseCounts recovers a count vector from its fmt.Sprint form.
func parseCounts(s string, n int) []int {
	counts := make([]int, n)
	fields := trimBrackets(s)
	idx := 0
	cur, have := 0, false
	for i := 0; i <= len(fields); i++ {
		if i == len(fields) || fields[i] == ' ' {
			if have && idx < n {
				counts[idx] = cur
				idx++
			}
			cur, have = 0, false
			continue
		}
		cur = cur*10 + int(fields[i]-'0')
		have = true
	}
	return counts
}

// TestCompletionBoundAlongOptimalPlan is the sampled admissibility
// property on fabrics too large to enumerate: walking the optimal plan,
// the bound from every prefix state must not exceed the plan's own
// remaining cost (a feasible completion).
func TestCompletionBoundAlongOptimalPlan(t *testing.T) {
	s, err := klotski.Suite("E", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	task := s.Task
	opts := klotski.Options{}
	plan, err := klotski.PlanDP(task, opts)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, task.NumTypes())
	for k := 0; k <= len(plan.Sequence); k++ {
		last := klotski.NoLast
		if k > 0 {
			last = task.Blocks[plan.Sequence[k-1]].Type
		}
		remaining := plan.Cost - klotski.SequenceCost(task, plan.Sequence[:k], opts.Alpha, klotski.NoLast)
		lb := klotski.CompletionLowerBound(task, counts, last, opts.Alpha, opts.MaxRunLength)
		if lb > remaining+1e-9 {
			t.Fatalf("inadmissible bound at step %d: lb %v > remaining plan cost %v", k, lb, remaining)
		}
		if k < len(plan.Sequence) {
			counts[task.Blocks[plan.Sequence[k]].Type]++
		}
	}
}

// TestCheckpointGapRestoredAcrossResume verifies the anytime certificate
// travels through interruption: the checkpoint carries the lower bound
// proven so far (gap 1, no incumbent yet), and resuming — across worker
// counts, with a bound engine attached — closes it to gap 0 with the
// byte-identical plan.
func TestCheckpointGapRestoredAcrossResume(t *testing.T) {
	s, err := klotski.Suite("C", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	task := s.Task
	for _, name := range []string{"astar", "dp"} {
		plan := func(o klotski.Options) (*klotski.Plan, error) {
			if name == "astar" {
				return klotski.PlanAStarContext(context.Background(), task, o)
			}
			return klotski.PlanDPContext(context.Background(), task, o)
		}
		ref, err := plan(klotski.Options{})
		if err != nil {
			t.Fatalf("%s reference: %v", name, err)
		}
		for _, dir := range []struct {
			label         string
			first, second int
		}{
			{"serial-to-parallel", 0, 4},
			{"parallel-to-serial", 4, 0},
		} {
			t.Run(name+"/"+dir.label, func(t *testing.T) {
				eng := klotski.NewBoundEngine(task, klotski.Options{})
				_, err := plan(klotski.Options{Workers: dir.first, MaxStates: 6, Bound: eng})
				var intr *klotski.Interrupted
				if !errors.As(err, &intr) {
					t.Fatalf("want *Interrupted under MaxStates=6, got %v", err)
				}
				inc, lb, gap := intr.Checkpoint.Gap()
				if inc != 0 || gap != 1 {
					t.Fatalf("interrupted certificate should be open: got incumbent %v, gap %v", inc, gap)
				}
				if lb <= 0 {
					t.Fatalf("interrupted run proved no lower bound: %v", lb)
				}
				if lb > ref.Cost+1e-9 {
					t.Fatalf("checkpointed lower bound %v exceeds optimal cost %v", lb, ref.Cost)
				}
				got, err := klotski.ResumePlan(context.Background(), intr.Checkpoint,
					klotski.Options{Workers: dir.second})
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				assertSameSequence(t, "resumed", ref, got)
				assertCertifiedOptimal(t, "resumed", got)
				if got.Metrics.LowerBound < lb-1e-9 {
					t.Errorf("resume loosened the certificate: %v < checkpointed %v", got.Metrics.LowerBound, lb)
				}
			})
		}
	}
}

// TestDPAccountingSerialMatchesParallel pins satellite semantics: the
// parallel DP wavefront accounts states under the serial planner's
// definition, so states/op is comparable across worker counts, with
// purely speculative wavefront work reported separately.
func TestDPAccountingSerialMatchesParallel(t *testing.T) {
	for _, tc := range []struct {
		name  string
		scale float64
	}{{"C", 0.1}, {"E", 0.25}} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := klotski.Suite(tc.name, tc.scale)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := klotski.PlanDP(s.Task, klotski.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 4} {
				par, err := klotski.PlanDPParallel(s.Task, klotski.Options{}, w)
				if err != nil {
					t.Fatal(err)
				}
				assertSameSequence(t, fmt.Sprintf("w=%d", w), serial, par)
				if par.Metrics.StatesCreated != serial.Metrics.StatesCreated {
					t.Errorf("w=%d: StatesCreated %d != serial %d",
						w, par.Metrics.StatesCreated, serial.Metrics.StatesCreated)
				}
				if par.Metrics.StatesPopped != serial.Metrics.StatesPopped {
					t.Errorf("w=%d: StatesPopped %d != serial %d",
						w, par.Metrics.StatesPopped, serial.Metrics.StatesPopped)
				}
				if par.Metrics.SpeculativeStates < 0 {
					t.Errorf("w=%d: negative SpeculativeStates %d", w, par.Metrics.SpeculativeStates)
				}
				if serial.Metrics.SpeculativeStates != 0 {
					t.Errorf("serial DP reported speculative states: %d", serial.Metrics.SpeculativeStates)
				}
			}
		})
	}
}
