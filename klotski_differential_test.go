package klotski_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"klotski"
)

// Differential planner testing: the A* (§4.4) and DP (§4.3) planners are
// independently derived optimizers over the same search space, so on every
// input they must agree — same plan cost, and every run-boundary prefix of
// either plan must satisfy the safety checker. Disagreement means one of
// them is wrong; this is the cross-validation harness that catches it.

// boundaryPrefixesSafe asserts that every observable state of the plan —
// the initial state, each run boundary, and the final state (paper
// Eq. 4–6) — passes the satisfiability checker.
func boundaryPrefixesSafe(t *testing.T, task *klotski.Task, plan *klotski.Plan, opts klotski.Options) {
	t.Helper()
	counts := make([]int, task.NumTypes())
	if err := klotski.CheckState(task, counts, opts); err != nil {
		t.Errorf("initial state unsafe: %v", err)
	}
	for i, run := range plan.Runs {
		for _, b := range run.Blocks {
			counts[task.Blocks[b].Type]++
		}
		if err := klotski.CheckState(task, counts, opts); err != nil {
			t.Errorf("state after run %d/%d unsafe: %v", i+1, len(plan.Runs), err)
		}
	}
}

// assertPlannersAgree plans the task with A* and DP and cross-validates:
// identical feasibility verdicts, equal optimal cost, both plans pass the
// independent audit, and all observable prefixes are safe.
func assertPlannersAgree(t *testing.T, task *klotski.Task, opts klotski.Options) {
	t.Helper()
	astar, errA := klotski.PlanAStar(task, opts)
	dp, errD := klotski.PlanDP(task, opts)
	if (errA == nil) != (errD == nil) {
		t.Fatalf("planners disagree on feasibility: astar=%v dp=%v", errA, errD)
	}
	if errA != nil {
		if !errors.Is(errA, klotski.ErrInfeasible) || !errors.Is(errD, klotski.ErrInfeasible) {
			t.Fatalf("unexpected planner errors: astar=%v dp=%v", errA, errD)
		}
		return
	}
	if math.Abs(astar.Cost-dp.Cost) > 1e-9 {
		t.Fatalf("cost disagreement: astar=%v dp=%v\nastar: %s\ndp: %s",
			astar.Cost, dp.Cost, astar, dp)
	}
	for name, plan := range map[string]*klotski.Plan{"astar": astar, "dp": dp} {
		if err := klotski.VerifyPlan(task, plan.Sequence, opts); err != nil {
			t.Errorf("%s plan failed audit: %v", name, err)
		}
		boundaryPrefixesSafe(t, task, plan, opts)
	}
}

// assertIncrementalMatchesFull plans with the incremental satisfiability
// engine on (the default) and off (DisableIncrementalEval), across the
// serial A*, batched-parallel A*, and DP planners, and requires
// byte-identical sequences, exactly equal costs, and identical per-boundary
// CheckState verdicts. The incremental engine re-sums group contributions
// in the classic fold order precisely so this holds bitwise.
func assertIncrementalMatchesFull(t *testing.T, task *klotski.Task, opts klotski.Options) {
	t.Helper()
	fullOpts := opts
	fullOpts.DisableIncrementalEval = true
	planners := []struct {
		name string
		plan func(o klotski.Options) (*klotski.Plan, error)
	}{
		{"astar", func(o klotski.Options) (*klotski.Plan, error) { return klotski.PlanAStar(task, o) }},
		{"astar-parallel", func(o klotski.Options) (*klotski.Plan, error) { return klotski.PlanAStarParallel(task, o, 4) }},
		{"dp", func(o klotski.Options) (*klotski.Plan, error) { return klotski.PlanDP(task, o) }},
	}
	var ref *klotski.Plan
	for _, p := range planners {
		inc, errI := p.plan(opts)
		full, errF := p.plan(fullOpts)
		if (errI == nil) != (errF == nil) {
			t.Fatalf("%s: incremental/full disagree on feasibility: inc=%v full=%v", p.name, errI, errF)
		}
		if errI != nil {
			if !errors.Is(errI, klotski.ErrInfeasible) || !errors.Is(errF, klotski.ErrInfeasible) {
				t.Fatalf("%s: unexpected errors: inc=%v full=%v", p.name, errI, errF)
			}
			continue
		}
		if inc.Cost != full.Cost {
			t.Fatalf("%s: cost differs: incremental=%v full=%v", p.name, inc.Cost, full.Cost)
		}
		if len(inc.Sequence) != len(full.Sequence) {
			t.Fatalf("%s: sequence length differs: incremental=%d full=%d", p.name, len(inc.Sequence), len(full.Sequence))
		}
		for i := range inc.Sequence {
			if inc.Sequence[i] != full.Sequence[i] {
				t.Fatalf("%s: sequences diverge at step %d: incremental=%v full=%v",
					p.name, i, inc.Sequence, full.Sequence)
			}
		}
		// The serial and batched A* must also agree with each other and
		// with DP (costs already cross-checked elsewhere; here we pin the
		// byte-identical claim for the incremental default).
		if ref == nil {
			ref = inc
		} else if p.name != "dp" {
			for i := range inc.Sequence {
				if inc.Sequence[i] != ref.Sequence[i] {
					t.Fatalf("%s: sequence diverges from serial A* at step %d", p.name, i)
				}
			}
		}
		// Per-boundary verdicts must match between the engines.
		counts := make([]int, task.NumTypes())
		if vi, vf := klotski.CheckState(task, counts, opts), klotski.CheckState(task, counts, fullOpts); (vi == nil) != (vf == nil) {
			t.Fatalf("%s: initial-state verdicts differ: inc=%v full=%v", p.name, vi, vf)
		}
		for i, run := range inc.Runs {
			for _, b := range run.Blocks {
				counts[task.Blocks[b].Type]++
			}
			vi := klotski.CheckState(task, counts, opts)
			vf := klotski.CheckState(task, counts, fullOpts)
			if (vi == nil) != (vf == nil) {
				t.Fatalf("%s: verdicts differ after run %d/%d: inc=%v full=%v",
					p.name, i+1, len(inc.Runs), vi, vf)
			}
		}
	}
}

func TestDifferentialPlannersTiny(t *testing.T) {
	assertPlannersAgree(t, buildTinyTask(t), klotski.Options{})
}

func TestIncrementalVsFullTiny(t *testing.T) {
	assertIncrementalMatchesFull(t, buildTinyTask(t), klotski.Options{})
}

func TestIncrementalVsFullSuites(t *testing.T) {
	for _, name := range []string{"A", "B", "C"} {
		t.Run(name, func(t *testing.T) {
			s, err := klotski.Suite(name, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			assertIncrementalMatchesFull(t, s.Task, klotski.Options{})
		})
	}
}

// TestIncrementalVsFullRandomFabrics draws seeded random HGRID fabrics and
// requires the incremental and full engines to produce byte-identical
// plans, costs, and per-boundary verdicts on each.
func TestIncrementalVsFullRandomFabrics(t *testing.T) {
	if testing.Short() {
		t.Skip("property test over generated fabrics")
	}
	rng := rand.New(rand.NewSource(20260806))
	const cases = 6
	for i := 0; i < cases; i++ {
		p := klotski.HGRIDScenarioParams{
			Region: klotski.RegionParams{
				Name: fmt.Sprintf("incprop-%d", i),
				DCs: []klotski.FabricParams{{
					Pods:        1 + rng.Intn(2),
					RSWPerPod:   2,
					Planes:      4,
					SSWPerPlane: 1 + rng.Intn(2),
					FSWUplinks:  1,
				}},
				HGRID: klotski.HGRIDParams{
					Grids:        2 + rng.Intn(3),
					FADUPerGrid:  1 + rng.Intn(2),
					FAUUPerGrid:  1,
					SSWDownlinks: 1,
				},
				EBs: 2, DRs: 1, EBBs: 1,
			},
			Demand:            klotski.DemandSpec{BaseUtil: 0.30 + 0.15*rng.Float64()},
			V2GridFactor:      1 + rng.Intn(2),
			V2CapFactor:       0.5 + 0.5*rng.Float64(),
			PortHeadroomGrids: 1,
		}
		theta := 0.65 + 0.2*rng.Float64()
		t.Run(fmt.Sprintf("case=%d", i), func(t *testing.T) {
			s, err := klotski.HGRIDScenario(p.Region.Name, p)
			if err != nil {
				t.Fatalf("generating fabric: %v", err)
			}
			assertIncrementalMatchesFull(t, s.Task, klotski.Options{Theta: theta, MaxStates: 500_000})
		})
	}
}

func TestDifferentialPlannersSuites(t *testing.T) {
	for _, name := range []string{"A", "B"} {
		t.Run(name, func(t *testing.T) {
			s, err := klotski.Suite(name, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			assertPlannersAgree(t, s.Task, klotski.Options{})
		})
	}
}

// TestDifferentialPlannersRunCap exercises the MaxRunLength extension of
// both planners, where the DP tail dimension and the A* forced-split logic
// were derived independently.
func TestDifferentialPlannersRunCap(t *testing.T) {
	task := buildTinyTask(t)
	for _, maxRun := range []int{1, 2} {
		t.Run(fmt.Sprintf("maxrun=%d", maxRun), func(t *testing.T) {
			assertPlannersAgree(t, task, klotski.Options{MaxRunLength: maxRun, Alpha: 0.1})
		})
	}
}

// TestDifferentialPlannersRandomFabrics is the seeded property test: draw
// random HGRID V1→V2 fabrics — varying grid counts, node counts, capacity
// ratios, port headroom, and utilization bounds — and require planner
// agreement on every one. The seed is fixed, so a failure reproduces.
func TestDifferentialPlannersRandomFabrics(t *testing.T) {
	if testing.Short() {
		t.Skip("property test over generated fabrics")
	}
	rng := rand.New(rand.NewSource(20260805))
	const cases = 8
	for i := 0; i < cases; i++ {
		p := klotski.HGRIDScenarioParams{
			Region: klotski.RegionParams{
				Name: fmt.Sprintf("prop-%d", i),
				DCs: []klotski.FabricParams{{
					Pods:        1 + rng.Intn(2),
					RSWPerPod:   2,
					Planes:      4,
					SSWPerPlane: 1 + rng.Intn(2),
					FSWUplinks:  1,
				}},
				HGRID: klotski.HGRIDParams{
					Grids:        2 + rng.Intn(3),
					FADUPerGrid:  1 + rng.Intn(2),
					FAUUPerGrid:  1,
					SSWDownlinks: 1,
				},
				EBs: 2, DRs: 1, EBBs: 1,
			},
			Demand:            klotski.DemandSpec{BaseUtil: 0.30 + 0.15*rng.Float64()},
			V2GridFactor:      1 + rng.Intn(2),
			V2CapFactor:       0.5 + 0.5*rng.Float64(),
			PortHeadroomGrids: 1,
		}
		theta := 0.65 + 0.2*rng.Float64()
		t.Run(fmt.Sprintf("case=%d", i), func(t *testing.T) {
			s, err := klotski.HGRIDScenario(p.Region.Name, p)
			if err != nil {
				t.Fatalf("generating fabric: %v", err)
			}
			assertPlannersAgree(t, s.Task, klotski.Options{Theta: theta, MaxStates: 500_000})
		})
	}
}
