// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6) at a reduced scale, one benchmark family per artifact. The full
// harness with paper-vs-measured output is cmd/figures; these benchmarks
// measure the same code paths under `go test -bench`.
package klotski_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"klotski"
	"klotski/internal/experiments"
)

// benchScale keeps one planner invocation in the milliseconds range so the
// full -bench=. sweep stays minutes, not hours. cmd/figures runs the same
// experiments at 0.25–1.0.
const benchScale = 0.1

var benchCfg = experiments.Config{Scale: benchScale}

// buildSuite constructs a suite scenario once per benchmark.
func buildSuite(b *testing.B, name string) *klotski.Scenario {
	b.Helper()
	s, err := klotski.Suite(name, benchScale)
	if err != nil {
		b.Fatalf("Suite(%s): %v", name, err)
	}
	return s
}

type plannerCase struct {
	name string
	run  func(*klotski.Task, klotski.Options) (*klotski.Plan, error)
	opts klotski.Options
}

var allPlanners = []plannerCase{
	{"MRC", klotski.PlanMRC, klotski.Options{}},
	// Janus's symmetry-only state space is exponential on these
	// topologies; a bounded budget keeps its time-to-cross measurable
	// (the paper capped it at 24 hours).
	{"Janus", klotski.PlanJanus, klotski.Options{MaxStates: 100_000}},
	{"Klotski-DP", klotski.PlanDP, klotski.Options{}},
	{"Klotski-A*", klotski.PlanAStar, klotski.Options{}},
}

// expectedCross reports planner outcomes that are results, not failures:
// unsupported migration types and exhausted budgets render as the paper's
// crosses.
func expectedCross(err error) bool {
	return errors.Is(err, klotski.ErrUnsupported) || errors.Is(err, klotski.ErrBudget)
}

// BenchmarkTable1MigrationStats regenerates Table 1: per-migration scale
// statistics for the three production migration types.
func BenchmarkTable1MigrationStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("want 3 rows, got %d", len(rows))
		}
	}
}

// BenchmarkTable3Topologies regenerates Table 3: the A–E topology suite.
func BenchmarkTable3Topologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatalf("want 7 rows, got %d", len(rows))
		}
	}
}

// BenchmarkFig8 regenerates Figure 8: each planner on each of topologies
// A–E under HGRID V1→V2 migration. Sub-benchmark times are the per-planner
// planning times whose ratios the paper reports.
func BenchmarkFig8(b *testing.B) {
	for _, topoName := range []string{"A", "B", "C", "D", "E"} {
		s := buildSuite(b, topoName)
		for _, pl := range allPlanners {
			b.Run(fmt.Sprintf("%s/%s", topoName, pl.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := pl.run(s.Task, pl.opts); err != nil && !expectedCross(err) {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig9 regenerates Figure 9: each planner across the three
// migration types. MRC and Janus legitimately fail on E-DMAG (the paper's
// crosses); those sub-benchmarks measure time-to-rejection.
func BenchmarkFig9(b *testing.B) {
	for _, caseName := range []string{"E", "E-DMAG", "E-SSW"} {
		s := buildSuite(b, caseName)
		for _, pl := range allPlanners {
			b.Run(fmt.Sprintf("%s/%s", caseName, pl.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := pl.run(s.Task, pl.opts); err != nil && !expectedCross(err) {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig10 regenerates Figure 10: Klotski-A* against its ablations on
// topology E — without operation blocks, without the heuristic, without
// the satisfiability cache.
func BenchmarkFig10(b *testing.B) {
	s := buildSuite(b, "E")
	symTask := klotski.SymmetryGranularity(s.Task)
	cases := []struct {
		name string
		task *klotski.Task
		opts klotski.Options
	}{
		{"Klotski-w/o-OB", symTask, klotski.Options{}},
		{"Klotski-w/o-A*", s.Task, klotski.Options{DisableHeuristic: true, DisableSecondaryPriority: true}},
		{"Klotski-w/o-ESC", s.Task, klotski.Options{DisableCache: true}},
		{"Klotski-A*", s.Task, klotski.Options{}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := klotski.PlanAStar(c.task, c.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11 regenerates Figure 11: the operation-block factor sweep on
// topology E. The 0.25× case may be infeasible (the paper's cross) — that
// outcome is accepted and its detection time measured.
func BenchmarkFig11(b *testing.B) {
	s := buildSuite(b, "E")
	for _, factor := range []float64{0.25, 0.5, 1, 2, 4} {
		task, err := klotski.Reblock(s.Task, factor)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("factor-%gx", factor), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := klotski.PlanAStar(task, klotski.Options{}); err != nil &&
					factor > 0.25 {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12 regenerates Figure 12: the utilization-bound sweep.
func BenchmarkFig12(b *testing.B) {
	s := buildSuite(b, "E")
	for _, theta := range []float64{0.55, 0.65, 0.75, 0.85, 0.95} {
		b.Run(fmt.Sprintf("theta-%d", int(theta*100)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := klotski.PlanAStar(s.Task, klotski.Options{Theta: theta}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13 regenerates Figure 13: the cost-function α sweep.
func BenchmarkFig13(b *testing.B) {
	s := buildSuite(b, "E")
	for _, alpha := range []float64{0, 0.5, 1.0} {
		b.Run(fmt.Sprintf("alpha-%.1f", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := klotski.PlanAStar(s.Task, klotski.Options{Alpha: alpha}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSecondaryPriority isolates the §4.4 secondary-priority
// tiebreak (finished-action count), a design choice DESIGN.md calls out
// beyond the paper's Fig. 10.
func BenchmarkAblationSecondaryPriority(b *testing.B) {
	s := buildSuite(b, "E")
	for _, c := range []struct {
		name string
		opts klotski.Options
	}{
		{"with", klotski.Options{}},
		{"without", klotski.Options{DisableSecondaryPriority: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := klotski.PlanAStar(s.Task, c.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSatisfiabilityCheck measures one full safety check — the unit of
// work the paper's complexity analysis is built on — across topology sizes.
func BenchmarkSatisfiabilityCheck(b *testing.B) {
	for _, name := range []string{"A", "C", "E"} {
		s := buildSuite(b, name)
		eval := klotski.NewEvaluator(s.Task.Topo)
		view := s.Task.Topo.NewView()
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if viol := eval.Check(view, &s.Task.Demands, klotski.CheckOpts{}); !viol.OK() {
					b.Fatal(viol)
				}
			}
		})
	}
}

// BenchmarkEndToEndPipeline measures the full EDP-Lite path: scenario →
// plan → audit → phase document.
func BenchmarkEndToEndPipeline(b *testing.B) {
	s := buildSuite(b, "C")
	for i := 0; i < b.N; i++ {
		if _, err := klotski.RunPipelineTask(s.Task, klotski.PipelineConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerGuard is the regression-guard fixture consumed by
// cmd/benchguard (see scripts/benchguard.sh): both Klotski planners on
// suite C with a live recorder, reporting search-effort metrics alongside
// ns/op so the guard can tell "got slower" apart from "explores more
// states" — an algorithmic regression moves states/op, a constant-factor
// one moves only ns/op. The parallel variants pin a fixed worker count so
// states/op stays machine-independent: A* commits the identical serial
// frontier (same states/op), while the DP wavefront deterministically
// enumerates the full layer lattice (a larger, but fixed, count).
// The audited cases run the default path — plan plus the independent
// post-planning audit — and the NoAudit twins isolate the planner, so the
// committed baseline pins both the search and the audit replay's
// overhead. The audit replays the plan on a pristine evaluator (one full
// evaluation per run boundary), so its cost is linear in plan length and
// independent of search effort; on this deliberately tiny fixture (a
// ~23-state search) it is a large fraction of ns/op, while at the
// experiment scales (0.25–1.0) the search dominates.
func BenchmarkPlannerGuard(b *testing.B) {
	s := buildSuite(b, "C")
	for _, pl := range []plannerCase{
		{"AStar", klotski.PlanAStar, klotski.Options{}},
		{"DP", klotski.PlanDP, klotski.Options{}},
		{"AStarParallel", klotski.PlanAStar, klotski.Options{Workers: 4}},
		{"DPParallel", klotski.PlanDP, klotski.Options{Workers: 4}},
		{"AStarNoAudit", klotski.PlanAStar, klotski.Options{SkipAudit: true}},
		{"DPNoAudit", klotski.PlanDP, klotski.Options{SkipAudit: true}},
	} {
		b.Run(pl.name, func(b *testing.B) {
			reg := klotski.NewObsRegistry()
			opts := pl.opts
			opts.Recorder = klotski.NewObsRecorder(reg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pl.run(s.Task, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			snap := reg.Snapshot()
			b.ReportMetric(float64(snap.Counters["planner.states_expanded"])/float64(b.N), "states/op")
			hits := snap.Counters["planner.cache_hits"]
			if total := hits + snap.Counters["planner.cache_misses"]; total > 0 {
				b.ReportMetric(float64(hits)/float64(total), "hit-rate")
			}
		})
	}
}

// BenchmarkPlannerGuardLarge is the relational guard fixture: suite E at
// 2.5× the micro-guard's scale, where the search (not fixed setup cost)
// dominates ns/op. cmd/benchguard enforces two relations over it in
// addition to the absolute baseline: the parallel entries must not run
// slower than their serial twins beyond -max-parallel-excess (the adaptive
// policy's job — on a single-CPU host it resolves to the serial path, so
// "parallel" ties serial instead of paying for idle lanes), and the
// audited defaults must not exceed their NoAudit twins beyond
// -max-audit-overhead (the incremental parallel audit engine's job).
//
// The parallel entries use WorkersAdaptive, so their states/op depends on
// the host's core count (the DP wavefront only enumerates its layer
// lattice at ≥2 lanes); they deliberately report no search-effort metrics.
// The serial entries keep the recorder wired so states/op stays guarded at
// this scale too.
//
// The Bounded twins share one lower-bound engine across all b.N
// iterations, the deployment shape of the drift loop: iteration 1 runs
// cold (learning cuts and sealing the exact cost-to-go store) and every
// later iteration prunes against the sealed store, at byte-identical
// plans. Their states/op is therefore the b.N-average of one cold and
// b.N−1 warm searches — run them with -benchtime well above 1x (the
// scripts/benchguard.sh default is 30x) or the cold iteration dominates
// and the -min-prune-ratio relation cannot hold.
func BenchmarkPlannerGuardLarge(b *testing.B) {
	s, err := klotski.Suite("E", 0.25)
	if err != nil {
		b.Fatal(err)
	}
	for _, pl := range []struct {
		name    string
		run     func(*klotski.Task, klotski.Options) (*klotski.Plan, error)
		opts    klotski.Options
		det     bool // states/op machine-independent → report it
		bounded bool // share a warm lower-bound engine across iterations
	}{
		{"AStar", klotski.PlanAStar, klotski.Options{}, true, false},
		{"DP", klotski.PlanDP, klotski.Options{}, true, false},
		{"AStarBounded", klotski.PlanAStar, klotski.Options{}, true, true},
		{"DPBounded", klotski.PlanDP, klotski.Options{}, true, true},
		{"AStarParallel", klotski.PlanAStar, klotski.Options{Workers: klotski.WorkersAdaptive}, false, false},
		{"DPParallel", klotski.PlanDP, klotski.Options{Workers: klotski.WorkersAdaptive}, false, false},
		{"AStarNoAudit", klotski.PlanAStar, klotski.Options{SkipAudit: true}, true, false},
		{"DPNoAudit", klotski.PlanDP, klotski.Options{SkipAudit: true}, true, false},
	} {
		b.Run(pl.name, func(b *testing.B) {
			opts := pl.opts
			if pl.bounded {
				opts.Bound = klotski.NewBoundEngine(s.Task, opts)
			}
			var reg *klotski.ObsRegistry
			if pl.det {
				reg = klotski.NewObsRegistry()
				opts.Recorder = klotski.NewObsRecorder(reg)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pl.run(s.Task, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if reg != nil {
				snap := reg.Snapshot()
				b.ReportMetric(float64(snap.Counters["planner.states_expanded"])/float64(b.N), "states/op")
			}
		})
	}
}

// BenchmarkFleetGuard is the fleet-throughput guard fixture: 8
// PlannerGuard-sized fabrics planned to completion three ways, and the
// ns/op of one full fleet is the makespan cmd/benchguard's
// -max-fleet-excess relation holds against both alternatives:
//
//   - Sequential: one adaptive-parallel plan at a time — the pre-fleet
//     deployment shape. The shared pool must beat it by overlapping the
//     plans' serial phases.
//   - Naive: all 8 plans at once, each spawning its own adaptive worker
//     lanes — the oversubscribed shape the pool exists to replace.
//   - Fleet: all 8 plans admitted to one shared work-stealing pool.
//
// Cut sharing is off so every member's search effort is deterministic
// (cross-plan imports make states-expanded arrival-order dependent), and
// the pool is built outside the timed region — it is process-lifetime
// infrastructure, not per-fleet cost. ReportAllocs pins the scratch-pool
// satellite: per-lane keyer/occupancy/memo buffers are recycled through
// sync.Pool, so allocs/op in the baseline is where a scratch-pool
// regression shows up.
func BenchmarkFleetGuard(b *testing.B) {
	const fleetSize = 8
	tasks := make([]*klotski.Task, fleetSize)
	for i := range tasks {
		s, err := klotski.Suite("C", benchScale)
		if err != nil {
			b.Fatal(err)
		}
		tasks[i] = s.Task
	}
	opts := klotski.Options{Workers: klotski.WorkersAdaptive}

	b.Run("Sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, task := range tasks {
				if _, err := klotski.PlanAStar(task, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("Naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make([]error, fleetSize)
			for j := range tasks {
				wg.Add(1)
				go func(j int) {
					defer wg.Done()
					_, errs[j] = klotski.PlanAStar(tasks[j], opts)
				}(j)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("Fleet", func(b *testing.B) {
		pool := klotski.NewWorkerPool(0, nil)
		defer pool.Close()
		members := make([]klotski.FleetMember, fleetSize)
		for j := range tasks {
			members[j] = klotski.FleetMember{
				Name:    fmt.Sprintf("fabric-%d", j),
				Task:    tasks[j],
				Options: opts,
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := klotski.PlanFleet(context.Background(), members, klotski.FleetOptions{
				Pool:         pool,
				NoSharedCuts: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Failed != 0 {
				b.Fatalf("fleet run failed: %s", rep)
			}
		}
	})
}

// BenchmarkCheckIncremental isolates the incremental satisfiability engine
// at the planner level: both Klotski planners on topology E with
// per-destination-group memoization (the default) versus the classic full
// evaluation per cache miss. Plans are byte-identical between the modes;
// only the per-check cost differs.
func BenchmarkCheckIncremental(b *testing.B) {
	s := buildSuite(b, "E")
	for _, pl := range []plannerCase{
		{"AStar", klotski.PlanAStar, klotski.Options{}},
		{"DP", klotski.PlanDP, klotski.Options{}},
	} {
		for _, mode := range []struct {
			name    string
			disable bool
		}{
			{"incremental", false},
			{"full", true},
		} {
			b.Run(fmt.Sprintf("%s/%s", pl.name, mode.name), func(b *testing.B) {
				opts := pl.opts
				opts.DisableIncrementalEval = mode.disable
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := pl.run(s.Task, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEvaluatorCheckDelta is the evaluator micro-benchmark: one
// circuit flips per iteration and the state is re-verified — via CheckDelta
// fed the tracked touched elements, versus a classic full Check. The ratio
// is the per-check win the incremental engine delivers to every planner
// cache miss.
func BenchmarkEvaluatorCheckDelta(b *testing.B) {
	s := buildSuite(b, "C")
	tp := s.Task.Topo
	ck := klotski.CircuitID(0)
	b.Run("delta", func(b *testing.B) {
		eval := klotski.NewEvaluator(tp)
		view := tp.NewView()
		view.Track()
		eval.CheckDelta(view, nil, nil, &s.Task.Demands, klotski.CheckOpts{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			view.SetCircuitActive(ck, i%2 == 1)
			tsw, tck := view.TakeTouched()
			tsw, tck = klotski.ExpandTouched(tp, tsw, tck)
			eval.CheckDelta(view, tsw, tck, &s.Task.Demands, klotski.CheckOpts{})
		}
	})
	b.Run("full", func(b *testing.B) {
		eval := klotski.NewEvaluator(tp)
		view := tp.NewView()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			view.SetCircuitActive(ck, i%2 == 1)
			eval.Check(view, &s.Task.Demands, klotski.CheckOpts{})
		}
	})
}

// BenchmarkCheckDemandDelta is the demand-side evaluator micro-benchmark:
// one demand rate drifts per iteration and the state is re-verified — via
// CheckDemandDelta fed the changed index (invalidating only the dirty
// destination groups), versus a classic full Check. The ratio is the
// per-observation win drift-aware replanning gets from the incremental
// engine.
func BenchmarkCheckDemandDelta(b *testing.B) {
	s := buildSuite(b, "C")
	tp := s.Task.Topo
	b.Run("delta", func(b *testing.B) {
		ds := s.Task.Demands.Clone()
		eval := klotski.NewEvaluator(tp)
		view := tp.NewView()
		changed := []int32{0}
		eval.CheckDemandDelta(view, nil, &ds, klotski.CheckOpts{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			di := i % len(ds.Demands)
			ds.Demands[di].Rate *= 1.0001
			changed[0] = int32(di)
			eval.CheckDemandDelta(view, changed, &ds, klotski.CheckOpts{})
		}
	})
	b.Run("full", func(b *testing.B) {
		ds := s.Task.Demands.Clone()
		eval := klotski.NewEvaluator(tp)
		view := tp.NewView()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			di := i % len(ds.Demands)
			ds.Demands[di].Rate *= 1.0001
			eval.Check(view, &ds, klotski.CheckOpts{})
		}
	})
}

// BenchmarkAStarBatchedBoundary measures serial A* against the
// frontier-warming parallel variant on topology E: worker lanes resolve
// the top of the open list's satisfiability verdicts ahead of the serial
// search loop, which then commits expansions in the identical order.
func BenchmarkAStarBatchedBoundary(b *testing.B) {
	s := buildSuite(b, "E")
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := klotski.PlanAStar(s.Task, klotski.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := klotski.PlanAStarParallel(s.Task, klotski.Options{}, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOverlay isolates the incremental view builder: applying
// block deltas between consecutively checked states versus rebuilding the
// intermediate topology from scratch for every satisfiability check.
func BenchmarkAblationOverlay(b *testing.B) {
	s := buildSuite(b, "E")
	for _, c := range []struct {
		name string
		opts klotski.Options
	}{
		{"incremental", klotski.Options{}},
		{"rebuild", klotski.Options{DisableIncrementalView: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := klotski.PlanDP(s.Task, c.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelPrecheck measures the DP planner with and without the
// wavefront-parallel sweep on topology E. The speedup tracks core count
// (on a single-CPU machine the two are identical — the wavefront disables
// itself below two usable workers).
func BenchmarkParallelPrecheck(b *testing.B) {
	s := buildSuite(b, "E")
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := klotski.PlanDP(s.Task, klotski.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := klotski.PlanDPParallel(s.Task, klotski.Options{}, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
