package klotski_test

import (
	"context"
	"reflect"
	"testing"

	"klotski"
)

// TestPlanFleetFacade drives fleet planning entirely through the public
// API: several members over the same fabric planned concurrently under
// one shared worker pool, every plan byte-identical to its solo serial
// reference, aggregate accounting consistent, and the sched/fleet
// counters visible through the facade's observability registry.
func TestPlanFleetFacade(t *testing.T) {
	task := buildTinyTask(t)
	refA, err := klotski.PlanAStar(task, klotski.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refD, err := klotski.PlanDP(task, klotski.Options{})
	if err != nil {
		t.Fatal(err)
	}

	reg := klotski.NewObsRegistry()
	rec := klotski.NewObsRecorder(reg)
	pool := klotski.NewWorkerPool(4, rec)
	defer pool.Close()

	opts := klotski.Options{Workers: klotski.WorkersAdaptive}
	members := []klotski.FleetMember{
		{Name: "a1", Task: task, Planner: klotski.FleetPlannerAStar, Options: opts},
		{Name: "d1", Task: task, Planner: klotski.FleetPlannerDP, Options: opts},
		{Name: "a2", Task: task, Planner: klotski.FleetPlannerAStar, Options: opts, Priority: 1},
	}
	rep, err := klotski.PlanFleet(context.Background(), members, klotski.FleetOptions{
		Pool:     pool,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(members) || rep.Failed != 0 {
		t.Fatalf("completed %d, failed %d of %d members: %s", rep.Completed, rep.Failed, len(members), rep)
	}
	for i := range rep.Members {
		m := &rep.Members[i]
		ref := refA
		if members[i].Planner == klotski.FleetPlannerDP {
			ref = refD
		}
		if m.Err != nil {
			t.Fatalf("member %s: %v", m.Name, m.Err)
		}
		if !reflect.DeepEqual(m.Plan.Sequence, ref.Sequence) || m.Plan.Cost != ref.Cost {
			t.Fatalf("member %s diverged from its solo plan", m.Name)
		}
	}
	if rep.TotalCost != float64(len(members)-1)*refA.Cost+refD.Cost {
		t.Errorf("total cost %.6f inconsistent with member costs", rep.TotalCost)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["fleet.plans_admitted"]; got < int64(len(members)) {
		t.Errorf("fleet.plans_admitted = %d, want >= %d", got, len(members))
	}
}

// TestNewWorkerPoolDefaults exercises the zero-worker default and the
// double-Close guard through the facade.
func TestNewWorkerPoolDefaults(t *testing.T) {
	pool := klotski.NewWorkerPool(0, nil)
	if pool.Workers() < 1 {
		t.Fatalf("default pool budget %d", pool.Workers())
	}
	pool.Close()
	pool.Close() // idempotent
	if _, err := klotski.PlanFleet(context.Background(), nil, klotski.FleetOptions{}); err == nil {
		t.Fatal("PlanFleet accepted a nil pool")
	}
}
