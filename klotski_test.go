package klotski_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"klotski"
)

// buildTinyTask constructs a small migration entirely through the public
// API: two old bridges out, three new ones in, port-limited.
func buildTinyTask(t testing.TB) *klotski.Task {
	t.Helper()
	topo := klotski.NewTopology("api-test")
	src := topo.AddSwitch(klotski.Switch{Name: "src", Role: klotski.RoleRSW})
	dst := topo.AddSwitch(klotski.Switch{Name: "dst", Role: klotski.RoleEBB})
	task := &klotski.Task{Name: "api-swap", Topo: topo}
	d := task.AddType(klotski.ActionTypeInfo{Name: "drain", Op: klotski.Drain, Role: klotski.RoleFADU})
	u := task.AddType(klotski.ActionTypeInfo{Name: "undrain", Op: klotski.Undrain, Role: klotski.RoleFADU})
	for i := 0; i < 2; i++ {
		s := topo.AddSwitch(klotski.Switch{Name: "old" + string(rune('0'+i)), Role: klotski.RoleFADU, Generation: 1})
		topo.AddCircuit(src, s, 1)
		topo.AddCircuit(s, dst, 1)
		task.AddBlock(klotski.Block{Type: d, Switches: []klotski.SwitchID{s}})
	}
	for i := 0; i < 3; i++ {
		s := topo.AddSwitch(klotski.Switch{Name: "new" + string(rune('0'+i)), Role: klotski.RoleFADU, Generation: 2})
		topo.SetSwitchActive(s, false)
		topo.AddCircuit(src, s, 1)
		topo.AddCircuit(s, dst, 1)
		task.AddBlock(klotski.Block{Type: u, Switches: []klotski.SwitchID{s}})
	}
	topo.SetPorts(src, 3)
	task.Demands.Add(klotski.Demand{Name: "d", Src: src, Dst: dst, Rate: 1.0})
	return task
}

func TestPublicAPIPlanAuditExecute(t *testing.T) {
	task := buildTinyTask(t)
	plan, err := klotski.PlanAStar(task, klotski.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := klotski.VerifyPlan(task, plan.Sequence, klotski.Options{}); err != nil {
		t.Fatal(err)
	}
	rep, err := klotski.NewExecutor(task).Execute(plan.Sequence, klotski.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.BoundaryViolations != 0 {
		t.Fatalf("execution: %s", rep)
	}
}

func TestPublicAPIAllPlannersAgree(t *testing.T) {
	task := buildTinyTask(t)
	opt, err := klotski.PlanAStar(task, klotski.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dp, err := klotski.PlanDP(task, klotski.Options{}); err != nil || math.Abs(dp.Cost-opt.Cost) > 1e-9 {
		t.Fatalf("DP: %v / %v", dp, err)
	}
	if j, err := klotski.PlanJanus(task, klotski.Options{}); err != nil || math.Abs(j.Cost-opt.Cost) > 1e-9 {
		t.Fatalf("Janus: %v / %v", j, err)
	}
	mrc, err := klotski.PlanMRC(task, klotski.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mrc.Cost < opt.Cost-1e-9 {
		t.Fatalf("MRC %v beat optimal %v", mrc.Cost, opt.Cost)
	}
}

func TestPublicAPISuiteAndSymmetry(t *testing.T) {
	s, err := klotski.Suite("A", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	sym := klotski.SymmetryGranularity(s.Task)
	if sym.NumActions() < s.Task.NumActions() {
		t.Errorf("symmetry granularity should not coarsen: %d vs %d",
			sym.NumActions(), s.Task.NumActions())
	}
	var ops []klotski.SwitchID
	for _, b := range s.Task.Blocks {
		ops = append(ops, b.Switches...)
	}
	blocks := klotski.StrictSymmetryBlocks(s.Task.Topo, ops)
	if len(blocks) == 0 {
		t.Fatal("no symmetry blocks")
	}
}

func TestPublicAPINPDPipeline(t *testing.T) {
	js := `{
		"version": 1,
		"name": "api-region",
		"fabric": [{"dc": 0, "pods": 2, "rswPerPod": 2, "planes": 4, "sswPerPlane": 2, "fswUplinks": 1}],
		"hgrid": {"grids": 4, "faduPerGrid": 2, "fauuPerGrid": 1, "sswDownlinks": 1},
		"eb": {"count": 2, "linkTbps": 40},
		"dr": {"count": 1, "linkTbps": 80},
		"bb": {"ebbs": 1},
		"migration": {"kind": "hgrid-v1-v2"}
	}`
	doc, err := klotski.LoadNPD(bytes.NewReader([]byte(js)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := klotski.RunPipeline(doc, klotski.PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Document.Phases) == 0 {
		t.Fatal("pipeline produced no phases")
	}
	var buf bytes.Buffer
	if err := res.Document.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty plan document")
	}
}

func TestPublicAPIErrorsAreMatchable(t *testing.T) {
	task := buildTinyTask(t)
	task.Demands.Demands[0].Rate = 100
	if _, err := klotski.PlanAStar(task, klotski.Options{}); !errors.Is(err, klotski.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	task2 := buildTinyTask(t)
	task2.TopologyChanging = true
	if _, err := klotski.PlanMRC(task2, klotski.Options{}); !errors.Is(err, klotski.ErrUnsupported) {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
}

func TestPublicAPIReblockFactors(t *testing.T) {
	s, err := klotski.Suite("B", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0.5, 2} {
		rb, err := klotski.Reblock(s.Task, f)
		if err != nil {
			t.Fatalf("factor %v: %v", f, err)
		}
		if rb.NumSwitchOps() != s.Task.NumSwitchOps() {
			t.Errorf("factor %v changed switch ops", f)
		}
	}
}
