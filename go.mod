module klotski

go 1.22
