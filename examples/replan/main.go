// Mid-migration replanning (paper §7.1–7.2): the events that force a
// months-long migration to change course, end to end.
//
//  1. Demand growth: plan with a traffic forecast so that each step is
//     checked against the demand expected *when it executes*, re-planning
//     where growth breaks the original plan.
//  2. Traffic surge: a service changes behaviour mid-migration (the
//     paper's warm-storage incident); the remaining steps are re-planned
//     against the new demand.
//  3. Out-of-band outage: routine maintenance not controlled by Klotski
//     takes a switch down; the remainder is re-planned on the real
//     topology.
//
// Run with: go run ./examples/replan [-scale 0.2]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"klotski"
)

func main() {
	scale := flag.Float64("scale", 0.2, "topology scale")
	flag.Parse()

	scenario, err := klotski.Suite("C", *scale)
	if err != nil {
		log.Fatal(err)
	}
	task := scenario.Task
	fmt.Printf("%s — %d actions\n\n", scenario.Description, task.NumActions())

	// 1. Forecast-integrated planning through the pipeline.
	fmt.Println("1. planning under a demand forecast (+0.5% per step):")
	res, err := klotski.RunPipelineTask(task, klotski.PipelineConfig{
		Forecast: klotski.Forecast{GrowthPerStep: 0.005},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   plan cost %.0f in %d runs; forecast integration re-planned %d time(s)\n\n",
		res.Plan.Cost, len(res.Plan.Runs), res.Replans)

	// 2. Surge mid-migration: execute the first two runs, then a surge
	//    hits and the remainder is re-planned.
	base, err := klotski.PlanAStar(task, klotski.Options{})
	if err != nil {
		log.Fatal(err)
	}
	executed := []int{}
	for _, run := range base.Runs[:2] {
		executed = append(executed, run.Blocks...)
	}
	surged := (klotski.Surge{Fraction: 0.5, Multiplier: 1.15}).
		Apply(task.Demands, rand.New(rand.NewSource(7)))
	fmt.Printf("2. surge after %d executed actions (half the demands ×1.15):\n", len(executed))
	re, err := klotski.ReplanMigration(task, executed, &surged, klotski.PipelineConfig{})
	if err != nil {
		fmt.Printf("   remainder unplannable under surge: %v\n\n", err)
	} else {
		fmt.Printf("   original remainder cost %.0f → replanned cost %.0f under surge\n\n",
			base.Cost-klotski.SequenceCost(task, executed, 0, klotski.NoLast), re.Cost)
	}

	// 3. Out-of-band outage: a fabric switch is taken down by maintenance.
	var victim klotski.SwitchID = -1
	operated := map[klotski.SwitchID]bool{}
	for _, b := range task.Blocks {
		for _, sw := range b.Switches {
			operated[sw] = true
		}
	}
	for i := 0; i < task.Topo.NumSwitches(); i++ {
		sw := task.Topo.Switch(klotski.SwitchID(i))
		if sw.Role == klotski.RoleFSW && !operated[sw.ID] {
			victim = sw.ID
			break
		}
	}
	fmt.Printf("3. maintenance takes %s down mid-migration:\n", task.Topo.Switch(victim).Name)
	re2, err := klotski.ReplanAfterOutage(task, executed, []klotski.SwitchID{victim}, klotski.PipelineConfig{})
	if err != nil {
		fmt.Printf("   remainder unplannable around the outage: %v\n", err)
		return
	}
	fmt.Printf("   replanned remainder: cost %.0f in %d runs (%d actions left)\n",
		re2.Cost, len(re2.Runs), len(re2.Sequence))
}
