// HGRID V1→V2 migration at regional scale (paper §2.4, Fig. 3a): every
// fabric-aggregation grid of a six-building region is decommissioned and
// replaced by a disaggregated generation with more, smaller nodes.
//
// The example shows the two forces the planner balances:
//
//   - capacity: draining grids concentrates traffic on the survivors, so
//     drains happen in θ-bounded waves;
//   - ports: spine switches cannot host the old and the full new wiring at
//     once, so undrains cannot simply run ahead.
//
// It then sweeps the utilization bound θ to show how operating headroom
// buys shorter migrations (the paper's Fig. 12), and compares all four
// planners on the same task (Fig. 8's experiment, one topology).
//
// Run with: go run ./examples/hgridmigration [-scale 0.2]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"klotski"
)

func main() {
	scale := flag.Float64("scale", 0.2, "topology scale (1 = paper-sized topology E)")
	flag.Parse()

	scenario, err := klotski.Suite("E", *scale)
	if err != nil {
		log.Fatal(err)
	}
	st := scenario.Task.Topo.Stats()
	ts := scenario.Task.Stats()
	fmt.Printf("%s\n", scenario.Description)
	fmt.Printf("region: %d switches, %d circuits, %.0f Tbps up; migration touches %d switches in %d blocks\n\n",
		st.Switches, st.Circuits, st.Capacity, ts.Switches, ts.Actions)

	// Plan at the production default θ = 0.75.
	plan, err := klotski.PlanAStar(scenario.Task, klotski.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
	fmt.Println()

	// θ sweep: looser utilization bounds permit wider drain waves and
	// therefore cheaper plans (Fig. 12).
	fmt.Println("utilization-bound sweep (paper Fig. 12):")
	for _, theta := range []float64{0.55, 0.65, 0.75, 0.85, 0.95} {
		p, err := klotski.PlanAStar(scenario.Task, klotski.Options{Theta: theta})
		if err != nil {
			if errors.Is(err, klotski.ErrInfeasible) {
				fmt.Printf("  θ=%.2f: no safe plan exists\n", theta)
				continue
			}
			log.Fatal(err)
		}
		fmt.Printf("  θ=%.2f: optimal cost %2.0f (%d runs)\n", theta, p.Cost, len(p.Runs))
	}
	fmt.Println()

	// Planner comparison on this task (Fig. 8, one topology).
	fmt.Println("planner comparison:")
	type planner struct {
		name string
		run  func(*klotski.Task, klotski.Options) (*klotski.Plan, error)
	}
	for _, pl := range []planner{
		{"MRC", klotski.PlanMRC},
		{"Janus", klotski.PlanJanus},
		{"Klotski-DP", klotski.PlanDP},
		{"Klotski-A*", klotski.PlanAStar},
	} {
		start := time.Now()
		p, err := pl.run(scenario.Task, klotski.Options{})
		elapsed := time.Since(start).Round(time.Millisecond)
		if err != nil {
			fmt.Printf("  %-11s ✗ %v\n", pl.name, err)
			continue
		}
		fmt.Printf("  %-11s cost %2.0f in %8s (%d checks)\n", pl.name, p.Cost, elapsed, p.Metrics.Checks)
	}
}
