// Quickstart: build a small migration task by hand, plan it, audit it, and
// read the result.
//
// The scenario is the smallest interesting migration: a row of old
// aggregation switches is replaced by a new generation with more capacity,
// but the uplink switch only has spare ports for one new device at a time —
// so "undrain everything, then drain everything" is physically impossible
// and the planner must interleave.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"klotski"
)

func main() {
	// --- Topology universe -------------------------------------------------
	// One traffic source (a rack switch) and one sink (a backbone router),
	// bridged by 3 old switches (active) and 3 new ones (not yet in
	// service). All six exist physically; activity flags say who carries
	// traffic today.
	topo := klotski.NewTopology("quickstart")
	src := topo.AddSwitch(klotski.Switch{Name: "rsw", Role: klotski.RoleRSW})
	dst := topo.AddSwitch(klotski.Switch{Name: "ebb", Role: klotski.RoleEBB})

	task := &klotski.Task{Name: "swap-aggregation-row", Topo: topo}
	drainOld := task.AddType(klotski.ActionTypeInfo{
		Name: "drain-old-agg", Op: klotski.Drain, Role: klotski.RoleFADU,
	})
	undrainNew := task.AddType(klotski.ActionTypeInfo{
		Name: "undrain-new-agg", Op: klotski.Undrain, Role: klotski.RoleFADU,
	})

	for i := 0; i < 3; i++ {
		old := topo.AddSwitch(klotski.Switch{
			Name: fmt.Sprintf("agg-old-%d", i), Role: klotski.RoleFADU, Generation: 1,
		})
		topo.AddCircuit(src, old, 1.0) // 1 Tbps
		topo.AddCircuit(old, dst, 1.0)
		task.AddBlock(klotski.Block{Type: drainOld, Switches: []klotski.SwitchID{old}})

		new := topo.AddSwitch(klotski.Switch{
			Name: fmt.Sprintf("agg-new-%d", i), Role: klotski.RoleFADU, Generation: 2,
		})
		topo.SetSwitchActive(new, false) // not yet onboarded
		topo.AddCircuit(src, new, 1.6)   // new generation: more capacity
		topo.AddCircuit(new, dst, 1.6)
		task.AddBlock(klotski.Block{Type: undrainNew, Switches: []klotski.SwitchID{new}})
	}

	// The physical constraint that makes planning non-trivial: the rack
	// switch has 6 circuits wired but only 4 ports live at any moment.
	topo.SetPorts(src, 4)

	// --- Traffic -----------------------------------------------------------
	// 1.5 Tbps flows src → dst; ECMP spreads it across whatever bridges
	// are up. No intermediate state may push any circuit above θ = 75%.
	task.Demands.Add(klotski.Demand{Name: "uplink", Src: src, Dst: dst, Rate: 1.5})

	// --- Plan --------------------------------------------------------------
	plan, err := klotski.PlanAStar(task, klotski.Options{Theta: 0.75})
	if err != nil {
		log.Fatalf("planning failed: %v", err)
	}
	fmt.Print(plan)
	fmt.Printf("planner effort: %d states, %d satisfiability checks (%d answered from cache)\n\n",
		plan.Metrics.StatesCreated, plan.Metrics.Checks, plan.Metrics.CacheHits)

	// --- Audit and inspect --------------------------------------------------
	if err := klotski.VerifyPlan(task, plan.Sequence, klotski.Options{}); err != nil {
		log.Fatalf("audit failed: %v", err)
	}
	doc, err := klotski.BuildPlanDocument(task, plan, klotski.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network state after each run:")
	for _, ph := range doc.Phases {
		fmt.Printf("  phase %d %-18s: %d switches up, %.1f Tbps capacity, max util %.0f%%\n",
			ph.Index, "("+ph.Op+")", ph.ActiveSwitches, ph.CapacityTbps, ph.MaxUtilization*100)
	}
}
