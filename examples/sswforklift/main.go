// SSW forklift migration (paper §2.4, Fig. 3b): every spine switch of one
// building is replaced in place with new-generation hardware, and the
// execution is then replayed in the simulator with worst-case intra-run
// asynchrony to expose the traffic-funneling phenomenon of §2.2.
//
// The simulator drains one circuit at a time within each run: the planner
// only guarantees the run *boundaries*, so mid-run states can exceed θ —
// that is funneling. Planning again with funneling headroom
// (Options.FunnelFactor) buys margin for exactly those transients.
//
// Run with: go run ./examples/sswforklift [-scale 0.2]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"klotski"
)

func main() {
	scale := flag.Float64("scale", 0.2, "topology scale (1 = paper-sized)")
	flag.Parse()

	scenario, err := klotski.Suite("E-SSW", *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(scenario.Description)

	plan, err := klotski.PlanAStar(scenario.Task, klotski.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)

	// Replay the plan three ways: atomically (what the planner checked),
	// block-asynchronously, and circuit-asynchronously (worst case).
	executor := klotski.NewExecutor(scenario.Task)
	fmt.Println("\nexecution replay (same plan, increasing asynchrony):")
	for _, g := range []struct {
		name string
		g    klotski.SimGranularity
	}{
		{"atomic runs (boundaries only)", klotski.GranularityRun},
		{"asynchronous blocks", klotski.GranularityBlock},
		{"asynchronous circuits (funneling)", klotski.GranularityCircuit},
	} {
		rep, err := executor.Execute(plan.Sequence, klotski.SimOptions{Granularity: g.g, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-34s peak util %.1f%%, %d transient excursions over θ\n",
			g.name+":", rep.PeakUtil*100, rep.TransientViolations)
	}

	// Plan again with funneling headroom and compare the worst-case replay.
	guarded, err := klotski.PlanAStar(scenario.Task, klotski.Options{FunnelFactor: 1.2})
	if err != nil {
		if errors.Is(err, klotski.ErrInfeasible) {
			fmt.Println("\nfunneling headroom 1.2 leaves no feasible plan at this scale")
			return
		}
		log.Fatal(err)
	}
	rep, err := executor.Execute(guarded.Sequence, klotski.SimOptions{
		Granularity: klotski.GranularityCircuit, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith funneling headroom (FunnelFactor=1.2, plan cost %.0f):\n", guarded.Cost)
	fmt.Printf("  asynchronous circuits:             peak util %.1f%%, %d transient excursions over θ\n",
		rep.PeakUtil*100, rep.TransientViolations)
}
