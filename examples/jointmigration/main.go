// Joint multi-region migration (paper §2.2, "Consider multiple DCs"):
// two regions are migrated in the same period, coupled by inter-region
// traffic over WAN circuits — so a combination of states that is safe
// per-region can be jointly unsafe, and the regions must be planned as one
// problem.
//
// The example builds two regions each undergoing HGRID V1→V2, merges them
// into a joint task (per-region action types — separate field crews),
// plans it, renders the timeline, and then demonstrates the §2.2 coupling
// directly: it scales the inter-region demand up until independently-valid
// orderings stop verifying jointly.
//
// Run with: go run ./examples/jointmigration [-scale 0.12]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"klotski"
)

func main() {
	scale := flag.Float64("scale", 0.12, "per-region topology scale")
	flag.Parse()

	paramsA, err := klotski.SuiteParams("A", *scale)
	if err != nil {
		log.Fatal(err)
	}
	paramsB, err := klotski.SuiteParams("B", *scale)
	if err != nil {
		log.Fatal(err)
	}

	joint, err := klotski.JointScenario("two-regions", klotski.JointParams{
		A: paramsA, B: paramsB,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n%d blocks across %d action types, %d demands (incl. inter-region)\n\n",
		joint.Description, joint.Task.NumActions(), joint.Task.NumTypes(), joint.Task.Demands.Len())

	plan, err := klotski.PlanAStar(joint.Task, klotski.Options{})
	if err != nil {
		log.Fatal(err)
	}
	doc, err := klotski.BuildPlanDocument(joint.Task, plan, klotski.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := klotski.WriteTimeline(os.Stdout, doc); err != nil {
		log.Fatal(err)
	}

	// The coupling, made concrete: amplify inter-region demand and watch
	// the joint problem tighten — first costlier plans, then infeasible —
	// while each region in isolation would still consider itself fine.
	fmt.Println("\ninter-region coupling (same regions, heavier WAN traffic):")
	base := joint.Task.Demands.Clone()
	for _, boost := range []float64{1, 2, 4, 8} {
		var ds klotski.DemandSet
		for _, d := range base.Demands {
			if len(d.Name) > 5 && d.Name[:5] == "inter" {
				d.Rate *= boost
			}
			ds.Add(d)
		}
		probe := joint.Task.WithDemands(ds)
		p, err := klotski.PlanAStar(probe, klotski.Options{})
		if err != nil {
			fmt.Printf("  inter-region ×%g: no jointly safe plan (%v)\n", boost, err)
			continue
		}
		fmt.Printf("  inter-region ×%g: joint cost %.0f in %d runs\n", boost, p.Cost, len(p.Runs))
	}
}
