// DMAG migration (paper §2.4, Fig. 3c): a new metro-aggregation layer is
// inserted between the fabric aggregation and the backbone border routers,
// and the old direct circuits are decommissioned to free their ports.
//
// This migration *changes the network's layer structure*, which is what
// distinguishes Klotski from the MRC and Janus baselines: both assume
// equipment is swapped in place and refuse the task (the crosses in the
// paper's Fig. 9). The example also shows the routing-metric trick from
// the deployment section (§7.1): the direct circuits carry metric 2 so
// that ECMP splits traffic between the old one-hop path and the new
// two-hop MA detour while both exist.
//
// Run with: go run ./examples/dmagmigration [-scale 0.2]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"klotski"
)

func main() {
	scale := flag.Float64("scale", 0.2, "topology scale (1 = paper-sized)")
	flag.Parse()

	scenario, err := klotski.Suite("E-DMAG", *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(scenario.Description)

	// The baselines cannot plan a layer insertion.
	for name, run := range map[string]func(*klotski.Task, klotski.Options) (*klotski.Plan, error){
		"MRC":   klotski.PlanMRC,
		"Janus": klotski.PlanJanus,
	} {
		if _, err := run(scenario.Task, klotski.Options{}); errors.Is(err, klotski.ErrUnsupported) {
			fmt.Printf("  %s: cannot plan topology-changing migrations (as in paper Fig. 9)\n", name)
		} else {
			fmt.Printf("  %s: unexpected result: %v\n", name, err)
		}
	}

	// Klotski plans it.
	plan, err := klotski.PlanAStar(scenario.Task, klotski.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(plan)

	// Show the phase-by-phase picture: MA capacity comes up, direct
	// circuits drain, ports free, the rest of the MA layer lands.
	doc, err := klotski.BuildPlanDocument(scenario.Task, plan, klotski.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nphases:")
	for _, ph := range doc.Phases {
		fmt.Printf("  %d. %-24s %3d blocks → %5d circuits up, %7.1f Tbps, max util %.0f%%\n",
			ph.Index, ph.ActionType, len(ph.Blocks), ph.UpCircuits, ph.CapacityTbps, ph.MaxUtilization*100)
	}

	// Demonstrate why the metric matters: count the load ECMP places on an
	// MA switch mid-migration.
	view := scenario.Task.Topo.NewView()
	for _, id := range plan.Runs[0].Blocks { // after the first undrain run
		scenario.Task.Apply(view, id)
	}
	eval := klotski.NewEvaluator(scenario.Task.Topo)
	if viol := eval.Check(view, &scenario.Task.Demands, klotski.CheckOpts{}); !viol.OK() {
		log.Fatalf("unexpected violation after first run: %v", viol)
	}
	carried := 0.0
	for c := 0; c < scenario.Task.Topo.NumCircuits(); c++ {
		ck := scenario.Task.Topo.Circuit(klotski.CircuitID(c))
		if scenario.Task.Topo.Switch(ck.A).Role == klotski.RoleMA ||
			scenario.Task.Topo.Switch(ck.B).Role == klotski.RoleMA {
			ab, ba := eval.CircuitLoad(klotski.CircuitID(c))
			carried += ab + ba
		}
	}
	fmt.Printf("\nafter the first undrain run the MA layer already carries %.1f Tbps —\n", carried/2)
	fmt.Println("with plain hop-count ECMP it would carry zero until the last direct circuit died.")
}
