package klotski_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"klotski"
)

// Parallel-planner differential testing: Options.Workers must change
// wall-clock behavior only. The frontier-warming A* and the wavefront DP
// commit exactly the states the serial searches commit, in the same order,
// against the same deterministic satisfiability verdicts — so plans must be
// byte-identical and costs exactly equal (not approximately: the same
// floating-point operations in the same order) at every worker count.

func parallelWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// assertParallelMatchesSerial plans the task serially and at each worker
// count with both planners, requiring byte-identical sequences and exactly
// equal costs.
func assertParallelMatchesSerial(t *testing.T, task *klotski.Task, opts klotski.Options) {
	t.Helper()
	planners := []struct {
		name string
		plan func(o klotski.Options) (*klotski.Plan, error)
	}{
		{"astar", func(o klotski.Options) (*klotski.Plan, error) { return klotski.PlanAStar(task, o) }},
		{"dp", func(o klotski.Options) (*klotski.Plan, error) { return klotski.PlanDP(task, o) }},
	}
	for _, p := range planners {
		serial, errS := p.plan(opts)
		for _, w := range parallelWorkerCounts() {
			po := opts
			po.Workers = w
			par, errP := p.plan(po)
			if (errS == nil) != (errP == nil) {
				t.Fatalf("%s workers=%d: feasibility disagreement: serial=%v parallel=%v",
					p.name, w, errS, errP)
			}
			if errS != nil {
				if !errors.Is(errP, klotski.ErrInfeasible) {
					t.Fatalf("%s workers=%d: unexpected parallel error: %v", p.name, w, errP)
				}
				continue
			}
			if par.Cost != serial.Cost {
				t.Fatalf("%s workers=%d: cost differs: serial=%v parallel=%v",
					p.name, w, serial.Cost, par.Cost)
			}
			if len(par.Sequence) != len(serial.Sequence) {
				t.Fatalf("%s workers=%d: sequence length differs: serial=%d parallel=%d",
					p.name, w, len(serial.Sequence), len(par.Sequence))
			}
			for i := range par.Sequence {
				if par.Sequence[i] != serial.Sequence[i] {
					t.Fatalf("%s workers=%d: sequences diverge at step %d: serial=%v parallel=%v",
						p.name, w, i, serial.Sequence, par.Sequence)
				}
			}
		}
	}
}

func TestParallelMatchesSerialTiny(t *testing.T) {
	assertParallelMatchesSerial(t, buildTinyTask(t), klotski.Options{})
}

func TestParallelMatchesSerialSuites(t *testing.T) {
	for _, name := range []string{"A", "B", "C"} {
		t.Run(name, func(t *testing.T) {
			s, err := klotski.Suite(name, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			assertParallelMatchesSerial(t, s.Task, klotski.Options{})
		})
	}
}

// TestParallelPathsEngage pins that the parallel machinery actually runs on
// a production-shaped fabric (rather than silently gating itself off):
// the DP wavefront must execute its checks on worker lanes, and the A*
// frontier warmer must resolve batched verdicts.
func TestParallelPathsEngage(t *testing.T) {
	s, err := klotski.Suite("C", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	opts := klotski.Options{Workers: 4}
	dp, err := klotski.PlanDP(s.Task, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Metrics.WorkerChecks == 0 {
		t.Error("parallel DP executed no checks on worker lanes; wavefront did not engage")
	}
	astar, err := klotski.PlanAStar(s.Task, opts)
	if err != nil {
		t.Fatal(err)
	}
	if astar.Metrics.BatchedChecks == 0 {
		t.Error("parallel A* resolved no batched verdicts; frontier warmer did not engage")
	}
}

// TestParallelMatchesSerialRandomFabrics is the seeded property test: draw
// random HGRID V1→V2 fabrics and require byte-identical plans between the
// serial and parallel planners at every worker count. The seed is fixed,
// so a failure reproduces.
func TestParallelMatchesSerialRandomFabrics(t *testing.T) {
	if testing.Short() {
		t.Skip("property test over generated fabrics")
	}
	rng := rand.New(rand.NewSource(20260807))
	const cases = 20
	for i := 0; i < cases; i++ {
		p := klotski.HGRIDScenarioParams{
			Region: klotski.RegionParams{
				Name: fmt.Sprintf("parprop-%d", i),
				DCs: []klotski.FabricParams{{
					Pods:        1 + rng.Intn(2),
					RSWPerPod:   2,
					Planes:      4,
					SSWPerPlane: 1 + rng.Intn(2),
					FSWUplinks:  1,
				}},
				HGRID: klotski.HGRIDParams{
					Grids:        2 + rng.Intn(3),
					FADUPerGrid:  1 + rng.Intn(2),
					FAUUPerGrid:  1,
					SSWDownlinks: 1,
				},
				EBs: 2, DRs: 1, EBBs: 1,
			},
			Demand:            klotski.DemandSpec{BaseUtil: 0.30 + 0.15*rng.Float64()},
			V2GridFactor:      1 + rng.Intn(2),
			V2CapFactor:       0.5 + 0.5*rng.Float64(),
			PortHeadroomGrids: 1,
		}
		theta := 0.65 + 0.2*rng.Float64()
		maxRun := rng.Intn(3) // exercise the tail dimension in a third of cases
		t.Run(fmt.Sprintf("case=%d", i), func(t *testing.T) {
			s, err := klotski.HGRIDScenario(p.Region.Name, p)
			if err != nil {
				t.Fatalf("generating fabric: %v", err)
			}
			assertParallelMatchesSerial(t, s.Task,
				klotski.Options{Theta: theta, MaxRunLength: maxRun, MaxStates: 500_000})
		})
	}
}

// TestCheckpointCrossWorkerResume asserts checkpoint compatibility across
// worker counts: a search interrupted under a serial planner resumes under
// a parallel one and vice versa, producing the exact plan an uninterrupted
// serial run produces. For the DP direction it also pins that the resumed
// leg honors the warmed satisfiability cache — the combined run checks no
// vector a fresh parallel run would not have checked.
func TestCheckpointCrossWorkerResume(t *testing.T) {
	s, err := klotski.Suite("C", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	task := s.Task
	plan := func(name string, o klotski.Options) (*klotski.Plan, error) {
		if name == "astar" {
			return klotski.PlanAStarContext(context.Background(), task, o)
		}
		return klotski.PlanDPContext(context.Background(), task, o)
	}
	for _, name := range []string{"astar", "dp"} {
		ref, err := plan(name, klotski.Options{})
		if err != nil {
			t.Fatalf("%s reference plan: %v", name, err)
		}
		freshPar, err := plan(name, klotski.Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s parallel reference plan: %v", name, err)
		}
		for _, dir := range []struct {
			label         string
			first, second int
		}{
			{"serial-to-parallel", 0, 4},
			{"parallel-to-serial", 4, 0},
		} {
			t.Run(name+"/"+dir.label, func(t *testing.T) {
				_, err := plan(name, klotski.Options{Workers: dir.first, MaxStates: 6})
				var intr *klotski.Interrupted
				if !errors.As(err, &intr) {
					t.Fatalf("want *Interrupted under MaxStates=6, got %v", err)
				}
				got, err := klotski.ResumePlan(context.Background(), intr.Checkpoint,
					klotski.Options{Workers: dir.second})
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				if got.Cost != ref.Cost {
					t.Fatalf("resumed cost %v != serial cost %v", got.Cost, ref.Cost)
				}
				if len(got.Sequence) != len(ref.Sequence) {
					t.Fatalf("resumed sequence length %d != %d", len(got.Sequence), len(ref.Sequence))
				}
				for i := range got.Sequence {
					if got.Sequence[i] != ref.Sequence[i] {
						t.Fatalf("resumed plan diverges at step %d: %v vs %v",
							i, got.Sequence, ref.Sequence)
					}
				}
				if name == "dp" && dir.second == 4 {
					// Warmed-cache property: verdicts survive the checkpoint,
					// and the claim protocol checks each vector at most once,
					// so the combined legs cannot out-check a fresh parallel
					// run (which checks the wavefront's full needed set).
					if got.Metrics.Checks > freshPar.Metrics.Checks {
						t.Errorf("resumed run re-checked cached vectors: %d checks > fresh parallel %d",
							got.Metrics.Checks, freshPar.Metrics.Checks)
					}
				}
			})
		}
	}
}
