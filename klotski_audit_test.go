package klotski_test

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"klotski"
)

// Differential audit testing: the independent auditor (internal/audit) and
// the planners are separately derived implementations of the same boundary
// semantics, so every plan any planner emits — serial, incremental,
// parallel — must pass the audit, and any tampering with an emitted plan
// (reordering, injecting, or dropping actions) must be caught at the exact
// offending step.

// auditPlanners is the planner matrix the audit must agree with: the
// serial A* (incremental evaluation on), the batched-parallel A*, the DP
// planner, its parallel wavefront, and the full (non-incremental)
// evaluation path.
func auditPlanners(task *klotski.Task, opts klotski.Options) []struct {
	name string
	plan func() (*klotski.Plan, error)
} {
	fullOpts := opts
	fullOpts.DisableIncrementalEval = true
	return []struct {
		name string
		plan func() (*klotski.Plan, error)
	}{
		{"astar", func() (*klotski.Plan, error) { return klotski.PlanAStar(task, opts) }},
		{"astar-parallel", func() (*klotski.Plan, error) { return klotski.PlanAStarParallel(task, opts, 4) }},
		{"dp", func() (*klotski.Plan, error) { return klotski.PlanDP(task, opts) }},
		{"dp-parallel", func() (*klotski.Plan, error) { return klotski.PlanDPParallel(task, opts, 4) }},
		{"astar-full-eval", func() (*klotski.Plan, error) { return klotski.PlanAStar(task, fullOpts) }},
	}
}

// assertAuditAgrees plans the task with every planner configuration and
// requires (a) the automatic post-pass attached a passing report, (b) an
// independent re-audit of the emitted sequence passes, and (c) tampered
// variants of the plan fail the audit at the correct step index. Returns
// one emitted plan for further use, or nil if the task is infeasible.
func assertAuditAgrees(t *testing.T, task *klotski.Task, opts klotski.Options) *klotski.Plan {
	t.Helper()
	var ref *klotski.Plan
	for _, p := range auditPlanners(task, opts) {
		plan, err := p.plan()
		if errors.Is(err, klotski.ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if plan.Audit == nil {
			t.Fatalf("%s: emitted plan carries no audit report", p.name)
		}
		if !plan.Audit.Passed {
			t.Fatalf("%s: emitted plan's audit report failed: %s", p.name, plan.Audit)
		}
		rep, err := klotski.AuditPlan(task, plan.Sequence, opts, false)
		if err != nil {
			t.Fatalf("%s: re-audit: %v", p.name, err)
		}
		if !rep.Passed {
			t.Fatalf("%s: independent re-audit failed: %s", p.name, rep)
		}
		if ref == nil {
			ref = plan
		}
	}
	if ref != nil {
		assertTamperDetected(t, task, ref.Sequence, opts)
	}
	return ref
}

// assertTamperDetected mutates a known-good sequence three ways —
// reordered, injected, dropped — and requires the audit to fail each one
// at the exact step of the tamper.
func assertTamperDetected(t *testing.T, task *klotski.Task, seq []int, opts klotski.Options) {
	t.Helper()
	if len(seq) < 2 {
		return
	}

	// Reorder: swap an adjacent same-type pair (order across types is
	// legitimately free, so only a within-type swap is a real tamper).
	for i := 0; i+1 < len(seq); i++ {
		if task.Blocks[seq[i]].Type != task.Blocks[seq[i+1]].Type {
			continue
		}
		tampered := append([]int(nil), seq...)
		tampered[i], tampered[i+1] = tampered[i+1], tampered[i]
		rep, err := klotski.AuditPlan(task, tampered, opts, false)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Passed {
			t.Fatalf("reordered sequence (swap at %d) passed audit", i)
		}
		if rep.FailStep != i || !strings.Contains(rep.Reason, "reordered") {
			t.Fatalf("reorder at %d: FailStep = %d, reason %q", i, rep.FailStep, rep.Reason)
		}
		break
	}

	// Inject: append a block that already executed.
	injected := append(append([]int(nil), seq...), seq[0])
	rep, err := klotski.AuditPlan(task, injected, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("injected duplicate passed audit")
	}
	if rep.FailStep != len(seq) || !strings.Contains(rep.Reason, "injected") {
		t.Fatalf("inject: FailStep = %d, reason %q; want %d", rep.FailStep, rep.Reason, len(seq))
	}

	// Drop: cut the final action.
	rep, err = klotski.AuditPlan(task, seq[:len(seq)-1], opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("dropped action passed audit")
	}
	if rep.FailStep != len(seq)-1 || !strings.Contains(rep.Reason, "dropped") {
		t.Fatalf("drop: FailStep = %d, reason %q; want %d", rep.FailStep, rep.Reason, len(seq)-1)
	}
}

func TestAuditDifferentialTiny(t *testing.T) {
	if assertAuditAgrees(t, buildTinyTask(t), klotski.Options{}) == nil {
		t.Fatal("tiny task should be feasible")
	}
}

// TestAuditDifferentialSuites runs the audit differential over every
// fabric in the evaluation suite.
func TestAuditDifferentialSuites(t *testing.T) {
	for _, name := range klotski.SuiteNames() {
		t.Run(name, func(t *testing.T) {
			s, err := klotski.Suite(name, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			assertAuditAgrees(t, s.Task, klotski.Options{MaxStates: 2_000_000})
		})
	}
}

// TestAuditDifferentialRandomFabrics draws seeded random HGRID fabrics and
// requires every planner's plan to pass the independent audit and every
// tampered variant to fail it at the right step. The seed is fixed, so a
// failure reproduces.
func TestAuditDifferentialRandomFabrics(t *testing.T) {
	if testing.Short() {
		t.Skip("property test over generated fabrics")
	}
	rng := rand.New(rand.NewSource(20260807))
	const cases = 10
	feasible := 0
	for i := 0; i < cases; i++ {
		p := klotski.HGRIDScenarioParams{
			Region: klotski.RegionParams{
				Name: fmt.Sprintf("auditprop-%d", i),
				DCs: []klotski.FabricParams{{
					Pods:        1 + rng.Intn(2),
					RSWPerPod:   2,
					Planes:      4,
					SSWPerPlane: 1 + rng.Intn(2),
					FSWUplinks:  1,
				}},
				HGRID: klotski.HGRIDParams{
					Grids:        2 + rng.Intn(3),
					FADUPerGrid:  1 + rng.Intn(2),
					FAUUPerGrid:  1,
					SSWDownlinks: 1,
				},
				EBs: 2, DRs: 1, EBBs: 1,
			},
			Demand:            klotski.DemandSpec{BaseUtil: 0.30 + 0.15*rng.Float64()},
			V2GridFactor:      1 + rng.Intn(2),
			V2CapFactor:       0.5 + 0.5*rng.Float64(),
			PortHeadroomGrids: 1,
		}
		theta := 0.65 + 0.2*rng.Float64()
		t.Run(fmt.Sprintf("case=%d", i), func(t *testing.T) {
			s, err := klotski.HGRIDScenario(p.Region.Name, p)
			if err != nil {
				t.Fatalf("generating fabric: %v", err)
			}
			if assertAuditAgrees(t, s.Task, klotski.Options{Theta: theta, MaxStates: 500_000}) != nil {
				feasible++
			}
		})
	}
	if feasible == 0 {
		t.Error("every random fabric infeasible; the differential exercised nothing")
	}
}

// TestAuditCatchesPlannerOptOut: SkipAudit plans carry no report, and the
// pipeline's audit stage re-derives one rather than trusting the planner.
func TestAuditSkipOption(t *testing.T) {
	task := buildTinyTask(t)
	plan, err := klotski.PlanAStar(task, klotski.Options{SkipAudit: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Audit != nil {
		t.Fatal("SkipAudit plan still carries an audit report")
	}
	audited, err := klotski.PlanAStar(task, klotski.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if audited.Audit == nil || !audited.Audit.Passed {
		t.Fatalf("default plan not audited: %+v", audited.Audit)
	}
	if audited.Metrics.Checks < plan.Metrics.Checks {
		t.Errorf("audited run recorded fewer checks (%d) than unaudited (%d)?",
			audited.Metrics.Checks, plan.Metrics.Checks)
	}
}

// TestAuditFreeOrderBaselines: the baseline planners emit free-order
// sequences; the pipeline audits them in free-order mode and they pass.
func TestAuditFreeOrderBaselines(t *testing.T) {
	task := buildTinyTask(t)
	for _, pl := range []klotski.PlannerName{klotski.PlannerMRC} {
		res, err := klotski.RunPipelineTask(task, klotski.PipelineConfig{Planner: pl})
		if err != nil {
			t.Fatalf("%s: %v", pl, err)
		}
		if res.Plan.Audit == nil || !res.Plan.Audit.Passed {
			t.Fatalf("%s: pipeline plan not audited: %+v", pl, res.Plan.Audit)
		}
	}
}
