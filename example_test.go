package klotski_test

import (
	"errors"
	"fmt"

	"klotski"
)

// ExamplePlanAStar plans the smallest interesting migration: one old
// aggregation switch out, one new one in, with traffic that must keep
// flowing throughout.
func ExamplePlanAStar() {
	topo := klotski.NewTopology("example")
	src := topo.AddSwitch(klotski.Switch{Name: "rsw", Role: klotski.RoleRSW})
	dst := topo.AddSwitch(klotski.Switch{Name: "ebb", Role: klotski.RoleEBB})

	task := &klotski.Task{Name: "swap-one", Topo: topo}
	drain := task.AddType(klotski.ActionTypeInfo{Name: "drain-old", Op: klotski.Drain, Role: klotski.RoleFADU})
	undrain := task.AddType(klotski.ActionTypeInfo{Name: "undrain-new", Op: klotski.Undrain, Role: klotski.RoleFADU})

	old := topo.AddSwitch(klotski.Switch{Name: "old", Role: klotski.RoleFADU, Generation: 1})
	topo.AddCircuit(src, old, 1)
	topo.AddCircuit(old, dst, 1)
	task.AddBlock(klotski.Block{Type: drain, Switches: []klotski.SwitchID{old}})

	new := topo.AddSwitch(klotski.Switch{Name: "new", Role: klotski.RoleFADU, Generation: 2})
	topo.SetSwitchActive(new, false)
	topo.AddCircuit(src, new, 2)
	topo.AddCircuit(new, dst, 2)
	task.AddBlock(klotski.Block{Type: undrain, Switches: []klotski.SwitchID{new}})

	task.Demands.Add(klotski.Demand{Name: "uplink", Src: src, Dst: dst, Rate: 0.5})

	plan, err := klotski.PlanAStar(task, klotski.Options{Theta: 0.75})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The new switch must come up before the old one can drain — draining
	// first would strand the demand.
	for _, run := range plan.Runs {
		fmt.Printf("%s x%d\n", task.Types[run.Type].Name, len(run.Blocks))
	}
	fmt.Println("cost:", plan.Cost)
	// Output:
	// undrain-new x1
	// drain-old x1
	// cost: 2
}

// ExampleVerifyPlan shows the independent audit rejecting an unsafe
// ordering that a planner would never emit.
func ExampleVerifyPlan() {
	topo := klotski.NewTopology("audit")
	src := topo.AddSwitch(klotski.Switch{Name: "src", Role: klotski.RoleRSW})
	dst := topo.AddSwitch(klotski.Switch{Name: "dst", Role: klotski.RoleEBB})
	task := &klotski.Task{Name: "audit", Topo: topo}
	drain := task.AddType(klotski.ActionTypeInfo{Name: "drain", Op: klotski.Drain, Role: klotski.RoleFADU})
	undrain := task.AddType(klotski.ActionTypeInfo{Name: "undrain", Op: klotski.Undrain, Role: klotski.RoleFADU})

	old := topo.AddSwitch(klotski.Switch{Name: "old", Role: klotski.RoleFADU})
	topo.AddCircuit(src, old, 1)
	topo.AddCircuit(old, dst, 1)
	task.AddBlock(klotski.Block{Type: drain, Switches: []klotski.SwitchID{old}})
	new := topo.AddSwitch(klotski.Switch{Name: "new", Role: klotski.RoleFADU})
	topo.SetSwitchActive(new, false)
	topo.AddCircuit(src, new, 1)
	topo.AddCircuit(new, dst, 1)
	task.AddBlock(klotski.Block{Type: undrain, Switches: []klotski.SwitchID{new}})
	task.Demands.Add(klotski.Demand{Name: "d", Src: src, Dst: dst, Rate: 0.5})

	// Drain-then-undrain passes through a state with no path at a run
	// boundary; the audit refuses it.
	err := klotski.VerifyPlan(task, []int{0, 1}, klotski.Options{})
	fmt.Println("drain-first:", errors.Is(err, klotski.ErrInfeasible))
	// Undrain-then-drain is safe.
	err = klotski.VerifyPlan(task, []int{1, 0}, klotski.Options{})
	fmt.Println("undrain-first:", err == nil)
	// Output:
	// drain-first: true
	// undrain-first: true
}

// ExampleSuite builds a Table-3 evaluation scenario and inspects it.
func ExampleSuite() {
	scenario, err := klotski.Suite("A", 0.2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("types:", scenario.Task.NumTypes())
	fmt.Println("topology-changing:", scenario.Task.TopologyChanging)
	// Output:
	// types: 2
	// topology-changing: false
}
