package routing

import (
	"testing"

	"klotski/internal/topo"
)

func TestTraceDiamond(t *testing.T) {
	tp, sw, ck := diamond()
	e := NewEvaluator(tp)
	dag, err := e.Trace(tp.NewView(), sw[0], sw[3])
	if err != nil {
		t.Fatal(err)
	}
	if dag.Cost != 2 {
		t.Errorf("cost = %d, want 2", dag.Cost)
	}
	if dag.Width() != 2 {
		t.Errorf("width = %d, want 2 (both branches)", dag.Width())
	}
	if got := len(dag.Switches()); got != 3 { // src, m1, m2
		t.Errorf("on-path switches = %d, want 3", got)
	}
	if len(dag.NextHops[sw[1]]) != 1 || dag.NextHops[sw[1]][0] != ck[2] {
		t.Errorf("m1 next hops = %v, want [%d]", dag.NextHops[sw[1]], ck[2])
	}
}

func TestTraceNarrowsWhenBranchDrained(t *testing.T) {
	tp, sw, _ := diamond()
	v := tp.NewView()
	v.DrainSwitch(sw[2])
	e := NewEvaluator(tp)
	dag, err := e.Trace(v, sw[0], sw[3])
	if err != nil {
		t.Fatal(err)
	}
	if dag.Width() != 1 {
		t.Errorf("width = %d, want 1 after draining a branch", dag.Width())
	}
}

func TestTraceErrors(t *testing.T) {
	tp, sw, _ := diamond()
	e := NewEvaluator(tp)
	v := tp.NewView()
	v.DrainSwitch(sw[3])
	if _, err := e.Trace(v, sw[0], sw[3]); err == nil {
		t.Error("inactive destination should error")
	}
	v.Reset()
	v.DrainSwitch(sw[1])
	v.DrainSwitch(sw[2])
	if _, err := e.Trace(v, sw[0], sw[3]); err == nil {
		t.Error("disconnected pair should error")
	}
}

func TestTraceRespectsMetrics(t *testing.T) {
	tp, sw, ck := diamond()
	tp.SetMetric(ck[0], 3) // m1 branch now costs 3+1
	e := NewEvaluator(tp)
	dag, err := e.Trace(tp.NewView(), sw[0], sw[3])
	if err != nil {
		t.Fatal(err)
	}
	if dag.Cost != 2 || dag.Width() != 1 {
		t.Errorf("cost=%d width=%d, want cost 2 via the metric-1 branch only", dag.Cost, dag.Width())
	}
	if dag.NextHops[sw[0]][0] != ck[1] {
		t.Errorf("src should forward on circuit %d, got %v", ck[1], dag.NextHops[sw[0]])
	}
}

func TestTraceMixedHopCounts(t *testing.T) {
	// Direct metric-2 circuit plus a 2-hop metric-1+1 detour: both on the
	// DAG.
	tp := topo.New("mixed")
	src := tp.AddSwitch(topo.Switch{Name: "src", Role: topo.RoleFAUU})
	mid := tp.AddSwitch(topo.Switch{Name: "ma", Role: topo.RoleMA})
	dst := tp.AddSwitch(topo.Switch{Name: "eb", Role: topo.RoleEB})
	direct := tp.AddCircuit(src, dst, 10)
	tp.SetMetric(direct, 2)
	tp.AddCircuit(src, mid, 10)
	tp.AddCircuit(mid, dst, 10)
	e := NewEvaluator(tp)
	dag, err := e.Trace(tp.NewView(), src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if dag.Width() != 2 {
		t.Errorf("width = %d, want 2 (direct + detour)", dag.Width())
	}
	if len(dag.NextHops[mid]) != 1 {
		t.Errorf("MA should forward on one circuit, got %v", dag.NextHops[mid])
	}
}
