package routing

import (
	"math"
	"sort"

	"klotski/internal/demand"
	"klotski/internal/topo"
)

// This file implements the incremental satisfiability engine. A planner
// probing the state space mutates only one block between consecutive
// checks, yet the classic Check pays one BFS plus one flow sweep per
// distinct destination over the whole fabric every time. CheckDelta instead
// memoizes, per destination group, the group's settled distance field and
// its sparse per-circuit load contribution; per-circuit total load is the
// sum of group contributions. A delta check invalidates only the groups
// whose placement the touched elements can actually affect, re-runs those
// groups' BFS + sweep, and re-verifies bounds on the affected circuits.
//
// Invalidation rule. A group's placement is fully determined by its
// shortest-distance field dist (unreachable = ∞): the flow DAG is the set
// of tight circuits (|dist[x] − dist[y]| equal to the metric), and ECMP/
// WCMP splits depend only on that DAG. For a circuit c = (x, y) whose
// up-state transitions:
//
//   - went down: invalidate iff c was tight. Removing a non-tight circuit
//     removes no shortest-path support (every finite distance stays
//     supported by its remaining tight circuits) and no DAG edge, so the
//     placement is unchanged.
//   - came up: invalidate iff c could change a distance or join the DAG —
//     exactly one endpoint unreachable, or both reachable with
//     |dist[x] − dist[y]| ≥ metric. A circuit between two unreachable
//     switches, or with |dist[x] − dist[y]| < metric, neither improves any
//     distance nor becomes tight.
//
// These per-transition tests compose: if no transition in a delta triggers,
// the old distance field remains a valid shortest-path assignment of the
// new graph with an identical tight-circuit DAG, so the group's placement
// — and its unreachable count — are unchanged. Groups whose destination is
// inactive carry no distance field; they are invalidated only by an
// operation on the destination switch itself (the only way they can change,
// since CircuitUp requires both endpoints active).
//
// Callers must pass touched sets closed under ExpandTouched, so every
// circuit whose up-state may have flipped — including via an endpoint
// switch drain — is listed, and every operated switch is visible for the
// inactive-destination probe.
//
// Exactness: group contributions are independent — splitting at a switch
// depends only on the group's own distance field, never on other groups'
// flow — so per-circuit totals decompose exactly into per-group terms. To
// keep verdicts bitwise-identical with the classic path despite float
// non-associativity, affected totals are recomputed from zero by folding
// group contributions in ascending group order, the same order the classic
// path uses.
//
// Funneling (FunnelFactor > 1) tightens bounds per in-flight block, not per
// topology state, so funneled checks bypass memoization entirely.

// Self-disable policy: fabrics exist (dense ECMP meshes) where nearly every
// circuit is tight for nearly every destination, so a block delta dirties
// most groups and the memo pays pure overhead on top of an (early-exiting)
// classic check. CheckDelta tracks the cumulative dirty fraction across
// delta passes; once it proves too high, the engine shuts itself off for
// the run and answers every subsequent check classically. ResetIncremental
// re-arms it.
const (
	// incPolicyFastPasses triggers the fast tier: wholesale invalidation
	// (every group dirty) for this many consecutive passes from the anchor
	// proves the fabric hopeless immediately.
	incPolicyFastPasses = 2
	// incPolicyMinPasses is how many delta passes the slow tier observes
	// before it may disable the engine on a partial dirty fraction.
	incPolicyMinPasses = 4
	// The slow tier disables the engine when more than ⅔ of group
	// placements were dirty across the observed passes.
	incPolicyDirtyNum = 3
	incPolicyDirtyDen = 2
)

// incGroup is the memoized routing state of one destination group.
type incGroup struct {
	dst       topo.SwitchID
	dstActive bool    // destination was active at last (re)compute
	demands   []int32 // indices into ds.Demands, shared with the dst index

	// dist is the group's memoized shortest-distance field, biased by +1 so
	// that 0 marks unreachable — recompute then clears it with a memclr
	// instead of a -1 fill. Distance comparisons are unaffected by the bias
	// (it cancels in differences). Meaningful only while dstActive. The
	// backing array is a slice of the memo-wide distSlab, not a private
	// allocation.
	dist []int32
	// hasFlow marks switches that carried any of this group's flow in the
	// memoized placement (positive inflow after the sweep). A DAG edge
	// appearing or disappearing at a flow-less switch cannot move load.
	// Packed: one bit per switch, sliced out of the memo-wide flowSlab.
	hasFlow Bitset

	// Sparse contribution: directional load indices and values, aligned.
	lis  []int32
	vals []float64

	unreach int32 // demands of this group without a path
}

func (g *incGroup) settled(s topo.SwitchID) bool { return g.dist[s] > 0 }

// incMemo holds the evaluator's incremental state across CheckDelta calls.
type incMemo struct {
	valid bool

	// Identity of the memoized check configuration; any mismatch forces a
	// full rebuild. scale is softer: placements are invariant under a
	// uniform demand multiplier, so a scale change re-derives the
	// utilization flags from the memoized totals in O(|circuits|) instead
	// of rebuilding (see incRescale) — the common case when a planner
	// probes states at different forecast horizons.
	ds    *demand.Set
	dsLen int
	theta float64
	split SplitMode
	scale float64

	groups []incGroup
	// dirty marks groups whose memoized placement is stale relative to the
	// anchor view: invalidated this delta, or left unrecomputed by an
	// earlier delta that returned at the first violation.
	dirty []bool
	// staleLis lists directional load indices whose total is stale after an
	// early-exit delta; the next completed pass re-sums them.
	staleLis []int32

	total  []float64 // per directional index: sum of group contributions
	upMemo []bool    // per circuit: up-state in the memoized view
	degree []int32   // per switch: up-circuit count in the memoized view

	// Slab backing for every group's dist and hasFlow. One allocation per
	// rebuild (amortized to zero once capacity sticks) instead of two per
	// active destination group — the dominant alloc site on the planner's
	// serial hot path before slabbing.
	distSlab []int32
	flowSlab Bitset

	portOver []bool // per switch: over its port budget
	nPort    int
	over     []bool // per circuit: over the utilization bound
	nOver    int
	unreach  int // total unreachable demands across groups

	// Epoch-stamped scratch marks (one epoch per delta) and reusable lists.
	epoch   uint32
	liMark  []uint32
	swMark  []uint32
	ckMark  []uint32
	tsw     []topo.SwitchID
	transCk []topo.CircuitID
	degCh   []topo.SwitchID
	marked  []int32

	// Self-disable policy accumulators: delta passes observed, groups
	// dirty at the start of each pass, and groups total per pass. off
	// latches once the dirty fraction proves the memo unprofitable.
	passes    int
	sumDirty  int
	sumGroups int
	off       bool
}

// ensureInc allocates the incremental memo on first use.
func (e *Evaluator) ensureInc() *incMemo {
	if e.inc == nil {
		n, m := e.t.NumSwitches(), e.t.NumCircuits()
		e.inc = &incMemo{
			total:    make([]float64, 2*m),
			upMemo:   make([]bool, m),
			degree:   make([]int32, n),
			portOver: make([]bool, n),
			over:     make([]bool, m),
			liMark:   make([]uint32, 2*m),
			swMark:   make([]uint32, n),
			ckMark:   make([]uint32, m),
			// Delta scratch at its worst-case sizes up front, so delta
			// passes never grow-and-copy short-lived arrays.
			tsw:     make([]topo.SwitchID, 0, n),
			transCk: make([]topo.CircuitID, 0, m),
			degCh:   make([]topo.SwitchID, 0, 2*m),
			marked:  make([]int32, 0, 2*m),
		}
	}
	return e.inc
}

// ResetIncremental drops the incremental memo; the next CheckDelta rebuilds
// from scratch. Call when the view may have changed without corresponding
// touched sets (e.g. when an evaluator is handed to a new planning run).
func (e *Evaluator) ResetIncremental() {
	if e.inc != nil {
		e.inc.valid = false
		e.inc.off = false
		e.inc.passes, e.inc.sumDirty, e.inc.sumGroups = 0, 0, 0
	}
}

// IncrementalOff reports whether the incremental engine has disabled itself
// for this run (memo reuse proved too low on this fabric). Callers may use
// it to skip touched-set bookkeeping; CheckDelta already answers classically
// on its own.
func (e *Evaluator) IncrementalOff() bool {
	return e.inc != nil && e.inc.off
}

// ExpandTouched closes a raw touched-element set over the incidence
// relations CheckDelta's invalidation rule relies on: endpoints of every
// touched circuit are added to the switch set, and circuits incident to
// every touched switch are added to the circuit set. Inputs may contain
// duplicates; outputs may too. migration.Task.BuildTouched performs the
// same closure per block, so planner callers get it for free.
func ExpandTouched(t *topo.Topology, sw []topo.SwitchID, ck []topo.CircuitID) ([]topo.SwitchID, []topo.CircuitID) {
	outSw := append([]topo.SwitchID(nil), sw...)
	outCk := append([]topo.CircuitID(nil), ck...)
	for _, s := range sw {
		outCk = append(outCk, t.Switch(s).Circuits()...)
	}
	for _, c := range outCk {
		cc := t.Circuit(c)
		outSw = append(outSw, cc.A, cc.B)
	}
	return outSw, outCk
}

// CheckDelta verifies the demand and port constraints on the view, reusing
// memoized per-group state from the previous CheckDelta on this evaluator.
// touchedSw/touchedCk must cover every element whose activity may differ
// from the view the memo was computed on, closed per ExpandTouched;
// duplicates are fine. The returned Violation's OK() is identical to what
// Check would return on the same view; when the state is unsafe the
// reported violation detail (kind, element) may differ from Check's, since
// violations are synthesized from the memo rather than found in sweep
// order.
//
// Funneled options (FunnelFactor > 1 with circuits listed) cannot be
// answered from per-group memos; such calls fall back to a classic full
// Check and drop the memo. Once the self-disable policy latches (see
// IncrementalOff) every call answers via the classic check until
// ResetIncremental re-arms the engine.
func (e *Evaluator) CheckDelta(v *topo.View, touchedSw []topo.SwitchID, touchedCk []topo.CircuitID, ds *demand.Set, opts CheckOpts) Violation {
	if opts.FunnelFactor > 1 && len(opts.FunnelCircuits) > 0 {
		e.ResetIncremental()
		return e.Check(v, ds, opts)
	}
	m := e.ensureInc()
	if m.off {
		return e.Check(v, ds, opts)
	}
	e.Checks++
	theta := opts.Theta
	if theta <= 0 {
		theta = 0.75
	}
	scale := opts.scale()
	if !m.valid || m.ds != ds || m.dsLen != len(ds.Demands) || m.theta != theta || m.split != opts.Split {
		e.IncRebuilds++
		e.incRebuild(v, ds, theta, opts.Split, scale)
	} else {
		if m.scale != scale {
			e.incRescale(scale)
		}
		if viol, aborted := e.incDelta(v, touchedSw, touchedCk, ds, theta, opts.Split); aborted {
			return viol
		}
	}
	return e.incVerdict(v, ds)
}

// CheckDemandDelta verifies the view against a demand set whose rates were
// mutated in place since the previous CheckDelta/CheckDemandDelta on this
// evaluator. changed lists the indices into ds.Demands whose Rate changed
// (duplicates and unchanged entries are harmless); the topology view must be
// the memo's anchor view — combine with CheckDelta for mixed deltas by
// calling each with its own delta. Exactly the destination groups owning a
// changed demand are recomputed; every other group's placement is reused.
// The verdict is identical to a full Check on the same view and demands, and
// the resulting memoized totals are bitwise-identical to a full
// re-evaluation (same per-group fold order).
//
// A wholesale delta (changed covering most destination groups) feeds the
// same self-disable policy as CheckDelta: once reuse proves too low the
// engine answers classically until ResetIncremental. An out-of-range index
// forces a conservative full rebuild.
func (e *Evaluator) CheckDemandDelta(v *topo.View, changed []int32, ds *demand.Set, opts CheckOpts) Violation {
	if opts.FunnelFactor > 1 && len(opts.FunnelCircuits) > 0 {
		e.ResetIncremental()
		return e.Check(v, ds, opts)
	}
	m := e.ensureInc()
	if m.off {
		return e.Check(v, ds, opts)
	}
	e.Checks++
	theta := opts.Theta
	if theta <= 0 {
		theta = 0.75
	}
	scale := opts.scale()
	rebuild := !m.valid || m.ds != ds || m.dsLen != len(ds.Demands) || m.theta != theta || m.split != opts.Split
	for _, di := range changed {
		if di < 0 || int(di) >= len(ds.Demands) {
			rebuild = true
			break
		}
	}
	if rebuild {
		e.IncRebuilds++
		e.incRebuild(v, ds, theta, opts.Split, scale)
		return e.incVerdict(v, ds)
	}
	if m.scale != scale {
		e.incRescale(scale)
	}
	m.nextEpoch()
	if !e.upForMemo { // a classic run overwrote e.up; restore the anchor
		copy(e.up, m.upMemo)
		e.upForMemo = true
	}

	// Mark the owning destination group of every changed demand dirty. The
	// destination index is sorted, so a binary search per changed index
	// suffices; groups already dirty from an earlier aborted pass remain so.
	dsts, _ := ds.DestinationIndex()
	for _, di := range changed {
		dst := ds.Demands[di].Dst
		gi := sort.Search(len(dsts), func(i int) bool { return dsts[i] >= dst })
		if gi < len(dsts) && dsts[gi] == dst {
			m.dirty[gi] = true
		}
	}
	dirtyCount := 0
	for gi := range m.dirty {
		if m.dirty[gi] {
			dirtyCount++
		}
	}
	m.feedPolicy(e, dirtyCount)

	// Port state is rate-independent, but the classic check answers port
	// violations first; preserve that order.
	if m.nPort > 0 {
		for i, over := range m.portOver {
			if over {
				return Violation{Kind: ViolationPorts, Switch: topo.SwitchID(i)}
			}
		}
	}
	if viol, aborted := e.incRecomputeDirty(v, ds, theta, opts.Split); aborted {
		return viol
	}
	return e.incVerdict(v, ds)
}

// EvaluateDelta is Evaluate's memo-reusing counterpart: it applies a
// touched-element delta exactly like CheckDelta and, when the state is safe,
// synthesizes the full Result from the memoized per-circuit totals — which
// are maintained bitwise-identical to a classic evaluation's loads (same
// ascending-group fold order) — so the returned statistics are
// byte-identical to what Evaluate would produce on the same view.
//
// Any path where that identity cannot be established from the memo falls
// back to a classic full Evaluate on the spot: funneled options (which
// bypass memoization and drop the memo), a self-disabled engine, an aborted
// delta pass, or any non-OK verdict. Violating states therefore always
// return the classic sweep's exact Result and Violation detail, not a
// synthesized one — unlike CheckDelta, whose unsafe-state details may
// differ from Check's. This is what lets an auditor replay run boundaries
// incrementally while promising reports identical to full re-evaluation.
func (e *Evaluator) EvaluateDelta(v *topo.View, touchedSw []topo.SwitchID, touchedCk []topo.CircuitID, ds *demand.Set, opts CheckOpts) (Result, Violation) {
	if opts.FunnelFactor > 1 && len(opts.FunnelCircuits) > 0 {
		e.ResetIncremental()
		return e.Evaluate(v, ds, opts)
	}
	m := e.ensureInc()
	if m.off {
		return e.Evaluate(v, ds, opts)
	}
	theta := opts.Theta
	if theta <= 0 {
		theta = 0.75
	}
	scale := opts.scale()
	if !m.valid || m.ds != ds || m.dsLen != len(ds.Demands) || m.theta != theta || m.split != opts.Split {
		e.IncRebuilds++
		e.incRebuild(v, ds, theta, opts.Split, scale)
	} else {
		if m.scale != scale {
			e.incRescale(scale)
		}
		if _, aborted := e.incDelta(v, touchedSw, touchedCk, ds, theta, opts.Split); aborted {
			// The memo stays coherent (dirty groups and stale totals are
			// queued for the next completed pass); answer classically so the
			// caller gets the exact sweep-order Result and Violation.
			return e.Evaluate(v, ds, opts)
		}
	}
	if viol := e.incVerdict(v, ds); !viol.OK() {
		return e.Evaluate(v, ds, opts)
	}
	e.Checks++
	var res Result
	e.fillResultTotals(v, scale, &res)
	return res, Violation{}
}

// fillResultTotals is fillResult reading the memoized per-circuit totals
// instead of the evaluator's per-call load scratch. The iteration, skip
// filter, and float operation order are kept exactly in sync with
// fillResult so the produced Result is bitwise-identical whenever
// m.total matches e.load (the engine's fold-order invariant).
func (e *Evaluator) fillResultTotals(v *topo.View, scale float64, res *Result) {
	t := e.t
	m := e.inc
	res.MinResidual = math.Inf(1)
	res.MaxUtilCircuit = topo.NoCircuit
	for c := 0; c < t.NumCircuits(); c++ {
		cid := topo.CircuitID(c)
		if !v.CircuitUp(cid) {
			continue
		}
		ck := t.Circuit(cid)
		load := (m.total[2*c] + m.total[2*c+1]) * scale
		util := load / ck.Capacity
		res.TotalLoad += load
		if util > res.MaxUtil {
			res.MaxUtil = util
			res.MaxUtilCircuit = cid
		}
		if resid := 1 - util; resid < res.MinResidual {
			res.MinResidual = resid
		}
	}
	if math.IsInf(res.MinResidual, 1) {
		res.MinResidual = 0
	}
}

// incRescale re-derives the utilization flags from the memoized totals at a
// new demand scale. Placements (and therefore totals) are invariant under a
// uniform multiplier, so no group recompute is needed. Totals queued on
// staleLis may be stale, but their flags are refreshed by the next completed
// pass before any verdict consults them.
func (e *Evaluator) incRescale(scale float64) {
	m := e.inc
	m.nOver = 0
	for c := range m.over {
		over := (m.total[2*c]+m.total[2*c+1])*scale/e.caps[c] > m.theta
		m.over[c] = over
		if over {
			m.nOver++
		}
	}
	m.scale = scale
}

// nextEpoch advances the memo's scratch-mark epoch, resetting the mark
// arrays on wraparound.
func (m *incMemo) nextEpoch() uint32 {
	m.epoch++
	if m.epoch == 0 { // wrapped; reset all marks
		for i := range m.liMark {
			m.liMark[i] = 0
		}
		for i := range m.swMark {
			m.swMark[i] = 0
		}
		for i := range m.ckMark {
			m.ckMark[i] = 0
		}
		m.epoch = 1
	}
	return m.epoch
}

// feedPolicy accumulates one delta pass into the self-disable policy and
// latches the engine off when memo reuse proves too low.
func (m *incMemo) feedPolicy(e *Evaluator, dirtyCount int) {
	m.passes++
	m.sumDirty += dirtyCount
	m.sumGroups += len(m.groups)
	if (m.passes >= incPolicyFastPasses && m.sumDirty == m.sumGroups) ||
		(m.passes >= incPolicyMinPasses && incPolicyDirtyNum*m.sumDirty > incPolicyDirtyDen*m.sumGroups) {
		m.off = true
		e.IncDisables++
	}
}

// incRebuild recomputes the whole memo from the view.
func (e *Evaluator) incRebuild(v *topo.View, ds *demand.Set, theta float64, split SplitMode, scale float64) {
	m := e.inc
	t := e.t
	n, nc := t.NumSwitches(), t.NumCircuits()

	// Port state: degrees and per-switch over-budget flags. e.up mirrors the
	// memo anchor from here on; the BFS/sweep inner loops read it.
	for i := range m.degree {
		m.degree[i] = 0
	}
	for c := 0; c < nc; c++ {
		cid := topo.CircuitID(c)
		up := v.CircuitUp(cid)
		m.upMemo[c] = up
		e.up[c] = up
		if up {
			ck := t.Circuit(cid)
			m.degree[ck.A]++
			m.degree[ck.B]++
		}
	}
	e.upForMemo = true
	m.nPort = 0
	for i := 0; i < n; i++ {
		s := t.Switch(topo.SwitchID(i))
		over := s.Ports > 0 && int(m.degree[i]) > s.Ports
		m.portOver[i] = over
		if over {
			m.nPort++
		}
	}

	// Group placements and totals, folded in ascending group order.
	dsts, byDst := ds.DestinationIndex()
	if cap(m.groups) < len(dsts) {
		m.groups = make([]incGroup, len(dsts))
		m.dirty = make([]bool, len(dsts))
	}
	m.groups = m.groups[:len(dsts)]
	m.dirty = m.dirty[:len(dsts)]
	for i := range m.dirty {
		m.dirty[i] = false
	}
	// Carve each group's dist / hasFlow out of the shared slabs. Slices must
	// be re-carved every rebuild: the slab may have been regrown, and groups
	// are reused across rebuilds with different destination counts.
	words := bitsetWords(n)
	if len(m.distSlab) < len(dsts)*n {
		m.distSlab = make([]int32, len(dsts)*n)
		m.flowSlab = make(Bitset, len(dsts)*words)
	}
	for gi := range m.groups {
		g := &m.groups[gi]
		g.dist = m.distSlab[gi*n : (gi+1)*n : (gi+1)*n]
		g.hasFlow = m.flowSlab[gi*words : (gi+1)*words : (gi+1)*words]
	}
	m.staleLis = m.staleLis[:0]
	for i := range m.total {
		m.total[i] = 0
	}
	m.unreach = 0
	for gi, dst := range dsts {
		g := &m.groups[gi]
		g.dst = dst
		g.demands = byDst[gi]
		e.incComputeGroup(v, g, ds, split)
		m.unreach += int(g.unreach)
		for j, li := range g.lis {
			m.total[li] += g.vals[j]
		}
	}

	// Utilization flags.
	m.nOver = 0
	for c := 0; c < nc; c++ {
		cid := topo.CircuitID(c)
		over := (m.total[2*c]+m.total[2*c+1])*scale/t.Circuit(cid).Capacity > theta
		m.over[c] = over
		if over {
			m.nOver++
		}
	}

	m.ds, m.dsLen, m.theta, m.split, m.scale = ds, len(ds.Demands), theta, split, scale
	m.passes, m.sumDirty, m.sumGroups = 0, 0, 0 // fresh anchor, fresh policy window
	m.valid = true
}

// incComputeGroup (re)computes one group's distance field, unreachable
// count, and sparse load contribution from the view.
func (e *Evaluator) incComputeGroup(v *topo.View, g *incGroup, ds *demand.Set, split SplitMode) {
	g.lis = g.lis[:0]
	g.vals = g.vals[:0]
	g.unreach = 0
	g.dstActive = v.SwitchActive(g.dst)
	if !g.dstActive {
		// No distances: the group can only become routable again through
		// an operation on the destination switch itself.
		g.unreach = int32(len(g.demands))
		return
	}
	for i := range g.dist { // memclr: 0 = unreachable under the +1 bias
		g.dist[i] = 0
	}
	g.hasFlow.Reset()

	e.bfs(v, g.dst)
	for _, u := range e.queue {
		g.dist[u] = e.distOf(u) + 1
	}
	for _, di := range g.demands {
		d := ds.Demands[di]
		if !v.SwitchActive(d.Src) || e.distOf(d.Src) < 0 {
			g.unreach++
			continue
		}
		e.addInflow(d.Src, d.Rate)
	}
	e.sweepGroup(v, g.dst, split)
	// Snapshot the sparse contribution at exact size: growing via repeated
	// append doubles through several short-lived arrays per group, which
	// dominated the planner's alloc profile.
	if need := len(e.gtouched); cap(g.lis) < need {
		g.lis = make([]int32, 0, need)
		g.vals = make([]float64, 0, need)
	}
	for _, li := range e.gtouched {
		g.lis = append(g.lis, li)
		g.vals = append(g.vals, e.gload[li])
		e.gload[li] = 0
	}
	e.gtouched = e.gtouched[:0]
	for _, u := range e.queue {
		if e.inflowOf(u) > 0 {
			g.hasFlow.Set(int(u))
		}
	}
}

// incDelta applies a touched-element delta to the memo: update port state
// on circuits whose up-state flipped, mark groups whose placement a flipped
// circuit can affect as dirty, recompute them, and re-verify bounds on the
// circuits whose totals changed.
//
// Like the classic path, the recompute pass exits at the first violation it
// proves (aborted=true with the violation): remaining dirty groups stay
// dirty and the affected totals are queued on staleLis for the next
// completed pass. The bound check mid-pass uses a running partial total
// over the groups recomputed so far — contributions are non-negative, so a
// partial total over the bound proves the final total is too.
func (e *Evaluator) incDelta(v *topo.View, touchedSw []topo.SwitchID, touchedCk []topo.CircuitID, ds *demand.Set, theta float64, split SplitMode) (Violation, bool) {
	m := e.inc
	t := e.t
	ep := m.nextEpoch()
	if !e.upForMemo { // a classic run overwrote e.up; restore the anchor
		copy(e.up, m.upMemo)
		e.upForMemo = true
	}

	// 1. Diff circuit up-states, collecting actual transitions; maintain
	// degrees, port flags, and the e.up snapshot. Note upMemo holds the OLD
	// state until a circuit's entry is overwritten here, so the analysis
	// below reads the transition direction from the updated value.
	trans := m.transCk[:0]
	degCh := m.degCh[:0]
	for _, c := range touchedCk {
		if m.ckMark[c] == ep {
			continue
		}
		m.ckMark[c] = ep
		up := v.CircuitUp(c)
		if up == m.upMemo[c] {
			continue
		}
		m.upMemo[c] = up
		e.up[c] = up
		trans = append(trans, c)
		ck := t.Circuit(c)
		d := int32(1)
		if !up {
			d = -1
		}
		m.degree[ck.A] += d
		m.degree[ck.B] += d
		degCh = append(degCh, ck.A, ck.B)
	}
	for _, s := range degCh { // duplicates harmless: flag update is idempotent
		sw := t.Switch(s)
		over := sw.Ports > 0 && int(m.degree[s]) > sw.Ports
		if over != m.portOver[s] {
			m.portOver[s] = over
			if over {
				m.nPort++
			} else {
				m.nPort--
			}
		}
	}
	m.degCh = degCh[:0]

	// 2. Deduplicate the touched switches (the inactive-destination probe
	// needs them; planners pass per-block unions with repeats).
	tsw := m.tsw[:0]
	for _, s := range touchedSw {
		if m.swMark[s] == ep {
			continue
		}
		m.swMark[s] = ep
		tsw = append(tsw, s)
	}

	// 3. Invalidation analysis on clean groups. Dirty groups carry stale
	// distance fields, so they skip the tests and stay dirty. Distances use
	// the +1 bias: 0 = unreachable; the bias cancels in differences.
	dirtyCount := 0
	for gi := range m.groups {
		if m.dirty[gi] {
			dirtyCount++
			continue
		}
		g := &m.groups[gi]
		hit := false
		if !g.dstActive {
			for _, s := range tsw {
				if s == g.dst {
					hit = true
					break
				}
			}
		} else {
			for _, c := range trans {
				ck := t.Circuit(c)
				dx, dy := g.dist[ck.A], g.dist[ck.B]
				// Orient toward the destination: far is the endpoint the
				// circuit serves as a next hop for (the larger distance).
				far, diff := ck.A, dx-dy
				if diff < 0 {
					far, diff = ck.B, -diff
				}
				if m.upMemo[c] {
					// Came up. A circuit between two unreachable switches
					// changes nothing; one connecting the unreachable side
					// or improving a distance changes the distance field.
					if dx == 0 && dy == 0 {
						continue
					}
					if dx == 0 || dy == 0 || diff > ck.Metric {
						hit = true
						break
					}
					// Exact tie: distances hold, but the DAG gains an edge
					// at far — which only moves load if far carries flow.
					if diff == ck.Metric && g.hasFlow.Get(int(far)) {
						hit = true
						break
					}
				} else {
					// Went down: only tight (DAG) circuits matter, and a
					// tight circuit whose far endpoint carries no flow is
					// harmless as long as far keeps another shortest-path
					// support (so the whole distance field stands).
					if dx == 0 || dy == 0 || diff != ck.Metric {
						continue
					}
					if g.hasFlow.Get(int(far)) || !e.supported(g, far) {
						hit = true
						break
					}
				}
			}
		}
		if hit {
			m.dirty[gi] = true
			dirtyCount++
		}
	}
	m.tsw = tsw[:0]
	m.transCk = trans[:0]

	// Feed the self-disable policy: a persistently high dirty fraction
	// means this fabric invalidates wholesale and the memo cannot pay.
	m.feedPolicy(e, dirtyCount)

	// Port violations outrank routing ones in the classic check order, so
	// answer them before paying for any group recompute; dirty groups wait.
	if m.nPort > 0 {
		for i, over := range m.portOver {
			if over {
				return Violation{Kind: ViolationPorts, Switch: topo.SwitchID(i)}, true
			}
		}
	}

	return e.incRecomputeDirty(v, ds, theta, split)
}

// incRecomputeDirty is the shared tail of a delta pass (topology or demand):
// recompute every dirty group in ascending order, fold the new contributions
// into running partial totals, re-sum affected totals in classic fold order,
// and refresh the utilization flags. Exits at the first proven violation
// (aborted=true), leaving later dirty groups dirty and queueing affected
// totals on staleLis for the next completed pass. m.epoch must have been
// advanced by the caller for this pass.
func (e *Evaluator) incRecomputeDirty(v *topo.View, ds *demand.Set, theta float64, split SplitMode) (Violation, bool) {
	m := e.inc
	ep := m.epoch
	scale := m.scale

	// 4. Recompute dirty groups in ascending order, folding each new
	// contribution into a running partial total (e.load as scratch) and
	// exiting at the first proven violation.
	marked := m.marked[:0]
	markLi := func(li int32) {
		if m.liMark[li] != ep {
			m.liMark[li] = ep
			e.load[li] = 0
			marked = append(marked, li)
		}
	}
	for _, li := range m.staleLis {
		markLi(li)
	}
	recomputed := 0
	for gi := range m.groups {
		if !m.dirty[gi] {
			continue
		}
		g := &m.groups[gi]
		for _, li := range g.lis {
			markLi(li)
		}
		m.unreach -= int(g.unreach)
		e.incComputeGroup(v, g, ds, split)
		m.unreach += int(g.unreach)
		m.dirty[gi] = false
		recomputed++
		var viol Violation
		if g.unreach > 0 {
			for _, di := range g.demands {
				d := ds.Demands[di]
				if !g.dstActive || !v.SwitchActive(d.Src) || !g.settled(d.Src) {
					viol = Violation{Kind: ViolationUnreachable, Demand: d}
					break
				}
			}
		}
		for j, li := range g.lis {
			markLi(li)
			e.load[li] += g.vals[j]
			if viol.Kind != ViolationNone {
				continue // keep folding so the memo state stays coherent
			}
			c := li >> 1
			var tot float64
			if m.liMark[2*c] == ep {
				tot = e.load[2*c]
			}
			if m.liMark[2*c+1] == ep {
				tot += e.load[2*c+1]
			}
			if tot*scale/e.caps[c] > theta {
				viol = Violation{Kind: ViolationUtilization, Circuit: topo.CircuitID(c), Util: tot * scale / e.caps[c]}
			}
		}
		if viol.Kind != ViolationNone {
			// Abort: later dirty groups stay dirty; queue every marked
			// index for re-summation on the next completed pass.
			e.GroupInvalidations += recomputed
			e.GroupsReused += len(m.groups) - recomputed
			m.staleLis = append(m.staleLis[:0], marked...)
			m.marked = marked[:0]
			return viol, true
		}
	}
	e.GroupInvalidations += recomputed
	e.GroupsReused += len(m.groups) - recomputed
	m.staleLis = m.staleLis[:0]

	// 5. Re-sum affected totals from zero in ascending group order — the
	// exact fold order of the classic path, so unchanged-state checks stay
	// bitwise-identical across delta, rebuild, and classic evaluation.
	// (Groups with a zero term for a marked index simply skip it, which
	// cannot perturb the sum.)
	for _, li := range marked {
		m.total[li] = 0
	}
	if len(marked) > 0 {
		for gi := range m.groups {
			g := &m.groups[gi]
			for j, li := range g.lis {
				if m.liMark[li] == ep {
					m.total[li] += g.vals[j]
				}
			}
		}
	}

	// 6. Refresh utilization flags on affected circuits. A circuit that
	// went down was tight in every group that loaded it, so those groups
	// were invalidated and its total is now zero.
	for _, li := range marked {
		c := li >> 1
		over := (m.total[2*c]+m.total[2*c+1])*scale/e.caps[c] > theta
		if over != m.over[c] {
			m.over[c] = over
			if over {
				m.nOver++
			} else {
				m.nOver--
			}
		}
	}
	m.marked = marked[:0]
	return Violation{}, false
}

// supported reports whether switch s still has at least one shortest-path
// next hop in the post-delta view (e.up), judged against the group's
// memoized distance field. Used when a tight circuit at a flow-less switch
// goes down: if another support remains, every memoized distance is still
// achieved and the whole placement stands.
func (e *Evaluator) supported(g *incGroup, s topo.SwitchID) bool {
	dsf := g.dist[s]
	arcs := e.arcs(s)
	for i := range arcs {
		a := &arcs[i]
		// Under the +1 bias an unsettled neighbor has dist 0, so the
		// candidate support distance must itself be positive to count.
		if e.up[a.ck] && dsf > a.metric && g.dist[a.other] == dsf-a.metric {
			return true
		}
	}
	return false
}

// incVerdict synthesizes a Violation from the memo's counters, scanning for
// a concrete offending element only when a counter is non-zero.
func (e *Evaluator) incVerdict(v *topo.View, ds *demand.Set) Violation {
	m := e.inc
	if m.nPort > 0 {
		for i, over := range m.portOver {
			if over {
				return Violation{Kind: ViolationPorts, Switch: topo.SwitchID(i)}
			}
		}
	}
	if m.unreach > 0 {
		for gi := range m.groups {
			g := &m.groups[gi]
			if g.unreach == 0 {
				continue
			}
			if !v.SwitchActive(g.dst) || !g.dstActive {
				return Violation{Kind: ViolationUnreachable, Demand: ds.Demands[g.demands[0]]}
			}
			for _, di := range g.demands {
				d := ds.Demands[di]
				if !v.SwitchActive(d.Src) || !g.settled(d.Src) {
					return Violation{Kind: ViolationUnreachable, Demand: d}
				}
			}
		}
	}
	if m.nOver > 0 {
		for c, over := range m.over {
			if over {
				cid := topo.CircuitID(c)
				util := (m.total[2*c] + m.total[2*c+1]) * m.scale / e.t.Circuit(cid).Capacity
				return Violation{Kind: ViolationUtilization, Circuit: cid, Util: util}
			}
		}
	}
	return Violation{}
}
