package routing

import (
	"math"
	"testing"

	"klotski/internal/demand"
	"klotski/internal/topo"
)

// asymmetricDiamond builds two parallel src→dst bridges with capacities 1
// and 2 — the HGRID v1/v2 coexistence situation of paper §7.1.
func asymmetricDiamond() (*topo.Topology, []topo.SwitchID, []topo.CircuitID) {
	t := topo.New("asym")
	src := t.AddSwitch(topo.Switch{Name: "src", Role: topo.RoleSSW})
	v1 := t.AddSwitch(topo.Switch{Name: "hgrid-v1", Role: topo.RoleFADU, Generation: 1})
	v2 := t.AddSwitch(topo.Switch{Name: "hgrid-v2", Role: topo.RoleFADU, Generation: 2})
	dst := t.AddSwitch(topo.Switch{Name: "eb", Role: topo.RoleEB})
	c0 := t.AddCircuit(src, v1, 1)
	c1 := t.AddCircuit(src, v2, 2)
	c2 := t.AddCircuit(v1, dst, 1)
	c3 := t.AddCircuit(v2, dst, 2)
	return t, []topo.SwitchID{src, v1, v2, dst}, []topo.CircuitID{c0, c1, c2, c3}
}

func TestWCMPSplitsByCapacity(t *testing.T) {
	tp, sw, ck := asymmetricDiamond()
	e := NewEvaluator(tp)
	ds := demand.Set{Demands: []demand.Demand{{Name: "d", Src: sw[0], Dst: sw[3], Rate: 1.8}}}
	res, viol := e.Evaluate(tp.NewView(), &ds, CheckOpts{Theta: 0.9, Split: SplitCapacityWeighted})
	if !viol.OK() {
		t.Fatalf("violation: %v", viol)
	}
	ab, ba := e.CircuitLoad(ck[0])
	if math.Abs(ab+ba-0.6) > 1e-9 {
		t.Errorf("v1 branch load = %v, want 0.6 (1/3 of 1.8)", ab+ba)
	}
	ab, ba = e.CircuitLoad(ck[1])
	if math.Abs(ab+ba-1.2) > 1e-9 {
		t.Errorf("v2 branch load = %v, want 1.2 (2/3 of 1.8)", ab+ba)
	}
	// Utilization equalizes at 0.6 on both branches.
	if math.Abs(res.MaxUtil-0.6) > 1e-9 {
		t.Errorf("MaxUtil = %v, want 0.6", res.MaxUtil)
	}
}

// TestWCMPFixesTheSection71Outage replays the paper's §7.1 incident: with
// HGRID v1 and v2 coexisting, plain ECMP sends half the traffic to the
// small v1 path and overloads it; capacity-weighted splitting balances it.
func TestWCMPFixesTheSection71Outage(t *testing.T) {
	tp, sw, _ := asymmetricDiamond()
	e := NewEvaluator(tp)
	ds := demand.Set{Demands: []demand.Demand{{Name: "d", Src: sw[0], Dst: sw[3], Rate: 1.8}}}

	viol := e.Check(tp.NewView(), &ds, CheckOpts{Theta: 0.75})
	if viol.Kind != ViolationUtilization {
		t.Fatalf("plain ECMP should overload the v1 path (0.9 util), got %v", viol)
	}
	viol = e.Check(tp.NewView(), &ds, CheckOpts{Theta: 0.75, Split: SplitCapacityWeighted})
	if !viol.OK() {
		t.Fatalf("WCMP should balance the asymmetric paths: %v", viol)
	}
}

func TestWCMPFlowConservation(t *testing.T) {
	tp, sw, _ := asymmetricDiamond()
	e := NewEvaluator(tp)
	ds := demand.Set{Demands: []demand.Demand{{Name: "d", Src: sw[0], Dst: sw[3], Rate: 1.5}}}
	if _, viol := e.Evaluate(tp.NewView(), &ds, CheckOpts{Theta: 1e9, Split: SplitCapacityWeighted}); !viol.OK() {
		t.Fatal(viol)
	}
	into := 0.0
	for _, cid := range tp.Switch(sw[3]).Circuits() {
		ab, ba := e.CircuitLoad(cid)
		into += ab + ba
	}
	if math.Abs(into-1.5) > 1e-9 {
		t.Errorf("flow into dst = %v, want 1.5", into)
	}
}

func TestWCMPEqualCapacitiesMatchECMP(t *testing.T) {
	tp, sw, ck := diamond() // symmetric capacities
	e := NewEvaluator(tp)
	ds := oneDemand(sw[0], sw[3], 8)
	e.Evaluate(tp.NewView(), &ds, CheckOpts{Theta: 1e9})
	var equal [4]float64
	for i, c := range ck {
		ab, ba := e.CircuitLoad(c)
		equal[i] = ab + ba
	}
	e.Evaluate(tp.NewView(), &ds, CheckOpts{Theta: 1e9, Split: SplitCapacityWeighted})
	for i, c := range ck {
		ab, ba := e.CircuitLoad(c)
		if math.Abs(ab+ba-equal[i]) > 1e-9 {
			t.Errorf("circuit %d: WCMP %v != ECMP %v on symmetric topology", c, ab+ba, equal[i])
		}
	}
}

func TestSplitModeString(t *testing.T) {
	if SplitEqual.String() != "equal" || SplitCapacityWeighted.String() != "capacity-weighted" {
		t.Error("SplitMode strings wrong")
	}
}
