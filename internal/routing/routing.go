// Package routing evaluates traffic placement on datacenter topologies.
//
// Klotski checks the safety of every intermediate network state a migration
// plan passes through (paper Eq. 4–6): every demand must have a path, and
// no circuit's utilization may exceed a bound θ. Following the paper (§5),
// the model is macro-scale: traffic is placed with equal-cost multi-path
// (ECMP) routing over hop-shortest paths, splitting equally at every hop,
// and only aggregate per-circuit load is tracked — no queueing or
// micro-scale congestion.
//
// The evaluator batches work per distinct destination: one reverse BFS
// computes hop distances for all demands sharing a destination, and one
// reverse-order sweep propagates all their flow simultaneously. A full
// check therefore costs O(|D_dst| · (|S| + |C|)) where |D_dst| is the number
// of distinct destinations — typically tens even when the demand set has
// hundreds of entries.
package routing

import (
	"fmt"
	"math"

	"klotski/internal/demand"
	"klotski/internal/topo"
)

// ViolationKind classifies why a network state failed its safety check.
type ViolationKind uint8

// Violation kinds.
const (
	ViolationNone        ViolationKind = iota
	ViolationUnreachable               // a demand has no path (Eq. 4)
	ViolationUtilization               // a circuit exceeds the utilization bound (Eq. 5)
	ViolationPorts                     // a switch exceeds its port budget (Eq. 6)
)

func (k ViolationKind) String() string {
	switch k {
	case ViolationNone:
		return "none"
	case ViolationUnreachable:
		return "unreachable demand"
	case ViolationUtilization:
		return "circuit over utilization bound"
	case ViolationPorts:
		return "switch over port budget"
	}
	return fmt.Sprintf("ViolationKind(%d)", uint8(k))
}

// Violation describes the first constraint failure found during a check.
// The zero value means "no violation".
type Violation struct {
	Kind    ViolationKind
	Circuit topo.CircuitID // for utilization violations
	Switch  topo.SwitchID  // for port violations
	Demand  demand.Demand  // for unreachable-demand violations
	Util    float64        // offending utilization, for utilization violations
}

// OK reports whether the violation is empty (the state passed).
func (v Violation) OK() bool { return v.Kind == ViolationNone }

func (v Violation) String() string {
	switch v.Kind {
	case ViolationNone:
		return "ok"
	case ViolationUnreachable:
		return fmt.Sprintf("unreachable: %s (%d -> %d)", v.Demand.Name, v.Demand.Src, v.Demand.Dst)
	case ViolationUtilization:
		return fmt.Sprintf("utilization %.3f on circuit %d", v.Util, v.Circuit)
	case ViolationPorts:
		return fmt.Sprintf("port budget exceeded on switch %d", v.Switch)
	}
	return v.Kind.String()
}

// SplitMode selects how traffic divides among equal-cost next hops.
type SplitMode uint8

const (
	// SplitEqual is plain ECMP: equal shares per next-hop circuit. The
	// paper's evaluation model (§5).
	SplitEqual SplitMode = iota

	// SplitCapacityWeighted divides flow proportionally to next-hop
	// circuit capacity (WCMP). This models the temporary routing
	// configurations operators install when parallel paths have
	// asymmetric capacity — the paper's §7.1 outage: equal ECMP across
	// HGRID v1 and v2 overloads the smaller generation.
	SplitCapacityWeighted
)

func (m SplitMode) String() string {
	if m == SplitCapacityWeighted {
		return "capacity-weighted"
	}
	return "equal"
}

// CheckOpts parameterizes a safety check.
type CheckOpts struct {
	// Theta is the maximum allowed circuit utilization (paper default 0.75).
	Theta float64

	// Split selects ECMP (default) or capacity-weighted WCMP splitting.
	Split SplitMode

	// FunnelFactor, when > 1, models transient traffic funneling (paper
	// §2.2, §7.2): circuits listed in FunnelCircuits are held to the
	// tighter bound Theta/FunnelFactor, leaving headroom for the moment
	// when sibling circuits drain asynchronously and traffic piles onto
	// the survivors. Zero or 1 disables the adjustment.
	FunnelFactor   float64
	FunnelCircuits []topo.CircuitID

	// DemandScale, when > 0 and ≠ 1, multiplies every demand rate at
	// comparison time — the time-indexed demand of paper §7.1: a boundary
	// state reached k steps into the migration is checked against
	// forecasted demand Forecast.ScaleAt(k) without materializing a scaled
	// Set per check. Scaling is applied to utilization comparisons and
	// reported loads only; reachability and port constraints are
	// rate-independent and unaffected. Zero means 1 (no scaling).
	DemandScale float64
}

// scale returns the effective demand multiplier for the check.
func (o CheckOpts) scale() float64 {
	if o.DemandScale <= 0 {
		return 1
	}
	return o.DemandScale
}

// Result summarizes a full (non-early-exit) evaluation of a network state.
type Result struct {
	MaxUtil        float64        // highest circuit utilization observed
	MaxUtilCircuit topo.CircuitID // circuit achieving MaxUtil
	MinResidual    float64        // lowest spare fraction (1 - util) over up circuits that carry load or could
	Unreachable    int            // number of demands with no path
	TotalLoad      float64        // sum of per-circuit loads (Tbps·hops)
}

// adjEntry is one directed arc of the evaluator's flattened adjacency: the
// circuit as seen from one endpoint, with the hot per-edge fields (peer,
// metric, directional load index, capacity) pulled into a single cache line
// so the BFS and sweep inner loops never chase Switch/Circuit pointers.
type adjEntry struct {
	other  topo.SwitchID  // peer endpoint
	ck     topo.CircuitID // circuit identity
	metric int32
	li     int32 // load index for flow from this endpoint toward other
	cap    float64
}

// Evaluator computes ECMP traffic placement over views of one topology.
// It reuses internal buffers across calls and is therefore not safe for
// concurrent use; create one evaluator per goroutine with Clone or
// NewEvaluator.
type Evaluator struct {
	t *topo.Topology

	// Flattened CSR adjacency: arcs of switch s are adj[adjOff[s]:adjOff[s+1]].
	adj    []adjEntry
	adjOff []int32

	// Per-circuit up-state for the current check, filled once per call
	// (classic path) or maintained against the memo anchor (delta path).
	// Replaces per-edge View.CircuitUp lookups in the inner loops.
	up []bool
	// caps caches per-circuit capacity for the bound checks.
	caps []float64
	// upForMemo records whether e.up currently mirrors the incremental
	// memo's anchor view; a classic run overwrites e.up and clears it.
	upForMemo bool

	// Per-switch scratch. dist is -1 and inflow 0 everywhere except the
	// current queue (the last BFS's settled set); each bfs call starts by
	// resetting the previous queue's entries, so no O(|S|) clear and no
	// per-read version check is ever needed.
	dist    []int32
	inflow  []float64
	queue   []topo.SwitchID
	buckets [][]topo.SwitchID // Dial's algorithm distance buckets
	tight   []int32           // sweep scratch: indices of tight arcs at one switch

	// Per-circuit directional load, cleared per call.
	// load[2c] is flow A→B on circuit c; load[2c+1] is flow B→A.
	load []float64

	// Group-local sweep scratch: one destination group's directional loads
	// and the list of indices it touched, folded into load (or snapshotted
	// into the incremental memo) after each sweep and re-zeroed.
	gload    []float64
	gtouched []int32

	// Per-circuit funneling flag for the current call.
	funnel    []bool
	funnelSet bool

	// Per-switch up-circuit count, for port checks.
	degree []int32

	// Incremental memo for CheckDelta; nil until first use.
	inc *incMemo

	// Stats counters for the lifetime of the evaluator.
	Checks             int // number of Check/Evaluate/CheckDelta calls
	BFSes              int // number of per-destination BFS sweeps
	GroupInvalidations int // destination groups recomputed by CheckDelta
	GroupsReused       int // destination groups served from the memo
	IncRebuilds        int // CheckDelta calls that fell back to a full rebuild
	IncDisables        int // times the engine disabled itself (memo reuse too low)
}

// NewEvaluator returns an evaluator for views over t.
func NewEvaluator(t *topo.Topology) *Evaluator {
	n, m := t.NumSwitches(), t.NumCircuits()
	e := &Evaluator{
		t:      t,
		dist:   make([]int32, n),
		inflow: make([]float64, n),
		queue:  make([]topo.SwitchID, 0, n),
		load:   make([]float64, 2*m),
		gload:  make([]float64, 2*m),
		// gtouched can reach every directional index of one group's sweep;
		// sizing it (and tight, bounded by max switch degree) up front keeps
		// the sweep inner loops free of grow-and-copy allocations.
		gtouched: make([]int32, 0, 2*m),
		funnel:   make([]bool, m),
		degree:   make([]int32, n),
		up:       make([]bool, m),
		caps:     make([]float64, m),
		adjOff:   make([]int32, n+1),
	}
	for c := 0; c < m; c++ {
		e.caps[c] = t.Circuit(topo.CircuitID(c)).Capacity
	}
	for i := range e.dist {
		e.dist[i] = -1
	}
	maxDeg := 0
	for i := 0; i < n; i++ {
		deg := len(t.Switch(topo.SwitchID(i)).Circuits())
		e.adjOff[i+1] = e.adjOff[i] + int32(deg)
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	e.tight = make([]int32, 0, maxDeg)
	// Arcs are laid out in each switch's Circuits() order, so the sweep's
	// share-accumulation order — and therefore every float sum — is
	// identical to iterating the switch's circuit list directly.
	e.adj = make([]adjEntry, 0, e.adjOff[n])
	for i := 0; i < n; i++ {
		u := topo.SwitchID(i)
		for _, cid := range t.Switch(u).Circuits() {
			ck := t.Circuit(cid)
			dir := int32(0)
			if ck.B == u { // flow from u travels B→A
				dir = 1
			}
			e.adj = append(e.adj, adjEntry{
				other: ck.Other(u), ck: cid, metric: ck.Metric,
				li: 2*int32(cid) + dir, cap: ck.Capacity,
			})
		}
	}
	return e
}

// arcs returns the flattened adjacency of switch s.
func (e *Evaluator) arcs(s topo.SwitchID) []adjEntry {
	return e.adj[e.adjOff[s]:e.adjOff[s+1]]
}

// fillUp snapshots the view's per-circuit up-state into e.up for the
// BFS/sweep inner loops.
func (e *Evaluator) fillUp(v *topo.View) {
	e.upForMemo = false
	for c := range e.up {
		e.up[c] = v.CircuitUp(topo.CircuitID(c))
	}
}

// Clone returns an independent evaluator over the same topology, for use
// from another goroutine.
func (e *Evaluator) Clone() *Evaluator { return e.Fork() }

// Fork returns an independent evaluator over the same topology that shares
// e's immutable precompute — the flattened CSR adjacency, its offsets, and
// the per-circuit capacities — while owning fresh mutable scratch and an
// empty incremental memo. A fork is safe to use concurrently with e and
// with other forks; it is the cheap way to stamp out per-worker evaluators,
// costing a handful of scratch allocations instead of an adjacency rebuild.
func (e *Evaluator) Fork() *Evaluator {
	n, m := e.t.NumSwitches(), e.t.NumCircuits()
	f := &Evaluator{
		t:        e.t,
		adj:      e.adj,
		adjOff:   e.adjOff,
		caps:     e.caps,
		dist:     make([]int32, n),
		inflow:   make([]float64, n),
		queue:    make([]topo.SwitchID, 0, n),
		load:     make([]float64, 2*m),
		gload:    make([]float64, 2*m),
		gtouched: make([]int32, 0, 2*m),
		tight:    make([]int32, 0, cap(e.tight)),
		funnel:   make([]bool, m),
		degree:   make([]int32, n),
		up:       make([]bool, m),
	}
	for i := range f.dist {
		f.dist[i] = -1
	}
	return f
}

// Check verifies the demand and port constraints on the view and returns
// the first violation found, exiting as early as possible. A zero Violation
// (Kind == ViolationNone) means the state is safe.
func (e *Evaluator) Check(v *topo.View, ds *demand.Set, opts CheckOpts) Violation {
	return e.run(v, ds, opts, true, nil)
}

// Evaluate places all demands and returns aggregate statistics without
// early exit. Constraint violations are still detected: if the returned
// Violation is non-zero the Result fields describe the full placement
// anyway (useful for greedy baselines that rank states by residual
// capacity).
func (e *Evaluator) Evaluate(v *topo.View, ds *demand.Set, opts CheckOpts) (Result, Violation) {
	var res Result
	viol := e.run(v, ds, opts, false, &res)
	return res, viol
}

// CircuitLoad returns the directional loads placed on circuit c by the most
// recent Check or Evaluate call. Valid until the next call.
func (e *Evaluator) CircuitLoad(c topo.CircuitID) (ab, ba float64) {
	return e.load[2*c], e.load[2*c+1]
}

func (e *Evaluator) run(v *topo.View, ds *demand.Set, opts CheckOpts, earlyExit bool, res *Result) Violation {
	e.Checks++
	t := e.t
	theta := opts.Theta
	if theta <= 0 {
		theta = 0.75
	}

	// Snapshot the per-circuit up-state once; the BFS and sweep inner loops
	// read e.up instead of recomputing CircuitUp per edge visit.
	e.upForMemo = false
	// Port constraints (Eq. 6): the number of up circuits on a switch must
	// not exceed its physical port budget.
	for i := range e.degree {
		e.degree[i] = 0
	}
	for c := 0; c < t.NumCircuits(); c++ {
		up := v.CircuitUp(topo.CircuitID(c))
		e.up[c] = up
		if up {
			ck := t.Circuit(topo.CircuitID(c))
			e.degree[ck.A]++
			e.degree[ck.B]++
		}
	}
	for i := 0; i < t.NumSwitches(); i++ {
		s := t.Switch(topo.SwitchID(i))
		if s.Ports > 0 && int(e.degree[i]) > s.Ports {
			if earlyExit {
				return Violation{Kind: ViolationPorts, Switch: s.ID}
			}
			// Record the first port violation but keep evaluating so the
			// caller still gets full placement statistics.
			return e.evalDemands(v, ds, opts, theta, earlyExit, res,
				Violation{Kind: ViolationPorts, Switch: s.ID})
		}
	}
	return e.evalDemands(v, ds, opts, theta, earlyExit, res, Violation{})
}

func (e *Evaluator) evalDemands(v *topo.View, ds *demand.Set, opts CheckOpts, theta float64, earlyExit bool, res *Result, pending Violation) Violation {
	for i := range e.load {
		e.load[i] = 0
	}
	e.setFunnel(opts)
	scale := opts.scale()

	// Group demands by destination and process each group with one reverse
	// BFS plus one reverse-topological flow sweep.
	firstViol := pending
	record := func(viol Violation) bool {
		if firstViol.Kind == ViolationNone {
			firstViol = viol
		}
		return earlyExit
	}

	// Iteration is per distinct destination group, via the prebuilt
	// destination index. Each group is swept into the group-local scratch
	// (e.gload/e.gtouched) and then folded into the totals in ascending
	// group order — the same summation order the incremental path uses, so
	// both produce bitwise-identical loads and verdicts.
	dsts, byDst := ds.DestinationIndex()
	for gi, dst := range dsts {
		group := byDst[gi]
		if !v.SwitchActive(dst) {
			for _, di := range group {
				if res != nil {
					res.Unreachable++
				}
				if record(Violation{Kind: ViolationUnreachable, Demand: ds.Demands[di]}) {
					return firstViol
				}
			}
			continue
		}
		e.bfs(v, dst)

		// Seed inflow at each source of this destination group.
		for _, di := range group {
			d := ds.Demands[di]
			if !v.SwitchActive(d.Src) || e.distOf(d.Src) < 0 {
				if res != nil {
					res.Unreachable++
				}
				if record(Violation{Kind: ViolationUnreachable, Demand: d}) {
					return firstViol
				}
				continue
			}
			e.addInflow(d.Src, d.Rate)
		}

		e.sweepGroup(v, dst, opts.Split)

		// Fold the group's contribution into the totals and check the
		// utilization bound on every circuit it loaded. Loads only grow, so
		// checking after the group's full sweep yields the same verdict as
		// checking after every share addition.
		for _, li := range e.gtouched {
			e.load[li] += e.gload[li]
			e.gload[li] = 0
			cid := topo.CircuitID(li >> 1)
			util := (e.load[2*cid] + e.load[2*cid+1]) * scale / e.caps[cid]
			bound := theta
			if e.funnelSet && e.funnel[cid] {
				bound = theta / opts.FunnelFactor
			}
			if util > bound {
				record(Violation{Kind: ViolationUtilization, Circuit: cid, Util: util})
			}
		}
		e.gtouched = e.gtouched[:0]
		if earlyExit && firstViol.Kind != ViolationNone {
			return firstViol
		}
	}

	if res != nil {
		e.fillResult(v, scale, res)
	}
	return firstViol
}

// sweepGroup propagates the seeded inflow of one destination group from the
// farthest switches toward dst, accumulating directional circuit loads into
// e.gload and recording each loaded index (first touch) in e.gtouched. On
// entry e.queue must hold the group's BFS visitation order (ascending
// distance) and e.gload must be all-zero; the caller drains e.gtouched and
// re-zeroes e.gload when folding the contribution out.
func (e *Evaluator) sweepGroup(v *topo.View, dst topo.SwitchID, split SplitMode) {
	for qi := len(e.queue) - 1; qi >= 0; qi-- {
		u := e.queue[qi]
		f := e.inflowOf(u)
		if f == 0 || u == dst {
			continue
		}
		du := e.distOf(u)
		// First pass: collect the tight (shortest-path DAG) arcs and their
		// total next-hop weight — the count of shortest-path circuits for
		// plain ECMP, or their capacity sum for WCMP. The distribution pass
		// then touches only the tight arcs.
		tight := e.tight[:0]
		weight := 0.0
		arcs := e.arcs(u)
		for i := range arcs {
			a := &arcs[i]
			if !e.up[a.ck] {
				continue
			}
			if e.distOf(a.other) == du-a.metric {
				tight = append(tight, int32(i))
				if split == SplitCapacityWeighted {
					weight += a.cap
				} else {
					weight++
				}
			}
		}
		e.tight = tight[:0]
		if weight == 0 {
			// Unreachable flow should have been caught at the source;
			// this can only happen on a disconnected shortest-path DAG,
			// which BFS construction precludes.
			panic("routing: internal error: flow stranded at switch with no next hop")
		}
		for _, ti := range tight {
			a := &arcs[ti]
			share := f / weight
			if split == SplitCapacityWeighted {
				share = f * a.cap / weight
			}
			if e.gload[a.li] == 0 {
				e.gtouched = append(e.gtouched, a.li)
			}
			e.gload[a.li] += share
			e.addInflow(a.other, share)
		}
	}
}

// setFunnel populates the per-circuit funneling flags for this call.
func (e *Evaluator) setFunnel(opts CheckOpts) {
	if e.funnelSet {
		for i := range e.funnel {
			e.funnel[i] = false
		}
		e.funnelSet = false
	}
	if opts.FunnelFactor > 1 && len(opts.FunnelCircuits) > 0 {
		for _, c := range opts.FunnelCircuits {
			e.funnel[c] = true
		}
		e.funnelSet = true
	}
}

// bfs computes metric-shortest distances from dst over the active graph of
// v, filling e.dist/e.queue. Distances are valid (unsettled = -1) from the
// call until the next bfs, which starts by resetting the previous settled
// set's dist/inflow entries — cheaper than an O(|S|) clear and free of
// per-read version checks in the inner loops. After the call e.queue holds
// the settled switches in ascending-distance order, which the load sweep
// consumes in reverse.
//
// The implementation is Dial's bucket-queue variant of Dijkstra: routing
// metrics are small positive integers (IGP-style), so distances are
// bounded by diameter × max-metric and a bucket array beats a heap.
func (e *Evaluator) bfs(v *topo.View, dst topo.SwitchID) {
	e.BFSes++
	for _, u := range e.queue {
		e.dist[u] = -1
		e.inflow[u] = 0
	}
	e.queue = e.queue[:0]
	for i := range e.buckets {
		e.buckets[i] = e.buckets[i][:0]
	}
	e.setDist(dst, 0)
	e.pushBucket(0, dst)
	for d := 0; d < len(e.buckets); d++ {
		for bi := 0; bi < len(e.buckets[d]); bi++ {
			u := e.buckets[d][bi]
			if e.distOf(u) != int32(d) {
				continue // stale entry: settled earlier at a shorter distance
			}
			e.queue = append(e.queue, u)
			arcs := e.arcs(u)
			for i := range arcs {
				a := &arcs[i]
				if !e.up[a.ck] {
					continue
				}
				nd := int32(d) + a.metric
				if cur := e.distOf(a.other); cur < 0 || nd < cur {
					e.setDist(a.other, nd)
					e.pushBucket(int(nd), a.other)
				}
			}
		}
	}
}

// pushBucket appends a switch to the distance bucket, growing the bucket
// array as needed.
func (e *Evaluator) pushBucket(d int, s topo.SwitchID) {
	for d >= len(e.buckets) {
		e.buckets = append(e.buckets, nil)
	}
	e.buckets[d] = append(e.buckets[d], s)
}

func (e *Evaluator) distOf(s topo.SwitchID) int32 { return e.dist[s] }

func (e *Evaluator) setDist(s topo.SwitchID, d int32) { e.dist[s] = d }

func (e *Evaluator) inflowOf(s topo.SwitchID) float64 { return e.inflow[s] }

func (e *Evaluator) addInflow(s topo.SwitchID, f float64) {
	e.inflow[s] += f
}

func (e *Evaluator) fillResult(v *topo.View, scale float64, res *Result) {
	t := e.t
	res.MinResidual = math.Inf(1)
	res.MaxUtilCircuit = topo.NoCircuit
	for c := 0; c < t.NumCircuits(); c++ {
		cid := topo.CircuitID(c)
		if !v.CircuitUp(cid) {
			continue
		}
		ck := t.Circuit(cid)
		load := (e.load[2*c] + e.load[2*c+1]) * scale
		util := load / ck.Capacity
		res.TotalLoad += load
		if util > res.MaxUtil {
			res.MaxUtil = util
			res.MaxUtilCircuit = cid
		}
		if resid := 1 - util; resid < res.MinResidual {
			res.MinResidual = resid
		}
	}
	if math.IsInf(res.MinResidual, 1) {
		res.MinResidual = 0
	}
}
