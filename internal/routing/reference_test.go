package routing

import (
	"math"
	"math/rand"
	"testing"

	"klotski/internal/demand"
	"klotski/internal/topo"
)

// randomLayeredTopo builds a random 4-layer network: RSW sources, two
// middle layers, EBB sinks, with random extra edges, capacities, and
// metrics. Layered structure keeps the reference evaluator's recursion
// bounded while still exercising convergent/divergent ECMP DAGs.
func randomLayeredTopo(rng *rand.Rand) (*topo.Topology, []topo.SwitchID, []topo.SwitchID) {
	t := topo.New("rand")
	layers := [][]topo.SwitchID{}
	roles := []topo.Role{topo.RoleRSW, topo.RoleFSW, topo.RoleSSW, topo.RoleEBB}
	for li, role := range roles {
		n := 2 + rng.Intn(3)
		var layer []topo.SwitchID
		for i := 0; i < n; i++ {
			layer = append(layer, t.AddSwitch(topo.Switch{
				Name: role.String() + "-" + string(rune('a'+li)) + string(rune('0'+i)),
				Role: role,
			}))
		}
		layers = append(layers, layer)
	}
	// Wire consecutive layers: every node gets at least one uplink, plus
	// random extras with random capacity and occasional metric 2.
	for li := 0; li+1 < len(layers); li++ {
		for _, a := range layers[li] {
			up := layers[li+1][rng.Intn(len(layers[li+1]))]
			cid := t.AddCircuit(a, up, 1+4*rng.Float64())
			if rng.Intn(4) == 0 {
				t.SetMetric(cid, 2)
			}
			for _, b := range layers[li+1] {
				if b != up && rng.Intn(3) == 0 {
					cid := t.AddCircuit(a, b, 1+4*rng.Float64())
					if rng.Intn(4) == 0 {
						t.SetMetric(cid, 2)
					}
				}
			}
		}
	}
	return t, layers[0], layers[len(layers)-1]
}

// TestEvaluatorMatchesReference cross-validates the production evaluator
// (Dial's buckets, reverse-order sweep, versioned shared buffers) against
// the independent reference implementation (Bellman-Ford + memoized
// top-down recursion) on randomized layered topologies, random drains, and
// both splitting policies.
func TestEvaluatorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 80; trial++ {
		tp, srcs, dsts := randomLayeredTopo(rng)
		view := tp.NewView()
		// Random drains (avoiding sources and sinks).
		for i := 0; i < tp.NumSwitches()/4; i++ {
			id := topo.SwitchID(rng.Intn(tp.NumSwitches()))
			if tp.Switch(id).Role == topo.RoleFSW || tp.Switch(id).Role == topo.RoleSSW {
				view.DrainSwitch(id)
			}
		}
		var ds demand.Set
		for i := 0; i < 1+rng.Intn(4); i++ {
			ds.Add(demand.Demand{
				Name: "d" + string(rune('0'+i)),
				Src:  srcs[rng.Intn(len(srcs))],
				Dst:  dsts[rng.Intn(len(dsts))],
				Rate: 0.5 + 2*rng.Float64(),
			})
		}
		for _, split := range []SplitMode{SplitEqual, SplitCapacityWeighted} {
			want, routed := ReferenceLoads(tp, view, &ds, split)
			eval := NewEvaluator(tp)
			_, viol := eval.Evaluate(view, &ds, CheckOpts{Theta: 1e9, Split: split})
			gotRouted := viol.Kind != ViolationUnreachable
			if routed != gotRouted {
				t.Fatalf("trial %d split %v: routability disagreement (ref %v, eval %v: %v)",
					trial, split, routed, gotRouted, viol)
			}
			for c := 0; c < tp.NumCircuits(); c++ {
				cid := topo.CircuitID(c)
				ab, ba := eval.CircuitLoad(cid)
				got := ab + ba
				if math.Abs(got-want[cid]) > 1e-9*(1+want[cid]) {
					t.Fatalf("trial %d split %v circuit %d: eval %v, reference %v",
						trial, split, cid, got, want[cid])
				}
			}
		}
	}
}
