package routing

import (
	"math"

	"klotski/internal/demand"
	"klotski/internal/topo"
)

// ReferenceLoads computes per-circuit traffic placement with a deliberately
// independent, obviously-correct algorithm: Bellman-Ford distances and
// memoized top-down flow recursion, no shared buffers, no versioned
// arrays, no early exits. It exists to cross-validate Evaluator in tests
// (see TestEvaluatorMatchesReference); production code uses Evaluator.
//
// The returned map holds total (both-direction) load per up circuit; the
// bool reports whether every demand was routable.
func ReferenceLoads(t *topo.Topology, v *topo.View, ds *demand.Set, split SplitMode) (map[topo.CircuitID]float64, bool) {
	loads := make(map[topo.CircuitID]float64)
	allRouted := true
	for _, d := range ds.Demands {
		if !v.SwitchActive(d.Src) || !v.SwitchActive(d.Dst) {
			allRouted = false
			continue
		}
		dist := bellmanFord(t, v, d.Dst)
		if math.IsInf(dist[d.Src], 1) {
			allRouted = false
			continue
		}
		// Memoized top-down: flow(u) splits among shortest next hops.
		memoShare := make(map[topo.SwitchID][]nextHop)
		var route func(u topo.SwitchID, f float64)
		route = func(u topo.SwitchID, f float64) {
			if u == d.Dst || f == 0 {
				return
			}
			hops, ok := memoShare[u]
			if !ok {
				hops = nextHops(t, v, dist, u, split)
				memoShare[u] = hops
			}
			total := 0.0
			for _, h := range hops {
				total += h.weight
			}
			for _, h := range hops {
				share := f * h.weight / total
				loads[h.circuit] += share
				route(h.to, share)
			}
		}
		route(d.Src, d.Rate)
	}
	return loads, allRouted
}

type nextHop struct {
	circuit topo.CircuitID
	to      topo.SwitchID
	weight  float64
}

func nextHops(t *topo.Topology, v *topo.View, dist []float64, u topo.SwitchID, split SplitMode) []nextHop {
	var hops []nextHop
	for _, cid := range t.Switch(u).Circuits() {
		if !v.CircuitUp(cid) {
			continue
		}
		ck := t.Circuit(cid)
		w := ck.Other(u)
		if dist[w] == dist[u]-float64(ck.Metric) {
			weight := 1.0
			if split == SplitCapacityWeighted {
				weight = ck.Capacity
			}
			hops = append(hops, nextHop{circuit: cid, to: w, weight: weight})
		}
	}
	return hops
}

// bellmanFord computes metric distances to dst by plain relaxation —
// O(V·E), slow, simple, and entirely unlike the production Dial's-buckets
// implementation.
func bellmanFord(t *topo.Topology, v *topo.View, dst topo.SwitchID) []float64 {
	n := t.NumSwitches()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[dst] = 0
	for round := 0; round < n; round++ {
		changed := false
		for c := 0; c < t.NumCircuits(); c++ {
			cid := topo.CircuitID(c)
			if !v.CircuitUp(cid) {
				continue
			}
			ck := t.Circuit(cid)
			m := float64(ck.Metric)
			if dist[ck.B]+m < dist[ck.A] {
				dist[ck.A] = dist[ck.B] + m
				changed = true
			}
			if dist[ck.A]+m < dist[ck.B] {
				dist[ck.B] = dist[ck.A] + m
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}
