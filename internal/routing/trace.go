package routing

import (
	"fmt"
	"sort"

	"klotski/internal/topo"
)

// PathDAG is the ECMP forwarding structure of one (src, dst) pair on a
// given network state: every switch that lies on a metric-shortest path,
// with the circuits it forwards on. Operators use it to answer "where will
// this demand actually flow at step 7 of the plan?".
type PathDAG struct {
	Src, Dst topo.SwitchID

	// Cost is the metric distance from Src to Dst.
	Cost int32

	// NextHops maps each on-path switch to the circuits it uses toward
	// Dst, each entry sorted by circuit ID. Dst itself has no entry.
	NextHops map[topo.SwitchID][]topo.CircuitID
}

// Switches returns the on-path switches (including Src, excluding Dst),
// sorted by ID.
func (p *PathDAG) Switches() []topo.SwitchID {
	out := make([]topo.SwitchID, 0, len(p.NextHops))
	for s := range p.NextHops {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Width returns the ECMP fan-out at the source — how many parallel
// first-hop circuits carry the demand.
func (p *PathDAG) Width() int { return len(p.NextHops[p.Src]) }

// Trace computes the ECMP forwarding DAG for src→dst on the view. It
// returns an error when either endpoint is inactive or no path exists.
func (e *Evaluator) Trace(v *topo.View, src, dst topo.SwitchID) (*PathDAG, error) {
	t := e.t
	if !v.SwitchActive(src) || !v.SwitchActive(dst) {
		return nil, fmt.Errorf("routing: trace %s -> %s: endpoint inactive",
			t.Switch(src).Name, t.Switch(dst).Name)
	}
	e.fillUp(v)
	e.bfs(v, dst)
	if e.distOf(src) < 0 {
		return nil, fmt.Errorf("routing: trace %s -> %s: no path",
			t.Switch(src).Name, t.Switch(dst).Name)
	}
	dag := &PathDAG{
		Src: src, Dst: dst,
		Cost:     e.distOf(src),
		NextHops: make(map[topo.SwitchID][]topo.CircuitID),
	}
	// Walk the shortest-path DAG forward from src.
	stack := []topo.SwitchID{src}
	seen := map[topo.SwitchID]bool{src: true}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == dst {
			continue
		}
		du := e.distOf(u)
		for _, cid := range t.Switch(u).Circuits() {
			if !v.CircuitUp(cid) {
				continue
			}
			ck := t.Circuit(cid)
			w := ck.Other(u)
			if e.distOf(w) != du-ck.Metric {
				continue
			}
			dag.NextHops[u] = append(dag.NextHops[u], cid)
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
		sort.Slice(dag.NextHops[u], func(i, j int) bool { return dag.NextHops[u][i] < dag.NextHops[u][j] })
	}
	return dag, nil
}
