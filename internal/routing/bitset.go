package routing

import "math/bits"

// Bitset is a packed bit vector over small integer indices (switch or
// circuit IDs). It replaces []bool scratch on paths where the win is
// allocation count and cache footprint rather than single-bit access time:
// one word covers 64 switches, and population counts over masked ranges
// (e.g. "active switches in one DC") collapse to a handful of POPCNT ops.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits, all clear.
func NewBitset(n int) Bitset { return make(Bitset, bitsetWords(n)) }

// bitsetWords returns the word count needed for n bits.
func bitsetWords(n int) int { return (n + 63) / 64 }

// Get reports whether bit i is set.
func (b Bitset) Get(i int) bool { return b[uint(i)>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bitset) Set(i int) { b[uint(i)>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bitset) Clear(i int) { b[uint(i)>>6] &^= 1 << (uint(i) & 63) }

// Reset clears every bit.
func (b Bitset) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// CopyFrom overwrites b with src; the two must be the same length.
func (b Bitset) CopyFrom(src Bitset) { copy(b, src) }

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// CountAnd returns the number of bits set in both b and mask, without
// materializing the intersection. mask may be shorter than b; missing
// words count as zero.
func (b Bitset) CountAnd(mask Bitset) int {
	n := len(b)
	if len(mask) < n {
		n = len(mask)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(b[i] & mask[i])
	}
	return c
}
