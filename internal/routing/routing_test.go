package routing

import (
	"math"
	"testing"
	"testing/quick"

	"klotski/internal/demand"
	"klotski/internal/topo"
)

// diamond builds: src —(c0)— m1 —(c2)— dst, src —(c1)— m2 —(c3)— dst.
func diamond() (*topo.Topology, []topo.SwitchID, []topo.CircuitID) {
	t := topo.New("diamond")
	src := t.AddSwitch(topo.Switch{Name: "src", Role: topo.RoleRSW})
	m1 := t.AddSwitch(topo.Switch{Name: "m1", Role: topo.RoleFSW})
	m2 := t.AddSwitch(topo.Switch{Name: "m2", Role: topo.RoleFSW})
	dst := t.AddSwitch(topo.Switch{Name: "dst", Role: topo.RoleSSW})
	c0 := t.AddCircuit(src, m1, 10)
	c1 := t.AddCircuit(src, m2, 10)
	c2 := t.AddCircuit(m1, dst, 10)
	c3 := t.AddCircuit(m2, dst, 10)
	return t, []topo.SwitchID{src, m1, m2, dst}, []topo.CircuitID{c0, c1, c2, c3}
}

func oneDemand(src, dst topo.SwitchID, rate float64) demand.Set {
	return demand.Set{Demands: []demand.Demand{{Name: "d", Src: src, Dst: dst, Rate: rate}}}
}

func TestECMPSplitsEqually(t *testing.T) {
	tp, sw, ck := diamond()
	e := NewEvaluator(tp)
	ds := oneDemand(sw[0], sw[3], 8)
	res, viol := e.Evaluate(tp.NewView(), &ds, CheckOpts{Theta: 0.9})
	if !viol.OK() {
		t.Fatalf("unexpected violation: %v", viol)
	}
	for _, c := range ck {
		ab, ba := e.CircuitLoad(c)
		if got := ab + ba; math.Abs(got-4) > 1e-9 {
			t.Errorf("circuit %d load = %v, want 4", c, got)
		}
	}
	if math.Abs(res.MaxUtil-0.4) > 1e-9 {
		t.Errorf("MaxUtil = %v, want 0.4", res.MaxUtil)
	}
}

func TestSinglePathWhenBranchDrained(t *testing.T) {
	tp, sw, ck := diamond()
	v := tp.NewView()
	v.DrainSwitch(sw[2]) // kill m2 branch
	e := NewEvaluator(tp)
	ds := oneDemand(sw[0], sw[3], 8)
	_, viol := e.Evaluate(v, &ds, CheckOpts{Theta: 0.9})
	if !viol.OK() {
		t.Fatalf("unexpected violation: %v", viol)
	}
	ab, ba := e.CircuitLoad(ck[0])
	if ab+ba != 8 {
		t.Errorf("surviving branch load = %v, want 8", ab+ba)
	}
	ab, ba = e.CircuitLoad(ck[1])
	if ab+ba != 0 {
		t.Errorf("drained branch load = %v, want 0", ab+ba)
	}
}

func TestUtilizationViolation(t *testing.T) {
	tp, sw, _ := diamond()
	e := NewEvaluator(tp)
	ds := oneDemand(sw[0], sw[3], 16) // 8 per branch = 0.8 util
	viol := e.Check(tp.NewView(), &ds, CheckOpts{Theta: 0.75})
	if viol.Kind != ViolationUtilization {
		t.Fatalf("want utilization violation, got %v", viol)
	}
	if viol.Util <= 0.75 {
		t.Errorf("violation util = %v, should exceed theta", viol.Util)
	}
}

func TestUnreachableDemand(t *testing.T) {
	tp, sw, _ := diamond()
	v := tp.NewView()
	v.DrainSwitch(sw[1])
	v.DrainSwitch(sw[2]) // dst fully cut off
	e := NewEvaluator(tp)
	ds := oneDemand(sw[0], sw[3], 1)
	viol := e.Check(v, &ds, CheckOpts{Theta: 0.75})
	if viol.Kind != ViolationUnreachable {
		t.Fatalf("want unreachable violation, got %v", viol)
	}
	if viol.Demand.Name != "d" {
		t.Errorf("violation should carry the demand, got %+v", viol.Demand)
	}
}

func TestInactiveEndpointsAreUnreachable(t *testing.T) {
	tp, sw, _ := diamond()
	e := NewEvaluator(tp)
	ds := oneDemand(sw[0], sw[3], 1)

	v := tp.NewView()
	v.DrainSwitch(sw[3]) // destination itself down
	if viol := e.Check(v, &ds, CheckOpts{}); viol.Kind != ViolationUnreachable {
		t.Errorf("inactive dst: got %v", viol)
	}
	v.Reset()
	v.DrainSwitch(sw[0]) // source down
	if viol := e.Check(v, &ds, CheckOpts{}); viol.Kind != ViolationUnreachable {
		t.Errorf("inactive src: got %v", viol)
	}
}

func TestPortViolation(t *testing.T) {
	tp, sw, _ := diamond()
	tp.SetPorts(sw[0], 1) // src has 2 active circuits
	e := NewEvaluator(tp)
	ds := oneDemand(sw[0], sw[3], 1)
	viol := e.Check(tp.NewView(), &ds, CheckOpts{Theta: 0.75})
	if viol.Kind != ViolationPorts || viol.Switch != sw[0] {
		t.Fatalf("want port violation on src, got %v", viol)
	}
}

func TestPortViolationRespectsView(t *testing.T) {
	tp, sw, ck := diamond()
	tp.SetPorts(sw[0], 1)
	v := tp.NewView()
	v.DrainCircuit(ck[1]) // now only 1 active circuit on src
	e := NewEvaluator(tp)
	ds := oneDemand(sw[0], sw[3], 1)
	if viol := e.Check(v, &ds, CheckOpts{Theta: 0.75}); !viol.OK() {
		t.Fatalf("port check should respect the view: %v", viol)
	}
}

func TestEvaluateReportsResultDespitePortViolation(t *testing.T) {
	tp, sw, _ := diamond()
	tp.SetPorts(sw[0], 1)
	e := NewEvaluator(tp)
	ds := oneDemand(sw[0], sw[3], 8)
	res, viol := e.Evaluate(tp.NewView(), &ds, CheckOpts{Theta: 0.75})
	if viol.Kind != ViolationPorts {
		t.Fatalf("want port violation, got %v", viol)
	}
	if res.MaxUtil == 0 {
		t.Error("Evaluate should still place traffic for ranking")
	}
}

func TestMetricShiftsPaths(t *testing.T) {
	tp, sw, ck := diamond()
	// Make the m1 branch cost 2+2=4 while m2 stays 1+1=2: all traffic
	// should take m2.
	tp.SetMetric(ck[0], 2)
	tp.SetMetric(ck[2], 2)
	e := NewEvaluator(tp)
	ds := oneDemand(sw[0], sw[3], 8)
	if _, viol := e.Evaluate(tp.NewView(), &ds, CheckOpts{Theta: 0.9}); !viol.OK() {
		t.Fatalf("violation: %v", viol)
	}
	if ab, ba := e.CircuitLoad(ck[0]); ab+ba != 0 {
		t.Errorf("expensive branch should be idle, carries %v", ab+ba)
	}
	if ab, ba := e.CircuitLoad(ck[1]); ab+ba != 8 {
		t.Errorf("cheap branch should carry 8, got %v", ab+ba)
	}
}

func TestMetricTieSplitsAcrossMixedHopCounts(t *testing.T) {
	// src—(metric 2)—dst  versus  src—m—dst with metric 1+1: equal cost,
	// ECMP must use both. This is the DMAG layer-insertion situation.
	tp := topo.New("mixed")
	src := tp.AddSwitch(topo.Switch{Name: "src", Role: topo.RoleFAUU})
	m := tp.AddSwitch(topo.Switch{Name: "ma", Role: topo.RoleMA})
	dst := tp.AddSwitch(topo.Switch{Name: "eb", Role: topo.RoleEB})
	direct := tp.AddCircuit(src, dst, 10)
	tp.SetMetric(direct, 2)
	up := tp.AddCircuit(src, m, 10)
	down := tp.AddCircuit(m, dst, 10)
	e := NewEvaluator(tp)
	ds := oneDemand(src, dst, 8)
	if _, viol := e.Evaluate(tp.NewView(), &ds, CheckOpts{Theta: 0.9}); !viol.OK() {
		t.Fatalf("violation: %v", viol)
	}
	if ab, ba := e.CircuitLoad(direct); ab+ba != 4 {
		t.Errorf("direct path should carry 4, got %v", ab+ba)
	}
	if ab, ba := e.CircuitLoad(up); ab+ba != 4 {
		t.Errorf("detour should carry 4, got %v", ab+ba)
	}
	if ab, ba := e.CircuitLoad(down); ab+ba != 4 {
		t.Errorf("detour second hop should carry 4, got %v", ab+ba)
	}
}

func TestFunnelingTightensBound(t *testing.T) {
	tp, sw, ck := diamond()
	e := NewEvaluator(tp)
	ds := oneDemand(sw[0], sw[3], 8) // 0.4 util per branch
	opts := CheckOpts{Theta: 0.75, FunnelFactor: 2, FunnelCircuits: []topo.CircuitID{ck[0]}}
	viol := e.Check(tp.NewView(), &ds, opts)
	if viol.Kind != ViolationUtilization || viol.Circuit != ck[0] {
		t.Fatalf("funneled circuit should violate 0.375 bound at 0.4 util, got %v", viol)
	}
	// Without funneling the same state passes.
	if viol := e.Check(tp.NewView(), &ds, CheckOpts{Theta: 0.75}); !viol.OK() {
		t.Fatalf("state should pass without funneling: %v", viol)
	}
	// Funnel flags must not leak into the next call.
	if viol := e.Check(tp.NewView(), &ds, CheckOpts{Theta: 0.75}); !viol.OK() {
		t.Fatalf("funnel flags leaked: %v", viol)
	}
}

func TestBidirectionalDemandsShareCapacity(t *testing.T) {
	tp, sw, ck := diamond()
	e := NewEvaluator(tp)
	ds := demand.Set{Demands: []demand.Demand{
		{Name: "fwd", Src: sw[0], Dst: sw[3], Rate: 8},
		{Name: "rev", Src: sw[3], Dst: sw[0], Rate: 8},
	}}
	if _, viol := e.Evaluate(tp.NewView(), &ds, CheckOpts{Theta: 0.9}); !viol.OK() {
		t.Fatalf("violation: %v", viol)
	}
	ab, ba := e.CircuitLoad(ck[0])
	if ab != 4 || ba != 4 {
		t.Errorf("directional loads = %v/%v, want 4/4", ab, ba)
	}
}

func TestDefaultThetaIs075(t *testing.T) {
	tp, sw, _ := diamond()
	e := NewEvaluator(tp)
	ds := oneDemand(sw[0], sw[3], 15.2) // 0.76 per branch
	if viol := e.Check(tp.NewView(), &ds, CheckOpts{}); viol.Kind != ViolationUtilization {
		t.Fatalf("zero theta should default to 0.75, got %v", viol)
	}
	ds = oneDemand(sw[0], sw[3], 14.8) // 0.74 per branch
	if viol := e.Check(tp.NewView(), &ds, CheckOpts{}); !viol.OK() {
		t.Fatalf("0.74 should pass at default theta: %v", viol)
	}
}

func TestEvaluatorReuseIsClean(t *testing.T) {
	tp, sw, ck := diamond()
	e := NewEvaluator(tp)
	ds := oneDemand(sw[0], sw[3], 8)
	for i := 0; i < 3; i++ {
		res, viol := e.Evaluate(tp.NewView(), &ds, CheckOpts{Theta: 0.9})
		if !viol.OK() || math.Abs(res.MaxUtil-0.4) > 1e-9 {
			t.Fatalf("iteration %d: res=%+v viol=%v", i, res, viol)
		}
	}
	if e.Checks != 3 {
		t.Errorf("Checks = %d, want 3", e.Checks)
	}
	_ = ck
}

func TestCloneEvaluator(t *testing.T) {
	tp, sw, _ := diamond()
	e := NewEvaluator(tp)
	c := e.Clone()
	ds := oneDemand(sw[0], sw[3], 8)
	if viol := c.Check(tp.NewView(), &ds, CheckOpts{}); !viol.OK() {
		t.Fatalf("cloned evaluator broken: %v", viol)
	}
	if e.Checks != 0 {
		t.Error("clone must not share counters")
	}
}

func TestViolationStrings(t *testing.T) {
	cases := []Violation{
		{},
		{Kind: ViolationUnreachable, Demand: demand.Demand{Name: "x"}},
		{Kind: ViolationUtilization, Circuit: 3, Util: 0.9},
		{Kind: ViolationPorts, Switch: 7},
	}
	for _, v := range cases {
		if v.String() == "" {
			t.Errorf("empty String for %v", v.Kind)
		}
	}
	if !(Violation{}).OK() {
		t.Error("zero violation should be OK")
	}
}

// Property: total load on circuits incident to the destination equals the
// total demand rate (flow conservation), for random diamond-mesh demands.
func TestFlowConservation(t *testing.T) {
	tp, sw, _ := diamond()
	e := NewEvaluator(tp)
	f := func(r1, r2 uint8) bool {
		rate1, rate2 := float64(r1)+1, float64(r2)+1
		ds := demand.Set{Demands: []demand.Demand{
			{Name: "a", Src: sw[0], Dst: sw[3], Rate: rate1},
			{Name: "b", Src: sw[1], Dst: sw[3], Rate: rate2},
		}}
		if _, viol := e.Evaluate(tp.NewView(), &ds, CheckOpts{Theta: 1e9}); viol.Kind == ViolationUnreachable {
			return false
		}
		into := 0.0
		for _, cid := range tp.Switch(sw[3]).Circuits() {
			ab, ba := e.CircuitLoad(cid)
			into += ab + ba
		}
		return math.Abs(into-(rate1+rate2)) < 1e-9*(rate1+rate2+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: loads scale linearly with demand rates.
func TestLoadLinearity(t *testing.T) {
	tp, sw, ck := diamond()
	e := NewEvaluator(tp)
	f := func(r uint8) bool {
		rate := float64(r%100) + 1
		ds := oneDemand(sw[0], sw[3], rate)
		e.Evaluate(tp.NewView(), &ds, CheckOpts{Theta: 1e9})
		ab, ba := e.CircuitLoad(ck[0])
		return math.Abs((ab+ba)-rate/2) < 1e-9*rate
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCheckDiamond(b *testing.B) {
	tp, sw, _ := diamond()
	e := NewEvaluator(tp)
	v := tp.NewView()
	ds := oneDemand(sw[0], sw[3], 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if viol := e.Check(v, &ds, CheckOpts{Theta: 0.9}); !viol.OK() {
			b.Fatal(viol)
		}
	}
}

// TestEpochWrap forces the incremental memo's mark epoch through its uint32
// wraparound and verifies delta checks stay correct — a long-lived
// evaluator in a planning service crosses this boundary. It also exercises
// the evaluator's queue-cleanup invariant (dist/inflow reset between
// evaluations) on a long-lived evaluator.
func TestEpochWrap(t *testing.T) {
	tp, sw, _ := diamond()
	e := NewEvaluator(tp)
	ds := oneDemand(sw[0], sw[3], 8)
	v := tp.NewView()
	if viol := e.CheckDelta(v, nil, nil, &ds, CheckOpts{Theta: 0.9}); !viol.OK() {
		t.Fatalf("seeding delta check: %v", viol)
	}
	e.inc.epoch = ^uint32(0) - 2
	v.Track()
	for i := 0; i < 6; i++ {
		// The single-group diamond invalidates wholesale on every flip, so
		// the self-disable policy would shut the engine off before the
		// epoch wraps; re-arm it each iteration to keep exercising the
		// mark arrays across the wrap.
		e.inc.off, e.inc.passes, e.inc.sumDirty, e.inc.sumGroups = false, 0, 0, 0
		id := topo.CircuitID(i % tp.NumCircuits())
		v.SetCircuitActive(id, false)
		tsw, tck := v.TakeTouched()
		tsw, tck = ExpandTouched(tp, tsw, tck)
		e.CheckDelta(v, tsw, tck, &ds, CheckOpts{Theta: 0.9})

		v.SetCircuitActive(id, true)
		tsw, tck = v.TakeTouched()
		tsw, tck = ExpandTouched(tp, tsw, tck)
		viol := e.CheckDelta(v, tsw, tck, &ds, CheckOpts{Theta: 0.9})
		if !viol.OK() {
			t.Fatalf("iteration %d across epoch wrap: viol=%v (epoch now %d)", i, viol, e.inc.epoch)
		}
		res, viol := NewEvaluator(tp).Evaluate(v, &ds, CheckOpts{Theta: 0.9})
		if !viol.OK() || math.Abs(res.MaxUtil-0.4) > 1e-9 {
			t.Fatalf("iteration %d reference evaluation: res=%+v viol=%v", i, res, viol)
		}
	}
	if e.inc.epoch >= ^uint32(0)-2 {
		t.Fatalf("memo epoch did not wrap: %d", e.inc.epoch)
	}
}
