package routing

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"klotski/internal/demand"
	"klotski/internal/topo"
)

// randomFabric builds a random multi-layer fabric with rng: three tiers of
// switches wired tier-to-tier with random capacities and metrics, plus a
// few random port budgets.
func randomFabric(rng *rand.Rand) (*topo.Topology, []topo.SwitchID) {
	t := topo.New("rand")
	tiers := [][]topo.SwitchID{}
	roles := []topo.Role{topo.RoleRSW, topo.RoleFSW, topo.RoleSSW}
	for ti, role := range roles {
		n := 2 + rng.Intn(4)
		var tier []topo.SwitchID
		for i := 0; i < n; i++ {
			ports := 0
			if rng.Intn(4) == 0 {
				ports = 2 + rng.Intn(6)
			}
			tier = append(tier, t.AddSwitch(topo.Switch{
				Name:  fmt.Sprintf("t%d-%d", ti, i),
				Role:  role,
				Ports: ports,
			}))
		}
		tiers = append(tiers, tier)
	}
	var all []topo.SwitchID
	for _, tier := range tiers {
		all = append(all, tier...)
	}
	for ti := 0; ti+1 < len(tiers); ti++ {
		for _, a := range tiers[ti] {
			for _, b := range tiers[ti+1] {
				if rng.Float64() < 0.8 {
					c := t.AddCircuit(a, b, 5+rng.Float64()*20)
					if rng.Intn(3) == 0 {
						t.SetMetric(c, int32(1+rng.Intn(3)))
					}
				}
			}
		}
	}
	// A few same-tier cross links for path diversity.
	for _, tier := range tiers {
		for i := 0; i+1 < len(tier); i++ {
			if rng.Float64() < 0.3 {
				t.AddCircuit(tier[i], tier[i+1], 5+rng.Float64()*10)
			}
		}
	}
	return t, all
}

func randomDemands(rng *rand.Rand, sw []topo.SwitchID) demand.Set {
	var ds demand.Set
	n := 3 + rng.Intn(10)
	for i := 0; i < n; i++ {
		src := sw[rng.Intn(len(sw))]
		dst := sw[rng.Intn(len(sw))]
		if src == dst {
			continue
		}
		ds.Add(demand.Demand{
			Name: fmt.Sprintf("d%d", i),
			Src:  src,
			Dst:  dst,
			Rate: 0.5 + rng.Float64()*4,
		})
	}
	if ds.Len() == 0 {
		ds.Add(demand.Demand{Name: "d0", Src: sw[0], Dst: sw[len(sw)-1], Rate: 1})
	}
	return ds
}

// TestCheckDeltaMatchesCheckRandomWalk is the evaluator-level equivalence
// property: after every step of a random walk over view mutations,
// CheckDelta (fed the tracked touched elements, closed via ExpandTouched)
// must agree with a from-scratch Check on the verdict, and the memoized
// per-circuit totals must be bitwise identical to a full Evaluate's loads.
func TestCheckDeltaMatchesCheckRandomWalk(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tp, sw := randomFabric(rng)
			ds := randomDemands(rng, sw)
			split := SplitEqual
			if seed%3 == 0 {
				split = SplitCapacityWeighted
			}
			opts := CheckOpts{Theta: 0.5 + rng.Float64()*0.4, Split: split}

			inc := NewEvaluator(tp)
			full := NewEvaluator(tp)
			view := tp.NewView()
			view.Track()

			for step := 0; step < 60; step++ {
				// Mutate a random small batch of elements.
				for k := 0; k < 1+rng.Intn(3); k++ {
					if rng.Intn(2) == 0 && tp.NumSwitches() > 0 {
						id := topo.SwitchID(rng.Intn(tp.NumSwitches()))
						view.SetSwitchActive(id, !view.SwitchActive(id))
					} else {
						id := topo.CircuitID(rng.Intn(tp.NumCircuits()))
						view.SetCircuitActive(id, !view.CircuitActive(id))
					}
				}
				tsw, tck := view.TakeTouched()
				tsw, tck = ExpandTouched(tp, tsw, tck)

				got := inc.CheckDelta(view, tsw, tck, &ds, opts)
				_, want := full.Evaluate(view, &ds, opts)
				if got.OK() != want.OK() {
					t.Fatalf("step %d: CheckDelta=%v, full Check=%v", step, got, want)
				}
				// The memoized totals are exact — bitwise — whenever the
				// state is safe and the engine is live: a violating delta
				// pass may exit at the first proven violation with later
				// groups pending, and after a self-disable the memo is
				// frozen at its last anchor view.
				if got.OK() && !inc.IncrementalOff() {
					for c := 0; c < tp.NumCircuits(); c++ {
						fa, fb := full.CircuitLoad(topo.CircuitID(c))
						ia := inc.inc.total[2*c]
						ib := inc.inc.total[2*c+1]
						if ia != fa || ib != fb {
							t.Fatalf("step %d: circuit %d memo load (%v,%v) != full (%v,%v)",
								step, c, ia, ib, fa, fb)
						}
					}
				}
			}
			if inc.GroupsReused == 0 && !inc.IncrementalOff() {
				t.Errorf("incremental path never reused a group over the walk")
			}
		})
	}
}

// TestCheckDeltaRebuildTriggers verifies the memo is rebuilt, not reused,
// when the check configuration changes under it.
func TestCheckDeltaRebuildTriggers(t *testing.T) {
	tp, sw, _ := diamondForInc()
	ds := oneDemand(sw[0], sw[3], 8)
	e := NewEvaluator(tp)
	v := tp.NewView()

	if viol := e.CheckDelta(v, nil, nil, &ds, CheckOpts{Theta: 0.9}); !viol.OK() {
		t.Fatalf("initial delta check: %v", viol)
	}
	if e.IncRebuilds != 1 {
		t.Fatalf("IncRebuilds = %d, want 1", e.IncRebuilds)
	}
	// Tighter theta must invalidate the memoized verdict inputs.
	if viol := e.CheckDelta(v, nil, nil, &ds, CheckOpts{Theta: 0.3}); viol.Kind != ViolationUtilization {
		t.Fatalf("tight-theta delta check = %v, want utilization violation", viol)
	}
	if e.IncRebuilds != 2 {
		t.Fatalf("IncRebuilds = %d, want 2 after theta change", e.IncRebuilds)
	}
	// Growing the demand set must trigger a rebuild too.
	ds.Add(demand.Demand{Name: "d2", Src: sw[1], Dst: sw[3], Rate: 1})
	if viol := e.CheckDelta(v, nil, nil, &ds, CheckOpts{Theta: 0.9}); !viol.OK() {
		t.Fatalf("after demand add: %v", viol)
	}
	if e.IncRebuilds != 3 {
		t.Fatalf("IncRebuilds = %d, want 3 after demand add", e.IncRebuilds)
	}
	// ResetIncremental forces the next delta call to rebuild.
	e.ResetIncremental()
	if viol := e.CheckDelta(v, nil, nil, &ds, CheckOpts{Theta: 0.9}); !viol.OK() {
		t.Fatalf("after reset: %v", viol)
	}
	if e.IncRebuilds != 4 {
		t.Fatalf("IncRebuilds = %d, want 4 after reset", e.IncRebuilds)
	}
}

// diamondForInc mirrors the diamond helper; duplicated name-free so this
// file stays independent of test ordering.
func diamondForInc() (*topo.Topology, []topo.SwitchID, []topo.CircuitID) {
	return diamond()
}

// TestCheckDeltaFunnelingBypasses verifies funneled options fall back to a
// classic full check and drop the memo.
func TestCheckDeltaFunnelingBypasses(t *testing.T) {
	tp, sw, ck := diamond()
	ds := oneDemand(sw[0], sw[3], 8)
	e := NewEvaluator(tp)
	v := tp.NewView()

	if viol := e.CheckDelta(v, nil, nil, &ds, CheckOpts{Theta: 0.9}); !viol.OK() {
		t.Fatalf("plain delta check: %v", viol)
	}
	// 8 Tbps splits 4/4, so each circuit runs at util 0.4; the funneled
	// bound 0.9/3 = 0.3 must trip it, which requires the classic path
	// (memoized bounds know nothing of the funnel set).
	viol := e.CheckDelta(v, nil, nil, &ds, CheckOpts{
		Theta: 0.9, FunnelFactor: 3, FunnelCircuits: []topo.CircuitID{ck[0]},
	})
	if viol.Kind != ViolationUtilization {
		t.Fatalf("funneled delta check = %v, want utilization violation", viol)
	}
	if e.inc.valid {
		t.Fatalf("memo still valid after funneled bypass")
	}
}

// TestCheckDeltaDstDrainUndrain exercises the inactive-destination settled
// set {dst}: draining and undraining the destination must flip the verdict
// both ways through the delta path.
func TestCheckDeltaDstDrainUndrain(t *testing.T) {
	tp, sw, _ := diamond()
	ds := oneDemand(sw[0], sw[3], 8)
	e := NewEvaluator(tp)
	v := tp.NewView()
	v.Track()
	opts := CheckOpts{Theta: 0.9}

	if viol := e.CheckDelta(v, nil, nil, &ds, opts); !viol.OK() {
		t.Fatalf("initial: %v", viol)
	}
	v.DrainSwitch(sw[3])
	tsw, tck := v.TakeTouched()
	tsw, tck = ExpandTouched(tp, tsw, tck)
	if viol := e.CheckDelta(v, tsw, tck, &ds, opts); viol.Kind != ViolationUnreachable {
		t.Fatalf("dst drained: %v, want unreachable", viol)
	}
	v.UndrainSwitch(sw[3])
	tsw, tck = v.TakeTouched()
	tsw, tck = ExpandTouched(tp, tsw, tck)
	if viol := e.CheckDelta(v, tsw, tck, &ds, opts); !viol.OK() {
		t.Fatalf("dst undrained: %v", viol)
	}
}

// TestCheckDeltaPortFlip exercises the incremental port accounting.
func TestCheckDeltaPortFlip(t *testing.T) {
	tp := topo.New("ports")
	a := tp.AddSwitch(topo.Switch{Name: "a", Role: topo.RoleRSW})
	b := tp.AddSwitch(topo.Switch{Name: "b", Role: topo.RoleFSW, Ports: 1})
	c := tp.AddSwitch(topo.Switch{Name: "c", Role: topo.RoleSSW})
	c0 := tp.AddCircuit(a, b, 10)
	tp.AddCircuit(b, c, 10)
	c2 := tp.AddCircuit(a, c, 10)
	ds := oneDemand(a, c, 1)
	e := NewEvaluator(tp)
	v := tp.NewView()
	v.Track()
	// b has two up circuits against a budget of one.
	v.DrainCircuit(c0)
	v.TakeTouched() // starting state for the memo; no deltas yet
	opts := CheckOpts{Theta: 0.9}
	if viol := e.CheckDelta(v, nil, nil, &ds, opts); !viol.OK() {
		t.Fatalf("initial: %v", viol)
	}
	v.UndrainCircuit(c0)
	tsw, tck := v.TakeTouched()
	tsw, tck = ExpandTouched(tp, tsw, tck)
	if viol := e.CheckDelta(v, tsw, tck, &ds, opts); viol.Kind != ViolationPorts {
		t.Fatalf("port overload: %v, want ports violation", viol)
	}
	v.DrainCircuit(c2)
	v.DrainCircuit(c0)
	tsw, tck = v.TakeTouched()
	tsw, tck = ExpandTouched(tp, tsw, tck)
	if viol := e.CheckDelta(v, tsw, tck, &ds, opts); viol.Kind != ViolationUnreachable {
		t.Fatalf("a cut off: %v, want unreachable", viol)
	}
}

// TestExpandTouchedCloses spot-checks the closure: a circuit brings its
// endpoints; a switch brings its incident circuits (and their endpoints).
func TestExpandTouchedCloses(t *testing.T) {
	tp, sw, ck := diamond()
	gotSw, gotCk := ExpandTouched(tp, nil, []topo.CircuitID{ck[0]})
	if !containsSw(gotSw, sw[0]) || !containsSw(gotSw, sw[1]) {
		t.Fatalf("circuit expansion missing endpoints: %v", gotSw)
	}
	if len(gotCk) != 1 {
		t.Fatalf("circuit-only expansion grew circuits: %v", gotCk)
	}
	gotSw, gotCk = ExpandTouched(tp, []topo.SwitchID{sw[1]}, nil)
	if !containsCk(gotCk, ck[0]) || !containsCk(gotCk, ck[2]) {
		t.Fatalf("switch expansion missing incident circuits: %v", gotCk)
	}
	if !containsSw(gotSw, sw[0]) || !containsSw(gotSw, sw[3]) {
		t.Fatalf("switch expansion missing circuit endpoints: %v", gotSw)
	}
}

func containsSw(s []topo.SwitchID, want topo.SwitchID) bool {
	for _, x := range s {
		if x == want {
			return true
		}
	}
	return false
}

func containsCk(s []topo.CircuitID, want topo.CircuitID) bool {
	for _, x := range s {
		if x == want {
			return true
		}
	}
	return false
}

// TestCheckDemandDeltaMatchesCheckRandomWalk is the demand-side
// equivalence property: after every step of a seeded random walk over
// demand *rates* (mutated in place, topology fixed), CheckDemandDelta fed
// the changed indices must agree with a from-scratch Evaluate on the
// verdict, and the memoized per-circuit totals must be bitwise identical
// to the full evaluation's loads. The walk also jitters the forecast
// scale (exercising the memo's soft rescale path) and interleaves
// topology deltas so both delta entry points share one memo coherently.
func TestCheckDemandDeltaMatchesCheckRandomWalk(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tp, sw := randomFabric(rng)
			ds := randomDemands(rng, sw)
			split := SplitEqual
			if seed%3 == 0 {
				split = SplitCapacityWeighted
			}
			opts := CheckOpts{Theta: 0.5 + rng.Float64()*0.4, Split: split}

			inc := NewEvaluator(tp)
			full := NewEvaluator(tp)
			view := tp.NewView()
			view.Track()

			for step := 0; step < 60; step++ {
				if step%17 == 8 {
					// Horizon moved: same demand set, new uniform scale.
					opts.DemandScale = 1 + rng.Float64()*0.5
				}
				if step%5 == 4 {
					// Interleave a topology delta through the same memo.
					id := topo.CircuitID(rng.Intn(tp.NumCircuits()))
					view.SetCircuitActive(id, !view.CircuitActive(id))
					tsw, tck := view.TakeTouched()
					tsw, tck = ExpandTouched(tp, tsw, tck)
					got := inc.CheckDelta(view, tsw, tck, &ds, opts)
					_, want := full.Evaluate(view, &ds, opts)
					if got.OK() != want.OK() {
						t.Fatalf("step %d (topo): CheckDelta=%v, full=%v", step, got, want)
					}
					continue
				}
				// Mutate a random small batch of demand rates in place.
				var changed []int32
				for k := 0; k < 1+rng.Intn(3); k++ {
					i := rng.Intn(ds.Len())
					ds.Demands[i].Rate *= 0.5 + rng.Float64()
					changed = append(changed, int32(i))
				}
				got := inc.CheckDemandDelta(view, changed, &ds, opts)
				_, want := full.Evaluate(view, &ds, opts)
				if got.OK() != want.OK() {
					t.Fatalf("step %d: CheckDemandDelta=%v, full Check=%v", step, got, want)
				}
				if got.OK() && !inc.IncrementalOff() {
					for c := 0; c < tp.NumCircuits(); c++ {
						fa, fb := full.CircuitLoad(topo.CircuitID(c))
						ia := inc.inc.total[2*c]
						ib := inc.inc.total[2*c+1]
						if ia != fa || ib != fb {
							t.Fatalf("step %d: circuit %d memo load (%v,%v) != full (%v,%v)",
								step, c, ia, ib, fa, fb)
						}
					}
				}
			}
		})
	}
}

// TestCheckDemandDeltaSelfDisable verifies the shared invalidation policy
// also guards the demand path: wholesale rate changes every pass must trip
// the self-disable, after which verdicts still match the classic check.
func TestCheckDemandDeltaSelfDisable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tp, sw := randomFabric(rng)
	ds := randomDemands(rng, sw)
	opts := CheckOpts{Theta: 0.9}
	inc := NewEvaluator(tp)
	full := NewEvaluator(tp)
	view := tp.NewView()

	all := make([]int32, ds.Len())
	for i := range all {
		all[i] = int32(i)
	}
	for pass := 0; pass < 6; pass++ {
		for i := range ds.Demands {
			ds.Demands[i].Rate *= 0.8 + rng.Float64()*0.4
		}
		got := inc.CheckDemandDelta(view, all, &ds, opts)
		_, want := full.Evaluate(view, &ds, opts)
		if got.OK() != want.OK() {
			t.Fatalf("pass %d: CheckDemandDelta=%v, full=%v", pass, got, want)
		}
	}
	if !inc.IncrementalOff() {
		t.Fatalf("wholesale demand deltas did not trip the self-disable")
	}
}

// TestGroupFoldMatchesReference guards the restructured classic path: the
// group-fold evaluation must still agree with the naive reference
// implementation on random fabrics.
func TestGroupFoldMatchesReference(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tp, sw := randomFabric(rng)
		ds := randomDemands(rng, sw)
		e := NewEvaluator(tp)
		v := tp.NewView()
		for _, split := range []SplitMode{SplitEqual, SplitCapacityWeighted} {
			_, viol := e.Evaluate(v, &ds, CheckOpts{Theta: 100, Split: split})
			want, routed := ReferenceLoads(tp, v, &ds, split)
			if routed != (viol.Kind != ViolationUnreachable) {
				t.Fatalf("seed %d split %v: routed=%v but viol=%v", seed, split, routed, viol)
			}
			for c, w := range want {
				ab, ba := e.CircuitLoad(c)
				if got := ab + ba; math.Abs(got-w) > 1e-6 {
					t.Fatalf("seed %d split %v circuit %d: load %v, want %v", seed, split, c, got, w)
				}
			}
		}
	}
}
