package demand

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"klotski/internal/topo"
)

func twoSwitchTopo() *topo.Topology {
	t := topo.New("pair")
	a := t.AddSwitch(topo.Switch{Name: "a", Role: topo.RoleRSW})
	b := t.AddSwitch(topo.Switch{Name: "b", Role: topo.RoleEBB})
	t.AddCircuit(a, b, 1)
	return t
}

func TestSetTotalAndScale(t *testing.T) {
	var s Set
	s.Add(Demand{Name: "d1", Src: 0, Dst: 1, Rate: 2})
	s.Add(Demand{Name: "d2", Src: 1, Dst: 0, Rate: 3})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Total(); got != 5 {
		t.Fatalf("Total = %v, want 5", got)
	}
	scaled := s.Scaled(2)
	if got := scaled.Total(); got != 10 {
		t.Fatalf("scaled Total = %v, want 10", got)
	}
	if s.Total() != 5 {
		t.Error("Scaled must not mutate the source set")
	}
}

func TestCloneIsDeep(t *testing.T) {
	var s Set
	s.Add(Demand{Name: "d", Src: 0, Dst: 1, Rate: 1})
	c := s.Clone()
	c.Demands[0].Rate = 99
	if s.Demands[0].Rate != 1 {
		t.Error("Clone should copy demand storage")
	}
}

func TestDestinations(t *testing.T) {
	var s Set
	s.Add(Demand{Src: 0, Dst: 5, Rate: 1})
	s.Add(Demand{Src: 1, Dst: 3, Rate: 1})
	s.Add(Demand{Src: 2, Dst: 5, Rate: 1})
	ds := s.Destinations()
	if len(ds) != 2 || ds[0] != 3 || ds[1] != 5 {
		t.Fatalf("Destinations = %v, want [3 5]", ds)
	}
}

func TestValidate(t *testing.T) {
	tp := twoSwitchTopo()
	good := Set{Demands: []Demand{{Name: "ok", Src: 0, Dst: 1, Rate: 1}}}
	if err := good.Validate(tp); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	cases := []Demand{
		{Name: "self", Src: 0, Dst: 0, Rate: 1},
		{Name: "range", Src: 0, Dst: 9, Rate: 1},
		{Name: "neg", Src: 0, Dst: 1, Rate: -1},
		{Name: "zero", Src: 0, Dst: 1, Rate: 0},
		{Name: "nan", Src: 0, Dst: 1, Rate: math.NaN()},
		{Name: "inf", Src: 0, Dst: 1, Rate: math.Inf(1)},
	}
	for _, d := range cases {
		bad := Set{Demands: []Demand{d}}
		if err := bad.Validate(tp); err == nil {
			t.Errorf("demand %q should fail validation", d.Name)
		}
	}
}

func TestForecastGrowth(t *testing.T) {
	s := Set{Demands: []Demand{{Src: 0, Dst: 1, Rate: 100}}}
	f := Forecast{GrowthPerStep: 0.1}
	grown := f.At(s, 2)
	want := 100 * 1.1 * 1.1
	if got := grown.Demands[0].Rate; math.Abs(got-want) > 1e-9 {
		t.Fatalf("grown rate = %v, want %v", got, want)
	}
	if s.Demands[0].Rate != 100 {
		t.Error("Forecast.At must not mutate source")
	}
	same := f.At(s, 0)
	if same.Demands[0].Rate != 100 {
		t.Error("zero steps should be identity")
	}
}

func TestForecastZeroGrowthIdentity(t *testing.T) {
	s := Set{Demands: []Demand{{Src: 0, Dst: 1, Rate: 7}}}
	out := Forecast{}.At(s, 100)
	if out.Demands[0].Rate != 7 {
		t.Error("zero growth should be identity")
	}
}

func TestSurge(t *testing.T) {
	var s Set
	for i := 0; i < 100; i++ {
		s.Add(Demand{Src: 0, Dst: 1, Rate: 1})
	}
	rng := rand.New(rand.NewSource(1))
	out := Surge{Fraction: 0.5, Multiplier: 3}.Apply(s, rng)
	surged := 0
	for _, d := range out.Demands {
		switch d.Rate {
		case 1:
		case 3:
			surged++
		default:
			t.Fatalf("unexpected rate %v", d.Rate)
		}
	}
	if surged < 30 || surged > 70 {
		t.Errorf("surged %d of 100 demands; expected roughly half", surged)
	}
	if s.Total() != 100 {
		t.Error("Surge.Apply must not mutate source")
	}
}

// Property: Total is linear under Scaled.
func TestScaledLinearity(t *testing.T) {
	f := func(rates []float64, factor float64) bool {
		if math.IsNaN(factor) || math.IsInf(factor, 0) {
			return true
		}
		var s Set
		sum := 0.0
		for _, r := range rates {
			r = math.Abs(r)
			if math.IsInf(r, 0) || math.IsNaN(r) || r > 1e12 {
				return true
			}
			s.Add(Demand{Src: 0, Dst: 1, Rate: r})
			sum += r
		}
		scaled := s.Scaled(2)
		got := scaled.Total()
		return math.Abs(got-2*sum) <= 1e-6*math.Max(1, math.Abs(2*sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Forecast.At(s, a+b) == Forecast.At(Forecast.At(s, a), b).
func TestForecastComposes(t *testing.T) {
	f := func(a, b uint8) bool {
		sa, sb := int(a%20), int(b%20)
		s := Set{Demands: []Demand{{Src: 0, Dst: 1, Rate: 10}}}
		fc := Forecast{GrowthPerStep: 0.03}
		direct := fc.At(s, sa+sb).Demands[0].Rate
		composed := fc.At(fc.At(s, sa), sb).Demands[0].Rate
		return math.Abs(direct-composed) < 1e-9*direct
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestForecastScaleAtEdges pins the horizon-scale table's edge behavior:
// identity at horizon zero (and for negative or zero-growth inputs), and a
// finite clamp — never +Inf — when the compounded growth overflows, so
// utilization comparisons stay well-ordered instead of producing NaNs.
func TestForecastScaleAtEdges(t *testing.T) {
	f := Forecast{GrowthPerStep: 0.1}
	if got := f.ScaleAt(0); got != 1 {
		t.Fatalf("ScaleAt(0) = %v, want 1", got)
	}
	if got := f.ScaleAt(-5); got != 1 {
		t.Fatalf("ScaleAt(-5) = %v, want 1", got)
	}
	if got := (Forecast{}).ScaleAt(1 << 30); got != 1 {
		t.Fatalf("zero growth ScaleAt = %v, want 1", got)
	}
	if got := f.ScaleAt(1); math.Abs(got-1.1) > 1e-12 {
		t.Fatalf("ScaleAt(1) = %v, want 1.1", got)
	}

	// (1+10)^1000 overflows float64; the clamp must keep it finite.
	huge := Forecast{GrowthPerStep: 10}
	got := huge.ScaleAt(1000)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("overflowing ScaleAt = %v, want finite clamp", got)
	}
	if got != math.MaxFloat64 {
		t.Fatalf("overflowing ScaleAt = %v, want MaxFloat64 clamp", got)
	}
	// Monotonicity survives the clamp.
	if huge.ScaleAt(999) > huge.ScaleAt(1000) {
		t.Fatal("ScaleAt not monotone across the clamp")
	}
}

// TestForecastAtMatchesScaleAt: At must be exactly Scaled(ScaleAt(k)) so
// the planners' comparison-time scaling and the materialized grown set
// can never disagree.
func TestForecastAtMatchesScaleAt(t *testing.T) {
	s := Set{Demands: []Demand{{Src: 0, Dst: 1, Rate: 3.7}, {Src: 1, Dst: 2, Rate: 0.9}}}
	f := Forecast{GrowthPerStep: 0.013}
	for _, k := range []int{0, 1, 7, 50} {
		grown := f.At(s, k)
		scale := f.ScaleAt(k)
		for i := range s.Demands {
			if got, want := grown.Demands[i].Rate, s.Demands[i].Rate*scale; got != want {
				t.Fatalf("k=%d demand %d: At=%v, Rate*ScaleAt=%v", k, i, got, want)
			}
		}
	}
}

// TestSurgeApplyTrackedMatchesApply: ApplyTracked must surge exactly the
// demands Apply would (same rng draw order) and report their indices.
func TestSurgeApplyTrackedMatchesApply(t *testing.T) {
	var s Set
	for i := 0; i < 50; i++ {
		s.Add(Demand{Src: 0, Dst: 1, Rate: 2})
	}
	sg := Surge{Fraction: 0.4, Multiplier: 3}
	want := sg.Apply(s, rand.New(rand.NewSource(9)))
	got, hit := sg.ApplyTracked(s, rand.New(rand.NewSource(9)))
	hitSet := make(map[int32]bool, len(hit))
	for i, h := range hit {
		if i > 0 && hit[i-1] >= h {
			t.Fatal("hit indices not strictly ascending")
		}
		hitSet[h] = true
	}
	for i := range want.Demands {
		if want.Demands[i].Rate != got.Demands[i].Rate {
			t.Fatalf("demand %d: tracked rate %v != untracked %v", i, got.Demands[i].Rate, want.Demands[i].Rate)
		}
		if surged := got.Demands[i].Rate != 2; surged != hitSet[int32(i)] {
			t.Fatalf("demand %d: surged=%v but hit-tracked=%v", i, surged, hitSet[int32(i)])
		}
	}
}
