package demand

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitForecastRecoversExactGrowth(t *testing.T) {
	// Noiseless exponential: the fit must be exact.
	history := make([]float64, 20)
	rate := 100.0
	for i := range history {
		history[i] = rate
		rate *= 1.01
	}
	base, f, err := FitForecast(history)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.GrowthPerStep-0.01) > 1e-9 {
		t.Errorf("growth = %v, want 0.01", f.GrowthPerStep)
	}
	if math.Abs(base-history[len(history)-1]) > 1e-6*base {
		t.Errorf("base = %v, want %v (rate at last sample)", base, history[len(history)-1])
	}
}

func TestFitForecastUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	history := make([]float64, 60)
	rate := 50.0
	for i := range history {
		history[i] = rate * (1 + 0.02*(rng.Float64()-0.5))
		rate *= 1.005
	}
	_, f, err := FitForecast(history)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.GrowthPerStep-0.005) > 0.002 {
		t.Errorf("noisy growth estimate %v too far from 0.005", f.GrowthPerStep)
	}
}

func TestFitForecastFlatHistory(t *testing.T) {
	history := []float64{10, 10, 10, 10}
	base, f, err := FitForecast(history)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.GrowthPerStep) > 1e-12 {
		t.Errorf("flat history growth = %v, want 0", f.GrowthPerStep)
	}
	if math.Abs(base-10) > 1e-9 {
		t.Errorf("flat history base = %v, want 10", base)
	}
}

func TestFitForecastErrors(t *testing.T) {
	if _, _, err := FitForecast([]float64{5}); err == nil {
		t.Error("single sample should error")
	}
	if _, _, err := FitForecast([]float64{5, -1}); err == nil {
		t.Error("negative rate should error")
	}
	if _, _, err := FitForecast([]float64{5, 0}); err == nil {
		t.Error("zero rate should error")
	}
	if _, _, err := FitForecast([]float64{5, math.NaN()}); err == nil {
		t.Error("NaN rate should error")
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{4, 1, 3, 2, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.95, 4.8},
	}
	for _, c := range cases {
		got, err := Percentile(samples, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 0.5); err == nil {
		t.Error("empty samples should error")
	}
	if _, err := Percentile(samples, 1.5); err == nil {
		t.Error("out-of-range p should error")
	}
	// Percentile must not mutate its input.
	if samples[0] != 4 {
		t.Error("Percentile sorted the caller's slice")
	}
}

// Property: Percentile is monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		var samples []float64
		for _, r := range raw {
			if !math.IsNaN(r) && !math.IsInf(r, 0) {
				samples = append(samples, r)
			}
		}
		if len(samples) == 0 {
			return true
		}
		p1 = math.Abs(math.Mod(p1, 1))
		p2 = math.Abs(math.Mod(p2, 1))
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		a, err1 := Percentile(samples, p1)
		b, err2 := Percentile(samples, p2)
		if err1 != nil || err2 != nil {
			return false
		}
		return a <= b+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFitSetForecast(t *testing.T) {
	var set Set
	set.Add(Demand{Name: "a", Src: 0, Dst: 1, Rate: 1})
	set.Add(Demand{Name: "b", Src: 1, Dst: 0, Rate: 1})
	histories := [][]float64{
		growthSeries(100, 0.01, 10),
		growthSeries(300, 0.00, 10),
	}
	out, f, err := FitSetForecast(set, histories)
	if err != nil {
		t.Fatal(err)
	}
	// Rates replaced by fitted current values.
	if math.Abs(out.Demands[0].Rate-histories[0][9]) > 1e-6*out.Demands[0].Rate {
		t.Errorf("demand a rate = %v, want %v", out.Demands[0].Rate, histories[0][9])
	}
	// Weighted growth between 0 and 0.01, closer to 0 (demand b is 3× bigger).
	if f.GrowthPerStep <= 0 || f.GrowthPerStep >= 0.005 {
		t.Errorf("weighted growth = %v, want in (0, 0.005)", f.GrowthPerStep)
	}
	if _, _, err := FitSetForecast(set, histories[:1]); err == nil {
		t.Error("mismatched history count should error")
	}
}

func growthSeries(base, g float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = base
		base *= 1 + g
	}
	return out
}
