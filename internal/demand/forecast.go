package demand

import (
	"fmt"
	"math"
	"sort"
)

// Telemetry-driven forecasting.
//
// The paper's demands are "forecasted based on historical data collected by
// Meta's DCNs, reflecting the average traffic requirements in the near
// future" (§6.1), and §7.1 describes re-running the forecast after every
// migration step. This file provides the fitting half of that loop:
// turn a rate history into a calibrated base rate plus a Forecast growth
// model, and summarize histories with the percentiles capacity planners
// actually provision for.

// FitForecast fits an exponential growth model rate(t) = base·(1+g)^t to a
// rate history (one sample per step, oldest first) by least squares on
// log-rates, and returns the fitted rate at the *last* sample (the "now"
// a migration plan starts from) together with the per-step growth.
//
// At least two samples are required and every rate must be positive —
// exponential fitting is meaningless otherwise.
func FitForecast(history []float64) (base float64, f Forecast, err error) {
	if len(history) < 2 {
		return 0, Forecast{}, fmt.Errorf("demand: FitForecast needs at least 2 samples, got %d", len(history))
	}
	logs := make([]float64, len(history))
	for i, r := range history {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return 0, Forecast{}, fmt.Errorf("demand: sample %d has non-positive rate %v", i, r)
		}
		logs[i] = math.Log(r)
	}
	// Least squares: logs[i] ≈ a + b·i.
	n := float64(len(logs))
	var sumX, sumY, sumXY, sumXX float64
	for i, y := range logs {
		x := float64(i)
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return 0, Forecast{}, fmt.Errorf("demand: degenerate sample spacing")
	}
	b := (n*sumXY - sumX*sumY) / den
	a := (sumY - b*sumX) / n
	base = math.Exp(a + b*float64(len(logs)-1))
	return base, Forecast{GrowthPerStep: math.Exp(b) - 1}, nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 1) of the samples using
// linear interpolation between order statistics — the summary capacity
// planners provision against (p95/p99 rather than means).
func Percentile(samples []float64, p float64) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("demand: Percentile of empty sample set")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("demand: percentile %v outside [0,1]", p)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// FitSetForecast fits a shared growth model across a demand set's
// histories: histories[i] is the rate history of set.Demands[i]. It
// returns a new set whose rates are the fitted current values, plus the
// demand-weighted average growth — one Forecast for the whole set, which
// is how the pipeline's step-wise re-verification consumes it.
func FitSetForecast(set Set, histories [][]float64) (Set, Forecast, error) {
	if len(histories) != len(set.Demands) {
		return Set{}, Forecast{}, fmt.Errorf("demand: %d histories for %d demands",
			len(histories), len(set.Demands))
	}
	out := set.Clone()
	var totalRate, weightedGrowth float64
	for i, h := range histories {
		base, f, err := FitForecast(h)
		if err != nil {
			return Set{}, Forecast{}, fmt.Errorf("demand %q: %w", set.Demands[i].Name, err)
		}
		out.Demands[i].Rate = base
		totalRate += base
		weightedGrowth += base * f.GrowthPerStep
	}
	if totalRate == 0 {
		return Set{}, Forecast{}, fmt.Errorf("demand: fitted rates sum to zero")
	}
	return out, Forecast{GrowthPerStep: weightedGrowth / totalRate}, nil
}
