// Package demand models traffic demands and demand forecasting.
//
// A demand is an aggregate (source switch, destination switch, rate) triple.
// The Klotski paper (§6.1) evaluates with three kinds of source/target
// pairs — RSW→EBB, EBB→RSW, and RSW→RSW — with total volume in the hundreds
// of Tbps. Demands here play exactly that role: the satisfiability checker
// routes each demand over the intermediate topology with ECMP and verifies
// per-circuit utilization bounds.
//
// The package also implements the demand-forecast integration described in
// the paper's deployment section (§7.1): traffic grows organically during a
// months-long migration, so plans must be checked against forecasted rather
// than current demand, and re-planned when the forecast shifts.
package demand

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"unsafe"

	"klotski/internal/topo"
)

// Demand is an aggregate traffic requirement from Src to Dst.
type Demand struct {
	Name string
	Src  topo.SwitchID
	Dst  topo.SwitchID
	Rate float64 // Tbps
}

// Set is a collection of demands. The zero value is an empty, usable set.
type Set struct {
	Demands []Demand

	// idx caches the destination index (dst → demand indices) as an
	// atomically published *dstIndex. It is built on first DestinationIndex
	// call — concurrently if need be: racing builders produce identical
	// indexes and the last atomic store wins — and invalidated by Add;
	// callers that append to Demands directly must not hold a stale index
	// (rebuilds trigger off the length check). Mutating a demand's Rate in
	// place is fine; mutating Src/Dst in place is not. The field is an
	// unsafe.Pointer rather than an atomic.Pointer so Set values stay
	// copyable (Scaled, Forecast.At, and Task embedding all pass Sets by
	// value); the published payload is immutable, so copies share it safely.
	idx unsafe.Pointer // *dstIndex
}

// dstIndex is the cached per-destination demand grouping. The satisfiability
// checker processes demands one destination group at a time; this index
// replaces the O(|demands| × |destinations|) rescan with a prebuilt lookup.
type dstIndex struct {
	n     int // len(Demands) when built, for staleness detection
	dsts  []topo.SwitchID
	byDst [][]int32 // aligned with dsts: indices into Demands
}

// Add appends a demand to the set.
func (s *Set) Add(d Demand) {
	s.Demands = append(s.Demands, d)
	atomic.StorePointer(&s.idx, nil)
}

// Len returns the number of demands.
func (s *Set) Len() int { return len(s.Demands) }

// Total returns the aggregate rate across all demands in Tbps.
func (s *Set) Total() float64 {
	t := 0.0
	for _, d := range s.Demands {
		t += d.Rate
	}
	return t
}

// Scaled returns a copy of the set with every rate multiplied by f.
func (s *Set) Scaled(f float64) Set {
	out := Set{Demands: make([]Demand, len(s.Demands))}
	for i, d := range s.Demands {
		d.Rate *= f
		out.Demands[i] = d
	}
	return out
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() Set {
	return Set{Demands: append([]Demand(nil), s.Demands...)}
}

// Destinations returns the distinct destination switches, sorted by ID.
// The satisfiability checker batches routing work per destination, so the
// size of this slice — not the number of demands — dominates check cost.
func (s *Set) Destinations() []topo.SwitchID {
	dsts, _ := s.DestinationIndex()
	return append([]topo.SwitchID(nil), dsts...)
}

// DestinationIndex returns the distinct destinations, sorted by ID, and —
// aligned with them — the indices of each destination's demands, in Demands
// order. The index is built once and cached. The build is goroutine-safe:
// concurrent first callers may each build the (deterministic, identical)
// index, with one winning the atomic publication — so parallel check
// workers can share a Set without any pre-touch protocol. Concurrent reads
// racing an Add remain the caller's responsibility, as for any slice
// append. The returned slices are shared — callers must not modify them.
func (s *Set) DestinationIndex() ([]topo.SwitchID, [][]int32) {
	idx := (*dstIndex)(atomic.LoadPointer(&s.idx))
	if idx == nil || idx.n != len(s.Demands) {
		idx = buildDstIndex(s.Demands)
		atomic.StorePointer(&s.idx, unsafe.Pointer(idx))
	}
	return idx.dsts, idx.byDst
}

func buildDstIndex(demands []Demand) *dstIndex {
	pos := make(map[topo.SwitchID]int, 8)
	idx := &dstIndex{n: len(demands)}
	for _, d := range demands {
		if _, ok := pos[d.Dst]; !ok {
			pos[d.Dst] = len(idx.dsts)
			idx.dsts = append(idx.dsts, d.Dst)
		}
	}
	sort.Slice(idx.dsts, func(i, j int) bool { return idx.dsts[i] < idx.dsts[j] })
	for i, dst := range idx.dsts {
		pos[dst] = i
	}
	idx.byDst = make([][]int32, len(idx.dsts))
	for i, d := range demands {
		g := pos[d.Dst]
		idx.byDst[g] = append(idx.byDst[g], int32(i))
	}
	return idx
}

// Validate checks that all endpoints are in range for the topology, all
// rates are finite and positive, and no demand is a self-loop.
func (s *Set) Validate(t *topo.Topology) error {
	n := topo.SwitchID(t.NumSwitches())
	for i, d := range s.Demands {
		if d.Src < 0 || d.Src >= n || d.Dst < 0 || d.Dst >= n {
			return fmt.Errorf("demand: demand %d (%s) has out-of-range endpoint", i, d.Name)
		}
		if d.Src == d.Dst {
			return fmt.Errorf("demand: demand %d (%s) is a self-loop", i, d.Name)
		}
		if d.Rate <= 0 || math.IsNaN(d.Rate) || math.IsInf(d.Rate, 0) {
			return fmt.Errorf("demand: demand %d (%s) has invalid rate %v", i, d.Name, d.Rate)
		}
	}
	return nil
}

// Forecast models organic traffic growth over the duration of a migration
// (paper §7.1). GrowthPerStep is the fractional increase applied per
// migration step; a ten-percent increase over a month-long migration with
// 20 steps corresponds to GrowthPerStep ≈ 0.0048.
type Forecast struct {
	GrowthPerStep float64
}

// At returns the demand set forecast after the given number of completed
// migration steps: every rate is multiplied by (1+GrowthPerStep)^steps.
func (f Forecast) At(s Set, steps int) Set {
	if steps <= 0 || f.GrowthPerStep == 0 {
		return s.Clone()
	}
	return s.Scaled(f.ScaleAt(steps))
}

// ScaleAt returns the multiplier the forecast applies after the given
// number of completed steps: (1+GrowthPerStep)^steps. Horizon 0 (or any
// non-positive horizon) is exactly 1 — "now" needs no scaling — and a
// horizon large enough to overflow float64 clamps to MaxFloat64 rather
// than returning +Inf, so downstream utilization comparisons stay ordered
// (anything times MaxFloat64 already fails every finite bound).
func (f Forecast) ScaleAt(steps int) float64 {
	if steps <= 0 || f.GrowthPerStep == 0 {
		return 1
	}
	scale := math.Pow(1+f.GrowthPerStep, float64(steps))
	if math.IsInf(scale, 1) || scale > math.MaxFloat64 {
		return math.MaxFloat64
	}
	return scale
}

// Surge models an unexpected service-behavior change (paper §7.2: a warm
// storage backup-placement change caused days of traffic spikes during a
// migration). Fraction of demands, chosen pseudo-randomly, are multiplied
// by Multiplier.
type Surge struct {
	Fraction   float64 // fraction of demands affected, in [0,1]
	Multiplier float64 // rate multiplier for affected demands, ≥ 1
}

// Apply returns a copy of the set with the surge applied, using rng to pick
// the affected demands.
func (su Surge) Apply(s Set, rng *rand.Rand) Set {
	out, _ := su.ApplyTracked(s, rng)
	return out
}

// ApplyTracked is Apply plus the indices of the affected demands, ascending.
// Chaos worlds use the indices to undo a transient surge when it recovers
// (divide the same rates back) without re-drawing from the rng.
func (su Surge) ApplyTracked(s Set, rng *rand.Rand) (Set, []int32) {
	out := s.Clone()
	var hit []int32
	for i := range out.Demands {
		if rng.Float64() < su.Fraction {
			out.Demands[i].Rate *= su.Multiplier
			hit = append(hit, int32(i))
		}
	}
	return out, hit
}
