package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"klotski/internal/ctrl"
	"klotski/internal/obs"
	"klotski/internal/sim"
)

// undisturbedRun plans one job to completion, closes the daemon, and
// returns the job's journal bytes, final plan document, and certified
// gap — the reference every crash-recovery scenario must reproduce.
func undisturbedRun(t *testing.T) (journal []byte, plan []byte, gap float64) {
	t.Helper()
	dir := t.TempDir()
	m := newManager(t, dir, nil)
	j, err := m.Submit(testRequest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitTerminal(t, j)
	if st.State != StateDone {
		t.Fatalf("reference job finished %s (%s)", st.State, st.Detail)
	}
	if st.Legs < 2 {
		t.Fatalf("reference job checkpointed %d legs; need ≥ 2 for a meaningful kill sweep", st.Legs)
	}
	plan, err = j.Plan()
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	journal, err = os.ReadFile(filepath.Join(dir, j.ID+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	return journal, plan, st.Gap
}

// recoverFromJournal writes journalBytes as job-000000's journal in a
// fresh state dir, opens a daemon over it, and waits for every job to
// quiesce. It returns the manager (caller closes).
func recoverFromJournal(t *testing.T, journalBytes []byte) *Manager {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-000000.journal"), journalBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	return newManager(t, dir, nil)
}

// TestKillAtEveryRecordBoundary is the tentpole acceptance test: for
// every prefix of the reference journal that ends on a record boundary —
// every instant a SIGKILL could catch the daemon between appends — a
// fresh daemon must recover to a consistent job table and finish the job
// with a plan byte-identical to the undisturbed run, losing no job and
// duplicating none.
func TestKillAtEveryRecordBoundary(t *testing.T) {
	journal, wantPlan, wantGap := undisturbedRun(t)
	bounds := sim.RecordBoundaries(journal)
	if len(bounds) < 6 {
		t.Fatalf("reference journal has only %d record boundaries", len(bounds))
	}
	for i, n := range bounds {
		t.Run(fmt.Sprintf("boundary-%02d", i), func(t *testing.T) {
			prefix := sim.Tear(journal, n)
			m := recoverFromJournal(t, prefix)
			defer m.Close()
			jobs := m.Jobs()
			if n == 0 {
				// Crash before the first durable record: the submitter was
				// never acknowledged, so no job may exist.
				if len(jobs) != 0 {
					t.Fatalf("%d jobs materialized from an empty journal", len(jobs))
				}
				return
			}
			if len(jobs) != 1 {
				t.Fatalf("%d jobs recovered, want exactly 1 (no loss, no duplication)", len(jobs))
			}
			j := jobs[0]
			if j.ID != "job-000000" {
				t.Fatalf("recovered job ID %s", j.ID)
			}
			st := waitTerminal(t, j)
			if st.State != StateDone {
				t.Fatalf("recovered job finished %s (%s), want DONE", st.State, st.Detail)
			}
			got, err := j.Plan()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(wantPlan) {
				t.Errorf("recovered plan differs from the undisturbed run at boundary %d", i)
			}
			if st.Gap != wantGap {
				t.Errorf("recovered gap %v, undisturbed %v", st.Gap, wantGap)
			}
		})
	}
}

// TestKillMidRecord tears the journal inside its final record — a crash
// mid-append — at several offsets; the torn tail must be dropped and the
// job must still recover to the identical plan.
func TestKillMidRecord(t *testing.T) {
	journal, wantPlan, _ := undisturbedRun(t)
	bounds := sim.RecordBoundaries(journal)
	// Tear inside the record after a mid-planning boundary, at the
	// first byte, a middle byte, and the last byte before the newline.
	base := bounds[len(bounds)/2]
	next := bounds[len(bounds)/2+1]
	for _, cut := range []int64{base + 1, (base + next) / 2, next - 1} {
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			m := recoverFromJournal(t, sim.Tear(journal, cut))
			defer m.Close()
			jobs := m.Jobs()
			if len(jobs) != 1 {
				t.Fatalf("%d jobs recovered", len(jobs))
			}
			st := waitTerminal(t, jobs[0])
			if st.State != StateDone {
				t.Fatalf("finished %s (%s)", st.State, st.Detail)
			}
			got, err := jobs[0].Plan()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(wantPlan) {
				t.Errorf("plan differs after mid-record tear at %d", cut)
			}
		})
	}
}

// TestCorruptJournalQuarantined flips a byte in the middle of the
// journal — real corruption, not a torn tail — and expects the daemon to
// quarantine the job as FAILED instead of trusting or crashing on it,
// durably, so restarts converge.
func TestCorruptJournalQuarantined(t *testing.T) {
	journal, _, _ := undisturbedRun(t)
	bounds := sim.RecordBoundaries(journal)
	// Flip a payload byte of the second record: mid-file damage.
	off := bounds[1] + 20
	m := recoverFromJournal(t, sim.FlipByte(journal, off))
	jobs := m.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("%d jobs after corrupt journal, want 1 quarantined", len(jobs))
	}
	st := jobs[0].Status()
	if st.State != StateFailed || !strings.Contains(st.Detail, "journal corrupt") {
		t.Fatalf("quarantined job = %s (%q), want FAILED journal corrupt", st.State, st.Detail)
	}
	dir := m.cfg.Dir
	if _, err := os.Stat(filepath.Join(dir, "job-000000.journal.corrupt")); err != nil {
		t.Errorf("corrupt journal not preserved: %v", err)
	}
	m.Close()

	// Restarting over the quarantined state converges to the same table.
	m2 := newManager(t, dir, nil)
	defer m2.Close()
	jobs2 := m2.Jobs()
	if len(jobs2) != 1 || jobs2[0].Status().State != StateFailed {
		t.Fatalf("quarantine not durable across restart")
	}
}

// TestTornCheckpointFileIgnored damages the sealed checkpoint envelope
// in every way a crash can (truncation, bit flip, garbage) alongside a
// mid-planning journal prefix: recovery must ignore the damaged envelope
// and still replay to the identical plan.
func TestTornCheckpointFileIgnored(t *testing.T) {
	journal, wantPlan, _ := undisturbedRun(t)
	bounds := sim.RecordBoundaries(journal)
	prefix := sim.Tear(journal, bounds[len(bounds)/2]) // mid-planning

	// A valid envelope to damage.
	ckpt, err := writeValidCkpt()
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string][]byte{
		"truncated": ckpt[:len(ckpt)/2],
		"bitflip":   sim.FlipByte(ckpt, int64(len(ckpt)/2)),
		"garbage":   []byte("not json at all"),
		"empty":     nil,
	}
	for name, data := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "job-000000.journal"), prefix, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "job-000000.ckpt"), data, 0o644); err != nil {
				t.Fatal(err)
			}
			m := newManager(t, dir, nil)
			defer m.Close()
			if _, err := m.CheckpointEnvelope("job-000000"); err == nil && name != "valid" {
				t.Errorf("damaged checkpoint (%s) served as valid", name)
			}
			jobs := m.Jobs()
			if len(jobs) != 1 {
				t.Fatalf("%d jobs recovered", len(jobs))
			}
			st := waitTerminal(t, jobs[0])
			if st.State != StateDone {
				t.Fatalf("finished %s (%s)", st.State, st.Detail)
			}
			got, err := jobs[0].Plan()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(wantPlan) {
				t.Errorf("plan differs with damaged checkpoint file (%s)", name)
			}
		})
	}
}

func writeValidCkpt() ([]byte, error) {
	dir, err := os.MkdirTemp("", "serve-ckpt")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "x.ckpt")
	if err := writeCheckpointFile(path, jobCheckpoint{Job: "job-000000", Planner: "astar", Leg: 1}); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// TestAuditedWithoutDone kills the daemon between the audited record and
// the done record: the restarted daemon must complete the job from its
// journaled plan without replanning.
func TestAuditedWithoutDone(t *testing.T) {
	journal, wantPlan, _ := undisturbedRun(t)
	var recs []record
	if _, err := ctrl.ParseRecords(journal, func(payload []byte) error {
		var r record
		if err := json.Unmarshal(payload, &r); err != nil {
			return err
		}
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if recs[len(recs)-1].State != recDone || recs[len(recs)-2].State != recAudited {
		t.Fatalf("reference journal does not end audited→done: %s, %s",
			recs[len(recs)-2].State, recs[len(recs)-1].State)
	}
	bounds := sim.RecordBoundaries(journal)
	prefix := sim.Tear(journal, bounds[len(bounds)-2]) // drop only "done"

	reg := obs.NewRegistry()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-000000.journal"), prefix, 0o644); err != nil {
		t.Fatal(err)
	}
	m := newManager(t, dir, func(c *Config) {
		c.Recorder = obs.NewRecorder(reg)
		// Any replanning attempt would trip the hook and fail the test.
	})
	m.planHook = func(id string, leg int) error {
		t.Errorf("job with a journaled audited plan replanned (leg %d)", leg)
		return nil
	}
	defer m.Close()
	jobs := m.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("%d jobs recovered", len(jobs))
	}
	st := waitTerminal(t, jobs[0])
	if st.State != StateDone {
		t.Fatalf("finished %s (%s)", st.State, st.Detail)
	}
	got, err := jobs[0].Plan()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(wantPlan) {
		t.Errorf("plan served after audited-without-done recovery differs")
	}
	if reg.Snapshot().Counters[obs.MetricServeJobsRecovered] != 1 {
		t.Errorf("jobs_recovered = %d, want 1", reg.Snapshot().Counters[obs.MetricServeJobsRecovered])
	}
}

// TestRepeatedCrashes chains kills: recover from a mid-planning prefix,
// drain mid-recovery (a second crash), recover again — the journal now
// holds several admission cycles — and the final plan must still match.
func TestRepeatedCrashes(t *testing.T) {
	journal, wantPlan, _ := undisturbedRun(t)
	bounds := sim.RecordBoundaries(journal)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-000000.journal"), sim.Tear(journal, bounds[4]), 0o644); err != nil {
		t.Fatal(err)
	}

	// First recovery: drain as soon as the first checkpoint lands.
	m1 := newManager(t, dir, func(c *Config) { c.Sleep = func(time.Duration) {} })
	j1, err := m1.Job("job-000000")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		st := j1.Status()
		if st.State.Terminal() || st.Legs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint leg during first recovery; state %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	m1.Drain()
	m1.Close()

	// Second recovery runs to completion.
	m2 := newManager(t, dir, nil)
	defer m2.Close()
	j2, err := m2.Job("job-000000")
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j2)
	if st.State != StateDone {
		t.Fatalf("finished %s (%s) after repeated crashes", st.State, st.Detail)
	}
	got, err := j2.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(wantPlan) {
		t.Errorf("plan differs after repeated crash/recover cycles")
	}
}
