// Package serve turns the planner into planning-as-a-service: a
// long-lived daemon that operators submit migration requests to (the
// paper's §5 EDP-Lite production pipeline runs this way, not as a
// one-shot CLI). A request carries an NPD document plus planning options;
// the service answers with a job ID and plans in the background on the
// shared internal/sched worker pool, with per-job priority, [min,max]
// worker shares, admission control, and preemption through the planner's
// checkpoint/resume machinery.
//
// # Durability model
//
// Every job owns a write-ahead journal of KJ1 records (the same
// versioned, CRC32C-checksummed, fsync-per-append line envelope as the
// control journal) in the daemon's state directory. A record is written
// BEFORE the in-memory transition it describes takes effect, so the
// journal prefix on disk always bounds the daemon's promises: kill the
// process between any two records and the restarted daemon folds the
// prefix back into a consistent job — submitted requests replan,
// journaled final plans are served without replanning, terminal states
// stay terminal. Alongside the journal, the latest planner checkpoint is
// sealed (npd envelope) into a sibling .ckpt file via atomic rename; it
// serves the anytime incumbent to clients and is advisory for recovery —
// a torn or corrupt checkpoint file is ignored and the job replans from
// its journaled request, which the planners' determinism contract
// guarantees reproduces the same bytes.
//
// # Recovery = deterministic replay
//
// The planners' checkpoints resume through an in-memory closure, so a
// restarted process cannot continue the literal search data structures.
// It does not need to: plans are byte-identical at every worker count,
// interruption pattern, and pool interleaving, so re-running the
// journaled request IS resuming — the final plan and certified gap are
// the ones the uninterrupted run would have produced. The journal makes
// that replay exactly-once at the job level (no job lost, none
// duplicated) and the sealed plan record makes the DONE state stable
// (a job that reached AUDITED never replans).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"klotski/internal/core"
	"klotski/internal/obs"
)

// State is a job's position in the lifecycle
//
//	SUBMITTED → ADMITTED → PLANNING → AUDITED → DONE
//	                     ↘ CANCELLED / FAILED
//
// PLANNING may loop through checkpoint records (leg boundaries,
// preemptions, daemon restarts) before reaching a terminal state.
type State string

const (
	StateSubmitted State = "SUBMITTED"
	StateAdmitted  State = "ADMITTED"
	StatePlanning  State = "PLANNING"
	StateAudited   State = "AUDITED"
	StateDone      State = "DONE"
	StateCancelled State = "CANCELLED"
	StateFailed    State = "FAILED"
)

// Terminal reports whether the state is final: no further transitions,
// no further journal records.
func (s State) Terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// Service errors, matchable via errors.Is.
var (
	// ErrDraining means the daemon is shutting down and not accepting
	// new submissions.
	ErrDraining = errors.New("serve: draining, not accepting jobs")

	// ErrUnknownJob means no job with the given ID exists.
	ErrUnknownJob = errors.New("serve: unknown job")

	// ErrTerminal means the operation (cancel) does not apply to a job
	// that already reached a terminal state.
	ErrTerminal = errors.New("serve: job already terminal")

	// ErrNoPlan means the job has not produced its audited plan yet.
	ErrNoPlan = errors.New("serve: no plan yet")
)

// Request is one planning submission. NPD carries the network-plus-demand
// document verbatim (the same format the CLI reads); the remaining fields
// select the planner and its scheduling envelope.
type Request struct {
	// Name optionally labels the job for humans; defaults to the NPD
	// document's own name.
	Name string `json:"name,omitempty"`

	// NPD is the network-plus-demand document (required).
	NPD json.RawMessage `json:"npd"`

	// Planner selects the algorithm: "astar" (default) or "dp". The
	// service only runs planners that checkpoint and certify gaps.
	Planner string `json:"planner,omitempty"`

	// Theta / Alpha / MaxRun override the daemon's default planning
	// options when non-zero.
	Theta  float64 `json:"theta,omitempty"`
	Alpha  float64 `json:"alpha,omitempty"`
	MaxRun int     `json:"max_run,omitempty"`

	// Priority / MinShare / MaxShare parameterize the job's pool
	// registration (see sched.ClientOptions): higher-priority
	// submissions preempt lower-priority jobs, which checkpoint and
	// re-admit.
	Priority int `json:"priority,omitempty"`
	MinShare int `json:"min_share,omitempty"`
	MaxShare int `json:"max_share,omitempty"`

	// DeadlineMS, when positive, bounds the job's total planning time
	// in milliseconds; an expired deadline fails the job.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// LegStates, when positive, overrides the daemon's per-leg state
	// budget: the planner checkpoints (journal record + sealed
	// envelope) every LegStates states created.
	LegStates int `json:"leg_states,omitempty"`
}

// validate rejects requests that could never plan, so the submitter gets
// a 400 instead of a job that fails asynchronously.
func (rq *Request) validate() error {
	if len(rq.NPD) == 0 {
		return errors.New("request has no npd document")
	}
	switch rq.Planner {
	case "", "astar", "dp":
	default:
		return fmt.Errorf("unknown planner %q (service runs \"astar\" or \"dp\")", rq.Planner)
	}
	if rq.Theta < 0 || rq.Theta > 1 {
		return fmt.Errorf("theta %v outside (0, 1]", rq.Theta)
	}
	if rq.Alpha < 0 || rq.Alpha > 1 {
		return fmt.Errorf("alpha %v outside [0, 1]", rq.Alpha)
	}
	if rq.MaxRun < 0 || rq.LegStates < 0 || rq.DeadlineMS < 0 {
		return errors.New("negative budget")
	}
	if rq.MinShare < 0 || rq.MaxShare < 0 {
		return errors.New("negative share")
	}
	return nil
}

// Status is a point-in-time snapshot of a job, served by the status/list
// endpoints and streamed (one snapshot per transition or checkpoint) by
// the stream endpoint.
type Status struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	State  State  `json:"state"`
	Detail string `json:"detail,omitempty"`

	// Anytime certificate: the best incumbent cost seen so far, the
	// certified lower bound, and the relative gap between them (1 until
	// something is certified, 0 when the plan is provably optimal).
	Legs           int     `json:"legs"`
	Incumbent      float64 `json:"incumbent"`
	LowerBound     float64 `json:"lower_bound"`
	Gap            float64 `json:"gap"`
	PartialActions int     `json:"partial_actions"`

	// Final plan summary, set once the job reaches AUDITED.
	Actions int     `json:"actions,omitempty"`
	Cost    float64 `json:"cost,omitempty"`

	Recovered   bool `json:"recovered,omitempty"`
	Serial      bool `json:"serial,omitempty"`
	Preemptions int  `json:"preemptions,omitempty"`
}

// Config parameterizes a Manager.
type Config struct {
	// Dir is the daemon's state directory: one journal and one sealed
	// checkpoint file per job. Required; created if missing.
	Dir string

	// PoolWorkers sizes the shared planning pool (0 selects GOMAXPROCS).
	PoolWorkers int

	// LegStates is the default per-leg state budget: how often planning
	// jobs checkpoint. 0 selects 50000.
	LegStates int

	// AdmitWait bounds how long a job waits for pool admission before
	// degrading to serial planning instead of queueing indefinitely.
	// 0 selects 2s; negative waits forever.
	AdmitWait time.Duration

	// MaxRetries bounds retries of transient planning failures
	// (sim.ErrTransient), backed off with the ctrl policy. 0 selects 4.
	MaxRetries int

	// BaseBackoff / MaxBackoff shape the transient-retry backoff.
	// Zero values select 50ms / 2s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// Options seeds every job's planning options (theta, alpha, audit
	// mode, …); per-request fields override it. Budget and scheduling
	// fields (MaxStates, Workers, Sched, Bound) are managed per leg by
	// the service and ignored here.
	Options core.Options

	// Recorder receives the serve.* instruments (nil-safe).
	Recorder *obs.Recorder

	// Sleep, when non-nil, replaces time.Sleep for retry backoff —
	// tests inject a recording fake.
	Sleep func(time.Duration)

	// LegHook, when non-nil, runs before every planning leg of every
	// job — the fault-injection and pacing seam. Returning an error
	// wrapping sim.ErrTransient triggers the retry/backoff path; any
	// other error fails the job; sleeping paces background planning.
	LegHook func(jobID string, leg int) error
}

func (c *Config) legStates() int {
	if c.LegStates <= 0 {
		return 50000
	}
	return c.LegStates
}

func (c *Config) admitWait() time.Duration {
	if c.AdmitWait == 0 {
		return 2 * time.Second
	}
	return c.AdmitWait
}

func (c *Config) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 4
	}
	return c.MaxRetries
}

func (c *Config) backoffs() (base, max time.Duration) {
	base, max = c.BaseBackoff, c.MaxBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	return base, max
}

func (c *Config) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}
