package serve

import (
	"encoding/json"
	"errors"
	"net/http"
)

// NewHandler mounts the planning-as-a-service API on a mux:
//
//	POST   /v1/jobs              submit a Request  → 202 {id, state}
//	GET    /v1/jobs              list job statuses
//	GET    /v1/jobs/{id}         one job's status
//	GET    /v1/jobs/{id}/plan    the audited final plan document
//	GET    /v1/jobs/{id}/checkpoint  latest sealed checkpoint envelope
//	GET    /v1/jobs/{id}/stream  NDJSON status stream until terminal
//	POST   /v1/jobs/{id}/cancel  request cancellation
//	DELETE /v1/jobs/{id}         request cancellation
//	GET    /healthz              {"status": "ok" | "draining"}
func NewHandler(m *Manager) http.Handler {
	s := &server{m: m}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.list)
	mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	mux.HandleFunc("GET /v1/jobs/{id}/plan", s.plan)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", s.checkpoint)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.stream)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.cancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	mux.HandleFunc("GET /healthz", s.health)
	return mux
}

type server struct {
	m *Manager
}

// apiError is the JSON error body every failing endpoint returns.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownJob):
		code = http.StatusNotFound
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrTerminal), errors.Is(err, ErrNoPlan):
		code = http.StatusConflict
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decoding request body: " + err.Error()})
		return
	}
	j, err := s.m.Submit(req)
	if err != nil {
		if errors.Is(err, ErrDraining) {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	jobs := s.m.Jobs()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, err := s.m.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return nil, false
	}
	return j, true
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *server) plan(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	doc, err := j.Plan()
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc)
}

func (s *server) checkpoint(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.job(w, r); !ok {
		return
	}
	data, err := s.m.CheckpointEnvelope(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no valid checkpoint: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// stream writes newline-delimited Status snapshots — the current one
// immediately, then one per transition or checkpoint — until the job
// reaches a terminal state or the client goes away. A dropped or corrupt
// client connection only ends this response; the job plans on.
func (s *server) stream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	ch, cur := j.Subscribe()
	defer j.Unsubscribe(ch)
	if err := enc.Encode(cur); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	if cur.State.Terminal() {
		return
	}
	for {
		select {
		case st, chOpen := <-ch:
			if !chOpen {
				// Terminal transition closed the channel; emit the final
				// snapshot so every stream ends with the terminal state.
				enc.Encode(j.Status())
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
			if err := enc.Encode(st); err != nil {
				return // client connection gone
			}
			if flusher != nil {
				flusher.Flush()
			}
			if st.State.Terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	if err := s.m.Cancel(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": r.PathValue("id"), "cancel": "requested"})
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.m.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}
