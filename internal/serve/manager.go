package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"klotski/internal/bound"
	"klotski/internal/core"
	"klotski/internal/ctrl"
	"klotski/internal/migration"
	"klotski/internal/npd"
	"klotski/internal/sched"
	"klotski/internal/sim"
)

// Cancellation causes, distinguished via context.Cause so one planning
// interruption path can fan out to the right terminal (or non-terminal)
// state.
var (
	errDrainStop    = errors.New("serve: draining")
	errUserCancel   = errors.New("serve: cancelled by client")
	errManagerClose = errors.New("serve: manager closed")
)

// Job is one planning job: the durable record set on disk plus the live
// in-memory run. All mutable fields are guarded by mu.
type Job struct {
	ID  string
	Req Request

	m *Manager

	mu      sync.Mutex
	seq     int // next journal record seq
	journal *jobJournal
	subs    map[chan Status]struct{}

	state  State
	detail string

	legs           int
	incumbent      float64
	lowerBound     float64
	gap            float64
	partialActions int

	planDoc []byte // final audited plan document (compact JSON)
	cost    float64
	actions int

	recovered   bool
	serial      bool
	preemptions int

	ctx       context.Context
	cancelRun context.CancelCauseFunc
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() Status {
	gap := j.gap
	if j.legs == 0 && !j.state.Terminal() && j.planDoc == nil {
		gap = 1 // nothing certified yet
	}
	return Status{
		ID:             j.ID,
		Name:           j.Req.Name,
		State:          j.state,
		Detail:         j.detail,
		Legs:           j.legs,
		Incumbent:      j.incumbent,
		LowerBound:     j.lowerBound,
		Gap:            gap,
		PartialActions: j.partialActions,
		Actions:        j.actions,
		Cost:           j.cost,
		Recovered:      j.recovered,
		Serial:         j.serial,
		Preemptions:    j.preemptions,
	}
}

// Plan returns the job's final audited plan document bytes, or ErrNoPlan
// until the job reaches AUDITED.
func (j *Job) Plan() ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.planDoc == nil {
		return nil, ErrNoPlan
	}
	return append([]byte(nil), j.planDoc...), nil
}

// Subscribe registers a status stream: the current snapshot plus a
// channel that receives one snapshot per transition or checkpoint and is
// closed when the job reaches a terminal state. A slow consumer drops
// intermediate snapshots rather than blocking the planner; the terminal
// snapshot is always observable via the close + a final Status() read.
func (j *Job) Subscribe() (<-chan Status, Status) {
	ch := make(chan Status, 64)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		close(ch)
		return ch, j.statusLocked()
	}
	if j.subs == nil {
		j.subs = make(map[chan Status]struct{})
	}
	j.subs[ch] = struct{}{}
	return ch, j.statusLocked()
}

// Unsubscribe removes a Subscribe channel (idempotent; terminal
// transitions already removed it).
func (j *Job) Unsubscribe(ch <-chan Status) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for c := range j.subs {
		if c == ch {
			delete(j.subs, c)
			return
		}
	}
}

// publishLocked fans the current snapshot out to subscribers, closing
// them on terminal states. Callers hold j.mu.
func (j *Job) publishLocked() {
	st := j.statusLocked()
	for ch := range j.subs {
		select {
		case ch <- st:
		default: // slow consumer: drop, it will catch up on the next event
		}
	}
	if st.State.Terminal() {
		for ch := range j.subs {
			close(ch)
		}
		j.subs = nil
	}
}

// appendLocked journals one record (write-ahead: callers apply the
// in-memory effect only after it returns nil). Callers hold j.mu.
func (j *Job) appendLocked(r record) error {
	r.Seq = j.seq
	if j.journal == nil {
		return errors.New("serve: job journal closed")
	}
	if err := j.journal.append(r); err != nil {
		return err
	}
	j.seq++
	return nil
}

// transition journals a lifecycle record and applies it in memory,
// publishing the new snapshot. A journal failure forces the job to
// FAILED in memory (best effort: the disk is gone, so durability of the
// failure itself is not available).
func (j *Job) transition(st State, r record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	if err := j.appendLocked(r); err != nil {
		j.state = StateFailed
		j.detail = fmt.Sprintf("journal write failed: %v", err)
		j.publishLocked()
		return
	}
	j.state = st
	if r.Detail != "" {
		j.detail = r.Detail
	}
	switch r.State {
	case recAdmitted:
		j.serial = r.Serial
	case recAudited:
		j.planDoc = r.Plan
		j.cost = r.Cost
		j.actions = r.Actions
		j.incumbent = r.Incumbent
		j.lowerBound = r.LowerBound
		j.gap = r.Gap
	}
	j.publishLocked()
}

// checkpointTransition journals a checkpoint record (state stays
// PLANNING) and applies the certificate.
func (j *Job) checkpointTransition(r record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	if err := j.appendLocked(r); err != nil {
		j.state = StateFailed
		j.detail = fmt.Sprintf("journal write failed: %v", err)
		j.publishLocked()
		return
	}
	j.legs = r.Leg
	j.incumbent = r.Incumbent
	j.lowerBound = r.LowerBound
	j.gap = r.Gap
	j.partialActions = r.PartialActions
	j.detail = r.Detail
	j.publishLocked()
}

// Manager owns the job table, the shared worker pool, and the state
// directory. Open recovers every journaled job before returning.
type Manager struct {
	cfg   Config
	pool  *sched.Pool
	store *bound.Store

	runCtx    context.Context
	cancelRun context.CancelCauseFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	draining bool

	wg sync.WaitGroup

	// planHook, when non-nil, runs before every planning leg — the
	// fault-injection seam: tests return sim.ErrTransient (retried with
	// backoff) or hard errors from it.
	planHook func(jobID string, leg int) error
}

// Open creates (or reopens) a manager over cfg.Dir, recovering every
// journaled job: terminal jobs load into the table as-is, in-flight jobs
// re-enter planning by deterministic replay, and jobs whose plan is
// journaled but whose done record was lost to the crash are completed
// without replanning.
func Open(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, errors.New("serve: Config.Dir required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating state dir: %w", err)
	}
	m := &Manager{
		cfg:      cfg,
		pool:     sched.NewPool(cfg.PoolWorkers, cfg.Recorder),
		store:    bound.NewStore(),
		jobs:     make(map[string]*Job),
		planHook: cfg.LegHook,
	}
	m.runCtx, m.cancelRun = context.WithCancelCause(context.Background())
	if err := m.recover(); err != nil {
		m.pool.Close()
		return nil, err
	}
	return m, nil
}

// jobPaths returns the journal and checkpoint paths for a job ID.
func (m *Manager) jobPaths(id string) (journal, ckpt string) {
	return filepath.Join(m.cfg.Dir, id+".journal"), filepath.Join(m.cfg.Dir, id+".ckpt")
}

// Submit validates, journals, and schedules a new job. The submitted
// record is durable before the job is acknowledged: a daemon killed
// right after Submit returns still completes the job after restart.
func (m *Manager) Submit(req Request) (*Job, error) {
	if err := req.validate(); err != nil {
		return nil, fmt.Errorf("serve: invalid request: %w", err)
	}
	// Reject NPD documents that cannot even decode, so the submitter
	// learns synchronously.
	doc, err := npd.Decode(bytes.NewReader(req.NPD))
	if err != nil {
		return nil, fmt.Errorf("serve: invalid request: %w", err)
	}
	if req.Name == "" {
		req.Name = doc.Name
	}
	reqJSON, err := json.Marshal(&req)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding request: %w", err)
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	id := fmt.Sprintf("job-%06d", m.nextID)
	m.nextID++
	jpath, _ := m.jobPaths(id)
	journal, err := createJobJournal(jpath)
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	j := &Job{ID: id, Req: req, m: m, journal: journal, state: StateSubmitted}
	j.ctx, j.cancelRun = context.WithCancelCause(m.runCtx)
	if err := func() error {
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.appendLocked(record{State: recSubmitted, Request: reqJSON})
	}(); err != nil {
		journal.close()
		os.Remove(jpath)
		m.mu.Unlock()
		return nil, err
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.wg.Add(1)
	m.mu.Unlock()

	m.cfg.Recorder.JobSubmitted()
	m.updateActive()
	go m.runJob(j)
	return j, nil
}

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j, nil
}

// Jobs returns every job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel requests cancellation of a job. The job transitions to
// CANCELLED once its planner observes the cancellation (synchronously
// for queued jobs).
func (m *Manager) Cancel(id string) error {
	j, err := m.Job(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if terminal {
		return fmt.Errorf("%w: %s", ErrTerminal, id)
	}
	j.cancelRun(errUserCancel)
	return nil
}

// Draining reports whether the manager has begun draining.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain stops accepting submissions, interrupts every running job so it
// journals a checkpoint (jobs stay PLANNING on disk — a restarted daemon
// resumes them), and waits for all runners to quiesce.
func (m *Manager) Drain() {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	m.mu.Unlock()
	if already {
		return
	}
	m.cfg.Recorder.ServeDrain()
	m.cancelRun(errDrainStop)
	m.wg.Wait()
}

// Close drains and releases the pool and every journal handle.
func (m *Manager) Close() {
	m.Drain()
	m.pool.Close()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.journal != nil {
			j.journal.close()
			j.journal = nil
		}
		j.mu.Unlock()
	}
}

// updateActive recomputes the jobs_active gauge.
func (m *Manager) updateActive() {
	m.mu.Lock()
	n := 0
	for _, j := range m.jobs {
		j.mu.Lock()
		if !j.state.Terminal() {
			n++
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	m.cfg.Recorder.JobsActive(n)
}

// prepare decodes the job's NPD into a migration task and builds its
// planning options.
func (m *Manager) prepare(j *Job) (*migration.Task, core.Options, error) {
	doc, err := npd.Decode(bytes.NewReader(j.Req.NPD))
	if err != nil {
		return nil, core.Options{}, err
	}
	scenario, err := doc.Scenario()
	if err != nil {
		return nil, core.Options{}, err
	}
	task := scenario.Task
	if doc.Migration != nil && doc.Migration.BlockFactor > 0 && doc.Migration.BlockFactor != 1 {
		if task, err = migration.Reblock(task, doc.Migration.BlockFactor); err != nil {
			return nil, core.Options{}, err
		}
	}
	opts := m.cfg.Options
	opts.MaxStates = 0
	opts.Sched = nil
	opts.Bound = nil
	opts.Timeout = 0
	if j.Req.Theta > 0 {
		opts.Theta = j.Req.Theta
	}
	if j.Req.Alpha > 0 {
		opts.Alpha = j.Req.Alpha
	}
	if j.Req.MaxRun > 0 {
		opts.MaxRunLength = j.Req.MaxRun
	}
	opts.Recorder = m.cfg.Recorder
	return task, opts, nil
}

// admit registers the job on the shared pool, waiting at most AdmitWait.
// When admission cannot complete in time — the pool is exhausted by
// same-or-higher-priority jobs — the job degrades to serial planning
// instead of queueing indefinitely (the service's liveness contract:
// admission control shapes capacity, it never wedges a job forever). A
// registration that completes after the timeout is closed by a janitor.
func (m *Manager) admit(ctx context.Context, j *Job) (client *sched.Client, serial bool) {
	type res struct {
		c   *sched.Client
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := m.pool.Register(j.ID, sched.ClientOptions{
			Priority: j.Req.Priority,
			MinShare: j.Req.MinShare,
			MaxShare: j.Req.MaxShare,
		})
		ch <- res{c, err}
	}()
	var timer <-chan time.Time
	if wait := m.cfg.admitWait(); wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		timer = t.C
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, true // pool closed: plan serially
		}
		return r.c, false
	case <-timer:
		m.cfg.Recorder.SerialDegrade()
	case <-ctx.Done():
	}
	go func() { // release a registration that lands after we stopped waiting
		if r := <-ch; r.c != nil {
			r.c.Close()
		}
	}()
	return nil, true
}

// runJob is one job's planning loop, from admission to a terminal state
// (or a drain checkpoint).
func (m *Manager) runJob(j *Job) {
	defer m.wg.Done()
	defer m.updateActive()

	task, opts, err := m.prepare(j)
	if err != nil {
		j.transition(StateFailed, record{State: recFailed, Detail: fmt.Sprintf("building scenario: %v", err)})
		return
	}

	ctx := j.ctx
	if j.Req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(j.Req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}

	client, serial := m.admit(ctx, j)
	if ctx.Err() != nil {
		if client != nil {
			client.Close()
		}
		m.finish(j, nil, ctx)
		return
	}
	j.transition(StateAdmitted, record{State: recAdmitted, Serial: serial})
	j.transition(StatePlanning, record{State: recPlanning})

	plan, err := m.planLegs(ctx, j, task, opts, client)
	if err != nil {
		m.finish(j, err, ctx)
		return
	}

	// The planner's post-pass audited the plan (Options.SkipAudit is
	// never set by the service); journal the audited document, then the
	// terminal done record.
	pd, err := npd.BuildPlanDocument(task, plan, opts)
	if err != nil {
		j.transition(StateFailed, record{State: recFailed, Detail: fmt.Sprintf("building plan document: %v", err)})
		return
	}
	docBytes, err := json.Marshal(pd)
	if err != nil {
		j.transition(StateFailed, record{State: recFailed, Detail: fmt.Sprintf("encoding plan document: %v", err)})
		return
	}
	j.transition(StateAudited, record{
		State:      recAudited,
		Plan:       docBytes,
		Cost:       plan.Cost,
		Actions:    len(plan.Sequence),
		Incumbent:  plan.Metrics.IncumbentCost,
		LowerBound: plan.Metrics.LowerBound,
		Gap:        plan.Metrics.OptimalityGap,
	})
	j.transition(StateDone, record{State: recDone})
}

// finish maps a planning interruption or failure to the job's terminal
// (or, for drains, non-terminal) state.
func (m *Manager) finish(j *Job, planErr error, ctx context.Context) {
	cause := context.Cause(ctx)
	switch {
	case errors.Is(cause, errDrainStop) || errors.Is(cause, errManagerClose):
		// Checkpoint already journaled by planLegs; the job stays
		// PLANNING on disk and a restarted daemon replays it.
		return
	case errors.Is(cause, errUserCancel):
		j.transition(StateCancelled, record{State: recCancelled, Detail: "cancelled by client"})
	case errors.Is(cause, context.DeadlineExceeded):
		m.cfg.Recorder.DeadlineExpiry()
		j.transition(StateFailed, record{State: recFailed, Detail: "deadline expired"})
	case planErr != nil:
		j.transition(StateFailed, record{State: recFailed, Detail: planErr.Error()})
	default:
		j.transition(StateFailed, record{State: recFailed, Detail: fmt.Sprintf("planning stopped: %v", cause)})
	}
}

// planOnce dispatches the first leg to the requested planner.
func planOnce(ctx context.Context, planner string, task *migration.Task, opts core.Options) (*core.Plan, error) {
	switch planner {
	case "", "astar":
		return core.PlanAStarContext(ctx, task, opts)
	case "dp":
		return core.PlanDPContext(ctx, task, opts)
	default:
		return nil, fmt.Errorf("serve: unknown planner %q", planner)
	}
}

// planLegs runs the job's search in legs of LegStates states each,
// journaling a checkpoint (record + sealed envelope) at every leg
// boundary, resuming across preemptions (re-admitting, possibly
// degraded to serial), and retrying transient failures with the ctrl
// backoff policy. It returns the completed, audited plan or the error
// that stopped the search (with the last checkpoint already journaled
// when one exists).
func (m *Manager) planLegs(ctx context.Context, j *Job, task *migration.Task, opts core.Options, client *sched.Client) (*core.Plan, error) {
	defer func() {
		if client != nil {
			client.Close()
		}
	}()

	legStates := m.cfg.legStates()
	if j.Req.LegStates > 0 {
		legStates = j.Req.LegStates
	}
	// One bound engine lives across all legs and replans of this job,
	// attached to the manager-wide store so structural cuts flow
	// between tenants (plan bytes are engine-independent by contract).
	engine := core.NewBoundEngine(task, opts)
	engine.Attach(m.store)

	base, maxBo := m.cfg.backoffs()
	rng := rand.New(rand.NewSource(1))
	retries := 0
	var cp *core.Checkpoint

	for leg := 0; ; leg++ {
		legOpts := opts
		legOpts.MaxStates = legStates
		legOpts.Bound = engine
		if client != nil {
			legOpts.Sched = client
			legOpts.Workers = core.WorkersAdaptive
		} else {
			legOpts.Sched = nil
			legOpts.Workers = 1
		}

		if m.planHook != nil {
			if herr := m.planHook(j.ID, leg); herr != nil {
				if errors.Is(herr, sim.ErrTransient) && retries < m.cfg.maxRetries() {
					retries++
					m.cfg.sleep(ctrl.Backoff(base, maxBo, retries, rng))
					leg--
					continue
				}
				return nil, herr
			}
		}

		// A preemption cancels only this leg's context, so the planner
		// checkpoints without tearing down the job.
		legCtx := ctx
		legDone := make(chan struct{})
		var cancelLeg context.CancelFunc
		if client != nil {
			legCtx, cancelLeg = context.WithCancel(ctx)
			go func(c *sched.Client) {
				select {
				case <-c.Preempted():
					cancelLeg()
				case <-legDone:
				}
			}(client)
		}

		var plan *core.Plan
		var err error
		if cp != nil {
			plan, err = core.Resume(legCtx, cp, legOpts)
		} else {
			plan, err = planOnce(legCtx, j.Req.Planner, task, legOpts)
		}
		close(legDone)
		if cancelLeg != nil {
			cancelLeg()
		}

		if err == nil {
			return plan, nil
		}
		var intr *core.Interrupted
		if !errors.As(err, &intr) {
			if errors.Is(err, sim.ErrTransient) && retries < m.cfg.maxRetries() {
				retries++
				m.cfg.sleep(ctrl.Backoff(base, maxBo, retries, rng))
				leg--
				continue
			}
			return nil, err
		}
		cp = intr.Checkpoint
		m.journalCheckpoint(j, cp, intr.Reason)
		if ctx.Err() != nil {
			// Cancelled above the leg: drain, user cancel, or deadline.
			return nil, err
		}

		preempted := false
		if client != nil {
			select {
			case <-client.Preempted():
				preempted = true
			default:
			}
		}
		if preempted {
			j.mu.Lock()
			j.preemptions++
			j.mu.Unlock()
			client.Close()
			client, _ = m.admit(ctx, j)
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}
		// Otherwise: plain leg-budget exhaustion — continue with the
		// same client.
	}
}

// journalCheckpoint seals the checkpoint envelope (atomic file) and
// journals a checkpoint record carrying the anytime certificate.
func (m *Manager) journalCheckpoint(j *Job, cp *core.Checkpoint, reason error) {
	if cp == nil {
		return
	}
	inc, lb, gap := cp.Gap()
	j.mu.Lock()
	leg := j.legs + 1
	j.mu.Unlock()
	_, ckptPath := m.jobPaths(j.ID)
	if err := writeCheckpointFile(ckptPath, jobCheckpoint{
		Job:            j.ID,
		Planner:        cp.Planner,
		Reason:         fmt.Sprint(reason),
		Leg:            leg,
		Counts:         cp.Counts,
		Partial:        cp.Partial,
		Incumbent:      inc,
		LowerBound:     lb,
		Gap:            gap,
		StatesCreated:  cp.Metrics.StatesCreated,
		StatesExpanded: cp.Metrics.StatesPopped,
	}); err != nil {
		// The journal record below is the durable truth; a failed
		// envelope write only degrades the checkpoint endpoint, so the
		// job plans on.
		_ = err
	}
	j.checkpointTransition(record{
		State:          recCheckpoint,
		Leg:            leg,
		Incumbent:      inc,
		LowerBound:     lb,
		Gap:            gap,
		PartialActions: len(cp.Partial),
		Detail:         fmt.Sprintf("checkpoint (%v)", reason),
	})
}

// CheckpointEnvelope returns the job's latest sealed checkpoint envelope
// bytes (the .ckpt file), or an error when none exists or it is damaged.
func (m *Manager) CheckpointEnvelope(id string) ([]byte, error) {
	if _, err := m.Job(id); err != nil {
		return nil, err
	}
	_, ckptPath := m.jobPaths(id)
	data, err := os.ReadFile(ckptPath)
	if err != nil {
		return nil, err
	}
	if _, err := npd.OpenSealed(ckptFormat, data); err != nil {
		return nil, err
	}
	return data, nil
}

// recover folds every journal in the state directory back into the job
// table. Terminal jobs load as-is; a job with an audited record but no
// done record is completed from its journaled plan (no replanning); any
// other in-flight job re-enters planning by deterministic replay. A
// journal with mid-file corruption is quarantined (renamed *.corrupt)
// and the job surfaces as FAILED. An empty journal — crash before the
// first durable record, submitter never acknowledged — is removed.
func (m *Manager) recover() error {
	paths, err := filepath.Glob(filepath.Join(m.cfg.Dir, "job-*.journal"))
	if err != nil {
		return fmt.Errorf("serve: scanning state dir: %w", err)
	}
	sort.Strings(paths)
	for _, path := range paths {
		id := filepath.Base(path)
		id = id[:len(id)-len(".journal")]
		var n int
		if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
			continue // not ours
		}
		if n >= m.nextID {
			m.nextID = n + 1
		}
		if removeIfEmptyJournal(path) {
			continue
		}
		journal, recs, err := openJobJournal(path)
		if err != nil {
			if errors.Is(err, ctrl.ErrCorrupt) {
				m.quarantine(id, path, err)
				continue
			}
			return err
		}
		if len(recs) == 0 {
			// Only a torn first record existed; the submitter was never
			// acknowledged, so the job never existed.
			journal.close()
			os.Remove(path)
			continue
		}
		j := m.foldJob(id, journal, recs)
		m.jobs[id] = j
		m.order = append(m.order, id)

		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		switch {
		case st.Terminal():
			journal.close()
			j.mu.Lock()
			j.journal = nil
			j.mu.Unlock()
		case st == StateAudited:
			// The plan is durable; only the done record was lost.
			j.transition(StateDone, record{State: recDone})
			j.mu.Lock()
			j.journal.close()
			j.journal = nil
			j.mu.Unlock()
			m.cfg.Recorder.JobRecovered()
		default:
			// In-flight: replay from the journaled request.
			j.ctx, j.cancelRun = context.WithCancelCause(m.runCtx)
			m.wg.Add(1)
			go m.runJob(j)
			m.cfg.Recorder.JobRecovered()
		}
	}
	m.updateActive()
	return nil
}

// quarantine renames a corrupt journal aside and registers the job as
// FAILED with a fresh journal recording why, so restarts converge
// instead of re-parsing the damage forever.
func (m *Manager) quarantine(id, path string, cause error) {
	os.Rename(path, path+".corrupt")
	j := &Job{ID: id, m: m, state: StateFailed, detail: fmt.Sprintf("journal corrupt: %v", cause)}
	if journal, err := createJobJournal(path); err == nil {
		j.journal = journal
		j.mu.Lock()
		j.appendLocked(record{State: recFailed, Detail: j.detail})
		j.mu.Unlock()
		journal.close()
		j.journal = nil
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
}

// foldJob replays a journal's records into a Job. The journal may hold
// several admission/planning cycles (one per recovery); the fold keeps
// the latest values.
func (m *Manager) foldJob(id string, journal *jobJournal, recs []record) *Job {
	j := &Job{ID: id, m: m, journal: journal, state: StateSubmitted, recovered: true}
	maxSeq := -1
	for _, r := range recs {
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
		switch r.State {
		case recSubmitted:
			if len(r.Request) > 0 {
				var req Request
				if err := json.Unmarshal(r.Request, &req); err == nil {
					j.Req = req
				}
			}
			j.state = StateSubmitted
		case recAdmitted:
			j.state = StateAdmitted
			j.serial = r.Serial
		case recPlanning:
			j.state = StatePlanning
		case recCheckpoint:
			j.state = StatePlanning
			j.legs = r.Leg
			j.incumbent = r.Incumbent
			j.lowerBound = r.LowerBound
			j.gap = r.Gap
			j.partialActions = r.PartialActions
		case recAudited:
			j.state = StateAudited
			j.planDoc = r.Plan
			j.cost = r.Cost
			j.actions = r.Actions
			j.incumbent = r.Incumbent
			j.lowerBound = r.LowerBound
			j.gap = r.Gap
		case recDone:
			j.state = StateDone
		case recCancelled:
			j.state = StateCancelled
			j.detail = r.Detail
		case recFailed:
			j.state = StateFailed
			j.detail = r.Detail
		}
	}
	j.seq = maxSeq + 1
	return j
}
