package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"klotski/internal/obs"
	"klotski/internal/sim"
)

// testNPD is the small-but-real region document shared with the CLI
// tests: two pods of HGRID fabric migrating v1→v2, enough blocks for the
// planner to need several legs under a small per-leg budget.
const testNPD = `{
	"version": 1,
	"name": "serve-test",
	"fabric": [{"dc": 0, "pods": 2, "rswPerPod": 2, "planes": 4, "sswPerPlane": 2, "fswUplinks": 1}],
	"hgrid": {"grids": 4, "faduPerGrid": 2, "fauuPerGrid": 1, "sswDownlinks": 1},
	"eb": {"count": 2, "linkTbps": 40},
	"dr": {"count": 1, "linkTbps": 80},
	"bb": {"ebbs": 1},
	"migration": {"kind": "hgrid-v1-v2"}
}`

func testRequest() Request {
	return Request{NPD: json.RawMessage(testNPD)}
}

// newManager opens a manager over dir with small budgets: a tiny per-leg
// state budget so even the test fabric checkpoints several times.
func newManager(t *testing.T, dir string, mutate func(*Config)) *Manager {
	t.Helper()
	cfg := Config{
		Dir:         dir,
		PoolWorkers: 2,
		LegStates:   8,
		AdmitWait:   5 * time.Second,
		Recorder:    obs.NewRecorder(obs.NewRegistry()),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, j *Job) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := j.Status()
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (%s)", st.ID, st.State, st.Detail)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobLifecycle(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, dir, nil)
	defer m.Close()

	j, err := m.Submit(testRequest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitTerminal(t, j)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s), want DONE", st.State, st.Detail)
	}
	if st.Gap != 0 {
		t.Errorf("completed job gap = %v, want certified 0", st.Gap)
	}
	if st.Legs == 0 {
		t.Errorf("job planned without a single checkpoint leg; LegStates too large for the fixture")
	}
	if st.Actions == 0 || st.Cost <= 0 {
		t.Errorf("final plan summary empty: %+v", st)
	}

	doc, err := j.Plan()
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	var pd struct {
		Task    string  `json:"task"`
		Cost    float64 `json:"cost"`
		Actions int     `json:"actions"`
	}
	if err := json.Unmarshal(doc, &pd); err != nil {
		t.Fatalf("plan document does not parse: %v", err)
	}
	if pd.Task != "serve-test" || pd.Actions != st.Actions || pd.Cost != st.Cost {
		t.Errorf("plan document %+v disagrees with status %+v", pd, st)
	}

	// The sealed checkpoint envelope from the last leg must verify.
	if _, err := m.CheckpointEnvelope(j.ID); err != nil {
		t.Errorf("CheckpointEnvelope: %v", err)
	}

	// The journal must fold back to DONE with the same plan.
	m.Close()
	m2 := newManager(t, dir, nil)
	defer m2.Close()
	j2, err := m2.Job(j.ID)
	if err != nil {
		t.Fatalf("job lost across restart: %v", err)
	}
	st2 := j2.Status()
	if st2.State != StateDone || st2.Cost != st.Cost || st2.Actions != st.Actions {
		t.Errorf("restarted status %+v, want %+v", st2, st)
	}
	doc2, err := j2.Plan()
	if err != nil {
		t.Fatalf("restarted Plan: %v", err)
	}
	if string(doc2) != string(doc) {
		t.Errorf("plan document changed across restart")
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newManager(t, t.TempDir(), nil)
	defer m.Close()

	cases := []Request{
		{},
		{NPD: json.RawMessage(`{"version": 99}`)},
		{NPD: json.RawMessage(testNPD), Planner: "mrc"},
		{NPD: json.RawMessage(testNPD), Theta: 1.5},
		{NPD: json.RawMessage(testNPD), DeadlineMS: -1},
	}
	for i, rq := range cases {
		if _, err := m.Submit(rq); err == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
	if got := len(m.Jobs()); got != 0 {
		t.Errorf("%d jobs exist after rejected submissions", got)
	}
}

func TestCancel(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, dir, nil)
	defer m.Close()

	// Slow the legs down so the cancel lands mid-planning.
	started := make(chan struct{})
	m.planHook = func(id string, leg int) error {
		if leg == 1 {
			close(started)
			time.Sleep(20 * time.Millisecond)
		}
		return nil
	}
	j, err := m.Submit(testRequest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	if err := m.Cancel(j.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	st := waitTerminal(t, j)
	if st.State != StateCancelled {
		t.Fatalf("job finished %s, want CANCELLED", st.State)
	}
	if err := m.Cancel(j.ID); !errors.Is(err, ErrTerminal) {
		t.Errorf("second cancel: %v, want ErrTerminal", err)
	}

	// Cancellation is durable.
	m.Close()
	m2 := newManager(t, dir, nil)
	defer m2.Close()
	j2, err := m2.Job(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Status().State; got != StateCancelled {
		t.Errorf("restarted state %s, want CANCELLED", got)
	}
}

func TestDeadlineExpiry(t *testing.T) {
	reg := obs.NewRegistry()
	m := newManager(t, t.TempDir(), func(c *Config) {
		c.Recorder = obs.NewRecorder(reg)
	})
	defer m.Close()

	m.planHook = func(id string, leg int) error {
		time.Sleep(30 * time.Millisecond)
		return nil
	}
	rq := testRequest()
	rq.DeadlineMS = 5
	j, err := m.Submit(rq)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitTerminal(t, j)
	if st.State != StateFailed || st.Detail != "deadline expired" {
		t.Fatalf("job finished %s (%q), want FAILED deadline expired", st.State, st.Detail)
	}
	if got := reg.Snapshot().Counters[obs.MetricServeDeadlineExpiries]; got != 1 {
		t.Errorf("deadline_expiries = %d, want 1", got)
	}
}

func TestTransientRetryBackoff(t *testing.T) {
	var slept []time.Duration
	m := newManager(t, t.TempDir(), func(c *Config) {
		c.MaxRetries = 3
		c.Sleep = func(d time.Duration) { slept = append(slept, d) }
	})
	defer m.Close()

	fails := 2
	m.planHook = func(id string, leg int) error {
		if leg == 0 && fails > 0 {
			fails--
			return fmt.Errorf("injected: %w", sim.ErrTransient)
		}
		return nil
	}
	j, err := m.Submit(testRequest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitTerminal(t, j)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s), want DONE despite transient faults", st.State, st.Detail)
	}
	if len(slept) != 2 {
		t.Fatalf("%d backoff sleeps, want 2", len(slept))
	}
	for i, d := range slept {
		if d <= 0 {
			t.Errorf("backoff %d = %v, want positive", i, d)
		}
	}
}

func TestTransientRetryExhaustion(t *testing.T) {
	m := newManager(t, t.TempDir(), func(c *Config) {
		c.MaxRetries = 2
		c.Sleep = func(time.Duration) {}
	})
	defer m.Close()

	m.planHook = func(id string, leg int) error {
		return fmt.Errorf("injected: %w", sim.ErrTransient)
	}
	j, err := m.Submit(testRequest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitTerminal(t, j)
	if st.State != StateFailed {
		t.Fatalf("job finished %s, want FAILED after retry exhaustion", st.State)
	}
}

func TestDrainCheckpointsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	m := newManager(t, dir, func(c *Config) { c.Recorder = obs.NewRecorder(reg) })

	legged := make(chan struct{})
	var once bool
	m.planHook = func(id string, leg int) error {
		if leg >= 1 && !once {
			once = true
			close(legged)
		}
		if leg >= 1 {
			time.Sleep(5 * time.Millisecond)
		}
		return nil
	}
	j, err := m.Submit(testRequest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-legged // at least one checkpoint is journaled
	m.Drain()
	if _, err := m.Submit(testRequest()); !errors.Is(err, ErrDraining) {
		t.Errorf("Submit while draining: %v, want ErrDraining", err)
	}
	st := j.Status()
	if st.State.Terminal() {
		t.Fatalf("drained job reached %s; drain must leave it in-flight", st.State)
	}
	if st.Legs == 0 {
		t.Fatalf("drained job has no checkpoint legs")
	}
	m.Close()
	if got := reg.Snapshot().Counters[obs.MetricServeDrains]; got != 1 {
		t.Errorf("drains = %d, want 1", got)
	}

	// Reopen: the job recovers and finishes audited.
	reg2 := obs.NewRegistry()
	m2 := newManager(t, dir, func(c *Config) { c.Recorder = obs.NewRecorder(reg2) })
	defer m2.Close()
	j2, err := m2.Job(j.ID)
	if err != nil {
		t.Fatalf("job lost across drain/restart: %v", err)
	}
	st2 := waitTerminal(t, j2)
	if st2.State != StateDone {
		t.Fatalf("recovered job finished %s (%s), want DONE", st2.State, st2.Detail)
	}
	if !st2.Recovered {
		t.Errorf("recovered job not flagged as recovered")
	}
	if got := reg2.Snapshot().Counters[obs.MetricServeJobsRecovered]; got != 1 {
		t.Errorf("jobs_recovered = %d, want 1", got)
	}
}

// TestAdmissionFlood floods a two-worker pool with min-share-2 jobs:
// only one can hold a reservation at a time, so the rest time out of
// admission and degrade to serial planning instead of being rejected or
// wedged. Every job must still finish DONE with the same plan.
func TestAdmissionFlood(t *testing.T) {
	reg := obs.NewRegistry()
	m := newManager(t, t.TempDir(), func(c *Config) {
		c.PoolWorkers = 2
		c.AdmitWait = 10 * time.Millisecond
		c.Recorder = obs.NewRecorder(reg)
	})
	defer m.Close()

	const flood = 5
	jobs := make([]*Job, flood)
	for i := range jobs {
		rq := testRequest()
		rq.MinShare = 2
		j, err := m.Submit(rq)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		jobs[i] = j
	}
	var docs [][]byte
	for i, j := range jobs {
		st := waitTerminal(t, j)
		if st.State != StateDone {
			t.Fatalf("job %d finished %s (%s), want DONE", i, st.State, st.Detail)
		}
		doc, err := j.Plan()
		if err != nil {
			t.Fatalf("job %d plan: %v", i, err)
		}
		docs = append(docs, doc)
	}
	for i := 1; i < len(docs); i++ {
		if string(docs[i]) != string(docs[0]) {
			t.Errorf("job %d plan differs from job 0 under admission pressure", i)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MetricServeSerialDegrades] == 0 {
		t.Errorf("no serial degrades under a flooded pool")
	}
	if got := snap.Counters[obs.MetricServeJobsSubmitted]; got != flood {
		t.Errorf("jobs_submitted = %d, want %d", got, flood)
	}
}

// TestPriorityPreemption runs a low-priority job on a saturated pool and
// submits a high-priority one: the low job must be preempted, checkpoint,
// and still finish with the identical plan after re-admission.
func TestPriorityPreemption(t *testing.T) {
	m := newManager(t, t.TempDir(), func(c *Config) {
		c.PoolWorkers = 2
		c.AdmitWait = 30 * time.Second // force preemption, not serial degrade
	})
	defer m.Close()

	low := testRequest()
	low.MinShare = 2
	jLow, err := m.Submit(low)
	if err != nil {
		t.Fatalf("Submit low: %v", err)
	}
	// Wait for the low job to hold the pool.
	for jLow.Status().State == StateSubmitted {
		time.Sleep(time.Millisecond)
	}
	high := testRequest()
	high.Priority = 10
	high.MinShare = 2
	jHigh, err := m.Submit(high)
	if err != nil {
		t.Fatalf("Submit high: %v", err)
	}
	stHigh := waitTerminal(t, jHigh)
	stLow := waitTerminal(t, jLow)
	if stHigh.State != StateDone || stLow.State != StateDone {
		t.Fatalf("high %s / low %s, want DONE/DONE", stHigh.State, stLow.State)
	}
	dLow, _ := jLow.Plan()
	dHigh, _ := jHigh.Plan()
	if string(dLow) != string(dHigh) {
		t.Errorf("preempted job's plan differs from the preemptor's for the same request")
	}
}

func TestEmptyJournalRemoved(t *testing.T) {
	dir := t.TempDir()
	// A crash between journal creation and the first durable record:
	// the submitter was never acknowledged, so the job must vanish.
	if err := os.WriteFile(filepath.Join(dir, "job-000007.journal"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m := newManager(t, dir, nil)
	defer m.Close()
	if got := len(m.Jobs()); got != 0 {
		t.Fatalf("%d jobs recovered from an empty journal, want 0", got)
	}
	// The ID is still burned: the next submission must not collide.
	j, err := m.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "job-000008" {
		t.Errorf("next job ID %s, want job-000008 (IDs allocate past the removed journal)", j.ID)
	}
	waitTerminal(t, j)
}
