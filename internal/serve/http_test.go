package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, mutate func(*Config)) (*Manager, *httptest.Server) {
	t.Helper()
	m := newManager(t, t.TempDir(), mutate)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return m, srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("GET %s: %v in %q", url, err, data)
		}
	}
	return resp.StatusCode
}

func TestHTTPSubmitPollPlan(t *testing.T) {
	_, srv := newTestServer(t, nil)

	resp, body := postJSON(t, srv.URL+"/v1/jobs", testRequest())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatalf("submit returned no job ID: %s", body)
	}

	// Poll until DONE.
	deadline := time.Now().Add(time.Minute)
	for st.State != StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID, &st); code != http.StatusOK {
			t.Fatalf("status: %d", code)
		}
	}
	if st.Gap != 0 {
		t.Errorf("done job gap %v", st.Gap)
	}

	// The plan endpoint serves the audited document.
	var pd struct {
		Task   string `json:"task"`
		Phases []any  `json:"phases"`
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/plan", &pd); code != http.StatusOK {
		t.Fatalf("plan: %d", code)
	}
	if pd.Task != "serve-test" || len(pd.Phases) == 0 {
		t.Errorf("plan document: %+v", pd)
	}

	// The checkpoint endpoint serves a sealed envelope.
	var env struct {
		SealVersion int    `json:"sealVersion"`
		Format      string `json:"format"`
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/checkpoint", &env); code != http.StatusOK {
		t.Fatalf("checkpoint: %d", code)
	}
	if env.Format != "klotski/job-checkpoint" {
		t.Errorf("checkpoint format %q", env.Format)
	}

	// The list endpoint includes the job.
	var list []Status
	if code := getJSON(t, srv.URL+"/v1/jobs", &list); code != http.StatusOK || len(list) != 1 {
		t.Errorf("list: %d, %d jobs", code, len(list))
	}
}

func TestHTTPErrors(t *testing.T) {
	m, srv := newTestServer(t, nil)

	if code := getJSON(t, srv.URL+"/v1/jobs/job-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", code)
	}
	resp, _ := postJSON(t, srv.URL+"/v1/jobs/job-999999/cancel", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job cancel: %d, want 404", resp.StatusCode)
	}
	resp, body := postJSON(t, srv.URL+"/v1/jobs", Request{Planner: "mrc"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad submit: %d %s, want 400", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/jobs", "not a request")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-object submit: %d, want 400", resp.StatusCode)
	}

	// A job without a plan yet answers 409 on /plan.
	m.planHook = func(string, int) error { time.Sleep(10 * time.Millisecond); return nil }
	_, body = postJSON(t, srv.URL+"/v1/jobs", testRequest())
	var st Status
	json.Unmarshal(body, &st)
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/plan", nil); code != http.StatusConflict {
		t.Errorf("plan before audit: %d, want 409", code)
	}

	var health map[string]string
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Errorf("health: %d %v", code, health)
	}
}

// TestHTTPStream reads the NDJSON stream to the end: it must deliver
// monotonic progress and finish with the terminal snapshot.
func TestHTTPStream(t *testing.T) {
	m, srv := newTestServer(t, nil)
	// Slow the legs down so the stream attaches before the job finishes.
	m.planHook = func(string, int) error { time.Sleep(10 * time.Millisecond); return nil }
	_, body := postJSON(t, srv.URL+"/v1/jobs", testRequest())
	var submitted Status
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + submitted.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	var last Status
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var st Status
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("stream line %d: %v in %q", lines, err, sc.Text())
		}
		if st.ID != submitted.ID {
			t.Fatalf("stream line for %s, want %s", st.ID, submitted.ID)
		}
		last = st
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if lines < 2 {
		t.Errorf("stream delivered %d snapshots, want at least initial + terminal", lines)
	}
	if last.State != StateDone {
		t.Errorf("stream ended on %s, want DONE", last.State)
	}
}

// TestHTTPStreamClientDrop drops the streaming connection mid-plan; the
// job must be unaffected and finish DONE for other clients.
func TestHTTPStreamClientDrop(t *testing.T) {
	m, srv := newTestServer(t, nil)
	m.planHook = func(string, int) error { time.Sleep(5 * time.Millisecond); return nil }
	_, body := postJSON(t, srv.URL+"/v1/jobs", testRequest())
	var submitted Status
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}

	// Open several streams and kill them after the first snapshot.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + submitted.ID + "/stream")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		resp.Body.Read(buf) // partial read, then slam the connection shut
		resp.Body.Close()
	}

	j, err := m.Job(submitted.ID)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s) after client drops, want DONE", st.State, st.Detail)
	}
	// A fresh stream on the finished job yields exactly the terminal state.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + submitted.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var final Status
	if err := json.Unmarshal(bytes.TrimSpace(data), &final); err != nil {
		t.Fatalf("terminal stream: %v in %q", err, data)
	}
	if final.State != StateDone {
		t.Errorf("terminal stream state %s", final.State)
	}
}

func TestHTTPCancel(t *testing.T) {
	m, srv := newTestServer(t, nil)
	blocked := make(chan struct{})
	m.planHook = func(id string, leg int) error {
		if leg == 1 {
			select {
			case <-blocked:
			default:
				close(blocked)
			}
			time.Sleep(10 * time.Millisecond)
		}
		return nil
	}
	_, body := postJSON(t, srv.URL+"/v1/jobs", testRequest())
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	<-blocked
	resp, _ := postJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/cancel", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	j, err := m.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, j); got.State != StateCancelled {
		t.Fatalf("job finished %s, want CANCELLED", got.State)
	}
	// Cancelling again conflicts.
	resp, _ = postJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/cancel", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel terminal job: %d, want 409", resp.StatusCode)
	}
}

// TestHTTPDrainRejectsSubmit verifies the health and submit behavior of
// a draining daemon.
func TestHTTPDrainRejectsSubmit(t *testing.T) {
	m, srv := newTestServer(t, nil)
	m.Drain()
	var health map[string]string
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "draining" {
		t.Errorf("health while draining: %d %v", code, health)
	}
	resp, _ := postJSON(t, srv.URL+"/v1/jobs", testRequest())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d, want 503", resp.StatusCode)
	}
}
