package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"klotski/internal/ctrl"
	"klotski/internal/npd"
)

// record is one job-journal entry. State names the transition
// ("submitted", "admitted", "planning", "checkpoint", "audited", "done",
// "cancelled", "failed"); "checkpoint" is a planning-progress record, not
// a distinct lifecycle state — it folds back to PLANNING. The submitted
// record carries the full request so a restarted daemon can replan from
// the journal alone; the audited record carries the final plan document
// bytes so a job that reached AUDITED never replans.
type record struct {
	Seq    int    `json:"seq"`
	State  string `json:"state"`
	Detail string `json:"detail,omitempty"`

	// submitted
	Request json.RawMessage `json:"request,omitempty"`

	// admitted
	Serial bool `json:"serial,omitempty"`

	// checkpoint
	Leg            int     `json:"leg,omitempty"`
	Incumbent      float64 `json:"incumbent,omitempty"`
	LowerBound     float64 `json:"lower_bound,omitempty"`
	Gap            float64 `json:"gap,omitempty"`
	PartialActions int     `json:"partial_actions,omitempty"`

	// audited
	Plan    json.RawMessage `json:"plan,omitempty"`
	Cost    float64         `json:"cost,omitempty"`
	Actions int             `json:"actions,omitempty"`
}

// recordStates that map to lifecycle states (everything but "checkpoint").
const (
	recSubmitted  = "submitted"
	recAdmitted   = "admitted"
	recPlanning   = "planning"
	recCheckpoint = "checkpoint"
	recAudited    = "audited"
	recDone       = "done"
	recCancelled  = "cancelled"
	recFailed     = "failed"
)

// jobJournal is one job's write-ahead log: KJ1 records (ctrl's versioned,
// CRC32C-checksummed line envelope), fsynced per append, torn tail
// dropped on open.
type jobJournal struct {
	path string
	f    *os.File
}

// createJobJournal creates a fresh journal, refusing to clobber an
// existing file — a job ID is allocated exactly once.
func createJobJournal(path string) (*jobJournal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: creating job journal: %w", err)
	}
	return &jobJournal{path: path, f: f}, nil
}

// openJobJournal reads an existing journal's records (dropping a torn
// final record) and opens it for further appends, truncated to the clean
// prefix. Mid-file damage fails with an error wrapping ctrl.ErrCorrupt.
func openJobJournal(path string) (*jobJournal, []record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: reading job journal: %w", err)
	}
	var recs []record
	cleanLen, err := ctrl.ParseRecords(data, func(payload []byte) error {
		var r record
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("unmarshaling job record: %w", err)
		}
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: opening job journal: %w", err)
	}
	if err := f.Truncate(cleanLen); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(cleanLen, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: seeking job journal: %w", err)
	}
	return &jobJournal{path: path, f: f}, recs, nil
}

// append writes one record and syncs it to stable storage before
// returning — the caller's in-memory transition must wait for it.
func (j *jobJournal) append(r record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("serve: encoding job record: %w", err)
	}
	line, err := ctrl.EncodeRecord(payload)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("serve: appending job record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: syncing job journal: %w", err)
	}
	return nil
}

func (j *jobJournal) close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// ckptFormat tags the sealed per-job checkpoint envelope.
const ckptFormat = "klotski/job-checkpoint"

// jobCheckpoint is the sealed checkpoint payload: the job's identity plus
// the planner's advisory partial result and anytime certificate at the
// last leg boundary. It is what the checkpoint endpoint serves, and it is
// deliberately replayable — recovery never needs it, because replanning
// the journaled request reproduces the same bytes.
type jobCheckpoint struct {
	Job            string  `json:"job"`
	Planner        string  `json:"planner"`
	Reason         string  `json:"reason"`
	Leg            int     `json:"leg"`
	Counts         []int   `json:"counts"`
	Partial        []int   `json:"partial"`
	Incumbent      float64 `json:"incumbent"`
	LowerBound     float64 `json:"lower_bound"`
	Gap            float64 `json:"gap"`
	StatesCreated  int     `json:"states_created"`
	StatesExpanded int     `json:"states_expanded"`
}

// writeCheckpointFile seals cp and writes it atomically (temp + fsync +
// rename), so a crash mid-write leaves either the old checkpoint or the
// new one, never a torn file.
func writeCheckpointFile(path string, cp jobCheckpoint) error {
	data, err := npd.SealValue(ckptFormat, cp)
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// readCheckpointFile opens and verifies a sealed checkpoint file. Any
// damage — missing file, torn write, checksum mismatch, wrong format —
// returns an error; callers treat that as "no checkpoint" and replan.
func readCheckpointFile(path string) (jobCheckpoint, error) {
	var cp jobCheckpoint
	data, err := os.ReadFile(path)
	if err != nil {
		return cp, err
	}
	payload, err := npd.OpenSealed(ckptFormat, data)
	if err != nil {
		return cp, err
	}
	if err := json.Unmarshal(payload, &cp); err != nil {
		return cp, fmt.Errorf("serve: decoding checkpoint payload: %w", err)
	}
	return cp, nil
}

// writeFileAtomic writes data via temp file + fsync + rename in path's
// directory, so readers never observe a partial write.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".serve-*")
	if err != nil {
		return fmt.Errorf("serve: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("serve: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("serve: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: renaming into place: %w", err)
	}
	return nil
}

// removeIfEmptyJournal deletes a journal file that holds zero clean
// records — the trace of a crash between journal creation and the first
// durable append, before the submitter was ever acknowledged.
func removeIfEmptyJournal(path string) bool {
	info, err := os.Stat(path)
	if err == nil && info.Size() == 0 {
		os.Remove(path)
		return true
	}
	return false
}

// isNotExist reports whether err is a missing-file error.
func isNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
