// Package pipeline implements the EDP-Lite migration pipeline (paper §5)
// and the operational practices around it from the deployment section (§7):
//
//   - end-to-end planning: NPD document → topology/task → planner → audited
//     plan → ordered topology phases;
//   - demand-forecast integration (§7.1): plans are re-verified against
//     forecasted demand at every step and re-planned when growth breaks
//     them;
//   - replanning after partial execution, demand shifts, or out-of-band
//     equipment outages (§7.2 "failures during operation duration" and
//     "simultaneous operations");
//   - independent plan audits before anything is handed to operators.
package pipeline

import (
	"context"
	"errors"
	"fmt"

	"klotski/internal/baseline"
	"klotski/internal/core"
	"klotski/internal/demand"
	"klotski/internal/gen"
	"klotski/internal/migration"
	"klotski/internal/npd"
	"klotski/internal/sim"
	"klotski/internal/topo"
)

// Planner selects the planning algorithm.
type Planner string

// Available planners. The baselines are exposed for evaluation runs.
const (
	PlannerAStar Planner = "astar"
	PlannerDP    Planner = "dp"
	PlannerMRC   Planner = "mrc"
	PlannerJanus Planner = "janus"
)

// Plan dispatches to the selected planning algorithm.
func (p Planner) Plan(task *migration.Task, opts core.Options) (*core.Plan, error) {
	return p.PlanContext(context.Background(), task, opts)
}

// PlanContext dispatches to the selected planning algorithm with
// cooperative cancellation. The core planners additionally return a
// resumable *core.Interrupted on budget exhaustion or cancellation.
func (p Planner) PlanContext(ctx context.Context, task *migration.Task, opts core.Options) (*core.Plan, error) {
	switch p {
	case PlannerAStar, "":
		return core.PlanAStarContext(ctx, task, opts)
	case PlannerDP:
		return core.PlanDPContext(ctx, task, opts)
	case PlannerMRC:
		return baseline.PlanMRCContext(ctx, task, opts)
	case PlannerJanus:
		return baseline.PlanJanusContext(ctx, task, opts)
	}
	return nil, fmt.Errorf("pipeline: unknown planner %q", p)
}

// Config parameterizes a pipeline run.
type Config struct {
	Planner Planner
	Options core.Options

	// Forecast, when non-zero, is the organic demand growth per completed
	// migration step (§7.1). The pipeline verifies the plan against grown
	// demand at every step and re-plans from the first step where growth
	// makes the remainder unsafe.
	Forecast demand.Forecast

	// UnitCosts overrides action-type unit costs by type name — the OPEX
	// cost model of §7.2 (different crews and sites have different costs).
	UnitCosts map[string]float64

	// SkipAudit disables the independent post-planning audit. Only tests
	// use it; production runs always audit.
	SkipAudit bool

	// CampaignSeeds, when > 0, replays the audited plan that many times
	// with randomized intra-run asynchrony (worst-case circuit-level
	// drains) and attaches the transient-exposure distribution to the
	// result — the funneling risk report of §2.2/§7.2.
	CampaignSeeds int
}

// Result is the output of a pipeline run.
type Result struct {
	Scenario *gen.Scenario
	Task     *migration.Task
	Plan     *core.Plan
	Document *npd.PlanDocument

	// Replans counts how many times forecast integration had to re-plan.
	Replans int

	// Campaign is the transient-exposure distribution when
	// Config.CampaignSeeds > 0.
	Campaign *sim.CampaignReport
}

// Run executes the full pipeline on an NPD document with a migration part.
func Run(doc *npd.Document, cfg Config) (*Result, error) {
	return RunContext(context.Background(), doc, cfg)
}

// RunContext is Run with cooperative cancellation threaded through to the
// planner (and any forecast-driven replans).
func RunContext(ctx context.Context, doc *npd.Document, cfg Config) (*Result, error) {
	scenario, err := doc.Scenario()
	if err != nil {
		return nil, err
	}
	task := scenario.Task
	if doc.Migration != nil && doc.Migration.BlockFactor > 0 && doc.Migration.BlockFactor != 1 {
		task, err = migration.Reblock(task, doc.Migration.BlockFactor)
		if err != nil {
			return nil, err
		}
	}
	res, err := RunTaskContext(ctx, task, cfg)
	if err != nil {
		return nil, err
	}
	res.Scenario = scenario
	return res, nil
}

// RunTask executes the pipeline on an already-built migration task.
func RunTask(task *migration.Task, cfg Config) (*Result, error) {
	return RunTaskContext(context.Background(), task, cfg)
}

// RunTaskContext is RunTask with cooperative cancellation.
func RunTaskContext(ctx context.Context, task *migration.Task, cfg Config) (*Result, error) {
	applyUnitCosts(task, cfg.UnitCosts)
	if cfg.SkipAudit {
		// Propagate the opt-out to the planners' own post-pass so a skip
		// actually skips (benchmarks isolating search time rely on it).
		cfg.Options.SkipAudit = true
	}
	rec := cfg.Options.Recorder
	planSpan := rec.Span("pipeline.plan")
	plan, replans, err := planWithForecast(ctx, task, cfg)
	planSpan.End()
	if err != nil {
		return nil, err
	}
	if !cfg.SkipAudit {
		auditSpan := rec.Span("pipeline.audit")
		// Audit against the same task the plan was produced on (including
		// the demand forecast), so the replay samples the same per-step
		// demand the planner's boundary checks did.
		auditTask := task
		if cfg.Forecast.GrowthPerStep != 0 {
			auditTask = task.WithForecast(cfg.Forecast)
		}
		err := audit(auditTask, plan, cfg)
		auditSpan.End()
		if err != nil {
			return nil, fmt.Errorf("pipeline: plan failed audit: %w", err)
		}
	}
	docPlan, err := npd.BuildPlanDocument(task, plan, cfg.Options)
	if err != nil {
		return nil, err
	}
	res := &Result{Task: task, Plan: plan, Document: docPlan, Replans: replans}
	if cfg.CampaignSeeds > 0 {
		res.Campaign, err = sim.NewExecutor(task).Campaign(plan.Sequence, sim.Options{
			Theta: cfg.Options.Theta,
			Split: cfg.Options.Split,
		}, cfg.CampaignSeeds)
		if err != nil {
			return nil, fmt.Errorf("pipeline: funneling campaign: %w", err)
		}
	}
	return res, nil
}

func applyUnitCosts(task *migration.Task, unitCosts map[string]float64) {
	for name, c := range unitCosts {
		for i := range task.Types {
			if task.Types[i].Name == name {
				task.Types[i].UnitCost = c
			}
		}
	}
}

// planWithForecast plans the task under demand growth (§7.1). The planners
// sample the task's demand forecast at every probed state's horizon
// (migration.Task.Forecast), so the plan is forecast-safe by construction;
// the verification walk below remains as an independent safety net — it
// re-checks every boundary through core.CheckState and re-plans the
// remainder from the first step where the plan and the forecast disagree.
// The loop is bounded by the number of actions.
func planWithForecast(ctx context.Context, task *migration.Task, cfg Config) (*core.Plan, int, error) {
	if cfg.Forecast.GrowthPerStep == 0 {
		plan, err := cfg.Planner.PlanContext(ctx, task, cfg.Options)
		return plan, 0, err
	}

	// Time-indexed demand: every boundary check — the planners', this
	// loop's, and the independent audit's — uses the forecast sampled at
	// the checked state's finished-action count.
	ftask := task.WithForecast(cfg.Forecast)
	plan, err := cfg.Planner.PlanContext(ctx, ftask, cfg.Options)
	if err != nil {
		return nil, 0, err
	}

	executed := []int(nil)
	replans := 0
	for attempt := 0; attempt <= task.NumActions(); attempt++ {
		broken := firstUnsafeStep(ftask, plan, executed, cfg)
		if broken < 0 {
			// Safe under growth end to end. Re-assemble the full plan.
			full := append(append([]int(nil), executed...), plan.Sequence...)
			cost := core.SequenceCost(ftask, full, cfg.Options.Alpha, core.NoLast)
			return &core.Plan{
				Task:     ftask,
				Sequence: full,
				Runs:     runsOf(ftask, full),
				Cost:     cost,
				Metrics:  plan.Metrics,
			}, replans, nil
		}
		// Execute up to (and including) the step before the break, then
		// re-plan the remainder. The counts are absolute, so the replan's
		// boundary checks keep sampling the forecast at global horizons.
		executed = append(executed, plan.Sequence[:broken]...)
		opts := cfg.Options
		opts.InitialCounts = countsOf(ftask, executed)
		opts.InitialLast = core.NoLast
		if len(executed) > 0 {
			opts.InitialLast = ftask.Blocks[executed[len(executed)-1]].Type
		}
		replans++
		plan, err = cfg.Planner.PlanContext(ctx, ftask, opts)
		if err != nil {
			return nil, replans, fmt.Errorf("pipeline: replanning under forecast after %d steps: %w",
				len(executed), err)
		}
	}
	return nil, replans, errors.New("pipeline: forecast replanning did not converge")
}

// firstUnsafeStep verifies the plan's boundaries against the task's demand
// forecast sampled per step and returns the index (within plan.Sequence) of
// the first step whose boundary is unsafe, or -1 when the whole plan holds.
// task must carry the forecast (see planWithForecast).
func firstUnsafeStep(task *migration.Task, plan *core.Plan, executed []int, cfg Config) int {
	last := core.NoLast
	if len(executed) > 0 {
		last = task.Blocks[executed[len(executed)-1]].Type
	}
	for i := range plan.Sequence {
		// Check the boundary *before* step i when it switches type, and
		// the final state after the last step; CheckState samples the
		// forecast at the state's own horizon.
		ty := task.Blocks[plan.Sequence[i]].Type
		if last != core.NoLast && ty != last {
			if !boundarySafe(task, executed, plan.Sequence[:i], cfg.Options) {
				return i
			}
		}
		last = ty
	}
	if !boundarySafe(task, executed, plan.Sequence, cfg.Options) {
		// The final state itself is unsafe under growth: replanning from
		// any prefix cannot fix a task whose target no longer fits, but
		// signal the last step so the caller re-plans and surfaces the
		// infeasibility with the grown demand attached.
		return len(plan.Sequence) - 1
	}
	return -1
}

// boundarySafe checks one network state (base executed + prefix applied)
// against the task's demand forecast at the state's horizon.
func boundarySafe(task *migration.Task, executed, prefix []int, opts core.Options) bool {
	seqCounts := countsOf(task, append(append([]int(nil), executed...), prefix...))
	checkOpts := opts
	checkOpts.InitialCounts = nil
	checkOpts.InitialLast = core.NoLast
	return core.CheckState(task, seqCounts, checkOpts) == nil
}

func countsOf(task *migration.Task, seq []int) []int {
	counts := make([]int, task.NumTypes())
	for _, id := range seq {
		counts[task.Blocks[id].Type]++
	}
	return counts
}

func runsOf(task *migration.Task, seq []int) []core.Run {
	var runs []core.Run
	for _, id := range seq {
		ty := task.Blocks[id].Type
		if len(runs) == 0 || runs[len(runs)-1].Type != ty {
			runs = append(runs, core.Run{Type: ty})
		}
		runs[len(runs)-1].Blocks = append(runs[len(runs)-1].Blocks, id)
	}
	return runs
}

// audit independently re-verifies the plan (§7.2 "we add extra audits and
// safety checks to Klotski's plans during operation") with the pristine
// serial replay engine of internal/audit, attaching the structured report.
// Core planners arrive pre-audited (their own post-pass sets Plan.Audit);
// baseline planners are not bound to canonical within-type order, so they
// verify free-order here.
func audit(task *migration.Task, plan *core.Plan, cfg Config) error {
	if plan.Audit == nil {
		opts := cfg.Options
		opts.InitialCounts = nil
		opts.InitialLast = core.NoLast
		freeOrder := cfg.Planner == PlannerMRC || cfg.Planner == PlannerJanus
		rep, err := core.AuditSequence(task, plan.Sequence, opts, freeOrder)
		if err != nil {
			return err
		}
		plan.Audit = rep
	}
	if !plan.Audit.Passed {
		return fmt.Errorf("%w: step %d: %s", core.ErrAudit, plan.Audit.FailStep, plan.Audit.Reason)
	}
	return nil
}

// Replan continues a partially executed migration: executed lists the block
// IDs already operated (in order); newDemands, when non-nil, replaces the
// task's demand set (demand shifted mid-migration, §7.1–7.2).
func Replan(task *migration.Task, executed []int, newDemands *demand.Set, cfg Config) (*core.Plan, error) {
	return ReplanContext(context.Background(), task, executed, newDemands, cfg)
}

// ReplanContext is Replan with cooperative cancellation.
func ReplanContext(ctx context.Context, task *migration.Task, executed []int, newDemands *demand.Set, cfg Config) (*core.Plan, error) {
	planTask := task
	if newDemands != nil {
		planTask = task.WithDemands(*newDemands)
	}
	if cfg.Forecast.GrowthPerStep != 0 && planTask.Forecast.GrowthPerStep == 0 {
		// Carry the pipeline's growth model into the replan so its boundary
		// checks sample demand at each state's (absolute) horizon too.
		planTask = planTask.WithForecast(cfg.Forecast)
	}
	opts := cfg.Options
	opts.InitialCounts = countsOf(task, executed)
	opts.InitialLast = core.NoLast
	if len(executed) > 0 {
		opts.InitialLast = task.Blocks[executed[len(executed)-1]].Type
	}
	return cfg.Planner.PlanContext(ctx, planTask, opts)
}

// ReplanAfterOutage continues a partially executed migration after
// out-of-band maintenance or failures took switches down (§7.2
// "simultaneous operations": firmware upgrades and device rebuilds are not
// controlled by Klotski but change the real-time topology). A down switch
// operated by the migration is a conflict — except when its operating
// block is a drain that has already been executed: the switch was already
// taken out of service by the plan, so the outage changes nothing the
// remaining steps depend on.
func ReplanAfterOutage(task *migration.Task, executed []int, down []topo.SwitchID, cfg Config) (*core.Plan, error) {
	return ReplanAfterOutageContext(context.Background(), task, executed, down, cfg)
}

// ReplanAfterOutageContext is ReplanAfterOutage with cooperative
// cancellation.
func ReplanAfterOutageContext(ctx context.Context, task *migration.Task, executed []int, down []topo.SwitchID, cfg Config) (*core.Plan, error) {
	operated := make(map[topo.SwitchID]int)
	for i := range task.Blocks {
		for _, s := range task.Blocks[i].Switches {
			operated[s] = i
		}
	}
	executedSet := make(map[int]bool, len(executed))
	for _, b := range executed {
		executedSet[b] = true
	}
	drainedByPlan := make(map[topo.SwitchID]bool)
	for _, s := range down {
		b, ok := operated[s]
		if !ok {
			continue
		}
		if executedSet[b] && task.Types[task.Blocks[b].Type].Op == migration.Drain {
			// The plan already drained this switch; it being physically
			// down is harmless to the remaining steps. The executed drain
			// keeps it inactive in every replanned state, so the base
			// topology must keep it nominally active for task validation.
			drainedByPlan[s] = true
			continue
		}
		return nil, fmt.Errorf("pipeline: switch %q is down but operated by block %q; resolve the conflict first",
			task.Topo.Switch(s).Name, task.Blocks[b].Name)
	}
	outageTopo := task.Topo.Clone()
	for _, s := range down {
		if !drainedByPlan[s] {
			outageTopo.SetSwitchActive(s, false)
		}
	}
	outageTask := task.WithTopology(outageTopo)
	return ReplanContext(ctx, outageTask, executed, nil, cfg)
}
