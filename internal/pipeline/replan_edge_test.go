package pipeline

import (
	"errors"
	"testing"

	"klotski/internal/core"
	"klotski/internal/demand"
	"klotski/internal/migration"
	"klotski/internal/topo"
)

// outageBridgeTask builds a three-bridge microcosm for outage edge cases:
// old bridge A (active, to be drained), new bridge B (inactive, to be
// undrained), and spare bridge S (active, not operated by the migration).
// ECMP splits the demand equally across up bridges, so with rate 120 and
// caps 100 each state is safe iff at least two bridges are up.
func outageBridgeTask(t *testing.T) (*migration.Task, topo.SwitchID, topo.SwitchID) {
	t.Helper()
	tp := topo.New("outage-bridges")
	src := tp.AddSwitch(topo.Switch{Name: "src", Role: topo.RoleRSW})
	dst := tp.AddSwitch(topo.Switch{Name: "dst", Role: topo.RoleEBB})
	task := &migration.Task{Name: "outage-bridges", Topo: tp}
	d := task.AddType(migration.ActionTypeInfo{Name: "drain-old", Op: migration.Drain, Role: topo.RoleFADU})
	u := task.AddType(migration.ActionTypeInfo{Name: "undrain-new", Op: migration.Undrain, Role: topo.RoleFADU})

	oldSw := tp.AddSwitch(topo.Switch{Name: "old", Role: topo.RoleFADU, Generation: 1})
	tp.AddCircuit(src, oldSw, 100)
	tp.AddCircuit(oldSw, dst, 100)
	task.AddBlock(migration.Block{Name: "drain-old", Type: d, Switches: []topo.SwitchID{oldSw}})

	newSw := tp.AddSwitch(topo.Switch{Name: "new", Role: topo.RoleFADU, Generation: 2})
	tp.SetSwitchActive(newSw, false)
	tp.AddCircuit(src, newSw, 100)
	tp.AddCircuit(newSw, dst, 100)
	task.AddBlock(migration.Block{Name: "undrain-new", Type: u, Switches: []topo.SwitchID{newSw}})

	spare := tp.AddSwitch(topo.Switch{Name: "spare", Role: topo.RoleFADU, Generation: 1})
	tp.AddCircuit(src, spare, 100)
	tp.AddCircuit(spare, dst, 100)

	task.Demands.Add(demand.Demand{Name: "d", Src: src, Dst: dst, Rate: 120})
	return task, oldSw, spare
}

// TestReplanAfterOutageAllowsDrainedSwitch: a switch that the plan has
// already drained going physically down is harmless — the remaining steps
// never touch it and the network already routes without it — so the
// outage replan must proceed instead of reporting a conflict.
func TestReplanAfterOutageAllowsDrainedSwitch(t *testing.T) {
	task, oldSw, _ := outageBridgeTask(t)
	full, err := core.PlanAStar(task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Execute through the drain of oldSw.
	drainIdx := -1
	for i, id := range full.Sequence {
		if task.Types[task.Blocks[id].Type].Op == migration.Drain &&
			task.Blocks[id].Switches[0] == oldSw {
			drainIdx = i
			break
		}
	}
	if drainIdx < 0 {
		t.Fatal("plan never drains oldSw")
	}
	executed := full.Sequence[:drainIdx+1]
	re, err := ReplanAfterOutage(task, executed, []topo.SwitchID{oldSw}, Config{})
	if err != nil {
		t.Fatalf("outage of an already-drained switch should replan cleanly: %v", err)
	}
	if len(re.Sequence)+len(executed) != task.NumActions() {
		t.Errorf("replan incomplete: %d + %d != %d", len(re.Sequence), len(executed), task.NumActions())
	}
}

// TestReplanAfterOutageRejectsUndrainedSwitch: the same switch down
// *before* its drain executes is a real conflict — the planner would
// schedule an operation against dead equipment.
func TestReplanAfterOutageRejectsUndrainedSwitch(t *testing.T) {
	task, oldSw, _ := outageBridgeTask(t)
	if _, err := ReplanAfterOutage(task, nil, []topo.SwitchID{oldSw}, Config{}); err == nil {
		t.Fatal("outage of a not-yet-drained operated switch must be rejected")
	}
}

// TestReplanAfterOutageInfeasibleTarget: when the outage removes capacity
// the *target* state needs, the replan must return ErrInfeasible promptly
// rather than hanging or fabricating an unsafe plan.
func TestReplanAfterOutageInfeasibleTarget(t *testing.T) {
	task, _, spare := outageBridgeTask(t)
	// With the spare down, the target state (old drained, new up) routes
	// 120 over the single 100-cap new bridge: infeasible.
	_, err := ReplanAfterOutage(task, nil, []topo.SwitchID{spare}, Config{})
	if err == nil {
		t.Fatal("want infeasibility, got a plan")
	}
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("want errors.Is(err, core.ErrInfeasible), got %v", err)
	}
}

// TestReplanFromFullyExecutedPrefix: replanning when every action already
// executed must return an empty zero-cost plan, not an error or a hang.
func TestReplanFromFullyExecutedPrefix(t *testing.T) {
	s := buildScenario(t)
	full, err := core.PlanAStar(s.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := Replan(s.Task, full.Sequence, nil, Config{})
	if err != nil {
		t.Fatalf("replan from fully executed prefix: %v", err)
	}
	if len(re.Sequence) != 0 {
		t.Errorf("nothing remains, but replan produced %d steps", len(re.Sequence))
	}
	if re.Cost != 0 {
		t.Errorf("empty remainder should cost 0, got %v", re.Cost)
	}
}
