package pipeline

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"klotski/internal/npd"
)

var update = flag.Bool("update", false, "rewrite golden files with current pipeline output")

// Golden-file tests pin the NPD plan-document output byte-for-byte: the
// phase list, run ordering, snapshot counts, and utilization figures are
// the externally consumed artifact of the whole pipeline, so an
// unintentional change to any layer underneath (generator, planner,
// evaluator, encoder) shows up here as a diff. Regenerate deliberately
// with: go test ./internal/pipeline/ -run Golden -update
func goldenCases() []struct {
	name string
	doc  *npd.Document
	cfg  Config
} {
	blockSplit := sampleDoc()
	blockSplit.Migration.BlockFactor = 2
	return []struct {
		name string
		doc  *npd.Document
		cfg  Config
	}{
		{"hgrid_dp", sampleDoc(), Config{Planner: PlannerDP}},
		{"hgrid_astar", sampleDoc(), Config{Planner: PlannerAStar}},
		{"hgrid_dp_blockfactor2", blockSplit, Config{Planner: PlannerDP}},
	}
}

func TestGoldenPlanDocuments(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.doc, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := res.Document.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create golden files)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("plan document drifted from %s:\n%s\nrun with -update if the change is intentional",
					path, diffLines(want, buf.Bytes()))
			}
		})
	}
}

// TestGoldenRoundTrip decodes each golden file and re-encodes it,
// asserting the codec itself is lossless and stable — a golden diff then
// always means pipeline behavior changed, never serialization noise.
func TestGoldenRoundTrip(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", tc.name+".golden.json")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Skipf("%v (run with -update first)", err)
			}
			doc, err := npd.DecodePlan(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := doc.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), raw) {
				t.Errorf("decode→encode not stable for %s:\n%s", path, diffLines(raw, buf.Bytes()))
			}
		})
	}
}

// diffLines renders a minimal line-oriented diff, enough to locate a
// golden mismatch without an external diff tool.
func diffLines(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	var out bytes.Buffer
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		var wl, gl []byte
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if !bytes.Equal(wl, gl) {
			fmt.Fprintf(&out, "line %d:\n  want: %s\n  got:  %s\n", i+1, wl, gl)
		}
	}
	return out.String()
}
