package pipeline

import (
	"errors"
	"math"
	"strings"
	"testing"

	"klotski/internal/core"
	"klotski/internal/demand"
	"klotski/internal/gen"
	"klotski/internal/migration"
	"klotski/internal/npd"
	"klotski/internal/topo"
)

func sampleDoc() *npd.Document {
	return &npd.Document{
		Version: npd.Version,
		Name:    "region-pipe",
		Fabric: []npd.FabricPart{
			{DC: 0, Pods: 2, RSWPerPod: 2, Planes: 4, SSWPerPlane: 2, FSWUplinks: 1},
		},
		HGRID:     &npd.HGRIDPart{Grids: 4, FADUPerGrid: 2, FAUUPerGrid: 1, SSWDownlinks: 1},
		EB:        &npd.EBPart{Count: 2, LinkTbps: 40},
		DR:        &npd.DRPart{Count: 1, LinkTbps: 80},
		BB:        &npd.BBPart{EBBs: 1},
		Migration: &npd.MigrationPart{Kind: npd.MigrationHGRID},
	}
}

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(sampleDoc(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Document == nil || res.Scenario == nil {
		t.Fatal("incomplete result")
	}
	if len(res.Document.Phases) != len(res.Plan.Runs) {
		t.Fatalf("document phases %d != plan runs %d", len(res.Document.Phases), len(res.Plan.Runs))
	}
	if res.Replans != 0 {
		t.Errorf("no forecast configured, but %d replans", res.Replans)
	}
}

func TestRunWithEachPlanner(t *testing.T) {
	for _, pl := range []Planner{PlannerAStar, PlannerDP, PlannerMRC, PlannerJanus} {
		res, err := Run(sampleDoc(), Config{Planner: pl})
		if err != nil {
			t.Errorf("planner %s: %v", pl, err)
			continue
		}
		verify := core.VerifyPlan
		if pl == PlannerMRC || pl == PlannerJanus {
			verify = core.VerifyPlanFreeOrder
		}
		if err := verify(res.Task, res.Plan.Sequence, Config{}.Options); err != nil {
			t.Errorf("planner %s produced invalid plan: %v", pl, err)
		}
	}
	if _, err := (Planner("bogus")).Plan(nil, core.Options{}); err == nil {
		t.Error("unknown planner should error")
	}
}

func TestRunWithBlockFactor(t *testing.T) {
	doc := sampleDoc()
	doc.Migration.BlockFactor = 2
	res, err := Run(doc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(sampleDoc(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Task.NumActions() <= base.Task.NumActions() {
		t.Errorf("block factor 2 should split blocks: %d vs %d",
			res.Task.NumActions(), base.Task.NumActions())
	}
}

func TestUnitCostsApplied(t *testing.T) {
	doc := sampleDoc()
	res, err := Run(doc, Config{UnitCosts: map[string]float64{"drain-hgrid-v1-grid": 5}})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(sampleDoc(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Cost <= base.Plan.Cost {
		t.Errorf("raising drain unit cost should raise plan cost: %v vs %v",
			res.Plan.Cost, base.Plan.Cost)
	}
}

func TestForecastTriggersReplanning(t *testing.T) {
	// Aggressive growth: the original plan's later boundaries break and
	// the pipeline must re-plan mid-flight at least once, still producing
	// a complete valid plan.
	doc := sampleDoc()
	res, err := Run(doc, Config{Forecast: demand.Forecast{GrowthPerStep: 0.03}})
	if err != nil {
		// Very aggressive growth can make the migration genuinely
		// impossible; that is a legitimate outcome, reported as such.
		if errors.Is(err, core.ErrInfeasible) {
			t.Skip("growth made migration infeasible at this scale")
		}
		t.Fatal(err)
	}
	if err := core.VerifyPlan(res.Task, res.Plan.Sequence, core.Options{}); err != nil {
		t.Fatalf("forecast-adjusted plan invalid at base demand: %v", err)
	}
	t.Logf("replans under growth: %d", res.Replans)
}

func TestForecastZeroGrowthNoReplan(t *testing.T) {
	res, err := Run(sampleDoc(), Config{Forecast: demand.Forecast{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replans != 0 {
		t.Errorf("zero growth should not replan, got %d", res.Replans)
	}
}

func buildScenario(t *testing.T) *gen.Scenario {
	t.Helper()
	s, err := gen.TopologyA(0.2)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReplanContinuesFromPrefix(t *testing.T) {
	s := buildScenario(t)
	full, err := core.PlanAStar(s.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := len(full.Runs[0].Blocks)
	executed := full.Sequence[:k]
	re, err := Replan(s.Task, executed, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	combined := append(append([]int(nil), executed...), re.Sequence...)
	if err := core.VerifyPlan(s.Task, combined, core.Options{}); err != nil {
		t.Fatalf("combined replan invalid: %v", err)
	}
}

func TestReplanWithNewDemands(t *testing.T) {
	s := buildScenario(t)
	full, err := core.PlanAStar(s.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	executed := full.Sequence[:1]
	// A modest surge: demands up 10%.
	grown := s.Task.Demands.Scaled(1.1)
	re, err := Replan(s.Task, executed, &grown, Config{})
	if err != nil {
		t.Fatalf("replan with grown demand: %v", err)
	}
	if len(re.Sequence)+len(executed) != s.Task.NumActions() {
		t.Errorf("replan incomplete: %d + %d != %d",
			len(re.Sequence), len(executed), s.Task.NumActions())
	}
}

func TestReplanAfterOutage(t *testing.T) {
	// Topology C has multiple pods per DC, so losing one FSW to routine
	// maintenance leaves enough redundancy to finish the migration.
	s, err := gen.TopologyC(0.15)
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.PlanAStar(s.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	executed := full.Sequence[:1]

	// Take one non-operated FSW down (routine maintenance).
	var down topo.SwitchID = -1
	operated := map[topo.SwitchID]bool{}
	for _, b := range s.Task.Blocks {
		for _, sw := range b.Switches {
			operated[sw] = true
		}
	}
	for i := 0; i < s.Task.Topo.NumSwitches(); i++ {
		sw := s.Task.Topo.Switch(topo.SwitchID(i))
		if sw.Role == topo.RoleFSW && !operated[sw.ID] {
			down = sw.ID
			break
		}
	}
	if down < 0 {
		t.Fatal("no non-operated FSW found")
	}
	re, err := ReplanAfterOutage(s.Task, executed, []topo.SwitchID{down}, Config{})
	if err != nil {
		t.Fatalf("ReplanAfterOutage: %v", err)
	}
	if len(re.Sequence)+len(executed) != s.Task.NumActions() {
		t.Error("outage replan incomplete")
	}
}

func TestReplanAfterOutageRejectsOperatedSwitch(t *testing.T) {
	s := buildScenario(t)
	operatedSwitch := s.Task.Blocks[0].Switches[0]
	_, err := ReplanAfterOutage(s.Task, nil, []topo.SwitchID{operatedSwitch}, Config{})
	if err == nil || !strings.Contains(err.Error(), "operated by block") {
		t.Fatalf("want operated-switch conflict error, got %v", err)
	}
}

func TestAuditCatchesCorruptedPlan(t *testing.T) {
	s := buildScenario(t)
	res, err := RunTask(s.Task, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the plan: drop the last action.
	bad := res.Plan.Sequence[:len(res.Plan.Sequence)-1]
	if err := core.VerifyPlan(s.Task, bad, core.Options{}); err == nil {
		t.Error("audit should reject truncated plan")
	}
}

func TestCheckStateHelper(t *testing.T) {
	s := buildScenario(t)
	counts := make([]int, s.Task.NumTypes())
	if err := core.CheckState(s.Task, counts, core.Options{}); err != nil {
		t.Fatalf("initial state should be safe: %v", err)
	}
	// Drain every grid with nothing undrained: unsafe.
	counts[0] = len(s.Task.BlocksOfType(migration.ActionType(0)))
	if err := core.CheckState(s.Task, counts, core.Options{}); err == nil {
		t.Error("all-drained state should be unsafe")
	}
}

func TestPlannerCostsOrdered(t *testing.T) {
	s := buildScenario(t)
	opt, err := core.PlanAStar(s.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range []Planner{PlannerDP, PlannerJanus} {
		p, err := pl.Plan(s.Task, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", pl, err)
		}
		if math.Abs(p.Cost-opt.Cost) > 1e-9 {
			t.Errorf("%s cost %v != optimal %v", pl, p.Cost, opt.Cost)
		}
	}
	mrc, err := PlannerMRC.Plan(s.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mrc.Cost < opt.Cost-1e-9 {
		t.Errorf("MRC cost %v below optimal %v", mrc.Cost, opt.Cost)
	}
}

func TestCampaignSeedsAttachReport(t *testing.T) {
	res, err := Run(sampleDoc(), Config{CampaignSeeds: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Campaign == nil {
		t.Fatal("campaign report missing")
	}
	if res.Campaign.Seeds != 6 || res.Campaign.PeakMax <= 0 {
		t.Fatalf("campaign report = %+v", res.Campaign)
	}
}
