// Package sched implements the process-wide worker pool shared by
// concurrent planning runs: a second scheduling tier above the per-plan
// worker lanes of internal/core.
//
// # Why a shared pool
//
// Each plan's adaptive policy sizes its lanes from GOMAXPROCS, which is
// correct for one plan but oversubscribes the host N-fold when N plans
// run concurrently — or idles most cores while one straggler holds them
// all. The pool replaces per-plan goroutine spawning with a fixed set of
// workers that any registered plan's task batches can draw on: a plan
// blocked on serial work donates its capacity to the others, and a plan
// with a wide parallel phase soaks up whatever is idle.
//
// # Task model
//
// The unit of submission is a batch: a slice of independent closures
// (one DP wavefront layer's strided shards, one A* frontier-warm batch,
// one incremental-audit span set) executed by Client.Run, which blocks
// until all of them finish. Workers claim tasks from a batch through an
// atomic cursor, so a batch is drained cooperatively by however many
// workers reach it — and always by the submitting goroutine itself,
// which guarantees progress at any share, including zero. Because the
// callers' closures only write worker-private result slots (or commit
// idempotent verdicts through the satisfiability cache's claim
// protocol), executing them on pool workers at any interleaving is
// byte-identical to executing them on per-plan goroutines: the pool
// changes where work runs, never what is computed.
//
// # Shares, stealing, preemption
//
// Each registered client holds a share — the maximum number of pool
// workers that serve its batches concurrently — rebalanced on every
// register/close as an equal split of the worker budget clamped to the
// client's [MinShare, MaxShare]. Admission blocks while the sum of
// minimum shares would exceed the budget; a registration that cannot be
// admitted first preempts strictly lower-priority clients (their
// Preempted channel closes, their share drops to zero, and their
// reservation is released — the planner checkpoints via the existing
// *Interrupted machinery and re-registers later), and only waits when
// nothing is preemptible. Idle workers prefer the client they last
// served (keeping a warm claim locality); claiming from a different
// client counts as a steal (sched.steals). Queue-wait time from batch
// enqueue to the first pool-worker claim accumulates into
// sched.queue_wait_ns.
package sched

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"klotski/internal/obs"
)

// ErrPoolClosed is returned by Register after Pool.Close.
var ErrPoolClosed = errors.New("sched: pool closed")

// testHook, when non-nil, runs inside pool workers before every claimed
// task. Tests install seeded random delays to shuffle claim interleavings
// and prove byte-identity is interleaving-independent.
var testHook func()

// Pool is a fixed-size worker pool shared by concurrent plans.
type Pool struct {
	workers int
	rec     *obs.Recorder

	mu      sync.Mutex
	cond    *sync.Cond
	clients []*Client
	closed  bool
	wg      sync.WaitGroup
}

// ClientOptions parameterizes one plan's registration.
type ClientOptions struct {
	// Priority orders preemption: a blocked registration preempts
	// registered clients with strictly lower priority. Default 0.
	Priority int

	// MinShare is the worker reservation admission control blocks on
	// (clamped to [1, pool workers]; 0 means 1). The sum of admitted
	// clients' MinShares never exceeds the pool's worker budget.
	MinShare int

	// MaxShare caps the client's rebalanced share (0 means the full
	// worker budget).
	MaxShare int
}

// Client is one registered plan's handle on the pool.
type Client struct {
	pool *Pool
	name string
	prio int
	min  int
	max  int

	// Guarded by pool.mu.
	share      int
	active     int // pool workers currently draining this client's batches
	batches    []*batch
	preempting bool
	closed     bool

	preempted chan struct{}
}

// batch is one submitted slice of independent task closures with an
// atomic claim cursor. Claimed via next, completion tracked via done;
// fin closes when every task has finished.
type batch struct {
	tasks  []func()
	next   atomic.Int64
	done   atomic.Int64
	fin    chan struct{}
	enq    time.Time
	waited atomic.Bool
}

// NewPool starts a pool with the given worker budget (0 or negative
// selects GOMAXPROCS). rec (nil-safe) receives the sched.* counters.
func NewPool(workers int, rec *obs.Recorder) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, rec: rec}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Workers returns the pool's worker budget.
func (p *Pool) Workers() int { return p.workers }

// Close shuts the pool down and joins its workers. Batches submitted
// before Close still complete (the submitting goroutines drain them);
// Run calls after Close execute inline on the caller.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// Register admits a plan to the pool, blocking until the reservation
// fits the worker budget. A blocked registration preempts strictly
// lower-priority clients first (closing their Preempted channel and
// zeroing their share — their reservation is released immediately, on
// the grounds that a preempted planner checkpoints and closes promptly)
// and waits only when nothing is preemptible.
func (p *Pool) Register(name string, opts ClientOptions) (*Client, error) {
	min := opts.MinShare
	if min < 1 {
		min = 1
	}
	if min > p.workers {
		min = p.workers
	}
	max := opts.MaxShare
	if max <= 0 || max > p.workers {
		max = p.workers
	}
	if max < min {
		max = min
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, ErrPoolClosed
		}
		reserved := 0
		for _, c := range p.clients {
			if !c.preempting {
				reserved += c.min
			}
		}
		if reserved+min <= p.workers {
			break
		}
		if !p.preemptLocked(opts.Priority, reserved+min-p.workers) {
			p.cond.Wait() // nothing preemptible; wait for a Close
		}
	}
	c := &Client{
		pool:      p,
		name:      name,
		prio:      opts.Priority,
		min:       min,
		max:       max,
		preempted: make(chan struct{}),
	}
	p.clients = append(p.clients, c)
	p.rebalanceLocked()
	return c, nil
}

// preemptLocked signals preemption on lower-priority victims until need
// reservation slots are freed or no victims remain, lowest priority
// first. Reports whether any client was preempted.
func (p *Pool) preemptLocked(prio, need int) bool {
	did := false
	for need > 0 {
		var victim *Client
		for _, c := range p.clients {
			if c.preempting || c.prio >= prio {
				continue
			}
			if victim == nil || c.prio < victim.prio {
				victim = c
			}
		}
		if victim == nil {
			break
		}
		victim.preempting = true
		close(victim.preempted)
		need -= victim.min
		did = true
		p.rec.SchedPreemption()
	}
	if did {
		p.rebalanceLocked()
	}
	return did
}

// rebalanceLocked recomputes every client's share: preempting clients
// get zero (pool workers abandon them; only the submitter drains their
// in-flight batches), the rest split the worker budget evenly, clamped
// to [MinShare, MaxShare], leftovers round-robin in registration order.
func (p *Pool) rebalanceLocked() {
	total := 0
	var active []*Client
	for _, c := range p.clients {
		if c.preempting {
			c.share = 0
			continue
		}
		c.share = c.min
		total += c.min
		active = append(active, c)
	}
	for total < p.workers {
		grew := false
		for _, c := range active {
			if total >= p.workers {
				break
			}
			if c.share < c.max {
				c.share++
				total++
				grew = true
			}
		}
		if !grew {
			break
		}
	}
}

// Preempted returns a channel that closes when the pool preempts this
// client. The owner should checkpoint its plan, Close the client to
// release its reservation, and re-Register later to resume.
func (c *Client) Preempted() <-chan struct{} { return c.preempted }

// Share returns the client's current share — the number of pool workers
// that may serve it concurrently (0 while preempted). Plans seed their
// lane counts from it.
func (c *Client) Share() int {
	c.pool.mu.Lock()
	defer c.pool.mu.Unlock()
	return c.share
}

// Close deregisters the client, releasing its reservation and waking
// blocked registrations. In-flight Run calls must have returned.
func (c *Client) Close() {
	p := c.pool
	p.mu.Lock()
	if c.closed {
		p.mu.Unlock()
		return
	}
	c.closed = true
	c.share = 0
	for i, q := range p.clients {
		if q == c {
			p.clients = append(p.clients[:i], p.clients[i+1:]...)
			break
		}
	}
	p.rebalanceLocked()
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Run executes the given independent task closures and returns when all
// have finished. The calling goroutine always helps drain the batch, so
// Run makes progress at any share — including zero (preempted) and on a
// closed pool, where it simply runs every task inline. Tasks must not
// call Run on the same client recursively.
func (c *Client) Run(tasks []func()) {
	switch len(tasks) {
	case 0:
		return
	case 1:
		tasks[0]()
		return
	}
	b := &batch{tasks: tasks, fin: make(chan struct{}), enq: time.Now()}
	p := c.pool
	p.mu.Lock()
	if c.closed || p.closed {
		p.mu.Unlock()
		for _, t := range tasks {
			t()
		}
		return
	}
	c.batches = append(c.batches, b)
	p.mu.Unlock()
	p.cond.Broadcast()
	b.drain(nil)
	<-b.fin
	p.mu.Lock()
	for i, q := range c.batches {
		if q == b {
			c.batches = append(c.batches[:i], c.batches[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// drain claims and executes tasks from b until the cursor is exhausted,
// closing fin after the last task completes. hook is the test-only delay
// hook (nil on the submitter path: only pool workers shuffle).
func (b *batch) drain(hook func()) {
	n := int64(len(b.tasks))
	for {
		i := b.next.Add(1) - 1
		if i >= n {
			return
		}
		if hook != nil {
			hook()
		}
		b.tasks[i]()
		if b.done.Add(1) == n {
			close(b.fin)
		}
	}
}

// worker is one pool goroutine: find a client with claimable work and an
// open share slot (preferring the client served last), drain the batch,
// repeat; park on the condition variable when nothing is claimable.
func (p *Pool) worker() {
	defer p.wg.Done()
	var last *Client
	for {
		p.mu.Lock()
		var c *Client
		var b *batch
		for {
			if p.closed {
				p.mu.Unlock()
				return
			}
			c, b = p.findLocked(last)
			if b != nil {
				break
			}
			p.cond.Wait()
		}
		c.active++
		stolen := last != nil && c != last
		p.mu.Unlock()
		if stolen {
			p.rec.SchedSteal()
		}
		if b.waited.CompareAndSwap(false, true) {
			p.rec.SchedQueueWait(time.Since(b.enq))
		}
		b.drain(testHook)
		p.mu.Lock()
		c.active--
		if c.claimableLocked() != nil && c.active < c.share {
			// Unclaimed work remains and the share slot just freed: give
			// parked workers (and blocked registrations, harmlessly) a
			// chance to pick it up rather than relying on this worker's
			// own rescan.
			p.cond.Broadcast()
		}
		last = c
		p.mu.Unlock()
	}
}

// findLocked picks a client with claimable work whose share admits
// another worker, preferring last (claim locality). Preempted clients
// have share 0 and are never picked.
func (p *Pool) findLocked(last *Client) (*Client, *batch) {
	if last != nil && !last.closed && last.active < last.share {
		if b := last.claimableLocked(); b != nil {
			return last, b
		}
	}
	for _, c := range p.clients {
		if c == last || c.active >= c.share {
			continue
		}
		if b := c.claimableLocked(); b != nil {
			return c, b
		}
	}
	return nil, nil
}

// claimableLocked returns a batch of c with unclaimed tasks, or nil.
func (c *Client) claimableLocked() *batch {
	for _, b := range c.batches {
		if b.next.Load() < int64(len(b.tasks)) {
			return b
		}
	}
	return nil
}
