package sched

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"klotski/internal/obs"
)

// counter reads a named counter from reg, tolerating absence as zero.
func counter(reg *obs.Registry, name string) int64 {
	return reg.Counter(name).Value()
}

func TestRunExecutesEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		for _, n := range []int{0, 1, 2, 7, 64} {
			p := NewPool(workers, nil)
			c, err := p.Register("t", ClientOptions{})
			if err != nil {
				t.Fatalf("register: %v", err)
			}
			ran := make([]atomic.Int32, n)
			tasks := make([]func(), n)
			for i := range tasks {
				i := i
				tasks[i] = func() { ran[i].Add(1) }
			}
			c.Run(tasks)
			for i := range ran {
				if got := ran[i].Load(); got != 1 {
					t.Errorf("workers=%d n=%d: task %d ran %d times", workers, n, i, got)
				}
			}
			c.Close()
			p.Close()
		}
	}
}

func TestRunInlineOnClosedPool(t *testing.T) {
	p := NewPool(2, nil)
	c, err := p.Register("t", ClientOptions{})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	p.Close()
	var ran atomic.Int32
	tasks := make([]func(), 8)
	for i := range tasks {
		tasks[i] = func() { ran.Add(1) }
	}
	c.Run(tasks) // must not hang: no workers remain
	if got := ran.Load(); got != 8 {
		t.Fatalf("ran %d of 8 tasks after Close", got)
	}
	if _, err := p.Register("late", ClientOptions{}); err != ErrPoolClosed {
		t.Fatalf("Register after Close: err = %v, want ErrPoolClosed", err)
	}
}

func TestAdmissionBlocksUntilReservationFrees(t *testing.T) {
	p := NewPool(2, nil)
	defer p.Close()
	a, err := p.Register("a", ClientOptions{MinShare: 2})
	if err != nil {
		t.Fatalf("register a: %v", err)
	}
	admitted := make(chan *Client)
	go func() {
		b, err := p.Register("b", ClientOptions{MinShare: 1})
		if err != nil {
			t.Errorf("register b: %v", err)
		}
		admitted <- b
	}()
	select {
	case <-admitted:
		t.Fatal("b admitted while a held the full reservation")
	case <-time.After(50 * time.Millisecond):
	}
	a.Close()
	select {
	case b := <-admitted:
		b.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("b never admitted after a closed")
	}
}

func TestPreemptionEvictsLowerPriority(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(2, obs.NewRecorder(reg))
	defer p.Close()
	low, err := p.Register("low", ClientOptions{Priority: 0, MinShare: 2})
	if err != nil {
		t.Fatalf("register low: %v", err)
	}
	// The high-priority registration does not fit: it must preempt low
	// (whose reservation releases immediately) rather than block.
	done := make(chan *Client)
	go func() {
		hi, err := p.Register("hi", ClientOptions{Priority: 1, MinShare: 1})
		if err != nil {
			t.Errorf("register hi: %v", err)
		}
		done <- hi
	}()
	select {
	case <-low.Preempted():
	case <-time.After(2 * time.Second):
		t.Fatal("low never preempted")
	}
	var hi *Client
	select {
	case hi = <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("hi never admitted")
	}
	if got := low.Share(); got != 0 {
		t.Fatalf("preempted client share = %d, want 0", got)
	}
	if got := hi.Share(); got < 1 {
		t.Fatalf("preemptor share = %d, want >= 1", got)
	}
	if got := counter(reg, obs.MetricSchedPreemptions); got != 1 {
		t.Fatalf("sched.preemptions = %d, want 1", got)
	}
	// A preempted client's Run still completes (submitter drains inline).
	var ran atomic.Int32
	tasks := make([]func(), 4)
	for i := range tasks {
		tasks[i] = func() { ran.Add(1) }
	}
	low.Run(tasks)
	if got := ran.Load(); got != 4 {
		t.Fatalf("preempted Run completed %d of 4 tasks", got)
	}
	low.Close()
	hi.Close()
}

func TestEqualPriorityNeverPreempts(t *testing.T) {
	p := NewPool(1, nil)
	defer p.Close()
	a, err := p.Register("a", ClientOptions{Priority: 1, MinShare: 1})
	if err != nil {
		t.Fatalf("register a: %v", err)
	}
	admitted := make(chan struct{})
	go func() {
		b, err := p.Register("b", ClientOptions{Priority: 1, MinShare: 1})
		if err == nil {
			b.Close()
		}
		close(admitted)
	}()
	select {
	case <-a.Preempted():
		t.Fatal("equal-priority registration preempted a")
	case <-admitted:
		t.Fatal("b admitted without capacity")
	case <-time.After(50 * time.Millisecond):
	}
	a.Close()
	<-admitted
}

func TestShareRebalanceRespectsMinMax(t *testing.T) {
	p := NewPool(8, nil)
	defer p.Close()
	a, _ := p.Register("a", ClientOptions{MinShare: 1, MaxShare: 2})
	b, _ := p.Register("b", ClientOptions{MinShare: 3})
	if got := a.Share(); got != 2 {
		t.Errorf("a share = %d, want 2 (capped by MaxShare)", got)
	}
	if got := b.Share(); got < 3 {
		t.Errorf("b share = %d, want >= 3 (MinShare)", got)
	}
	if a.Share()+b.Share() > 8 {
		t.Errorf("shares %d+%d exceed worker budget 8", a.Share(), b.Share())
	}
	a.Close()
	b.Close()
}

func TestStealsAndQueueWaitCounted(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(2, obs.NewRecorder(reg))
	defer p.Close()
	a, _ := p.Register("a", ClientOptions{})
	b, _ := p.Register("b", ClientOptions{})
	defer a.Close()
	defer b.Close()
	// Alternate batches between the two clients so any worker that serves
	// both must cross clients — a steal — and the slow tasks force pool
	// workers (not just the submitters) to claim.
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		for _, c := range []*Client{a, b} {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				tasks := make([]func(), 8)
				for i := range tasks {
					tasks[i] = func() { time.Sleep(time.Millisecond) }
				}
				c.Run(tasks)
			}(c)
		}
		wg.Wait()
	}
	if got := counter(reg, obs.MetricSchedSteals); got == 0 {
		t.Error("sched.steals = 0 after cross-client batches")
	}
	if got := counter(reg, obs.MetricSchedQueueWait); got == 0 {
		t.Error("sched.queue_wait_ns = 0 after pool-worker claims")
	}
}

// TestShuffledInterleavings installs the seeded-delay test hook and checks
// that every task still runs exactly once regardless of claim order.
func TestShuffledInterleavings(t *testing.T) {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(42))
	testHook = func() {
		mu.Lock()
		d := time.Duration(rng.Intn(200)) * time.Microsecond
		mu.Unlock()
		time.Sleep(d)
	}
	defer func() { testHook = nil }()

	p := NewPool(4, nil)
	defer p.Close()
	c, err := p.Register("t", ClientOptions{})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	defer c.Close()
	for trial := 0; trial < 20; trial++ {
		const n = 32
		var ran [n]atomic.Int32
		tasks := make([]func(), n)
		for i := range tasks {
			i := i
			tasks[i] = func() { ran[i].Add(1) }
		}
		c.Run(tasks)
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("trial %d: task %d ran %d times", trial, i, got)
			}
		}
	}
}

func TestConcurrentClientsDrainIndependently(t *testing.T) {
	p := NewPool(runtime.GOMAXPROCS(0), nil)
	defer p.Close()
	var wg sync.WaitGroup
	for k := 0; k < 6; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := p.Register("c", ClientOptions{})
			if err != nil {
				t.Errorf("register: %v", err)
				return
			}
			defer c.Close()
			var sum atomic.Int64
			for round := 0; round < 10; round++ {
				tasks := make([]func(), 16)
				for i := range tasks {
					i := i
					tasks[i] = func() { sum.Add(int64(i + 1)) }
				}
				c.Run(tasks)
			}
			if got, want := sum.Load(), int64(10*16*17/2); got != want {
				t.Errorf("client %d: sum = %d, want %d", k, got, want)
			}
		}(k)
	}
	wg.Wait()
}
