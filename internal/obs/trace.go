package obs

import (
	"sync"
	"time"
)

// DefaultTraceCapacity is the ring size used when Trace is created with a
// non-positive capacity.
const DefaultTraceCapacity = 4096

// Event is one completed span in a trace stream. Hierarchy is encoded in
// the dotted name ("pipeline.plan", "astar.run", "check.eval") rather than
// parent pointers, keeping events flat and cheap to retain.
type Event struct {
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur"`
}

// SpanStat aggregates all completed spans of one name.
type SpanStat struct {
	Count int64         `json:"count"`
	Total time.Duration `json:"total"`
	Max   time.Duration `json:"max"`
}

// Trace is a bounded ring buffer of completed span events plus per-name
// aggregates that survive ring eviction. The ring answers "what just
// happened"; the aggregates answer "where did the time go".
type Trace struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	full  bool
	stats map[string]SpanStat
}

// NewTrace returns a trace stream retaining the most recent capacity
// events (≤ 0 selects DefaultTraceCapacity).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Trace{ring: make([]Event, capacity), stats: make(map[string]SpanStat)}
}

// Span is an in-flight timed region; End completes it. The zero Span (and
// a span from a nil Trace) is valid and does nothing.
type Span struct {
	tr    *Trace
	name  string
	start time.Time
}

// StartSpan begins a timed region. Safe on a nil receiver: the returned
// zero Span no-ops on End.
func (t *Trace) StartSpan(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, start: time.Now()}
}

// End completes the span, recording it in the ring and aggregates, and
// returns its duration (0 for a zero Span).
func (s Span) End() time.Duration {
	if s.tr == nil {
		return 0
	}
	d := time.Since(s.start)
	s.tr.record(Event{Name: s.name, Start: s.start, Dur: d})
	return d
}

func (t *Trace) record(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next, t.full = 0, true
	}
	st := t.stats[ev.Name]
	st.Count++
	st.Total += ev.Dur
	if ev.Dur > st.Max {
		st.Max = ev.Dur
	}
	t.stats[ev.Name] = st
}

// Events returns the retained events, oldest first. Safe on a nil
// receiver (returns nil).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Event(nil), t.ring[:t.next]...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// SpanStats returns the per-name aggregates over ALL recorded spans, not
// just those still in the ring. Safe on a nil receiver (returns nil).
func (t *Trace) SpanStats() map[string]SpanStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]SpanStat, len(t.stats))
	for name, st := range t.stats {
		out[name] = st
	}
	return out
}
