// Package obs is the planner observability layer: allocation-conscious
// typed instruments (counters, gauges, histograms), a process-wide registry
// with JSON-snapshot and expvar export, and a ring-buffered trace of
// hierarchical spans (plan → expand → check → eval).
//
// The hot-path entry point is Recorder: a typed façade over pre-resolved
// instruments whose every method is safe on a nil receiver. Planners carry
// a *Recorder (usually nil); when observability is off the per-event cost
// is a single nil check, so the search kernel pays nothing for the
// instrumentation it does not use. All instruments are safe for concurrent
// use — updates are atomic, so the parallel precheck workers and a live
// /debug/vars reader never race the planner.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (e.g. open-list size).
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records the current value, tracking the high-water mark. Safe on a
// nil receiver (no-op).
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			return
		}
	}
}

// Value returns the last set value; 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark; 0 on a nil receiver.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram is a fixed-bucket cumulative-free histogram: observation i
// lands in the first bucket whose upper bound is ≥ i, or in the overflow
// bucket. Bounds are set at creation and never change, so Observe is a
// binary search plus one atomic add.
type Histogram struct {
	bounds []float64 // ascending upper bounds; overflow bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// TimeBuckets is the default latency bucket layout: 1µs to 10s in a
// 1-2.5-5 progression, in seconds.
var TimeBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations; 0 on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (q in [0, 1]) as the upper bound of
// the bucket where the cumulative count crosses q·N. Overflow observations
// report the largest finite bound. Returns 0 with no observations or on a
// nil receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// BucketCount is one histogram bucket in a snapshot.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is the JSON-friendly state of a histogram. Overflow is
// the count above the largest finite bound (JSON has no +Inf).
type HistogramSnapshot struct {
	Count    int64         `json:"count"`
	Sum      float64       `json:"sum"`
	P50      float64       `json:"p50"`
	P90      float64       `json:"p90"`
	P99      float64       `json:"p99"`
	Buckets  []BucketCount `json:"buckets,omitempty"`
	Overflow int64         `json:"overflow,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	for i, b := range h.bounds {
		if c := h.counts[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, BucketCount{LE: b, Count: c})
		}
	}
	s.Overflow = h.counts[len(h.bounds)].Load()
	return s
}

// Registry is a process-wide namespace of instruments. Get-or-create
// accessors make registration idempotent: two subsystems asking for the
// same name share the instrument. The zero-value methods are safe on a nil
// receiver and return nil instruments, which in turn no-op — so an
// entirely unconfigured observability stack costs only nil checks.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	derived  map[string]func() float64
	traces   map[string]*Trace
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		derived:  make(map[string]func() float64),
		traces:   make(map[string]*Trace),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by the CLI's -stats-out
// and -debug-addr exports.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds if needed (nil bounds selects TimeBuckets). Bounds of an existing
// histogram are not changed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = TimeBuckets
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Derived registers a named value computed at snapshot time — ratios and
// rates over other instruments (e.g. cache hit rate). Re-registering a
// name replaces the function.
func (r *Registry) Derived(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.derived[name] = fn
}

// Trace returns the named trace stream, creating it with the given ring
// capacity if needed (capacity ≤ 0 selects 4096).
func (r *Registry) Trace(name string, capacity int) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.traces[name]
	if !ok {
		t = NewTrace(capacity)
		r.traces[name] = t
	}
	return t
}

// Snapshot is a point-in-time JSON-marshalable export of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Derived    map[string]float64           `json:"derived,omitempty"`
	Spans      map[string]SpanStat          `json:"spans,omitempty"`
}

// GaugeSnapshot is the last value and high-water mark of a gauge.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot captures every instrument. Safe on a nil receiver (returns the
// zero snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Counters = make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	s.Gauges = make(map[string]GaugeSnapshot, len(r.gauges))
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	s.Derived = make(map[string]float64, len(r.derived))
	for name, fn := range r.derived {
		if v := fn(); !math.IsNaN(v) && !math.IsInf(v, 0) {
			s.Derived[name] = v
		}
	}
	s.Spans = make(map[string]SpanStat)
	for tname, t := range r.traces {
		for sname, st := range t.SpanStats() {
			s.Spans[tname+"."+sname] = st
		}
	}
	return s
}

// WriteJSON writes an indented JSON snapshot of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("obs: encoding snapshot: %w", err)
	}
	return nil
}
