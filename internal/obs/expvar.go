package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

var (
	publishMu sync.Mutex
	published = make(map[string]bool)
)

// PublishExpvar exposes the registry's live snapshot as the named expvar
// variable (shown under /debug/vars). expvar panics on duplicate names, so
// republishing the same name is a guarded no-op; the variable re-snapshots
// the registry on every read, so one publish suffices for the process
// lifetime.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if published[name] {
		return
	}
	published[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// DebugHandler returns an HTTP mux serving the standard debug surface:
// /debug/vars (expvar, including anything published via PublishExpvar),
// /debug/pprof/* (profiles, traces, symbol lookup), and /debug/stats —
// the exact JSON document the CLI's -stats-out flag writes, so tooling
// built on those snapshots reads a live daemon unchanged. The root path
// serves the same snapshot for tools that want stats without a path.
func (r *Registry) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	return mux
}
