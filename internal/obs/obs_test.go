package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if reg.Counter("c") != c {
		t.Error("Counter is not get-or-create")
	}
	g := reg.Gauge("g")
	g.Set(7)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 7 {
		t.Errorf("gauge value/max = %d/%d, want 3/7", g.Value(), g.Max())
	}
}

func TestNilInstrumentsNoOp(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Trace
	var rec *Recorder
	var reg *Registry
	c.Inc()
	c.Add(2)
	g.Set(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	tr.StartSpan("x").End()
	rec.StateCreated()
	rec.StateExpanded()
	rec.CacheHit()
	rec.CacheMiss()
	rec.CheckObserved(time.Millisecond)
	rec.ChecksAdded(3)
	rec.OpenList(9)
	rec.PlanCompleted()
	rec.PlanInterrupted()
	rec.Retry()
	rec.Replan()
	rec.BoundaryViolation()
	rec.Span("x").End()
	if rec.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x", nil) != nil || reg.Trace("x", 0) != nil {
		t.Error("nil registry should hand out nil instruments")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil instruments should read zero")
	}
	if s := reg.Snapshot(); s.Counters != nil {
		t.Error("nil registry snapshot should be zero")
	}
}

func TestHistogram(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 2, 3, 50, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 1055.5 {
		t.Errorf("sum = %v", got)
	}
	s := h.snapshot()
	if s.Overflow != 1 {
		t.Errorf("overflow = %d, want 1", s.Overflow)
	}
	wantBuckets := map[float64]int64{1: 1, 10: 2, 100: 1}
	for _, b := range s.Buckets {
		if wantBuckets[b.LE] != b.Count {
			t.Errorf("bucket le=%v count=%d, want %d", b.LE, b.Count, wantBuckets[b.LE])
		}
	}
	// Median of {0.5, 2, 3, 50, 1000} falls in the (1,10] bucket.
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %v, want 10", got)
	}
	// p99 lands in overflow, reported as the largest finite bound.
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("p99 = %v, want 100", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); got != 12000 {
		t.Errorf("sum = %v, want 12000", got)
	}
}

func TestTraceRingEviction(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 6; i++ {
		tr.StartSpan("s").End()
	}
	if got := len(tr.Events()); got != 4 {
		t.Errorf("ring retains %d events, want 4", got)
	}
	st := tr.SpanStats()["s"]
	if st.Count != 6 {
		t.Errorf("aggregate count = %d, want 6 (must survive eviction)", st.Count)
	}
	if st.Total < st.Max {
		t.Errorf("total %v < max %v", st.Total, st.Max)
	}
}

func TestRecorderAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg)
	rec.StateCreated()
	rec.StateCreated()
	rec.StateExpanded()
	rec.CacheHit()
	rec.CacheHit()
	rec.CacheHit()
	rec.CacheMiss()
	rec.CheckObserved(2 * time.Millisecond)
	rec.ChecksAdded(10)
	rec.OpenList(42)
	sp := rec.Span("astar.run")
	rec.Span("check").End()
	sp.End()

	s := reg.Snapshot()
	if s.Counters[MetricStatesCreated] != 2 || s.Counters[MetricStatesExpanded] != 1 {
		t.Errorf("state counters: %+v", s.Counters)
	}
	if s.Counters[MetricChecks] != 11 {
		t.Errorf("checks = %d, want 11", s.Counters[MetricChecks])
	}
	if s.Counters[MetricCacheHits] != 3 || s.Counters[MetricCacheMisses] != 1 {
		t.Errorf("cache counters: %+v", s.Counters)
	}
	if got := s.Derived[MetricCacheHitRate]; got != 0.75 {
		t.Errorf("cache hit rate = %v, want 0.75", got)
	}
	if s.Gauges[MetricOpenListSize].Value != 42 {
		t.Errorf("open list gauge: %+v", s.Gauges[MetricOpenListSize])
	}
	if h := s.Histograms[MetricCheckLatency]; h.Count != 1 || len(h.Buckets) == 0 {
		t.Errorf("check latency histogram: %+v", h)
	}
	if s.Spans[TraceName+".astar.run"].Count != 1 || s.Spans[TraceName+".check"].Count != 1 {
		t.Errorf("spans: %+v", s.Spans)
	}

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if round.Counters[MetricCacheHits] != 3 {
		t.Errorf("round-tripped snapshot: %+v", round.Counters)
	}
}

func TestDebugHandler(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg)
	rec.StateCreated()
	reg.PublishExpvar("klotski-test")
	reg.PublishExpvar("klotski-test") // duplicate publish must not panic

	srv := httptest.NewServer(reg.DebugHandler())
	defer srv.Close()

	for path, want := range map[string]string{
		"/debug/vars":   "klotski-test",
		"/":             MetricStatesCreated,
		"/debug/pprof/": "goroutine",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var body bytes.Buffer
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(body.String(), want) {
			t.Errorf("GET %s: body missing %q", path, want)
		}
	}
}

func TestDefaultRegistryIsProcessWide(t *testing.T) {
	if Default() == nil || Default() != Default() {
		t.Fatal("Default must return a stable process-wide registry")
	}
	rec := NewRecorder(nil)
	if rec.Registry() != Default() {
		t.Error("NewRecorder(nil) must publish into the default registry")
	}
}
