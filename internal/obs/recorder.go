package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Instrument names published by Recorder into its registry. Exported so
// snapshot consumers (the bench guard, tests, dashboards) can reference
// them without string drift.
const (
	MetricStatesCreated      = "planner.states_created"
	MetricStatesExpanded     = "planner.states_expanded"
	MetricChecks             = "planner.checks"
	MetricCacheHits          = "planner.cache_hits"
	MetricCacheMisses        = "planner.cache_misses"
	MetricCacheHitRate       = "planner.cache_hit_rate"
	MetricCheckLatency       = "planner.check_latency_seconds"
	MetricOpenListSize       = "planner.open_list_size"
	MetricPlansCompleted     = "planner.plans_completed"
	MetricPlansInterrupted   = "planner.plans_interrupted"
	MetricRetries            = "ctrl.retries"
	MetricReplans            = "ctrl.replans"
	MetricBoundaryViolations = "ctrl.boundary_violations"
	MetricDriftReplans       = "ctrl.drift_replans"
	MetricTelemetryFaults    = "ctrl.telemetry_faults"
	MetricDegradedRuns       = "ctrl.degraded_runs"
	MetricGroupInvalidations = "routing.group_invalidations"
	MetricGroupsReused       = "routing.groups_reused"
	MetricIncDisables        = "routing.incremental_disables"
	MetricBatchedChecks      = "planner.batched_boundary_checks"
	MetricWorkerChecks       = "planner.worker_checks"
	MetricShardContention    = "planner.shard_contention"
	MetricSpeculativeWaste   = "planner.speculative_waste"
	MetricSpeculativeStates  = "planner.states_speculative"
	MetricOptimalityGap      = "planner.optimality_gap"
	MetricBoundCutsLearned   = "bound.cuts_learned"
	MetricBoundCutHits       = "bound.cut_hits"
	MetricBoundStatesPruned  = "bound.states_pruned"
	MetricGapSkips           = "ctrl.gap_skips"
	MetricAuditSteps         = "audit.steps_checked"
	MetricAuditFailures      = "audit.failures"
	MetricLanePanics         = "planner.lane_panics_degraded"
	MetricAdaptiveDecisions  = "planner.adaptive_decisions"
	MetricAdaptiveLanes      = "planner.adaptive_lanes"
	MetricAdaptiveWarmOffs   = "planner.adaptive_warm_offs"
	MetricSchedSteals        = "sched.steals"
	MetricSchedPreemptions   = "sched.preemptions"
	MetricSchedQueueWait     = "sched.queue_wait_ns"
	MetricFleetPlansAdmitted = "fleet.plans_admitted"
	MetricBoundCrossHits     = "bound.cross_plan_cut_hits"

	// Planning-as-a-service daemon instruments (internal/serve).
	MetricServeJobsActive       = "serve.jobs_active"
	MetricServeJobsSubmitted    = "serve.jobs_submitted"
	MetricServeJobsRecovered    = "serve.jobs_recovered"
	MetricServeDrains           = "serve.drains"
	MetricServeDeadlineExpiries = "serve.deadline_expiries"
	MetricServeSerialDegrades   = "serve.serial_degrades"

	TraceName = "planner"
)

// Recorder is the typed hot-path façade the planners and control loop
// call into. It pre-resolves its instruments once at construction so a
// recorded event is a single atomic op, and every method is safe on a nil
// receiver — a nil *Recorder is the no-op default, costing one branch.
type Recorder struct {
	reg   *Registry
	trace *Trace

	statesCreated    *Counter
	statesExpanded   *Counter
	checks           *Counter
	cacheHits        *Counter
	cacheMisses      *Counter
	checkLatency     *Histogram
	openList         *Gauge
	plansCompleted   *Counter
	plansInterrupted *Counter
	retries          *Counter
	replans          *Counter
	boundaryViol     *Counter
	driftReplans     *Counter
	telemetryFaults  *Counter
	degradedRuns     *Counter
	groupInval       *Counter
	groupsReused     *Counter
	incDisables      *Counter
	batchedChecks    *Counter
	workerChecks     *Counter
	shardContention  *Counter
	specWaste        *Gauge
	specStates       *Gauge
	boundCuts        *Counter
	boundCutHits     *Counter
	boundPruned      *Counter
	gapSkips         *Counter
	gapBits          atomic.Uint64 // float64 bits of the last certified gap
	auditSteps       *Counter
	auditFailures    *Counter
	lanePanics       *Counter
	adaptiveDecns    *Counter
	adaptiveLanes    *Gauge
	adaptiveWarmOffs *Counter
	schedSteals      *Counter
	schedPreemptions *Counter
	schedQueueWait   *Counter
	fleetAdmitted    *Counter
	boundCrossHits   *Counter

	serveActive     *Gauge
	serveSubmitted  *Counter
	serveRecovered  *Counter
	serveDrains     *Counter
	serveDeadlines  *Counter
	serveSerialDegr *Counter
}

// NewRecorder returns a recorder publishing into reg (nil selects the
// process-wide Default registry). It also registers the derived
// cache-hit-rate metric, hits/(hits+misses), computed at snapshot time.
func NewRecorder(reg *Registry) *Recorder {
	if reg == nil {
		reg = Default()
	}
	r := &Recorder{
		reg:              reg,
		trace:            reg.Trace(TraceName, 0),
		statesCreated:    reg.Counter(MetricStatesCreated),
		statesExpanded:   reg.Counter(MetricStatesExpanded),
		checks:           reg.Counter(MetricChecks),
		cacheHits:        reg.Counter(MetricCacheHits),
		cacheMisses:      reg.Counter(MetricCacheMisses),
		checkLatency:     reg.Histogram(MetricCheckLatency, nil),
		openList:         reg.Gauge(MetricOpenListSize),
		plansCompleted:   reg.Counter(MetricPlansCompleted),
		plansInterrupted: reg.Counter(MetricPlansInterrupted),
		retries:          reg.Counter(MetricRetries),
		replans:          reg.Counter(MetricReplans),
		boundaryViol:     reg.Counter(MetricBoundaryViolations),
		driftReplans:     reg.Counter(MetricDriftReplans),
		telemetryFaults:  reg.Counter(MetricTelemetryFaults),
		degradedRuns:     reg.Counter(MetricDegradedRuns),
		groupInval:       reg.Counter(MetricGroupInvalidations),
		groupsReused:     reg.Counter(MetricGroupsReused),
		incDisables:      reg.Counter(MetricIncDisables),
		batchedChecks:    reg.Counter(MetricBatchedChecks),
		workerChecks:     reg.Counter(MetricWorkerChecks),
		shardContention:  reg.Counter(MetricShardContention),
		specWaste:        reg.Gauge(MetricSpeculativeWaste),
		specStates:       reg.Gauge(MetricSpeculativeStates),
		boundCuts:        reg.Counter(MetricBoundCutsLearned),
		boundCutHits:     reg.Counter(MetricBoundCutHits),
		boundPruned:      reg.Counter(MetricBoundStatesPruned),
		gapSkips:         reg.Counter(MetricGapSkips),
		auditSteps:       reg.Counter(MetricAuditSteps),
		auditFailures:    reg.Counter(MetricAuditFailures),
		lanePanics:       reg.Counter(MetricLanePanics),
		adaptiveDecns:    reg.Counter(MetricAdaptiveDecisions),
		adaptiveLanes:    reg.Gauge(MetricAdaptiveLanes),
		adaptiveWarmOffs: reg.Counter(MetricAdaptiveWarmOffs),
		schedSteals:      reg.Counter(MetricSchedSteals),
		schedPreemptions: reg.Counter(MetricSchedPreemptions),
		schedQueueWait:   reg.Counter(MetricSchedQueueWait),
		fleetAdmitted:    reg.Counter(MetricFleetPlansAdmitted),
		boundCrossHits:   reg.Counter(MetricBoundCrossHits),
		serveActive:      reg.Gauge(MetricServeJobsActive),
		serveSubmitted:   reg.Counter(MetricServeJobsSubmitted),
		serveRecovered:   reg.Counter(MetricServeJobsRecovered),
		serveDrains:      reg.Counter(MetricServeDrains),
		serveDeadlines:   reg.Counter(MetricServeDeadlineExpiries),
		serveSerialDegr:  reg.Counter(MetricServeSerialDegrades),
	}
	hits, misses := r.cacheHits, r.cacheMisses
	reg.Derived(MetricCacheHitRate, func() float64 {
		h, m := hits.Value(), misses.Value()
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	})
	gap := &r.gapBits
	reg.Derived(MetricOptimalityGap, func() float64 {
		return math.Float64frombits(gap.Load())
	})
	return r
}

// Enabled reports whether events are being recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// Registry returns the registry the recorder publishes into; nil on a nil
// receiver.
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// StateCreated counts one search state pushed.
func (r *Recorder) StateCreated() {
	if r == nil {
		return
	}
	r.statesCreated.Inc()
}

// StateExpanded counts one search state popped/expanded.
func (r *Recorder) StateExpanded() {
	if r == nil {
		return
	}
	r.statesExpanded.Inc()
}

// StatesCreatedAdded counts n search states at once — used for bulk
// accounting after a parallel wavefront layer merges.
func (r *Recorder) StatesCreatedAdded(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.statesCreated.Add(int64(n))
}

// StatesExpandedAdded counts n expanded states at once — the bulk
// counterpart of StateExpanded.
func (r *Recorder) StatesExpandedAdded(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.statesExpanded.Add(int64(n))
}

// CacheHit counts one satisfiability-cache hit.
func (r *Recorder) CacheHit() {
	if r == nil {
		return
	}
	r.cacheHits.Inc()
}

// CacheMiss counts one satisfiability-cache miss.
func (r *Recorder) CacheMiss() {
	if r == nil {
		return
	}
	r.cacheMisses.Inc()
}

// CacheHitsAdded counts n satisfiability-cache hits at once — used for
// bulk accounting when worker-lane counters fold after a parallel batch.
func (r *Recorder) CacheHitsAdded(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.cacheHits.Add(int64(n))
}

// CacheMissesAdded counts n satisfiability-cache misses at once — the
// bulk counterpart of CacheMiss.
func (r *Recorder) CacheMissesAdded(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.cacheMisses.Add(int64(n))
}

// CheckObserved counts one satisfiability check and records its latency.
func (r *Recorder) CheckObserved(d time.Duration) {
	if r == nil {
		return
	}
	r.checks.Inc()
	r.checkLatency.ObserveDuration(d)
}

// ChecksAdded counts n satisfiability checks without latency samples —
// used for bulk accounting after parallel prechecks.
func (r *Recorder) ChecksAdded(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.checks.Add(int64(n))
}

// OpenList records the current open-list size.
func (r *Recorder) OpenList(n int) {
	if r == nil {
		return
	}
	r.openList.Set(int64(n))
}

// PlanCompleted counts one planner run that returned a plan.
func (r *Recorder) PlanCompleted() {
	if r == nil {
		return
	}
	r.plansCompleted.Inc()
}

// PlanInterrupted counts one planner run stopped by budget or cancellation.
func (r *Recorder) PlanInterrupted() {
	if r == nil {
		return
	}
	r.plansInterrupted.Inc()
}

// Retry counts one control-loop action retry.
func (r *Recorder) Retry() {
	if r == nil {
		return
	}
	r.retries.Inc()
}

// Replan counts one control-loop replan.
func (r *Recorder) Replan() {
	if r == nil {
		return
	}
	r.replans.Inc()
}

// BoundaryViolation counts one observed constraint violation at a run
// boundary during execution.
func (r *Recorder) BoundaryViolation() {
	if r == nil {
		return
	}
	r.boundaryViol.Inc()
}

// DriftReplan counts one replan triggered by demand drift exceeding the
// controller's threshold.
func (r *Recorder) DriftReplan() {
	if r == nil {
		return
	}
	r.driftReplans.Inc()
}

// TelemetryFault counts one demand-telemetry observation that was dropped,
// stale, or failed sanity checks.
func (r *Recorder) TelemetryFault() {
	if r == nil {
		return
	}
	r.telemetryFaults.Inc()
}

// DegradedRun counts one run executed in degraded mode (planning against
// the inflated-demand envelope because telemetry was unusable).
func (r *Recorder) DegradedRun() {
	if r == nil {
		return
	}
	r.degradedRuns.Inc()
}

// GroupInvalidations counts n destination groups recomputed by incremental
// satisfiability checks.
func (r *Recorder) GroupInvalidations(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.groupInval.Add(int64(n))
}

// GroupsReused counts n destination groups answered from the incremental
// memo without recomputation.
func (r *Recorder) GroupsReused(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.groupsReused.Add(int64(n))
}

// IncDisable counts one incremental-engine self-disable event: successive
// deltas kept invalidating (nearly) every destination group, so the
// evaluator fell back to classic full checks for the rest of the run.
func (r *Recorder) IncDisable() {
	if r == nil {
		return
	}
	r.incDisables.Inc()
}

// BatchedChecks counts n boundary checks resolved by a parallel batch
// instead of the lazy serial path.
func (r *Recorder) BatchedChecks(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.batchedChecks.Add(int64(n))
}

// WorkerChecks counts n satisfiability checks executed on parallel worker
// lanes (a subset of planner.checks).
func (r *Recorder) WorkerChecks(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.workerChecks.Add(int64(n))
}

// ShardContention counts n cross-worker collisions on the striped intern
// table and verdict-claim CAS.
func (r *Recorder) ShardContention(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.shardContention.Add(int64(n))
}

// SpeculativeWaste records the current number of speculatively batched
// verdicts the serial search never consumed. A gauge, not a counter: it is
// set at checkpoint and finalization time and later consumption can shrink
// it.
func (r *Recorder) SpeculativeWaste(n int) {
	if r == nil || n < 0 {
		return
	}
	r.specWaste.Set(int64(n))
}

// StatesSpeculative records the current number of wavefront-valued DP
// cells the serial recursion never evaluates (excluded from the
// states-created/expanded counters). A gauge: re-flushed per leg.
func (r *Recorder) StatesSpeculative(n int) {
	if r == nil || n < 0 {
		return
	}
	r.specStates.Set(int64(n))
}

// BoundCutsLearnedAdded counts n new infeasibility cuts recorded by the
// lower-bound engine.
func (r *Recorder) BoundCutsLearnedAdded(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.boundCuts.Add(int64(n))
}

// BoundCutHitsAdded counts n lower-bound queries the cut set answered
// affirmatively (a state proven dead or dominated).
func (r *Recorder) BoundCutHitsAdded(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.boundCutHits.Add(int64(n))
}

// BoundStatesPruned counts n search states skipped because the bound
// engine proved they cannot lie on any optimal plan.
func (r *Recorder) BoundStatesPruned(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.boundPruned.Add(int64(n))
}

// OptimalityGap records the latest certified relative optimality gap
// (0 = provably optimal, 1 = nothing certified). Published as a derived
// metric so float precision survives the snapshot.
func (r *Recorder) OptimalityGap(gap float64) {
	if r == nil || math.IsNaN(gap) {
		return
	}
	r.gapBits.Store(math.Float64bits(gap))
}

// GapSkip counts one drift replan skipped because the executing plan's
// remaining cost was already certified within the controller's gap
// threshold of the lower bound.
func (r *Recorder) GapSkip() {
	if r == nil {
		return
	}
	r.gapSkips.Inc()
}

// AuditSteps counts n boundary states checked by the independent plan
// auditor.
func (r *Recorder) AuditSteps(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.auditSteps.Add(int64(n))
}

// AuditFailure counts one plan rejected by the independent auditor.
func (r *Recorder) AuditFailure() {
	if r == nil {
		return
	}
	r.auditFailures.Inc()
}

// LanePanicDegraded counts one worker-lane panic that the planner contained
// by retiring its parallel paths and finishing the run serially.
func (r *Recorder) LanePanicDegraded() {
	if r == nil {
		return
	}
	r.lanePanics.Inc()
}

// AdaptiveDecision traces one adaptive worker-policy decision (including
// the initial resolve): the decision counter increments and the gauge
// records the effective lane count the policy settled on.
func (r *Recorder) AdaptiveDecision(lanes int) {
	if r == nil {
		return
	}
	r.adaptiveDecns.Inc()
	r.adaptiveLanes.Set(int64(lanes))
}

// AdaptiveWarmOff counts one adaptive-policy decision to disable A*
// speculative frontier warming (observed speculative waste too high).
func (r *Recorder) AdaptiveWarmOff() {
	if r == nil {
		return
	}
	r.adaptiveWarmOffs.Inc()
}

// SchedSteal counts one shared-pool worker claiming work from a plan it
// was not previously serving (work stealing across concurrent plans).
func (r *Recorder) SchedSteal() {
	if r == nil {
		return
	}
	r.schedSteals.Inc()
}

// SchedPreemption counts one lower-priority plan forced by the shared
// pool to checkpoint so a higher-priority plan could claim its workers.
func (r *Recorder) SchedPreemption() {
	if r == nil {
		return
	}
	r.schedPreemptions.Inc()
}

// SchedQueueWait accumulates the time one submitted task batch waited
// before any pool worker first claimed from it (the submitter's own help
// does not count — it starts immediately).
func (r *Recorder) SchedQueueWait(d time.Duration) {
	if r == nil || d <= 0 {
		return
	}
	r.schedQueueWait.Add(d.Nanoseconds())
}

// FleetPlanAdmitted counts one fleet member admitted to the shared pool
// (re-admissions after a preemption count again).
func (r *Recorder) FleetPlanAdmitted() {
	if r == nil {
		return
	}
	r.fleetAdmitted.Inc()
}

// BoundCrossHitsAdded counts n structural cuts a plan imported from the
// shared cross-plan cut store (learned by a concurrent fleet member).
func (r *Recorder) BoundCrossHitsAdded(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.boundCrossHits.Add(int64(n))
}

// JobsActive publishes the daemon's current in-flight job count (jobs
// admitted or planning, not yet terminal).
func (r *Recorder) JobsActive(n int) {
	if r == nil {
		return
	}
	r.serveActive.Set(int64(n))
}

// JobSubmitted counts one job accepted (journaled durable) by the daemon.
func (r *Recorder) JobSubmitted() {
	if r == nil {
		return
	}
	r.serveSubmitted.Inc()
}

// JobRecovered counts one in-flight job rebuilt from its journal after a
// daemon restart.
func (r *Recorder) JobRecovered() {
	if r == nil {
		return
	}
	r.serveRecovered.Inc()
}

// ServeDrain counts one graceful daemon drain (checkpoint-all on
// SIGTERM/SIGINT).
func (r *Recorder) ServeDrain() {
	if r == nil {
		return
	}
	r.serveDrains.Inc()
}

// DeadlineExpiry counts one job failed because its request deadline
// expired before planning finished.
func (r *Recorder) DeadlineExpiry() {
	if r == nil {
		return
	}
	r.serveDeadlines.Inc()
}

// SerialDegrade counts one job planned serially because the shared pool's
// reservations stayed exhausted past the admission wait — degraded, not
// rejected.
func (r *Recorder) SerialDegrade() {
	if r == nil {
		return
	}
	r.serveSerialDegr.Inc()
}

// Span starts a named timed region in the recorder's trace stream. On a
// nil receiver it returns the zero Span, whose End is a no-op.
func (r *Recorder) Span(name string) Span {
	if r == nil {
		return Span{}
	}
	return r.trace.StartSpan(name)
}
