package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentPlans hammers one registry from many concurrent
// "plans" — each with its own Recorder, as fleet planning does — and
// checks the snapshot totals equal the per-plan sums exactly. Run under
// -race this also proves the recorder paths the shared scheduler hits
// from every pool worker are data-race free.
func TestRegistryConcurrentPlans(t *testing.T) {
	reg := NewRegistry()
	const plans = 8
	const each = 2000

	var wg sync.WaitGroup
	for i := 0; i < plans; i++ {
		rec := NewRecorder(reg)
		wg.Add(1)
		go func(rec *Recorder) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				rec.SchedSteal()
				rec.SchedPreemption()
				rec.SchedQueueWait(3 * time.Nanosecond)
				rec.FleetPlanAdmitted()
				rec.BoundCrossHitsAdded(2)
				rec.StateCreated()
				rec.StateExpanded()
				rec.CacheHit()
			}
		}(rec)
	}
	wg.Wait()

	s := reg.Snapshot()
	want := map[string]int64{
		MetricSchedSteals:        plans * each,
		MetricSchedPreemptions:   plans * each,
		MetricSchedQueueWait:     plans * each * 3,
		MetricFleetPlansAdmitted: plans * each,
		MetricBoundCrossHits:     plans * each * 2,
		MetricStatesCreated:      plans * each,
		MetricStatesExpanded:     plans * each,
		MetricCacheHits:          plans * each,
	}
	for name, w := range want {
		if got := s.Counters[name]; got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}
}
