package sim

import (
	"errors"
	"testing"

	"klotski/internal/core"
	"klotski/internal/demand"
	"klotski/internal/migration"
	"klotski/internal/topo"
)

// chaosTask builds a spare-rich bridge microcosm: 3 old bridges to drain,
// 3 new bridges to undrain, 2 spare bridges the migration never touches.
// ECMP splits the one demand equally across up bridges.
func chaosTask(t testing.TB) (*migration.Task, []topo.SwitchID) {
	t.Helper()
	tp := topo.New("chaos-bridges")
	src := tp.AddSwitch(topo.Switch{Name: "src", Role: topo.RoleRSW})
	dst := tp.AddSwitch(topo.Switch{Name: "dst", Role: topo.RoleEBB})
	task := &migration.Task{Name: "chaos-bridges", Topo: tp}
	d := task.AddType(migration.ActionTypeInfo{Name: "drain-old", Op: migration.Drain, Role: topo.RoleFADU})
	u := task.AddType(migration.ActionTypeInfo{Name: "undrain-new", Op: migration.Undrain, Role: topo.RoleFADU})
	for i := 0; i < 3; i++ {
		s := tp.AddSwitch(topo.Switch{Name: "old" + string(rune('a'+i)), Role: topo.RoleFADU, Generation: 1})
		tp.AddCircuit(src, s, 100)
		tp.AddCircuit(s, dst, 100)
		task.AddBlock(migration.Block{Name: "drain-old" + string(rune('a'+i)), Type: d, Switches: []topo.SwitchID{s}})
	}
	for i := 0; i < 3; i++ {
		s := tp.AddSwitch(topo.Switch{Name: "new" + string(rune('a'+i)), Role: topo.RoleFADU, Generation: 2})
		tp.SetSwitchActive(s, false)
		tp.AddCircuit(src, s, 100)
		tp.AddCircuit(s, dst, 100)
		task.AddBlock(migration.Block{Name: "undrain-new" + string(rune('a'+i)), Type: u, Switches: []topo.SwitchID{s}})
	}
	var spares []topo.SwitchID
	for i := 0; i < 2; i++ {
		s := tp.AddSwitch(topo.Switch{Name: "spare" + string(rune('a'+i)), Role: topo.RoleFADU, Generation: 1})
		tp.AddCircuit(src, s, 100)
		tp.AddCircuit(s, dst, 100)
		spares = append(spares, s)
	}
	task.Demands.Add(demand.Demand{Name: "d", Src: src, Dst: dst, Rate: 150})
	return task, spares
}

func TestWorldFaultsFireByStepAndBumpEpoch(t *testing.T) {
	task, spares := chaosTask(t)
	sched := Schedule{
		{Step: 0, Kind: FaultSwitchDown, Switch: spares[0]},
		{Step: 1, Kind: FaultSurge, Surge: &demand.Surge{Fraction: 1, Multiplier: 1.1}},
		{Step: 2, Kind: FaultTransient, Attempts: 2},
	}
	w := NewWorld(task, sched, 1)

	if e := w.Poll(); e != 1 {
		t.Fatalf("switch-down at step 0 should bump epoch to 1, got %d", e)
	}
	if down := w.DownSwitches(); len(down) != 1 || down[0] != spares[0] {
		t.Fatalf("DownSwitches = %v, want [%d]", down, spares[0])
	}
	if w.DemandsChanged() {
		t.Fatal("surge at step 1 must not fire at step 0")
	}

	plan, err := core.PlanAStar(task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Apply(plan.Sequence[0]); err != nil {
		t.Fatalf("first apply: %v", err)
	}
	if e := w.Poll(); e != 2 {
		t.Fatalf("surge at step 1 should bump epoch to 2, got %d", e)
	}
	if !w.DemandsChanged() {
		t.Fatal("surge fired but DemandsChanged is false")
	}

	if err := w.Apply(plan.Sequence[1]); err != nil {
		t.Fatalf("second apply: %v", err)
	}
	epochBefore := w.Poll()
	err = w.Apply(plan.Sequence[2])
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("transient fault should fail the apply, got %v", err)
	}
	if w.Epoch() != epochBefore {
		t.Fatal("transient failures must not bump the epoch")
	}
	err = w.Apply(plan.Sequence[2])
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("second transient attempt should also fail, got %v", err)
	}
	if err := w.Apply(plan.Sequence[2]); err != nil {
		t.Fatalf("third attempt should succeed, got %v", err)
	}
	if got := len(w.Executed()); got != 3 {
		t.Fatalf("3 blocks applied, Executed reports %d", got)
	}
}

func TestWorldCircuitFlapRecovers(t *testing.T) {
	task, _ := chaosTask(t)
	// Flap a spare circuit (last circuits added belong to spares).
	spareCircuit := topo.CircuitID(task.Topo.NumCircuits() - 1)
	w := NewWorld(task, Schedule{
		{Step: 0, Kind: FaultCircuitFlap, Circuit: spareCircuit, Steps: 1},
	}, 1)
	if e := w.Poll(); e != 1 {
		t.Fatalf("flap should bump epoch, got %d", e)
	}
	if down := w.DownCircuits(); len(down) != 1 || down[0] != spareCircuit {
		t.Fatalf("DownCircuits = %v, want [%d]", down, spareCircuit)
	}
	plan, err := core.PlanAStar(task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Apply(plan.Sequence[0]); err != nil {
		t.Fatal(err)
	}
	if e := w.Poll(); e != 2 {
		t.Fatalf("flap recovery should bump epoch again, got %d", e)
	}
	if down := w.DownCircuits(); len(down) != 0 {
		t.Fatalf("circuit should have recovered, DownCircuits = %v", down)
	}
}

func TestRandomScheduleRespectsOperatedEquipment(t *testing.T) {
	task, _ := chaosTask(t)
	operatedSw := make(map[topo.SwitchID]bool)
	operatedCk := make(map[topo.CircuitID]bool)
	for i := range task.Blocks {
		for _, s := range task.Blocks[i].Switches {
			operatedSw[s] = true
		}
		for _, c := range task.Blocks[i].Circuits {
			operatedCk[c] = true
		}
	}
	for seed := int64(0); seed < 20; seed++ {
		sched := RandomSchedule(task, seed, ScheduleOptions{Faults: 5})
		if len(sched) != 5 {
			t.Fatalf("seed %d: want 5 faults, got %d", seed, len(sched))
		}
		for _, f := range sched {
			if f.Step < 1 || f.Step > task.NumActions() {
				t.Fatalf("seed %d: fault step %d out of range", seed, f.Step)
			}
			switch f.Kind {
			case FaultSwitchDown:
				if operatedSw[f.Switch] {
					t.Fatalf("seed %d: outage targets operated switch %d", seed, f.Switch)
				}
				for _, dm := range task.Demands.Demands {
					if f.Switch == dm.Src || f.Switch == dm.Dst {
						t.Fatalf("seed %d: outage targets demand endpoint %d", seed, f.Switch)
					}
				}
			case FaultCircuitFlap:
				if operatedCk[f.Circuit] {
					t.Fatalf("seed %d: flap targets operated circuit %d", seed, f.Circuit)
				}
			}
		}
	}
}

// TestExecuteWithFaultSchedule exercises the Executor-level chaos path:
// a spare-switch outage plus a surge mid-replay must register in the
// report (the plan may or may not stay safe — that is what the report
// says), and the replay must run to completion without error.
func TestExecuteWithFaultSchedule(t *testing.T) {
	task, spares := chaosTask(t)
	plan, err := core.PlanAStar(task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewExecutor(task).Execute(plan.Sequence, Options{
		Faults: Schedule{
			{Step: 1, Kind: FaultSwitchDown, Switch: spares[0]},
			{Step: 2, Kind: FaultSurge, Surge: &demand.Surge{Fraction: 1, Multiplier: 1.05}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("replay should complete")
	}
	base, err := NewExecutor(task).Execute(plan.Sequence, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The outage removes a bridge and the surge grows demand, so the final
	// boundary — same up-set otherwise — must run hotter than the clean
	// replay's.
	last, lastBase := rep.Steps[len(rep.Steps)-1], base.Steps[len(base.Steps)-1]
	if last.BoundaryUtil <= lastBase.BoundaryUtil {
		t.Errorf("outage+surge should raise final boundary util: %v vs %v",
			last.BoundaryUtil, lastBase.BoundaryUtil)
	}
}

// TestCampaignWorstSeedAbsolute is the regression test for WorstSeed
// reporting: with a nonzero base seed, WorstSeed must be an absolute seed
// (base+s), reproducible by setting Options.Seed directly — including in
// the degenerate zero-peak case where no replay ever beats the initial
// maximum.
func TestCampaignWorstSeedAbsolute(t *testing.T) {
	task, _ := chaosTask(t)
	plan, err := core.PlanAStar(task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const base = int64(1000)
	const seeds = 5
	rep, err := NewExecutor(task).Campaign(plan.Sequence, Options{Seed: base}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstSeed < base || rep.WorstSeed >= base+seeds {
		t.Fatalf("WorstSeed %d is not an absolute seed in [%d, %d)", rep.WorstSeed, base, base+seeds)
	}
	// Replaying the worst seed directly must reproduce the reported peak.
	replay, err := NewExecutor(task).Execute(plan.Sequence, Options{
		Seed:        rep.WorstSeed,
		Granularity: GranularityCircuit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if replay.PeakUtil != rep.PeakMax {
		t.Fatalf("replaying WorstSeed %d gives peak %v, campaign reported %v",
			rep.WorstSeed, replay.PeakUtil, rep.PeakMax)
	}

	// Zero-peak degenerate case: no demands, every replay peaks at 0 —
	// WorstSeed must still be absolute (the base), never a bare offset.
	noDemand := *task
	noDemand.Demands = demand.Set{}
	rep0, err := NewExecutor(&noDemand).Campaign(plan.Sequence, Options{Seed: base}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if rep0.WorstSeed < base || rep0.WorstSeed >= base+seeds {
		t.Fatalf("zero-peak campaign WorstSeed %d not absolute (base %d)", rep0.WorstSeed, base)
	}
}

// TestWorldTelemetryFaults: telemetry faults degrade only the observation
// channel — ObserveDemands errors or lies for the scheduled number of
// observations, the network epoch never moves, and ground truth
// (Demands()) stays intact throughout.
func TestWorldTelemetryFaults(t *testing.T) {
	task, _ := chaosTask(t)

	t.Run("drop", func(t *testing.T) {
		w := NewWorld(task, Schedule{{Step: 0, Kind: FaultTelemetryDrop, Steps: 2}}, 1)
		if e := w.Poll(); e != 0 {
			t.Fatalf("telemetry fault must not bump the epoch, got %d", e)
		}
		for i := 0; i < 2; i++ {
			if _, err := w.ObserveDemands(); !errors.Is(err, ErrTelemetry) {
				t.Fatalf("observation %d: want ErrTelemetry, got %v", i, err)
			}
		}
		ds, err := w.ObserveDemands()
		if err != nil {
			t.Fatalf("collector should be back after 2 dropped observations: %v", err)
		}
		if ds.Demands[0].Rate != 150 {
			t.Fatalf("recovered observation rate = %v, want 150", ds.Demands[0].Rate)
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		w := NewWorld(task, Schedule{{Step: 0, Kind: FaultTelemetryCorrupt, Steps: 1}}, 1)
		w.Poll()
		bad, err := w.ObserveDemands()
		if err != nil {
			t.Fatalf("corrupt telemetry returns data, not an error: %v", err)
		}
		r := bad.Demands[0].Rate
		if !(r != r || r <= 0 || r > 1e6) { // NaN, negated, or wildly inflated
			t.Fatalf("corrupt observation rate %v looks sane", r)
		}
		if w.Demands().Demands[0].Rate != 150 {
			t.Fatal("corruption leaked into ground truth")
		}
		good, err := w.ObserveDemands()
		if err != nil || good.Demands[0].Rate != 150 {
			t.Fatalf("next observation should be clean, got %v, %v", good.Demands, err)
		}
	})

	t.Run("stale", func(t *testing.T) {
		w := NewWorld(task, Schedule{{Step: 0, Kind: FaultTelemetryStale, Steps: 1}}, 1)
		w.Poll()
		// Ground truth moves after the snapshot was frozen.
		w.SetDemandGrowth(0.1)
		plan, err := core.PlanAStar(task, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Apply(plan.Sequence[0]); err != nil {
			t.Fatal(err)
		}
		stale, err := w.ObserveDemands()
		if err != nil {
			t.Fatal(err)
		}
		if stale.Demands[0].Rate != 150 {
			t.Fatalf("stale observation rate = %v, want frozen 150", stale.Demands[0].Rate)
		}
		fresh, err := w.ObserveDemands()
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Demands[0].Rate <= 150 {
			t.Fatalf("post-stale observation rate = %v, want grown ground truth", fresh.Demands[0].Rate)
		}
	})
}

// TestWorldTransientSurgeRecovers: a FaultSurge with Steps set is a
// transient spike — rates multiply when it fires and divide back after the
// recovery horizon, each transition bumping the epoch so the controller
// replans both into and out of the surge.
func TestWorldTransientSurgeRecovers(t *testing.T) {
	task, _ := chaosTask(t)
	w := NewWorld(task, Schedule{
		{Step: 0, Kind: FaultSurge, Steps: 2, Surge: &demand.Surge{Fraction: 1, Multiplier: 2}},
	}, 1)
	if e := w.Poll(); e != 1 {
		t.Fatalf("surge should bump epoch to 1, got %d", e)
	}
	if r := w.Demands().Demands[0].Rate; r != 300 {
		t.Fatalf("surged rate = %v, want 300", r)
	}
	plan, err := core.PlanAStar(task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w.Apply(plan.Sequence[i]); err != nil {
			t.Fatal(err)
		}
	}
	if e := w.Poll(); e != 2 {
		t.Fatalf("surge recovery should bump epoch to 2, got %d", e)
	}
	if r := w.Demands().Demands[0].Rate; r != 150 {
		t.Fatalf("recovered rate = %v, want 150", r)
	}
}

// TestExecuteTransientSurgeRecovers: the open-loop replay honors surge
// recovery horizons too — a big transient surge violates boundaries only
// while it is live, not for the rest of the migration.
func TestExecuteTransientSurgeRecovers(t *testing.T) {
	task, _ := chaosTask(t)
	plan, err := core.PlanAStar(task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewExecutor(task).Execute(plan.Sequence, Options{
		Faults: Schedule{{Step: 0, Kind: FaultSurge, Steps: 1, Surge: &demand.Surge{Fraction: 1, Multiplier: 5}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("replay should complete")
	}
	if rep.BoundaryViolations == 0 {
		t.Fatal("a 5x surge should violate at least one live boundary")
	}
	if rep.BoundaryViolations >= len(rep.Steps) {
		t.Fatalf("surge never recovered: %d of %d boundaries violated",
			rep.BoundaryViolations, len(rep.Steps))
	}
	last := rep.Steps[len(rep.Steps)-1]
	if last.BoundaryUnsafe {
		t.Fatal("final boundary still violated after the surge horizon passed")
	}
}
