package sim

import (
	"testing"

	"klotski/internal/core"
	"klotski/internal/demand"
	"klotski/internal/gen"
	"klotski/internal/topo"
)

func planScenario(t *testing.T) (*gen.Scenario, *core.Plan) {
	t.Helper()
	s, err := gen.TopologyA(0.25)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.PlanAStar(s.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

func TestExecuteValidPlanCompletesSafely(t *testing.T) {
	s, p := planScenario(t)
	rep, err := NewExecutor(s.Task).Execute(p.Sequence, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("execution should complete")
	}
	if rep.BoundaryViolations != 0 {
		t.Fatalf("planner-produced plan had %d boundary violations: %s",
			rep.BoundaryViolations, rep)
	}
	if len(rep.Steps) != len(p.Runs) {
		t.Fatalf("steps = %d, runs = %d", len(rep.Steps), len(p.Runs))
	}
	if rep.PeakUtil <= 0 || rep.PeakUtil > 0.75+1e-9 {
		t.Fatalf("peak util %v outside (0, θ] at run granularity", rep.PeakUtil)
	}
}

func TestExecuteRejectsInvalidSequence(t *testing.T) {
	s, p := planScenario(t)
	bad := append([]int(nil), p.Sequence...)
	bad[0], bad[1] = bad[1], bad[0] // break canonical order (maybe)
	if err := core.ValidateSequence(s.Task, bad, nil); err == nil {
		t.Skip("swap preserved canonical order")
	}
	if _, err := NewExecutor(s.Task).Execute(bad, Options{}); err == nil {
		t.Fatal("invalid sequence should be rejected")
	}
}

func TestAsynchronyExposesFunneling(t *testing.T) {
	s, p := planScenario(t)
	ex := NewExecutor(s.Task)
	atomic, err := ex.Execute(p.Sequence, Options{Granularity: GranularityRun})
	if err != nil {
		t.Fatal(err)
	}
	async, err := ex.Execute(p.Sequence, Options{Granularity: GranularityCircuit, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if async.PeakUtil < atomic.PeakUtil-1e-9 {
		t.Fatalf("asynchronous execution cannot reduce peak util: %v vs %v",
			async.PeakUtil, atomic.PeakUtil)
	}
	// Boundary states are identical regardless of intra-run order.
	if async.BoundaryViolations != atomic.BoundaryViolations {
		t.Fatalf("boundary violations differ: %d vs %d",
			async.BoundaryViolations, atomic.BoundaryViolations)
	}
	t.Logf("atomic peak %.3f, async peak %.3f, transient violations %d",
		atomic.PeakUtil, async.PeakUtil, async.TransientViolations)
}

func TestFunnelingHeadroomReducesTransients(t *testing.T) {
	s, err := gen.TopologyA(0.25)
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.PlanAStar(s.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := core.PlanAStar(s.Task, core.Options{FunnelFactor: 1.15})
	if err != nil {
		t.Skip("funneling headroom makes this scale infeasible")
	}
	ex := NewExecutor(s.Task)
	baseRep, err := ex.Execute(base.Sequence, Options{Granularity: GranularityCircuit, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	guardRep, err := ex.Execute(guarded.Sequence, Options{Granularity: GranularityCircuit, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if guardRep.TransientViolations > baseRep.TransientViolations {
		t.Errorf("headroom-planned execution has more transients: %d vs %d",
			guardRep.TransientViolations, baseRep.TransientViolations)
	}
}

func TestSurgeInjection(t *testing.T) {
	s, p := planScenario(t)
	ex := NewExecutor(s.Task)
	rep, err := ex.Execute(p.Sequence, Options{
		SurgeAtRun: 1,
		Surge:      &demand.Surge{Fraction: 1, Multiplier: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BoundaryViolations == 0 {
		t.Error("a 3× surge on every demand should break some boundary")
	}
}

func TestHaltOnViolation(t *testing.T) {
	s, p := planScenario(t)
	ex := NewExecutor(s.Task)
	ex.HaltOnViolation = true
	rep, err := ex.Execute(p.Sequence, Options{
		SurgeAtRun: 1,
		Surge:      &demand.Surge{Fraction: 1, Multiplier: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed || rep.HaltedAt < 0 {
		t.Fatalf("execution should halt on violation: %s", rep)
	}
}

func TestFailureInjection(t *testing.T) {
	s, p := planScenario(t)
	// Fail a non-operated, traffic-carrying switch at run 1.
	operated := map[topo.SwitchID]bool{}
	for _, b := range s.Task.Blocks {
		for _, sw := range b.Switches {
			operated[sw] = true
		}
	}
	var victim topo.SwitchID = -1
	for i := 0; i < s.Task.Topo.NumSwitches(); i++ {
		sw := s.Task.Topo.Switch(topo.SwitchID(i))
		if sw.Role == topo.RoleSSW && !operated[sw.ID] {
			victim = sw.ID
			break
		}
	}
	if victim < 0 {
		t.Skip("no unoperated SSW to fail")
	}
	rep, err := NewExecutor(s.Task).Execute(p.Sequence, Options{
		InjectFailure: true, FailAtRun: 1, FailSwitch: victim,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("after failure: %s", rep)
}

func TestForecastGrowthInSim(t *testing.T) {
	s, p := planScenario(t)
	ex := NewExecutor(s.Task)
	rep, err := ex.Execute(p.Sequence, Options{Forecast: demand.Forecast{GrowthPerStep: 0.001}})
	if err != nil {
		t.Fatal(err)
	}
	base, err := ex.Execute(p.Sequence, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakUtil <= base.PeakUtil {
		t.Errorf("growth should raise peak util: %v vs %v", rep.PeakUtil, base.PeakUtil)
	}
}

func TestReportString(t *testing.T) {
	s, p := planScenario(t)
	rep, err := NewExecutor(s.Task).Execute(p.Sequence, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() == "" {
		t.Error("report should render")
	}
}

func TestCampaignAggregates(t *testing.T) {
	s, p := planScenario(t)
	rep, err := NewExecutor(s.Task).Campaign(p.Sequence, Options{}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seeds != 12 {
		t.Fatalf("seeds = %d", rep.Seeds)
	}
	if !(rep.PeakMin <= rep.PeakMean+1e-9 && rep.PeakMean <= rep.PeakMax+1e-9) {
		t.Fatalf("peak stats disordered: %+v", rep)
	}
	if rep.PeakMin <= 0 {
		t.Fatal("peaks should be positive")
	}
	// The worst seed must reproduce the reported max exactly.
	worst, err := NewExecutor(s.Task).Execute(p.Sequence, Options{
		Granularity: GranularityCircuit, Seed: rep.WorstSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if worst.PeakUtil != rep.PeakMax {
		t.Fatalf("worst seed replay peak %v != campaign max %v", worst.PeakUtil, rep.PeakMax)
	}
	if rep.String() == "" {
		t.Error("campaign report should render")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	s, p := planScenario(t)
	a, err := NewExecutor(s.Task).Campaign(p.Sequence, Options{Seed: 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewExecutor(s.Task).Campaign(p.Sequence, Options{Seed: 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.PeakMax != b.PeakMax || a.PeakMean != b.PeakMean || a.WorstSeed != b.WorstSeed {
		t.Fatalf("campaigns differ: %+v vs %+v", a, b)
	}
}

func TestCampaignRejectsUnsafePlan(t *testing.T) {
	s, p := planScenario(t)
	// Triple the demand after planning: the boundaries break, and the
	// campaign must call that a plan defect.
	s.Task.Demands = s.Task.Demands.Scaled(3)
	if _, err := NewExecutor(s.Task).Campaign(p.Sequence, Options{}, 4); err == nil {
		t.Fatal("unsafe plan should fail the campaign")
	}
}

func TestBlockGranularityBetweenRunAndCircuit(t *testing.T) {
	s, p := planScenario(t)
	ex := NewExecutor(s.Task)
	run, err := ex.Execute(p.Sequence, Options{Granularity: GranularityRun})
	if err != nil {
		t.Fatal(err)
	}
	block, err := ex.Execute(p.Sequence, Options{Granularity: GranularityBlock, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	circuit, err := ex.Execute(p.Sequence, Options{Granularity: GranularityCircuit, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if block.PeakUtil < run.PeakUtil-1e-9 {
		t.Errorf("block asynchrony cannot lower the peak: %v vs %v", block.PeakUtil, run.PeakUtil)
	}
	if circuit.PeakUtil < block.PeakUtil-1e-9 {
		t.Errorf("circuit asynchrony cannot lower the peak: %v vs %v", circuit.PeakUtil, block.PeakUtil)
	}
}
