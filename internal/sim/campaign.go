package sim

import (
	"fmt"
	"math"
)

// CampaignReport aggregates a Monte Carlo replay campaign: the same plan
// executed under many random intra-run asynchrony orders. Because the
// planner only guarantees run boundaries, the transient exposure of a plan
// is a distribution, not a number — operators care about its tail (§2.2's
// funneling incidents are exactly bad draws from this distribution).
type CampaignReport struct {
	Seeds int

	// Peak utilization distribution across seeds.
	PeakMin, PeakMean, PeakMax float64

	// TransientViolations distribution: excursions over θ observed inside
	// runs (boundary states are identical across seeds).
	ViolationsMin, ViolationsMax int
	ViolationsMean               float64
	SeedsWithViolations          int

	// WorstSeed reproduces the highest-peak replay via Options.Seed.
	WorstSeed int64
}

// Campaign replays the sequence `seeds` times with different asynchrony
// orders (seeds 0..seeds-1 offset by opts.Seed) at the given granularity,
// and aggregates the transient exposure. Boundary violations are a plan
// defect rather than bad luck, so any boundary violation fails the
// campaign with an error.
func (e *Executor) Campaign(seq []int, opts Options, seeds int) (*CampaignReport, error) {
	if seeds <= 0 {
		seeds = 16
	}
	if opts.Granularity == GranularityRun {
		opts.Granularity = GranularityCircuit
	}
	base := opts.Seed
	// PeakMax starts below any real utilization so the first replay always
	// claims WorstSeed: even a zero-peak campaign then reports an absolute
	// seed (base+s), never a bare offset.
	rep := &CampaignReport{
		Seeds:     seeds,
		PeakMin:   math.Inf(1),
		PeakMax:   math.Inf(-1),
		WorstSeed: base,
	}
	for s := 0; s < seeds; s++ {
		opts.Seed = base + int64(s)
		r, err := e.Execute(seq, opts)
		if err != nil {
			return nil, err
		}
		if r.BoundaryViolations > 0 {
			return nil, fmt.Errorf("sim: boundary violation under seed %d — the plan itself is unsafe, not the asynchrony", opts.Seed)
		}
		if r.PeakUtil < rep.PeakMin {
			rep.PeakMin = r.PeakUtil
		}
		if r.PeakUtil > rep.PeakMax {
			rep.PeakMax = r.PeakUtil
			rep.WorstSeed = opts.Seed
		}
		rep.PeakMean += r.PeakUtil / float64(seeds)
		v := r.TransientViolations
		if s == 0 || v < rep.ViolationsMin {
			rep.ViolationsMin = v
		}
		if v > rep.ViolationsMax {
			rep.ViolationsMax = v
		}
		rep.ViolationsMean += float64(v) / float64(seeds)
		if v > 0 {
			rep.SeedsWithViolations++
		}
	}
	return rep, nil
}

// String renders a one-line campaign summary.
func (r *CampaignReport) String() string {
	return fmt.Sprintf("campaign over %d seeds: peak util %.3f–%.3f (mean %.3f), transient violations %d–%d (mean %.1f, %d/%d seeds affected)",
		r.Seeds, r.PeakMin, r.PeakMax, r.PeakMean,
		r.ViolationsMin, r.ViolationsMax, r.ViolationsMean,
		r.SeedsWithViolations, r.Seeds)
}
