// Chaos campaigns: seeded fault schedules and a stateful World that a
// controller drives block by block. The single InjectFailure hook of the
// original simulator covers one switch failure per replay; production
// migrations (paper §7.2) see *trains* of faults — out-of-band device
// rebuilds, flapping optics, traffic surges, and transiently failing drain
// RPCs — often several within one migration. A Schedule expresses such a
// train; a World replays it against the live topology so the control loop
// in internal/ctrl can observe, retry, and replan.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"klotski/internal/demand"
	"klotski/internal/migration"
	"klotski/internal/routing"
	"klotski/internal/topo"
)

// ErrTransient marks a fault that is expected to clear on retry — a drain
// RPC timeout, a busy controller. Executors should back off and retry
// rather than replan.
var ErrTransient = errors.New("sim: transient failure")

// FaultKind enumerates the injectable fault classes of §7.2.
type FaultKind int

const (
	// FaultSwitchDown takes a switch out of service out-of-band (device
	// rebuild, firmware upgrade) for the rest of the migration.
	FaultSwitchDown FaultKind = iota
	// FaultCircuitFlap deactivates a circuit for Steps actions, then
	// restores it (flapping optics).
	FaultCircuitFlap
	// FaultSurge multiplies a random fraction of demands (unexpected
	// traffic surge).
	FaultSurge
	// FaultTransient makes the next Attempts block applications fail with
	// ErrTransient (drain RPC timeouts); the block itself is untouched.
	FaultTransient
)

func (k FaultKind) String() string {
	switch k {
	case FaultSwitchDown:
		return "switch-down"
	case FaultCircuitFlap:
		return "circuit-flap"
	case FaultSurge:
		return "surge"
	case FaultTransient:
		return "transient"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is one scheduled fault. Step counts executed actions: the fault
// fires once at least Step blocks have been applied.
type Fault struct {
	Step int
	Kind FaultKind

	Switch   topo.SwitchID // FaultSwitchDown
	Circuit  topo.CircuitID
	Steps    int           // FaultCircuitFlap: actions until recovery
	Surge    *demand.Surge // FaultSurge
	Attempts int           // FaultTransient: consecutive failures (default 1)
}

// Schedule is a fault train, ordered or not — firing order is by Step.
type Schedule []Fault

// ScheduleOptions parameterizes RandomSchedule.
type ScheduleOptions struct {
	Faults          int     // number of faults (default 3)
	SurgeFraction   float64 // demands affected by a surge (default 0.05)
	SurgeMultiplier float64 // surge rate multiplier (default 1.2)
	MaxAttempts     int     // max transient failures per fault (default 2)
	FlapSteps       int     // actions until a flapped circuit recovers (default 2)
}

func (o ScheduleOptions) withDefaults() ScheduleOptions {
	if o.Faults <= 0 {
		o.Faults = 3
	}
	if o.SurgeFraction <= 0 {
		o.SurgeFraction = 0.05
	}
	if o.SurgeMultiplier <= 1 {
		o.SurgeMultiplier = 1.2
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 2
	}
	if o.FlapSteps <= 0 {
		o.FlapSteps = 2
	}
	return o
}

// RandomSchedule draws a seeded fault train for the task. Switch outages
// and circuit flaps only target equipment the migration does not itself
// operate (an outage of operated equipment is a planning conflict, not
// chaos — see pipeline.ReplanAfterOutage), and outages also spare demand
// endpoints — severing a traffic source kills the workload rather than
// stressing the migration. When no eligible equipment exists the draw
// falls back to transients and surges.
func RandomSchedule(task *migration.Task, seed int64, opts ScheduleOptions) Schedule {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(seed))

	operatedSw := make(map[topo.SwitchID]bool)
	operatedCk := make(map[topo.CircuitID]bool)
	for i := range task.Blocks {
		for _, s := range task.Blocks[i].Switches {
			operatedSw[s] = true
		}
		for _, c := range task.Blocks[i].Circuits {
			operatedCk[c] = true
		}
	}
	endpoint := make(map[topo.SwitchID]bool)
	for _, d := range task.Demands.Demands {
		endpoint[d.Src] = true
		endpoint[d.Dst] = true
	}
	var spareSw []topo.SwitchID
	for s := 0; s < task.Topo.NumSwitches(); s++ {
		id := topo.SwitchID(s)
		if !operatedSw[id] && !endpoint[id] && task.Topo.SwitchActive(id) {
			spareSw = append(spareSw, id)
		}
	}
	var spareCk []topo.CircuitID
	for c := 0; c < task.Topo.NumCircuits(); c++ {
		id := topo.CircuitID(c)
		if !operatedCk[id] && task.Topo.CircuitActive(id) {
			spareCk = append(spareCk, id)
		}
	}

	maxStep := task.NumActions()
	if maxStep < 1 {
		maxStep = 1
	}
	var sched Schedule
	for len(sched) < opts.Faults {
		step := 1 + rng.Intn(maxStep)
		switch rng.Intn(4) {
		case 0:
			if len(spareSw) == 0 {
				continue
			}
			sched = append(sched, Fault{Step: step, Kind: FaultSwitchDown,
				Switch: spareSw[rng.Intn(len(spareSw))]})
		case 1:
			if len(spareCk) == 0 {
				continue
			}
			sched = append(sched, Fault{Step: step, Kind: FaultCircuitFlap,
				Circuit: spareCk[rng.Intn(len(spareCk))],
				Steps:   1 + rng.Intn(opts.FlapSteps)})
		case 2:
			sched = append(sched, Fault{Step: step, Kind: FaultSurge,
				Surge: &demand.Surge{Fraction: opts.SurgeFraction, Multiplier: opts.SurgeMultiplier}})
		default:
			sched = append(sched, Fault{Step: step, Kind: FaultTransient,
				Attempts: 1 + rng.Intn(opts.MaxAttempts)})
		}
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].Step < sched[j].Step })
	return sched
}

// World is the live network a controller drives: the actual topology view,
// the actual demand level, and a fault schedule that fires as execution
// progresses. It is the ground truth the planner's model may drift from —
// the controller detects drift via Epoch and replans.
//
// World is not safe for concurrent use.
type World struct {
	task *migration.Task
	eval *routing.Evaluator
	view *topo.View
	rng  *rand.Rand

	schedule Schedule
	fired    []bool

	executed []int
	epoch    int

	downSwitches map[topo.SwitchID]bool
	flaps        map[topo.CircuitID]int // circuit → step at which it recovers

	demands        demand.Set
	demandsChanged bool

	transientLeft int
}

// NewWorld builds a world over the task's initial topology and demands.
func NewWorld(task *migration.Task, schedule Schedule, seed int64) *World {
	return &World{
		task:         task,
		eval:         routing.NewEvaluator(task.Topo),
		view:         task.Topo.NewView(),
		rng:          rand.New(rand.NewSource(seed)),
		schedule:     schedule,
		fired:        make([]bool, len(schedule)),
		downSwitches: make(map[topo.SwitchID]bool),
		flaps:        make(map[topo.CircuitID]int),
		demands:      task.Demands.Clone(),
	}
}

// Poll fires every due fault (Step ≤ executed actions) and processes flap
// recoveries, then returns the current epoch. The epoch increments on every
// out-of-band environment change — outage, flap, flap recovery, surge — so
// a controller that remembers the last epoch it planned against knows
// exactly when its plan's model went stale. Transient faults do not bump
// the epoch: they surface as Apply errors, not model drift.
func (w *World) Poll() int {
	step := len(w.executed)
	for i := range w.schedule {
		if w.fired[i] || w.schedule[i].Step > step {
			continue
		}
		w.fired[i] = true
		w.fire(&w.schedule[i])
	}
	for c, at := range w.flaps {
		if at <= step {
			delete(w.flaps, c)
			w.view.SetCircuitActive(c, true)
			w.epoch++
		}
	}
	return w.epoch
}

func (w *World) fire(f *Fault) {
	switch f.Kind {
	case FaultSwitchDown:
		w.view.SetSwitchActive(f.Switch, false)
		w.downSwitches[f.Switch] = true
		w.epoch++
	case FaultCircuitFlap:
		w.view.SetCircuitActive(f.Circuit, false)
		steps := f.Steps
		if steps <= 0 {
			steps = 1
		}
		w.flaps[f.Circuit] = len(w.executed) + steps
		w.epoch++
	case FaultSurge:
		if f.Surge != nil {
			w.demands = f.Surge.Apply(w.demands, w.rng)
			w.demandsChanged = true
			w.epoch++
		}
	case FaultTransient:
		n := f.Attempts
		if n <= 0 {
			n = 1
		}
		w.transientLeft += n
	}
}

// Epoch returns the environment-change counter without firing faults.
func (w *World) Epoch() int { return w.epoch }

// Apply executes one block against the live network. Pending transient
// faults consume the call and return ErrTransient (wrapped); the block is
// not applied and may be retried.
func (w *World) Apply(blockID int) error {
	if w.transientLeft > 0 {
		w.transientLeft--
		return fmt.Errorf("%w: block %q operation timed out", ErrTransient, w.task.Blocks[blockID].Name)
	}
	w.task.Apply(w.view, blockID)
	w.executed = append(w.executed, blockID)
	return nil
}

// Preapply fast-forwards the world through an already-executed prefix —
// journal recovery after a controller crash. Blocks are applied without
// transient faults (they were already retried in the previous life), but
// persistent faults due along the way still fire so outages and surges are
// reconstructed.
func (w *World) Preapply(executed []int) {
	for _, id := range executed {
		w.Poll()
		w.transientLeft = 0
		w.task.Apply(w.view, id)
		w.executed = append(w.executed, id)
	}
	w.Poll()
	w.transientLeft = 0
}

// Executed returns a copy of the applied block sequence.
func (w *World) Executed() []int {
	return append([]int(nil), w.executed...)
}

// DownSwitches lists switches taken down out-of-band, ascending.
func (w *World) DownSwitches() []topo.SwitchID {
	out := make([]topo.SwitchID, 0, len(w.downSwitches))
	for s := range w.downSwitches {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DownCircuits lists currently flapped (inactive) circuits, ascending.
func (w *World) DownCircuits() []topo.CircuitID {
	out := make([]topo.CircuitID, 0, len(w.flaps))
	for c := range w.flaps {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Demands returns a copy of the current (possibly surged) demand set.
func (w *World) Demands() demand.Set { return w.demands.Clone() }

// DemandsChanged reports whether any surge has fired.
func (w *World) DemandsChanged() bool { return w.demandsChanged }

// Observe evaluates the live network at the current demand level and
// returns the max utilization and whether the state satisfies all
// constraints — the controller's boundary check.
func (w *World) Observe(theta float64, split routing.SplitMode) (float64, bool) {
	if theta <= 0 {
		theta = 0.75
	}
	res, viol := w.eval.Evaluate(w.view, &w.demands, routing.CheckOpts{Theta: theta, Split: split})
	return res.MaxUtil, viol.OK()
}
