// Chaos campaigns: seeded fault schedules and a stateful World that a
// controller drives block by block. The single InjectFailure hook of the
// original simulator covers one switch failure per replay; production
// migrations (paper §7.2) see *trains* of faults — out-of-band device
// rebuilds, flapping optics, traffic surges, and transiently failing drain
// RPCs — often several within one migration. A Schedule expresses such a
// train; a World replays it against the live topology so the control loop
// in internal/ctrl can observe, retry, and replan.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"klotski/internal/demand"
	"klotski/internal/migration"
	"klotski/internal/routing"
	"klotski/internal/topo"
)

// ErrTransient marks a fault that is expected to clear on retry — a drain
// RPC timeout, a busy controller. Executors should back off and retry
// rather than replan.
var ErrTransient = errors.New("sim: transient failure")

// ErrTelemetry marks a demand-telemetry observation that produced no data —
// the collector is down or timed out. Controllers should back off, retry,
// and eventually degrade to conservative planning rather than stall.
var ErrTelemetry = errors.New("sim: telemetry unavailable")

// FaultKind enumerates the injectable fault classes of §7.2.
type FaultKind int

const (
	// FaultSwitchDown takes a switch out of service out-of-band (device
	// rebuild, firmware upgrade) for the rest of the migration.
	FaultSwitchDown FaultKind = iota
	// FaultCircuitFlap deactivates a circuit for Steps actions, then
	// restores it (flapping optics).
	FaultCircuitFlap
	// FaultSurge multiplies a random fraction of demands (unexpected
	// traffic surge). With Steps == 0 the surge is permanent — the service
	// behavior changed for good (§7.2's storage backup-placement change).
	// With Steps > 0 it is transient, like FaultCircuitFlap: after Steps
	// further actions the affected rates are divided back to their
	// pre-surge values, bumping the epoch again on recovery.
	FaultSurge
	// FaultTransient makes the next Attempts block applications fail with
	// ErrTransient (drain RPC timeouts); the block itself is untouched.
	FaultTransient
	// FaultTelemetryStale freezes the demand telemetry feed: the next
	// Steps ObserveDemands calls return the snapshot taken when the fault
	// fired, however far the live demand has drifted since. Telemetry
	// faults never bump the epoch — the network itself is unchanged; only
	// the controller's view of it is degraded.
	FaultTelemetryStale
	// FaultTelemetryDrop makes the next Steps ObserveDemands calls fail
	// outright with ErrTelemetry (collector down, timeout).
	FaultTelemetryDrop
	// FaultTelemetryCorrupt makes the next Steps ObserveDemands calls
	// return garbage rates — NaN, negative, or wildly inflated values — the
	// way a half-written aggregation or a unit mix-up looks in production.
	// Consumers must sanity-check before trusting (see ctrl's watchdog).
	FaultTelemetryCorrupt
)

func (k FaultKind) String() string {
	switch k {
	case FaultSwitchDown:
		return "switch-down"
	case FaultCircuitFlap:
		return "circuit-flap"
	case FaultSurge:
		return "surge"
	case FaultTransient:
		return "transient"
	case FaultTelemetryStale:
		return "telemetry-stale"
	case FaultTelemetryDrop:
		return "telemetry-drop"
	case FaultTelemetryCorrupt:
		return "telemetry-corrupt"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is one scheduled fault. Step counts executed actions: the fault
// fires once at least Step blocks have been applied.
type Fault struct {
	Step int
	Kind FaultKind

	Switch  topo.SwitchID // FaultSwitchDown
	Circuit topo.CircuitID
	// Steps is the recovery horizon of recoverable faults: for
	// FaultCircuitFlap, actions until the circuit comes back; for
	// FaultSurge, actions until the surged rates are divided back (0 =
	// permanent surge); for the telemetry kinds, the number of
	// ObserveDemands calls affected (default 1).
	Steps    int
	Surge    *demand.Surge // FaultSurge
	Attempts int           // FaultTransient: consecutive failures (default 1)
}

// Schedule is a fault train, ordered or not — firing order is by Step.
type Schedule []Fault

// ScheduleOptions parameterizes RandomSchedule.
type ScheduleOptions struct {
	Faults          int     // number of faults (default 3)
	SurgeFraction   float64 // demands affected by a surge (default 0.05)
	SurgeMultiplier float64 // surge rate multiplier (default 1.2)
	MaxAttempts     int     // max transient failures per fault (default 2)
	FlapSteps       int     // actions until a flapped circuit recovers (default 2)

	// Telemetry widens the draw to the telemetry fault kinds (stale, drop,
	// corrupt). Off by default so existing seeded schedules — and the
	// deterministic campaigns replaying them — are byte-identical to before
	// the telemetry kinds existed.
	Telemetry bool
	// TelemetrySteps is the number of ObserveDemands calls a telemetry
	// fault affects (default 2).
	TelemetrySteps int
	// SurgeSteps, when > 0, makes drawn surges transient: surged rates
	// recover after 1..SurgeSteps actions. 0 keeps surges permanent.
	SurgeSteps int
}

func (o ScheduleOptions) withDefaults() ScheduleOptions {
	if o.Faults <= 0 {
		o.Faults = 3
	}
	if o.SurgeFraction <= 0 {
		o.SurgeFraction = 0.05
	}
	if o.SurgeMultiplier <= 1 {
		o.SurgeMultiplier = 1.2
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 2
	}
	if o.FlapSteps <= 0 {
		o.FlapSteps = 2
	}
	if o.TelemetrySteps <= 0 {
		o.TelemetrySteps = 2
	}
	return o
}

// RandomSchedule draws a seeded fault train for the task. Switch outages
// and circuit flaps only target equipment the migration does not itself
// operate (an outage of operated equipment is a planning conflict, not
// chaos — see pipeline.ReplanAfterOutage), and outages also spare demand
// endpoints — severing a traffic source kills the workload rather than
// stressing the migration. When no eligible equipment exists the draw
// falls back to transients and surges.
func RandomSchedule(task *migration.Task, seed int64, opts ScheduleOptions) Schedule {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(seed))

	operatedSw := make(map[topo.SwitchID]bool)
	operatedCk := make(map[topo.CircuitID]bool)
	for i := range task.Blocks {
		for _, s := range task.Blocks[i].Switches {
			operatedSw[s] = true
		}
		for _, c := range task.Blocks[i].Circuits {
			operatedCk[c] = true
		}
	}
	endpoint := make(map[topo.SwitchID]bool)
	for _, d := range task.Demands.Demands {
		endpoint[d.Src] = true
		endpoint[d.Dst] = true
	}
	var spareSw []topo.SwitchID
	for s := 0; s < task.Topo.NumSwitches(); s++ {
		id := topo.SwitchID(s)
		if !operatedSw[id] && !endpoint[id] && task.Topo.SwitchActive(id) {
			spareSw = append(spareSw, id)
		}
	}
	var spareCk []topo.CircuitID
	for c := 0; c < task.Topo.NumCircuits(); c++ {
		id := topo.CircuitID(c)
		if !operatedCk[id] && task.Topo.CircuitActive(id) {
			spareCk = append(spareCk, id)
		}
	}

	maxStep := task.NumActions()
	if maxStep < 1 {
		maxStep = 1
	}
	// The draw modulus stays 4 when Telemetry is off so pre-telemetry
	// seeded schedules reproduce byte-identically.
	kinds := 4
	if opts.Telemetry {
		kinds = 7
	}
	var sched Schedule
	for len(sched) < opts.Faults {
		step := 1 + rng.Intn(maxStep)
		switch rng.Intn(kinds) {
		case 0:
			if len(spareSw) == 0 {
				continue
			}
			sched = append(sched, Fault{Step: step, Kind: FaultSwitchDown,
				Switch: spareSw[rng.Intn(len(spareSw))]})
		case 1:
			if len(spareCk) == 0 {
				continue
			}
			sched = append(sched, Fault{Step: step, Kind: FaultCircuitFlap,
				Circuit: spareCk[rng.Intn(len(spareCk))],
				Steps:   1 + rng.Intn(opts.FlapSteps)})
		case 2:
			steps := 0
			if opts.SurgeSteps > 0 {
				steps = 1 + rng.Intn(opts.SurgeSteps)
			}
			sched = append(sched, Fault{Step: step, Kind: FaultSurge, Steps: steps,
				Surge: &demand.Surge{Fraction: opts.SurgeFraction, Multiplier: opts.SurgeMultiplier}})
		case 3:
			sched = append(sched, Fault{Step: step, Kind: FaultTransient,
				Attempts: 1 + rng.Intn(opts.MaxAttempts)})
		case 4:
			sched = append(sched, Fault{Step: step, Kind: FaultTelemetryStale,
				Steps: 1 + rng.Intn(opts.TelemetrySteps)})
		case 5:
			sched = append(sched, Fault{Step: step, Kind: FaultTelemetryDrop,
				Steps: 1 + rng.Intn(opts.TelemetrySteps)})
		default:
			sched = append(sched, Fault{Step: step, Kind: FaultTelemetryCorrupt,
				Steps: 1 + rng.Intn(opts.TelemetrySteps)})
		}
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].Step < sched[j].Step })
	return sched
}

// World is the live network a controller drives: the actual topology view,
// the actual demand level, and a fault schedule that fires as execution
// progresses. It is the ground truth the planner's model may drift from —
// the controller detects drift via Epoch and replans.
//
// World is not safe for concurrent use.
type World struct {
	task *migration.Task
	eval *routing.Evaluator
	view *topo.View
	rng  *rand.Rand

	schedule Schedule
	fired    []bool

	executed []int
	epoch    int

	downSwitches map[topo.SwitchID]bool
	flaps        map[topo.CircuitID]int // circuit → step at which it recovers

	demands        demand.Set
	demandsChanged bool

	// surgeUndos holds pending transient-surge recoveries: at the recorded
	// step the affected rates are divided back by the surge multiplier.
	surgeUndos []surgeUndo

	// growth is organic per-action demand growth applied silently on every
	// Apply — drift the controller can only see through telemetry, never
	// through the epoch counter.
	growth float64

	// Telemetry fault state: remaining affected ObserveDemands calls per
	// kind (drop > corrupt > stale priority when several overlap) and the
	// snapshot a stale feed keeps serving.
	telDrop     int
	telCorrupt  int
	telStale    int
	telSnapshot demand.Set

	transientLeft int
}

// surgeUndo records how to roll back one transient surge.
type surgeUndo struct {
	step       int // executed-action count at which the surge recovers
	multiplier float64
	hit        []int32 // affected demand indices
}

// NewWorld builds a world over the task's initial topology and demands.
func NewWorld(task *migration.Task, schedule Schedule, seed int64) *World {
	return &World{
		task:         task,
		eval:         routing.NewEvaluator(task.Topo),
		view:         task.Topo.NewView(),
		rng:          rand.New(rand.NewSource(seed)),
		schedule:     schedule,
		fired:        make([]bool, len(schedule)),
		downSwitches: make(map[topo.SwitchID]bool),
		flaps:        make(map[topo.CircuitID]int),
		demands:      task.Demands.Clone(),
	}
}

// Poll fires every due fault (Step ≤ executed actions) and processes flap
// recoveries, then returns the current epoch. The epoch increments on every
// out-of-band environment change — outage, flap, flap recovery, surge — so
// a controller that remembers the last epoch it planned against knows
// exactly when its plan's model went stale. Transient faults do not bump
// the epoch: they surface as Apply errors, not model drift.
func (w *World) Poll() int {
	step := len(w.executed)
	for i := range w.schedule {
		if w.fired[i] || w.schedule[i].Step > step {
			continue
		}
		w.fired[i] = true
		w.fire(&w.schedule[i])
	}
	for c, at := range w.flaps {
		if at <= step {
			delete(w.flaps, c)
			w.view.SetCircuitActive(c, true)
			w.epoch++
		}
	}
	// Transient-surge recoveries: divide the affected rates back. Like a
	// flap recovery this is an out-of-band environment change, so it bumps
	// the epoch.
	undos := w.surgeUndos[:0]
	for _, u := range w.surgeUndos {
		if u.step > step {
			undos = append(undos, u)
			continue
		}
		for _, di := range u.hit {
			w.demands.Demands[di].Rate /= u.multiplier
		}
		w.demandsChanged = true
		w.epoch++
	}
	w.surgeUndos = undos
	return w.epoch
}

func (w *World) fire(f *Fault) {
	switch f.Kind {
	case FaultSwitchDown:
		w.view.SetSwitchActive(f.Switch, false)
		w.downSwitches[f.Switch] = true
		w.epoch++
	case FaultCircuitFlap:
		w.view.SetCircuitActive(f.Circuit, false)
		steps := f.Steps
		if steps <= 0 {
			steps = 1
		}
		w.flaps[f.Circuit] = len(w.executed) + steps
		w.epoch++
	case FaultSurge:
		if f.Surge != nil {
			var hit []int32
			w.demands, hit = f.Surge.ApplyTracked(w.demands, w.rng)
			w.demandsChanged = true
			w.epoch++
			if f.Steps > 0 && len(hit) > 0 {
				w.surgeUndos = append(w.surgeUndos, surgeUndo{
					step:       len(w.executed) + f.Steps,
					multiplier: f.Surge.Multiplier,
					hit:        hit,
				})
			}
		}
	case FaultTransient:
		n := f.Attempts
		if n <= 0 {
			n = 1
		}
		w.transientLeft += n
	case FaultTelemetryStale:
		w.telStale += observationSteps(f)
		w.telSnapshot = w.demands.Clone()
	case FaultTelemetryDrop:
		w.telDrop += observationSteps(f)
	case FaultTelemetryCorrupt:
		w.telCorrupt += observationSteps(f)
	}
}

func observationSteps(f *Fault) int {
	if f.Steps <= 0 {
		return 1
	}
	return f.Steps
}

// Epoch returns the environment-change counter without firing faults.
func (w *World) Epoch() int { return w.epoch }

// SetDemandGrowth configures silent organic demand growth: after every
// applied block, every rate is multiplied by (1+perStep). Unlike a surge
// this never bumps the epoch — real traffic growth has no change event; a
// controller can only notice it by observing telemetry, which is exactly
// the drift-detection loop this exists to exercise.
func (w *World) SetDemandGrowth(perStep float64) { w.growth = perStep }

// Apply executes one block against the live network. Pending transient
// faults consume the call and return ErrTransient (wrapped); the block is
// not applied and may be retried.
func (w *World) Apply(blockID int) error {
	if w.transientLeft > 0 {
		w.transientLeft--
		return fmt.Errorf("%w: block %q operation timed out", ErrTransient, w.task.Blocks[blockID].Name)
	}
	w.task.Apply(w.view, blockID)
	w.executed = append(w.executed, blockID)
	if w.growth != 0 {
		for i := range w.demands.Demands {
			w.demands.Demands[i].Rate *= 1 + w.growth
		}
		w.demandsChanged = true
	}
	return nil
}

// Preapply fast-forwards the world through an already-executed prefix —
// journal recovery after a controller crash. Blocks are applied without
// transient faults (they were already retried in the previous life), but
// persistent faults due along the way still fire so outages and surges are
// reconstructed.
func (w *World) Preapply(executed []int) {
	for _, id := range executed {
		w.Poll()
		w.transientLeft = 0
		w.task.Apply(w.view, id)
		w.executed = append(w.executed, id)
	}
	w.Poll()
	w.transientLeft = 0
}

// Executed returns a copy of the applied block sequence.
func (w *World) Executed() []int {
	return append([]int(nil), w.executed...)
}

// DownSwitches lists switches taken down out-of-band, ascending.
func (w *World) DownSwitches() []topo.SwitchID {
	out := make([]topo.SwitchID, 0, len(w.downSwitches))
	for s := range w.downSwitches {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DownCircuits lists currently flapped (inactive) circuits, ascending.
func (w *World) DownCircuits() []topo.CircuitID {
	out := make([]topo.CircuitID, 0, len(w.flaps))
	for c := range w.flaps {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Demands returns a copy of the current (possibly surged) demand set.
func (w *World) Demands() demand.Set { return w.demands.Clone() }

// ObserveDemands is the demand-telemetry channel: what a controller reads
// when it asks "what is the network carrying right now". Normally it
// returns a copy of the live demands; pending telemetry faults degrade the
// answer instead — a dropped observation fails with ErrTelemetry, a corrupt
// one returns garbage rates (NaN, negative, or wildly inflated), and a
// stale one replays the snapshot taken when the feed froze. When faults of
// several kinds are pending, drop outranks corrupt outranks stale — the
// deadest feed wins. Each call consumes one pending affected observation.
func (w *World) ObserveDemands() (demand.Set, error) {
	switch {
	case w.telDrop > 0:
		w.telDrop--
		return demand.Set{}, fmt.Errorf("%w: demand collector timed out", ErrTelemetry)
	case w.telCorrupt > 0:
		w.telCorrupt--
		bad := w.demands.Clone()
		for i := range bad.Demands {
			switch w.rng.Intn(3) {
			case 0:
				bad.Demands[i].Rate = math.NaN()
			case 1:
				bad.Demands[i].Rate = -bad.Demands[i].Rate
			default:
				bad.Demands[i].Rate *= 1e9
			}
		}
		return bad, nil
	case w.telStale > 0:
		w.telStale--
		return w.telSnapshot.Clone(), nil
	}
	return w.demands.Clone(), nil
}

// DemandsChanged reports whether any surge has fired.
func (w *World) DemandsChanged() bool { return w.demandsChanged }

// Observe evaluates the live network at the current demand level and
// returns the max utilization and whether the state satisfies all
// constraints — the controller's boundary check.
func (w *World) Observe(theta float64, split routing.SplitMode) (float64, bool) {
	if theta <= 0 {
		theta = 0.75
	}
	res, viol := w.eval.Evaluate(w.view, &w.demands, routing.CheckOpts{Theta: theta, Split: split})
	return res.MaxUtil, viol.OK()
}
