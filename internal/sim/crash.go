package sim

// Crash-surface helpers for durability testing. Journals in this
// codebase are newline-framed record streams (the KJ1 envelope), so a
// process killed mid-append leaves either a clean prefix of records or a
// clean prefix plus one torn line. These helpers enumerate and
// manufacture exactly those on-disk states — plus outright corruption —
// so recovery tests can replay a kill at every record boundary, a tear
// at every byte of the final record, and a flipped bit anywhere, without
// actually racing a SIGKILL against the file system.

// RecordBoundaries returns every prefix length of data that ends exactly
// on a record boundary: 0 (nothing durable yet) and the offset after
// each newline. Truncating a journal to any returned length simulates a
// crash between two appends; truncating anywhere else simulates a crash
// mid-append (a torn tail).
func RecordBoundaries(data []byte) []int64 {
	bounds := []int64{0}
	for i, b := range data {
		if b == '\n' {
			bounds = append(bounds, int64(i+1))
		}
	}
	return bounds
}

// Tear returns a copy of data truncated to n bytes — the journal a crash
// at that write offset leaves behind. n past the end returns the whole
// journal.
func Tear(data []byte, n int64) []byte {
	if n > int64(len(data)) {
		n = int64(len(data))
	}
	return append([]byte(nil), data[:n]...)
}

// FlipByte returns a copy of data with the byte at off inverted —
// bit rot or a misdirected write, the damage checksummed records must
// detect rather than trust.
func FlipByte(data []byte, off int64) []byte {
	out := append([]byte(nil), data...)
	if off >= 0 && off < int64(len(out)) {
		out[off] ^= 0xFF
	}
	return out
}
