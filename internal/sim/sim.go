// Package sim executes migration plans step by step against the routing
// model, the way a field rollout would experience them.
//
// Planners check network states at run boundaries, because the actions of a
// run execute "in parallel" (paper §3). In reality that parallelism is
// asynchronous: circuits drain one at a time, and while a run is in flight
// the network passes through partial states the planner never checked —
// this is exactly the traffic-funneling phenomenon of §2.2. The simulator
// replays a plan with configurable intra-run asynchrony and reports both
// boundary safety (must hold for a valid plan) and transient excursions
// (which funneling headroom, core.Options.FunnelFactor, is designed to
// absorb). It can also inject demand surges and switch failures mid-flight
// (§7.2) to drive replanning flows.
package sim

import (
	"fmt"
	"math/rand"

	"klotski/internal/core"
	"klotski/internal/demand"
	"klotski/internal/migration"
	"klotski/internal/routing"
	"klotski/internal/topo"
)

// Granularity controls how finely the simulator interleaves intra-run
// asynchrony.
type Granularity int

const (
	// GranularityRun applies each run atomically: only boundary states are
	// observed (what the planner guarantees).
	GranularityRun Granularity = iota
	// GranularityBlock applies a run's blocks one at a time in shuffled
	// order, observing every partial state.
	GranularityBlock
	// GranularityCircuit additionally drains each block's circuits one at
	// a time — the worst-case asynchrony that produces textbook traffic
	// funneling.
	GranularityCircuit
)

// Options parameterizes a simulation.
type Options struct {
	Theta       float64           // utilization bound (default 0.75)
	Split       routing.SplitMode // traffic splitting policy (ECMP or WCMP)
	Granularity Granularity       // intra-run asynchrony (default GranularityRun)
	Seed        int64             // shuffle seed for asynchrony order

	// Forecast grows demand as steps complete (§7.1).
	Forecast demand.Forecast

	// Surge, when non-nil, multiplies a fraction of demands at the given
	// run index (§7.2 "unexpected traffic surge").
	SurgeAtRun int
	Surge      *demand.Surge

	// InjectFailure takes FailSwitch down just before run FailAtRun
	// executes (§7.2 "failures during operation duration").
	InjectFailure bool
	FailAtRun     int
	FailSwitch    topo.SwitchID

	// Faults is a chaos schedule fired by executed-action count as the
	// replay progresses — the multi-fault generalization of InjectFailure.
	// FaultTransient entries are ignored here: the replay has no retry
	// loop (see internal/ctrl for the closed-loop executor that does).
	Faults Schedule
}

// StepReport records what one run did to the network.
type StepReport struct {
	Run        int
	ActionType string
	Blocks     int

	BoundaryUtil   float64 // max utilization at the run boundary
	BoundaryUnsafe bool    // boundary state violated constraints
	Boundary       routing.Violation

	// Transient excursions observed inside the run (asynchrony only).
	TransientPeakUtil  float64
	TransientViolation int // partial states over θ or unreachable
}

// Report summarizes a full plan execution.
type Report struct {
	Steps     []StepReport
	Completed bool

	BoundaryViolations  int
	TransientViolations int
	PeakUtil            float64 // worst utilization anywhere, any time

	// HaltedAt is the run index where execution stopped (boundary
	// violation with HaltOnViolation), or -1.
	HaltedAt int
}

// Executor replays plans over a task.
type Executor struct {
	task *migration.Task
	eval *routing.Evaluator

	// HaltOnViolation stops execution at the first unsafe boundary
	// instead of recording it and continuing.
	HaltOnViolation bool
}

// NewExecutor returns an executor for the task.
func NewExecutor(task *migration.Task) *Executor {
	return &Executor{task: task, eval: routing.NewEvaluator(task.Topo)}
}

// Execute replays the block sequence and returns the execution report. The
// sequence must be a valid plan for the task (use core.VerifyPlan first;
// Execute itself only validates ordering).
func (e *Executor) Execute(seq []int, opts Options) (*Report, error) {
	if err := core.ValidateSequence(e.task, seq, nil); err != nil {
		return nil, err
	}
	theta := opts.Theta
	if theta <= 0 {
		theta = 0.75
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	task := e.task
	view := task.Topo.NewView()
	demands := task.Demands.Clone()

	report := &Report{HaltedAt: -1}
	runs := groupRuns(task, seq)
	stepsDone := 0
	faultFired := make([]bool, len(opts.Faults))
	flapRecovery := make(map[topo.CircuitID]int)
	type surgeRecovery struct {
		step       int
		multiplier float64
		hit        []int32
	}
	var surgeRecoveries []surgeRecovery
	for ri, run := range runs {
		if opts.InjectFailure && ri == opts.FailAtRun {
			view.DrainSwitch(opts.FailSwitch)
		}
		if opts.Surge != nil && ri == opts.SurgeAtRun {
			demands = opts.Surge.Apply(demands, rng)
		}
		// Chaos schedule: fire due faults and recover expired flaps at run
		// granularity (the replay observes at run boundaries).
		for c, at := range flapRecovery {
			if at <= stepsDone {
				delete(flapRecovery, c)
				view.SetCircuitActive(c, true)
			}
		}
		keep := surgeRecoveries[:0]
		for _, sr := range surgeRecoveries {
			if sr.step > stepsDone {
				keep = append(keep, sr)
				continue
			}
			for _, di := range sr.hit {
				demands.Demands[di].Rate /= sr.multiplier
			}
		}
		surgeRecoveries = keep
		for fi := range opts.Faults {
			f := &opts.Faults[fi]
			if faultFired[fi] || f.Step > stepsDone {
				continue
			}
			faultFired[fi] = true
			switch f.Kind {
			case FaultSwitchDown:
				view.SetSwitchActive(f.Switch, false)
			case FaultCircuitFlap:
				view.SetCircuitActive(f.Circuit, false)
				steps := f.Steps
				if steps <= 0 {
					steps = 1
				}
				flapRecovery[f.Circuit] = stepsDone + steps
			case FaultSurge:
				if f.Surge != nil {
					var hit []int32
					demands, hit = f.Surge.ApplyTracked(demands, rng)
					if f.Steps > 0 && len(hit) > 0 {
						surgeRecoveries = append(surgeRecoveries, surgeRecovery{
							step: stepsDone + f.Steps, multiplier: f.Surge.Multiplier, hit: hit})
					}
				}
			case FaultTransient:
				// No retry loop here; nothing to fail.
			default:
				// Telemetry faults degrade the controller's observation
				// channel (internal/ctrl); the open-loop replay reads
				// ground truth directly and is unaffected.
			}
		}
		grown := opts.Forecast.At(demands, stepsDone)

		sr := StepReport{
			Run:        ri + 1,
			ActionType: task.Types[run.ty].Name,
			Blocks:     len(run.blocks),
		}

		// Intra-run asynchrony: observe partial states per the granularity.
		switch opts.Granularity {
		case GranularityRun:
			for _, id := range run.blocks {
				task.Apply(view, id)
			}
		case GranularityBlock, GranularityCircuit:
			order := append([]int(nil), run.blocks...)
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			for bi, id := range order {
				if opts.Granularity == GranularityCircuit {
					e.applyBlockCircuitwise(view, id, rng, grown, theta, opts.Split, &sr)
				} else {
					task.Apply(view, id)
				}
				last := bi == len(order)-1
				if !last {
					e.observeTransient(view, &grown, theta, opts.Split, &sr)
				}
			}
		}
		stepsDone += len(run.blocks)

		// Boundary check: this is the state the planner guaranteed.
		res, viol := e.eval.Evaluate(view, &grown, routing.CheckOpts{Theta: theta, Split: opts.Split})
		sr.BoundaryUtil = res.MaxUtil
		if res.MaxUtil > report.PeakUtil {
			report.PeakUtil = res.MaxUtil
		}
		if !viol.OK() {
			sr.BoundaryUnsafe = true
			sr.Boundary = viol
			report.BoundaryViolations++
		}
		report.Steps = append(report.Steps, sr)
		report.TransientViolations += sr.TransientViolation
		if sr.TransientPeakUtil > report.PeakUtil {
			report.PeakUtil = sr.TransientPeakUtil
		}
		if sr.BoundaryUnsafe && e.HaltOnViolation {
			report.HaltedAt = ri
			return report, nil
		}
	}
	report.Completed = true
	return report, nil
}

// applyBlockCircuitwise flips a block's elements one at a time, observing
// the network after each flip — the worst-case asynchrony.
func (e *Executor) applyBlockCircuitwise(view *topo.View, blockID int, rng *rand.Rand, ds demand.Set, theta float64, split routing.SplitMode, sr *StepReport) {
	task := e.task
	b := &task.Blocks[blockID]
	undrain := task.Types[b.Type].Op == migration.Undrain

	// Switch-level flips first (a switch drain takes all its circuits with
	// it); then explicit circuits.
	switches := append([]topo.SwitchID(nil), b.Switches...)
	rng.Shuffle(len(switches), func(i, j int) { switches[i], switches[j] = switches[j], switches[i] })
	for i, s := range switches {
		view.SetSwitchActive(s, undrain)
		if i < len(switches)-1 || len(b.Circuits) > 0 {
			e.observeTransient(view, &ds, theta, split, sr)
		}
	}
	circuits := append([]topo.CircuitID(nil), b.Circuits...)
	rng.Shuffle(len(circuits), func(i, j int) { circuits[i], circuits[j] = circuits[j], circuits[i] })
	for i, c := range circuits {
		view.SetCircuitActive(c, undrain)
		if i < len(circuits)-1 {
			e.observeTransient(view, &ds, theta, split, sr)
		}
	}
}

func (e *Executor) observeTransient(view *topo.View, ds *demand.Set, theta float64, split routing.SplitMode, sr *StepReport) {
	res, viol := e.eval.Evaluate(view, ds, routing.CheckOpts{Theta: theta, Split: split})
	if res.MaxUtil > sr.TransientPeakUtil {
		sr.TransientPeakUtil = res.MaxUtil
	}
	if !viol.OK() && viol.Kind != routing.ViolationPorts {
		// Port overflows mid-run are expected (boundary semantics);
		// utilization and reachability excursions are the funneling
		// signal.
		sr.TransientViolation++
	}
}

type runGroup struct {
	ty     migration.ActionType
	blocks []int
}

func groupRuns(task *migration.Task, seq []int) []runGroup {
	var runs []runGroup
	for _, id := range seq {
		ty := task.Blocks[id].Type
		if len(runs) == 0 || runs[len(runs)-1].ty != ty {
			runs = append(runs, runGroup{ty: ty})
		}
		runs[len(runs)-1].blocks = append(runs[len(runs)-1].blocks, id)
	}
	return runs
}

// String renders a one-line summary of the report.
func (r *Report) String() string {
	status := "completed"
	if !r.Completed {
		status = fmt.Sprintf("halted at run %d", r.HaltedAt+1)
	}
	return fmt.Sprintf("%s: %d runs, peak util %.3f, %d boundary / %d transient violations",
		status, len(r.Steps), r.PeakUtil, r.BoundaryViolations, r.TransientViolations)
}
