// Package report renders migration plans for humans: a text timeline of
// the ordered phases with capacity and utilization annotations, the view
// operators review before signing off on field work.
package report

import (
	"fmt"
	"io"
	"strings"

	"klotski/internal/npd"
)

// Timeline writes a phase-per-line overview of a plan document:
//
//	plan for region-B: cost 6, 12 actions in 6 phases (θ=0.75)
//	 1 drain   drain-hgrid-v1-grid    ×3 [██████████████░░░░]  58.7%  120.8 Tbps
//	 2 undrain undrain-hgrid-v2-grid  ×3 [█████████░░░░░░░░░]  38.9%  132.2 Tbps
//	...
//
// The bar shows the phase's peak utilization against θ; a bar touching its
// right edge is a phase with no remaining safety margin.
func Timeline(w io.Writer, doc *npd.PlanDocument) error {
	if _, err := fmt.Fprintf(w, "plan for %s: cost %g, %d actions in %d phases (θ=%.2f)\n",
		doc.Task, doc.Cost, doc.Actions, len(doc.Phases), doc.Theta); err != nil {
		return err
	}
	nameW := 0
	for _, ph := range doc.Phases {
		if len(ph.ActionType) > nameW {
			nameW = len(ph.ActionType)
		}
	}
	for _, ph := range doc.Phases {
		bar := UtilBar(ph.MaxUtilization, doc.Theta, 18)
		if _, err := fmt.Fprintf(w, "%3d %-7s %-*s ×%-3d [%s] %5.1f%%  %7.1f Tbps up\n",
			ph.Index, ph.Op, nameW, ph.ActionType, len(ph.Blocks), bar,
			ph.MaxUtilization*100, ph.CapacityTbps); err != nil {
			return err
		}
	}
	return nil
}

// UtilBar renders utilization as a fixed-width bar scaled so the bound θ
// is the full width; utilization beyond θ overflows with '!' markers.
func UtilBar(util, theta float64, width int) string {
	if width <= 0 {
		width = 10
	}
	if theta <= 0 {
		theta = 0.75
	}
	filled := int(util / theta * float64(width))
	over := 0
	if filled > width {
		over = filled - width
		if over > 3 {
			over = 3
		}
		filled = width
	}
	var b strings.Builder
	for i := 0; i < filled; i++ {
		b.WriteRune('█')
	}
	for i := filled; i < width; i++ {
		b.WriteRune('░')
	}
	for i := 0; i < over; i++ {
		b.WriteRune('!')
	}
	return b.String()
}

// Margins writes the per-phase safety margin (θ − peak utilization) and
// flags the tightest phase — the step where the migration spends its
// headroom and the first candidate for re-planning when demand grows.
func Margins(w io.Writer, doc *npd.PlanDocument) error {
	tightest, tightestMargin := -1, 1.0
	for i, ph := range doc.Phases {
		margin := doc.Theta - ph.MaxUtilization
		if margin < tightestMargin {
			tightestMargin = margin
			tightest = i
		}
		if _, err := fmt.Fprintf(w, "phase %2d: margin %+.3f\n", ph.Index, margin); err != nil {
			return err
		}
	}
	if tightest >= 0 {
		if _, err := fmt.Fprintf(w, "tightest: phase %d (%s) with %.3f of headroom\n",
			doc.Phases[tightest].Index, doc.Phases[tightest].ActionType, tightestMargin); err != nil {
			return err
		}
	}
	return nil
}
