package report

import (
	"strings"
	"testing"

	"klotski/internal/core"
	"klotski/internal/gen"
	"klotski/internal/npd"
)

func buildDoc(t *testing.T) *npd.PlanDocument {
	t.Helper()
	s, err := gen.TopologyA(0.2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.PlanAStar(s.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := npd.BuildPlanDocument(s.Task, plan, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestTimeline(t *testing.T) {
	doc := buildDoc(t)
	var b strings.Builder
	if err := Timeline(&b, doc); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "plan for A") || !strings.Contains(out, "θ=0.75") {
		t.Errorf("header missing:\n%s", out)
	}
	if strings.Count(out, "\n") != len(doc.Phases)+1 {
		t.Errorf("want one line per phase plus header:\n%s", out)
	}
	if !strings.Contains(out, "drain") || !strings.Contains(out, "Tbps up") {
		t.Errorf("phase lines incomplete:\n%s", out)
	}
}

func TestUtilBar(t *testing.T) {
	cases := []struct {
		util, theta float64
		width       int
		filled      int
		over        bool
	}{
		{0, 0.75, 10, 0, false},
		{0.375, 0.75, 10, 5, false},
		{0.75, 0.75, 10, 10, false},
		{0.9, 0.75, 10, 10, true},
	}
	for _, c := range cases {
		bar := UtilBar(c.util, c.theta, c.width)
		if got := strings.Count(bar, "█"); got != c.filled {
			t.Errorf("UtilBar(%v): %d filled, want %d (%q)", c.util, got, c.filled, bar)
		}
		if over := strings.Contains(bar, "!"); over != c.over {
			t.Errorf("UtilBar(%v): overflow %v, want %v (%q)", c.util, over, c.over, bar)
		}
	}
	// Degenerate arguments fall back to defaults instead of panicking.
	if UtilBar(0.5, 0, 0) == "" {
		t.Error("degenerate UtilBar should render something")
	}
}

func TestMargins(t *testing.T) {
	doc := buildDoc(t)
	var b strings.Builder
	if err := Margins(&b, doc); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "tightest: phase") {
		t.Errorf("margins output missing tightest phase:\n%s", out)
	}
	if strings.Count(out, "margin") != len(doc.Phases) {
		t.Errorf("want one margin per phase:\n%s", out)
	}
	if strings.Contains(out, "margin -") {
		t.Errorf("safe plan shows negative margin:\n%s", out)
	}
}
