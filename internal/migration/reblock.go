package migration

import (
	"fmt"
	"math"
	"sort"

	"klotski/internal/topo"
)

// Operation-block organization policies (paper §4.1, §5, Fig. 11).
//
// Generators build the default operation blocks from domain knowledge
// (grids for HGRID migrations, per-plane groups for SSW forklifts, per-EB
// groups for DMAG). This file provides the transformations the paper
// evaluates on top of that default: re-blocking by a merge/split factor
// (Fig. 11) and falling back to raw symmetry blocks (the "Klotski w/o OB"
// ablation and the Janus baseline's granularity).

// Reblock returns a copy of the task whose operation blocks have been
// merged or split so the block count is approximately factor times the
// original. factor > 1 splits each block into round(factor) pieces
// (finer-grained actions, potentially cheaper plans, slower planning);
// factor < 1 merges runs of round(1/factor) same-type blocks (coarser
// actions, faster planning, potentially infeasible). factor == 1 returns a
// logical copy.
func Reblock(t *Task, factor float64) (*Task, error) {
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return nil, fmt.Errorf("migration: invalid reblock factor %v", factor)
	}
	nt := &Task{
		Name:             fmt.Sprintf("%s[x%g]", t.Name, factor),
		Topo:             t.Topo,
		Types:            append([]ActionTypeInfo(nil), t.Types...),
		Demands:          t.Demands,
		TopologyChanging: t.TopologyChanging,
	}
	switch {
	case factor > 1:
		k := int(math.Round(factor))
		if k < 2 {
			k = 2
		}
		for i := range t.Blocks {
			for _, nb := range splitBlock(t, &t.Blocks[i], k) {
				nt.AddBlock(nb)
			}
		}
	case factor < 1:
		group := int(math.Round(1 / factor))
		if group < 2 {
			group = 2
		}
		// Merge blocks type by type, in canonical order, preferring to keep
		// same-DC blocks together: sort each type's blocks by (DC, ID).
		for ty := range t.Types {
			ids := append([]int(nil), t.BlocksOfType(ActionType(ty))...)
			sort.Slice(ids, func(i, j int) bool {
				a, b := &t.Blocks[ids[i]], &t.Blocks[ids[j]]
				if a.DC != b.DC {
					return a.DC < b.DC
				}
				return a.ID < b.ID
			})
			for start := 0; start < len(ids); start += group {
				end := start + group
				if end > len(ids) {
					end = len(ids)
				}
				merged := Block{
					Type: ActionType(ty),
					Name: fmt.Sprintf("%s+%d", t.Blocks[ids[start]].Name, end-start-1),
					DC:   t.Blocks[ids[start]].DC,
				}
				for _, id := range ids[start:end] {
					b := &t.Blocks[id]
					merged.Switches = append(merged.Switches, b.Switches...)
					merged.Circuits = append(merged.Circuits, b.Circuits...)
					if b.DC != merged.DC {
						merged.DC = -1 // spans DCs
					}
				}
				nt.AddBlock(merged)
			}
		}
	default:
		for i := range t.Blocks {
			b := t.Blocks[i]
			b.Switches = append([]topo.SwitchID(nil), b.Switches...)
			b.Circuits = append([]topo.CircuitID(nil), b.Circuits...)
			nt.AddBlock(b)
		}
	}
	return nt, nil
}

// splitBlock partitions a block into up to k non-empty sub-blocks. Switches
// are dealt round-robin after sorting by ID so the pieces stay balanced;
// each explicitly-operated circuit follows the piece owning one of its
// endpoints, defaulting to piece 0 when no endpoint is operated by this
// block (circuit-only blocks split their circuit list directly).
func splitBlock(t *Task, b *Block, k int) []Block {
	if len(b.Switches) == 0 {
		// Circuit-only block: split the circuit list.
		if k > len(b.Circuits) {
			k = len(b.Circuits)
		}
		if k <= 1 {
			return []Block{{Type: b.Type, Name: b.Name, DC: b.DC,
				Circuits: append([]topo.CircuitID(nil), b.Circuits...)}}
		}
		out := make([]Block, k)
		for i := range out {
			out[i] = Block{Type: b.Type, Name: fmt.Sprintf("%s/%d", b.Name, i), DC: b.DC}
		}
		for i, c := range b.Circuits {
			p := &out[i%k]
			p.Circuits = append(p.Circuits, c)
		}
		return out
	}

	if k > len(b.Switches) {
		k = len(b.Switches)
	}
	sw := append([]topo.SwitchID(nil), b.Switches...)
	sort.Slice(sw, func(i, j int) bool { return sw[i] < sw[j] })
	out := make([]Block, k)
	owner := make(map[topo.SwitchID]int, len(sw))
	for i := range out {
		out[i] = Block{Type: b.Type, Name: fmt.Sprintf("%s/%d", b.Name, i), DC: b.DC}
	}
	// Contiguous ranges keep physically adjacent switches (consecutive IDs
	// from the generators) together, preserving locality within pieces.
	per := (len(sw) + k - 1) / k
	for i, s := range sw {
		p := i / per
		if p >= k {
			p = k - 1
		}
		out[p].Switches = append(out[p].Switches, s)
		owner[s] = p
	}
	for _, c := range b.Circuits {
		ck := t.Topo.Circuit(c)
		p := 0
		if o, ok := owner[ck.A]; ok {
			p = o
		} else if o, ok := owner[ck.B]; ok {
			p = o
		}
		out[p].Circuits = append(out[p].Circuits, c)
	}
	// Drop any empty pieces (possible when k ≈ len(sw)).
	res := out[:0]
	for i := range out {
		if len(out[i].Switches) > 0 || len(out[i].Circuits) > 0 {
			res = append(res, out[i])
		}
	}
	return res
}

// SymmetryGranularity returns a copy of the task re-blocked at strict
// symmetry-block granularity: each operation block is replaced by one block
// per symmetry class of its switches (circuit-only blocks are split per
// circuit-equivalence class). This is the granularity the Janus baseline
// plans at, and the "Klotski w/o OB" ablation of Fig. 10.
func SymmetryGranularity(t *Task) *Task {
	nt := &Task{
		Name:             t.Name + "[sym]",
		Topo:             t.Topo,
		Types:            append([]ActionTypeInfo(nil), t.Types...),
		Demands:          t.Demands,
		TopologyChanging: t.TopologyChanging,
	}
	for i := range t.Blocks {
		b := &t.Blocks[i]
		if len(b.Switches) == 0 {
			for _, nb := range splitCircuitsBySymmetry(t, b) {
				nt.AddBlock(nb)
			}
			continue
		}
		owner := make(map[topo.SwitchID]int)
		symBlocks := StrictSymmetryBlocks(t.Topo, b.Switches)
		pieces := make([]Block, len(symBlocks))
		for j, sb := range symBlocks {
			pieces[j] = Block{
				Type:     b.Type,
				Name:     fmt.Sprintf("%s/sym%d", b.Name, j),
				DC:       b.DC,
				Switches: sb,
			}
			for _, s := range sb {
				owner[s] = j
			}
		}
		for _, c := range b.Circuits {
			ck := t.Topo.Circuit(c)
			j := 0
			if o, ok := owner[ck.A]; ok {
				j = o
			} else if o, ok := owner[ck.B]; ok {
				j = o
			}
			pieces[j].Circuits = append(pieces[j].Circuits, c)
		}
		for _, p := range pieces {
			nt.AddBlock(p)
		}
	}
	return nt
}

// splitCircuitsBySymmetry groups a circuit-only block's circuits into
// equivalence classes by the structural position of their endpoints
// (role, DC, plane, grid, generation on both sides plus capacity).
func splitCircuitsBySymmetry(t *Task, b *Block) []Block {
	classes := make(map[string][]topo.CircuitID)
	var order []string
	for _, c := range b.Circuits {
		ck := t.Topo.Circuit(c)
		key := circuitClassKey(t.Topo, ck)
		if _, ok := classes[key]; !ok {
			order = append(order, key)
		}
		classes[key] = append(classes[key], c)
	}
	sort.Strings(order)
	out := make([]Block, 0, len(order))
	for j, key := range order {
		out = append(out, Block{
			Type:     b.Type,
			Name:     fmt.Sprintf("%s/csym%d", b.Name, j),
			DC:       b.DC,
			Circuits: classes[key],
		})
	}
	return out
}

func circuitClassKey(t *topo.Topology, c *topo.Circuit) string {
	a, b := t.Switch(c.A), t.Switch(c.B)
	ka := fmt.Sprintf("%s/d%d/p%d/g%d/v%d", a.Role, a.DC, a.Plane, a.Grid, a.Generation)
	kb := fmt.Sprintf("%s/d%d/p%d/g%d/v%d", b.Role, b.DC, b.Plane, b.Grid, b.Generation)
	if kb < ka {
		ka, kb = kb, ka
	}
	return fmt.Sprintf("%s--%s@%g", ka, kb, c.Capacity)
}
