package migration

import (
	"fmt"
	"sort"
	"strings"

	"klotski/internal/topo"
)

// Symmetry detection (paper §4.1).
//
// Following Janus, switches are equivalent when they connect to the same
// hosts and have the same routing table; equivalent switches form a
// symmetry block, and the operation order of equivalent switches affects
// neither cost nor constraints. Klotski's observation is that production
// DCNs have little strict symmetry (blocks of at most two switches), which
// is why operation blocks merge symmetry blocks by locality.

// StrictSymmetryBlocks partitions the given switches into symmetry blocks
// under the strict Janus-style definition: two switches are equivalent iff
// they share role, generation, and the exact multiset of
// (neighbor, circuit capacity) pairs. Blocks are returned in a
// deterministic order (by smallest member ID), members sorted by ID.
func StrictSymmetryBlocks(t *topo.Topology, switches []topo.SwitchID) [][]topo.SwitchID {
	groups := make(map[string][]topo.SwitchID)
	for _, id := range switches {
		sig := strictSignature(t, id)
		groups[sig] = append(groups[sig], id)
	}
	return sortedBlocks(groups)
}

func strictSignature(t *topo.Topology, id topo.SwitchID) string {
	s := t.Switch(id)
	parts := make([]string, 0, len(s.Circuits())+1)
	for _, cid := range s.Circuits() {
		c := t.Circuit(cid)
		parts = append(parts, fmt.Sprintf("%d@%g", c.Other(id), c.Capacity))
	}
	sort.Strings(parts)
	return fmt.Sprintf("%s/g%d|%s", s.Role, s.Generation, strings.Join(parts, ","))
}

// RefinedSymmetryBlocks partitions the given switches by iterated color
// refinement (1-WL) over the full topology: switches start with a color
// derived from (role, generation, port budget, activity) and are repeatedly
// re-colored by the sorted multiset of (neighbor color, circuit capacity)
// pairs until the partition stabilizes or iters rounds elapse.
//
// Refined blocks are coarser than strict blocks when equivalent positions
// connect to distinct but symmetric neighbors — the structural symmetry
// that topology generators produce. It is used by tests and by the
// operation-block policies as a locality sanity check; the Janus baseline
// uses StrictSymmetryBlocks per the original system's definition.
func RefinedSymmetryBlocks(t *topo.Topology, switches []topo.SwitchID, iters int) [][]topo.SwitchID {
	if iters <= 0 {
		iters = 8
	}
	n := t.NumSwitches()
	color := make([]int, n)
	palette := make(map[string]int)
	intern := func(sig string) int {
		if c, ok := palette[sig]; ok {
			return c
		}
		c := len(palette)
		palette[sig] = c
		return c
	}
	for i := 0; i < n; i++ {
		s := t.Switch(topo.SwitchID(i))
		color[i] = intern(fmt.Sprintf("init|%s|g%d|p%d|a%v", s.Role, s.Generation, s.Ports, t.SwitchActive(s.ID)))
	}
	next := make([]int, n)
	for round := 0; round < iters; round++ {
		changed := false
		for i := 0; i < n; i++ {
			s := t.Switch(topo.SwitchID(i))
			parts := make([]string, 0, len(s.Circuits()))
			for _, cid := range s.Circuits() {
				c := t.Circuit(cid)
				parts = append(parts, fmt.Sprintf("%d@%g", color[c.Other(s.ID)], c.Capacity))
			}
			sort.Strings(parts)
			nc := intern(fmt.Sprintf("%d|%s", color[i], strings.Join(parts, ",")))
			next[i] = nc
		}
		for i := 0; i < n; i++ {
			if next[i] != color[i] {
				changed = true
			}
			color[i] = next[i]
		}
		if !changed {
			break
		}
	}
	groups := make(map[string][]topo.SwitchID)
	for _, id := range switches {
		key := fmt.Sprintf("%d", color[id])
		groups[key] = append(groups[key], id)
	}
	return sortedBlocks(groups)
}

func sortedBlocks(groups map[string][]topo.SwitchID) [][]topo.SwitchID {
	blocks := make([][]topo.SwitchID, 0, len(groups))
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		blocks = append(blocks, g)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i][0] < blocks[j][0] })
	return blocks
}

// MaxSymmetryBlockSize returns the size of the largest strict symmetry
// block among the task's operated switches — the paper reports this is at
// most two for Meta's real migration types, motivating operation blocks.
func MaxSymmetryBlockSize(t *Task) int {
	var ops []topo.SwitchID
	for i := range t.Blocks {
		ops = append(ops, t.Blocks[i].Switches...)
	}
	max := 0
	for _, b := range StrictSymmetryBlocks(t.Topo, ops) {
		if len(b) > max {
			max = len(b)
		}
	}
	return max
}
