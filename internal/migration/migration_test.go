package migration

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"klotski/internal/demand"
	"klotski/internal/topo"
)

// swapTask builds a minimal drain/undrain task: two active "old" switches
// and two inactive "new" switches bridging src→dst in parallel.
func swapTask(t *testing.T) (*Task, []topo.SwitchID) {
	t.Helper()
	tp := topo.New("swap")
	src := tp.AddSwitch(topo.Switch{Name: "src", Role: topo.RoleRSW})
	dst := tp.AddSwitch(topo.Switch{Name: "dst", Role: topo.RoleEBB})
	var olds, news []topo.SwitchID
	for i := 0; i < 2; i++ {
		o := tp.AddSwitch(topo.Switch{Name: "old" + string(rune('0'+i)), Role: topo.RoleFADU, Generation: 1})
		tp.AddCircuit(src, o, 1)
		tp.AddCircuit(o, dst, 1)
		olds = append(olds, o)
		n := tp.AddSwitch(topo.Switch{Name: "new" + string(rune('0'+i)), Role: topo.RoleFADU, Generation: 2})
		tp.SetSwitchActive(n, false)
		tp.AddCircuit(src, n, 2)
		tp.AddCircuit(n, dst, 2)
		news = append(news, n)
	}
	task := &Task{Name: "swap", Topo: tp}
	d := task.AddType(ActionTypeInfo{Name: "drain-old", Op: Drain, Role: topo.RoleFADU})
	u := task.AddType(ActionTypeInfo{Name: "undrain-new", Op: Undrain, Role: topo.RoleFADU})
	for _, o := range olds {
		task.AddBlock(Block{Type: d, Switches: []topo.SwitchID{o}})
	}
	for _, n := range news {
		task.AddBlock(Block{Type: u, Switches: []topo.SwitchID{n}})
	}
	task.Demands.Add(demand.Demand{Name: "d", Src: src, Dst: dst, Rate: 1})
	return task, append(olds, news...)
}

func TestTaskBasics(t *testing.T) {
	task, _ := swapTask(t)
	if task.NumTypes() != 2 || task.NumActions() != 4 || task.NumSwitchOps() != 4 {
		t.Fatalf("types=%d actions=%d ops=%d", task.NumTypes(), task.NumActions(), task.NumSwitchOps())
	}
	counts := task.Counts()
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("Counts = %v", counts)
	}
	if got := task.BlocksOfType(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("BlocksOfType(0) = %v", got)
	}
	if err := task.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestApplyRevert(t *testing.T) {
	task, _ := swapTask(t)
	v := task.Topo.NewView()
	orig := v.Clone()

	task.Apply(v, 0) // drain old0
	if v.SwitchActive(task.Blocks[0].Switches[0]) {
		t.Error("drain block should deactivate its switch")
	}
	task.Apply(v, 2) // undrain new0
	if !v.SwitchActive(task.Blocks[2].Switches[0]) {
		t.Error("undrain block should activate its switch")
	}
	task.Revert(v, 2)
	task.Revert(v, 0)
	if !v.Equal(orig) {
		t.Error("Revert should restore the view exactly")
	}
}

func TestTargetView(t *testing.T) {
	task, _ := swapTask(t)
	v := task.TargetView()
	for _, b := range task.Blocks {
		active := task.Types[b.Type].Op == Undrain
		for _, s := range b.Switches {
			if v.SwitchActive(s) != active {
				t.Errorf("switch %d active=%v in target, want %v", s, v.SwitchActive(s), active)
			}
		}
	}
}

func TestValidateCatchesDuplicateSwitch(t *testing.T) {
	task, ops := swapTask(t)
	task.AddBlock(Block{Type: 0, Switches: []topo.SwitchID{ops[0]}})
	if err := task.Validate(); err == nil || !strings.Contains(err.Error(), "both block") {
		t.Errorf("duplicate switch should fail validation, got %v", err)
	}
}

func TestValidateCatchesWrongDirection(t *testing.T) {
	task, ops := swapTask(t)
	// Undrain an already-active switch.
	task.Blocks[2].Switches = []topo.SwitchID{ops[0]}
	if err := task.Validate(); err == nil {
		t.Error("undraining an active switch should fail validation")
	}
}

func TestValidateCatchesEmptyBlock(t *testing.T) {
	task, _ := swapTask(t)
	task.AddBlock(Block{Type: 0})
	if err := task.Validate(); err == nil {
		t.Error("empty block should fail validation")
	}
}

func TestValidateCatchesBadType(t *testing.T) {
	task, _ := swapTask(t)
	task.Blocks[0].Type = 99
	if err := task.Validate(); err == nil {
		t.Error("invalid type should fail validation")
	}
}

func TestStats(t *testing.T) {
	task, _ := swapTask(t)
	st := task.Stats()
	if st.Switches != 4 || st.Actions != 4 || st.ActionTypes != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Old circuits (active) count as affected capacity: 2 switches × 2
	// circuits × 1 Tbps; new circuits as undrained: 2 × 2 × 2 Tbps.
	if st.AffectedTbps != 4 || st.UndrainedTbps != 8 {
		t.Fatalf("capacity stats = %+v", st)
	}
	if st.Circuits != 8 {
		t.Fatalf("Circuits = %d, want 8", st.Circuits)
	}
}

func TestBlockSize(t *testing.T) {
	b := Block{Switches: []topo.SwitchID{1, 2, 3}}
	if b.Size() != 3 {
		t.Errorf("Size = %d", b.Size())
	}
	cb := Block{Circuits: []topo.CircuitID{1, 2}}
	if cb.Size() != 1 {
		t.Errorf("circuit-only block Size = %d, want 1", cb.Size())
	}
	if (&Block{}).Size() != 0 {
		t.Error("empty block Size should be 0")
	}
}

func TestStrictSymmetryBlocks(t *testing.T) {
	tp := topo.New("sym")
	hub := tp.AddSwitch(topo.Switch{Name: "hub", Role: topo.RoleSSW})
	var leaves []topo.SwitchID
	for i := 0; i < 4; i++ {
		l := tp.AddSwitch(topo.Switch{Name: "leaf" + string(rune('0'+i)), Role: topo.RoleFADU})
		tp.AddCircuit(hub, l, 1)
		leaves = append(leaves, l)
	}
	// All four leaves connect to the same hub with equal capacity: one
	// strict symmetry block.
	blocks := StrictSymmetryBlocks(tp, leaves)
	if len(blocks) != 1 || len(blocks[0]) != 4 {
		t.Fatalf("blocks = %v", blocks)
	}
	// Change one leaf's capacity: it splits off.
	tp.SetCapacity(tp.Switch(leaves[3]).Circuits()[0], 2)
	blocks = StrictSymmetryBlocks(tp, leaves)
	if len(blocks) != 2 {
		t.Fatalf("capacity change should split symmetry: %v", blocks)
	}
}

func TestStrictSymmetryDistinguishesRolesAndGenerations(t *testing.T) {
	tp := topo.New("sym2")
	hub := tp.AddSwitch(topo.Switch{Name: "hub", Role: topo.RoleSSW})
	a := tp.AddSwitch(topo.Switch{Name: "a", Role: topo.RoleFADU, Generation: 1})
	b := tp.AddSwitch(topo.Switch{Name: "b", Role: topo.RoleFADU, Generation: 2})
	c := tp.AddSwitch(topo.Switch{Name: "c", Role: topo.RoleFAUU, Generation: 1})
	for _, s := range []topo.SwitchID{a, b, c} {
		tp.AddCircuit(hub, s, 1)
	}
	blocks := StrictSymmetryBlocks(tp, []topo.SwitchID{a, b, c})
	if len(blocks) != 3 {
		t.Fatalf("role/generation differences should split blocks: %v", blocks)
	}
}

func TestRefinedSymmetryBlocks(t *testing.T) {
	// Two symmetric stars: leaves of star 1 and star 2 are structurally
	// equivalent under refinement even though they have different
	// neighbors (strict symmetry would separate them).
	tp := topo.New("wl")
	var leaves []topo.SwitchID
	for s := 0; s < 2; s++ {
		hub := tp.AddSwitch(topo.Switch{Name: "hub" + string(rune('0'+s)), Role: topo.RoleSSW})
		for i := 0; i < 3; i++ {
			l := tp.AddSwitch(topo.Switch{Name: "leaf" + string(rune('0'+s)) + string(rune('0'+i)), Role: topo.RoleFADU})
			tp.AddCircuit(hub, l, 1)
			leaves = append(leaves, l)
		}
	}
	refined := RefinedSymmetryBlocks(tp, leaves, 0)
	if len(refined) != 1 || len(refined[0]) != 6 {
		t.Fatalf("refined blocks = %v, want one block of 6", refined)
	}
	strict := StrictSymmetryBlocks(tp, leaves)
	if len(strict) != 2 {
		t.Fatalf("strict blocks = %v, want two blocks of 3", strict)
	}
}

func TestMaxSymmetryBlockSize(t *testing.T) {
	task, _ := swapTask(t)
	// old0/old1 are symmetric, new0/new1 are symmetric: max block = 2.
	if got := MaxSymmetryBlockSize(task); got != 2 {
		t.Fatalf("MaxSymmetryBlockSize = %d, want 2", got)
	}
}

func TestReblockIdentity(t *testing.T) {
	task, _ := swapTask(t)
	nt, err := Reblock(task, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nt.NumActions() != task.NumActions() || nt.NumSwitchOps() != task.NumSwitchOps() {
		t.Fatalf("identity reblock changed shape: %d/%d", nt.NumActions(), nt.NumSwitchOps())
	}
	if err := nt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReblockMerge(t *testing.T) {
	task, _ := swapTask(t)
	nt, err := Reblock(task, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if nt.NumActions() != 2 {
		t.Fatalf("merged task has %d blocks, want 2", nt.NumActions())
	}
	if nt.NumSwitchOps() != task.NumSwitchOps() {
		t.Error("merge must preserve switch operations")
	}
	if err := nt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReblockSplit(t *testing.T) {
	task, _ := swapTask(t)
	// Merge first so blocks have 2 switches, then split back.
	merged, _ := Reblock(task, 0.5)
	split, err := Reblock(merged, 2)
	if err != nil {
		t.Fatal(err)
	}
	if split.NumActions() != 4 {
		t.Fatalf("split task has %d blocks, want 4", split.NumActions())
	}
	if split.NumSwitchOps() != task.NumSwitchOps() {
		t.Error("split must preserve switch operations")
	}
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReblockSplitBeyondSwitchCount(t *testing.T) {
	task, _ := swapTask(t)
	nt, err := Reblock(task, 8) // blocks have 1 switch; cannot split further
	if err != nil {
		t.Fatal(err)
	}
	if nt.NumActions() != task.NumActions() {
		t.Fatalf("over-split should keep singleton blocks: %d", nt.NumActions())
	}
	if err := nt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReblockRejectsBadFactor(t *testing.T) {
	task, _ := swapTask(t)
	for _, f := range []float64{0, -1} {
		if _, err := Reblock(task, f); err == nil {
			t.Errorf("factor %v should be rejected", f)
		}
	}
}

func TestReblockCircuitOnlyBlocks(t *testing.T) {
	tp := topo.New("ck")
	a := tp.AddSwitch(topo.Switch{Name: "a", Role: topo.RoleFAUU})
	b := tp.AddSwitch(topo.Switch{Name: "b", Role: topo.RoleEB})
	var cks []topo.CircuitID
	for i := 0; i < 4; i++ {
		cks = append(cks, tp.AddCircuit(a, b, 1))
	}
	task := &Task{Name: "ck", Topo: tp}
	d := task.AddType(ActionTypeInfo{Name: "drain-ck", Op: Drain, Role: topo.RoleEB})
	task.AddBlock(Block{Type: d, Circuits: cks})
	task.Demands.Add(demand.Demand{Src: a, Dst: b, Rate: 0.1})

	split, err := Reblock(task, 2)
	if err != nil {
		t.Fatal(err)
	}
	if split.NumActions() != 2 {
		t.Fatalf("circuit-only split: %d blocks, want 2", split.NumActions())
	}
	total := 0
	for _, blk := range split.Blocks {
		total += len(blk.Circuits)
	}
	if total != 4 {
		t.Fatalf("split lost circuits: %d", total)
	}
}

func TestSymmetryGranularity(t *testing.T) {
	task, _ := swapTask(t)
	// Merge into 2 blocks of 2 symmetric switches, then explode back.
	merged, _ := Reblock(task, 0.5)
	sym := SymmetryGranularity(merged)
	// old0/old1 are one strict symmetry class, so they stay one block;
	// same for new0/new1: back to 2 blocks (classes), not 4.
	if sym.NumActions() != 2 {
		t.Fatalf("symmetry granularity: %d blocks", sym.NumActions())
	}
	if sym.NumSwitchOps() != task.NumSwitchOps() {
		t.Error("symmetry granularity must preserve switch ops")
	}
	if err := sym.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTypesInOrder(t *testing.T) {
	task, _ := swapTask(t)
	order := task.TypesInOrder()
	if task.Types[order[0]].Name > task.Types[order[1]].Name {
		t.Error("TypesInOrder should sort by name")
	}
}

// Property: merging then splitting (or vice versa) preserves the exact
// multiset of operated switches and circuits, for random factors.
func TestReblockPreservesOperations(t *testing.T) {
	task, _ := swapTask(t)
	f := func(mergeK, splitK uint8) bool {
		merge := 1.0 / float64(2+mergeK%3)
		split := float64(2 + splitK%3)
		a, err := Reblock(task, merge)
		if err != nil {
			return false
		}
		b, err := Reblock(a, split)
		if err != nil {
			return false
		}
		return switchMultiset(task) == switchMultiset(b) && b.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func switchMultiset(t *Task) string {
	var ids []int
	for _, b := range t.Blocks {
		for _, s := range b.Switches {
			ids = append(ids, int(s))
		}
	}
	sort.Ints(ids)
	return fmt.Sprint(ids)
}

// Property: symmetry granularity never merges blocks across action types.
func TestSymmetryGranularityTypePurity(t *testing.T) {
	task, _ := swapTask(t)
	merged, _ := Reblock(task, 0.5)
	sym := SymmetryGranularity(merged)
	for _, b := range sym.Blocks {
		if len(b.Switches) == 0 {
			continue
		}
		want := sym.Types[b.Type].Op
		for _, s := range b.Switches {
			active := sym.Topo.SwitchActive(s)
			if (want == Drain) != active {
				t.Fatalf("block %q mixes activity states", b.Name)
			}
		}
	}
}

func TestWithDemandsAndTopology(t *testing.T) {
	task, _ := swapTask(t)
	var ds demand.Set
	ds.Add(demand.Demand{Name: "x", Src: 0, Dst: 1, Rate: 0.5})
	nt := task.WithDemands(ds)
	if nt.Demands.Demands[0].Name != "x" {
		t.Error("WithDemands should install the new set on the copy")
	}
	if task.Demands.Demands[0].Name != "d" {
		t.Error("WithDemands must not touch the original task")
	}
	clone := task.Topo.Clone()
	nt2 := task.WithTopology(clone)
	if nt2.Topo != clone || task.Topo == clone {
		t.Error("WithTopology should swap only the copy's topology")
	}
	defer func() {
		if recover() == nil {
			t.Error("WithTopology with mismatched shape should panic")
		}
	}()
	task.WithTopology(topo.New("empty"))
}

func TestOpTypeString(t *testing.T) {
	if Drain.String() != "drain" || Undrain.String() != "undrain" {
		t.Errorf("OpType strings: %s / %s", Drain, Undrain)
	}
}

// circuitTask builds a task with a circuit-only drain block across two
// circuit symmetry classes (different capacities).
func circuitTask(t *testing.T) *Task {
	t.Helper()
	tp := topo.New("ck")
	a := tp.AddSwitch(topo.Switch{Name: "a", Role: topo.RoleFAUU})
	b := tp.AddSwitch(topo.Switch{Name: "b", Role: topo.RoleEB})
	var cks []topo.CircuitID
	for i := 0; i < 2; i++ {
		cks = append(cks, tp.AddCircuit(a, b, 1))
	}
	for i := 0; i < 2; i++ {
		cks = append(cks, tp.AddCircuit(a, b, 2))
	}
	task := &Task{Name: "ck", Topo: tp}
	d := task.AddType(ActionTypeInfo{Name: "drain-ck", Op: Drain, Role: topo.RoleEB})
	task.AddBlock(Block{Type: d, Circuits: cks})
	task.Demands.Add(demand.Demand{Src: a, Dst: b, Rate: 0.1})
	return task
}

func TestSymmetryGranularityCircuitClasses(t *testing.T) {
	task := circuitTask(t)
	sym := SymmetryGranularity(task)
	// Two capacity classes → two circuit-only blocks.
	if sym.NumActions() != 2 {
		t.Fatalf("circuit symmetry classes = %d blocks, want 2", sym.NumActions())
	}
	total := 0
	for _, b := range sym.Blocks {
		if len(b.Switches) != 0 {
			t.Fatal("circuit-only blocks should stay circuit-only")
		}
		total += len(b.Circuits)
	}
	if total != 4 {
		t.Fatalf("classes cover %d circuits, want 4", total)
	}
	if err := sym.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCircuitBlockErrors(t *testing.T) {
	task := circuitTask(t)
	// Duplicate circuit across blocks.
	task.AddBlock(Block{Type: 0, Circuits: []topo.CircuitID{task.Blocks[0].Circuits[0]}})
	if err := task.Validate(); err == nil {
		t.Error("duplicate circuit should fail validation")
	}

	task2 := circuitTask(t)
	task2.Blocks[0].Circuits = append(task2.Blocks[0].Circuits, topo.CircuitID(99))
	if err := task2.Validate(); err == nil {
		t.Error("out-of-range circuit should fail validation")
	}

	task3 := circuitTask(t)
	task3.Topo.SetCircuitActive(task3.Blocks[0].Circuits[0], false)
	if err := task3.Validate(); err == nil {
		t.Error("draining an inactive circuit should fail validation")
	}

	task4 := circuitTask(t)
	task4.Topo = nil
	if err := task4.Validate(); err == nil {
		t.Error("nil topology should fail validation")
	}
}

func TestValidateRejectsBadDemands(t *testing.T) {
	task, _ := swapTask(t)
	task.Demands.Add(demand.Demand{Name: "self", Src: 0, Dst: 0, Rate: 1})
	if err := task.Validate(); err == nil {
		t.Error("invalid demand should fail task validation")
	}
}
