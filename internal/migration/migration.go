// Package migration models network-migration tasks: the actions, action
// types, symmetry blocks, and operation blocks of the Klotski paper (§3–§4.1).
//
// A migration task changes the network from an original topology to a
// target topology by draining (removing from service) and undraining
// (onboarding) switches and circuits. Both topologies live in one shared
// "universe" graph; a task describes which elements flip, grouped into
// operation blocks that are operated atomically. Every block has an action
// type — the pair (what kind of equipment, drain or undrain) — and the
// plan cost depends only on the sequence of action types (paper Eq. 1).
package migration

import (
	"fmt"
	"sort"
	"sync/atomic"
	"unsafe"

	"klotski/internal/demand"
	"klotski/internal/topo"
)

// OpType is the direction of an action: removing capacity or adding it.
type OpType uint8

// Operation types.
const (
	Drain   OpType = iota // take switches/circuits out of service
	Undrain               // bring switches/circuits into service
)

func (o OpType) String() string {
	if o == Drain {
		return "drain"
	}
	return "undrain"
}

// ActionType identifies a kind of action within one task. Types are
// interned: the value indexes the task's Types table. Two actions have the
// same type when they operate the same kind of equipment in the same
// direction — such actions can be executed by field operators in parallel
// with negligible extra cost (paper §3), which is why plan cost counts
// action-type changes.
type ActionType int32

// ActionTypeInfo describes one interned action type.
type ActionTypeInfo struct {
	Name string // e.g. "drain-hgrid-v1-grid"
	Op   OpType
	Role topo.Role // dominant switch role operated, informational
	// UnitCost is the relative operational cost of one run of this type
	// (crew travel, tooling). 0 means the default of 1. It feeds the OPEX
	// cost model of paper §7.2.
	UnitCost float64
}

// Block is one operation block: a set of switches and circuits that are
// drained or undrained together as a single action. Blocks are formed by
// merging symmetry blocks that are physically co-located (paper §4.1):
// neighbors can be operated in parallel with little extra cost and little
// impact on safety.
type Block struct {
	ID       int // index within the task's Blocks slice
	Type     ActionType
	Name     string
	DC       int // datacenter locality hint, -1 if regional
	Switches []topo.SwitchID
	Circuits []topo.CircuitID // explicitly operated circuits (beyond those implied by switch state)
}

// Size returns the number of switch operations the block represents; blocks
// that operate only circuits count each circuit group as one unit.
func (b *Block) Size() int {
	if len(b.Switches) > 0 {
		return len(b.Switches)
	}
	if len(b.Circuits) > 0 {
		return 1
	}
	return 0
}

// Task is a complete migration-planning problem: the topology universe, the
// operation blocks with their interned action types, and the traffic
// demands the intermediate states must satisfy.
type Task struct {
	Name string
	Topo *topo.Topology

	Types  []ActionTypeInfo
	Blocks []Block

	Demands demand.Set

	// Forecast grows Demands with migration progress (paper §7.1): a
	// boundary state reached after k executed actions is checked against
	// Demands scaled by Forecast.ScaleAt(k), so a plan is safe against the
	// demand the network will actually carry when each state is reached —
	// not the demand at planning time. The zero value disables growth.
	Forecast demand.Forecast

	// TopologyChanging marks migrations that alter the network's layer
	// structure rather than swapping equipment in place (e.g. DMAG
	// migration inserts a new regional-aggregation layer). The MRC and
	// Janus baselines cannot plan such migrations (paper §6.3).
	TopologyChanging bool

	// Lazily built derived tables, atomically published so concurrent
	// readers (parallel check workers share one Task) can trigger or race
	// the build safely: racing builders produce identical tables and the
	// last store wins. Both are unsafe.Pointer rather than atomic.Pointer
	// so Task values stay copyable (WithDemands/WithTopology copy the
	// struct); the published payloads are immutable, so copies share them.
	blocksByType unsafe.Pointer // *[][]int: block indices per type, canonical order
	touched      unsafe.Pointer // *[]BlockTouch: per-block touched-element sets
}

// BlockTouch is the precomputed impact set of one operation block: every
// element whose activity — or whose incident circuits' up-state — can change
// when the block is applied or reverted. Switches contains the operated
// switches plus the endpoints of every touched circuit; Circuits contains
// the operated circuits plus every circuit incident to an operated switch.
// Incremental satisfiability checking invalidates exactly the per-destination
// routing state whose reachable set intersects Switches.
type BlockTouch struct {
	Switches []topo.SwitchID
	Circuits []topo.CircuitID
}

// AddType interns a new action type and returns its handle.
func (t *Task) AddType(info ActionTypeInfo) ActionType {
	if info.UnitCost == 0 {
		info.UnitCost = 1
	}
	t.Types = append(t.Types, info)
	atomic.StorePointer(&t.blocksByType, nil)
	atomic.StorePointer(&t.touched, nil)
	return ActionType(len(t.Types) - 1)
}

// AddBlock appends an operation block and returns its ID.
func (t *Task) AddBlock(b Block) int {
	b.ID = len(t.Blocks)
	if b.Name == "" {
		b.Name = fmt.Sprintf("block-%d", b.ID)
	}
	t.Blocks = append(t.Blocks, b)
	atomic.StorePointer(&t.blocksByType, nil)
	atomic.StorePointer(&t.touched, nil)
	return b.ID
}

// NumTypes returns the number of interned action types.
func (t *Task) NumTypes() int { return len(t.Types) }

// NumActions returns the number of operation-block actions in the task.
func (t *Task) NumActions() int { return len(t.Blocks) }

// NumSwitchOps returns the total number of switch operations across blocks.
func (t *Task) NumSwitchOps() int {
	n := 0
	for i := range t.Blocks {
		n += len(t.Blocks[i].Switches)
	}
	return n
}

// BlocksOfType returns the IDs of blocks with the given type, in canonical
// (insertion) order. Planners operate blocks of a type strictly in this
// order, which is what makes the compact per-type-count representation of
// paper §4.2 well defined. The lazy build is goroutine-safe: concurrent
// first callers may each build the (identical) table, one winning the
// atomic publication.
func (t *Task) BlocksOfType(a ActionType) []int {
	if byType := (*[][]int)(atomic.LoadPointer(&t.blocksByType)); byType != nil {
		return (*byType)[a]
	}
	byType := make([][]int, len(t.Types))
	for i := range t.Blocks {
		ty := t.Blocks[i].Type
		byType[ty] = append(byType[ty], i)
	}
	atomic.StorePointer(&t.blocksByType, unsafe.Pointer(&byType))
	return byType[a]
}

// Touched returns the precomputed touched-element set of the block. The
// full table is built lazily on first call and cached; like BlocksOfType
// the build is goroutine-safe via atomic publication, so concurrent check
// workers need no pre-touch protocol. The returned sets are shared —
// callers must not modify them.
func (t *Task) Touched(blockID int) *BlockTouch {
	if touched := (*[]BlockTouch)(atomic.LoadPointer(&t.touched)); touched != nil {
		return &(*touched)[blockID]
	}
	t.BuildTouched()
	return &(*(*[]BlockTouch)(atomic.LoadPointer(&t.touched)))[blockID]
}

// BuildTouched forces construction of the per-block touched-element table.
func (t *Task) BuildTouched() {
	if atomic.LoadPointer(&t.touched) != nil {
		return
	}
	touched := make([]BlockTouch, len(t.Blocks))
	seenSw := make(map[topo.SwitchID]bool)
	seenCk := make(map[topo.CircuitID]bool)
	for i := range t.Blocks {
		b := &t.Blocks[i]
		for k := range seenSw {
			delete(seenSw, k)
		}
		for k := range seenCk {
			delete(seenCk, k)
		}
		bt := &touched[i]
		addCk := func(c topo.CircuitID) {
			if !seenCk[c] {
				seenCk[c] = true
				bt.Circuits = append(bt.Circuits, c)
			}
		}
		addSw := func(s topo.SwitchID) {
			if !seenSw[s] {
				seenSw[s] = true
				bt.Switches = append(bt.Switches, s)
			}
		}
		for _, s := range b.Switches {
			addSw(s)
			for _, c := range t.Topo.Switch(s).Circuits() {
				addCk(c)
			}
		}
		for _, c := range b.Circuits {
			addCk(c)
		}
		for _, c := range bt.Circuits {
			ck := t.Topo.Circuit(c)
			addSw(ck.A)
			addSw(ck.B)
		}
	}
	atomic.StorePointer(&t.touched, unsafe.Pointer(&touched))
}

// Counts returns the number of blocks per action type — the target vector
// V* of the compact topology representation.
func (t *Task) Counts() []int {
	counts := make([]int, len(t.Types))
	for i := range t.Blocks {
		counts[t.Blocks[i].Type]++
	}
	return counts
}

// Apply operates block b on the view: a drain-type block deactivates its
// switches and circuits; an undrain-type block activates them.
func (t *Task) Apply(v *topo.View, blockID int) {
	b := &t.Blocks[blockID]
	active := t.Types[b.Type].Op == Undrain
	for _, s := range b.Switches {
		v.SetSwitchActive(s, active)
	}
	for _, c := range b.Circuits {
		v.SetCircuitActive(c, active)
	}
}

// Revert undoes Apply for block b on the view.
func (t *Task) Revert(v *topo.View, blockID int) {
	b := &t.Blocks[blockID]
	active := t.Types[b.Type].Op != Undrain
	for _, s := range b.Switches {
		v.SetSwitchActive(s, active)
	}
	for _, c := range b.Circuits {
		v.SetCircuitActive(c, active)
	}
}

// TargetView returns a view with every block applied — the network state
// after the migration completes.
func (t *Task) TargetView() *topo.View {
	v := t.Topo.NewView()
	for i := range t.Blocks {
		t.Apply(v, i)
	}
	return v
}

// Validate checks task invariants: every block references a valid type,
// every switch and circuit ID is in range, no switch appears in two blocks
// (a switch is operated at most once per task, paper §3), and drain blocks
// operate currently-active elements while undrain blocks operate inactive
// ones.
func (t *Task) Validate() error {
	if t.Topo == nil {
		return fmt.Errorf("migration: task %q has no topology", t.Name)
	}
	nSw := topo.SwitchID(t.Topo.NumSwitches())
	nCk := topo.CircuitID(t.Topo.NumCircuits())
	seenSw := make(map[topo.SwitchID]int)
	seenCk := make(map[topo.CircuitID]int)
	for i := range t.Blocks {
		b := &t.Blocks[i]
		if int(b.Type) < 0 || int(b.Type) >= len(t.Types) {
			return fmt.Errorf("migration: block %q has invalid type %d", b.Name, b.Type)
		}
		if len(b.Switches) == 0 && len(b.Circuits) == 0 {
			return fmt.Errorf("migration: block %q is empty", b.Name)
		}
		op := t.Types[b.Type].Op
		for _, s := range b.Switches {
			if s < 0 || s >= nSw {
				return fmt.Errorf("migration: block %q references invalid switch %d", b.Name, s)
			}
			if prev, dup := seenSw[s]; dup {
				return fmt.Errorf("migration: switch %q in both block %q and block %q",
					t.Topo.Switch(s).Name, t.Blocks[prev].Name, b.Name)
			}
			seenSw[s] = i
			if op == Drain && !t.Topo.SwitchActive(s) {
				return fmt.Errorf("migration: drain block %q operates already-inactive switch %q",
					b.Name, t.Topo.Switch(s).Name)
			}
			if op == Undrain && t.Topo.SwitchActive(s) {
				return fmt.Errorf("migration: undrain block %q operates already-active switch %q",
					b.Name, t.Topo.Switch(s).Name)
			}
		}
		for _, c := range b.Circuits {
			if c < 0 || c >= nCk {
				return fmt.Errorf("migration: block %q references invalid circuit %d", b.Name, c)
			}
			if prev, dup := seenCk[c]; dup {
				return fmt.Errorf("migration: circuit %d in both block %q and block %q",
					c, t.Blocks[prev].Name, b.Name)
			}
			seenCk[c] = i
			if op == Drain && !t.Topo.CircuitActive(c) {
				return fmt.Errorf("migration: drain block %q operates already-inactive circuit %d", b.Name, c)
			}
			if op == Undrain && t.Topo.CircuitActive(c) {
				return fmt.Errorf("migration: undrain block %q operates already-active circuit %d", b.Name, c)
			}
		}
	}
	if err := t.Demands.Validate(t.Topo); err != nil {
		return err
	}
	return nil
}

// Stats summarizes the scale of a migration task, mirroring the columns of
// Table 1 in the paper.
type TaskStats struct {
	Switches        int     // switches operated
	Circuits        int     // circuits whose state changes (operated or implied)
	Actions         int     // operation blocks
	ActionTypes     int     // distinct action types
	AffectedTbps    float64 // capacity drained (Table 1 "Capacity" column)
	UndrainedTbps   float64 // capacity added by undrains
	SwitchesPerType map[string]int
}

// Stats computes scale statistics for the task.
func (t *Task) Stats() TaskStats {
	st := TaskStats{
		Actions:         len(t.Blocks),
		ActionTypes:     len(t.Types),
		SwitchesPerType: make(map[string]int),
	}
	circuits := make(map[topo.CircuitID]bool)
	for i := range t.Blocks {
		b := &t.Blocks[i]
		info := t.Types[b.Type]
		st.Switches += len(b.Switches)
		st.SwitchesPerType[info.Name] += len(b.Switches)
		for _, c := range b.Circuits {
			circuits[c] = true
		}
		for _, s := range b.Switches {
			for _, c := range t.Topo.Switch(s).Circuits() {
				circuits[c] = true
			}
		}
	}
	for c := range circuits {
		cap := t.Topo.Circuit(c).Capacity
		st.Circuits++
		// A circuit's capacity counts as affected if it is up initially
		// (it will be lost at some point) and as undrained if it becomes up.
		if t.Topo.CircuitUp(c) {
			st.AffectedTbps += cap
		} else {
			st.UndrainedTbps += cap
		}
	}
	return st
}

// WithDemands returns a shallow task copy that plans against a different
// demand set (used when demand shifts mid-migration, paper §7.1). Topology,
// types, and blocks are shared with the original.
func (t *Task) WithDemands(ds demand.Set) *Task {
	nt := *t
	nt.Demands = ds
	return &nt
}

// WithForecast returns a shallow task copy whose boundary checks sample
// demand at each state's horizon using the given growth model. Topology,
// types, blocks, and demands are shared with the original.
func (t *Task) WithForecast(f demand.Forecast) *Task {
	nt := *t
	nt.Forecast = f
	return &nt
}

// WithTopology returns a shallow task copy over a different topology
// universe — typically a clone with out-of-band outages applied (§7.2).
// The topology must have the same switch and circuit IDs.
func (t *Task) WithTopology(tp *topo.Topology) *Task {
	if tp.NumSwitches() != t.Topo.NumSwitches() || tp.NumCircuits() != t.Topo.NumCircuits() {
		panic("migration: WithTopology requires an identically-shaped topology")
	}
	nt := *t
	nt.Topo = tp
	return &nt
}

// TypesInOrder returns the action types sorted by name, for stable output.
func (t *Task) TypesInOrder() []ActionType {
	idx := make([]ActionType, len(t.Types))
	for i := range idx {
		idx[i] = ActionType(i)
	}
	sort.Slice(idx, func(i, j int) bool { return t.Types[idx[i]].Name < t.Types[idx[j]].Name })
	return idx
}
