package npd

import (
	"encoding/json"
	"fmt"
	"io"

	"klotski/internal/core"
	"klotski/internal/migration"
	"klotski/internal/routing"
)

// PlanDocument is the serialized output of the EDP-Lite pipeline: an
// ordered list of topology phases, one per migration run (paper §5:
// "Klotski returns an ordered list of topology phases. Each phase
// corresponds to one migration step").
type PlanDocument struct {
	Version int     `json:"version"`
	Task    string  `json:"task"`
	Cost    float64 `json:"cost"`
	Theta   float64 `json:"theta"`
	Alpha   float64 `json:"alpha,omitempty"`
	Actions int     `json:"actions"`
	Phases  []Phase `json:"phases"`
}

// Phase is the network state after one migration run completes.
type Phase struct {
	Index      int      `json:"index"`
	ActionType string   `json:"actionType"`
	Op         string   `json:"op"`
	Blocks     []string `json:"blocks"`
	SwitchOps  int      `json:"switchOps"`

	// Snapshot of the network after the run.
	ActiveSwitches int     `json:"activeSwitches"`
	UpCircuits     int     `json:"upCircuits"`
	CapacityTbps   float64 `json:"capacityTbps"`
	MaxUtilization float64 `json:"maxUtilization"`
}

// BuildPlanDocument converts a plan into its phase document, evaluating the
// network snapshot after every run.
func BuildPlanDocument(task *migration.Task, plan *core.Plan, opts core.Options) (*PlanDocument, error) {
	return BuildPlanDocumentFrom(task, nil, plan, opts)
}

// BuildPlanDocumentFrom builds the phase document for a plan that resumes a
// partially executed migration: executed lists the block IDs already
// operated, which are applied before the first phase snapshot.
func BuildPlanDocumentFrom(task *migration.Task, executed []int, plan *core.Plan, opts core.Options) (*PlanDocument, error) {
	theta := opts.Theta
	if theta <= 0 {
		theta = 0.75
	}
	doc := &PlanDocument{
		Version: Version,
		Task:    task.Name,
		Cost:    plan.Cost,
		Theta:   theta,
		Alpha:   opts.Alpha,
		Actions: len(plan.Sequence),
	}
	eval := routing.NewEvaluator(task.Topo)
	view := task.Topo.NewView()
	for _, id := range executed {
		task.Apply(view, id)
	}
	for i, run := range plan.Runs {
		info := task.Types[run.Type]
		ph := Phase{
			Index:      i + 1,
			ActionType: info.Name,
			Op:         info.Op.String(),
		}
		for _, id := range run.Blocks {
			task.Apply(view, id)
			ph.Blocks = append(ph.Blocks, task.Blocks[id].Name)
			ph.SwitchOps += len(task.Blocks[id].Switches)
		}
		st := view.Stats()
		ph.ActiveSwitches = st.Switches
		ph.UpCircuits = st.Circuits
		ph.CapacityTbps = st.Capacity
		res, viol := eval.Evaluate(view, &task.Demands, routing.CheckOpts{Theta: 1e9, Split: opts.Split})
		if viol.Kind == routing.ViolationUnreachable {
			return nil, fmt.Errorf("npd: phase %d leaves demands unreachable: %s", i+1, viol)
		}
		ph.MaxUtilization = res.MaxUtil
		doc.Phases = append(doc.Phases, ph)
	}
	return doc, nil
}

// EncodePlan writes a plan document as indented JSON.
func (p *PlanDocument) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("npd: encode plan: %w", err)
	}
	return nil
}

// DecodePlan reads a plan document from JSON.
func DecodePlan(r io.Reader) (*PlanDocument, error) {
	var p PlanDocument
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("npd: decode plan: %w", err)
	}
	if p.Version != Version {
		return nil, fmt.Errorf("npd: unsupported plan version %d", p.Version)
	}
	return &p, nil
}
