package npd

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzDecode hardens the NPD parser: arbitrary bytes must never panic, and
// any document that decodes successfully must survive an encode/decode
// round trip unchanged at the JSON level.
func FuzzDecode(f *testing.F) {
	var seed bytes.Buffer
	if err := sampleDoc().Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"name":"x"}`))
	f.Add([]byte(`{"version":1,"name":"x","fabric":[{"dc":0,"pods":1,"rswPerPod":1,"planes":4,"sswPerPlane":1}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"version":1,"name":"x","fabric":[{"pods":-5}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := doc.Encode(&out); err != nil {
			t.Fatalf("decoded document failed to encode: %v", err)
		}
		again, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-encoded document failed to decode: %v", err)
		}
		if again.Name != doc.Name || len(again.Fabric) != len(doc.Fabric) {
			t.Fatalf("round trip drift: %+v vs %+v", again, doc)
		}
	})
}

// FuzzDocumentRoundTrip is the strict version of FuzzDecode's round-trip
// check: any document the parser accepts must survive encode → decode
// structurally unchanged (reflect.DeepEqual over the whole Document, not
// just spot-checked fields). Drift here means Encode silently drops or
// rewrites something Decode accepted — the failure mode that corrupts
// checkpoints and resumed plans.
func FuzzDocumentRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	if err := sampleDoc().Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"version":1,"name":"x"}`))
	f.Add([]byte(`{"version":1,"name":"x","demands":[{"name":"d","src":"a","dst":"b","tbps":1.5}]}`))
	f.Add([]byte(`{"version":1,"name":"x","migration":{"kind":"hgrid-v1-v2","blockFactor":0.5}}`))
	f.Add([]byte(`{"version":1,"name":"x","eb":{"count":2,"linkTbps":40},"dr":{"count":1,"linkTbps":80}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := doc.Encode(&out); err != nil {
			t.Fatalf("decoded document failed to encode: %v", err)
		}
		again, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded document failed to decode: %v", err)
		}
		if !reflect.DeepEqual(doc, again) {
			var second bytes.Buffer
			_ = again.Encode(&second)
			t.Fatalf("round trip drift:\nfirst:  %s\nsecond: %s", out.String(), second.String())
		}
	})
}

// FuzzDecodePlan hardens the plan-document parser the same way.
func FuzzDecodePlan(f *testing.F) {
	f.Add([]byte(`{"version":1,"task":"t","cost":2,"theta":0.75,"actions":1,"phases":[]}`))
	f.Add([]byte(`{"version":9}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePlan(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := p.Encode(&out); err != nil {
			t.Fatalf("decoded plan failed to encode: %v", err)
		}
		if !strings.Contains(out.String(), `"version"`) {
			t.Fatal("encoded plan missing version")
		}
	})
}
