package npd

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode hardens the NPD parser: arbitrary bytes must never panic, and
// any document that decodes successfully must survive an encode/decode
// round trip unchanged at the JSON level.
func FuzzDecode(f *testing.F) {
	var seed bytes.Buffer
	if err := sampleDoc().Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"name":"x"}`))
	f.Add([]byte(`{"version":1,"name":"x","fabric":[{"dc":0,"pods":1,"rswPerPod":1,"planes":4,"sswPerPlane":1}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"version":1,"name":"x","fabric":[{"pods":-5}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := doc.Encode(&out); err != nil {
			t.Fatalf("decoded document failed to encode: %v", err)
		}
		again, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-encoded document failed to decode: %v", err)
		}
		if again.Name != doc.Name || len(again.Fabric) != len(doc.Fabric) {
			t.Fatalf("round trip drift: %+v vs %+v", again, doc)
		}
	})
}

// FuzzDecodePlan hardens the plan-document parser the same way.
func FuzzDecodePlan(f *testing.F) {
	f.Add([]byte(`{"version":1,"task":"t","cost":2,"theta":0.75,"actions":1,"phases":[]}`))
	f.Add([]byte(`{"version":9}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePlan(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := p.Encode(&out); err != nil {
			t.Fatalf("decoded plan failed to encode: %v", err)
		}
		if !strings.Contains(out.String(), `"version"`) {
			t.Fatal("encoded plan missing version")
		}
	})
}
