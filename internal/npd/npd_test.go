package npd

import (
	"bytes"
	"strings"
	"testing"

	"klotski/internal/core"
	"klotski/internal/gen"
)

// sampleDoc returns a small, valid NPD document with an HGRID migration.
func sampleDoc() *Document {
	return &Document{
		Version: Version,
		Name:    "region-test",
		Fabric: []FabricPart{
			{DC: 0, Pods: 2, RSWPerPod: 2, Planes: 4, SSWPerPlane: 2, FSWUplinks: 1},
		},
		HGRID:     &HGRIDPart{Grids: 4, FADUPerGrid: 2, FAUUPerGrid: 1, SSWDownlinks: 1},
		EB:        &EBPart{Count: 2, LinkTbps: 40},
		DR:        &DRPart{Count: 1, LinkTbps: 80},
		BB:        &BBPart{EBBs: 1},
		Migration: &MigrationPart{Kind: MigrationHGRID},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	doc := sampleDoc()
	var buf bytes.Buffer
	if err := doc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != doc.Name || len(got.Fabric) != 1 || got.HGRID.Grids != 4 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Migration == nil || got.Migration.Kind != MigrationHGRID {
		t.Fatal("round trip lost migration part")
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	js := `{"version":1,"name":"x","bogus":true}`
	if _, err := Decode(strings.NewReader(js)); err == nil {
		t.Error("unknown fields should be rejected")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("{not json")); err == nil {
		t.Error("garbage should be rejected")
	}
}

func TestValidateErrors(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Document)
	}{
		{"bad version", func(d *Document) { d.Version = 99 }},
		{"no name", func(d *Document) { d.Name = "" }},
		{"no fabric", func(d *Document) { d.Fabric = nil }},
		{"bad fabric dims", func(d *Document) { d.Fabric[0].Pods = 0 }},
		{"dup DC", func(d *Document) { d.Fabric = append(d.Fabric, d.Fabric[0]) }},
		{"no hgrid", func(d *Document) { d.HGRID = nil }},
		{"bad hgrid", func(d *Document) { d.HGRID.Grids = 0 }},
		{"no eb", func(d *Document) { d.EB = nil }},
		{"no dr", func(d *Document) { d.DR = nil }},
		{"no bb", func(d *Document) { d.BB = nil }},
		{"bad migration", func(d *Document) { d.Migration.Kind = "bogus" }},
		{"dmag without ma", func(d *Document) { d.Migration.Kind = MigrationDMAG }},
		{"forklift bad dc", func(d *Document) { d.Migration.Kind = MigrationForklift; d.Migration.DC = 5 }},
		{"negative factor", func(d *Document) { d.Migration.BlockFactor = -1 }},
	}
	for _, m := range mutations {
		doc := sampleDoc()
		m.mut(doc)
		if err := doc.Validate(); err == nil {
			t.Errorf("%s: validation should fail", m.name)
		}
	}
}

func TestRegionParamsRoundTrip(t *testing.T) {
	doc := sampleDoc()
	params := doc.RegionParams()
	back := FromRegionParams(doc.Name, params)
	if back.HGRID.Grids != doc.HGRID.Grids || back.EB.Count != doc.EB.Count ||
		len(back.Fabric) != len(doc.Fabric) || back.Fabric[0].Pods != doc.Fabric[0].Pods {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, doc)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("reconstructed document invalid: %v", err)
	}
}

func TestScenarioFromDocument(t *testing.T) {
	doc := sampleDoc()
	s, err := doc.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if s.Task.NumActions() == 0 {
		t.Fatal("scenario has no actions")
	}
	if _, err := core.PlanAStar(s.Task, core.Options{}); err != nil {
		t.Fatalf("NPD-built scenario unplannable: %v", err)
	}
}

func TestScenarioDMAG(t *testing.T) {
	doc := sampleDoc()
	doc.MA = &MAPart{PerEB: 2, CapFactor: 0.8}
	doc.Migration = &MigrationPart{Kind: MigrationDMAG}
	s, err := doc.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Task.TopologyChanging {
		t.Error("DMAG scenario should be topology-changing")
	}
}

func TestScenarioForklift(t *testing.T) {
	doc := sampleDoc()
	doc.Migration = &MigrationPart{Kind: MigrationForklift, DC: 0, GroupsPerPlane: 2}
	s, err := doc.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if s.Task.TopologyChanging {
		t.Error("forklift should not be topology-changing")
	}
}

func TestScenarioWithoutMigrationErrors(t *testing.T) {
	doc := sampleDoc()
	doc.Migration = nil
	if _, err := doc.Scenario(); err == nil {
		t.Error("Scenario without migration part should error")
	}
}

func TestBuildPlanDocument(t *testing.T) {
	doc := sampleDoc()
	s, err := doc.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.PlanAStar(s.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := BuildPlanDocument(s.Task, plan, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.Phases) != len(plan.Runs) {
		t.Fatalf("phases = %d, runs = %d", len(pd.Phases), len(plan.Runs))
	}
	if pd.Theta != 0.75 {
		t.Errorf("default theta should render as 0.75, got %v", pd.Theta)
	}
	totalOps := 0
	for i, ph := range pd.Phases {
		if ph.Index != i+1 {
			t.Errorf("phase %d has index %d", i, ph.Index)
		}
		if ph.MaxUtilization <= 0 || ph.MaxUtilization > 0.75+1e-9 {
			t.Errorf("phase %d max util %v outside (0, θ]", i, ph.MaxUtilization)
		}
		totalOps += ph.SwitchOps
	}
	if totalOps != s.Task.NumSwitchOps() {
		t.Errorf("phases cover %d switch ops, task has %d", totalOps, s.Task.NumSwitchOps())
	}

	// Plan document round trip.
	var buf bytes.Buffer
	if err := pd.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cost != pd.Cost || len(back.Phases) != len(pd.Phases) {
		t.Fatal("plan document round trip mismatch")
	}
}

func TestFromRegionParamsForSuite(t *testing.T) {
	// The Table-3 "A" region survives a params → NPD → params round trip
	// and still builds.
	s, err := gen.TopologyA(0.2)
	if err != nil {
		t.Fatal(err)
	}
	doc := FromRegionParams("A", s.Region.Params)
	if err := doc.Validate(); err != nil {
		t.Fatalf("NPD from suite params invalid: %v", err)
	}
	params := doc.RegionParams()
	r := gen.BuildRegion(params)
	if r.Topo.NumSwitches() == 0 {
		t.Fatal("rebuilt region is empty")
	}
}

func TestBuildPlanDocumentFrom(t *testing.T) {
	doc := sampleDoc()
	s, err := doc.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.PlanAStar(s.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := len(full.Runs[0].Blocks)
	executed := full.Sequence[:k]
	counts := make([]int, s.Task.NumTypes())
	for _, id := range executed {
		counts[s.Task.Blocks[id].Type]++
	}
	rest, err := core.PlanAStar(s.Task, core.Options{
		InitialCounts: counts,
		InitialLast:   s.Task.Blocks[executed[k-1]].Type,
	})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := BuildPlanDocumentFrom(s.Task, executed, rest, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.Phases) != len(rest.Runs) {
		t.Fatalf("phases %d != runs %d", len(pd.Phases), len(rest.Runs))
	}
	// The first snapshot must reflect the executed prefix: compare its
	// switch count against a full-plan document's corresponding phase.
	fullDoc, err := BuildPlanDocument(s.Task, full, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = fullDoc
	for _, ph := range pd.Phases {
		if ph.MaxUtilization > 0.75+1e-9 {
			t.Errorf("resumed phase %d exceeds theta: %v", ph.Index, ph.MaxUtilization)
		}
	}
}

func TestHardwarePortCaps(t *testing.T) {
	// Capping SSW ports below the scenario-derived budget tightens the
	// migration: planning still works but cannot get cheaper, and an
	// impossible cap (below the current active degree) is rejected.
	base := sampleDoc()
	sBase, err := base.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	pBase, err := core.PlanAStar(sBase.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Find the scenario's SSW budget to cap just below it.
	var sswBudget, sswDegree int
	for i := 0; i < sBase.Task.Topo.NumSwitches(); i++ {
		sw := sBase.Task.Topo.Switch(topoSwitchID(i))
		if sw.Role.String() == "SSW" {
			sswBudget = sw.Ports
			sswDegree = sBase.Task.Topo.ActiveDegree(sw.ID)
			break
		}
	}
	if sswBudget <= sswDegree {
		t.Fatalf("scenario SSW budget %d not above degree %d", sswBudget, sswDegree)
	}

	capped := sampleDoc()
	capped.Hardware = []Hardware{{Role: "SSW", Ports: sswDegree}}
	sCapped, err := capped.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	pCapped, err := core.PlanAStar(sCapped.Task, core.Options{})
	if err == nil {
		if pCapped.Cost < pBase.Cost {
			t.Errorf("tighter hardware made the plan cheaper: %v vs %v", pCapped.Cost, pBase.Cost)
		}
	} // fully port-locked SSWs may legitimately make the task infeasible

	// A cap below the current active degree is an inconsistent document.
	bad := sampleDoc()
	bad.Hardware = []Hardware{{Role: "SSW", Ports: 1}}
	if _, err := bad.Scenario(); err == nil {
		t.Error("hardware cap below active degree should be rejected")
	}

	// Unknown roles fail validation.
	invalid := sampleDoc()
	invalid.Hardware = []Hardware{{Role: "TOASTER", Ports: 4}}
	if err := invalid.Validate(); err == nil {
		t.Error("unknown hardware role should fail validation")
	}
}

func TestHardwareGenerationScoping(t *testing.T) {
	doc := sampleDoc()
	// Cap only generation-2 FADUs: generation-1 budgets stay untouched.
	doc.Hardware = []Hardware{{Role: "FADU", Generation: 2, Ports: 64}}
	s, err := doc.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Task.Topo.NumSwitches(); i++ {
		sw := s.Task.Topo.Switch(topoSwitchID(i))
		if sw.Role.String() != "FADU" {
			continue
		}
		if sw.Generation == 2 && (sw.Ports == 0 || sw.Ports > 64) {
			t.Errorf("gen-2 FADU %s ports = %d, want ≤ 64", sw.Name, sw.Ports)
		}
		if sw.Generation == 1 && sw.Ports != 0 {
			t.Errorf("gen-1 FADU %s should stay unconstrained, got %d", sw.Name, sw.Ports)
		}
	}
}
