package npd

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

type sealFixture struct {
	Name    string `json:"name"`
	Actions int    `json:"actions"`
}

func TestSealRoundTrip(t *testing.T) {
	in := sealFixture{Name: "ckpt", Actions: 12}
	data, err := SealValue("klotski/plan", in)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSealed(data) {
		t.Fatal("sealed envelope not recognized")
	}
	if IsSealed([]byte(`{"version":1,"actions":3}`)) {
		t.Fatal("bare payload misrecognized as sealed")
	}
	payload, err := OpenSealed("klotski/plan", data)
	if err != nil {
		t.Fatal(err)
	}
	var out sealFixture
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestSealRejectsVersionAndFormatMismatch(t *testing.T) {
	data, err := SealValue("klotski/plan", sealFixture{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSealed("klotski/other", data); !errors.Is(err, ErrSealFormat) {
		t.Fatalf("format mismatch: err = %v, want ErrSealFormat", err)
	}

	var s Sealed
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	s.SealVersion = SealVersion + 1
	bumped, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSealed("klotski/plan", bumped); !errors.Is(err, ErrSealVersion) {
		t.Fatalf("version mismatch: err = %v, want ErrSealVersion", err)
	}
}

func TestSealRejectsTamperedPayload(t *testing.T) {
	data, err := SealValue("klotski/plan", sealFixture{Name: "ckpt", Actions: 12})
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"actions": 12`), []byte(`"actions": 13`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper target not found in envelope")
	}
	if _, err := OpenSealed("klotski/plan", tampered); !errors.Is(err, ErrSealChecksum) {
		t.Fatalf("tampered payload: err = %v, want ErrSealChecksum", err)
	}
}

// TestSealTruncationAtEveryOffset: a sealed file cut at any byte offset is
// either rejected explicitly or — when only trailing whitespace was lost —
// recovers the exact original payload. A torn write must never be
// silently accepted as different content.
func TestSealTruncationAtEveryOffset(t *testing.T) {
	data, err := SealValue("klotski/plan", sealFixture{Name: "ckpt", Actions: 12})
	if err != nil {
		t.Fatal(err)
	}
	full, err := OpenSealed("klotski/plan", data)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		payload, err := OpenSealed("klotski/plan", data[:cut])
		if err != nil {
			continue
		}
		if !bytes.Equal(payload, full) {
			t.Fatalf("cut=%d: truncated envelope accepted with altered payload", cut)
		}
	}
}

// TestSealChecksumIndentationInvariant: the checksum covers the compacted
// payload, so re-indenting a sealed file in either direction does not
// break verification.
func TestSealChecksumIndentationInvariant(t *testing.T) {
	data, err := SealValue("klotski/plan", sealFixture{Name: "ckpt", Actions: 12})
	if err != nil {
		t.Fatal(err)
	}
	var compacted bytes.Buffer
	if err := json.Compact(&compacted, data); err != nil {
		t.Fatal(err)
	}
	var indented bytes.Buffer
	if err := json.Indent(&indented, data, "", "\t"); err != nil {
		t.Fatal(err)
	}
	for name, variant := range map[string][]byte{
		"compacted": compacted.Bytes(),
		"indented":  indented.Bytes(),
	} {
		if _, err := OpenSealed("klotski/plan", variant); err != nil {
			t.Errorf("%s envelope fails verification: %v", name, err)
		}
	}
}
