// Package npd implements the Network Product Definition format: the
// declarative JSON description of regional datacenter networks that feeds
// the EDP-Lite pipeline (paper §5).
//
// NPD describes a DCN in six parts — Fabric, HGRID, MA, EB, DR, and BB —
// recording switches by role and position and how the parts interconnect,
// plus hardware properties (port budgets) and the migration to plan. The
// pipeline converts a document into a concrete topology via the generators
// and hands the result to the planners; planner output is serialized back
// as an ordered list of topology phases (one per migration run).
package npd

import (
	"encoding/json"
	"fmt"
	"io"

	"klotski/internal/gen"
	"klotski/internal/topo"
)

// Version is the current NPD document version.
const Version = 1

// Document is one NPD file: a region description plus, optionally, the
// migration to perform on it.
type Document struct {
	Version int    `json:"version"`
	Name    string `json:"name"`

	// The six NPD parts (§5). Fabric has one entry per DC building.
	Fabric []FabricPart `json:"fabric"`
	HGRID  *HGRIDPart   `json:"hgrid,omitempty"`
	MA     *MAPart      `json:"ma,omitempty"`
	EB     *EBPart      `json:"eb,omitempty"`
	DR     *DRPart      `json:"dr,omitempty"`
	BB     *BBPart      `json:"bb,omitempty"`

	Hardware  []Hardware     `json:"hardware,omitempty"`
	Demand    *DemandPart    `json:"demand,omitempty"`
	Migration *MigrationPart `json:"migration,omitempty"`
}

// FabricPart describes one building's fabric.
type FabricPart struct {
	DC          int     `json:"dc"`
	Pods        int     `json:"pods"`
	RSWPerPod   int     `json:"rswPerPod"`
	FSWPerPod   int     `json:"fswPerPod,omitempty"`
	Planes      int     `json:"planes"`
	SSWPerPlane int     `json:"sswPerPlane"`
	FSWUplinks  int     `json:"fswUplinks,omitempty"`
	RSWLinkTbps float64 `json:"rswLinkTbps,omitempty"`
	FSWLinkTbps float64 `json:"fswLinkTbps,omitempty"`
}

// HGRIDPart describes the fabric-aggregation layer.
type HGRIDPart struct {
	Generation       int     `json:"generation,omitempty"`
	Grids            int     `json:"grids"`
	FADUPerGrid      int     `json:"faduPerGrid"`
	FAUUPerGrid      int     `json:"fauuPerGrid"`
	SSWDownlinks     int     `json:"sswDownlinks,omitempty"`
	LinkTbps         float64 `json:"linkTbps,omitempty"`
	GridInternalTbps float64 `json:"gridInternalTbps,omitempty"`
	UplinkTbps       float64 `json:"uplinkTbps,omitempty"`
}

// MAPart describes the metro-aggregation (DMAG) layer, present only when
// the region has one or is gaining one through a DMAG migration.
type MAPart struct {
	PerEB     int     `json:"perEB"`
	CapFactor float64 `json:"capFactor,omitempty"`
}

// EBPart describes the backbone-side border routers.
type EBPart struct {
	Count    int     `json:"count"`
	LinkTbps float64 `json:"linkTbps,omitempty"`
}

// DRPart describes the datacenter routers at the DC/backbone boundary.
type DRPart struct {
	Count    int     `json:"count"`
	LinkTbps float64 `json:"linkTbps,omitempty"`
}

// BBPart describes the express-backbone core.
type BBPart struct {
	EBBs int `json:"ebbs"`
}

// Hardware records per-role hardware properties. A Ports value caps the
// physical port budget of every switch with the matching role (and
// generation, when non-zero): scenario builders derive budgets from
// wiring, and the hardware catalog bounds them from above — a chassis
// cannot grow ports because a migration would like it to. Ports of 0
// leaves the scenario-derived budget untouched.
type Hardware struct {
	Role       string `json:"role"`
	Generation int    `json:"generation,omitempty"`
	Ports      int    `json:"ports,omitempty"`
}

// DemandPart parameterizes the forecasted traffic attached to the region.
type DemandPart struct {
	SourcesPerDC  int     `json:"sourcesPerDC,omitempty"`
	UpWeight      float64 `json:"upWeight,omitempty"`
	DownWeight    float64 `json:"downWeight,omitempty"`
	EastWeight    float64 `json:"eastWeight,omitempty"`
	BaseUtil      float64 `json:"baseUtil,omitempty"`
	GrowthPerStep float64 `json:"growthPerStep,omitempty"`
}

// Migration kinds accepted in MigrationPart.Kind.
const (
	MigrationHGRID    = "hgrid-v1-v2"
	MigrationForklift = "ssw-forklift"
	MigrationDMAG     = "dmag"
)

// MigrationPart selects and parameterizes the migration to plan.
type MigrationPart struct {
	Kind string `json:"kind"`

	// HGRID V1→V2 parameters.
	V2GridFactor  int     `json:"v2GridFactor,omitempty"`
	V2CapFactor   float64 `json:"v2CapFactor,omitempty"`
	V2FADUPerGrid int     `json:"v2FaduPerGrid,omitempty"`
	V2FAUUPerGrid int     `json:"v2FauuPerGrid,omitempty"`

	// SSW forklift parameters.
	DC             int     `json:"dc,omitempty"`
	GroupsPerPlane int     `json:"groupsPerPlane,omitempty"`
	NewCapFactor   float64 `json:"newCapFactor,omitempty"`

	// DMAG parameters come from the MA part.

	// BlockFactor re-blocks the default operation blocks (Fig. 11);
	// 0 or 1 keeps the organization policy's default.
	BlockFactor float64 `json:"blockFactor,omitempty"`
}

// Decode reads and validates an NPD document from JSON.
func Decode(r io.Reader) (*Document, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var d Document
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("npd: decode: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Encode writes the document as indented JSON.
func (d *Document) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("npd: encode: %w", err)
	}
	return nil
}

// Validate checks structural consistency of the document.
func (d *Document) Validate() error {
	if d.Version != Version {
		return fmt.Errorf("npd: unsupported version %d (want %d)", d.Version, Version)
	}
	if d.Name == "" {
		return fmt.Errorf("npd: document has no name")
	}
	if len(d.Fabric) == 0 {
		return fmt.Errorf("npd: document has no fabric parts")
	}
	seen := make(map[int]bool)
	for i, f := range d.Fabric {
		if f.Pods <= 0 || f.RSWPerPod <= 0 || f.Planes <= 0 || f.SSWPerPlane <= 0 {
			return fmt.Errorf("npd: fabric part %d has non-positive dimensions", i)
		}
		if seen[f.DC] {
			return fmt.Errorf("npd: duplicate fabric part for DC %d", f.DC)
		}
		seen[f.DC] = true
	}
	if d.HGRID == nil {
		return fmt.Errorf("npd: document has no HGRID part")
	}
	if d.HGRID.Grids <= 0 || d.HGRID.FADUPerGrid <= 0 || d.HGRID.FAUUPerGrid <= 0 {
		return fmt.Errorf("npd: HGRID part has non-positive dimensions")
	}
	if d.EB == nil || d.EB.Count <= 0 {
		return fmt.Errorf("npd: document needs an EB part with count > 0")
	}
	if d.DR == nil || d.DR.Count <= 0 {
		return fmt.Errorf("npd: document needs a DR part with count > 0")
	}
	if d.BB == nil || d.BB.EBBs <= 0 {
		return fmt.Errorf("npd: document needs a BB part with ebbs > 0")
	}
	for i, h := range d.Hardware {
		if _, err := topoParseRole(h.Role); err != nil {
			return fmt.Errorf("npd: hardware entry %d: %w", i, err)
		}
		if h.Ports < 0 {
			return fmt.Errorf("npd: hardware entry %d has negative ports", i)
		}
	}
	if d.Migration != nil {
		switch d.Migration.Kind {
		case MigrationHGRID, MigrationForklift:
		case MigrationDMAG:
			if d.MA == nil || d.MA.PerEB <= 0 {
				return fmt.Errorf("npd: DMAG migration requires an MA part with perEB > 0")
			}
		default:
			return fmt.Errorf("npd: unknown migration kind %q", d.Migration.Kind)
		}
		if f := d.Migration.BlockFactor; f < 0 {
			return fmt.Errorf("npd: negative block factor %v", f)
		}
		if d.Migration.Kind == MigrationForklift {
			if d.Migration.DC < 0 || d.Migration.DC >= len(d.Fabric) {
				return fmt.Errorf("npd: forklift DC %d out of range", d.Migration.DC)
			}
		}
	}
	return nil
}

// RegionParams converts the document's topology parts into generator
// parameters.
func (d *Document) RegionParams() gen.RegionParams {
	p := gen.RegionParams{Name: d.Name}
	for _, f := range d.Fabric {
		p.DCs = append(p.DCs, gen.FabricParams{
			Pods: f.Pods, RSWPerPod: f.RSWPerPod, FSWPerPod: f.FSWPerPod,
			Planes: f.Planes, SSWPerPlane: f.SSWPerPlane, FSWUplinks: f.FSWUplinks,
			RSWUplinkCap: f.RSWLinkTbps, FSWUplinkCap: f.FSWLinkTbps,
		})
	}
	p.HGRID = gen.HGRIDParams{
		Grids: d.HGRID.Grids, FADUPerGrid: d.HGRID.FADUPerGrid,
		FAUUPerGrid: d.HGRID.FAUUPerGrid, SSWDownlinks: d.HGRID.SSWDownlinks,
		LinkCap: d.HGRID.LinkTbps, GridInternalCap: d.HGRID.GridInternalTbps,
		UplinkCap: d.HGRID.UplinkTbps, Generation: d.HGRID.Generation,
	}
	p.EBs = d.EB.Count
	p.DRs = d.DR.Count
	p.EBBs = d.BB.EBBs
	p.EBCap = d.EB.LinkTbps
	p.DRCap = d.DR.LinkTbps
	return p
}

// DemandSpec converts the demand part (which may be nil) into generator
// parameters.
func (d *Document) DemandSpec() gen.DemandSpec {
	if d.Demand == nil {
		return gen.DemandSpec{}
	}
	return gen.DemandSpec{
		SourcesPerDC: d.Demand.SourcesPerDC,
		UpWeight:     d.Demand.UpWeight,
		DownWeight:   d.Demand.DownWeight,
		EastWeight:   d.Demand.EastWeight,
		BaseUtil:     d.Demand.BaseUtil,
	}
}

// Scenario builds the migration scenario the document describes. The
// document must carry a Migration part. Hardware entries cap the
// scenario-derived port budgets afterwards.
func (d *Document) Scenario() (*gen.Scenario, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Migration == nil {
		return nil, fmt.Errorf("npd: document %q has no migration part", d.Name)
	}
	region := d.RegionParams()
	spec := d.DemandSpec()
	var s *gen.Scenario
	var err error
	switch d.Migration.Kind {
	case MigrationHGRID:
		s, err = gen.HGRIDScenario(d.Name, gen.HGRIDScenarioParams{
			Region:        region,
			Demand:        spec,
			V2GridFactor:  d.Migration.V2GridFactor,
			V2CapFactor:   d.Migration.V2CapFactor,
			V2FADUPerGrid: d.Migration.V2FADUPerGrid,
			V2FAUUPerGrid: d.Migration.V2FAUUPerGrid,
		})
	case MigrationForklift:
		s, err = gen.ForkliftScenario(d.Name, gen.ForkliftParams{
			Region:         region,
			Demand:         spec,
			DC:             d.Migration.DC,
			GroupsPerPlane: d.Migration.GroupsPerPlane,
			NewCapFactor:   d.Migration.NewCapFactor,
		})
	case MigrationDMAG:
		params := gen.DMAGParams{Region: region, Demand: spec, MAPerEB: d.MA.PerEB}
		if d.MA.CapFactor > 0 {
			params.MACapFactor = d.MA.CapFactor
		}
		s, err = gen.DMAGScenario(d.Name, params)
	default:
		return nil, fmt.Errorf("npd: unknown migration kind %q", d.Migration.Kind)
	}
	if err != nil {
		return nil, err
	}
	if err := d.applyHardware(s); err != nil {
		return nil, err
	}
	return s, nil
}

// applyHardware caps port budgets per the hardware catalog. A cap below a
// switch's *base-state* active degree would make the current network
// invalid, which indicates an inconsistent document.
func (d *Document) applyHardware(s *gen.Scenario) error {
	if len(d.Hardware) == 0 {
		return nil
	}
	t := s.Task.Topo
	for _, h := range d.Hardware {
		if h.Ports <= 0 {
			continue
		}
		role, err := topoParseRole(h.Role)
		if err != nil {
			return err
		}
		for i := 0; i < t.NumSwitches(); i++ {
			sw := t.Switch(topoSwitchID(i))
			if sw.Role != role {
				continue
			}
			if h.Generation != 0 && sw.Generation != h.Generation {
				continue
			}
			if deg := t.ActiveDegree(sw.ID); deg > h.Ports {
				return fmt.Errorf("npd: hardware cap %d ports on %s below %s's current %d active circuits",
					h.Ports, h.Role, sw.Name, deg)
			}
			if sw.Ports == 0 || sw.Ports > h.Ports {
				t.SetPorts(sw.ID, h.Ports)
			}
		}
	}
	// The capped task must still be structurally valid.
	return s.Task.Topo.Validate()
}

// FromRegionParams builds a topology-only NPD document (no migration part)
// from generator parameters. It is the inverse of RegionParams for fields
// NPD records.
func FromRegionParams(name string, p gen.RegionParams) *Document {
	d := &Document{Version: Version, Name: name}
	for dc, f := range p.DCs {
		d.Fabric = append(d.Fabric, FabricPart{
			DC: dc, Pods: f.Pods, RSWPerPod: f.RSWPerPod, FSWPerPod: f.FSWPerPod,
			Planes: f.Planes, SSWPerPlane: f.SSWPerPlane, FSWUplinks: f.FSWUplinks,
			RSWLinkTbps: f.RSWUplinkCap, FSWLinkTbps: f.FSWUplinkCap,
		})
	}
	d.HGRID = &HGRIDPart{
		Generation: p.HGRID.Generation, Grids: p.HGRID.Grids,
		FADUPerGrid: p.HGRID.FADUPerGrid, FAUUPerGrid: p.HGRID.FAUUPerGrid,
		SSWDownlinks: p.HGRID.SSWDownlinks, LinkTbps: p.HGRID.LinkCap,
		GridInternalTbps: p.HGRID.GridInternalCap, UplinkTbps: p.HGRID.UplinkCap,
	}
	d.EB = &EBPart{Count: p.EBs, LinkTbps: p.EBCap}
	d.DR = &DRPart{Count: p.DRs, LinkTbps: p.DRCap}
	d.BB = &BBPart{EBBs: p.EBBs}
	return d
}

// topoParseRole and topoSwitchID keep the gen/topo import surface in one
// place for the hardware catalog.
func topoParseRole(s string) (topo.Role, error) { return topo.ParseRole(s) }
func topoSwitchID(i int) topo.SwitchID          { return topo.SwitchID(i) }
