package npd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

// Sealed envelope for durable planner state (checkpoints, plan documents).
//
// A checkpoint is the only thing standing between a crashed multi-hour
// planning run and starting over, so the bytes on disk must be able to
// prove they are intact and from a format this binary understands. Seal
// wraps a payload document in a versioned envelope carrying a CRC32C of
// the payload; OpenSealed verifies both before handing the payload back,
// turning silent bit rot or a torn write into an explicit, actionable
// error instead of a planner resumed from garbage.

// SealVersion is the current envelope format version. Readers reject any
// other version loudly rather than guessing at field semantics.
const SealVersion = 1

// Seal corruption sentinels, matchable via errors.Is.
var (
	// ErrSealVersion means the envelope's sealVersion is not one this
	// binary implements.
	ErrSealVersion = errors.New("npd: unsupported seal version")

	// ErrSealChecksum means the payload bytes do not hash to the recorded
	// CRC32C — the file was truncated, bit-rotted, or hand-edited.
	ErrSealChecksum = errors.New("npd: sealed payload checksum mismatch")

	// ErrSealFormat means the envelope's format tag does not match what
	// the caller expected (e.g. a plan document offered where a checkpoint
	// was required).
	ErrSealFormat = errors.New("npd: sealed payload format mismatch")
)

// sealTable is the CRC32C (Castagnoli) table used for payload checksums.
var sealTable = crc32.MakeTable(crc32.Castagnoli)

// Sealed is the on-disk envelope: a version, a format tag naming what the
// payload is, a CRC32C over the compacted payload bytes, and the payload
// itself embedded as raw JSON.
type Sealed struct {
	SealVersion int             `json:"sealVersion"`
	Format      string          `json:"format"`
	CRC32C      string          `json:"crc32c"`
	Payload     json.RawMessage `json:"payload"`
}

// sealChecksum hashes the payload in compacted form so the checksum is
// invariant under re-indentation in either direction: a pretty-printed
// envelope verifies against a payload that was sealed compact, and vice
// versa.
func sealChecksum(payload []byte) (string, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, payload); err != nil {
		return "", fmt.Errorf("npd: compacting sealed payload: %w", err)
	}
	return fmt.Sprintf("%08x", crc32.Checksum(buf.Bytes(), sealTable)), nil
}

// Seal wraps payload (which must be valid JSON) in a versioned,
// checksummed envelope tagged with format, returning the envelope bytes
// ready to write to disk.
func Seal(format string, payload []byte) ([]byte, error) {
	sum, err := sealChecksum(payload)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(Sealed{
		SealVersion: SealVersion,
		Format:      format,
		CRC32C:      sum,
		Payload:     json.RawMessage(payload),
	}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("npd: encoding sealed envelope: %w", err)
	}
	return append(out, '\n'), nil
}

// SealValue marshals v to JSON and seals it under format.
func SealValue(format string, v any) ([]byte, error) {
	payload, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("npd: encoding sealed payload: %w", err)
	}
	return Seal(format, payload)
}

// IsSealed reports whether data looks like a sealed envelope (as opposed
// to a bare payload document), without verifying it. Readers use this to
// accept both sealed and legacy plain files.
func IsSealed(data []byte) bool {
	var probe struct {
		SealVersion *int `json:"sealVersion"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.SealVersion != nil
}

// OpenSealed verifies a sealed envelope — version, format tag, checksum —
// and returns the payload bytes. Each failure mode carries an actionable
// error: version mismatches say what was found and what this binary
// supports, checksum mismatches say both sums, format mismatches name
// both tags.
func OpenSealed(format string, data []byte) ([]byte, error) {
	var s Sealed
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("npd: decoding sealed envelope: %w", err)
	}
	if s.SealVersion != SealVersion {
		return nil, fmt.Errorf("%w: file says version %d, this binary supports version %d — re-generate the file or use a matching build",
			ErrSealVersion, s.SealVersion, SealVersion)
	}
	if s.Format != format {
		return nil, fmt.Errorf("%w: file is %q, expected %q", ErrSealFormat, s.Format, format)
	}
	sum, err := sealChecksum(s.Payload)
	if err != nil {
		return nil, fmt.Errorf("npd: hashing sealed payload: %w", err)
	}
	if sum != s.CRC32C {
		return nil, fmt.Errorf("%w: envelope records %s, payload hashes to %s — the file was truncated or corrupted and must not be trusted",
			ErrSealChecksum, s.CRC32C, sum)
	}
	return s.Payload, nil
}
