package bound

import (
	"math"
	"testing"
)

// tiny returns a fresh 2-type engine over a 3×3 lattice (totals [2,2]),
// unit costs, α=0 — the same shape as the planner guard fixtures.
func tiny() *Engine {
	e := New([]uint16{2, 2}, []float64{1, 1}, 0)
	e.Bind(1, 1)
	e.Arm([]uint16{0, 0}, -1)
	return e
}

func TestMatches(t *testing.T) {
	e := New([]uint16{2, 3}, []float64{1, 0.5}, 0.1)
	if !e.Matches([]uint16{2, 3}, []float64{1, 0.5}, 0.1) {
		t.Fatal("engine does not match its own shape")
	}
	for _, bad := range []struct {
		name   string
		totals []uint16
		units  []float64
		alpha  float64
	}{
		{"totals", []uint16{2, 4}, []float64{1, 0.5}, 0.1},
		{"units", []uint16{2, 3}, []float64{1, 1}, 0.1},
		{"alpha", []uint16{2, 3}, []float64{1, 0.5}, 0.2},
		{"arity", []uint16{2}, []float64{1}, 0.1},
	} {
		if e.Matches(bad.totals, bad.units, bad.alpha) {
			t.Errorf("%s mismatch accepted", bad.name)
		}
	}
}

// TestRelaxCapped pins the closed-form relaxation against hand-computed
// values of the run-cost algebra f_cost(x) = 1 + α(x−1).
func TestRelaxCapped(t *testing.T) {
	cases := []struct {
		name   string
		units  []float64
		rem    []int
		alpha  float64
		last   int
		maxRun int
		tail   int
		want   float64
	}{
		// Two types, two actions each, α=0: one run per type.
		{"alpha0-fresh", []float64{1, 1}, []int{2, 2}, 0, -1, 0, 0, 2},
		// Continuing type 0's run: its remaining actions extend for free.
		{"alpha0-continue", []float64{1, 1}, []int{2, 2}, 0, 0, 0, 1, 1},
		// α=1 makes every action a full unit: no run discount at all.
		{"alpha1", []float64{1, 1}, []int{2, 2}, 1, -1, 0, 0, 4},
		// α=0.5, fresh: each type costs 1 + 0.5·(rem−1).
		{"alpha-half", []float64{1, 1}, []int{3, 1}, 0.5, -1, 0, 0, 2 + 1},
		// Run cap 2, α=0: 3 remaining of one type need ⌈3/2⌉ = 2 runs.
		{"capped", []float64{1}, []int{3}, 0, -1, 2, 0, 2},
		// Run cap 2 with one slot left in the current run: extend once
		// free, then one fresh run for the other two.
		{"capped-tail", []float64{1}, []int{3}, 0, 0, 2, 1, 1},
		// Done: nothing remains.
		{"done", []float64{1, 1}, []int{0, 0}, 0.3, 0, 0, 1, 0},
	}
	for _, c := range cases {
		if got := RelaxCapped(c.units, c.rem, c.alpha, c.last, c.maxRun, c.tail); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: RelaxCapped = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestDeadWall verifies the cold-path deadness test: a state is dead only
// when off-axis work remains and the entire last-type axis suffix is cut.
func TestDeadWall(t *testing.T) {
	e := tiny()
	e.Learn([]uint16{1, 0}, false)
	e.Learn([]uint16{2, 0}, false)

	if !e.Dead([]uint16{1, 0}, 0) {
		t.Error("(1,0) last=0 should be dead: every type-0 extension is cut and type-1 work remains")
	}
	if e.Dead([]uint16{1, 0}, 1) {
		t.Error("(1,0) last=1 should not be dead: (1,1) is not cut")
	}
	if e.Dead([]uint16{1, 0}, -1) {
		t.Error("no-last states are never dead")
	}
	// (0,0) itself is not cut, so the run could end right here.
	if e.Dead([]uint16{0, 0}, 0) {
		t.Error("uncut state should not be dead")
	}
	// With no off-axis work left, a pure same-type extension finishes the
	// plan; cuts on the interior do not matter for the final vector.
	e2 := tiny()
	e2.Learn([]uint16{1, 2}, false)
	if e2.Dead([]uint16{1, 2}, 0) {
		t.Error("(1,2) last=0 has no off-axis work; cut walls are irrelevant unless the target is cut")
	}
}

// TestLearnIdempotent verifies duplicate cuts are not double-counted and
// that a structural re-learn upgrades an existing demand cut in place.
func TestLearnIdempotent(t *testing.T) {
	e := tiny()
	if !e.Learn([]uint16{1, 0}, false) {
		t.Fatal("first Learn should report a new cut")
	}
	if e.Learn([]uint16{1, 0}, false) {
		t.Error("duplicate Learn should report no new cut")
	}
	if got := e.CutsLearned(); got != 1 {
		t.Fatalf("CutsLearned = %d, want 1", got)
	}
	// Upgrade to structural, then check it survives a demand-only rebind.
	e.Learn([]uint16{1, 0}, true)
	e.Learn([]uint16{2, 0}, false)
	e.Bind(1, 2) // same structure, new demands
	e.Arm([]uint16{0, 0}, -1)
	e.Learn([]uint16{2, 0}, false) // re-prove the demand cut
	if !e.Dead([]uint16{1, 0}, 0) {
		t.Error("structural cut should survive demand drift (plus the re-proven demand cut)")
	}
}

// TestBindReset verifies the two rebind regimes: a structural change
// drops everything, a demand-only change keeps structural cuts.
func TestBindReset(t *testing.T) {
	e := tiny()
	e.Learn([]uint16{1, 0}, true)  // structural
	e.Learn([]uint16{2, 0}, false) // demand-dependent
	if !e.Dead([]uint16{1, 0}, 0) {
		t.Fatal("wall should be dead before rebinding")
	}

	// Demand-only rebind: the structural cut stays, the demand cut drops,
	// so the wall is broken and the state is live again.
	e.Bind(1, 2)
	e.Arm([]uint16{0, 0}, -1)
	if e.Dead([]uint16{1, 0}, 0) {
		t.Error("demand cut should not survive demand drift")
	}
	if e.Sealed() {
		t.Error("rebinding must unseal")
	}

	// Structural rebind: everything drops, including structural cuts.
	e.Learn([]uint16{2, 0}, false)
	e.Bind(2, 2)
	e.Arm([]uint16{0, 0}, -1)
	if e.Dead([]uint16{1, 0}, 0) {
		t.Error("no cut survives a structural change")
	}
}

// TestCompletionAdmissibleAndMonotone exhaustively compares the engine's
// Completion bound against the true cut-respecting optimal completion on
// a small lattice, before and after sealing, and checks the bound never
// decreases as cuts accumulate.
func TestCompletionAdmissibleAndMonotone(t *testing.T) {
	totals := []uint16{2, 2}
	units := []float64{1, 1}
	const alpha = 0.25

	// optimal computes the true minimum completion cost from (vec, last)
	// treating cut vectors as unusable run boundaries — a tiny independent
	// DP over the 3×3 lattice.
	cut := map[[2]uint16]bool{}
	var optimal func(v0, v1 uint16, last int) float64
	optimal = func(v0, v1 uint16, last int) float64 {
		if v0 == totals[0] && v1 == totals[1] {
			return 0
		}
		best := math.Inf(1)
		for a := 0; a < 2; a++ {
			n0, n1 := v0, v1
			if a == 0 {
				if v0 >= totals[0] {
					continue
				}
				n0++
			} else {
				if v1 >= totals[1] {
					continue
				}
				n1++
			}
			step := units[a]
			if a == last {
				step = alpha * units[a]
			} else if cut[[2]uint16{v0, v1}] && last >= 0 {
				continue // ending the previous run here is infeasible
			}
			c := step + optimal(n0, n1, a)
			if c < best {
				best = c
			}
		}
		return best
	}

	e := New(totals, units, alpha)
	e.Bind(7, 7)
	e.Arm([]uint16{0, 0}, -1)

	checkAdmissible := func(stage string) {
		for v0 := uint16(0); v0 <= totals[0]; v0++ {
			for v1 := uint16(0); v1 <= totals[1]; v1++ {
				for last := -1; last < 2; last++ {
					got := e.Completion([]uint16{v0, v1}, last)
					want := optimal(v0, v1, last)
					if got > want+1e-9 {
						t.Errorf("%s: Completion((%d,%d), %d) = %v exceeds optimal %v",
							stage, v0, v1, last, got, want)
					}
				}
			}
		}
	}
	checkAdmissible("cold")

	// Learn a cut and seal; the table bound must stay admissible w.r.t.
	// the cut-respecting optimum and must not drop below the cold bound.
	type key struct {
		v0, v1 uint16
		last   int
	}
	before := map[key]float64{}
	for v0 := uint16(0); v0 <= totals[0]; v0++ {
		for v1 := uint16(0); v1 <= totals[1]; v1++ {
			for last := -1; last < 2; last++ {
				before[key{v0, v1, last}] = e.Completion([]uint16{v0, v1}, last)
			}
		}
	}
	cut[[2]uint16{1, 0}] = true
	e.Learn([]uint16{1, 0}, false)
	e.Seal(2) // any valid incumbent; tables freeze here
	checkAdmissible("sealed")
	for v0 := uint16(0); v0 <= totals[0]; v0++ {
		for v1 := uint16(0); v1 <= totals[1]; v1++ {
			for last := -1; last < 2; last++ {
				got := e.Completion([]uint16{v0, v1}, last)
				if got < before[key{v0, v1, last}]-1e-12 {
					t.Errorf("bound decreased after cuts: (%d,%d) last=%d: %v < %v",
						v0, v1, last, got, before[key{v0, v1, last}])
				}
			}
		}
	}
}

// TestSealEpochFreeze verifies sealed tables are frozen snapshots: a cut
// learned after sealing does not move the bound until the next Seal.
func TestSealEpochFreeze(t *testing.T) {
	e := tiny()
	e.Seal(2)
	before := e.Completion([]uint16{0, 0}, 0)
	e.Learn([]uint16{1, 0}, false)
	if got := e.Completion([]uint16{0, 0}, 0); got != before {
		t.Fatalf("bound moved under a frozen seal: %v → %v", before, got)
	}
	// Re-sealing the same basis with the new cut rebuilds the tables; the
	// bound may now rise (never fall).
	e.Seal(2)
	if got := e.Completion([]uint16{0, 0}, 0); got < before {
		t.Fatalf("bound decreased across re-seal: %v → %v", before, got)
	}
}

// TestSealKeepsTighterIncumbent verifies re-sealing the same basis with a
// worse cost keeps the earlier, tighter incumbent.
func TestSealKeepsTighterIncumbent(t *testing.T) {
	e := tiny()
	e.Seal(2)
	e.Learn([]uint16{1, 0}, false)
	e.Seal(3)
	if got := e.Incumbent(); got != 2 {
		t.Fatalf("Incumbent = %v after worse re-seal, want 2", got)
	}
	// NaN/Inf/negative seals are ignored outright.
	e.Seal(math.Inf(1))
	e.Seal(math.NaN())
	e.Seal(-1)
	if got := e.Incumbent(); got != 2 {
		t.Fatalf("Incumbent = %v after garbage seals, want 2", got)
	}
}

// TestDominatedDPBasis verifies dominance pruning only fires when the
// armed run basis matches the sealed one; deadness remains basis-free.
func TestDominatedDPBasis(t *testing.T) {
	e := tiny()
	// Cut the whole interior column so (1,0)/(2,0) die and dominance has
	// something to prune once sealed.
	e.Learn([]uint16{1, 0}, false)
	e.Learn([]uint16{2, 0}, false)
	e.Seal(2) // basis: init (0,0), last -1

	if !e.DominatedDP([]uint16{1, 0}, 0) {
		t.Error("dead cell should be dominated under the sealed basis")
	}

	// Re-arm from a different start: dominance must stand down, deadness
	// must not.
	e.Arm([]uint16{0, 1}, 1)
	if !e.Dead([]uint16{1, 0}, 0) {
		t.Error("deadness is basis-free and must survive re-arming")
	}
	// A live cell (not dead) must not be dominance-pruned off-basis.
	if e.DominatedDP([]uint16{0, 1}, 1) {
		t.Error("live cell dominance-pruned under a mismatched basis")
	}
}

// TestOverflowLattice verifies an engine whose lattice exceeds the dense
// cap degrades to closed-form bounds: no cuts, never dead, still
// admissible.
func TestOverflowLattice(t *testing.T) {
	e := New([]uint16{65000, 65000, 65000}, []float64{1, 1, 1}, 0)
	e.Bind(1, 1)
	e.Arm([]uint16{0, 0, 0}, -1)
	if e.Learn([]uint16{1, 0, 0}, false) {
		t.Error("overflowed lattice should not store cuts")
	}
	if e.Dead([]uint16{1, 0, 0}, 0) {
		t.Error("overflowed lattice can prove nothing dead")
	}
	if got := e.Completion([]uint16{0, 0, 0}, -1); got != 3 {
		t.Errorf("closed-form relaxation = %v, want 3 (one unit run per type at α=0)", got)
	}
}
