package bound

import "sync"

// Store shares STRUCTURAL cuts across engines — and therefore across
// concurrently planning fleet members working the same fabric structure.
//
// A structural cut records an occupancy/space-budget rejection: a lattice
// vector that is infeasible for purely demand-independent reasons. That
// fact holds for every plan over the same structure regardless of the
// demand set it plans against, which is exactly why Bind keeps structural
// cuts across demand-only rebinds. The store extends the same reasoning
// across engine instances: each engine publishes the structural cuts it
// learns into a shard keyed by its structural signature, and Bind pulls
// the shard's accumulated cuts into the engine it is (re)binding.
//
// Only structural cuts cross the boundary — demand-dependent cuts are
// facts about one demand set and never leave their engine. Identical
// structural signatures imply identical task structure (the signature
// hashes topology, outages, budgets, θ, split and the block decomposition),
// so lattice indices are directly comparable between the engines sharing
// a shard.
//
// Sharing is verdict-neutral for plan bytes: a cut marks a vector already
// proven infeasible, and both deadness and table construction treat cuts
// as "this completion path does not exist" — pruning work the search
// would have discarded anyway. What sharing changes is how much search
// effort each member spends rediscovering the same rejections (visible in
// states-expanded metrics, which is why deterministic benchmarks plan
// with sharing off).
//
// The store itself is safe for concurrent use; the engines attached to it
// remain single-goroutine as before (publish and import both run on the
// owning planner's goroutine, only the shard map is shared).
type Store struct {
	mu     sync.Mutex
	shards map[uint64]map[int]struct{}
}

// NewStore returns an empty cross-engine cut store.
func NewStore() *Store {
	return &Store{shards: make(map[uint64]map[int]struct{})}
}

// publish records one structural cut under the structural signature.
func (s *Store) publish(structSig uint64, idx int) {
	s.mu.Lock()
	shard := s.shards[structSig]
	if shard == nil {
		shard = make(map[int]struct{})
		s.shards[structSig] = shard
	}
	shard[idx] = struct{}{}
	s.mu.Unlock()
}

// importInto copies the shard for e's bound structural signature into e's
// cut set, returning how many cuts were new to e. Caller must hold e on
// its owning goroutine with e.bound already established (Bind calls it
// last).
func (s *Store) importInto(e *Engine) int {
	if e.nVec == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	shard := s.shards[e.structSig]
	if len(shard) == 0 {
		return 0
	}
	fresh := 0
	for idx := range shard {
		if idx < 0 || idx >= e.nVec {
			continue // defensive: a foreign shape cannot corrupt the lattice
		}
		if e.cut == nil {
			e.cut = make([]uint8, e.nVec)
		}
		if e.cut[idx]&cutKnown == 0 {
			e.cuts++
			fresh++
		}
		e.cut[idx] |= cutKnown | cutStructural
	}
	return fresh
}

// Attach connects the engine to a shared cut store. Attach before
// planning: structural cuts learned while attached are published as they
// are discovered, and every Bind imports the accumulated shard for the
// bound structural signature. Attaching nil detaches.
func (e *Engine) Attach(s *Store) { e.store = s }

// CrossHits returns the engine-lifetime count of structural cuts imported
// from the attached store that the engine had not learned itself.
func (e *Engine) CrossHits() int { return e.crossHits }
