package bound

import "testing"

// TestStoreCrossPlanImport pins the cross-plan cut-sharing semantics:
// only structural cuts cross engines, only between engines bound to the
// same structural signature, imports count as cross hits (and cuts) but
// never as learned cuts, and demand-dependent cuts stay private.
func TestStoreCrossPlanImport(t *testing.T) {
	totals := []uint16{3, 3}
	units := []float64{1, 1}
	s := NewStore()

	e1 := New(totals, units, 0)
	e1.Attach(s)
	e1.Bind(42, 1)
	if !e1.Learn([]uint16{1, 2}, true) {
		t.Fatal("first structural cut not new")
	}
	if !e1.Learn([]uint16{2, 2}, false) {
		t.Fatal("first demand cut not new")
	}
	if e1.CrossHits() != 0 {
		t.Fatalf("publisher counted %d cross hits for its own cuts", e1.CrossHits())
	}

	// Same structure, different demand signature: the structural cut
	// crosses, the demand-dependent one does not.
	e2 := New(totals, units, 0)
	e2.Attach(s)
	e2.Bind(42, 7)
	if got := e2.CrossHits(); got != 1 {
		t.Fatalf("cross hits = %d, want 1", got)
	}
	if e2.CutsLearned() != 0 {
		t.Fatalf("imports counted as learned cuts: %d", e2.CutsLearned())
	}
	if e2.Learn([]uint16{1, 2}, true) {
		t.Error("imported cut re-learned as new")
	}
	if !e2.Learn([]uint16{2, 2}, false) {
		t.Error("demand-dependent cut leaked across plans")
	}

	// Different structure: nothing crosses.
	e3 := New(totals, units, 0)
	e3.Attach(s)
	e3.Bind(99, 1)
	if got := e3.CrossHits(); got != 0 {
		t.Fatalf("cross hits across structures = %d, want 0", got)
	}

	// A later demand-only rebind imports cuts published since: e2 learned
	// a fresh structural cut above? No — {2,2} was demand-only. Publish
	// one more from e1 and rebind e2.
	if !e1.Learn([]uint16{0, 3}, true) {
		t.Fatal("second structural cut not new")
	}
	e2.Bind(42, 8)
	if got := e2.CrossHits(); got != 2 {
		t.Fatalf("cross hits after rebind = %d, want 2", got)
	}
}

// TestStoreImportIsIdempotent re-binds an engine repeatedly and checks an
// already-imported cut is never double counted.
func TestStoreImportIsIdempotent(t *testing.T) {
	totals := []uint16{2, 2}
	units := []float64{1, 1}
	s := NewStore()

	e1 := New(totals, units, 0)
	e1.Attach(s)
	e1.Bind(5, 1)
	e1.Learn([]uint16{1, 1}, true)

	e2 := New(totals, units, 0)
	e2.Attach(s)
	for i := 0; i < 3; i++ {
		e2.Bind(5, uint64(i+1))
		if got := e2.CrossHits(); got != 1 {
			t.Fatalf("rebind %d: cross hits = %d, want 1", i, got)
		}
	}
}
