package bound

import (
	"sync"
	"testing"
)

// TestStoreCrossPlanImport pins the cross-plan cut-sharing semantics:
// only structural cuts cross engines, only between engines bound to the
// same structural signature, imports count as cross hits (and cuts) but
// never as learned cuts, and demand-dependent cuts stay private.
func TestStoreCrossPlanImport(t *testing.T) {
	totals := []uint16{3, 3}
	units := []float64{1, 1}
	s := NewStore()

	e1 := New(totals, units, 0)
	e1.Attach(s)
	e1.Bind(42, 1)
	if !e1.Learn([]uint16{1, 2}, true) {
		t.Fatal("first structural cut not new")
	}
	if !e1.Learn([]uint16{2, 2}, false) {
		t.Fatal("first demand cut not new")
	}
	if e1.CrossHits() != 0 {
		t.Fatalf("publisher counted %d cross hits for its own cuts", e1.CrossHits())
	}

	// Same structure, different demand signature: the structural cut
	// crosses, the demand-dependent one does not.
	e2 := New(totals, units, 0)
	e2.Attach(s)
	e2.Bind(42, 7)
	if got := e2.CrossHits(); got != 1 {
		t.Fatalf("cross hits = %d, want 1", got)
	}
	if e2.CutsLearned() != 0 {
		t.Fatalf("imports counted as learned cuts: %d", e2.CutsLearned())
	}
	if e2.Learn([]uint16{1, 2}, true) {
		t.Error("imported cut re-learned as new")
	}
	if !e2.Learn([]uint16{2, 2}, false) {
		t.Error("demand-dependent cut leaked across plans")
	}

	// Different structure: nothing crosses.
	e3 := New(totals, units, 0)
	e3.Attach(s)
	e3.Bind(99, 1)
	if got := e3.CrossHits(); got != 0 {
		t.Fatalf("cross hits across structures = %d, want 0", got)
	}

	// A later demand-only rebind imports cuts published since: e2 learned
	// a fresh structural cut above? No — {2,2} was demand-only. Publish
	// one more from e1 and rebind e2.
	if !e1.Learn([]uint16{0, 3}, true) {
		t.Fatal("second structural cut not new")
	}
	e2.Bind(42, 8)
	if got := e2.CrossHits(); got != 2 {
		t.Fatalf("cross hits after rebind = %d, want 2", got)
	}
}

// TestStoreImportIsIdempotent re-binds an engine repeatedly and checks an
// already-imported cut is never double counted.
func TestStoreImportIsIdempotent(t *testing.T) {
	totals := []uint16{2, 2}
	units := []float64{1, 1}
	s := NewStore()

	e1 := New(totals, units, 0)
	e1.Attach(s)
	e1.Bind(5, 1)
	e1.Learn([]uint16{1, 1}, true)

	e2 := New(totals, units, 0)
	e2.Attach(s)
	for i := 0; i < 3; i++ {
		e2.Bind(5, uint64(i+1))
		if got := e2.CrossHits(); got != 1 {
			t.Fatalf("rebind %d: cross hits = %d, want 1", i, got)
		}
	}
}

// TestStoreConcurrentEngines hammers one store from many goroutines, each
// owning its engine (the documented concurrency contract: engines are
// single-goroutine, only the shard map is shared) and interleaving
// Attach, Learn, and demand-only rebinds. The assertions are exact, not
// "didn't crash": every worker learns a disjoint structural cut set, so a
// fresh engine binding afterwards must import precisely the union, each
// worker's learned-cut counter must count exactly its own cuts, and
// demand-dependent cuts must never cross. Run under -race this also
// proves publish/importInto never touch a foreign engine's state.
func TestStoreConcurrentEngines(t *testing.T) {
	const (
		workers   = 8
		perWorker = 2
		structSig = 77
	)
	totals := []uint16{4, 4} // 25-vector lattice
	units := []float64{1, 1}

	// Disjoint structural vectors: the 16 lattice points with both
	// coordinates < 4, two per worker. Demand vectors live on the i==4 /
	// j==4 rim, one per worker, so any demand cut that crossed engines
	// would be visible as an inflated import count.
	var structVecs [][]uint16
	for i := uint16(0); i < 4; i++ {
		for j := uint16(0); j < 4; j++ {
			structVecs = append(structVecs, []uint16{i, j})
		}
	}
	demandVecs := [][]uint16{
		{4, 0}, {4, 1}, {4, 2}, {4, 3}, {4, 4}, {0, 4}, {1, 4}, {2, 4},
	}

	s := NewStore()
	engines := make([]*Engine, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := New(totals, units, 0)
			engines[w] = e
			e.Attach(s)
			e.Bind(structSig, uint64(100*w+1))

			mine := structVecs[perWorker*w : perWorker*w+perWorker]
			if !e.Learn(mine[0], true) {
				t.Errorf("worker %d: own structural cut %v not new", w, mine[0])
			}
			if !e.Learn(demandVecs[w], false) {
				t.Errorf("worker %d: own demand cut %v not new", w, demandVecs[w])
			}
			// Demand-only rebind mid-stream: keeps (and republishes
			// nothing for) structural cuts, drops the demand cut, imports
			// whatever the other workers have published so far.
			e.Bind(structSig, uint64(100*w+2))
			if !e.Learn(mine[1], true) {
				t.Errorf("worker %d: own structural cut %v not new", w, mine[1])
			}
			if !e.Learn(demandVecs[w], false) {
				t.Errorf("worker %d: demand cut %v survived a demand rebind", w, demandVecs[w])
			}
		}(w)
	}
	wg.Wait()

	total := workers * perWorker
	for w, e := range engines {
		// Exactly the worker's own cuts count as learned: two structural,
		// plus the demand cut learned once per demand binding.
		if got := e.CutsLearned(); got != perWorker+2 {
			t.Errorf("worker %d learned %d cuts, want %d", w, got, perWorker+2)
		}
		// Imports are bounded by what the other workers published.
		if got := e.CrossHits(); got < 0 || got > total-perWorker {
			t.Errorf("worker %d cross hits = %d, want 0..%d", w, got, total-perWorker)
		}
	}

	// A fresh engine binding the structure imports the exact union of the
	// disjoint structural sets — nothing lost, nothing duplicated, no
	// demand cut leaked.
	fresh := New(totals, units, 0)
	fresh.Attach(s)
	fresh.Bind(structSig, 999)
	if got := fresh.CrossHits(); got != total {
		t.Fatalf("fresh engine imported %d cuts, want exactly %d", got, total)
	}
	if got := fresh.CutsLearned(); got != 0 {
		t.Fatalf("fresh engine counted %d imports as learned", got)
	}
	for w, vec := range demandVecs {
		if !fresh.Learn(vec, false) {
			t.Errorf("worker %d's demand cut %v leaked through the store", w, vec)
		}
	}
	// Every imported structural cut is already known.
	for _, vec := range structVecs {
		if fresh.Learn(vec, true) {
			t.Errorf("structural cut %v lost on import", vec)
		}
	}
	// A different structure shares nothing.
	other := New(totals, units, 0)
	other.Attach(s)
	other.Bind(structSig+1, 999)
	if got := other.CrossHits(); got != 0 {
		t.Errorf("foreign structure imported %d cuts", got)
	}
}
