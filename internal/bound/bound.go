// Package bound implements the planners' lower-bound engine: cheap
// admissible lower bounds on the remaining cost of a migration search
// state, strengthened by Benders-style cuts learned from infeasible
// boundary checks discovered during search.
//
// # Relaxation
//
// The base bound ignores ordering conflicts entirely: each action type
// with rem pending actions needs at least one fresh run (unit cost) plus
// rem−1 extensions (α·unit each), except the in-progress type, which can
// finish on extensions alone. This is exactly the planners' consistent
// heuristic algebra, and it is valid for ANY demand set and topology —
// feasibility constraints can only remove completions, never add cheaper
// ones — which is what lets the controller reuse it across drift replans.
//
// # Cuts
//
// Every boundary check that comes back infeasible is a fact about the
// count lattice: no feasible plan ever switches run types at that vector.
// The engine records those vectors as cuts in a dense lattice bitmap.
// Cuts sharpen the bound in two ways:
//
//   - Deadness: a state (V, last) whose every possible run-type switch
//     point (the whole last-type axis suffix from V) is cut can never be
//     completed — unless no off-axis work remains. Dead states can be
//     skipped outright without affecting which plan is found.
//   - Sealed tables: once a run completes, Seal latches its optimal cost
//     as the incumbent and the engine lazily builds exact cost-to-go and
//     cost-to-reach lattice tables over the cut set (vectors with unknown
//     verdicts are treated as feasible, keeping every table entry an
//     optimistic — hence admissible — estimate). A later run over the
//     same problem can then prune any state whose reach + ctg provably
//     exceeds the incumbent.
//
// # Lifetime
//
// The engine is long-lived: Bind compares the caller's constraint
// signatures against the cut set's provenance. A structural change
// (θ, split policy, topology outages, budgets) invalidates everything; a
// pure demand change keeps structural cuts (occupancy rejections, which
// are demand-independent) and drops the rest, so replanning after demand
// drift starts warm. Tables are frozen per seal epoch: cuts learned
// mid-run make the NEXT seal's tables sharper but never mutate the
// tables a live run is pruning against, which keeps pruning decisions
// deterministic within a run.
//
// The engine is not safe for concurrent use; the planners call it only
// from the planner goroutine (worker lanes never touch it).
package bound

import "math"

// Engine accumulates cuts and serves lower-bound queries for one task
// shape (totals, unit costs, α). See the package comment for semantics.
type Engine struct {
	n      int
	totals []uint16
	units  []float64
	alpha  float64

	// Lattice addressing. nVec == 0 means the full lattice exceeds the
	// memory budget: the engine then degrades to the closed-form
	// relaxation only (no cuts, no tables, no pruning).
	stride []int
	nVec   int

	// Cut store: one flag byte per lattice vector.
	cut  []uint8
	cuts int

	// Provenance signatures of the current cut set (Bind).
	bound     bool
	structSig uint64
	demandSig uint64

	// Seal state: the latched incumbent and the run-start basis the
	// reach table is relative to.
	sealed     bool
	incumbent  float64
	sealEpoch  int
	cutsAtSeal int
	sealInit   []uint16
	sealLast   int

	// Arm state: the CURRENT run's start basis. Dominance pruning
	// (reach + ctg vs incumbent) is only sound when the current run
	// starts where the sealed run did; deadness is basis-independent.
	curInit []uint16
	curLast int
	armed   bool

	// Lazily (re)built exact lattice tables, frozen per seal epoch.
	// ctg[idx*n+a] is the cheapest completion from vector idx with last
	// action type a; reach[idx*n+a] the cheapest way to get there from
	// sealInit/sealLast. Both treat unknown verdicts as feasible.
	tablesEpoch int
	ctg         []float64
	reach       []float64

	// Engine-lifetime effectiveness counters (monotone; callers fold
	// per-run deltas into their metrics).
	cutsLearned int
	cutHits     int

	// Cross-plan sharing (see store.go): structural cuts flow to and from
	// the attached store; crossHits counts imports that were new here.
	store     *Store
	crossHits int
}

const (
	cutKnown      uint8 = 1 << 0 // vector verified infeasible
	cutStructural uint8 = 1 << 1 // rejection independent of demand (occupancy)
)

// maxLatticeFloats bounds the dense tables: nVec·n float64 slots per
// table. Beyond it the engine serves closed-form relaxations only.
const maxLatticeFloats = 4 << 20

// pruneEps guards incumbent comparisons against float noise: a state is
// dominated only when its bound exceeds the incumbent by a relative AND
// absolute epsilon, so exact ties — the optimal plan's own states — are
// never pruned.
const pruneEps = 1e-9

// New builds an engine for a task shape. totals and units are copied.
func New(totals []uint16, units []float64, alpha float64) *Engine {
	e := &Engine{
		n:       len(totals),
		totals:  append([]uint16(nil), totals...),
		units:   append([]float64(nil), units...),
		alpha:   alpha,
		curLast: -1,
		stride:  make([]int, len(totals)),
	}
	nVec := 1
	for i := e.n - 1; i >= 0; i-- {
		e.stride[i] = nVec
		span := int(totals[i]) + 1
		if nVec > maxLatticeFloats/span {
			nVec = 0
			break
		}
		nVec *= span
	}
	if nVec > 0 && e.n > 0 && nVec > maxLatticeFloats/e.n {
		nVec = 0
	}
	e.nVec = nVec
	return e
}

// Matches reports whether the engine was built for exactly this task
// shape. Planners refuse to attach a mismatched engine.
func (e *Engine) Matches(totals []uint16, units []float64, alpha float64) bool {
	if len(totals) != e.n || len(units) != e.n || alpha != e.alpha {
		return false
	}
	for i := range totals {
		if totals[i] != e.totals[i] || units[i] != e.units[i] {
			return false
		}
	}
	return true
}

// Bind declares the constraint provenance of the next run. A structural
// signature change resets the engine completely; a demand-only change
// keeps structural cuts and drops demand-dependent ones. Either change
// unseals: the old incumbent bounded the optimum of a different problem.
func (e *Engine) Bind(structSig, demandSig uint64) {
	if e.bound && e.structSig == structSig && e.demandSig == demandSig {
		return
	}
	if !e.bound || e.structSig != structSig {
		e.cut = nil
		e.cuts = 0
	} else {
		kept := 0
		for i := range e.cut {
			if e.cut[i]&cutStructural != 0 {
				e.cut[i] = cutKnown | cutStructural
				kept++
			} else {
				e.cut[i] = 0
			}
		}
		e.cuts = kept
	}
	e.bound = true
	e.structSig = structSig
	e.demandSig = demandSig
	e.sealed = false
	e.armed = false
	e.sealEpoch++
	// With provenance established, pull the shared store's structural
	// cuts for this structure: demand-independent facts other plans have
	// already paid to discover.
	if e.store != nil {
		e.crossHits += e.store.importInto(e)
	}
}

// Arm declares the current run's start state. Deadness queries work
// regardless; dominance pruning additionally requires the sealed basis
// to match the armed one.
func (e *Engine) Arm(initial []uint16, last int) {
	e.curInit = append(e.curInit[:0], initial...)
	e.curLast = last
	e.armed = e.sealed && e.sealLast == last && eqVec(e.sealInit, e.curInit)
}

// Learn records an infeasible boundary vector as a cut. structural marks
// cuts whose rejection is demand-independent (occupancy/space budget),
// letting them survive demand drift. Returns true when the cut is new.
func (e *Engine) Learn(vec []uint16, structural bool) bool {
	if e.nVec == 0 {
		return false
	}
	if e.cut == nil {
		e.cut = make([]uint8, e.nVec)
	}
	idx := e.index(vec)
	if e.cut[idx]&cutKnown != 0 {
		if structural {
			e.cut[idx] |= cutStructural
			if e.store != nil && e.bound {
				e.store.publish(e.structSig, idx)
			}
		}
		return false
	}
	e.cut[idx] |= cutKnown
	if structural {
		e.cut[idx] |= cutStructural
		if e.store != nil && e.bound {
			e.store.publish(e.structSig, idx)
		}
	}
	e.cuts++
	e.cutsLearned++
	return true
}

// Seal latches a completed run's optimal cost as the incumbent for the
// armed basis. Re-sealing the same basis with no new cuts and no better
// incumbent is a no-op, so repeated runs over one problem never thrash
// the frozen tables.
func (e *Engine) Seal(cost float64) {
	if math.IsNaN(cost) || math.IsInf(cost, 0) || cost < 0 {
		return
	}
	same := e.sealed && e.sealLast == e.curLast && eqVec(e.sealInit, e.curInit)
	if same && e.cutsAtSeal == e.cuts && e.incumbent <= cost {
		e.armed = true
		return
	}
	if same && e.incumbent < cost {
		cost = e.incumbent // keep the tighter incumbent for this basis
	}
	e.sealed = true
	e.incumbent = cost
	e.sealInit = append(e.sealInit[:0], e.curInit...)
	e.sealLast = e.curLast
	e.cutsAtSeal = e.cuts
	e.sealEpoch++
	e.armed = true
}

// Sealed reports whether an incumbent is latched.
func (e *Engine) Sealed() bool { return e.sealed }

// Incumbent returns the latched incumbent cost (meaningful when Sealed).
func (e *Engine) Incumbent() float64 { return e.incumbent }

// CutsLearned returns the engine-lifetime count of distinct cuts learned.
func (e *Engine) CutsLearned() int { return e.cutsLearned }

// CutHits returns the engine-lifetime count of queries the cut set
// answered affirmatively (a state proven dead or dominated).
func (e *Engine) CutHits() int { return e.cutHits }

// Dead reports whether (vec, last) provably has no feasible completion:
// off-axis work remains, yet every vector where the current run could
// end — the whole last-type axis suffix from vec — is a known cut.
// Deadness only consults verified-infeasible facts, so it is sound for
// any run basis. last < 0 (no action yet) is never dead.
func (e *Engine) Dead(vec []uint16, last int) bool {
	if last < 0 || e.cuts == 0 || e.nVec == 0 {
		return false
	}
	idx := e.index(vec)
	if e.sealed && e.ensureTables() {
		// The exact cost-to-go over the cut set is +Inf exactly when no
		// completion survives the cuts (recursively, not just this axis).
		if math.IsInf(e.ctg[idx*e.n+last], 1) {
			e.cutHits++
			return true
		}
		return false
	}
	if e.cut[idx]&cutKnown == 0 {
		return false // could switch types right here
	}
	off := false
	for b := 0; b < e.n; b++ {
		if b != last && vec[b] < e.totals[b] {
			off = true
			break
		}
	}
	if !off {
		return false // pure same-type extension finishes the plan
	}
	w := idx
	for k := int(vec[last]); k <= int(e.totals[last]); k++ {
		if e.cut[w]&cutKnown == 0 {
			return false
		}
		w += e.stride[last]
	}
	e.cutHits++
	return true
}

// Completion returns an admissible lower bound on the cost of completing
// the migration from (vec, last). last < 0 means no run is in progress.
// Sealed engines answer from the exact cut-aware cost-to-go table;
// otherwise the closed-form relaxation (which every table entry
// dominates) is returned.
func (e *Engine) Completion(vec []uint16, last int) float64 {
	done := true
	for i := range vec {
		if vec[i] != e.totals[i] {
			done = false
			break
		}
	}
	if done {
		return 0
	}
	if e.sealed && e.nVec > 0 && e.ensureTables() {
		idx := e.index(vec)
		if last >= 0 {
			return e.ctg[idx*e.n+last]
		}
		// Fresh start: the first action of type a costs a full unit.
		best := math.Inf(1)
		for a := 0; a < e.n; a++ {
			if vec[a] >= e.totals[a] {
				continue
			}
			if c := e.units[a] + e.ctg[(idx+e.stride[a])*e.n+a]; c < best {
				best = c
			}
		}
		return best
	}
	return e.relax(vec, last)
}

// DominatedDP reports whether the DP cell (vec, last) can be skipped:
// it is dead, or — when the current run shares the sealed run's start
// basis — its exact optimistic reach + ctg provably exceeds the
// incumbent, so it cannot lie on any optimal plan. The epsilon guard
// keeps exact ties (the optimal plan's own cells) unpruned.
func (e *Engine) DominatedDP(vec []uint16, last int) bool {
	if e.Dead(vec, last) {
		return true
	}
	if !e.armed || e.nVec == 0 || !e.ensureTables() {
		return false
	}
	idx := e.index(vec)
	r := e.reach[idx*e.n+last]
	if math.IsInf(r, 1) {
		// Unreachable even with unknown verdicts treated feasible: the
		// serial recursion would value this cell +Inf too.
		e.cutHits++
		return true
	}
	c := e.ctg[idx*e.n+last]
	if r+c > e.incumbent*(1+pruneEps)+pruneEps {
		e.cutHits++
		return true
	}
	return false
}

// index maps a count vector to its dense lattice index.
func (e *Engine) index(vec []uint16) int {
	idx := 0
	for i, v := range vec {
		idx += int(v) * e.stride[i]
	}
	return idx
}

// relax is the closed-form ordering relaxation (the planners' heuristic
// algebra for uncapped runs): each remaining type needs a fresh run plus
// extensions, except the in-progress type, which extends for free.
func (e *Engine) relax(vec []uint16, last int) float64 {
	h := 0.0
	for i := 0; i < e.n; i++ {
		rem := float64(e.totals[i]) - float64(vec[i])
		if rem <= 0 {
			continue
		}
		if i == last {
			h += e.alpha * e.units[i] * rem
		} else {
			h += e.units[i] * (1 + e.alpha*(rem-1))
		}
	}
	return h
}

// ensureTables lazily (re)builds the exact lattice tables for the
// current seal epoch. Tables are immutable until the next Seal or Bind,
// so every in-run pruning decision is deterministic.
func (e *Engine) ensureTables() bool {
	if !e.sealed || e.nVec == 0 {
		return false
	}
	if e.tablesEpoch == e.sealEpoch && e.ctg != nil {
		return true
	}
	e.buildCtg()
	e.buildReach()
	e.tablesEpoch = e.sealEpoch
	return true
}

// isCut reports whether the lattice vector at idx is a known cut.
func (e *Engine) isCut(idx int) bool {
	return e.cut != nil && e.cut[idx]&cutKnown != 0
}

// buildCtg fills ctg by descending lattice index: every predecessor of a
// recurrence term has a strictly larger index (one more finished
// action), so a single backward pass suffices. Type switches are gated
// on the vector not being cut; extensions are always allowed (the
// network is not observed mid-run).
func (e *Engine) buildCtg() {
	n := e.n
	if e.ctg == nil {
		e.ctg = make([]float64, e.nVec*n)
	}
	vec := make([]uint16, n)
	for idx := e.nVec - 1; idx >= 0; idx-- {
		e.decode(idx, vec)
		done := true
		for i := range vec {
			if vec[i] != e.totals[i] {
				done = false
				break
			}
		}
		cutHere := e.isCut(idx)
		for a := 0; a < n; a++ {
			if done {
				e.ctg[idx*n+a] = 0
				continue
			}
			best := math.Inf(1)
			if vec[a] < e.totals[a] {
				best = e.alpha*e.units[a] + e.ctg[(idx+e.stride[a])*n+a]
			}
			if !cutHere {
				for b := 0; b < n; b++ {
					if b == a || vec[b] >= e.totals[b] {
						continue
					}
					if c := e.units[b] + e.ctg[(idx+e.stride[b])*n+b]; c < best {
						best = c
					}
				}
			}
			e.ctg[idx*n+a] = best
		}
	}
}

// buildReach fills reach relative to the sealed basis by ascending
// lattice index: a cell's predecessors all have a smaller index. Cells
// below the basis on any axis are unreachable. Entering a cell from a
// different-type predecessor run is gated on the predecessor vector not
// being cut (that is where the network is observed).
func (e *Engine) buildReach() {
	n := e.n
	if e.reach == nil {
		e.reach = make([]float64, e.nVec*n)
	}
	for i := range e.reach {
		e.reach[i] = math.Inf(1)
	}
	init := e.sealInit
	if len(init) != n {
		return // never armed with a basis; reach stays +Inf everywhere
	}
	vec := make([]uint16, n)
	pred := make([]uint16, n)
	for idx := 0; idx < e.nVec; idx++ {
		e.decode(idx, vec)
		below := false
		for i := range vec {
			if vec[i] < init[i] {
				below = true
				break
			}
		}
		if below {
			continue
		}
		for a := 0; a < n; a++ {
			if vec[a] <= init[a] {
				continue // a cannot have been the last action
			}
			pidx := idx - e.stride[a]
			copy(pred, vec)
			pred[a]--
			atInit := true
			for i := range pred {
				if pred[i] != init[i] {
					atInit = false
					break
				}
			}
			if atInit {
				base := e.units[a]
				if a == e.sealLast {
					base = e.alpha * e.units[a]
				}
				e.reach[idx*n+a] = base
				continue
			}
			best := math.Inf(1)
			if pred[a] > init[a] {
				best = e.reach[pidx*n+a] + e.alpha*e.units[a]
			}
			if !e.isCut(pidx) {
				for b := 0; b < n; b++ {
					if b == a || pred[b] <= init[b] {
						continue
					}
					if c := e.reach[pidx*n+b] + e.units[a]; c < best {
						best = c
					}
				}
			}
			e.reach[idx*n+a] = best
		}
	}
}

// decode writes the count vector for lattice index idx into out.
func (e *Engine) decode(idx int, out []uint16) {
	for i := 0; i < e.n; i++ {
		out[i] = uint16((idx / e.stride[i]) % (int(e.totals[i]) + 1))
	}
}

func eqVec(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RelaxCapped is the standalone closed-form relaxation under an optional
// run cap: rem[i] actions of type i remain, the in-progress run has type
// last (−1 for none) and tail actions already in its current chunk. With
// maxRun = 0 it reduces to the uncapped relaxation. It depends only on
// counts, unit costs, and α — not on demands or topology — so it lower
// bounds the optimal cost of ANY replan of the same remaining work,
// which is what makes it safe to consult across drift.
func RelaxCapped(units []float64, rem []int, alpha float64, last, maxRun, tail int) float64 {
	h := 0.0
	for i := range rem {
		r := rem[i]
		if r <= 0 {
			continue
		}
		unit := units[i]
		if maxRun <= 0 {
			if i == last {
				h += alpha * unit * float64(r)
			} else {
				h += unit * (1 + alpha*float64(r-1))
			}
			continue
		}
		if i == last {
			free := maxRun - tail
			if free < 0 {
				free = 0
			}
			if r <= free {
				h += alpha * unit * float64(r)
				continue
			}
			rest := r - free
			runs := (rest + maxRun - 1) / maxRun
			h += alpha*unit*float64(free) + unit*float64(runs) + alpha*unit*float64(rest-runs)
		} else {
			runs := (r + maxRun - 1) / maxRun
			h += unit*float64(runs) + alpha*unit*float64(r-runs)
		}
	}
	return h
}
