package core

import (
	"math"
	"math/rand"
	"testing"

	"klotski/internal/migration"
)

// TestIncrementalViewMatchesRebuild cross-checks the incremental
// delta-application view builder against the from-scratch rebuild: both
// must judge every state identically, so both planner variants must find
// identical costs and equal plans.
func TestIncrementalViewMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		nOld := 2 + rng.Intn(3)
		nNew := 2 + rng.Intn(3)
		task := bridgeTask(t, nOld, nNew, 1, 0.8+rng.Float64(), 0.5+rng.Float64(), 2*nOld+1+rng.Intn(3))
		for _, planner := range []func(*migration.Task, Options) (*Plan, error){PlanAStar, PlanDP} {
			inc, errInc := planner(task, Options{})
			reb, errReb := planner(task, Options{DisableIncrementalView: true})
			if (errInc == nil) != (errReb == nil) {
				t.Fatalf("trial %d: feasibility disagreement: %v vs %v", trial, errInc, errReb)
			}
			if errInc != nil {
				continue
			}
			if math.Abs(inc.Cost-reb.Cost) > 1e-9 {
				t.Fatalf("trial %d: incremental cost %v != rebuild cost %v", trial, inc.Cost, reb.Cost)
			}
			if len(inc.Sequence) != len(reb.Sequence) {
				t.Fatalf("trial %d: sequence lengths differ", trial)
			}
			for i := range inc.Sequence {
				if inc.Sequence[i] != reb.Sequence[i] {
					t.Fatalf("trial %d: plans diverge at step %d", trial, i)
				}
			}
		}
	}
}

// TestIncrementalViewExactState drives buildView through a random walk of
// vectors and verifies the materialized view equals a fresh rebuild after
// every move.
func TestIncrementalViewExactState(t *testing.T) {
	task := bridgeTask(t, 3, 4, 1, 1, 0.5, 0)
	sp, err := newSpace(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := newSpace(task, Options{DisableIncrementalView: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	vec := make([]uint16, sp.nTypes)
	for step := 0; step < 200; step++ {
		ty := rng.Intn(sp.nTypes)
		if rng.Intn(2) == 0 && vec[ty] < sp.totals[ty] {
			vec[ty]++
		} else if vec[ty] > 0 {
			vec[ty]--
		}
		sp.ln.buildView(vec)
		ref.ln.buildView(vec)
		if !sp.ln.view.Equal(ref.ln.view) {
			t.Fatalf("step %d: incremental view diverged at vector %v", step, vec)
		}
	}
}

// TestPlanDPParallelMatchesSerial verifies the parallel precheck changes
// nothing but wall-clock: identical costs and sequences on randomized
// tasks, across worker counts.
func TestPlanDPParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		task := bridgeTask(t, 2+rng.Intn(3), 2+rng.Intn(3), 1, 0.8+rng.Float64(),
			0.5+rng.Float64(), 0)
		serial, errS := PlanDP(task, Options{})
		for _, workers := range []int{0, 2, 4} {
			par, errP := PlanDPParallel(task, Options{}, workers)
			if (errS == nil) != (errP == nil) {
				t.Fatalf("trial %d workers %d: error disagreement %v vs %v", trial, workers, errS, errP)
			}
			if errS != nil {
				continue
			}
			if math.Abs(par.Cost-serial.Cost) > 1e-9 {
				t.Fatalf("trial %d workers %d: cost %v vs %v", trial, workers, par.Cost, serial.Cost)
			}
			for i := range par.Sequence {
				if par.Sequence[i] != serial.Sequence[i] {
					t.Fatalf("trial %d workers %d: sequences diverge", trial, workers)
				}
			}
		}
	}
}

// TestPlanDPParallelOnFunneling falls back to lazy checking (prechecking is
// incompatible with block-dependent feasibility) but must still agree.
func TestPlanDPParallelOnFunneling(t *testing.T) {
	task := bridgeTask(t, 3, 3, 1, 1, 1.1, 0)
	opts := Options{Theta: 0.8, FunnelFactor: 1.1}
	serial, errS := PlanDP(task, opts)
	par, errP := PlanDPParallel(task, opts, 4)
	if (errS == nil) != (errP == nil) {
		t.Fatalf("error disagreement: %v vs %v", errS, errP)
	}
	if errS == nil && math.Abs(par.Cost-serial.Cost) > 1e-9 {
		t.Fatalf("cost %v vs %v", par.Cost, serial.Cost)
	}
}
