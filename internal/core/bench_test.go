package core

import (
	"math/rand"
	"testing"

	"klotski/internal/migration"
)

// Micro-benchmarks for the planner's hot paths: state interning, the
// heuristic, cached and uncached satisfiability, and full plans on the
// bridge microcosm. The macroscopic figure benchmarks live at the
// repository root.

func benchSpace(b *testing.B, nOld, nNew int) *space {
	b.Helper()
	task := bridgeTask(b, nOld, nNew, 1, 2, 0.5, 0)
	sp, err := newSpace(task, Options{})
	if err != nil {
		b.Fatal(err)
	}
	return sp
}

func BenchmarkIntern(b *testing.B) {
	sp := benchSpace(b, 3, 3)
	rng := rand.New(rand.NewSource(1))
	vecs := make([][]uint16, 64)
	for i := range vecs {
		vecs[i] = []uint16{uint16(rng.Intn(4)), uint16(rng.Intn(4))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.intern(vecs[i%len(vecs)])
	}
}

func BenchmarkHeuristic(b *testing.B) {
	sp := benchSpace(b, 3, 3)
	idx, _ := sp.intern([]uint16{1, 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.heuristic(idx, migration.ActionType(i%2))
	}
}

func BenchmarkFeasibleCached(b *testing.B) {
	sp := benchSpace(b, 3, 3)
	idx, _ := sp.intern([]uint16{1, 2})
	sp.feasible(idx, NoLast) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.feasible(idx, NoLast)
	}
}

func BenchmarkFeasibleUncached(b *testing.B) {
	sp := benchSpace(b, 3, 3)
	idx, _ := sp.intern([]uint16{1, 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.metrics.Checks = 0
		sp.feasT.set(idx, 0) // forget the verdict
		sp.feasible(idx, NoLast)
	}
}

func BenchmarkPlanAStarBridges(b *testing.B) {
	task := bridgeTask(b, 4, 4, 1, 1, 1.2, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PlanAStar(task, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanDPBridges(b *testing.B) {
	task := bridgeTask(b, 4, 4, 1, 1, 1.2, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PlanDP(task, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyPlan(b *testing.B) {
	task := bridgeTask(b, 4, 4, 1, 1, 1.2, 5)
	p, err := PlanAStar(task, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyPlan(task, p.Sequence, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
