package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"klotski/internal/demand"
	"klotski/internal/migration"
	"klotski/internal/routing"
	"klotski/internal/topo"
)

// bridgeTask builds a controllable migration microcosm: nOld active and
// nNew inactive parallel "bridges" between src and dst, one demand of the
// given rate, and an optional port budget on src. Draining an old bridge
// and undraining a new one are the two action types; ECMP splits the demand
// equally across up bridges, so θ, capacities, and ports fully determine
// which plans are safe.
func bridgeTask(t testing.TB, nOld, nNew int, oldCap, newCap, rate float64, srcPorts int) *migration.Task {
	t.Helper()
	tp := topo.New("bridges")
	src := tp.AddSwitch(topo.Switch{Name: "src", Role: topo.RoleRSW})
	dst := tp.AddSwitch(topo.Switch{Name: "dst", Role: topo.RoleEBB})
	task := &migration.Task{Name: "bridges", Topo: tp}
	d := task.AddType(migration.ActionTypeInfo{Name: "drain-old", Op: migration.Drain, Role: topo.RoleFADU})
	u := task.AddType(migration.ActionTypeInfo{Name: "undrain-new", Op: migration.Undrain, Role: topo.RoleFADU})
	for i := 0; i < nOld; i++ {
		s := tp.AddSwitch(topo.Switch{Name: "old" + string(rune('a'+i)), Role: topo.RoleFADU, Generation: 1})
		tp.AddCircuit(src, s, oldCap)
		tp.AddCircuit(s, dst, oldCap)
		task.AddBlock(migration.Block{Type: d, Switches: []topo.SwitchID{s}})
	}
	for i := 0; i < nNew; i++ {
		s := tp.AddSwitch(topo.Switch{Name: "new" + string(rune('a'+i)), Role: topo.RoleFADU, Generation: 2})
		tp.SetSwitchActive(s, false)
		tp.AddCircuit(src, s, newCap)
		tp.AddCircuit(s, dst, newCap)
		task.AddBlock(migration.Block{Type: u, Switches: []topo.SwitchID{s}})
	}
	if srcPorts > 0 {
		tp.SetPorts(src, srcPorts)
	}
	task.Demands.Add(demand.Demand{Name: "d", Src: src, Dst: dst, Rate: rate})
	return task
}

// bruteForceOptimal exhaustively enumerates all type sequences under the
// same boundary-check semantics as the planners and returns the optimal
// cost, or +Inf when no safe plan exists. It is the reference oracle for
// optimality tests.
func bruteForceOptimal(t testing.TB, task *migration.Task, opts Options) float64 {
	t.Helper()
	sp, err := newSpace(task, opts)
	if err != nil {
		t.Fatalf("newSpace: %v", err)
	}
	startIdx, _ := sp.intern(sp.initial)
	if !sp.feasible(startIdx, NoLast) {
		return math.Inf(1)
	}
	targetIdx, _ := sp.intern(sp.totals)
	if !sp.feasible(targetIdx, NoLast) {
		return math.Inf(1)
	}
	best := math.Inf(1)
	vec := append([]uint16(nil), sp.initial...)
	var rec func(last migration.ActionType, tail int, cost float64)
	rec = func(last migration.ActionType, tail int, cost float64) {
		if cost >= best {
			return
		}
		done := true
		for i := range vec {
			if vec[i] != sp.totals[i] {
				done = false
				break
			}
		}
		idx, _ := sp.intern(vec)
		if done {
			if sp.feasible(idx, last) && cost < best {
				best = cost
			}
			return
		}
		for a := 0; a < sp.nTypes; a++ {
			at := migration.ActionType(a)
			if vec[a] >= sp.totals[a] {
				continue
			}
			step, newTail, needsBoundary := sp.step(last, at, tail)
			if needsBoundary && last != NoLast && !sp.feasible(idx, last) {
				continue
			}
			vec[a]++
			rec(at, newTail, cost+step)
			vec[a]--
		}
	}
	startLast := NoLast
	startTail := 0
	if opts.InitialCounts != nil {
		startLast = opts.InitialLast
		startTail = opts.InitialRunLength
	}
	rec(startLast, startTail, 0)
	return best
}

// checkPlan asserts the plan is internally consistent: valid sequence,
// advertised cost matches SequenceCost, and VerifyPlan accepts it.
func checkPlan(t *testing.T, task *migration.Task, p *Plan, opts Options) {
	t.Helper()
	if err := ValidateSequence(task, p.Sequence, opts.InitialCounts); err != nil {
		t.Fatalf("plan sequence invalid: %v", err)
	}
	initialLast := NoLast
	if opts.InitialCounts != nil {
		initialLast = opts.InitialLast
	}
	if got := SequenceCostCapped(task, p.Sequence, opts.Alpha, initialLast,
		opts.MaxRunLength, opts.InitialRunLength); math.Abs(got-p.Cost) > 1e-9 {
		t.Fatalf("plan cost %v, SequenceCost says %v", p.Cost, got)
	}
	if err := VerifyPlan(task, p.Sequence, opts); err != nil {
		t.Fatalf("VerifyPlan rejected planner output: %v", err)
	}
}

// planBoth runs A* and DP, asserting both succeed with equal cost, and
// returns the A* plan.
func planBoth(t *testing.T, task *migration.Task, opts Options) *Plan {
	t.Helper()
	pa, err := PlanAStar(task, opts)
	if err != nil {
		t.Fatalf("PlanAStar: %v", err)
	}
	pd, err := PlanDP(task, opts)
	if err != nil {
		t.Fatalf("PlanDP: %v", err)
	}
	if math.Abs(pa.Cost-pd.Cost) > 1e-9 {
		t.Fatalf("A* cost %v != DP cost %v", pa.Cost, pd.Cost)
	}
	checkPlan(t, task, pa, opts)
	checkPlan(t, task, pd, opts)
	return pa
}

func TestTrivialTwoRunPlan(t *testing.T) {
	// Plenty of capacity, no port budget: undrain everything then drain
	// everything (or vice versa) = cost 2.
	task := bridgeTask(t, 2, 2, 1, 2, 0.5, 0)
	p := planBoth(t, task, Options{})
	if p.Cost != 2 {
		t.Fatalf("cost = %v, want 2 (plan: %s)", p.Cost, p)
	}
	if bf := bruteForceOptimal(t, task, Options{}); bf != 2 {
		t.Fatalf("brute force disagrees: %v", bf)
	}
}

func TestPortBudgetForcesInterleaving(t *testing.T) {
	// src has 2 old + 2 new bridge circuits but ports for 3: at most one
	// new bridge can coexist with both old ones at any run boundary,
	// forcing U/D interleaving.
	task := bridgeTask(t, 2, 2, 1, 2, 1.2, 3)
	p := planBoth(t, task, Options{})
	if p.Cost <= 2 {
		t.Fatalf("port budget should raise cost above 2, got %v (%s)", p.Cost, p)
	}
	if bf := bruteForceOptimal(t, task, Options{}); math.Abs(bf-p.Cost) > 1e-9 {
		t.Fatalf("planner cost %v != brute force %v", p.Cost, bf)
	}
}

func TestCapacityBoundForcesWaves(t *testing.T) {
	// Ports admit only one new bridge at a time, and a single up bridge
	// cannot carry the demand at θ = 0.7, so the single U(1) D(2) U(1)
	// interleaving is unsafe too: the planner must alternate in waves of
	// one.
	task := bridgeTask(t, 2, 2, 1, 1, 1.2, 3)
	opts := Options{Theta: 0.7}
	p := planBoth(t, task, opts)
	if bf := bruteForceOptimal(t, task, opts); math.Abs(bf-p.Cost) > 1e-9 {
		t.Fatalf("planner cost %v != brute force %v", p.Cost, bf)
	}
	if len(p.Runs) < 3 {
		t.Fatalf("expected interleaved plan, got %s", p)
	}
}

func TestThetaMonotonicity(t *testing.T) {
	task := bridgeTask(t, 3, 3, 1, 1, 1.5, 7)
	prev := math.Inf(1)
	for _, theta := range []float64{0.95, 0.85, 0.75, 0.65} {
		p, err := PlanAStar(task, Options{Theta: theta})
		if err != nil {
			if errors.Is(err, ErrInfeasible) {
				prev = math.Inf(1)
				continue
			}
			t.Fatalf("theta %v: %v", theta, err)
		}
		if p.Cost > prev && !math.IsInf(prev, 1) {
			// Looser θ earlier in the loop; cost must be non-decreasing as
			// θ tightens — iterate descending so check inverted.
			t.Fatalf("cost should not decrease as theta tightens: %v then %v", prev, p.Cost)
		}
		_ = theta
		prev = p.Cost
	}
}

func TestAlphaCostModel(t *testing.T) {
	task := bridgeTask(t, 2, 2, 1, 2, 0.5, 0)
	for _, alpha := range []float64{0, 0.25, 0.5, 1} {
		opts := Options{Alpha: alpha}
		p := planBoth(t, task, opts)
		want := bruteForceOptimal(t, task, opts)
		if math.Abs(p.Cost-want) > 1e-9 {
			t.Fatalf("alpha %v: cost %v, brute force %v", alpha, p.Cost, want)
		}
		// With α=1 every action costs 1 regardless of runs.
		if alpha == 1 && p.Cost != float64(task.NumActions()) {
			t.Fatalf("alpha=1 cost should equal action count, got %v", p.Cost)
		}
	}
}

func TestAlphaCostsIncrease(t *testing.T) {
	task := bridgeTask(t, 3, 3, 1, 2, 0.5, 0)
	prev := -1.0
	for _, alpha := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		p, err := PlanAStar(task, Options{Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		if p.Cost < prev {
			t.Fatalf("cost decreased as alpha grew: %v then %v", prev, p.Cost)
		}
		prev = p.Cost
	}
}

func TestUnitCosts(t *testing.T) {
	task := bridgeTask(t, 2, 2, 1, 2, 0.5, 0)
	task.Types[0].UnitCost = 5 // drains are expensive
	p := planBoth(t, task, Options{})
	// One drain run (5) + one undrain run (1).
	if p.Cost != 6 {
		t.Fatalf("unit-cost plan cost = %v, want 6", p.Cost)
	}
}

func TestInfeasibleRate(t *testing.T) {
	// Even the final state cannot carry the demand.
	task := bridgeTask(t, 2, 2, 1, 1, 10, 0)
	if _, err := PlanAStar(task, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if _, err := PlanDP(task, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("DP: want ErrInfeasible, got %v", err)
	}
}

func TestInfeasibleInitial(t *testing.T) {
	task := bridgeTask(t, 2, 2, 1, 4, 1.8, 0) // initial util 0.9 > 0.75
	if _, err := PlanAStar(task, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible for unsafe initial state, got %v", err)
	}
}

func TestBudgetExceeded(t *testing.T) {
	task := bridgeTask(t, 4, 4, 1, 2, 0.5, 0)
	if _, err := PlanAStar(task, Options{MaxStates: 2}); !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if _, err := PlanDP(task, Options{MaxStates: 2}); !errors.Is(err, ErrBudget) {
		t.Fatalf("DP: want ErrBudget, got %v", err)
	}
}

func TestEmptyTaskRejected(t *testing.T) {
	task := &migration.Task{Name: "empty", Topo: topo.New("t")}
	if _, err := PlanAStar(task, Options{}); err == nil {
		t.Fatal("empty task should error")
	}
}

func TestAblationVariantsStayOptimal(t *testing.T) {
	task := bridgeTask(t, 3, 3, 1, 1, 1.2, 8)
	base := planBoth(t, task, Options{})
	variants := []Options{
		{DisableHeuristic: true},
		{DisableSecondaryPriority: true},
		{DisableCache: true},
		{DisableHeuristic: true, DisableCache: true},
	}
	for i, opts := range variants {
		p, err := PlanAStar(task, opts)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if math.Abs(p.Cost-base.Cost) > 1e-9 {
			t.Fatalf("variant %d cost %v != base %v", i, p.Cost, base.Cost)
		}
	}
}

func TestUniformCostVisitsMoreStates(t *testing.T) {
	task := bridgeTask(t, 4, 4, 1, 1, 1.2, 0)
	astar, err := PlanAStar(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ucs, err := PlanAStar(task, Options{DisableHeuristic: true})
	if err != nil {
		t.Fatal(err)
	}
	if ucs.Metrics.StatesPopped < astar.Metrics.StatesPopped {
		t.Errorf("uniform-cost should expand at least as many states: %d vs %d",
			ucs.Metrics.StatesPopped, astar.Metrics.StatesPopped)
	}
}

func TestCacheReducesChecks(t *testing.T) {
	task := bridgeTask(t, 3, 3, 1, 1, 1.2, 0)
	with, err := PlanDP(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := PlanDP(task, Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Cost != without.Cost {
		t.Fatalf("ESC must not change cost: %v vs %v", with.Cost, without.Cost)
	}
	if without.Metrics.Checks < with.Metrics.Checks {
		t.Errorf("disabling the cache should not reduce checks: %d vs %d",
			without.Metrics.Checks, with.Metrics.Checks)
	}
}

func TestReplanningFromPrefix(t *testing.T) {
	task := bridgeTask(t, 3, 3, 1, 1, 1.2, 7)
	full := planBoth(t, task, Options{})

	// Execute the first run plus one action, then replan the rest.
	k := len(full.Runs[0].Blocks) + 1
	counts := make([]int, task.NumTypes())
	for _, id := range full.Sequence[:k] {
		counts[task.Blocks[id].Type]++
	}
	lastTy := task.Blocks[full.Sequence[k-1]].Type
	opts := Options{InitialCounts: counts, InitialLast: lastTy}
	re := planBoth(t, task, opts)

	prefixCost := SequenceCost(task, full.Sequence[:k], 0, NoLast)
	if re.Cost > full.Cost-prefixCost+1e-9 {
		t.Fatalf("replanned suffix cost %v worse than original suffix %v",
			re.Cost, full.Cost-prefixCost)
	}
	// The combined plan must verify end to end.
	combined := append(append([]int(nil), full.Sequence[:k]...), re.Sequence...)
	if err := VerifyPlan(task, combined, Options{}); err != nil {
		t.Fatalf("combined plan invalid: %v", err)
	}
}

func TestFunnelingRaisesCostOrKeepsIt(t *testing.T) {
	task := bridgeTask(t, 3, 3, 1, 1, 1.1, 0)
	base, err := PlanAStar(task, Options{Theta: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	fun, err := PlanAStar(task, Options{Theta: 0.8, FunnelFactor: 1.3})
	if err != nil {
		if errors.Is(err, ErrInfeasible) {
			return // tighter headroom may make the task unplannable
		}
		t.Fatal(err)
	}
	if fun.Cost < base.Cost {
		t.Fatalf("funneling headroom should not lower cost: %v vs %v", fun.Cost, base.Cost)
	}
	checkPlan(t, task, fun, Options{Theta: 0.8, FunnelFactor: 1.3})
}

func TestSpaceBudgetConstraint(t *testing.T) {
	// All bridges share DC 0; a budget of 6 means the transient can host
	// at most 6 switches (src+dst+4 bridges), so at most 2 extra new
	// bridges may be up before old ones are decommissioned.
	task := bridgeTask(t, 2, 2, 1, 2, 0.5, 0)
	unconstrained := planBoth(t, task, Options{})
	opts := Options{SpaceBudget: map[int]int{0: 6}}
	p, err := PlanAStar(task, opts)
	if err != nil {
		t.Fatalf("space-constrained plan failed: %v", err)
	}
	checkPlan(t, task, p, opts)
	if p.Cost < unconstrained.Cost {
		t.Fatalf("space budget should not lower cost: %v vs %v", p.Cost, unconstrained.Cost)
	}
	// An impossible budget makes the target itself violate space.
	if _, err := PlanAStar(task, Options{SpaceBudget: map[int]int{0: 1}}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible for impossible space budget, got %v", err)
	}
}

func TestVerifyPlanRejectsUnsafeBoundary(t *testing.T) {
	task := bridgeTask(t, 2, 2, 1, 1, 1.2, 0)
	opts := Options{Theta: 0.7}
	// D,D,U,U drains everything first: the D→U boundary state has zero
	// capacity and must be rejected.
	bad := []int{0, 1, 2, 3}
	if err := VerifyPlan(task, bad, opts); err == nil {
		t.Fatal("VerifyPlan should reject drain-everything-first plan")
	}
	good, err := PlanAStar(task, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPlan(task, good.Sequence, opts); err != nil {
		t.Fatalf("VerifyPlan rejected a valid plan: %v", err)
	}
}

func TestVerifyPlanRejectsIncompleteAndDisordered(t *testing.T) {
	task := bridgeTask(t, 2, 2, 1, 2, 0.5, 0)
	if err := VerifyPlan(task, []int{0, 2, 3}, Options{}); err == nil {
		t.Error("incomplete plan should be rejected")
	}
	if err := VerifyPlan(task, []int{1, 0, 2, 3}, Options{}); err == nil {
		t.Error("non-canonical order should be rejected")
	}
	if err := VerifyPlan(task, []int{0, 0, 2, 3}, Options{}); err == nil {
		t.Error("duplicate block should be rejected")
	}
}

func TestSequenceCost(t *testing.T) {
	task := bridgeTask(t, 2, 2, 1, 2, 0.5, 0)
	// Types: 0 = drain, 1 = undrain. Blocks 0,1 drain; 2,3 undrain.
	cases := []struct {
		seq   []int
		alpha float64
		want  float64
	}{
		{[]int{0, 1, 2, 3}, 0, 2},
		{[]int{0, 2, 1, 3}, 0, 4},
		{[]int{0, 1, 2, 3}, 0.5, 3},
		{[]int{2, 3, 0, 1}, 1, 4},
	}
	for _, c := range cases {
		if got := SequenceCost(task, c.seq, c.alpha, NoLast); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("SequenceCost(%v, α=%v) = %v, want %v", c.seq, c.alpha, got, c.want)
		}
	}
	// Continuing an initial run of the same type saves the first unit.
	if got := SequenceCost(task, []int{0, 1}, 0, migration.ActionType(0)); got != 0 {
		t.Errorf("continuation cost = %v, want 0", got)
	}
}

func TestPlanString(t *testing.T) {
	task := bridgeTask(t, 2, 2, 1, 2, 0.5, 0)
	p, err := PlanAStar(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if s == "" || len(p.Runs) == 0 {
		t.Fatal("plan should render runs")
	}
}

// Property: on randomized bridge tasks, A*, DP, and exhaustive search agree
// on the optimal cost (or all agree the task is infeasible).
func TestPlannersMatchBruteForceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		nOld := 1 + rng.Intn(3)
		nNew := 1 + rng.Intn(3)
		oldCap := 0.5 + rng.Float64()
		newCap := 0.5 + 1.5*rng.Float64()
		rate := 0.3 + rng.Float64()
		ports := 0
		if rng.Intn(2) == 0 {
			ports = 2*nOld + 1 + rng.Intn(2*nNew)
		}
		alpha := float64(rng.Intn(3)) * 0.3
		theta := 0.55 + 0.4*rng.Float64()
		task := bridgeTask(t, nOld, nNew, oldCap, newCap, rate, ports)
		opts := Options{Theta: theta, Alpha: alpha}

		want := bruteForceOptimal(t, task, opts)
		pa, errA := PlanAStar(task, opts)
		pd, errD := PlanDP(task, opts)
		if math.IsInf(want, 1) {
			if !errors.Is(errA, ErrInfeasible) || !errors.Is(errD, ErrInfeasible) {
				t.Fatalf("trial %d: brute force infeasible but planners said %v / %v", trial, errA, errD)
			}
			continue
		}
		if errA != nil || errD != nil {
			t.Fatalf("trial %d: planners failed (%v / %v) where brute force found %v", trial, errA, errD, want)
		}
		if math.Abs(pa.Cost-want) > 1e-9 || math.Abs(pd.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: A*=%v DP=%v brute=%v (opts %+v)", trial, pa.Cost, pd.Cost, want, opts)
		}
		checkPlan(t, task, pa, opts)
	}
}

func TestKeyerPacking(t *testing.T) {
	// Small totals fit uint64.
	k := newKeyer([]uint16{3, 7, 255})
	if !k.fits64 {
		t.Fatal("small totals should fit uint64")
	}
	a := k.key64([]uint16{1, 2, 3})
	b := k.key64([]uint16{1, 2, 4})
	c := k.key64([]uint16{2, 2, 3})
	if a == b || a == c || b == c {
		t.Error("distinct vectors must have distinct keys")
	}
	// Huge totals fall back to strings.
	big := make([]uint16, 8)
	for i := range big {
		big[i] = 0xFFFF
	}
	k2 := newKeyer(big)
	if k2.fits64 {
		t.Fatal("8×16 bits must not claim to fit uint64")
	}
	if k2.keyStr([]uint16{1, 2, 3, 4, 5, 6, 7, 8}) == k2.keyStr([]uint16{1, 2, 3, 4, 5, 6, 7, 9}) {
		t.Error("string keys must distinguish vectors")
	}
}

func TestHeuristicAdmissibleAndConsistent(t *testing.T) {
	task := bridgeTask(t, 3, 2, 1, 2, 0.5, 0)
	for _, alpha := range []float64{0, 0.4, 1} {
		sp, err := newSpace(task, Options{Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		// Enumerate all states; verify h(n) ≤ h(n') + c(n,n') for every
		// successor (consistency), which implies admissibility given
		// h(target) = 0.
		var vec []uint16
		var walk func(i int)
		states := [][]uint16{}
		totals := sp.totals
		var gen func(cur []uint16, i int)
		gen = func(cur []uint16, i int) {
			if i == len(totals) {
				states = append(states, append([]uint16(nil), cur...))
				return
			}
			for v := uint16(0); v <= totals[i]; v++ {
				gen(append(cur, v), i+1)
			}
		}
		gen(nil, 0)
		_ = walk
		_ = vec
		for _, st := range states {
			idx, _ := sp.intern(st)
			for last := -1; last < sp.nTypes; last++ {
				lt := migration.ActionType(last)
				h := sp.heuristic(idx, lt)
				if h < 0 {
					t.Fatalf("negative heuristic at %v", st)
				}
				if sp.isTarget(idx) && h != 0 {
					t.Fatalf("h(target) = %v, want 0", h)
				}
				for a := 0; a < sp.nTypes; a++ {
					if st[a] >= totals[a] {
						continue
					}
					at := migration.ActionType(a)
					next := append([]uint16(nil), st...)
					next[a]++
					nIdx, _ := sp.intern(next)
					hNext := sp.heuristic(nIdx, at)
					c := sp.stepCost(lt, at)
					if h > hNext+c+1e-9 {
						t.Fatalf("inconsistent heuristic at %v last=%v: h=%v > h'=%v + c=%v",
							st, lt, h, hNext, c)
					}
				}
			}
		}
	}
}

// TestWCMPUnlocksAsymmetricMigration replays the planner-level consequence
// of the §7.1 outage: mid-migration, small old bridges (capacity 1)
// coexist with a fat new one (capacity 2.5). Plain ECMP sends the old
// bridges an equal share and overloads them — even the *current* network
// state is unsafe, exactly the incident the paper describes — while the
// capacity-weighted policy balances the shares and lets the migration
// continue.
func TestWCMPUnlocksAsymmetricMigration(t *testing.T) {
	task := bridgeTask(t, 2, 2, 1, 2.5, 2.2, 0)
	// One new bridge is already in service (replanning start).
	opts := Options{Theta: 0.7, InitialCounts: []int{0, 1}, InitialLast: migration.ActionType(1)}
	if _, err := PlanAStar(task, opts); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("plain ECMP should deem the mixed-generation state unsafe, got %v", err)
	}
	opts.Split = routing.SplitCapacityWeighted
	p, err := PlanAStar(task, opts)
	if err != nil {
		t.Fatalf("WCMP planning failed: %v", err)
	}
	checkPlan(t, task, p, opts)
	// DP agrees under the same routing policy.
	pd, err := PlanDP(task, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pd.Cost-p.Cost) > 1e-9 {
		t.Fatalf("DP cost %v != A* cost %v under WCMP", pd.Cost, p.Cost)
	}
}

// TestMaxRunLength exercises the maintenance-window extension: runs are
// force-split every K actions, each split paying full unit cost and
// requiring a boundary check. A*, DP, and brute force must agree, and
// tighter caps cannot lower cost.
func TestMaxRunLength(t *testing.T) {
	task := bridgeTask(t, 3, 3, 1, 2, 0.8, 0)
	prev := -1.0
	for _, k := range []int{0, 3, 2, 1} {
		opts := Options{MaxRunLength: k}
		p := planBoth(t, task, opts)
		want := bruteForceOptimal(t, task, opts)
		if math.Abs(p.Cost-want) > 1e-9 {
			t.Fatalf("K=%d: planner %v != brute force %v", k, p.Cost, want)
		}
		if k == 1 && p.Cost != float64(task.NumActions()) {
			t.Errorf("K=1 means every action is its own run: cost %v, want %v",
				p.Cost, task.NumActions())
		}
		// Iterating 0 (uncapped), then descending K: cost non-decreasing.
		if prev >= 0 && p.Cost < prev-1e-9 {
			t.Errorf("tighter cap lowered cost: %v after %v", p.Cost, prev)
		}
		prev = p.Cost
		// Runs respect the cap.
		for _, run := range p.Runs {
			if k > 0 && len(run.Blocks) > k {
				t.Errorf("K=%d: run of %d blocks", k, len(run.Blocks))
			}
		}
	}
}

// TestMaxRunLengthWithAlpha combines the cap with the generalized cost
// function.
func TestMaxRunLengthWithAlpha(t *testing.T) {
	task := bridgeTask(t, 3, 2, 1, 2, 0.6, 0)
	for _, alpha := range []float64{0.3, 0.7} {
		opts := Options{MaxRunLength: 2, Alpha: alpha}
		p := planBoth(t, task, opts)
		want := bruteForceOptimal(t, task, opts)
		if math.Abs(p.Cost-want) > 1e-9 {
			t.Fatalf("alpha=%v: planner %v != brute %v", alpha, p.Cost, want)
		}
	}
}

// TestMaxRunLengthEnforcesSplitBoundaries builds a task where the state
// two-thirds of the way through a long drain run is unsafe: uncapped, the
// run glides over it; with K forcing a boundary there, the planner must
// interleave an undrain first.
func TestMaxRunLengthEnforcesSplitBoundaries(t *testing.T) {
	// 3 old bridges, rate such that 1 bridge is overloaded but 2 are fine.
	task := bridgeTask(t, 3, 3, 1, 2, 1.2, 0)
	unc, err := PlanAStar(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := PlanAStar(task, Options{MaxRunLength: 1})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Cost < unc.Cost {
		t.Fatalf("cap lowered cost: %v vs %v", capped.Cost, unc.Cost)
	}
	// Under K=1 every intermediate state is a boundary: a pure
	// drain-3-first prefix would hit the 1-bridge state (util 1.2 > θ), so
	// the plan must interleave undrains before the last drain.
	if err := VerifyPlan(task, capped.Sequence, Options{MaxRunLength: 1}); err != nil {
		t.Fatal(err)
	}
	// Under K=1 every intermediate state is checked; draining everything
	// first passes through the overloaded 2-bridge and 1-bridge states and
	// must be rejected.
	bad := []int{0, 1, 2, 3, 4, 5}
	if err := VerifyPlan(task, bad, Options{MaxRunLength: 1}); err == nil {
		t.Error("drain-everything-first should fail verification under K=1")
	}
	// Uncapped verification also rejects it, but for a different reason:
	// the single drain→undrain type-change boundary is the all-drained
	// state, which strands the demand entirely.
	if err := VerifyPlan(task, bad, Options{}); err == nil {
		t.Error("drain-everything-first crosses an unreachable boundary even uncapped")
	}
}

// TestRunsOfChunking checks the deterministic chunking helper.
func TestRunsOfChunking(t *testing.T) {
	task := bridgeTask(t, 4, 2, 1, 2, 0.5, 0)
	seq := []int{0, 1, 2, 3, 4, 5} // 4 drains then 2 undrains
	runs := RunsOf(task, seq, 3)
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3 (3+1 drains, 2 undrains)", len(runs))
	}
	if len(runs[0].Blocks) != 3 || len(runs[1].Blocks) != 1 || len(runs[2].Blocks) != 2 {
		t.Fatalf("chunk sizes = %d/%d/%d", len(runs[0].Blocks), len(runs[1].Blocks), len(runs[2].Blocks))
	}
	if got := SequenceCostCapped(task, seq, 0, NoLast, 3, 0); got != 3 {
		t.Fatalf("capped cost = %v, want 3", got)
	}
}

// TestCappedHeuristicConsistent verifies h under MaxRunLength: for every
// state and successor, h(n) ≤ c(n,n') + h(n') — which with h(target)=0
// implies admissibility, hence the exact-optimality results of
// TestMaxRunLength hold by construction rather than luck.
func TestCappedHeuristicConsistent(t *testing.T) {
	task := bridgeTask(t, 3, 2, 1, 2, 0.5, 0)
	for _, k := range []int{1, 2, 3} {
		for _, alpha := range []float64{0, 0.4, 1} {
			sp, err := newSpace(task, Options{Alpha: alpha, MaxRunLength: k})
			if err != nil {
				t.Fatal(err)
			}
			var states [][]uint16
			var gen func(cur []uint16, i int)
			gen = func(cur []uint16, i int) {
				if i == len(sp.totals) {
					states = append(states, append([]uint16(nil), cur...))
					return
				}
				for v := uint16(0); v <= sp.totals[i]; v++ {
					gen(append(cur, v), i+1)
				}
			}
			gen(nil, 0)
			for _, st := range states {
				idx, _ := sp.intern(st)
				for last := -1; last < sp.nTypes; last++ {
					lt := migration.ActionType(last)
					for tail := 1; tail <= k; tail++ {
						h := sp.heuristicCapped(idx, lt, tail)
						if sp.isTarget(idx) && h != 0 {
							t.Fatalf("K=%d α=%v: h(target)=%v", k, alpha, h)
						}
						for a := 0; a < sp.nTypes; a++ {
							if st[a] >= sp.totals[a] {
								continue
							}
							at := migration.ActionType(a)
							c, newTail, _ := sp.step(lt, at, tail)
							next := append([]uint16(nil), st...)
							next[a]++
							nIdx, _ := sp.intern(next)
							hNext := sp.heuristicCapped(nIdx, at, newTail)
							if h > c+hNext+1e-9 {
								t.Fatalf("K=%d α=%v st=%v last=%v tail=%d → %v: h=%v > c=%v + h'=%v",
									k, alpha, st, lt, tail, at, h, c, hNext)
							}
						}
					}
				}
			}
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	task := bridgeTask(t, 1, 1, 1, 2, 0.5, 0)
	bad := []Options{
		{Theta: -0.1},
		{Theta: 1.5},
		{Alpha: -0.2},
		{Alpha: 1.2},
		{MaxStates: -1},
		{MaxRunLength: -2},
		{FunnelFactor: 0.5},
		{InitialRunLength: -1},
	}
	for i, opts := range bad {
		if _, err := PlanAStar(task, opts); err == nil {
			t.Errorf("case %d (%+v): invalid options accepted", i, opts)
		}
		if _, err := PlanDP(task, opts); err == nil {
			t.Errorf("case %d DP (%+v): invalid options accepted", i, opts)
		}
	}
	// Valid corner values pass.
	for _, opts := range []Options{{Theta: 1}, {Alpha: 1}, {FunnelFactor: 1}} {
		if _, err := PlanAStar(task, opts); err != nil {
			t.Errorf("valid options %+v rejected: %v", opts, err)
		}
	}
}
