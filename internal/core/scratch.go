package core

import (
	"sync"

	"klotski/internal/routing"
)

// Pooled per-lane scratch.
//
// Every lane owns three allocations that scale with the fabric shape: the
// keyer's encode buffer (2 bytes per block type), the dense occupancy
// scratch (one counter per datacenter), and the packed active-switch
// bitset (one bit per switch). Under fleet planning the same fabric shape
// is planned over and over — often concurrently — and each run builds one
// coordinator lane plus a lane per worker, so these buffers dominate the
// planner's steady-state allocation rate. A process-wide sync.Pool keyed
// by the exact shape recycles them across runs.
//
// Recycled buffers are NOT zeroed, deliberately: every consumer fully
// overwrites before reading. A fresh lane's first buildView takes the
// full-rebuild path (curVec == nil) and CopyFroms the bitset from the
// base; occupancyDense starts with copy(occ, occBase); keyBytes rewrites
// the whole buffer on every call and never grows it (the shape sizes it
// exactly). The pool therefore changes allocation behavior only — never
// verdicts — which BenchmarkPlannerGuard's allocs/op and the differential
// suites pin.

// scratchShape identifies one pool: lanes with equal shapes have
// interchangeable scratch. A zero field means the lane does not use that
// buffer (e.g. occ == 0 when the task has no occupancy budget).
type scratchShape struct {
	switches int // activity-bitset width in switches; 0 = no bitset
	occ      int // dense occupancy scratch length; 0 = no occupancy check
	key      int // keyer encode buffer length (2 bytes per block type)
}

// laneScratch is one lane's recyclable buffer bundle.
type laneScratch struct {
	shape scratchShape
	occ   []int32
	act   routing.Bitset
	key   []byte
}

// laneScratchPools maps scratchShape -> *sync.Pool of *laneScratch.
var laneScratchPools sync.Map

func scratchPoolFor(shape scratchShape) *sync.Pool {
	if p, ok := laneScratchPools.Load(shape); ok {
		return p.(*sync.Pool)
	}
	p, _ := laneScratchPools.LoadOrStore(shape, &sync.Pool{New: func() any {
		s := &laneScratch{shape: shape, key: make([]byte, shape.key)}
		if shape.occ > 0 {
			s.occ = make([]int32, shape.occ)
		}
		if shape.switches > 0 {
			s.act = routing.NewBitset(shape.switches)
		}
		return s
	}})
	return p.(*sync.Pool)
}

// scratchShape resolves the buffer shape this space's lanes need.
func (sp *space) scratchShape() scratchShape {
	shape := scratchShape{key: 2 * sp.nTypes}
	if sp.occDelta != nil {
		shape.occ = len(sp.occBase)
		if !sp.opts.DisableIncrementalView {
			shape.switches = sp.task.Topo.NumSwitches()
		}
	}
	return shape
}

// acquireScratch takes a scratch bundle for one new lane and records it
// for release at plan completion. Coordinator-only: lanes are always
// built between parallel phases.
func (sp *space) acquireScratch() *laneScratch {
	scr := scratchPoolFor(sp.scratchShape()).Get().(*laneScratch)
	sp.scratches = append(sp.scratches, scr)
	return scr
}

// releaseScratch returns every acquired bundle to its pool. Called once
// per completed run from finishPlan; checkpointed (interrupted) runs keep
// their scratch — their lanes stay live for the resume leg.
func (sp *space) releaseScratch() {
	for _, scr := range sp.scratches {
		scratchPoolFor(scr.shape).Put(scr)
	}
	sp.scratches = nil
}
