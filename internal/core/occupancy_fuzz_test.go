package core

import (
	"math/rand"
	"testing"

	"klotski/internal/demand"
	"klotski/internal/migration"
	"klotski/internal/topo"
)

// multiDCBridgeTask is bridgeTask with every bridge switch scattered
// across nDC datacenters (src/dst stay regional, DC -1), so the packed
// occupancy masks span several budget slots including the regional one.
func multiDCBridgeTask(t testing.TB, rng *rand.Rand, nOld, nNew, nDC int) *migration.Task {
	t.Helper()
	tp := topo.New("multidc")
	src := tp.AddSwitch(topo.Switch{Name: "src", Role: topo.RoleRSW, DC: -1})
	dst := tp.AddSwitch(topo.Switch{Name: "dst", Role: topo.RoleEBB, DC: -1})
	task := &migration.Task{Name: "multidc", Topo: tp}
	d := task.AddType(migration.ActionTypeInfo{Name: "drain-old", Op: migration.Drain, Role: topo.RoleFADU})
	u := task.AddType(migration.ActionTypeInfo{Name: "undrain-new", Op: migration.Undrain, Role: topo.RoleFADU})
	for i := 0; i < nOld; i++ {
		s := tp.AddSwitch(topo.Switch{Name: "old" + string(rune('a'+i)), Role: topo.RoleFADU,
			Generation: 1, DC: rng.Intn(nDC)})
		tp.AddCircuit(src, s, 1)
		tp.AddCircuit(s, dst, 1)
		task.AddBlock(migration.Block{Type: d, Switches: []topo.SwitchID{s}})
	}
	for i := 0; i < nNew; i++ {
		s := tp.AddSwitch(topo.Switch{Name: "new" + string(rune('a'+i)), Role: topo.RoleFADU,
			Generation: 2, DC: rng.Intn(nDC)})
		tp.SetSwitchActive(s, false)
		tp.AddCircuit(src, s, 1)
		tp.AddCircuit(s, dst, 1)
		task.AddBlock(migration.Block{Type: u, Switches: []topo.SwitchID{s}})
	}
	task.Demands.Add(demand.Demand{Name: "d", Src: src, Dst: dst, Rate: 0.5})
	return task
}

// FuzzOccupancyBitset cross-checks the two packed scratch structures
// against their dense references on randomized fabrics:
//
//   - the packed active-switch occupancy (lane.occupancyPacked, one
//     popcount per budgeted DC over the incrementally maintained bitset)
//     against the dense per-DC recount (lane.occupancyDense), both as the
//     final verdict and as exact per-DC counts, across a random walk of
//     vectors through buildView;
//   - the 2-bit packed feasTable (16 verdicts per word, CAS-maintained)
//     against a dense map model across random get/set/claim sequences
//     spanning multiple chunks.
func FuzzOccupancyBitset(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(20260808), uint8(0))
	f.Add(int64(-7), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, budgetBits uint8) {
		rng := rand.New(rand.NewSource(seed))
		nDC := 1 + rng.Intn(3)
		task := multiDCBridgeTask(t, rng, 2+rng.Intn(4), 2+rng.Intn(4), nDC)

		// Budget a random subset of DCs (bit i of budgetBits constrains DC
		// i; bit 7 constrains the regional pseudo-DC) with random caps, so
		// both tight and slack budgets appear.
		nSw := task.Topo.NumSwitches()
		bud := map[int]int{}
		for dc := 0; dc < nDC; dc++ {
			if budgetBits&(1<<uint(dc)) != 0 {
				bud[dc] = 1 + rng.Intn(nSw)
			}
		}
		if budgetBits&(1<<7) != 0 {
			bud[-1] = 1 + rng.Intn(nSw)
		}
		if len(bud) == 0 {
			bud[0] = 1 + rng.Intn(nSw)
		}
		sp, err := newSpace(task, Options{SpaceBudget: bud})
		if err != nil {
			t.Fatalf("newSpace: %v", err)
		}
		ln := sp.ln
		if ln.act == nil {
			t.Fatal("incremental lane should maintain the packed activity bitset")
		}

		occ := make([]int32, len(sp.occBase))
		vec := make([]uint16, sp.nTypes)
		for step := 0; step < 150; step++ {
			ty := rng.Intn(sp.nTypes)
			if rng.Intn(2) == 0 && vec[ty] < sp.totals[ty] {
				vec[ty]++
			} else if vec[ty] > 0 {
				vec[ty]--
			}
			ln.buildView(vec)

			if packed, dense := ln.occupancyPacked(), ln.occupancyDense(vec); packed != dense {
				t.Fatalf("step %d vec %v: packed verdict %v != dense %v", step, vec, packed, dense)
			}
			// Exact per-DC counts: replay the dense deltas and compare the
			// popcounts. occCheck entries are built in ascending DC-slot
			// order over the budgeted slots.
			copy(occ, sp.occBase)
			for ty := 0; ty < sp.nTypes; ty++ {
				blocks := task.BlocksOfType(migration.ActionType(ty))
				for j := 0; j < int(vec[ty]); j++ {
					for _, d := range sp.occDelta[blocks[j]] {
						occ[d.dc] += d.delta
					}
				}
			}
			entry := 0
			for slot, b := range sp.occBudget {
				if b <= 0 {
					continue
				}
				e := &sp.occCheck[entry]
				entry++
				if e.budget != b {
					t.Fatalf("occCheck[%d] budget %d != occBudget[%d] %d", entry-1, e.budget, slot, b)
				}
				if got, want := int32(ln.act.CountAnd(e.mask)), occ[slot]; got != want {
					t.Fatalf("step %d vec %v DC slot %d: packed count %d != dense %d",
						step, vec, slot, got, want)
				}
			}
			if entry != len(sp.occCheck) {
				t.Fatalf("%d occCheck entries for %d budgeted slots", len(sp.occCheck), entry)
			}
		}

		// Packed 2-bit feasibility table vs a dense model. Indices span
		// several chunks so word packing, chunk selection, and the claim
		// protocol's own-entry test are all exercised.
		ft := &feasTable{}
		model := map[int32]int8{}
		maxIdx := int32(3 * chunkSize)
		for op := 0; op < 400; op++ {
			idx := rng.Int31n(maxIdx)
			switch rng.Intn(4) {
			case 0: // read
				if got, want := ft.get(idx), model[idx]; got != want {
					t.Fatalf("op %d: get(%d) = %d, model %d", op, idx, got, want)
				}
			case 1: // commit a verdict (overwrites claims, like the real flow)
				v := feasYes
				if rng.Intn(2) == 0 {
					v = feasNo
				}
				ft.set(idx, v)
				model[idx] = v
			case 2: // claim: must win exactly when the entry is unknown
				if got, want := ft.claim(idx), model[idx] == 0; got != want {
					t.Fatalf("op %d: claim(%d) = %v, model %v (state %d)", op, idx, got, want, model[idx])
				}
				if model[idx] == 0 {
					model[idx] = feasClaimed
				}
			case 3: // abandon a claim (the checker's unwind guard does this)
				if model[idx] == feasClaimed {
					ft.set(idx, 0)
					model[idx] = 0
				}
			}
		}
		for idx := int32(0); idx < maxIdx; idx += 13 {
			if got, want := ft.get(idx), model[idx]; got != want {
				t.Fatalf("final sweep: get(%d) = %d, model %d", idx, got, want)
			}
		}
	})
}
