package core

import (
	"errors"
	"runtime"

	"klotski/internal/audit"
	"klotski/internal/migration"
)

// ErrAudit means the planner produced a sequence that the independent
// post-planning audit rejected — a planner bug (most likely in a fast
// path: the satisfiability cache, the incremental evaluator, or a parallel
// lane), caught before the plan could reach an operator.
var ErrAudit = errors.New("core: plan failed independent audit")

// auditConfig maps planner options onto the independent auditor's
// configuration. The planner's own fast-path knobs (its caches, its
// incremental toggles, its shared Evaluator) deliberately do not cross
// this boundary: the auditor builds all of its state from the task alone.
// The audit does default to the auditor's OWN incremental + parallel
// engine (audit.ModeIncremental), which is differential-tested
// byte-identical to the serial reference — Options.AuditSerial forces the
// reference engine; audit worker lanes follow the planner's worker
// setting (adaptive resolves to the runtime's parallelism).
func auditConfig(opts *Options) audit.Config {
	cfg := audit.Config{
		Theta:        opts.Theta,
		Split:        opts.Split,
		FunnelFactor: opts.FunnelFactor,
		MaxRunLength: opts.MaxRunLength,
		SpaceBudget:  opts.SpaceBudget,
		Recorder:     opts.Recorder,
		InitialLast:  audit.NoLast,
	}
	if !opts.AuditSerial {
		cfg.Mode = audit.ModeIncremental
		cfg.Workers = opts.Workers
		if opts.Workers == WorkersAdaptive {
			cfg.Workers = runtime.GOMAXPROCS(0)
			if c := opts.Sched; c != nil {
				if s := c.Share(); s >= 1 {
					cfg.Workers = s
				}
			}
		}
		if c := opts.Sched; c != nil {
			// Audit spans become stealable pool tasks; the client's Run
			// joins its batch before returning, which is exactly the
			// barrier the disjoint-segment protocol needs.
			cfg.Runner = c.Run
		}
	}
	if opts.InitialCounts != nil {
		cfg.InitialCounts = opts.InitialCounts
		cfg.InitialLast = opts.InitialLast
		cfg.InitialRunLength = opts.InitialRunLength
	}
	return cfg
}

// AuditSequence replays seq against the independent verifier of
// internal/audit, honoring the planning options' constraint set (θ, split
// mode, funneling, run cap, space budget) and canonical resume state. It
// returns the structured report; an error only signals malformed inputs,
// not a failed audit.
func AuditSequence(task *migration.Task, seq []int, opts Options, freeOrder bool) (*audit.Report, error) {
	cfg := auditConfig(&opts)
	cfg.FreeOrder = freeOrder
	return audit.Verify(task, seq, cfg)
}

// AuditPartial audits a safe partial sequence — a checkpoint's prefix —
// where stopping short of the full migration is expected: the partial's
// endpoint is checked as a final observable state, but the missing
// remainder is not an error.
func AuditPartial(task *migration.Task, seq []int, opts Options, freeOrder bool) (*audit.Report, error) {
	cfg := auditConfig(&opts)
	cfg.FreeOrder = freeOrder
	cfg.AllowPartial = true
	return audit.Verify(task, seq, cfg)
}

// AuditResumed audits a plan that continues an already-executed prefix of
// blocks (the control loop's mid-migration state). For canonical plans the
// prefix collapses to per-type counts; free-order plans (baselines) carry
// the exact executed sequence into the replay.
func AuditResumed(task *migration.Task, seq, executed []int, opts Options, freeOrder bool) (*audit.Report, error) {
	cfg := auditConfig(&opts)
	cfg.FreeOrder = freeOrder
	if freeOrder {
		cfg.InitialCounts = nil
		cfg.Executed = executed
		return audit.Verify(task, seq, cfg)
	}
	if len(executed) > 0 {
		counts := make([]int, task.NumTypes())
		for _, id := range executed {
			if id < 0 || id >= len(task.Blocks) {
				return nil, errors.New("core: executed prefix references invalid block")
			}
			counts[task.Blocks[id].Type]++
		}
		cfg.InitialCounts = counts
		cfg.InitialLast = task.Blocks[executed[len(executed)-1]].Type
		cfg.InitialRunLength = 0
	}
	return audit.Verify(task, seq, cfg)
}

// finishPlan runs the opt-out post-planning audit on a freshly
// reconstructed plan. Every planner success path funnels through here, so
// resumed runs (ResumePlan re-enters the same paths) are covered too. The
// audit replays the sequence on fresh views with fresh evaluators, sharing
// nothing with the search that produced it; a failure turns the "success"
// into ErrAudit — a wrong plan must never look like a right one.
func (sp *space) finishPlan(p *Plan) (*Plan, error) {
	// The run is over whichever way the audit goes: recycle the lanes'
	// pooled scratch. (Interrupted runs never reach here, correctly — a
	// checkpointed space keeps its lanes live for the resume leg.)
	defer sp.releaseScratch()
	sp.sealBound(p)
	if sp.opts.SkipAudit {
		return p, nil
	}
	span := sp.rec.Span("audit.verify")
	rep, err := AuditSequence(sp.task, p.Sequence, sp.opts, false)
	span.End()
	if err != nil {
		return nil, err
	}
	p.Audit = rep
	rep.Gap = p.Metrics.OptimalityGap
	if !rep.Passed {
		return nil, planErrf(ErrAudit, "%s", rep.Reason)
	}
	return p, nil
}
