package core

import "sync"

// batchTestHook, when non-nil, runs inside every frontier-warmer worker
// before its shard. Tests use it to inject worker panics and verify the
// planner retires the warmer and finishes serially with an identical plan.
var batchTestHook func(worker int)

// Batched frontier warming for A*'s lazy path.
//
// A* only consults the evaluator at run boundaries, one state per
// expansion, so unlike the DP planner it cannot sweep the whole product
// space up front. But at the moment a node is expanded, the states that
// will need fresh feasibility verdicts soon are known with high
// probability: the node itself (its boundary check), its successors (their
// boundary checks when they are popped in turn), and — speculatively — the
// top of the open heap, whose entries are the next expansion candidates. A
// frontierWarmer resolves all of those that miss the shared satisfiability
// cache in one parallel batch on persistent worker lanes (each owning a
// forked evaluator whose incremental memo stays warm across batches),
// committing verdicts through the cache's claim protocol. Verdicts are
// deterministic functions of the state, so the warmed cache is identical to
// what lazy serial checking would produce (plus speculative extra entries
// that cannot change search decisions): plans are byte-identical to the
// serial planner's; only wall-clock time and the check accounting differ.
// Speculative entries the search never consults are tallied in
// Metrics.SpeculativeWaste.
//
// Warming requires verdicts keyed by vector alone, so it is disabled under
// funneling (feasibility then depends on the in-flight block) and when the
// cache is off.

// frontierWarmer holds the persistent worker state for batched frontier
// checks.
type frontierWarmer struct {
	sp      *space
	workers int
	topK    int // open-heap prefix length warmed speculatively
	lanes   []*lane
	items   []int32
	scratch []uint16

	// retired latches after a worker panic: the warmer is dead for the
	// rest of the run and the search falls back to the serial lazy path.
	retired bool
}

// newFrontierWarmer returns a warmer for sp, or nil when warming cannot
// help (fewer than two workers, cache disabled, funneling in effect, a
// prior worker panic degraded the run to serial, or the adaptive policy
// has switched warming off).
func (sp *space) newFrontierWarmer(workers int) *frontierWarmer {
	if workers < 2 || sp.opts.DisableCache || sp.opts.FunnelFactor > 1 || sp.degraded {
		return nil
	}
	if sp.adaptive != nil && !sp.adaptive.warming {
		return nil
	}
	if sp.specPending == nil {
		sp.specPending = make(map[int32]struct{}, 64)
	}
	return &frontierWarmer{
		sp:      sp,
		workers: workers,
		topK:    4 * workers,
		scratch: make([]uint16, sp.nTypes),
	}
}

// run resolves, in one parallel batch, the feasibility of the expanded
// node's boundary state, its successors, and the boundary states and
// successors of the open heap's top-K entries, for every vector that
// misses the shared cache. Subsequent serial feasible() calls then hit the
// cache. Called from the planner goroutine between pop and expansion; the
// batch joins before it returns, so the serial search never observes a
// claim in flight. cur is the expanded node's vector.
func (fw *frontierWarmer) run(cur []uint16, vecIdx int32, pq *openHeap) {
	sp := fw.sp
	fw.items = fw.items[:0]
	fw.add(vecIdx)
	fw.addSuccessors(cur)
	// The heap prefix is deterministic: it is a pure function of the push
	// and pop sequence, which parallelism does not alter. Entries may be
	// stale duplicates; warming them is harmless (worst case it is counted
	// as speculative waste). Entries the bound engine already proves dead
	// are skipped: pop-time pruning will discard them unexpanded, so
	// resolving verdicts for them or their successors is guaranteed waste.
	// Verdict-neutral — warming only prefills the cache.
	for i := 0; i < fw.topK && i < len(pq.items); i++ {
		it := pq.items[i]
		if sp.bd != nil && it.last != NoLast && sp.bd.Dead(sp.vec(it.vecIdx), int(it.last)) {
			continue
		}
		fw.add(it.vecIdx)
		fw.addSuccessors(sp.vec(it.vecIdx))
	}
	if len(fw.items) < 2 {
		return // a single miss is cheaper on the lazy path than a spawn
	}
	fw.ensureLanes()

	var (
		panicMu  sync.Mutex
		panicked bool
	)
	tasks := make([]func(), fw.workers)
	for w := 0; w < fw.workers; w++ {
		w, ln := w, fw.lanes[w]
		tasks[w] = func() {
			// Panic containment: the claim protocol releases the in-flight
			// claim on unwind, the remaining items stay unknown for lazy
			// serial rechecking, and the warmer retires itself below — one
			// poisoned lane must not take the search down.
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					panicked = true
					panicMu.Unlock()
				}
			}()
			if hook := batchTestHook; hook != nil {
				hook(w)
			}
			for i := w; i < len(fw.items); i += fw.workers {
				sp.feasibleOn(ln, fw.items[i])
			}
		}
	}
	sp.runTasks(tasks)

	resolved := 0
	for _, idx := range fw.items {
		if v := sp.feasT.get(idx); v == feasYes || v == feasNo {
			sp.specPending[idx] = struct{}{}
			resolved++
		}
	}
	for _, ln := range fw.lanes {
		ln.fold()
	}
	sp.metrics.BatchedChecks += resolved
	sp.rec.BatchedChecks(resolved)
	if panicked {
		// Verdicts committed before the panic are final and correct; only
		// the lanes are suspect. Retire the warmer and degrade the run.
		fw.retired = true
		sp.degradeToSerial()
		return
	}
	if ap := sp.adaptive; ap != nil {
		// Lanes are joined and folded: a safe decision point. The policy
		// may shrink the batch width or switch warming off entirely; both
		// are verdict-neutral, so the search is unaffected beyond timing.
		ap.observe()
		if ap.lanes < fw.workers {
			fw.workers = ap.lanes
		}
		if !ap.warming || fw.workers < 2 {
			fw.retired = true
		}
	}
}

// add queues idx for the batch unless its verdict is already known or it
// is already queued.
func (fw *frontierWarmer) add(idx int32) {
	if fw.sp.feasT.get(idx) != 0 {
		return
	}
	for _, it := range fw.items {
		if it == idx {
			return
		}
	}
	fw.items = append(fw.items, idx)
}

// addSuccessors queues the cache-missing successor vectors of cur,
// interning them on the coordinator (interning stays serial in A*, keeping
// dense-index assignment deterministic).
func (fw *frontierWarmer) addSuccessors(cur []uint16) {
	sp := fw.sp
	for a := 0; a < sp.nTypes; a++ {
		if cur[a] >= sp.totals[a] {
			continue
		}
		copy(fw.scratch, cur)
		fw.scratch[a]++
		idx, _ := sp.intern(fw.scratch)
		fw.add(idx)
	}
}

// ensureLanes builds the persistent worker lanes on first use. Each owns a
// forked evaluator, scratch view, and incremental memo; per-check recording
// is disabled in workers and folded in bulk after each batch.
func (fw *frontierWarmer) ensureLanes() {
	if fw.lanes != nil {
		return
	}
	fw.lanes = make([]*lane, fw.workers)
	for w := range fw.lanes {
		fw.lanes[w] = fw.sp.workerLane()
	}
}
