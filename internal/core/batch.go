package core

import (
	"runtime"
	"sync"
)

// Batched boundary checking for A*'s lazy path.
//
// A* only consults the evaluator at run boundaries, one state per
// expansion, so unlike the DP planner it cannot precheck the whole product
// space up front. But at the moment a node is expanded, the states that
// will need fresh feasibility verdicts soon are known: the node itself (its
// boundary check) and its successors (their boundary checks when they are
// popped in turn). A boundaryBatcher resolves all of those that miss the
// shared cache in one parallel batch on persistent per-worker spaces — each
// with its own evaluator clone whose incremental memo stays warm across
// batches — and merges the verdicts into the shared cache. Verdicts are
// deterministic functions of the state, so the merged cache is identical to
// what lazy serial checking would produce (plus speculative extra entries
// that cannot change search decisions): plans are byte-identical to
// PlanAStar's; only Checks/CacheHits accounting differs.
//
// Batching requires verdicts keyed by vector alone, so it is disabled under
// funneling (feasibility then depends on the in-flight block) and when the
// cache is off.

// boundaryBatcher holds the persistent worker state for batched checks.
type boundaryBatcher struct {
	sp      *space
	workers int
	wsp     []*space // lazily built; nil entries fall back to lazy checking
	built   bool
	items   []batchItem
	results []int8
}

type batchItem struct {
	idx int32
}

// newBoundaryBatcher returns a batcher for sp, or nil when batching cannot
// help (too few workers, cache disabled, or funneling in effect).
func newBoundaryBatcher(sp *space, workers int) *boundaryBatcher {
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 2 || sp.opts.DisableCache || sp.opts.FunnelFactor > 1 {
		return nil
	}
	return &boundaryBatcher{sp: sp, workers: workers}
}

// warm resolves, in one parallel batch, the feasibility of the expanded
// node's boundary state and of every successor vector that misses the
// shared cache. Subsequent serial feasible() calls then hit the cache.
// cur is the expanded node's vector and scratch a caller-owned slice of
// the same length.
func (bb *boundaryBatcher) warm(cur []uint16, vecIdx int32, scratch []uint16) {
	sp := bb.sp
	bb.items = bb.items[:0]
	add := func(idx int32) {
		if _, ok := sp.feas[sp.extKey(idx, NoLast)]; ok {
			return
		}
		for _, it := range bb.items {
			if it.idx == idx {
				return
			}
		}
		bb.items = append(bb.items, batchItem{idx: idx})
	}
	add(vecIdx)
	for a := 0; a < sp.nTypes; a++ {
		if cur[a] >= sp.totals[a] {
			continue
		}
		copy(scratch, cur)
		scratch[a]++
		idx, _ := sp.intern(scratch)
		add(idx)
	}
	if len(bb.items) < 2 {
		return // a single miss is cheaper on the lazy path than a spawn
	}
	bb.ensureWorkers()

	if cap(bb.results) < len(bb.items) {
		bb.results = make([]int8, len(bb.items))
	}
	results := bb.results[:len(bb.items)]
	for i := range results {
		results[i] = 0
	}
	var wg sync.WaitGroup
	for w := 0; w < bb.workers; w++ {
		wsp := bb.wsp[w]
		if wsp == nil {
			continue // construction failed; those items stay lazy
		}
		wg.Add(1)
		go func(w int, wsp *space) {
			defer wg.Done()
			// A panicking check would take the serial path down too; here
			// it just leaves the verdict unset for lazy rechecking.
			defer func() { _ = recover() }()
			for i := w; i < len(bb.items); i += bb.workers {
				vec := sp.vec(bb.items[i].idx) // read-only; stable under append
				if wsp.check(mustIntern(wsp, vec), NoLast, false) {
					results[i] = feasYes
				} else {
					results[i] = feasNo
				}
			}
		}(w, wsp)
	}
	wg.Wait()

	resolved := 0
	for i, it := range bb.items {
		if results[i] == 0 {
			continue
		}
		sp.feas[sp.extKey(it.idx, NoLast)] = results[i]
		resolved++
	}
	sp.metrics.Checks += resolved
	sp.metrics.BatchedChecks += resolved
	sp.rec.ChecksAdded(resolved)
	sp.rec.BatchedChecks(resolved)
}

// ensureWorkers constructs the persistent per-worker spaces on first use.
// Each owns an independent evaluator, scratch view, and incremental memo;
// per-check recording is disabled in workers and bulk-accounted by warm.
func (bb *boundaryBatcher) ensureWorkers() {
	if bb.built {
		return
	}
	bb.built = true
	bb.wsp = make([]*space, bb.workers)
	wopts := bb.sp.opts
	wopts.Evaluator = nil
	wopts.Recorder = nil
	for w := range bb.wsp {
		if wsp, err := newSpace(bb.sp.task, wopts); err == nil {
			bb.wsp[w] = wsp
		}
	}
}
