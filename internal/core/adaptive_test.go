package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"klotski/internal/migration"
)

// plansMatch fails the test unless the two plans are byte-identical:
// same cost and same block sequence.
func plansMatch(t *testing.T, label string, want, got *Plan) {
	t.Helper()
	if math.Abs(want.Cost-got.Cost) > 1e-9 {
		t.Fatalf("%s: cost %v != serial cost %v", label, got.Cost, want.Cost)
	}
	if len(want.Sequence) != len(got.Sequence) {
		t.Fatalf("%s: sequence length %d != serial %d", label, len(got.Sequence), len(want.Sequence))
	}
	for i := range want.Sequence {
		if want.Sequence[i] != got.Sequence[i] {
			t.Fatalf("%s: sequences diverge at step %d: %d != %d",
				label, i, got.Sequence[i], want.Sequence[i])
		}
	}
}

// TestAdaptivePlanIdenticalAnyCounterHistory is the adaptive-policy
// property test: for any seeded fabric and ANY counter history — windows
// are rewritten with random values through adaptiveTestHook, so decisions
// fire in arbitrary orders, including degenerate ones (immediate shed to
// serial, warming flapping off mid-search, never enough evidence) — the
// plan under Workers=WorkersAdaptive is byte-identical to the serial
// planner's. GOMAXPROCS is pinned to 4 so the policy resolves real
// parallelism even on single-CPU CI hosts.
func TestAdaptivePlanIdenticalAnyCounterHistory(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	defer func() { adaptiveTestHook = nil }()

	planners := []struct {
		name string
		fn   func(*migration.Task, Options) (*Plan, error)
	}{
		{"astar", PlanAStar},
		{"dp", PlanDP},
	}
	rng := rand.New(rand.NewSource(20260808))
	runs, decisions := 0, 0
	for trial := 0; trial < 12; trial++ {
		task := bridgeTask(t, 2+rng.Intn(3), 2+rng.Intn(3), 1,
			0.8+rng.Float64(), 0.5+rng.Float64(), 0)
		opts := Options{}
		switch trial % 3 {
		case 1:
			opts.Theta = 0.8
		case 2:
			opts.SpaceBudget = map[int]int{0: task.Topo.NumSwitches() - 1}
		}
		for _, p := range planners {
			adaptiveTestHook = nil
			serial, errS := p.fn(task, opts)

			hrng := rand.New(rand.NewSource(rng.Int63()))
			adaptiveTestHook = func(w *adaptiveWindow) {
				w.WorkerChecks = hrng.Intn(96) // sometimes below the evidence gate
				w.Contention = hrng.Intn(48)
				w.Batched = hrng.Intn(48)
				w.Waste = hrng.Intn(48)
				w.Hits = hrng.Intn(300)
				w.Misses = hrng.Intn(30)
			}
			aopts := opts
			aopts.Workers = WorkersAdaptive
			adaptive, errA := p.fn(task, aopts)
			if (errS == nil) != (errA == nil) {
				t.Fatalf("trial %d %s: feasibility disagreement: %v vs %v",
					trial, p.name, errS, errA)
			}
			if errS != nil {
				continue
			}
			plansMatch(t, p.name, serial, adaptive)
			runs++
			decisions += adaptive.Metrics.AdaptiveDecisions
		}
	}
	// Every adaptive run traces at least the initial lane resolve; randomized
	// windows must additionally have fired real policy decisions somewhere,
	// or the property test exercised nothing.
	if decisions <= runs {
		t.Fatalf("adaptive policy never acted across %d randomized runs (%d decisions)",
			runs, decisions)
	}
}

// TestAdaptiveDecisionRules pins each policy rule on crafted evidence
// windows: waste switches warming off, contention halves the lanes, an
// idle cache sheds one lane, and dropping below two lanes clamps to
// serial with warming off.
func TestAdaptiveDecisionRules(t *testing.T) {
	task := bridgeTask(t, 2, 2, 1, 1, 0.5, 0)
	sp, err := newSpace(task, Options{Workers: WorkersAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	ap := sp.adaptive
	if ap == nil {
		t.Fatal("Workers=WorkersAdaptive did not install the adaptive policy")
	}
	if sp.metrics.AdaptiveDecisions != 1 {
		t.Fatalf("initial resolve should trace one decision, got %d", sp.metrics.AdaptiveDecisions)
	}

	ap.lanes, ap.warming = 4, true
	ap.decide(adaptiveWindow{WorkerChecks: 40, Batched: 10, Waste: 6})
	if ap.warming {
		t.Fatal("waste 6/10 should switch warming off")
	}
	if ap.lanes != 4 {
		t.Fatalf("waste rule must not touch lanes, got %d", ap.lanes)
	}
	if sp.metrics.AdaptiveWarmOffs != 1 {
		t.Fatalf("AdaptiveWarmOffs = %d, want 1", sp.metrics.AdaptiveWarmOffs)
	}

	ap.decide(adaptiveWindow{WorkerChecks: 40, Contention: 20})
	if ap.lanes != 2 {
		t.Fatalf("contention 20/40 should halve lanes to 2, got %d", ap.lanes)
	}

	ap.lanes = 3
	ap.decide(adaptiveWindow{WorkerChecks: 64, Hits: 99, Misses: 1})
	if ap.lanes != 2 {
		t.Fatalf("1%% miss rate should shed one lane from 3, got %d", ap.lanes)
	}

	// At two lanes the idle-cache rule no longer sheds (2 is the minimum
	// useful parallel width); only contention can push below it.
	ap.decide(adaptiveWindow{WorkerChecks: 64, Hits: 99, Misses: 1})
	if ap.lanes != 2 {
		t.Fatalf("idle-cache rule must not shed below 2 lanes, got %d", ap.lanes)
	}
	ap.decide(adaptiveWindow{WorkerChecks: 40, Contention: 20})
	if ap.lanes != 1 {
		t.Fatalf("halving 2 lanes should clamp to serial, got %d", ap.lanes)
	}
	if ap.warming {
		t.Fatal("serial clamp must switch warming off")
	}
	if sp.metrics.AdaptiveLanes != 1 {
		t.Fatalf("Metrics.AdaptiveLanes = %d, want 1", sp.metrics.AdaptiveLanes)
	}

	// The evidence gate: a thin window (few worker checks) must not act.
	before := sp.metrics.AdaptiveDecisions
	adaptiveTestHook = func(w *adaptiveWindow) { w.WorkerChecks = adaptiveMinEvidence - 1; w.Contention = 1000 }
	defer func() { adaptiveTestHook = nil }()
	ap.lanes = 4
	ap.observe()
	if sp.metrics.AdaptiveDecisions != before || ap.lanes != 4 {
		t.Fatalf("thin window acted: decisions %d→%d, lanes %d",
			before, sp.metrics.AdaptiveDecisions, ap.lanes)
	}
}

// TestAdaptiveWorkersPublicEntryPoints drives WorkersAdaptive through the
// public planner surfaces (natural counter history, no hook) and checks
// the option validation rejects counts below the sentinel.
func TestAdaptiveWorkersPublicEntryPoints(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	task := bridgeTask(t, 3, 3, 1, 1, 0.6, 0)
	serialA, err := PlanAStar(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	adaptA, err := PlanAStarParallel(task, Options{}, WorkersAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	plansMatch(t, "astar-adaptive", serialA, adaptA)

	serialD, err := PlanDP(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	adaptD, err := PlanDPParallel(task, Options{}, WorkersAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	plansMatch(t, "dp-adaptive", serialD, adaptD)

	if _, err := PlanAStar(task, Options{Workers: -2}); err == nil {
		t.Fatal("Workers below WorkersAdaptive must be rejected")
	}
}
