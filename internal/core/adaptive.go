package core

import "runtime"

// Adaptive worker policy.
//
// The static -workers knob makes the operator guess how much parallelism a
// fabric can absorb, and guessing wrong makes parallel *lose* to serial:
// on a small fixture or a saturated machine, worker spawns, shard
// contention, and speculative warming cost more than they save. The
// adaptive policy removes the guess. It starts from the runtime's
// parallelism (GOMAXPROCS) and then resizes at run time from the same
// counters the observability layer already exports:
//
//   - shard_contention: cross-worker collisions on the intern table and
//     the verdict-claim CAS. A high collision rate per worker check means
//     the lanes are fighting over the shared tables — halve them.
//   - speculative_waste: frontier-warmed verdicts the serial search never
//     consumed. When most of a warming batch is wasted, speculation is
//     mispredicting this fabric — switch the A* warmer off.
//   - cache hit-rate: when nearly every consultation hits the
//     satisfiability cache, parallel check capacity is idle — shed a lane.
//
// Decisions are taken between parallel phases (after a warming batch or a
// wavefront layer, when worker lanes are joined), never concurrently with
// them. The policy only ever resizes lane counts or disables warming —
// both proven verdict-neutral (plans are byte-identical at every worker
// count, warming only precomputes verdicts the lazy path would compute
// identically) — so for ANY counter history the emitted plan is
// byte-identical to the serial planner's; the adaptive property test
// drives randomized histories through adaptiveTestHook to pin exactly
// that. Every decision is traced through internal/obs
// (planner.adaptive_decisions, planner.adaptive_lanes,
// planner.adaptive_warm_offs) and mirrored in Metrics.
//
// Select the policy with Options.Workers = WorkersAdaptive; an explicit
// worker count keeps the old static behavior as an override.

// WorkersAdaptive, assigned to Options.Workers, selects the runtime
// adaptive worker policy instead of a static worker count.
const WorkersAdaptive = -1

const (
	// adaptiveMinEvidence is the minimum number of worker-lane checks a
	// decision window must contain; smaller windows keep accumulating.
	adaptiveMinEvidence = 32

	// adaptiveContentionShrink halves the lane count when the window's
	// shard-contention events exceed this fraction of its worker checks.
	adaptiveContentionShrink = 0.25

	// adaptiveWasteOff disables A* speculative warming when more than this
	// fraction of the window's batched verdicts sit unconsumed.
	adaptiveWasteOff = 0.5

	// adaptiveMissFloor sheds one lane when fewer than 1 in
	// adaptiveMissFloor cache consultations miss — check capacity is idle.
	adaptiveMissFloor = 20
)

// adaptiveWindow is the counter evidence one decision acts on: deltas
// since the previous decision, except Waste, which is the current
// unconsumed-speculation gauge.
type adaptiveWindow struct {
	Contention   int // new intern-shard / verdict-claim collisions
	WorkerChecks int // checks executed on worker lanes
	Batched      int // verdicts resolved by warming batches
	Waste        int // speculative verdicts currently unconsumed
	Hits         int // satisfiability-cache hits (all lanes)
	Misses       int // satisfiability-cache misses (all lanes)
}

// adaptiveTestHook, when non-nil, observes (and may rewrite) every decision
// window before the policy acts on it. The adaptive property test drives
// randomized counter histories through it and asserts the emitted plan
// stays byte-identical to the serial planner's regardless.
var adaptiveTestHook func(*adaptiveWindow)

// adaptivePolicy owns the effective lane count and the warming switch for
// one space. Only the planner goroutine touches it, between parallel
// phases.
type adaptivePolicy struct {
	sp      *space
	lanes   int  // current effective worker-lane count (1 = serial)
	warming bool // A* speculative frontier warming enabled

	// Window baselines: counter values at the last acted-on decision.
	lastContention   int
	lastWorkerChecks int
	lastBatched      int
	lastHits         int
	lastMisses       int
}

// newAdaptivePolicy resolves the initial lane count from the runtime's
// parallelism — or, when the run is attached to a shared scheduler pool,
// from the client's pool share, so concurrent plans size themselves to
// their slice of the global worker budget instead of each assuming the
// whole machine — and traces the resolve as the first decision.
func newAdaptivePolicy(sp *space) *adaptivePolicy {
	lanes := runtime.GOMAXPROCS(0)
	if c := sp.opts.Sched; c != nil {
		if s := c.Share(); s >= 1 {
			lanes = s
		}
	}
	ap := &adaptivePolicy{sp: sp, lanes: lanes}
	ap.warming = ap.lanes >= 2
	sp.metrics.AdaptiveDecisions++
	sp.metrics.AdaptiveLanes = ap.lanes
	sp.rec.AdaptiveDecision(ap.lanes)
	return ap
}

// observe gathers the counter window since the last acted-on decision and,
// given enough evidence, decides. Called by the coordinator right after
// worker lanes fold — never concurrently with them.
func (ap *adaptivePolicy) observe() {
	sp := ap.sp
	cont := int(sp.contention.Load() + sp.vt.contention.Load())
	w := adaptiveWindow{
		Contention:   cont - ap.lastContention,
		WorkerChecks: sp.metrics.WorkerChecks - ap.lastWorkerChecks,
		Batched:      sp.metrics.BatchedChecks - ap.lastBatched,
		Waste:        len(sp.specPending),
		Hits:         sp.metrics.CacheHits - ap.lastHits,
		Misses:       sp.metrics.CacheMisses - ap.lastMisses,
	}
	if hook := adaptiveTestHook; hook != nil {
		hook(&w)
	}
	if w.WorkerChecks < adaptiveMinEvidence {
		return // keep accumulating; thin windows make noisy decisions
	}
	ap.lastContention = cont
	ap.lastWorkerChecks = sp.metrics.WorkerChecks
	ap.lastBatched = sp.metrics.BatchedChecks
	ap.lastHits = sp.metrics.CacheHits
	ap.lastMisses = sp.metrics.CacheMisses
	ap.decide(w)
}

// decide applies the policy rules to one evidence window. Lane counts only
// shrink: growth would re-probe a configuration the counters already
// rejected, and a resumed leg re-resolves from scratch anyway.
func (ap *adaptivePolicy) decide(w adaptiveWindow) {
	sp := ap.sp
	changed := false
	if ap.warming && w.Batched > 0 &&
		float64(w.Waste) > adaptiveWasteOff*float64(w.Batched) {
		ap.warming = false
		changed = true
		sp.metrics.AdaptiveWarmOffs++
		sp.rec.AdaptiveWarmOff()
	}
	switch {
	case w.Contention > 0 &&
		float64(w.Contention) > adaptiveContentionShrink*float64(w.WorkerChecks):
		ap.lanes /= 2
		changed = true
	case ap.lanes > 2 && w.Hits+w.Misses > 0 &&
		w.Misses*adaptiveMissFloor < w.Hits+w.Misses:
		ap.lanes--
		changed = true
	}
	if ap.lanes < 2 {
		// Below two lanes parallelism cannot pay; run the rest serially.
		ap.lanes = 1
		ap.warming = false
	}
	if changed {
		sp.metrics.AdaptiveDecisions++
		sp.metrics.AdaptiveLanes = ap.lanes
		sp.rec.AdaptiveDecision(ap.lanes)
	}
}
