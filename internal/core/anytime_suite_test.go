package core_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"klotski/internal/core"
	"klotski/internal/gen"
)

// TestAnytimeSuiteTopologies is the acceptance test for anytime planning
// on the Table-3 evaluation topologies A–C: an A* run interrupted by a
// tight budget (and separately by a cancelled context) must return a
// resumable checkpoint, and resuming must land the exact optimal plan of
// an uninterrupted run.
func TestAnytimeSuiteTopologies(t *testing.T) {
	cases := []struct {
		name  string
		scale float64
	}{
		{"A", 0.2},
		{"B", 0.15},
		{"C", 0.1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := gen.Suite(tc.name, tc.scale)
			if err != nil {
				t.Fatal(err)
			}
			task := sc.Task
			opts := core.Options{Alpha: 0.2}

			ref, err := core.PlanAStar(task, opts)
			if err != nil {
				t.Fatalf("uninterrupted PlanAStar: %v", err)
			}

			// Interrupt with a tight Timeout, then resume to completion
			// under a doubling MaxStates ladder.
			topts := opts
			topts.Timeout = time.Nanosecond
			_, err = core.PlanAStarContext(context.Background(), task, topts)
			var intr *core.Interrupted
			if !errors.As(err, &intr) {
				t.Fatalf("1ns timeout should interrupt, got %v", err)
			}
			if !errors.Is(err, core.ErrBudget) {
				t.Fatalf("timeout interruption should wrap ErrBudget, got %v", intr.Reason)
			}
			plan := resumeToCompletion(t, intr.Checkpoint, opts)
			assertSamePlan(t, "timeout", plan, ref)

			// Interrupt with a cancelled context mid-flight.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err = core.PlanAStarContext(ctx, task, opts)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled ctx should surface context.Canceled, got %v", err)
			}
			if !errors.As(err, &intr) {
				t.Fatalf("cancellation should carry a checkpoint, got %v", err)
			}
			plan = resumeToCompletion(t, intr.Checkpoint, opts)
			assertSamePlan(t, "cancel", plan, ref)
		})
	}
}

// resumeToCompletion resumes a checkpoint under doubling MaxStates budgets
// until the plan completes, asserting every intermediate interruption is
// itself resumable.
func resumeToCompletion(t *testing.T, cp *core.Checkpoint, opts core.Options) *core.Plan {
	t.Helper()
	budget := 64
	for hops := 0; hops < 64; hops++ {
		ropts := opts
		ropts.MaxStates = budget
		plan, err := core.Resume(context.Background(), cp, ropts)
		if err == nil {
			return plan
		}
		var intr *core.Interrupted
		if !errors.As(err, &intr) {
			t.Fatalf("resume hop %d: want *Interrupted, got %v", hops, err)
		}
		cp = intr.Checkpoint
		budget *= 2
	}
	t.Fatal("resume ladder did not converge")
	return nil
}

func assertSamePlan(t *testing.T, mode string, got, want *core.Plan) {
	t.Helper()
	if math.Abs(got.Cost-want.Cost) > 1e-9 {
		t.Fatalf("%s: resumed cost %v != uninterrupted %v", mode, got.Cost, want.Cost)
	}
	if !reflect.DeepEqual(got.Sequence, want.Sequence) {
		t.Fatalf("%s: resumed sequence differs from uninterrupted run", mode)
	}
}
