package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"klotski/internal/sched"
)

// These differential tests enforce the pool's core contract: routing a
// plan's parallel phases (DP wavefront layers, A* frontier-warm batches)
// through a shared sched.Pool — at any pool size, share, steal
// interleaving, or preemption point — never changes the plan. The serial
// planners are the reference; everything else must match them byte for
// byte.

// shuffleHooks installs seeded random delays into both per-plan worker
// hooks so pool workers and submitters race through claim orders that
// differ run to run; returns the uninstaller.
func shuffleHooks(seed int64) func() {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	delay := func(int) {
		mu.Lock()
		d := time.Duration(rng.Intn(150)) * time.Microsecond
		mu.Unlock()
		time.Sleep(d)
	}
	parallelTestHook = delay
	batchTestHook = delay
	return func() { parallelTestHook = nil; batchTestHook = nil }
}

func samePlan(t *testing.T, label string, got, want *Plan) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil plan (got %v, want %v)", label, got, want)
	}
	if !reflect.DeepEqual(got.Sequence, want.Sequence) || got.Cost != want.Cost {
		t.Fatalf("%s: plan diverged from serial reference:\n got %v (cost %.6f)\nwant %v (cost %.6f)",
			label, got.Sequence, got.Cost, want.Sequence, want.Cost)
	}
}

// TestSchedPoolByteIdentity races both planners through pools of size
// {1,2,4,GOMAXPROCS} with static and adaptive lane policies under
// shuffled interleavings, and demands the serial planner's exact output
// every time.
func TestSchedPoolByteIdentity(t *testing.T) {
	task := bridgeTask(t, 4, 4, 100, 100, 150, 0)
	opts := Options{Alpha: 0.2}

	refA, err := PlanAStar(task, opts)
	if err != nil {
		t.Fatal(err)
	}
	refD, err := PlanDP(task, opts)
	if err != nil {
		t.Fatal(err)
	}

	defer shuffleHooks(7)()
	for _, pw := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		pool := sched.NewPool(pw, nil)
		for _, lanes := range []int{2, WorkersAdaptive} {
			client, err := pool.Register("diff", sched.ClientOptions{})
			if err != nil {
				t.Fatal(err)
			}
			o := opts
			o.Workers = lanes
			o.Sched = client

			p, err := PlanAStarContext(context.Background(), task, o)
			if err != nil {
				t.Fatalf("pool=%d lanes=%d astar: %v", pw, lanes, err)
			}
			samePlan(t, "astar", p, refA)

			p, err = PlanDPContext(context.Background(), task, o)
			if err != nil {
				t.Fatalf("pool=%d lanes=%d dp: %v", pw, lanes, err)
			}
			samePlan(t, "dp", p, refD)
			client.Close()
		}
		pool.Close()
	}
}

// TestSchedCheckpointResumeAcrossClients interrupts a pool-attached
// search mid-run (budget exhaustion standing in for a preemption's
// cooperative checkpoint), then resumes the checkpoint under a different
// client on a different pool — exactly the fleet's preempt-readmit path —
// and demands the undisturbed serial plan.
func TestSchedCheckpointResumeAcrossClients(t *testing.T) {
	task := bridgeTask(t, 4, 4, 100, 100, 150, 0)
	opts := Options{Alpha: 0.2}
	ref, err := PlanAStar(task, opts)
	if err != nil {
		t.Fatal(err)
	}

	defer shuffleHooks(11)()
	pool1 := sched.NewPool(2, nil)
	c1, err := pool1.Register("leg1", sched.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Workers = WorkersAdaptive
	o.Sched = c1
	o.MaxStates = 6
	_, err = PlanAStarContext(context.Background(), task, o)
	c1.Close()
	pool1.Close()
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("want *Interrupted from the budgeted leg, got %v", err)
	}

	pool2 := sched.NewPool(4, nil)
	defer pool2.Close()
	c2, err := pool2.Register("leg2", sched.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ro := opts
	ro.Workers = WorkersAdaptive
	ro.Sched = c2
	p, err := Resume(context.Background(), intr.Checkpoint, ro)
	if err != nil {
		t.Fatalf("resume under the second pool: %v", err)
	}
	samePlan(t, "resume", p, ref)
	checkPlan(t, task, p, opts)
}

// TestSchedPreemptedClientStillPlans registers a plan, preempts its
// client mid-setup, and verifies the plan completes byte-identically
// anyway: a share of zero only moves the work onto the submitting
// goroutine.
func TestSchedPreemptedClientStillPlans(t *testing.T) {
	task := bridgeTask(t, 3, 3, 100, 100, 150, 0)
	opts := Options{Alpha: 0.2}
	ref, err := PlanDP(task, opts)
	if err != nil {
		t.Fatal(err)
	}

	pool := sched.NewPool(1, nil)
	defer pool.Close()
	victim, err := pool.Register("victim", sched.ClientOptions{Priority: 0, MinShare: 1})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := pool.Register("hi", sched.ClientOptions{Priority: 1, MinShare: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer hi.Close()
	select {
	case <-victim.Preempted():
	case <-time.After(2 * time.Second):
		t.Fatal("victim never preempted")
	}

	o := opts
	o.Workers = 2
	o.Sched = victim
	p, err := PlanDPContext(context.Background(), task, o)
	if err != nil {
		t.Fatalf("preempted plan failed instead of draining inline: %v", err)
	}
	samePlan(t, "preempted", p, ref)
	victim.Close()
}

// TestLaneScratchShapes pins the scratch-pool plumbing: acquired buffers
// carry exactly the shapes the lanes rebuild into, the same fabric shape
// maps to the same sync.Pool, and release is idempotent.
func TestLaneScratchShapes(t *testing.T) {
	task := bridgeTask(t, 3, 3, 100, 100, 150, 0)
	sp, err := newSpace(task, Options{Alpha: 0.2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	shape := sp.scratchShape()
	if shape.key != 2*sp.nTypes {
		t.Fatalf("scratch key size = %d, want %d", shape.key, 2*sp.nTypes)
	}
	if scratchPoolFor(shape) != scratchPoolFor(shape) {
		t.Fatal("same shape resolved to different pools")
	}

	base := len(sp.scratches) // newSpace's own lanes may already hold some
	scr := sp.acquireScratch()
	if len(scr.key) != shape.key {
		t.Fatalf("acquired key buffer len %d, want %d", len(scr.key), shape.key)
	}
	if len(sp.scratches) != base+1 {
		t.Fatalf("space tracks %d scratches, want %d", len(sp.scratches), base+1)
	}
	sp.releaseScratch()
	if sp.scratches != nil {
		t.Fatal("releaseScratch left the scratch list non-nil")
	}
	sp.releaseScratch() // double release must be harmless
}
