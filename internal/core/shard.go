package core

import (
	"sync"
	"sync/atomic"
)

// Concurrent backbone of the search space.
//
// The parallel planners shard satisfiability work across worker lanes that
// all read and write the same two structures: the vector intern table
// (vector → dense index) and the satisfiability cache (dense index →
// verdict). Both are built for mostly-uncontended concurrent access:
//
//   - vecTable stripes its index maps over mutex-guarded shards, so
//     concurrent interns of different vectors rarely serialize, and stores
//     vector payloads in fixed-position chunks published with atomic
//     pointers, so readers never observe a reallocation;
//   - feasTable packs one 2-bit verdict per interned vector, 16 verdicts
//     to a uint32 word, in the same chunked layout, accessed purely with
//     atomics — a cache probe is one load plus a shift, and workers claim
//     unknown entries with a word-CAS so each vector is checked exactly
//     once no matter how many workers want it.
//
// Dense indices are allocated by a global atomic counter, which keeps the
// two tables aligned: feasTable slot i is the verdict for vecTable vector
// i. On the planners' serial paths the same structures are used from one
// goroutine and cost a few uncontended atomic ops per probe — cheaper than
// the map lookups they replaced.

const (
	// internShards stripes the intern index. 16 shards keep the collision
	// probability of a handful of workers negligible.
	internShards = 16

	// chunkBits sizes the payload chunks of both tables: 4096 entries per
	// chunk, spineSize chunks max. The product bounds the number of
	// interned vectors at 16.7M — beyond any practical MaxStates budget
	// (the default is 4M) — and keeps each spine a fixed, never-reallocated
	// array so readers are lock-free.
	chunkBits = 12
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
	spineSize = 1 << 12
)

// internShard is one stripe of the vector index: a mutex plus the
// key → dense-index map for vectors hashing to this stripe.
type internShard struct {
	mu  sync.RWMutex
	m64 map[uint64]int32 // when the packed key fits 64 bits
	mS  map[string]int32 // fallback for wide vectors
}

// vecTable is the striped concurrent intern table: every distinct vector
// gets a dense index, and the flattened vector payload is readable
// lock-free by any goroutine holding a published index.
type vecTable struct {
	nTypes int
	fits64 bool
	n      atomic.Int64 // number of interned vectors
	shards [internShards]internShard
	spine  [spineSize]atomic.Pointer[[]uint16]

	// contention counts intern races: a shard write lock acquired only to
	// find another worker published the same vector first.
	contention atomic.Int64
}

func newVecTable(nTypes int, fits64 bool) *vecTable {
	vt := &vecTable{nTypes: nTypes, fits64: fits64}
	for i := range vt.shards {
		if fits64 {
			vt.shards[i].m64 = make(map[uint64]int32, 64)
		} else {
			vt.shards[i].mS = make(map[string]int32, 64)
		}
	}
	return vt
}

// shardOf folds a packed key onto a stripe. The multiplicative hash
// decorrelates the low bits that adjacent vectors share.
func shardOf(h uint64) int {
	return int((h*0x9e3779b97f4a7c15)>>60) & (internShards - 1)
}

func (vt *vecTable) shard64(key uint64) *internShard {
	return &vt.shards[shardOf(key)]
}

func (vt *vecTable) shardS(key []byte) *internShard {
	h := uint64(1469598103934665603) // FNV-1a
	for _, b := range key {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return &vt.shards[shardOf(h)]
}

// len returns the number of interned vectors.
func (vt *vecTable) len() int { return int(vt.n.Load()) }

// chunk returns the payload chunk for index c, allocating and publishing
// it on first use. Losing the publication CAS just discards the local
// allocation; the published chunk is never replaced, so concurrent readers
// are safe.
func (vt *vecTable) chunk(c int) []uint16 {
	if c >= spineSize {
		panic("core: intern table overflow (16M vectors); raise chunkBits/spineSize")
	}
	if p := vt.spine[c].Load(); p != nil {
		return *p
	}
	fresh := make([]uint16, chunkSize*vt.nTypes)
	if vt.spine[c].CompareAndSwap(nil, &fresh) {
		return fresh
	}
	return *vt.spine[c].Load()
}

// vec returns the interned vector at idx. The returned slice aliases
// chunk storage; do not modify. Safe for concurrent readers holding an
// index published to them (via the shard map or a coordinator handoff).
func (vt *vecTable) vec(idx int32) []uint16 {
	ch := vt.chunk(int(idx) >> chunkBits)
	off := (int(idx) & chunkMask) * vt.nTypes
	return ch[off : off+vt.nTypes]
}

// intern returns the dense index for vec, creating it if new. The keyer
// supplies the packing layout plus caller-private scratch, so concurrent
// interns from different lanes never share a buffer. The returned bool is
// true when the vector was already known.
func (vt *vecTable) intern(k *keyer, vec []uint16) (int32, bool) {
	if vt.fits64 {
		key := k.key64(vec)
		sh := vt.shard64(key)
		sh.mu.RLock()
		idx, ok := sh.m64[key]
		sh.mu.RUnlock()
		if ok {
			return idx, true
		}
		sh.mu.Lock()
		if idx, ok := sh.m64[key]; ok {
			sh.mu.Unlock()
			vt.contention.Add(1)
			return idx, true
		}
		idx = vt.place(vec)
		sh.m64[key] = idx
		sh.mu.Unlock()
		return idx, false
	}
	buf := k.keyBytes(vec)
	sh := vt.shardS(buf)
	sh.mu.RLock()
	idx, ok := sh.mS[string(buf)]
	sh.mu.RUnlock()
	if ok {
		return idx, true
	}
	sh.mu.Lock()
	if idx, ok := sh.mS[string(buf)]; ok {
		sh.mu.Unlock()
		vt.contention.Add(1)
		return idx, true
	}
	idx = vt.place(vec)
	sh.mS[string(buf)] = idx
	sh.mu.Unlock()
	return idx, false
}

// place allocates the next dense index and writes the payload. Called with
// the owning shard's write lock held; the lock's release publishes the
// payload to map readers, and coordinator handoffs publish it to workers.
func (vt *vecTable) place(vec []uint16) int32 {
	idx := int32(vt.n.Add(1) - 1)
	ch := vt.chunk(int(idx) >> chunkBits)
	copy(ch[(int(idx)&chunkMask)*vt.nTypes:], vec)
	return idx
}

// lookup returns the dense index for vec without creating it.
func (vt *vecTable) lookup(k *keyer, vec []uint16) (int32, bool) {
	if vt.fits64 {
		key := k.key64(vec)
		sh := vt.shard64(key)
		sh.mu.RLock()
		idx, ok := sh.m64[key]
		sh.mu.RUnlock()
		return idx, ok
	}
	buf := k.keyBytes(vec)
	sh := vt.shardS(buf)
	sh.mu.RLock()
	idx, ok := sh.mS[string(buf)]
	sh.mu.RUnlock()
	return idx, ok
}

// feasTable is the equivalent-state satisfiability cache (§4.2) for the
// non-funneling regime, where a verdict depends on the vector alone: one
// 2-bit verdict per interned vector, packed 16 to a uint32 word, in the
// same chunked layout as vecTable. Verdicts are feasYes/feasNo; 0 is
// unknown and feasClaimed marks a check in flight on some worker lane.
// The packing shrinks the cache 16× versus a verdict slot per int32 (1KB
// instead of 16KB per 4096-vector chunk); neighbor verdicts share a word,
// so writes are CAS loops rather than plain stores — a verdict is written
// once (plus the rare claim/unwind), so the loop is effectively one CAS.
type feasTable struct {
	spine [spineSize]atomic.Pointer[feasChunk]
}

const (
	feasBits    = 2
	feasPerWord = 32 / feasBits // verdicts packed per uint32
	feasVMask   = 1<<feasBits - 1
)

type feasChunk [chunkSize / feasPerWord]uint32

const feasClaimed int8 = 3

func (ft *feasTable) chunk(c int, alloc bool) *feasChunk {
	if c >= spineSize {
		panic("core: satisfiability cache overflow (16M vectors)")
	}
	p := ft.spine[c].Load()
	if p == nil && alloc {
		fresh := new(feasChunk)
		if !ft.spine[c].CompareAndSwap(nil, fresh) {
			return ft.spine[c].Load()
		}
		return fresh
	}
	return p
}

// slot locates idx's word and in-word bit shift within its chunk.
func feasSlot(idx int32) (word int, shift uint) {
	off := int(idx) & chunkMask
	return off / feasPerWord, uint(off%feasPerWord) * feasBits
}

// get returns the verdict for idx: feasYes, feasNo, feasClaimed, or 0 for
// unknown.
func (ft *feasTable) get(idx int32) int8 {
	ch := ft.chunk(int(idx)>>chunkBits, false)
	if ch == nil {
		return 0
	}
	word, shift := feasSlot(idx)
	return int8(atomic.LoadUint32(&ch[word]) >> shift & feasVMask)
}

// set stores a verdict (or 0 to forget one). The CAS loop only retries
// when a neighbor verdict in the same word moved underneath us; this
// entry's 2 bits are overwritten unconditionally.
func (ft *feasTable) set(idx int32, v int8) {
	ch := ft.chunk(int(idx)>>chunkBits, true)
	word, shift := feasSlot(idx)
	for {
		old := atomic.LoadUint32(&ch[word])
		next := old&^(uint32(feasVMask)<<shift) | uint32(v)<<shift
		if old == next || atomic.CompareAndSwapUint32(&ch[word], old, next) {
			return
		}
	}
}

// claim attempts to take ownership of an unknown entry, transitioning
// 0 → feasClaimed. Exactly one claimant wins; the winner must finalize the
// entry with set (and reset it to 0 if its check unwinds). A word-CAS
// failure caused by a neighbor verdict retries; only a non-zero value in
// this entry's own bits loses the claim.
func (ft *feasTable) claim(idx int32) bool {
	ch := ft.chunk(int(idx)>>chunkBits, true)
	word, shift := feasSlot(idx)
	for {
		old := atomic.LoadUint32(&ch[word])
		if old>>shift&feasVMask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint32(&ch[word], old, old|uint32(feasClaimed)<<shift) {
			return true
		}
	}
}
