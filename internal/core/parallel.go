package core

import (
	"context"
	"math"
	"runtime"
	"sync"

	"klotski/internal/migration"
)

// Wavefront-parallel DP.
//
// The DP planner must evaluate every state of the compact product space
// (§4.3), and satisfiability checks dominate its runtime. The recurrence
// for a state only reads states with one fewer finished action, so the
// lattice decomposes into ascending total-actions layers whose states are
// mutually independent: each layer is computed by a worker pool against
// the read-only memo of the previous layers, then merged serially in
// deterministic order. Per-state work — the satisfiability checks and the
// recurrence arithmetic — runs on worker lanes (forked evaluators, shared
// claim-protocol satisfiability cache); the memo, prev table, and
// accounting are only ever written by the coordinator.
//
// Determinism: every state is valued by the same recurrence over the same
// predecessor verdicts in the same consideration order as the serial
// planner (dpRun.computeWith is shared), so memo values and best
// predecessors agree exactly for every state both planners visit. The
// wavefront additionally values states the serial top-down recursion
// prunes (ones reachable only through infeasible boundaries); those extra
// entries are never read by the sweep or reconstruction, so plans are
// byte-identical.
//
// Accounting: StatesCreated/StatesPopped count exactly the states the
// serial recursion evaluates, at any worker count. Wavefront-valued memo
// entries are not counted at merge time; instead their keys are kept in a
// ledger and flushWavefront replays the serial recursion's reachable
// closure over the resolved satisfiability verdicts, counting only the
// ledger entries the serial planner would have evaluated itself. The
// surplus — speculative cells the serial recursion never reads — is
// reported separately as Metrics.SpeculativeStates.
//
// The wavefront is incompatible with funneling headroom (feasibility then
// depends on the in-flight block, not just the vector) and pointless when
// the cache is disabled; PlanDP falls back to the serial recursion in both
// cases, as well as when the lattice exceeds the state budget or is too
// small to amortize worker spawns.

// parallelTestHook, when non-nil, runs inside every wavefront worker before
// its shard. Tests use it to inject worker panics and verify the planner
// contains them — degrading to serial execution with an identical plan —
// instead of crashing the process.
var parallelTestHook func(worker int)

// wfState identifies one DP state of the current layer.
type wfState struct {
	vecIdx int32
	a      migration.ActionType
	t      int
	key    int64
}

// wfResult is a worker's valuation of the state at the same index; valid
// is false when the worker bailed (cancellation) before computing it.
type wfResult struct {
	cost  float64
	prev  prevInfo
	valid bool
}

// wavefront fills the DP memo bottom-up in parallel layers. It returns nil
// when it completes or does not apply (the serial sweep then finishes the
// job), or a latched interruption reason (budget/cancel) for plan() to
// checkpoint. A recovered worker panic is not an error: the valid results
// of the poisoned layer are merged (each is final — layers are
// independent), the space degrades to serial execution for the remainder
// of the run, and the serial sweep lazily values whatever the wavefront
// did not finish — producing the byte-identical plan. States already
// memoized — a resumed checkpoint — are skipped, so only the remaining work
// is parallelized.
func (d *dpRun) wavefront() error {
	sp := d.sp
	workers := sp.effectiveWorkers()
	if workers < 2 || sp.opts.DisableCache || sp.opts.FunnelFactor > 1 || sp.degraded {
		return nil
	}
	size := 1
	for i := range sp.totals {
		span := int(sp.totals[i]-sp.initial[i]) + 1
		if size > sp.opts.maxStates()/span {
			return nil // lattice exceeds the budget; leave it to the serial guard
		}
		size *= span
	}
	if size < 2*workers {
		return nil // too small to amortize worker spawns
	}
	span := sp.rec.Span("dp.wavefront")
	defer span.End()

	// Enumerate the lattice in lexicographic order on the coordinator —
	// interning stays serial, keeping dense-index assignment deterministic —
	// bucketing vector indices by layer (total actions above the initial
	// vector).
	maxLayer := 0
	for i := range sp.totals {
		maxLayer += int(sp.totals[i] - sp.initial[i])
	}
	layers := make([][]int32, maxLayer+1)
	cur := append([]uint16(nil), sp.initial...)
	var enum func(i, depth int)
	enum = func(i, depth int) {
		if i == len(cur) {
			idx, _ := sp.intern(cur)
			layers[depth] = append(layers[depth], idx)
			return
		}
		for v := sp.initial[i]; v <= sp.totals[i]; v++ {
			cur[i] = v
			enum(i+1, depth+int(v-sp.initial[i]))
		}
		cur[i] = sp.initial[i]
	}
	enum(0, 0)

	lanes := make([]*lane, workers)
	for w := range lanes {
		lanes[w] = sp.workerLane()
	}
	tails := d.tails()
	var states []wfState
	var results []wfResult
	for l := 1; l <= maxLayer; l++ {
		states = states[:0]
		for _, vecIdx := range layers[l] {
			v := sp.vec(vecIdx)
			for a := 0; a < sp.nTypes; a++ {
				if v[a] <= sp.initial[a] {
					continue // a cannot have been the last action
				}
				for _, t := range tails {
					key := sp.extKeyT(vecIdx, migration.ActionType(a), t)
					if _, ok := d.memo[key]; ok {
						continue // already finalized by a previous leg
					}
					if sp.bd != nil && sp.bd.DominatedDP(v, a) {
						// Same pruning decision the serial recursion makes
						// in f(): memoize +Inf without valuing the cell.
						// Uncounted here — flushWavefront counts the subset
						// of pruned cells the serial recursion would
						// actually have reached, keeping the pruned-states
						// metric identical at any worker count.
						d.memo[key] = math.Inf(1)
						if d.wfPruned == nil {
							d.wfPruned = make(map[int64]struct{})
						}
						d.wfPruned[key] = struct{}{}
						continue
					}
					states = append(states, wfState{vecIdx, migration.ActionType(a), t, key})
				}
			}
		}
		if len(states) == 0 {
			continue
		}
		// Guard the budget before committing to the layer, so an oversized
		// layer interrupts cleanly at a layer boundary (all merged memo
		// entries final) instead of mid-merge. Merged-but-unflushed ledger
		// entries stand in for the StatesCreated they will fold into, so
		// the guard tracks total work even though the merge itself no
		// longer bumps the counter.
		if sp.metrics.StatesCreated-sp.budgetBase+(len(d.wfLedger)-d.wfPoppedFlushed)+len(states) > sp.opts.maxStates() {
			sp.stopErr = ErrBudget
			return sp.stopErr
		}
		if cap(results) < len(states) {
			results = make([]wfResult, len(states))
		}
		res := results[:len(states)]
		for i := range res {
			res[i] = wfResult{}
		}
		panicked := d.computeLayer(states, res, lanes[:workers])
		// Merge in ascending state order. Values are final regardless of
		// merge order (states of one layer are independent). Results of a
		// poisoned layer are merged too: each valid slot was fully computed
		// before the panic and the sweep revalues the rest lazily. Merged
		// keys go to the ledger, not the counters — flushWavefront later
		// folds in exactly the subset the serial recursion would have
		// evaluated, so the accounting is worker-invariant.
		if d.wfLedger == nil {
			d.wfLedger = make(map[int64]struct{}, len(res))
		}
		for i := range res {
			if !res[i].valid {
				continue // worker bailed on cancellation or panic; recomputed later
			}
			d.memo[states[i].key] = res[i].cost
			if !math.IsInf(res[i].cost, 1) {
				d.prev[states[i].key] = res[i].prev
			}
			d.wfLedger[states[i].key] = struct{}{}
		}
		for _, ln := range lanes {
			ln.fold()
		}
		if panicked {
			// Contain the panic: retire every parallel path for the rest of
			// the run and let the serial sweep finish the plan.
			sp.degradeToSerial()
			return nil
		}
		if ap := sp.adaptive; ap != nil {
			// Layer joined and folded: a safe decision point. Shrinking
			// narrows the next layer's worker pool; dropping below two
			// lanes abandons the wavefront — the serial sweep lazily
			// values whatever remains, with byte-identical results.
			ap.observe()
			if ap.lanes < 2 {
				return nil
			}
			if ap.lanes < workers {
				workers = ap.lanes
			}
		}
		sp.pollCountdown = 1 // force a real time/context poll per layer
		if err := sp.interrupted(); err != nil {
			return err
		}
	}
	return nil
}

// runTasks executes a slice of independent closures and returns when all
// have finished: on the shared scheduler pool when Options.Sched is
// attached, else on one spawned goroutine per closure — the classic
// per-plan shape. The two paths are interchangeable by construction: the
// closures only write worker-private result slots or commit idempotent
// verdicts through the claim protocol, so where they run never changes
// what they compute.
func (sp *space) runTasks(tasks []func()) {
	if c := sp.opts.Sched; c != nil {
		c.Run(tasks)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		go func(t func()) {
			defer wg.Done()
			t()
		}(t)
	}
	wg.Wait()
}

// computeLayer values one layer's states on the worker pool. Workers read
// the memo (frozen during the layer) and the shared satisfiability cache;
// they write only their strided slots of res. A panic in any worker is
// recovered and reported to the caller — one poisoned goroutine must not
// crash the process, and in-flight satisfiability-cache claims are
// released by the claim protocol's own unwind guard, so the surviving
// serial path never deadlocks on a dead worker's claim.
func (d *dpRun) computeLayer(states []wfState, res []wfResult, lanes []*lane) (panicked bool) {
	sp := d.sp
	workers := len(lanes)
	var panicMu sync.Mutex
	tasks := make([]func(), workers)
	for w := 0; w < workers; w++ {
		w, ln := w, lanes[w]
		tasks[w] = func() {
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					panicked = true
					panicMu.Unlock()
				}
			}()
			if hook := parallelTestHook; hook != nil {
				hook(w)
			}
			fval := func(predIdx int32, bt migration.ActionType, pt int) (float64, error) {
				if c, ok := d.memo[sp.extKeyT(predIdx, bt, pt)]; ok {
					return c, nil
				}
				// A miss is a state the enumeration never emits (its last
				// action count is at the initial vector) — exactly the
				// states the serial recursion values +Inf.
				return math.Inf(1), nil
			}
			feas := func(predIdx int32, bt migration.ActionType) bool {
				return sp.feasibleOn(ln, predIdx) == feasYes
			}
			intern := func(vec []uint16) int32 {
				idx, _ := sp.vt.intern(&ln.key, vec)
				return idx
			}
			for i := w; i < len(states); i += workers {
				if i%64 == 0 && sp.ctx.Err() != nil {
					return // cancelled; the between-layer poll interrupts
				}
				st := states[i]
				cost, prev, err := d.computeWith(sp.vec(st.vecIdx), st.a, st.t, fval, feas, intern)
				if err != nil {
					return // unreachable: the wavefront fval never errors
				}
				res[i] = wfResult{cost: cost, prev: prev, valid: true}
			}
		}
	}
	sp.runTasks(tasks)
	return panicked
}

// flushWavefront folds the wavefront ledgers into the shared metrics
// under the serial planner's accounting definition: StatesCreated and
// StatesPopped count exactly the states the serial top-down recursion
// evaluates, regardless of how many the wavefront valued speculatively.
//
// It replays the serial recursion's call graph — same roots (the sweep's
// target states), same per-predecessor consideration structure as
// computeWith, gated on the satisfiability verdicts the run resolved —
// and counts, of the cells reached: ledger entries as created+popped
// (the wavefront valued them in the serial planner's stead), guard cells
// hanging off ledger entries as created only (the serial recursion calls
// f on them and gets the v[a] ≤ initial[a] early return, without an
// expansion), and bound-engine-pruned cells as pruned. Unknown verdicts
// gate closed — pessimistic, and monotone as verdicts resolve — so the
// counts only grow across flushes; cumulative *Flushed watermarks make
// repeated flushes (interruptions, resume legs, the final sweep) fold
// each cell in exactly once. Cells outside the replayed closure are the
// wavefront's speculative surplus, reported as the SpeculativeStates
// gauge.
//
// Called only between parallel phases (after layers join), so the
// verdict table is quiescent. Serial-only runs keep an empty ledger and
// return immediately.
func (d *dpRun) flushWavefront() {
	sp := d.sp
	if len(d.wfLedger) == 0 && len(d.wfPruned) == d.wfPrunedFlushed {
		return
	}
	tails := d.tails()
	type simCell struct {
		vecIdx int32
		a      migration.ActionType
		t      int
	}
	visited := make(map[int64]struct{}, len(d.wfLedger)*2)
	var stack []simCell
	visit := func(vecIdx int32, a migration.ActionType, t int) {
		key := sp.extKeyT(vecIdx, a, t)
		if _, ok := visited[key]; ok {
			return
		}
		visited[key] = struct{}{}
		stack = append(stack, simCell{vecIdx, a, t})
	}
	for a := 0; a < sp.nTypes; a++ {
		if sp.totals[a] == sp.initial[a] {
			continue
		}
		for _, t := range tails {
			visit(d.targetIdx, migration.ActionType(a), t)
		}
	}
	ledgerHit, guardHit, prunedHit := 0, 0, 0
	k := sp.runCap()
	pred := make([]uint16, sp.nTypes)
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		key := sp.extKeyT(c.vecIdx, c.a, c.t)
		if _, pruned := d.wfPruned[key]; pruned {
			// The engine pruned this cell (at enumeration or serially):
			// the recursion memoizes +Inf here and does not descend.
			prunedHit++
			continue
		}
		_, inLedger := d.wfLedger[key]
		if inLedger {
			ledgerHit++
		}
		v := sp.vec(c.vecIdx)
		copy(pred, v)
		pred[c.a]--
		atInitial := true
		for i := range pred {
			if pred[i] != sp.initial[i] {
				atInitial = false
				break
			}
		}
		if atInitial {
			continue // computeWith's base case: no recursion
		}
		predIdx, _ := sp.intern(pred)
		gateOpen := sp.feasT.get(predIdx) == feasYes
		switch {
		case k == 0:
			for b := 0; b < sp.nTypes; b++ {
				if pred[b] <= sp.initial[b] {
					continue
				}
				if b != int(c.a) && !gateOpen {
					continue
				}
				visit(predIdx, migration.ActionType(b), 0)
			}
		case c.t > 1:
			// Sole predecessor: the same run, one action shorter —
			// unconditionally f-called by the recursion, even when it is a
			// guard cell (pred[a] ≤ initial[a]) that answers +Inf without
			// an expansion. A guard cell has exactly this one caller, so
			// it is counted here iff its caller was wavefront-valued; a
			// serially-computed caller already counted it inline.
			if pred[c.a] > sp.initial[c.a] {
				visit(predIdx, c.a, c.t-1)
			} else if inLedger {
				gk := sp.extKeyT(predIdx, c.a, c.t-1)
				if _, ok := visited[gk]; !ok {
					visited[gk] = struct{}{}
					guardHit++
				}
			}
		default: // c.t == 1: fresh run started here; predecessor observed
			if !gateOpen {
				continue
			}
			for b := 0; b < sp.nTypes; b++ {
				if pred[b] <= sp.initial[b] {
					continue
				}
				if b == int(c.a) {
					visit(predIdx, c.a, k)
					continue
				}
				for _, pt := range tails {
					visit(predIdx, migration.ActionType(b), pt)
				}
			}
		}
	}
	created := ledgerHit + guardHit
	if dlt := created - d.wfCreatedFlushed; dlt > 0 {
		sp.metrics.StatesCreated += dlt
		sp.rec.StatesCreatedAdded(dlt)
		d.wfCreatedFlushed = created
	}
	if dlt := ledgerHit - d.wfPoppedFlushed; dlt > 0 {
		sp.metrics.StatesPopped += dlt
		sp.rec.StatesExpandedAdded(dlt)
		d.wfPoppedFlushed = ledgerHit
	}
	if dlt := prunedHit - d.wfPrunedFlushed; dlt > 0 {
		sp.metrics.BoundStatesPruned += dlt
		sp.rec.BoundStatesPruned(dlt)
		d.wfPrunedFlushed = prunedHit
	}
	sp.metrics.SpeculativeStates = len(d.wfLedger) - ledgerHit
	sp.rec.StatesSpeculative(sp.metrics.SpeculativeStates)
}

// PlanDPParallel runs the DP planner with the memo table computed across
// the given number of workers (0 picks GOMAXPROCS). Plans, costs, and the
// state accounting are byte-identical to PlanDP's — wavefront-valued
// states the serial recursion would not evaluate are excluded from
// StatesCreated/StatesPopped and reported as Metrics.SpeculativeStates —
// so only wall-clock time and the check/cache accounting change.
//
// Equivalent to setting Options.Workers and calling PlanDP — kept as a
// convenience entry point.
func PlanDPParallel(task *migration.Task, opts Options, workers int) (*Plan, error) {
	return PlanDPParallelContext(context.Background(), task, opts, workers)
}

// PlanDPParallelContext is PlanDPParallel with cooperative cancellation:
// the context stops both the wavefront workers and the serial sweep, and
// budget or cancellation interruptions return a resumable Checkpoint via
// *Interrupted. Worker panics during the wavefront are recovered and
// contained: the planner degrades to serial execution for the remainder
// of the run and still emits the byte-identical plan
// (Metrics.LanePanics counts the event).
func PlanDPParallelContext(ctx context.Context, task *migration.Task, opts Options, workers int) (*Plan, error) {
	if workers == WorkersAdaptive {
		opts.Workers = WorkersAdaptive
		return PlanDPContext(ctx, task, opts)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opts.Workers = workers
	return PlanDPContext(ctx, task, opts)
}
