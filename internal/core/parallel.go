package core

import (
	"context"
	"math"
	"runtime"
	"sync"

	"klotski/internal/migration"
)

// Wavefront-parallel DP.
//
// The DP planner must evaluate every state of the compact product space
// (§4.3), and satisfiability checks dominate its runtime. The recurrence
// for a state only reads states with one fewer finished action, so the
// lattice decomposes into ascending total-actions layers whose states are
// mutually independent: each layer is computed by a worker pool against
// the read-only memo of the previous layers, then merged serially in
// deterministic order. Per-state work — the satisfiability checks and the
// recurrence arithmetic — runs on worker lanes (forked evaluators, shared
// claim-protocol satisfiability cache); the memo, prev table, and
// accounting are only ever written by the coordinator.
//
// Determinism: every state is valued by the same recurrence over the same
// predecessor verdicts in the same consideration order as the serial
// planner (dpRun.computeWith is shared), so memo values and best
// predecessors agree exactly for every state both planners visit. The
// wavefront additionally values states the serial top-down recursion
// prunes (ones reachable only through infeasible boundaries); those extra
// entries are never read by the sweep or reconstruction, so plans are
// byte-identical. StatesCreated/StatesPopped count the wavefront's larger
// (but still deterministic) state set.
//
// The wavefront is incompatible with funneling headroom (feasibility then
// depends on the in-flight block, not just the vector) and pointless when
// the cache is disabled; PlanDP falls back to the serial recursion in both
// cases, as well as when the lattice exceeds the state budget or is too
// small to amortize worker spawns.

// parallelTestHook, when non-nil, runs inside every wavefront worker before
// its shard. Tests use it to inject worker panics and verify the planner
// contains them — degrading to serial execution with an identical plan —
// instead of crashing the process.
var parallelTestHook func(worker int)

// wfState identifies one DP state of the current layer.
type wfState struct {
	vecIdx int32
	a      migration.ActionType
	t      int
	key    int64
}

// wfResult is a worker's valuation of the state at the same index; valid
// is false when the worker bailed (cancellation) before computing it.
type wfResult struct {
	cost  float64
	prev  prevInfo
	valid bool
}

// wavefront fills the DP memo bottom-up in parallel layers. It returns nil
// when it completes or does not apply (the serial sweep then finishes the
// job), or a latched interruption reason (budget/cancel) for plan() to
// checkpoint. A recovered worker panic is not an error: the valid results
// of the poisoned layer are merged (each is final — layers are
// independent), the space degrades to serial execution for the remainder
// of the run, and the serial sweep lazily values whatever the wavefront
// did not finish — producing the byte-identical plan. States already
// memoized — a resumed checkpoint — are skipped, so only the remaining work
// is parallelized.
func (d *dpRun) wavefront() error {
	sp := d.sp
	workers := sp.effectiveWorkers()
	if workers < 2 || sp.opts.DisableCache || sp.opts.FunnelFactor > 1 || sp.degraded {
		return nil
	}
	size := 1
	for i := range sp.totals {
		span := int(sp.totals[i]-sp.initial[i]) + 1
		if size > sp.opts.maxStates()/span {
			return nil // lattice exceeds the budget; leave it to the serial guard
		}
		size *= span
	}
	if size < 2*workers {
		return nil // too small to amortize worker spawns
	}
	span := sp.rec.Span("dp.wavefront")
	defer span.End()

	// Enumerate the lattice in lexicographic order on the coordinator —
	// interning stays serial, keeping dense-index assignment deterministic —
	// bucketing vector indices by layer (total actions above the initial
	// vector).
	maxLayer := 0
	for i := range sp.totals {
		maxLayer += int(sp.totals[i] - sp.initial[i])
	}
	layers := make([][]int32, maxLayer+1)
	cur := append([]uint16(nil), sp.initial...)
	var enum func(i, depth int)
	enum = func(i, depth int) {
		if i == len(cur) {
			idx, _ := sp.intern(cur)
			layers[depth] = append(layers[depth], idx)
			return
		}
		for v := sp.initial[i]; v <= sp.totals[i]; v++ {
			cur[i] = v
			enum(i+1, depth+int(v-sp.initial[i]))
		}
		cur[i] = sp.initial[i]
	}
	enum(0, 0)

	lanes := make([]*lane, workers)
	for w := range lanes {
		lanes[w] = sp.workerLane()
	}
	tails := d.tails()
	var states []wfState
	var results []wfResult
	for l := 1; l <= maxLayer; l++ {
		states = states[:0]
		for _, vecIdx := range layers[l] {
			v := sp.vec(vecIdx)
			for a := 0; a < sp.nTypes; a++ {
				if v[a] <= sp.initial[a] {
					continue // a cannot have been the last action
				}
				for _, t := range tails {
					key := sp.extKeyT(vecIdx, migration.ActionType(a), t)
					if _, ok := d.memo[key]; ok {
						continue // already finalized by a previous leg
					}
					states = append(states, wfState{vecIdx, migration.ActionType(a), t, key})
				}
			}
		}
		if len(states) == 0 {
			continue
		}
		// Guard the budget before committing to the layer, so an oversized
		// layer interrupts cleanly at a layer boundary (all merged memo
		// entries final) instead of mid-merge.
		if sp.metrics.StatesCreated-sp.budgetBase+len(states) > sp.opts.maxStates() {
			sp.stopErr = ErrBudget
			return sp.stopErr
		}
		if cap(results) < len(states) {
			results = make([]wfResult, len(states))
		}
		res := results[:len(states)]
		for i := range res {
			res[i] = wfResult{}
		}
		panicked := d.computeLayer(states, res, lanes[:workers])
		// Merge in ascending state order. Values are final regardless of
		// merge order (states of one layer are independent); the order only
		// keeps the accounting deterministic. Results of a poisoned layer
		// are merged too: each valid slot was fully computed before the
		// panic and the sweep revalues the rest lazily.
		merged := 0
		for i := range res {
			if !res[i].valid {
				continue // worker bailed on cancellation or panic; recomputed later
			}
			d.memo[states[i].key] = res[i].cost
			if !math.IsInf(res[i].cost, 1) {
				d.prev[states[i].key] = res[i].prev
			}
			merged++
		}
		sp.metrics.StatesCreated += merged
		sp.metrics.StatesPopped += merged
		sp.rec.StatesCreatedAdded(merged)
		sp.rec.StatesExpandedAdded(merged)
		for _, ln := range lanes {
			ln.fold()
		}
		if panicked {
			// Contain the panic: retire every parallel path for the rest of
			// the run and let the serial sweep finish the plan.
			sp.degradeToSerial()
			return nil
		}
		if ap := sp.adaptive; ap != nil {
			// Layer joined and folded: a safe decision point. Shrinking
			// narrows the next layer's worker pool; dropping below two
			// lanes abandons the wavefront — the serial sweep lazily
			// values whatever remains, with byte-identical results.
			ap.observe()
			if ap.lanes < 2 {
				return nil
			}
			if ap.lanes < workers {
				workers = ap.lanes
			}
		}
		sp.pollCountdown = 1 // force a real time/context poll per layer
		if err := sp.interrupted(); err != nil {
			return err
		}
	}
	return nil
}

// computeLayer values one layer's states on the worker pool. Workers read
// the memo (frozen during the layer) and the shared satisfiability cache;
// they write only their strided slots of res. A panic in any worker is
// recovered and reported to the caller — one poisoned goroutine must not
// crash the process, and in-flight satisfiability-cache claims are
// released by the claim protocol's own unwind guard, so the surviving
// serial path never deadlocks on a dead worker's claim.
func (d *dpRun) computeLayer(states []wfState, res []wfResult, lanes []*lane) (panicked bool) {
	sp := d.sp
	workers := len(lanes)
	var (
		wg      sync.WaitGroup
		panicMu sync.Mutex
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, ln *lane) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					panicked = true
					panicMu.Unlock()
				}
			}()
			if hook := parallelTestHook; hook != nil {
				hook(w)
			}
			fval := func(predIdx int32, bt migration.ActionType, pt int) (float64, error) {
				if c, ok := d.memo[sp.extKeyT(predIdx, bt, pt)]; ok {
					return c, nil
				}
				// A miss is a state the enumeration never emits (its last
				// action count is at the initial vector) — exactly the
				// states the serial recursion values +Inf.
				return math.Inf(1), nil
			}
			feas := func(predIdx int32, bt migration.ActionType) bool {
				return sp.feasibleOn(ln, predIdx) == feasYes
			}
			intern := func(vec []uint16) int32 {
				idx, _ := sp.vt.intern(&ln.key, vec)
				return idx
			}
			for i := w; i < len(states); i += workers {
				if i%64 == 0 && sp.ctx.Err() != nil {
					return // cancelled; the between-layer poll interrupts
				}
				st := states[i]
				cost, prev, err := d.computeWith(sp.vec(st.vecIdx), st.a, st.t, fval, feas, intern)
				if err != nil {
					return // unreachable: the wavefront fval never errors
				}
				res[i] = wfResult{cost: cost, prev: prev, valid: true}
			}
		}(w, lanes[w])
	}
	wg.Wait()
	return panicked
}

// PlanDPParallel runs the DP planner with the memo table computed across
// the given number of workers (0 picks GOMAXPROCS). Plans and costs are
// byte-identical to PlanDP's; only wall-clock time and the effort
// accounting change.
//
// Equivalent to setting Options.Workers and calling PlanDP — kept as a
// convenience entry point.
func PlanDPParallel(task *migration.Task, opts Options, workers int) (*Plan, error) {
	return PlanDPParallelContext(context.Background(), task, opts, workers)
}

// PlanDPParallelContext is PlanDPParallel with cooperative cancellation:
// the context stops both the wavefront workers and the serial sweep, and
// budget or cancellation interruptions return a resumable Checkpoint via
// *Interrupted. Worker panics during the wavefront are recovered and
// contained: the planner degrades to serial execution for the remainder
// of the run and still emits the byte-identical plan
// (Metrics.LanePanics counts the event).
func PlanDPParallelContext(ctx context.Context, task *migration.Task, opts Options, workers int) (*Plan, error) {
	if workers == WorkersAdaptive {
		opts.Workers = WorkersAdaptive
		return PlanDPContext(ctx, task, opts)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opts.Workers = workers
	return PlanDPContext(ctx, task, opts)
}
