package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"klotski/internal/migration"
)

// Parallel satisfiability prechecking.
//
// The DP planner must evaluate every vector of the compact product space
// (§4.3), and satisfiability checks dominate its runtime. The checks are
// independent per state, so they shard perfectly across workers — each
// with its own routing evaluator and scratch view — after which the DP
// sweep itself runs entirely against the warmed cache.
//
// Prechecking is incompatible with funneling headroom (feasibility then
// depends on the in-flight block, not just the vector) and pointless when
// the cache is disabled; PlanDP falls back to lazy checking in both cases.

// precheckTestHook, when non-nil, runs inside every precheck worker before
// its shard. Tests use it to inject worker panics and verify they surface
// as errors instead of crashing the process.
var precheckTestHook func(worker int)

// precheckParallel enumerates the full product space between the initial
// and target vectors and fills the satisfiability cache using `workers`
// goroutines. It honors the state budget: spaces larger than maxStates are
// left to lazy checking (the DP will then hit its own budget guard). A
// cancelled context stops the workers early, leaving the remaining states
// to lazy checking. A panic in any worker is recovered and returned as an
// error — one poisoned goroutine must not crash the process.
func (sp *space) precheckParallel(ctx context.Context, workers int) error {
	if workers < 2 || sp.opts.DisableCache || sp.opts.FunnelFactor > 1 {
		return nil
	}
	// Enumerate the product space, bounding by the budget.
	size := 1
	for i := range sp.totals {
		span := int(sp.totals[i]-sp.initial[i]) + 1
		if size > sp.opts.maxStates()/span {
			return nil // too large to precompute; fall back to lazy checks
		}
		size *= span
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 2 || size < 4*workers {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	span := sp.rec.Span("dp.precheck")
	defer span.End()

	vecs := make([][]uint16, 0, size)
	cur := append([]uint16(nil), sp.initial...)
	var enum func(i int)
	enum = func(i int) {
		if i == len(cur) {
			vecs = append(vecs, append([]uint16(nil), cur...))
			return
		}
		for v := sp.initial[i]; v <= sp.totals[i]; v++ {
			cur[i] = v
			enum(i + 1)
		}
		cur[i] = sp.initial[i]
	}
	enum(0)

	results := make([]int8, len(vecs))
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicErr == nil {
						panicErr = fmt.Errorf("core: precheck worker %d panicked: %v", w, r)
					}
					panicMu.Unlock()
				}
			}()
			if hook := precheckTestHook; hook != nil {
				hook(w)
			}
			// Each worker owns an independent checker: its own evaluator,
			// scratch view, and (empty) cache. Per-check recording is
			// disabled in workers — the shared space bulk-accounts the
			// checks after the join, so nothing is double-counted and the
			// hot shard loop never touches the trace mutex.
			wopts := sp.opts
			wopts.Evaluator = nil
			wopts.Recorder = nil
			wsp, err := newSpace(sp.task, wopts)
			if err != nil {
				return // leave this shard to lazy checking
			}
			for i := w; i < len(vecs); i += workers {
				if i%64 == 0 && ctx.Err() != nil {
					return // cancelled; leave the rest to lazy checking
				}
				if wsp.check(mustIntern(wsp, vecs[i]), NoLast, false) {
					results[i] = feasYes
				} else {
					results[i] = feasNo
				}
			}
		}(w)
	}
	wg.Wait()
	if panicErr != nil {
		return panicErr
	}

	for i, vec := range vecs {
		if results[i] == 0 {
			continue
		}
		idx, _ := sp.intern(vec)
		sp.feas[sp.extKey(idx, NoLast)] = results[i]
	}
	sp.metrics.Checks += len(vecs)
	sp.rec.ChecksAdded(len(vecs))
	return nil
}

func mustIntern(sp *space, vec []uint16) int32 {
	idx, _ := sp.intern(vec)
	return idx
}

// PlanDPParallel runs the DP planner with satisfiability checks
// precomputed across the given number of workers (0 picks GOMAXPROCS).
// Results are identical to PlanDP; only wall-clock time changes.
func PlanDPParallel(task *migration.Task, opts Options, workers int) (*Plan, error) {
	return PlanDPParallelContext(context.Background(), task, opts, workers)
}

// PlanDPParallelContext is PlanDPParallel with cooperative cancellation:
// the context stops both the precheck workers and the DP sweep, and budget
// or cancellation interruptions of the sweep return a resumable Checkpoint
// via *Interrupted. Worker panics during prechecking are recovered and
// surfaced as ordinary errors.
func PlanDPParallelContext(ctx context.Context, task *migration.Task, opts Options, workers int) (*Plan, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if err := task.Validate(); err != nil {
		return nil, err
	}
	// newSpace + precheck happen inside a thin wrapper around PlanDP: the
	// planner accepts a pre-warmed space via the prewarm hook.
	return planDPWithPrewarm(ctx, task, opts, func(sp *space) error {
		return sp.precheckParallel(ctx, workers)
	})
}
