package core

import (
	"context"
	"fmt"
	"math"

	"klotski/internal/migration"
)

// PlanDP finds a minimum-cost safe migration plan with the DP-based planner
// (paper §4.3, Algorithm 1).
//
// The DP state f(V, a) is the minimal cost of reaching the compact topology
// V with a last action of type a; it is computed over every vector between
// the initial and target vectors (memoized top-down, which evaluates states
// in the same dependency order as the paper's ascending-total-actions
// sweep). Unlike A*, the DP planner must materialize the entire product
// space, which is why the paper reports it 1.7–3.8× slower.
func PlanDP(task *migration.Task, opts Options) (*Plan, error) {
	return PlanDPContext(context.Background(), task, opts)
}

// PlanDPContext is PlanDP with cooperative cancellation: the context is
// polled alongside the MaxStates/Timeout budget, and on cancellation or
// budget exhaustion the sweep returns an *Interrupted error carrying a
// resumable Checkpoint (the warmed memo table and satisfiability cache)
// instead of discarding its work. With Options.Workers > 1 the memo table
// is filled bottom-up in parallel wavefront layers before the serial
// sweep; see dpRun.wavefront.
func PlanDPContext(ctx context.Context, task *migration.Task, opts Options) (*Plan, error) {
	if err := task.Validate(); err != nil {
		return nil, err
	}
	return planDP(ctx, task, opts)
}

// planDP is the DP planner body.
func planDP(ctx context.Context, task *migration.Task, opts Options) (*Plan, error) {
	sp, err := newSpace(task, opts)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		sp.ctx = ctx
	}

	startLast := opts.InitialLast
	if opts.InitialCounts == nil {
		startLast = NoLast
	}
	startIdx, _ := sp.intern(sp.initial)
	if !sp.feasible(startIdx, NoLast) {
		return nil, planErrf(ErrInfeasible, "initial network state violates constraints")
	}
	if tIdx, _ := sp.intern(sp.totals); !sp.feasible(tIdx, NoLast) {
		return nil, planErrf(ErrInfeasible, "target network state violates constraints")
	}

	startTail := 0
	if opts.InitialCounts != nil {
		startTail = opts.InitialRunLength
	}
	d := &dpRun{
		sp:        sp,
		startLast: startLast,
		startTail: startTail,
		memo:      make(map[int64]float64),
		prev:      make(map[int64]prevInfo),
	}

	targetVec := append([]uint16(nil), sp.totals...)
	targetIdx, _ := sp.intern(targetVec)
	if sp.remaining(targetIdx) != 0 {
		panic("core: target vector construction error")
	}
	if targetIdx == startIdx {
		sp.incumbent, sp.lowerBound = 0, 0 // empty plan, trivially optimal
		return sp.finishPlan(&Plan{Task: task, Cost: 0, Metrics: sp.elapsedMetrics()})
	}
	d.targetIdx = targetIdx
	sp.initLowerBound(startIdx, startLast, startTail)
	return d.plan()
}

// plan runs the optional parallel wavefront precompute, then the serial
// sweep. It is also the resume entry point, so a serial checkpoint resumed
// with Options.Workers > 1 gets a wavefront over the states its memo does
// not yet hold (and a parallel checkpoint resumes serially under
// Workers ≤ 1), with all previously warmed caches honored.
func (d *dpRun) plan() (*Plan, error) {
	sp := d.sp
	// Gate on the EFFECTIVE worker count so the adaptive policy
	// (Workers == WorkersAdaptive, which is < 2) reaches the wavefront
	// too; wavefront() re-checks the same condition with its own guards.
	if sp.effectiveWorkers() > 1 && !sp.degraded {
		if err := d.wavefront(); err != nil {
			return nil, d.interrupt(err) // budget/cancel: checkpoint
		}
	}
	return d.sweep()
}

type dpRun struct {
	sp        *space
	startLast migration.ActionType
	startTail int
	targetIdx int32
	memo      map[int64]float64
	prev      map[int64]prevInfo

	// stack holds the keys of memo entries currently being computed (the
	// recursion's in-flight path). On interruption those entries hold the
	// cycle sentinel, not a final value, and must be evicted before the
	// memo can serve as a checkpoint.
	stack []int64

	// Wavefront accounting ledgers (see flushWavefront). wfLedger holds
	// the keys of memo entries the parallel wavefront valued; wfPruned the
	// keys skipped by the bound engine (both enumeration-pruned and
	// serially-pruned). The *Flushed counters are the cumulative amounts
	// already folded into Metrics, so repeated flushes across resume legs
	// never double-count.
	wfLedger         map[int64]struct{}
	wfPruned         map[int64]struct{}
	wfCreatedFlushed int
	wfPoppedFlushed  int
	wfPrunedFlushed  int
}

// sweep evaluates the DP at the target over every admissible last action
// and tail length, reconstructs the optimal sequence, and assembles the
// plan. It is re-entered by Resume after an interruption, at which point
// every previously finalized memo entry answers instantly.
func (d *dpRun) sweep() (*Plan, error) {
	sp := d.sp
	task := sp.task
	span := sp.rec.Span("dp.sweep")
	defer span.End()
	bestCost := math.Inf(1)
	bestLast := NoLast
	bestTail := 0
	for a := 0; a < sp.nTypes; a++ {
		if sp.totals[a] == sp.initial[a] {
			continue
		}
		for _, t := range d.tails() {
			c, err := d.f(d.targetIdx, migration.ActionType(a), t)
			if err != nil {
				return nil, d.interrupt(err)
			}
			if c < bestCost {
				bestCost = c
				bestLast = migration.ActionType(a)
				bestTail = t
			}
		}
	}
	d.flushWavefront()
	if math.IsInf(bestCost, 1) {
		return nil, planErrf(ErrInfeasible, "DP table contains no path to target (%d states evaluated)",
			sp.metrics.StatesPopped)
	}
	seq := sp.reconstruct(d.prev, d.targetIdx, bestLast, bestTail)
	sp.rec.PlanCompleted()
	// The DP optimum is exact: the certificate closes with gap 0.
	sp.incumbent, sp.lowerBound = bestCost, bestCost
	return sp.finishPlan(&Plan{
		Task:     task,
		Sequence: seq,
		Runs:     RunsOf(task, seq, sp.opts.MaxRunLength),
		Cost:     bestCost,
		Metrics:  sp.elapsedMetrics(),
	})
}

// interrupt evicts half-computed memo entries and packages the finalized
// DP table into a resumable checkpoint.
func (d *dpRun) interrupt(reason error) error {
	sp := d.sp
	sp.rec.PlanInterrupted()
	for _, k := range d.stack {
		delete(d.memo, k)
	}
	d.stack = d.stack[:0]
	d.flushWavefront()
	sp.pause()
	counts, partial := d.frontierSnapshot()
	cp := &Checkpoint{
		Planner: "dp",
		Counts:  counts,
		Partial: partial,
		Metrics: sp.elapsedMetrics(),
		task:    sp.task,
	}
	cp.resume = func(ctx context.Context, opts Options) (*Plan, error) {
		sp.rebudget(ctx, opts)
		return d.plan()
	}
	return interruptErrf(reason, cp, "DP stopped after %d states, %d checks",
		sp.metrics.StatesCreated, sp.metrics.Checks)
}

// frontierSnapshot finds the most advanced reachable state among finalized
// memo entries and reconstructs the partial sequence leading to it.
func (d *dpRun) frontierSnapshot() (counts []int, partial []int) {
	sp := d.sp
	var front frontier
	for key, c := range d.memo {
		if math.IsInf(c, 1) {
			continue
		}
		vecIdx, last, tail := sp.decodeKeyT(key)
		front.observe(sp, vecIdx, last, tail)
	}
	return front.snapshot(sp, d.prev)
}

// tails returns the valid in-progress run lengths: {0} when runs are
// uncapped, 1..MaxRunLength otherwise.
func (d *dpRun) tails() []int {
	k := d.sp.runCap()
	if k == 0 {
		return []int{0}
	}
	ts := make([]int, k)
	for i := range ts {
		ts[i] = i + 1
	}
	return ts
}

// f computes the DP recurrence (paper Eq. 7–8, extended with the
// in-progress run length t under Options.MaxRunLength): the minimal cost
// of reaching vector vecIdx with a run of t actions of type a at the tail,
// or +Inf when unreachable through feasible states.
func (d *dpRun) f(vecIdx int32, a migration.ActionType, t int) (float64, error) {
	sp := d.sp
	key := sp.extKeyT(vecIdx, a, t)
	if c, ok := d.memo[key]; ok {
		return c, nil
	}
	if sp.bd != nil && sp.bd.DominatedDP(sp.vec(vecIdx), int(a)) {
		// The bound engine proves this cell cannot lie on any optimal
		// plan (dead, or reach + cost-to-go provably above the sealed
		// incumbent). Memoizing +Inf without recursing is value-exact for
		// dead/unreachable cells and harmlessly pessimistic for dominated
		// ones: a raised value can only propagate to cells that are
		// themselves above the incumbent, which never win (or tie) a
		// predecessor selection on any cell the optimal plan traverses —
		// so the sweep's plan stays byte-identical to the unpruned one.
		// Counted as pruned, not created: the serial recursion under
		// pruning never evaluates the cell.
		d.memo[key] = math.Inf(1)
		if d.wfPruned == nil {
			d.wfPruned = make(map[int64]struct{})
		}
		d.wfPruned[key] = struct{}{}
		d.wfPrunedFlushed++
		sp.metrics.BoundStatesPruned++
		sp.rec.BoundStatesPruned(1)
		return math.Inf(1), nil
	}
	sp.metrics.StatesCreated++
	sp.rec.StateCreated()
	if err := sp.interrupted(); err != nil {
		return 0, err
	}
	// Seed the memo to guard against cycles (none exist — every step
	// strictly increases the action total — but a sentinel keeps a bug
	// from recursing forever), and record the key as in-flight so an
	// interruption can evict the half-computed entry.
	d.memo[key] = math.Inf(1)
	d.stack = append(d.stack, key)
	best, bestPrev, err := d.compute(vecIdx, a, t)
	if err != nil {
		return 0, err // key stays in-flight; evicted by interrupt
	}
	d.stack = d.stack[:len(d.stack)-1]
	d.memo[key] = best
	if !math.IsInf(best, 1) {
		d.prev[key] = bestPrev
	}
	return best, nil
}

// compute evaluates the recurrence body for one state on the serial
// (top-down, memoized) path.
func (d *dpRun) compute(vecIdx int32, a migration.ActionType, t int) (float64, prevInfo, error) {
	sp := d.sp
	v := sp.vec(vecIdx)
	if v[a] <= sp.initial[a] {
		return math.Inf(1), prevInfo{}, nil // a cannot have been the last action
	}
	sp.metrics.StatesPopped++
	sp.rec.StateExpanded()
	return d.computeWith(v, a, t, d.f,
		func(predIdx int32, bt migration.ActionType) bool {
			return sp.feasible(predIdx, bt)
		},
		func(vec []uint16) int32 {
			idx, _ := sp.intern(vec)
			return idx
		})
}

// computeWith evaluates the recurrence body for one state (vector v, last
// action a, tail t), with the three state-space accesses abstracted so the
// serial recursion and the parallel wavefront share one implementation:
// fval values a predecessor state (the serial path recurses via d.f; the
// wavefront reads the memo, treating a miss as +Inf — misses there are
// exactly the states the serial recursion would value +Inf), feas resolves
// a predecessor's satisfiability (lane 0's cached check, or a worker lane's
// claim-protocol check), and intern maps the predecessor vector to its
// dense index using a caller-owned keyer scratch.
//
// The per-predecessor consideration order (b ascending, tails ascending,
// strict <) is the plan tie-breaker and must stay identical across both
// paths — that is the determinism argument for byte-identical plans.
func (d *dpRun) computeWith(v []uint16, a migration.ActionType, t int,
	fval func(predIdx int32, bt migration.ActionType, pt int) (float64, error),
	feas func(predIdx int32, bt migration.ActionType) bool,
	intern func(vec []uint16) int32,
) (float64, prevInfo, error) {
	sp := d.sp
	if v[a] <= sp.initial[a] {
		return math.Inf(1), prevInfo{}, nil // a cannot have been the last action
	}

	pred := append([]uint16(nil), v...)
	pred[a]--
	predIdx := intern(pred)

	atInitial := true
	for i := range pred {
		if pred[i] != sp.initial[i] {
			atInitial = false
			break
		}
	}

	// Boundary-check semantics (Eq. 4–6 "s.t." clause): the predecessor
	// state is only observed by the network — and therefore only needs to
	// be safe — when the incoming action starts a new run (type change, or
	// a forced split once the run reaches MaxRunLength). The initial and
	// target states are pre-checked by PlanDP.
	best := math.Inf(1)
	bestPrev := prevInfo{last: NoLast}
	if atInitial {
		c, nt, _ := sp.step(d.startLast, a, d.startTail)
		if nt == t || (sp.runCap() == 0 && t == 0) {
			best = c
			bestPrev = prevInfo{last: d.startLast, tail: int16(d.startTail)}
		}
		return best, bestPrev, nil
	}

	predFeasible := -1 // lazy: -1 unknown, 0 no, 1 yes
	checkPred := func(bt migration.ActionType) bool {
		if sp.opts.FunnelFactor > 1 {
			// Funneling makes feasibility depend on the in-flight
			// block, so it cannot be reused across last-types.
			return feas(predIdx, bt)
		}
		if predFeasible < 0 {
			if feas(predIdx, bt) {
				predFeasible = 1
			} else {
				predFeasible = 0
			}
		}
		return predFeasible == 1
	}
	consider := func(bt migration.ActionType, pt int, step float64) error {
		pc, err := fval(predIdx, bt, pt)
		if err != nil {
			return err
		}
		if c := pc + step; c < best {
			best = c
			bestPrev = prevInfo{last: bt, tail: int16(pt)}
		}
		return nil
	}
	k := sp.runCap()
	unit := sp.units[a]
	switch {
	case k == 0:
		// Uncapped: same-type extension at α, type change at unit with
		// a boundary check on the predecessor.
		for b := 0; b < sp.nTypes; b++ {
			bt := migration.ActionType(b)
			if pred[b] <= sp.initial[b] {
				continue
			}
			step := sp.opts.Alpha * unit
			if bt != a {
				if !checkPred(bt) {
					continue
				}
				step = unit
			}
			if err := consider(bt, 0, step); err != nil {
				return 0, prevInfo{}, err
			}
		}
	case t > 1:
		// Mid-run: the only predecessor is the same run, one shorter.
		if err := consider(a, t-1, sp.opts.Alpha*unit); err != nil {
			return 0, prevInfo{}, err
		}
	default: // t == 1: a fresh run started here; predecessor observed.
		for b := 0; b < sp.nTypes; b++ {
			bt := migration.ActionType(b)
			if pred[b] <= sp.initial[b] {
				continue
			}
			if bt == a {
				// Same type: only a forced split (full previous chunk)
				// may start a new run.
				if !checkPred(bt) {
					continue
				}
				if err := consider(a, k, unit); err != nil {
					return 0, prevInfo{}, err
				}
				continue
			}
			if !checkPred(bt) {
				continue
			}
			for _, pt := range d.tails() {
				if err := consider(bt, pt, unit); err != nil {
					return 0, prevInfo{}, err
				}
			}
		}
	}
	return best, bestPrev, nil
}

// planErrf wraps a sentinel planning error with detail while keeping it
// matchable via errors.Is.
func planErrf(sentinel error, format string, args ...any) error {
	return fmt.Errorf("%w: %s", sentinel, fmt.Sprintf(format, args...))
}
