package core

import (
	"context"
	"fmt"

	"klotski/internal/migration"
)

// Checkpoint captures the state of an interrupted planning run so it can be
// resumed without redoing completed work (the paper's §7.2 operating regime:
// planners run under a hard budget — 24 hours in production — and a budget
// overrun must not throw the search away). A* checkpoints retain the open
// list, the best-cost and closed tables, and the satisfiability cache; DP
// checkpoints retain the memo table, the predecessor table, and the cache.
//
// The exported fields describe the best partial result at interruption
// time: Counts is the per-type finished-action vector of the most advanced
// explored state, Partial the canonical-order block sequence reaching it
// (every intermediate run boundary of Partial was verified safe during the
// search), and Metrics the effort spent so far. They are advisory — Resume
// continues the exact internal search, not the Partial prefix.
type Checkpoint struct {
	Planner string  // "astar" or "dp"
	Counts  []int   // per-type finished counts of the most advanced explored state
	Partial []int   // block IDs reaching Counts, in execution order
	Metrics Metrics // planner effort up to the interruption

	task   *migration.Task
	resume func(context.Context, Options) (*Plan, error)
}

// Task returns the migration task the checkpointed search is planning.
func (cp *Checkpoint) Task() *migration.Task { return cp.task }

// Gap returns the interrupted search's anytime optimality certificate:
// the best incumbent cost found so far (0 when no complete plan has been
// seen yet), the global lower bound proven so far, and the certified
// relative gap between them (1 when nothing is certified yet). Resume
// restores the certificate and can only tighten it.
func (cp *Checkpoint) Gap() (incumbent, lowerBound, gap float64) {
	return cp.Metrics.IncumbentCost, cp.Metrics.LowerBound, cp.Metrics.OptimalityGap
}

// Resume continues an interrupted search from its checkpoint under a fresh
// budget envelope: opts.MaxStates and opts.Timeout bound the resumed leg
// (counted from the resumption, not cumulatively), and ctx cancels it
// cooperatively. All other options are taken from the original run — they
// shaped the cached search state and cannot change mid-search. A resumed
// search continues exactly where it stopped: no state is re-expanded, no
// satisfiability check is repeated, and the eventual plan is identical to
// what an uninterrupted run would have produced. Resuming may itself be
// interrupted again, returning a further *Interrupted checkpoint.
func Resume(ctx context.Context, cp *Checkpoint, opts Options) (*Plan, error) {
	if cp == nil || cp.resume == nil {
		return nil, fmt.Errorf("core: nil or non-resumable checkpoint")
	}
	return cp.resume(ctx, opts)
}

// Interrupted is the error returned when a planner stops before finding an
// optimal plan because its budget ran out or its context was cancelled. It
// wraps the reason — ErrBudget, context.Canceled, or
// context.DeadlineExceeded, matchable with errors.Is — and carries the
// checkpoint to continue from.
type Interrupted struct {
	Reason     error // ErrBudget or the context's error
	Checkpoint *Checkpoint
	Detail     string
}

func (e *Interrupted) Error() string {
	return fmt.Sprintf("core: planning interrupted (%v): %s", e.Reason, e.Detail)
}

func (e *Interrupted) Unwrap() error { return e.Reason }

// interruptErrf builds an *Interrupted for a stopped search.
func interruptErrf(reason error, cp *Checkpoint, format string, args ...any) error {
	return &Interrupted{Reason: reason, Checkpoint: cp, Detail: fmt.Sprintf(format, args...)}
}

// frontier tracks the most advanced (most finished actions) state pushed
// during a search, for checkpoint reporting.
type frontier struct {
	valid    bool
	finished int
	vecIdx   int32
	last     migration.ActionType
	tail     int
}

func (f *frontier) observe(sp *space, vecIdx int32, last migration.ActionType, tail int) {
	fin := sp.finished(vecIdx)
	if !f.valid || fin > f.finished {
		f.valid = true
		f.finished = fin
		f.vecIdx = vecIdx
		f.last = last
		f.tail = tail
	}
}

// snapshot renders the frontier as (counts, partial sequence) using the
// predecessor table. An empty frontier (interrupted before the first push)
// yields the initial counts and an empty sequence.
func (f *frontier) snapshot(sp *space, prev map[int64]prevInfo) (counts []int, partial []int) {
	counts = make([]int, sp.nTypes)
	if !f.valid {
		for i, v := range sp.initial {
			counts[i] = int(v)
		}
		return counts, nil
	}
	for i, v := range sp.vec(f.vecIdx) {
		counts[i] = int(v)
	}
	return counts, sp.reconstruct(prev, f.vecIdx, f.last, f.tail)
}
