package core

import (
	"container/heap"
	"context"
	"runtime"

	"klotski/internal/migration"
)

// PlanAStar finds a minimum-cost safe migration plan with the A* search
// planner (paper §4.4, Algorithm 2).
//
// States are (compact vector, last action type); the priority is
// f = g + h with the consistent heuristic of space.heuristic, tie-broken by
// the number of finished actions (states closer to the target first) and
// then by insertion order for determinism. The search starts from the
// original network state (or a replanning checkpoint) and returns the
// moment the target topology is popped, which — with a consistent
// heuristic — is guaranteed optimal.
func PlanAStar(task *migration.Task, opts Options) (*Plan, error) {
	return PlanAStarContext(context.Background(), task, opts)
}

// PlanAStarContext is PlanAStar with cooperative cancellation: the context
// is polled alongside the MaxStates/Timeout budget, and on cancellation or
// budget exhaustion the search returns an *Interrupted error carrying a
// resumable Checkpoint instead of discarding its work.
func PlanAStarContext(ctx context.Context, task *migration.Task, opts Options) (*Plan, error) {
	return planAStar(ctx, task, opts)
}

// PlanAStarParallel runs the A* planner with batch-expansion frontier
// warming: at each node expansion, the feasibility verdicts the search will
// need next (the node's boundary state, its successors, and the top of the
// open heap) are resolved concurrently on persistent worker lanes and
// committed into the shared satisfiability cache. Verdicts are
// deterministic, so plans and costs are byte-identical to PlanAStar's; only
// wall-clock time and the check accounting differ. workers ≤ 0 picks
// GOMAXPROCS; warming silently degrades to the serial lazy path when it
// cannot apply (single worker, cache disabled, or funneling).
//
// Equivalent to setting Options.Workers and calling PlanAStar — kept as a
// convenience entry point.
func PlanAStarParallel(task *migration.Task, opts Options, workers int) (*Plan, error) {
	return PlanAStarParallelContext(context.Background(), task, opts, workers)
}

// PlanAStarParallelContext is PlanAStarParallel with cooperative
// cancellation, mirroring PlanAStarContext.
func PlanAStarParallelContext(ctx context.Context, task *migration.Task, opts Options, workers int) (*Plan, error) {
	if workers == WorkersAdaptive {
		opts.Workers = WorkersAdaptive
		return planAStar(ctx, task, opts)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opts.Workers = workers
	return planAStar(ctx, task, opts)
}

func planAStar(ctx context.Context, task *migration.Task, opts Options) (*Plan, error) {
	if err := task.Validate(); err != nil {
		return nil, err
	}
	sp, err := newSpace(task, opts)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		sp.ctx = ctx
	}

	startIdx, _ := sp.intern(sp.initial)
	startLast := opts.InitialLast
	if opts.InitialCounts == nil {
		startLast = NoLast
	}
	if !sp.feasible(startIdx, NoLast) {
		return nil, planErrf(ErrInfeasible, "initial network state violates constraints")
	}
	targetIdx, _ := sp.intern(sp.totals)
	if !sp.feasible(targetIdx, NoLast) {
		return nil, planErrf(ErrInfeasible, "target network state violates constraints")
	}

	s := &astarSearch{
		sp:      sp,
		best:    make(map[int64]float64),
		closed:  make(map[int64]bool),
		prev:    make(map[int64]prevInfo),
		pq:      &openHeap{secondary: !opts.DisableSecondaryPriority},
		scratch: make([]uint16, sp.nTypes),
	}
	s.configureWarmer()
	startTail := 0
	if opts.InitialCounts != nil {
		startTail = opts.InitialRunLength
	}
	s.push(startIdx, startLast, startTail, 0)
	sp.initLowerBound(startIdx, startLast, startTail)
	return s.run()
}

// astarSearch is the complete mutable state of one A* run: it survives
// interruptions inside a Checkpoint, so Resume continues the identical
// search — same open list, same closed set, same satisfiability cache.
type astarSearch struct {
	sp      *space
	best    map[int64]float64 // lowest g per (vec, last, tail)
	closed  map[int64]bool    // expanded states
	prev    map[int64]prevInfo
	pq      *openHeap
	scratch []uint16
	front   frontier
	warm    *frontierWarmer // nil on the serial path
}

// configureWarmer (re)arms the parallel frontier warmer from the current
// effective worker count (the static Options.Workers knob, or the adaptive
// policy's live lane count). Called at search start and after every
// rebudget, so a serial checkpoint resumed with workers picks up warming
// (and vice versa).
func (s *astarSearch) configureWarmer() {
	s.warm = s.sp.newFrontierWarmer(s.sp.effectiveWorkers())
}

func (s *astarSearch) push(vecIdx int32, last migration.ActionType, tail int, g float64) {
	sp := s.sp
	k := sp.extKeyT(vecIdx, last, tail)
	if old, ok := s.best[k]; ok && old <= g {
		return
	}
	s.best[k] = g
	sp.metrics.StatesCreated++
	sp.rec.StateCreated()
	s.front.observe(sp, vecIdx, last, tail)
	if g < sp.incumbent && sp.isTarget(vecIdx) {
		// Anytime incumbent: reaching the target with a cheaper g tightens
		// the certificate even before the target is popped (and even if the
		// search is interrupted before it ever is).
		sp.incumbent = g
	}
	heap.Push(s.pq, openItem{
		f:        g + sp.heuristicCapped(vecIdx, last, tail),
		finished: int32(sp.finished(vecIdx)),
		order:    int64(sp.metrics.StatesCreated),
		g:        g,
		vecIdx:   vecIdx,
		last:     last,
		tail:     int16(tail),
	})
}

// run drives the search loop to completion, interruption, or exhaustion.
// It is re-entered by Resume after an interruption.
func (s *astarSearch) run() (*Plan, error) {
	sp := s.sp
	task := sp.task
	span := sp.rec.Span("astar.run")
	defer span.End()
	for s.pq.Len() > 0 {
		if reason := sp.interrupted(); reason != nil {
			return nil, s.interrupt(reason)
		}
		it := heap.Pop(s.pq).(openItem)
		// With a consistent heuristic the popped f values are
		// non-decreasing over clean (non-stale) pops, so the largest f seen
		// is the min over the open list at some point in time — a valid
		// global lower bound on the optimum, even mid-search.
		if it.f > sp.lowerBound {
			sp.lowerBound = it.f
		}
		k := sp.extKeyT(it.vecIdx, it.last, int(it.tail))
		if s.closed[k] || it.g > s.best[k] {
			continue // stale duplicate
		}
		s.closed[k] = true
		if sp.bd != nil && it.last != NoLast && sp.bd.Dead(sp.vec(it.vecIdx), int(it.last)) {
			// The cut set proves no feasible completion exists from this
			// state: expanding it could only generate more dead states, so
			// skipping the expansion cannot change which plan is found (or
			// the order the surviving states are pushed in — the plan stays
			// byte-identical to the unpruned search's).
			sp.metrics.BoundStatesPruned++
			sp.rec.BoundStatesPruned(1)
			continue
		}
		sp.metrics.StatesPopped++
		if sp.rec.Enabled() {
			sp.rec.StateExpanded()
			sp.rec.OpenList(s.pq.Len())
		}

		if sp.isTarget(it.vecIdx) {
			seq := sp.reconstruct(s.prev, it.vecIdx, it.last, int(it.tail))
			sp.rec.PlanCompleted()
			sp.incumbent = it.g
			sp.lowerBound = it.g // popped target g is provably optimal
			return sp.finishPlan(&Plan{
				Task:     task,
				Sequence: seq,
				Runs:     RunsOf(task, seq, sp.opts.MaxRunLength),
				Cost:     it.g,
				Metrics:  sp.elapsedMetrics(),
			})
		}

		// Constraint semantics (paper Eq. 4–6 "s.t." clause): consecutive
		// same-type actions are operated in parallel, so the network is
		// only observed — and therefore only checked — when the action
		// type changes and at the end of the sequence. Extending the
		// current run needs no check; switching run types requires the
		// state being left (the completed run's boundary) to be safe.
		cur := sp.vec(it.vecIdx)
		if s.warm != nil {
			s.warm.run(cur, it.vecIdx, s.pq)
			if s.warm.retired {
				// The warmer is permanently done — a worker lane panicked
				// inside it, or the adaptive policy judged speculation a
				// net loss on this fabric — and the search continues on
				// the serial lazy path, which produces the identical plan.
				s.warm = nil
			}
		}
		boundaryOK := true
		boundaryChecked := false
		for a := 0; a < sp.nTypes; a++ {
			if cur[a] >= sp.totals[a] {
				continue
			}
			at := migration.ActionType(a)
			stepCost, newTail, needsBoundary := sp.step(it.last, at, int(it.tail))
			if needsBoundary && it.last != NoLast {
				if !boundaryChecked {
					boundaryOK = sp.feasible(it.vecIdx, it.last)
					boundaryChecked = true
				}
				if !boundaryOK {
					continue
				}
			}
			copy(s.scratch, cur)
			s.scratch[a]++
			nextIdx, _ := sp.intern(s.scratch)
			ng := it.g + stepCost
			nk := sp.extKeyT(nextIdx, at, newTail)
			if s.closed[nk] {
				continue
			}
			if old, ok := s.best[nk]; !ok || ng < old {
				s.prev[nk] = prevInfo{last: it.last, tail: it.tail}
				s.push(nextIdx, at, newTail, ng)
			}
		}
	}
	return nil, planErrf(ErrInfeasible, "search space exhausted after %d states without reaching target",
		sp.metrics.StatesPopped)
}

// interrupt packages the live search into a resumable checkpoint.
func (s *astarSearch) interrupt(reason error) error {
	sp := s.sp
	sp.rec.PlanInterrupted()
	sp.pause()
	counts, partial := s.front.snapshot(sp, s.prev)
	cp := &Checkpoint{
		Planner: "astar",
		Counts:  counts,
		Partial: partial,
		Metrics: sp.elapsedMetrics(),
		task:    sp.task,
	}
	cp.resume = func(ctx context.Context, opts Options) (*Plan, error) {
		sp.rebudget(ctx, opts)
		s.configureWarmer()
		return s.run()
	}
	return interruptErrf(reason, cp,
		"A* stopped after %d states, %d checks (frontier %d/%d actions)",
		sp.metrics.StatesCreated, sp.metrics.Checks, s.front.finished, sp.task.NumActions())
}

// openItem is one priority-queue entry. Lower f wins; among equal f, more
// finished actions wins (secondary priority, §4.4); ties fall back to
// insertion order for deterministic plans.
type openItem struct {
	f        float64
	finished int32
	order    int64
	g        float64
	vecIdx   int32
	last     migration.ActionType
	tail     int16 // in-progress run length, used under Options.MaxRunLength
}

type openHeap struct {
	items     []openItem
	secondary bool
}

func (h *openHeap) Len() int { return len(h.items) }

func (h *openHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.f != b.f {
		return a.f < b.f
	}
	if h.secondary && a.finished != b.finished {
		return a.finished > b.finished
	}
	return a.order < b.order
}

func (h *openHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *openHeap) Push(x any) { h.items = append(h.items, x.(openItem)) }

func (h *openHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
