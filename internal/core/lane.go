package core

import (
	"time"

	"klotski/internal/migration"
	"klotski/internal/obs"
	"klotski/internal/routing"
	"klotski/internal/topo"
)

// lane is one worker's complete mutable check state. The space itself
// holds only immutable task precompute and the shared concurrent tables;
// everything a satisfiability check mutates — the scratch topology view,
// the routing evaluator with its incremental memo, the occupancy scratch,
// the keyer's encode buffer, and the check accounting — lives in a lane,
// so any number of lanes can check vectors concurrently against one space.
//
// Lane 0 (space.ln) belongs to the planner goroutine and feeds the shared
// Metrics directly; worker lanes accumulate into a private Metrics that
// the batch coordinator folds in after the join.
type lane struct {
	sp   *space
	eval *routing.Evaluator
	view *topo.View
	rec  *obs.Recorder // nil on worker lanes; checks are bulk-accounted
	key  keyer         // shared packing layout, private scratch buffer

	// curVec tracks the vector currently materialized in view, enabling
	// incremental delta application between consecutive checks (planners
	// mostly check near-neighbor states, so the delta is usually one or
	// two blocks instead of a full rebuild). nil until the first build.
	curVec []uint16

	// Incremental satisfiability state. useInc enables routing.CheckDelta:
	// incVec is the vector the evaluator's memo was computed on (tracked
	// separately from curVec — an occupancy rejection rebuilds the view but
	// leaves the memo alone), and touchSw/touchCk accumulate the union of
	// Touched sets for blocks differing between incVec and the vector being
	// checked.
	useInc  bool
	incVec  []uint16
	touchSw []topo.SwitchID
	touchCk []topo.CircuitID

	// occ is the per-check occupancy scratch (dense, indexed by DC+1).
	occ []int32

	// act is the packed occupancy state: the active-switch bitset mirroring
	// curVec, maintained incrementally by buildView so the occupancy check
	// is one popcount per budget-constrained DC. nil when no space budget
	// is set or when DisableIncrementalView forces the dense reference
	// recount (there is no tracked current vector to maintain it against).
	act routing.Bitset

	// m receives the lane's check accounting: &space.metrics for lane 0,
	// a lane-private struct for workers.
	m *Metrics

	// occRejected reports whether the most recent failing check was
	// rejected by the occupancy budget — a demand-independent (structural)
	// verdict the bound engine keeps across demand drift.
	occRejected bool
}

// newLane builds a check lane over sp. eval supplies the routing evaluator
// (lane 0 may receive a caller-provided one; workers fork lane 0's). rec
// is the per-check recorder, nil for worker lanes. useInc selects the
// incremental-evaluation policy for this lane.
func (sp *space) newLane(eval *routing.Evaluator, rec *obs.Recorder, useInc bool, m *Metrics) *lane {
	// Scratch buffers come from the shape-keyed pool (see scratch.go);
	// they are dirty on arrival, and every consumer fully overwrites
	// before reading — the fresh lane's nil curVec forces the full
	// CopyFrom rebuild of act, occupancyDense copies occBase, keyBytes
	// rewrites its exactly-sized buffer.
	scr := sp.acquireScratch()
	ln := &lane{
		sp:     sp,
		eval:   eval,
		view:   sp.task.Topo.NewView(),
		rec:    rec,
		key:    keyer{fits64: sp.key.fits64, shifts: sp.key.shifts, buf: scr.key},
		useInc: useInc,
		m:      m,
	}
	if sp.occDelta != nil {
		ln.occ = scr.occ
		if !sp.opts.DisableIncrementalView {
			ln.act = scr.act
		}
	}
	return ln
}

// workerLane forks a fresh lane for a parallel check worker: its own
// evaluator fork (shared immutable adjacency, private scratch and memo),
// view, and accounting.
func (sp *space) workerLane() *lane {
	return sp.newLane(sp.ln.eval.Fork(), nil, sp.laneInc, &Metrics{})
}

// fold merges a worker lane's accumulated accounting into the shared
// metrics and resets it. Called by the batch coordinator after a join —
// never concurrently with the lane running.
func (ln *lane) fold() {
	sp := ln.sp
	sp.metrics.Checks += ln.m.Checks
	sp.metrics.WorkerChecks += ln.m.Checks
	sp.metrics.CacheHits += ln.m.CacheHits
	sp.metrics.CacheMisses += ln.m.CacheMisses
	sp.metrics.GroupInvalidations += ln.m.GroupInvalidations
	sp.metrics.GroupsReused += ln.m.GroupsReused
	sp.metrics.IncDisables += ln.m.IncDisables
	sp.rec.ChecksAdded(ln.m.Checks)
	sp.rec.WorkerChecks(ln.m.Checks)
	sp.rec.CacheHitsAdded(ln.m.CacheHits)
	sp.rec.CacheMissesAdded(ln.m.CacheMisses)
	sp.rec.GroupInvalidations(ln.m.GroupInvalidations)
	sp.rec.GroupsReused(ln.m.GroupsReused)
	*ln.m = Metrics{}
}

// check performs the actual satisfiability check: rebuild the lane's view
// for the vector's canonical prefix of blocks, then verify space, port,
// and demand constraints. v aliases interned storage and is read-only.
func (ln *lane) check(v []uint16, last migration.ActionType, funneling bool) bool {
	sp := ln.sp
	ln.m.Checks++
	ln.occRejected = false
	var checkStart time.Time
	if ln.rec.Enabled() {
		checkStart = time.Now()
		defer func() { ln.rec.CheckObserved(time.Since(checkStart)) }()
	}
	ln.buildView(v)

	if sp.occDelta != nil && !ln.occupancyOK(v) {
		// The evaluator never saw this view; incVec intentionally stays at
		// the memoized state so the next delta is computed from it.
		ln.occRejected = true
		return false
	}

	copts := routing.CheckOpts{Theta: sp.opts.theta(), Split: sp.opts.Split}
	if sp.scales != nil {
		finished := 0
		for _, c := range v {
			finished += int(c)
		}
		copts.DemandScale = sp.demandScaleAt(finished)
	}
	if funneling {
		blocks := sp.task.BlocksOfType(last)
		blockID := blocks[int(v[last])-1]
		copts.FunnelFactor = sp.opts.FunnelFactor
		copts.FunnelCircuits = funnelCircuits(sp.task, blockID)
	}
	if ln.useInc {
		if ln.eval.IncrementalOff() {
			// The engine disabled itself (this fabric invalidates wholesale,
			// so memoization cannot pay); skip the touched-set bookkeeping
			// too. A nil incVec forces a full rebuild should the engine ever
			// be re-armed.
			ln.incVec = nil
			viol := ln.eval.Check(ln.view, sp.demands, copts)
			return viol.OK()
		}
		ln.collectTouched(v)
		inv0, reu0 := ln.eval.GroupInvalidations, ln.eval.GroupsReused
		viol := ln.eval.CheckDelta(ln.view, ln.touchSw, ln.touchCk, sp.demands, copts)
		inv, reu := ln.eval.GroupInvalidations-inv0, ln.eval.GroupsReused-reu0
		ln.m.GroupInvalidations += inv
		ln.m.GroupsReused += reu
		if ln.rec.Enabled() {
			ln.rec.GroupInvalidations(inv)
			ln.rec.GroupsReused(reu)
		}
		if ln.eval.IncrementalOff() {
			ln.m.IncDisables++
			ln.rec.IncDisable()
		}
		ln.incVec = append(ln.incVec[:0], v...)
		return viol.OK()
	}
	viol := ln.eval.Check(ln.view, sp.demands, copts)
	return viol.OK()
}

// collectTouched gathers into touchSw/touchCk the union of the precomputed
// Touched sets of every block differing between incVec (the vector the
// evaluator's memo reflects) and v. On the first check incVec is nil and
// the sets stay empty: the evaluator has no memo yet and does a full
// rebuild regardless.
func (ln *lane) collectTouched(v []uint16) {
	sp := ln.sp
	ln.touchSw = ln.touchSw[:0]
	ln.touchCk = ln.touchCk[:0]
	if ln.incVec == nil {
		return
	}
	for ty := 0; ty < sp.nTypes; ty++ {
		cur, want := int(ln.incVec[ty]), int(v[ty])
		if cur == want {
			continue
		}
		lo, hi := cur, want
		if lo > hi {
			lo, hi = hi, lo
		}
		blocks := sp.task.BlocksOfType(migration.ActionType(ty))
		for j := lo; j < hi; j++ {
			bt := sp.task.Touched(blocks[j])
			ln.touchSw = append(ln.touchSw, bt.Switches...)
			ln.touchCk = append(ln.touchCk, bt.Circuits...)
		}
	}
}

// buildView materializes the state for vector v in the lane's scratch
// view.
//
// Because every switch and circuit is operated by at most one block
// (Task.Validate enforces this) and Apply/Revert set activity flags
// absolutely, the view for v can be reached from the view for any other
// vector by applying or reverting exactly the differing blocks. Planners
// check near-neighbor states most of the time, so the delta is typically a
// single block instead of an O(|S|+|C|) rebuild. Options.DisableIncrementalView
// forces the full rebuild (kept for the ablation benchmark and as a
// correctness cross-check in tests).
func (ln *lane) buildView(v []uint16) {
	sp := ln.sp
	if sp.opts.DisableIncrementalView || ln.curVec == nil {
		ln.view.Reset()
		if ln.act != nil {
			ln.act.CopyFrom(sp.actBase)
		}
		for ty := 0; ty < sp.nTypes; ty++ {
			blocks := sp.task.BlocksOfType(migration.ActionType(ty))
			for j := 0; j < int(v[ty]); j++ {
				sp.task.Apply(ln.view, blocks[j])
				ln.applyBlockBits(blocks[j], true)
			}
		}
		if !sp.opts.DisableIncrementalView {
			ln.curVec = append(ln.curVec[:0], v...)
		}
		return
	}
	for ty := 0; ty < sp.nTypes; ty++ {
		cur, want := int(ln.curVec[ty]), int(v[ty])
		if cur == want {
			continue
		}
		blocks := sp.task.BlocksOfType(migration.ActionType(ty))
		for j := cur; j < want; j++ {
			sp.task.Apply(ln.view, blocks[j])
			ln.applyBlockBits(blocks[j], true)
		}
		for j := cur; j > want; j-- {
			sp.task.Revert(ln.view, blocks[j-1])
			ln.applyBlockBits(blocks[j-1], false)
		}
		ln.curVec[ty] = uint16(want)
	}
}

// applyBlockBits mirrors one block apply/revert into the lane's packed
// active-switch set. Apply/Revert set activity absolutely (each switch is
// operated by at most one block), so the mirror is exact: an applied
// undrain activates the block's switches, an applied drain deactivates
// them, and a revert does the opposite.
func (ln *lane) applyBlockBits(blockID int, apply bool) {
	if ln.act == nil {
		return
	}
	t := ln.sp.task
	b := &t.Blocks[blockID]
	active := t.Types[b.Type].Op == migration.Undrain
	if !apply {
		active = !active
	}
	if active {
		for _, s := range b.Switches {
			ln.act.Set(int(s))
		}
	} else {
		for _, s := range b.Switches {
			ln.act.Clear(int(s))
		}
	}
}

// occupancyOK verifies the transient space/power budget for the state.
// With the incremental view active the lane's packed active-switch set
// already mirrors v (buildView runs first), so the check is one popcount
// per constrained DC; otherwise the dense reference recount runs. The two
// paths are cross-checked by FuzzOccupancyBitset.
func (ln *lane) occupancyOK(v []uint16) bool {
	if ln.act != nil {
		return ln.occupancyPacked()
	}
	return ln.occupancyDense(v)
}

// occupancyPacked answers the budget check from the maintained bitset:
// the occupancy of a DC is the number of active switches located in it,
// which is popcount(activity ∧ DC membership mask).
func (ln *lane) occupancyPacked() bool {
	for i := range ln.sp.occCheck {
		e := &ln.sp.occCheck[i]
		if int32(ln.act.CountAnd(e.mask)) > e.budget {
			return false
		}
	}
	return true
}

// occupancyDense is the reference occupancy check: reset the dense scratch
// from the base occupancy by copy (no per-check map allocation), replay
// every applied block's per-DC deltas, and compare against the budgets.
func (ln *lane) occupancyDense(v []uint16) bool {
	sp := ln.sp
	occ := ln.occ
	copy(occ, sp.occBase)
	for ty := 0; ty < sp.nTypes; ty++ {
		blocks := sp.task.BlocksOfType(migration.ActionType(ty))
		for j := 0; j < int(v[ty]); j++ {
			for _, d := range sp.occDelta[blocks[j]] {
				occ[d.dc] += d.delta
			}
		}
	}
	for i, n := range occ {
		if b := sp.occBudget[i]; b > 0 && n > b {
			return false
		}
	}
	return true
}
