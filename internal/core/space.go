package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/bits"
	"time"

	"klotski/internal/demand"
	"klotski/internal/migration"
	"klotski/internal/obs"
	"klotski/internal/routing"
	"klotski/internal/topo"
)

// space is the shared search-state machinery used by both planners: vector
// interning for the compact topology representation, the satisfiability
// cache (efficient satisfiability checking, §4.2), the incremental view
// builder, and the heuristic.
type space struct {
	task *migration.Task
	opts Options

	nTypes  int
	totals  []uint16 // blocks per type: the target vector V*
	initial []uint16 // already-executed blocks per type (replanning)
	units   []float64

	// Vector interning. Every distinct V gets a dense index; the
	// satisfiability cache is a slice aligned with those indices.
	key     keyer
	index64 map[uint64]int32
	indexS  map[string]int32
	vecs    []uint16 // flattened: vector i occupies [i*nTypes, (i+1)*nTypes)

	// feas is the equivalent-state satisfiability cache: one entry per
	// interned vector (per (V, last) when funneling makes feasibility
	// depend on the in-flight block).
	feas map[int64]int8 // 1 feasible, 2 infeasible

	eval    *routing.Evaluator
	view    *topo.View
	demands *demand.Set

	// curVec tracks the vector currently materialized in view, enabling
	// incremental delta application between consecutive checks (planners
	// mostly check near-neighbor states, so the delta is usually one or
	// two blocks instead of a full rebuild). nil until the first build.
	curVec []uint16

	// Incremental satisfiability state. useInc enables routing.CheckDelta:
	// incVec is the vector the evaluator's memo was computed on (tracked
	// separately from curVec — an occupancy rejection rebuilds the view but
	// leaves the memo alone), and touchSw/touchCk accumulate the union of
	// Touched sets for blocks differing between incVec and the vector being
	// checked.
	useInc  bool
	incVec  []uint16
	touchSw []topo.SwitchID
	touchCk []topo.CircuitID

	metrics  Metrics
	rec      *obs.Recorder // nil-safe; nil is the no-op default
	deadline time.Time
	started  time.Time

	// Cooperative interruption state. ctx carries caller cancellation;
	// budgetBase rebases the MaxStates cap when a checkpointed search is
	// resumed with a fresh budget; pollCountdown keeps the (relatively
	// expensive) time/context polls off the per-state hot path; stopErr
	// latches the first interruption reason; priorElapsed accumulates
	// planning time across resume legs.
	ctx           context.Context
	budgetBase    int
	pollCountdown int
	stopErr       error
	priorElapsed  time.Duration

	// Space/power budget precompute. Occupancy arrays are dense, indexed by
	// DC+1 (regional switches carry DC -1); occ is the per-check scratch
	// that replaces a per-call map allocation.
	occBase   []int32
	occDelta  [][]dcDelta // nil when SpaceBudget is nil
	occBudget []int32     // 0 means unconstrained
	occ       []int32
}

// dcDelta is one block's occupancy change in one datacenter (index DC+1).
type dcDelta struct {
	dc    int32
	delta int32
}

const (
	feasYes int8 = 1
	feasNo  int8 = 2
)

func newSpace(task *migration.Task, opts Options) (*space, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if task.NumTypes() == 0 || task.NumActions() == 0 {
		return nil, fmt.Errorf("core: task %q has no actions to plan", task.Name)
	}
	sp := &space{
		task:    task,
		opts:    opts,
		nTypes:  task.NumTypes(),
		demands: &task.Demands,
		rec:     opts.Recorder,
		started: time.Now(),
		ctx:     context.Background(),
		// Poll on the very first budget check so that an already-expired
		// deadline or cancelled context trips deterministically even on
		// tiny search spaces.
		pollCountdown: 1,
	}
	if opts.Timeout > 0 {
		sp.deadline = sp.started.Add(opts.Timeout)
	}
	sp.totals = make([]uint16, sp.nTypes)
	sp.units = make([]float64, sp.nTypes)
	for i, c := range task.Counts() {
		if c > 0xFFFF {
			return nil, fmt.Errorf("core: type %s has %d blocks, exceeding planner limit", task.Types[i].Name, c)
		}
		sp.totals[i] = uint16(c)
		sp.units[i] = unitCost(task, migration.ActionType(i))
	}
	sp.initial = make([]uint16, sp.nTypes)
	if opts.InitialCounts != nil {
		if len(opts.InitialCounts) != sp.nTypes {
			return nil, fmt.Errorf("core: InitialCounts has %d entries, task has %d types",
				len(opts.InitialCounts), sp.nTypes)
		}
		for i, c := range opts.InitialCounts {
			if c < 0 || c > int(sp.totals[i]) {
				return nil, fmt.Errorf("core: InitialCounts[%d]=%d out of range [0,%d]", i, c, sp.totals[i])
			}
			sp.initial[i] = uint16(c)
		}
	}
	sp.key = newKeyer(sp.totals)
	if sp.key.fits64 {
		sp.index64 = make(map[uint64]int32, 1024)
	} else {
		sp.indexS = make(map[string]int32, 1024)
	}
	sp.feas = make(map[int64]int8, 1024)
	sp.eval = opts.Evaluator
	if sp.eval == nil {
		sp.eval = routing.NewEvaluator(task.Topo)
	}
	sp.view = task.Topo.NewView()
	if opts.SpaceBudget != nil {
		sp.precomputeOccupancy()
	}
	// Force the lazily-built shared indexes now, while construction is
	// still single-threaded: parallel precheck workers share the task and
	// demand set, and neither index build is goroutine-safe.
	sp.demands.DestinationIndex()
	task.BlocksOfType(0)
	// Incremental satisfiability: sound only when bounds depend on the
	// topology state alone (no funneling) and this space owns the
	// evaluator's memo (a caller-supplied evaluator may be shared with
	// other live spaces whose checks would desynchronize it).
	sp.useInc = !opts.DisableIncrementalEval && opts.FunnelFactor <= 1 && opts.Evaluator == nil
	if sp.useInc {
		task.BuildTouched()
	}
	return sp, nil
}

// keyer packs a count vector into a uint64 when the per-type totals fit,
// falling back to a byte-string key otherwise.
type keyer struct {
	fits64 bool
	shifts []uint
	buf    []byte // scratch for lookup-only string keys
}

func newKeyer(totals []uint16) keyer {
	k := keyer{shifts: make([]uint, len(totals))}
	bitsUsed := uint(0)
	k.fits64 = true
	for i, t := range totals {
		w := uint(bits.Len16(t)) // enough for values 0..t
		if w == 0 {
			w = 1
		}
		k.shifts[i] = bitsUsed
		bitsUsed += w
	}
	if bitsUsed > 64 {
		k.fits64 = false
	}
	return k
}

func (k *keyer) key64(vec []uint16) uint64 {
	var out uint64
	for i, v := range vec {
		out |= uint64(v) << k.shifts[i]
	}
	return out
}

// keyBytes encodes vec into the keyer's scratch buffer. The result is
// invalidated by the next keyBytes call; map probes via string(keyBytes(v))
// compile to an allocation-free lookup, so only inserts pay for a string.
func (k *keyer) keyBytes(vec []uint16) []byte {
	if cap(k.buf) < 2*len(vec) {
		k.buf = make([]byte, 2*len(vec))
	}
	buf := k.buf[:2*len(vec)]
	for i, v := range vec {
		binary.BigEndian.PutUint16(buf[2*i:], v)
	}
	return buf
}

func (k *keyer) keyStr(vec []uint16) string {
	return string(k.keyBytes(vec))
}

// intern returns the dense index for vec, creating it if new. The returned
// bool is true when the vector was already known.
func (sp *space) intern(vec []uint16) (int32, bool) {
	if sp.key.fits64 {
		k := sp.key.key64(vec)
		if idx, ok := sp.index64[k]; ok {
			return idx, true
		}
		idx := sp.addVec(vec)
		sp.index64[k] = idx
		return idx, false
	}
	buf := sp.key.keyBytes(vec)
	if idx, ok := sp.indexS[string(buf)]; ok {
		return idx, true
	}
	idx := sp.addVec(vec)
	sp.indexS[string(buf)] = idx
	return idx, false
}

// lookup returns the dense index for vec without creating it.
func (sp *space) lookup(vec []uint16) (int32, bool) {
	if sp.key.fits64 {
		idx, ok := sp.index64[sp.key.key64(vec)]
		return idx, ok
	}
	idx, ok := sp.indexS[string(sp.key.keyBytes(vec))]
	return idx, ok
}

func (sp *space) addVec(vec []uint16) int32 {
	idx := int32(len(sp.vecs) / sp.nTypes)
	sp.vecs = append(sp.vecs, vec...)
	return idx
}

// vec returns the interned vector at idx. The returned slice aliases
// space-owned storage; do not modify.
func (sp *space) vec(idx int32) []uint16 {
	return sp.vecs[int(idx)*sp.nTypes : (int(idx)+1)*sp.nTypes]
}

// isTarget reports whether idx is the fully-migrated vector.
func (sp *space) isTarget(idx int32) bool {
	v := sp.vec(idx)
	for i := range v {
		if v[i] != sp.totals[i] {
			return false
		}
	}
	return true
}

// finished returns the total number of finished actions in the vector —
// the secondary priority of §4.4.
func (sp *space) finished(idx int32) int {
	n := 0
	for _, v := range sp.vec(idx) {
		n += int(v)
	}
	return n
}

// remaining returns the number of actions still to do.
func (sp *space) remaining(idx int32) int {
	n := 0
	v := sp.vec(idx)
	for i := range v {
		n += int(sp.totals[i]) - int(v[i])
	}
	return n
}

// extKey builds the (vector, last-action) state key used by the planners'
// best-cost tables.
func (sp *space) extKey(vecIdx int32, last migration.ActionType) int64 {
	return int64(vecIdx)*int64(sp.nTypes+1) + int64(last) + 1
}

// runCap returns the maximum run length, or 0 for unlimited.
func (sp *space) runCap() int { return sp.opts.MaxRunLength }

// extKeyT extends extKey with the tail length of the in-progress run —
// needed only when MaxRunLength is set (the tail is always 0 otherwise, so
// keys coincide with extKey).
func (sp *space) extKeyT(vecIdx int32, last migration.ActionType, tail int) int64 {
	return sp.extKey(vecIdx, last)*int64(sp.runCap()+1) + int64(tail%(sp.runCap()+1))
}

// decodeKeyT inverts extKeyT, recovering the (vector, last, tail) triple
// from a state key. Used to render checkpoint frontiers from DP memo keys.
func (sp *space) decodeKeyT(key int64) (vecIdx int32, last migration.ActionType, tail int) {
	span := int64(sp.runCap() + 1)
	tail = int(key % span)
	ek := key / span
	last = migration.ActionType(ek%int64(sp.nTypes+1)) - 1
	vecIdx = int32(ek / int64(sp.nTypes+1))
	return vecIdx, last, tail
}

// prevInfo records a state's best predecessor for plan reconstruction.
type prevInfo struct {
	last migration.ActionType
	tail int16
}

// step computes one action's incremental cost under the (optional) run
// cap: a different type — or a same-type action once the current run has
// reached MaxRunLength — starts a new run at full unit cost and requires
// the state being left to pass a boundary check.
func (sp *space) step(last, a migration.ActionType, tail int) (cost float64, newTail int, boundary bool) {
	k := sp.runCap()
	if a != last {
		if k == 0 {
			return sp.units[a], 0, true
		}
		return sp.units[a], 1, true
	}
	if k == 0 {
		// Uncapped: the tail never matters; keep it at 0 so state keys
		// coincide with the plain (vector, last) encoding.
		return sp.opts.Alpha * sp.units[a], 0, false
	}
	if tail >= k {
		return sp.units[a], 1, true
	}
	return sp.opts.Alpha * sp.units[a], tail + 1, false
}

// stepCost is the incremental cost of performing an action of type a after
// an action of type last (Eq. 1 + §5 generalization).
func (sp *space) stepCost(last, a migration.ActionType) float64 {
	if a == last {
		return sp.opts.Alpha * sp.units[a]
	}
	return sp.units[a]
}

// heuristic is the admissible, consistent cost-to-go lower bound (Eq. 9
// adjusted for the in-progress run): every remaining type a≠last needs at
// least one fresh run costing unit_a(1 + α(rem_a − 1)); remaining actions
// of the current run's type can extend it at α·unit_last each.
//
// Under Options.MaxRunLength = K the bound strengthens: finishing rem
// actions of a type needs at least ⌈rem/K⌉ runs (⌈(rem−(K−tail))/K⌉ fresh
// runs for the in-progress type, whose current chunk still has K−tail
// α-cost slots). See heuristicCapped.
func (sp *space) heuristic(vecIdx int32, last migration.ActionType) float64 {
	if sp.opts.DisableHeuristic {
		return 0
	}
	if sp.runCap() > 0 {
		// The A* open list stores the tail; the heuristic used for
		// ordering is computed via heuristicCapped at push time. This
		// entry point (tail unknown) uses the weakest tail assumption,
		// keeping it admissible wherever it is still called.
		return sp.heuristicCapped(vecIdx, last, sp.runCap())
	}
	v := sp.vec(vecIdx)
	h := 0.0
	alpha := sp.opts.Alpha
	for i := range v {
		rem := float64(sp.totals[i] - v[i])
		if rem == 0 {
			continue
		}
		if migration.ActionType(i) == last {
			h += alpha * sp.units[i] * rem
		} else {
			h += sp.units[i] * (1 + alpha*(rem-1))
		}
	}
	return h
}

// heuristicCapped is the cost-to-go lower bound under a run cap K, given
// the in-progress run's tail length. For each type with rem pending
// actions: fresh runs cost unit each, extensions α·unit each, and at most
// K actions fit per run; the in-progress type gets K−tail free extension
// slots before its first fresh run.
func (sp *space) heuristicCapped(vecIdx int32, last migration.ActionType, tail int) float64 {
	if sp.opts.DisableHeuristic {
		return 0
	}
	k := sp.runCap()
	if k == 0 {
		return sp.heuristic(vecIdx, last)
	}
	v := sp.vec(vecIdx)
	h := 0.0
	alpha := sp.opts.Alpha
	for i := range v {
		rem := int(sp.totals[i]) - int(v[i])
		if rem == 0 {
			continue
		}
		unit := sp.units[i]
		if migration.ActionType(i) == last {
			free := k - tail // α-cost slots left in the current chunk
			if free < 0 {
				free = 0
			}
			if rem <= free {
				h += alpha * unit * float64(rem)
				continue
			}
			rest := rem - free
			runs := (rest + k - 1) / k
			h += alpha*unit*float64(free) + unit*float64(runs) + alpha*unit*float64(rest-runs)
		} else {
			runs := (rem + k - 1) / k
			h += unit*float64(runs) + alpha*unit*float64(rem-runs)
		}
	}
	return h
}

// interrupted reports why the planner must stop — state-budget exhaustion
// (ErrBudget), an expired time budget (ErrBudget), or caller cancellation
// (the context's error) — or nil to continue. Time and context are polled
// every pollInterval calls to keep them off the hot path, except for the
// very first call, which always polls so tiny searches still honor
// already-expired deadlines. Once tripped, the reason latches.
func (sp *space) interrupted() error {
	if sp.stopErr != nil {
		return sp.stopErr
	}
	if sp.metrics.StatesCreated-sp.budgetBase > sp.opts.maxStates() {
		sp.stopErr = ErrBudget
		return sp.stopErr
	}
	sp.pollCountdown--
	if sp.pollCountdown > 0 {
		return nil
	}
	sp.pollCountdown = pollInterval
	if err := sp.ctx.Err(); err != nil {
		sp.stopErr = err
		return sp.stopErr
	}
	if !sp.deadline.IsZero() && time.Now().After(sp.deadline) {
		sp.stopErr = ErrBudget
		return sp.stopErr
	}
	return nil
}

// pollInterval is how many interrupted() calls pass between time/context
// polls.
const pollInterval = 256

// rebudget rearms an interrupted search with a fresh budget envelope for a
// resumed leg: MaxStates counts from the current state total, the deadline
// restarts from now, and the context is replaced. All other options keep
// their original values — they shaped the cached search state and cannot
// change mid-search.
func (sp *space) rebudget(ctx context.Context, opts Options) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp.ctx = ctx
	sp.opts.MaxStates = opts.MaxStates
	sp.opts.Timeout = opts.Timeout
	sp.budgetBase = sp.metrics.StatesCreated
	sp.deadline = time.Time{}
	if opts.Timeout > 0 {
		sp.deadline = time.Now().Add(opts.Timeout)
	}
	sp.started = time.Now()
	sp.stopErr = nil
	sp.pollCountdown = 1
}

// pause banks the elapsed planning time when a search is interrupted, so
// the wall-clock gap until a later Resume is not counted as planning time.
func (sp *space) pause() {
	sp.priorElapsed += time.Since(sp.started)
	sp.started = time.Now()
}

// feasible checks the safety of the intermediate topology identified by the
// interned vector, consulting the equivalent-state cache first. last is the
// action type that produced this state; it matters only when funneling
// headroom is enabled (the in-flight block determines which circuits need
// headroom), in which case the cache key includes it.
func (sp *space) feasible(vecIdx int32, last migration.ActionType) bool {
	funneling := sp.opts.FunnelFactor > 1 && last >= 0
	var ck int64
	if funneling {
		ck = sp.extKey(vecIdx, last)
	} else {
		ck = sp.extKey(vecIdx, NoLast)
	}
	if !sp.opts.DisableCache {
		if f, ok := sp.feas[ck]; ok {
			sp.metrics.CacheHits++
			sp.rec.CacheHit()
			return f == feasYes
		}
		sp.metrics.CacheMisses++
		sp.rec.CacheMiss()
	}
	ok := sp.check(vecIdx, last, funneling)
	res := feasNo
	if ok {
		res = feasYes
	}
	sp.feas[ck] = res
	return ok
}

// check performs the actual satisfiability check: rebuild the view for the
// vector's canonical prefix of blocks, then verify space, port, and demand
// constraints.
func (sp *space) check(vecIdx int32, last migration.ActionType, funneling bool) bool {
	sp.metrics.Checks++
	var checkStart time.Time
	if sp.rec.Enabled() {
		checkStart = time.Now()
		defer func() { sp.rec.CheckObserved(time.Since(checkStart)) }()
	}
	v := sp.vec(vecIdx)
	sp.buildView(v)

	if sp.occDelta != nil && !sp.occupancyOK(v) {
		// The evaluator never saw this view; incVec intentionally stays at
		// the memoized state so the next delta is computed from it.
		return false
	}

	copts := routing.CheckOpts{Theta: sp.opts.theta(), Split: sp.opts.Split}
	if funneling {
		blocks := sp.task.BlocksOfType(last)
		blockID := blocks[int(v[last])-1]
		copts.FunnelFactor = sp.opts.FunnelFactor
		copts.FunnelCircuits = funnelCircuits(sp.task, blockID)
	}
	if sp.useInc {
		if sp.eval.IncrementalOff() {
			// The engine disabled itself (this fabric invalidates wholesale,
			// so memoization cannot pay); skip the touched-set bookkeeping
			// too. A nil incVec forces a full rebuild should the engine ever
			// be re-armed.
			sp.incVec = nil
			viol := sp.eval.Check(sp.view, sp.demands, copts)
			return viol.OK()
		}
		sp.collectTouched(v)
		inv0, reu0 := sp.eval.GroupInvalidations, sp.eval.GroupsReused
		viol := sp.eval.CheckDelta(sp.view, sp.touchSw, sp.touchCk, sp.demands, copts)
		inv, reu := sp.eval.GroupInvalidations-inv0, sp.eval.GroupsReused-reu0
		sp.metrics.GroupInvalidations += inv
		sp.metrics.GroupsReused += reu
		sp.rec.GroupInvalidations(inv)
		sp.rec.GroupsReused(reu)
		if sp.eval.IncrementalOff() {
			sp.metrics.IncDisables++
			sp.rec.IncDisable()
		}
		sp.incVec = append(sp.incVec[:0], v...)
		return viol.OK()
	}
	viol := sp.eval.Check(sp.view, sp.demands, copts)
	return viol.OK()
}

// collectTouched gathers into touchSw/touchCk the union of the precomputed
// Touched sets of every block differing between incVec (the vector the
// evaluator's memo reflects) and v. On the first check incVec is nil and
// the sets stay empty: the evaluator has no memo yet and does a full
// rebuild regardless.
func (sp *space) collectTouched(v []uint16) {
	sp.touchSw = sp.touchSw[:0]
	sp.touchCk = sp.touchCk[:0]
	if sp.incVec == nil {
		return
	}
	for ty := 0; ty < sp.nTypes; ty++ {
		cur, want := int(sp.incVec[ty]), int(v[ty])
		if cur == want {
			continue
		}
		lo, hi := cur, want
		if lo > hi {
			lo, hi = hi, lo
		}
		blocks := sp.task.BlocksOfType(migration.ActionType(ty))
		for j := lo; j < hi; j++ {
			bt := sp.task.Touched(blocks[j])
			sp.touchSw = append(sp.touchSw, bt.Switches...)
			sp.touchCk = append(sp.touchCk, bt.Circuits...)
		}
	}
}

// buildView materializes the state for vector v in the scratch view.
//
// Because every switch and circuit is operated by at most one block
// (Task.Validate enforces this) and Apply/Revert set activity flags
// absolutely, the view for v can be reached from the view for any other
// vector by applying or reverting exactly the differing blocks. Planners
// check near-neighbor states most of the time, so the delta is typically a
// single block instead of an O(|S|+|C|) rebuild. Options.DisableIncrementalView
// forces the full rebuild (kept for the ablation benchmark and as a
// correctness cross-check in tests).
func (sp *space) buildView(v []uint16) {
	if sp.opts.DisableIncrementalView || sp.curVec == nil {
		sp.view.Reset()
		for ty := 0; ty < sp.nTypes; ty++ {
			blocks := sp.task.BlocksOfType(migration.ActionType(ty))
			for j := 0; j < int(v[ty]); j++ {
				sp.task.Apply(sp.view, blocks[j])
			}
		}
		if !sp.opts.DisableIncrementalView {
			sp.curVec = append(sp.curVec[:0], v...)
		}
		return
	}
	for ty := 0; ty < sp.nTypes; ty++ {
		cur, want := int(sp.curVec[ty]), int(v[ty])
		if cur == want {
			continue
		}
		blocks := sp.task.BlocksOfType(migration.ActionType(ty))
		for j := cur; j < want; j++ {
			sp.task.Apply(sp.view, blocks[j])
		}
		for j := cur; j > want; j-- {
			sp.task.Revert(sp.view, blocks[j-1])
		}
		sp.curVec[ty] = uint16(want)
	}
}

// precomputeOccupancy derives per-block space-occupancy deltas: draining a
// switch frees its slot (the hardware is decommissioned and removed);
// undraining a switch requires its slot from that step on.
func (sp *space) precomputeOccupancy() {
	t := sp.task
	maxDC := -1
	for i := 0; i < t.Topo.NumSwitches(); i++ {
		if dc := t.Topo.Switch(topo.SwitchID(i)).DC; dc > maxDC {
			maxDC = dc
		}
	}
	nDC := maxDC + 2 // slot 0 holds the regional pseudo-DC (-1)
	sp.occBase = make([]int32, nDC)
	for i := 0; i < t.Topo.NumSwitches(); i++ {
		s := t.Topo.Switch(topo.SwitchID(i))
		if t.Topo.SwitchActive(s.ID) {
			sp.occBase[s.DC+1]++
		}
	}
	sp.occBudget = make([]int32, nDC)
	for dc, b := range sp.opts.SpaceBudget {
		if dc+1 >= 0 && dc+1 < nDC && b > 0 {
			sp.occBudget[dc+1] = int32(b)
		}
	}
	sp.occ = make([]int32, nDC)
	sp.occDelta = make([][]dcDelta, len(t.Blocks))
	for i := range t.Blocks {
		b := &t.Blocks[i]
		var d []dcDelta
		sign := int32(1)
		if t.Types[b.Type].Op == migration.Drain {
			sign = -1
		}
	blockSwitches:
		for _, sw := range b.Switches {
			dc := int32(t.Topo.Switch(sw).DC + 1)
			for k := range d {
				if d[k].dc == dc {
					d[k].delta += sign
					continue blockSwitches
				}
			}
			d = append(d, dcDelta{dc: dc, delta: sign})
		}
		sp.occDelta[i] = d
	}
}

// occupancyOK verifies the transient space/power budget for the state. The
// dense scratch slice is reset by copy from the base occupancy, avoiding
// the per-check map allocation this function used to pay.
func (sp *space) occupancyOK(v []uint16) bool {
	occ := sp.occ
	copy(occ, sp.occBase)
	for ty := 0; ty < sp.nTypes; ty++ {
		blocks := sp.task.BlocksOfType(migration.ActionType(ty))
		for j := 0; j < int(v[ty]); j++ {
			for _, d := range sp.occDelta[blocks[j]] {
				occ[d.dc] += d.delta
			}
		}
	}
	for i, n := range occ {
		if b := sp.occBudget[i]; b > 0 && n > b {
			return false
		}
	}
	return true
}

// reconstruct walks the best-cost predecessor table back from the target
// state to the initial state, emitting block IDs in execution order.
func (sp *space) reconstruct(prev map[int64]prevInfo, vecIdx int32, last migration.ActionType, tail int) []int {
	var rev []int
	cur := append([]uint16(nil), sp.vec(vecIdx)...)
	for last != NoLast {
		atInitial := true
		for i := range cur {
			if cur[i] != sp.initial[i] {
				atInitial = false
				break
			}
		}
		if atInitial {
			break
		}
		blocks := sp.task.BlocksOfType(last)
		rev = append(rev, blocks[int(cur[last])-1])
		idx, ok := sp.lookup(cur)
		if !ok {
			panic("core: reconstruction reached unknown state")
		}
		p, ok := prev[sp.extKeyT(idx, last, tail)]
		if !ok {
			panic("core: reconstruction missing predecessor")
		}
		cur[last]--
		last = p.last
		tail = int(p.tail)
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// elapsedMetrics finalizes and returns the metrics for a finished run,
// accumulating planning time across resumed legs (the wall-clock gap
// between interruption and resumption is not counted).
func (sp *space) elapsedMetrics() Metrics {
	m := sp.metrics
	m.PlanningTime = sp.priorElapsed + time.Since(sp.started)
	return m
}
