package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"klotski/internal/bound"
	"klotski/internal/demand"
	"klotski/internal/migration"
	"klotski/internal/obs"
	"klotski/internal/routing"
	"klotski/internal/topo"
)

// space is the shared search-state machinery used by both planners: vector
// interning for the compact topology representation, the satisfiability
// cache (efficient satisfiability checking, §4.2), and the heuristic.
//
// The space itself holds only immutable task precompute (totals, unit
// costs, occupancy deltas, the key packing layout) and the two concurrent
// tables every lane shares — the striped intern table and the per-vector
// satisfiability cache. All per-check mutable state (scratch view,
// evaluator, incremental memo, occupancy scratch) lives in lanes: the
// planner goroutine owns lane 0 (sp.ln), and parallel batches fork
// additional worker lanes that check vectors concurrently against the
// shared tables.
type space struct {
	task *migration.Task
	opts Options

	nTypes  int
	totals  []uint16 // blocks per type: the target vector V*
	initial []uint16 // already-executed blocks per type (replanning)
	units   []float64

	// Vector interning and the satisfiability cache. Every distinct V gets
	// a dense index from the striped intern table; feasT holds one atomic
	// verdict per index. key carries the immutable packing layout; lanes
	// copy it with private scratch.
	key   keyer
	vt    *vecTable
	feasT *feasTable

	// feasF is the funneling-regime cache, keyed by (vector, last): with
	// FunnelFactor > 1 a verdict depends on the in-flight block, not the
	// vector alone. Parallel batching is disabled under funneling, so this
	// map is only ever touched by the planner goroutine.
	feasF map[int64]int8

	demands *demand.Set

	// scales is the per-horizon demand multiplier table: scales[k] is the
	// forecasted demand scale after k finished actions (task.Forecast).
	// nil when the task carries no growth model — every check runs at
	// scale 1. A vector's horizon is the sum of its entries (absolute
	// finished counts, including any initial executed prefix), so the
	// per-vector feasibility caches remain sound: the scale is a pure
	// function of the vector.
	scales []float64

	// ln is lane 0: the planner goroutine's own check lane.
	ln *lane

	// useInc is lane 0's incremental-evaluation policy; laneInc is the
	// worker lanes' (workers always own their forked memo, so a shared
	// caller-supplied evaluator does not disqualify them).
	useInc  bool
	laneInc bool

	metrics  Metrics
	rec      *obs.Recorder // nil-safe; nil is the no-op default
	deadline time.Time
	started  time.Time

	// Cooperative interruption state. ctx carries caller cancellation;
	// budgetBase rebases the MaxStates cap when a checkpointed search is
	// resumed with a fresh budget; pollCountdown keeps the (relatively
	// expensive) time/context polls off the per-state hot path; stopErr
	// latches the first interruption reason; priorElapsed accumulates
	// planning time across resume legs.
	ctx           context.Context
	budgetBase    int
	pollCountdown int
	stopErr       error
	priorElapsed  time.Duration

	// Space/power budget precompute. Occupancy arrays are dense, indexed by
	// DC+1 (regional switches carry DC -1); per-check scratch is per-lane.
	occBase   []int32
	occDelta  [][]dcDelta // nil when SpaceBudget is nil
	occBudget []int32     // 0 means unconstrained

	// Packed-occupancy precompute: actBase is the active-switch bitset of
	// the base topology, and occCheck lists the budget-constrained DCs with
	// their switch-membership masks. Lanes mirror actBase incrementally
	// alongside their view and answer the occupancy check with one popcount
	// per constrained DC instead of a dense per-DC recount; the dense scratch
	// path remains as the reference (and the DisableIncrementalView path).
	actBase  routing.Bitset
	occCheck []occMaskEntry

	// adaptive, when non-nil, is the runtime worker policy selected by
	// Options.Workers == WorkersAdaptive; it owns the effective lane count
	// and the warming on/off decision.
	adaptive *adaptivePolicy

	// contention counts cross-worker collisions on satisfiability-cache
	// claims; folded together with the intern table's count into
	// Metrics.ShardContention.
	contention atomic.Int64
	contFolded int

	// specPending tracks batched verdicts not yet consumed by the serial
	// search — the speculative-waste ledger. nil unless an A* frontier
	// warmer is active, so serial runs pay nothing.
	specPending map[int32]struct{}

	// degraded latches after a worker-lane panic: every parallel path (DP
	// wavefront, A* frontier warmer) is retired for the remainder of the
	// run — including resume legs — and the planners finish serially,
	// which produces byte-identical plans. Only the planner goroutine
	// writes it, between parallel phases.
	degraded bool

	// bd is the attached lower-bound engine — nil unless Options.Bound
	// matches this task shape and the configuration is one the engine's
	// cut model covers (no funneling, no run cap). incumbent/lowerBound
	// carry the run's anytime optimality certificate; the *Base fields
	// rebase the engine's lifetime counters onto this run's metrics so
	// reuse across runs never double-counts.
	bd          *bound.Engine
	incumbent   float64
	lowerBound  float64
	bdCutsBase  int
	bdHitsBase  int
	bdCrossBase int

	// scratches tracks the pooled per-lane scratch bundles (keyer buffer,
	// occupancy scratch, activity bitset) this space acquired, so
	// finishPlan can return them to the shape-keyed pool when the run
	// completes. Appended only by the planner goroutine (lanes are always
	// built between parallel phases).
	scratches []*laneScratch
}

// dcDelta is one block's occupancy change in one datacenter (index DC+1).
type dcDelta struct {
	dc    int32
	delta int32
}

// occMaskEntry is one budget-constrained datacenter's packed occupancy
// check: popcount(lane activity ∧ mask) must stay within budget.
type occMaskEntry struct {
	budget int32
	mask   routing.Bitset
}

const (
	feasYes int8 = 1
	feasNo  int8 = 2
)

func newSpace(task *migration.Task, opts Options) (*space, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if task.NumTypes() == 0 || task.NumActions() == 0 {
		return nil, fmt.Errorf("core: task %q has no actions to plan", task.Name)
	}
	sp := &space{
		task:    task,
		opts:    opts,
		nTypes:  task.NumTypes(),
		demands: &task.Demands,
		rec:     opts.Recorder,
		started: time.Now(),
		ctx:     context.Background(),
		// Poll on the very first budget check so that an already-expired
		// deadline or cancelled context trips deterministically even on
		// tiny search spaces.
		pollCountdown: 1,
	}
	if opts.Timeout > 0 {
		sp.deadline = sp.started.Add(opts.Timeout)
	}
	sp.totals = make([]uint16, sp.nTypes)
	sp.units = make([]float64, sp.nTypes)
	for i, c := range task.Counts() {
		if c > 0xFFFF {
			return nil, fmt.Errorf("core: type %s has %d blocks, exceeding planner limit", task.Types[i].Name, c)
		}
		sp.totals[i] = uint16(c)
		sp.units[i] = unitCost(task, migration.ActionType(i))
	}
	sp.initial = make([]uint16, sp.nTypes)
	if opts.InitialCounts != nil {
		if len(opts.InitialCounts) != sp.nTypes {
			return nil, fmt.Errorf("core: InitialCounts has %d entries, task has %d types",
				len(opts.InitialCounts), sp.nTypes)
		}
		for i, c := range opts.InitialCounts {
			if c < 0 || c > int(sp.totals[i]) {
				return nil, fmt.Errorf("core: InitialCounts[%d]=%d out of range [0,%d]", i, c, sp.totals[i])
			}
			sp.initial[i] = uint16(c)
		}
	}
	sp.key = newKeyer(sp.totals)
	sp.vt = newVecTable(sp.nTypes, sp.key.fits64)
	sp.feasT = &feasTable{}
	if opts.FunnelFactor > 1 {
		sp.feasF = make(map[int64]int8, 1024)
	}
	eval := opts.Evaluator
	if eval == nil {
		eval = routing.NewEvaluator(task.Topo)
	}
	if opts.SpaceBudget != nil {
		sp.precomputeOccupancy()
	}
	// Incremental satisfiability: for lane 0, sound only when bounds depend
	// on the topology state alone (no funneling) and this space owns the
	// evaluator's memo (a caller-supplied evaluator may be shared with
	// other live spaces whose checks would desynchronize it). Worker lanes
	// always fork a private evaluator, so only the funneling condition
	// applies to them.
	sp.useInc = !opts.DisableIncrementalEval && opts.FunnelFactor <= 1 && opts.Evaluator == nil
	sp.laneInc = !opts.DisableIncrementalEval && opts.FunnelFactor <= 1
	if sp.useInc || (sp.laneInc && opts.Workers > 1) {
		// Eagerly precompute touched sets while construction is
		// single-threaded. Worker lanes spun up later (e.g. a resume leg
		// raising Workers) fall back on the goroutine-safe lazy build.
		task.BuildTouched()
	}
	if task.Forecast.GrowthPerStep != 0 {
		total := 0
		for _, t := range sp.totals {
			total += int(t)
		}
		sp.scales = make([]float64, total+1)
		for k := range sp.scales {
			sp.scales[k] = task.Forecast.ScaleAt(k)
		}
	}
	sp.ln = sp.newLane(eval, sp.rec, sp.useInc, &sp.metrics)
	if opts.Workers == WorkersAdaptive {
		sp.adaptive = newAdaptivePolicy(sp)
	}
	// No plan yet: the incumbent is +Inf until a planner completes (or a
	// target push improves it), and the global lower bound starts at 0.
	sp.incumbent = math.Inf(1)
	// Attach the caller's lower-bound engine when it covers this
	// configuration. Funneling verdicts depend on (vector, last) and a run
	// cap changes which vectors are boundary-checked, so the engine's
	// vector-keyed cut model excludes both; a mismatched engine (different
	// task shape) is ignored rather than rejected, so one engine can be
	// carried across heterogeneous runs harmlessly.
	if b := opts.Bound; b != nil && opts.FunnelFactor <= 1 && opts.MaxRunLength == 0 &&
		b.Matches(sp.totals, sp.units, opts.Alpha) {
		sp.bd = b
		// Cross-plan import base BEFORE Bind: Bind pulls shared structural
		// cuts from an attached store, and those imports belong to THIS
		// run's metrics.
		sp.bdCrossBase = b.CrossHits()
		b.Bind(sp.boundStructSig(), sp.boundDemandSig())
		last := opts.InitialLast
		if opts.InitialCounts == nil {
			last = NoLast
		}
		b.Arm(sp.initial, int(last))
		sp.bdCutsBase = b.CutsLearned()
		sp.bdHitsBase = b.CutHits()
	}
	return sp, nil
}

// fnv64a mixing for the bound engine's provenance signatures.
const (
	sigOffset uint64 = 14695981039346656037
	sigPrime  uint64 = 1099511628211
)

func sigMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * sigPrime
		x >>= 8
	}
	return h
}

// boundStructSig fingerprints every demand-independent input that shapes
// boundary verdicts: θ, α, split policy, funneling, run cap, space
// budgets, topology element activity (outages), and the task shape. Any
// change invalidates the engine's entire cut set.
func (sp *space) boundStructSig() uint64 {
	h := sigOffset
	h = sigMix(h, math.Float64bits(sp.opts.Theta))
	h = sigMix(h, math.Float64bits(sp.opts.Alpha))
	h = sigMix(h, uint64(sp.opts.Split))
	h = sigMix(h, math.Float64bits(sp.opts.FunnelFactor))
	h = sigMix(h, uint64(sp.opts.MaxRunLength))
	if len(sp.opts.SpaceBudget) > 0 {
		dcs := make([]int, 0, len(sp.opts.SpaceBudget))
		for dc := range sp.opts.SpaceBudget {
			dcs = append(dcs, dc)
		}
		sort.Ints(dcs)
		for _, dc := range dcs {
			h = sigMix(h, uint64(int64(dc)))
			h = sigMix(h, uint64(int64(sp.opts.SpaceBudget[dc])))
		}
	}
	t := sp.task.Topo
	h = sigMix(h, uint64(t.NumSwitches()))
	h = sigMix(h, uint64(t.NumCircuits()))
	var w uint64
	nb := 0
	for i := 0; i < t.NumSwitches(); i++ {
		w <<= 1
		if t.SwitchActive(topo.SwitchID(i)) {
			w |= 1
		}
		if nb++; nb == 64 {
			h = sigMix(h, w)
			w, nb = 0, 0
		}
	}
	for i := 0; i < t.NumCircuits(); i++ {
		w <<= 1
		if t.CircuitActive(topo.CircuitID(i)) {
			w |= 1
		}
		if nb++; nb == 64 {
			h = sigMix(h, w)
			w, nb = 0, 0
		}
	}
	if nb > 0 {
		h = sigMix(h, w)
	}
	for _, tot := range sp.totals {
		h = sigMix(h, uint64(tot))
	}
	return h
}

// boundDemandSig fingerprints the demand matrix and growth model — the
// inputs whose drift invalidates demand-dependent cuts while structural
// (occupancy) cuts survive.
func (sp *space) boundDemandSig() uint64 {
	h := sigOffset
	for i := range sp.demands.Demands {
		d := &sp.demands.Demands[i]
		h = sigMix(h, uint64(int64(d.Src)))
		h = sigMix(h, uint64(int64(d.Dst)))
		h = sigMix(h, math.Float64bits(d.Rate))
	}
	h = sigMix(h, math.Float64bits(sp.task.Forecast.GrowthPerStep))
	return h
}

// effectiveWorkers is the worker count the parallel paths should size to:
// the adaptive policy's current lane count when the policy is active, the
// static Options.Workers knob otherwise.
func (sp *space) effectiveWorkers() int {
	if sp.adaptive != nil {
		return sp.adaptive.lanes
	}
	return sp.opts.Workers
}

// demandScaleAt returns the forecasted demand multiplier for a state with
// the given number of finished actions; 0 means "unscaled" downstream.
func (sp *space) demandScaleAt(finished int) float64 {
	if sp.scales == nil {
		return 0
	}
	if finished >= len(sp.scales) {
		finished = len(sp.scales) - 1
	}
	if finished < 0 {
		finished = 0
	}
	return sp.scales[finished]
}

// keyer packs a count vector into a uint64 when the per-type totals fit,
// falling back to a byte-string key otherwise.
type keyer struct {
	fits64 bool
	shifts []uint
	buf    []byte // scratch for lookup-only string keys
}

func newKeyer(totals []uint16) keyer {
	k := keyer{shifts: make([]uint, len(totals))}
	bitsUsed := uint(0)
	k.fits64 = true
	for i, t := range totals {
		w := uint(bits.Len16(t)) // enough for values 0..t
		if w == 0 {
			w = 1
		}
		k.shifts[i] = bitsUsed
		bitsUsed += w
	}
	if bitsUsed > 64 {
		k.fits64 = false
	}
	return k
}

func (k *keyer) key64(vec []uint16) uint64 {
	var out uint64
	for i, v := range vec {
		out |= uint64(v) << k.shifts[i]
	}
	return out
}

// keyBytes encodes vec into the keyer's scratch buffer. The result is
// invalidated by the next keyBytes call; map probes via string(keyBytes(v))
// compile to an allocation-free lookup, so only inserts pay for a string.
func (k *keyer) keyBytes(vec []uint16) []byte {
	if cap(k.buf) < 2*len(vec) {
		k.buf = make([]byte, 2*len(vec))
	}
	buf := k.buf[:2*len(vec)]
	for i, v := range vec {
		binary.BigEndian.PutUint16(buf[2*i:], v)
	}
	return buf
}

func (k *keyer) keyStr(vec []uint16) string {
	return string(k.keyBytes(vec))
}

// intern returns the dense index for vec, creating it if new. The returned
// bool is true when the vector was already known. Called from the planner
// goroutine; it uses lane 0's keyer scratch.
func (sp *space) intern(vec []uint16) (int32, bool) {
	return sp.vt.intern(&sp.ln.key, vec)
}

// lookup returns the dense index for vec without creating it.
func (sp *space) lookup(vec []uint16) (int32, bool) {
	return sp.vt.lookup(&sp.ln.key, vec)
}

// vec returns the interned vector at idx. The returned slice aliases
// table-owned storage; do not modify.
func (sp *space) vec(idx int32) []uint16 {
	return sp.vt.vec(idx)
}

// isTarget reports whether idx is the fully-migrated vector.
func (sp *space) isTarget(idx int32) bool {
	v := sp.vec(idx)
	for i := range v {
		if v[i] != sp.totals[i] {
			return false
		}
	}
	return true
}

// finished returns the total number of finished actions in the vector —
// the secondary priority of §4.4.
func (sp *space) finished(idx int32) int {
	n := 0
	for _, v := range sp.vec(idx) {
		n += int(v)
	}
	return n
}

// remaining returns the number of actions still to do.
func (sp *space) remaining(idx int32) int {
	n := 0
	v := sp.vec(idx)
	for i := range v {
		n += int(sp.totals[i]) - int(v[i])
	}
	return n
}

// extKey builds the (vector, last-action) state key used by the planners'
// best-cost tables.
func (sp *space) extKey(vecIdx int32, last migration.ActionType) int64 {
	return int64(vecIdx)*int64(sp.nTypes+1) + int64(last) + 1
}

// runCap returns the maximum run length, or 0 for unlimited.
func (sp *space) runCap() int { return sp.opts.MaxRunLength }

// extKeyT extends extKey with the tail length of the in-progress run —
// needed only when MaxRunLength is set (the tail is always 0 otherwise, so
// keys coincide with extKey).
func (sp *space) extKeyT(vecIdx int32, last migration.ActionType, tail int) int64 {
	return sp.extKey(vecIdx, last)*int64(sp.runCap()+1) + int64(tail%(sp.runCap()+1))
}

// decodeKeyT inverts extKeyT, recovering the (vector, last, tail) triple
// from a state key. Used to render checkpoint frontiers from DP memo keys.
func (sp *space) decodeKeyT(key int64) (vecIdx int32, last migration.ActionType, tail int) {
	span := int64(sp.runCap() + 1)
	tail = int(key % span)
	ek := key / span
	last = migration.ActionType(ek%int64(sp.nTypes+1)) - 1
	vecIdx = int32(ek / int64(sp.nTypes+1))
	return vecIdx, last, tail
}

// prevInfo records a state's best predecessor for plan reconstruction.
type prevInfo struct {
	last migration.ActionType
	tail int16
}

// step computes one action's incremental cost under the (optional) run
// cap: a different type — or a same-type action once the current run has
// reached MaxRunLength — starts a new run at full unit cost and requires
// the state being left to pass a boundary check.
func (sp *space) step(last, a migration.ActionType, tail int) (cost float64, newTail int, boundary bool) {
	k := sp.runCap()
	if a != last {
		if k == 0 {
			return sp.units[a], 0, true
		}
		return sp.units[a], 1, true
	}
	if k == 0 {
		// Uncapped: the tail never matters; keep it at 0 so state keys
		// coincide with the plain (vector, last) encoding.
		return sp.opts.Alpha * sp.units[a], 0, false
	}
	if tail >= k {
		return sp.units[a], 1, true
	}
	return sp.opts.Alpha * sp.units[a], tail + 1, false
}

// stepCost is the incremental cost of performing an action of type a after
// an action of type last (Eq. 1 + §5 generalization).
func (sp *space) stepCost(last, a migration.ActionType) float64 {
	if a == last {
		return sp.opts.Alpha * sp.units[a]
	}
	return sp.units[a]
}

// heuristic is the admissible, consistent cost-to-go lower bound (Eq. 9
// adjusted for the in-progress run): every remaining type a≠last needs at
// least one fresh run costing unit_a(1 + α(rem_a − 1)); remaining actions
// of the current run's type can extend it at α·unit_last each.
//
// Under Options.MaxRunLength = K the bound strengthens: finishing rem
// actions of a type needs at least ⌈rem/K⌉ runs (⌈(rem−(K−tail))/K⌉ fresh
// runs for the in-progress type, whose current chunk still has K−tail
// α-cost slots). See heuristicCapped.
func (sp *space) heuristic(vecIdx int32, last migration.ActionType) float64 {
	if sp.opts.DisableHeuristic {
		return 0
	}
	if sp.runCap() > 0 {
		// The A* open list stores the tail; the heuristic used for
		// ordering is computed via heuristicCapped at push time. This
		// entry point (tail unknown) uses the weakest tail assumption,
		// keeping it admissible wherever it is still called.
		return sp.heuristicCapped(vecIdx, last, sp.runCap())
	}
	v := sp.vec(vecIdx)
	h := 0.0
	alpha := sp.opts.Alpha
	for i := range v {
		rem := float64(sp.totals[i] - v[i])
		if rem == 0 {
			continue
		}
		if migration.ActionType(i) == last {
			h += alpha * sp.units[i] * rem
		} else {
			h += sp.units[i] * (1 + alpha*(rem-1))
		}
	}
	return h
}

// heuristicCapped is the cost-to-go lower bound under a run cap K, given
// the in-progress run's tail length. For each type with rem pending
// actions: fresh runs cost unit each, extensions α·unit each, and at most
// K actions fit per run; the in-progress type gets K−tail free extension
// slots before its first fresh run.
func (sp *space) heuristicCapped(vecIdx int32, last migration.ActionType, tail int) float64 {
	if sp.opts.DisableHeuristic {
		return 0
	}
	k := sp.runCap()
	if k == 0 {
		return sp.heuristic(vecIdx, last)
	}
	v := sp.vec(vecIdx)
	h := 0.0
	alpha := sp.opts.Alpha
	for i := range v {
		rem := int(sp.totals[i]) - int(v[i])
		if rem == 0 {
			continue
		}
		unit := sp.units[i]
		if migration.ActionType(i) == last {
			free := k - tail // α-cost slots left in the current chunk
			if free < 0 {
				free = 0
			}
			if rem <= free {
				h += alpha * unit * float64(rem)
				continue
			}
			rest := rem - free
			runs := (rest + k - 1) / k
			h += alpha*unit*float64(free) + unit*float64(runs) + alpha*unit*float64(rest-runs)
		} else {
			runs := (rem + k - 1) / k
			h += unit*float64(runs) + alpha*unit*float64(rem-runs)
		}
	}
	return h
}

// interrupted reports why the planner must stop — state-budget exhaustion
// (ErrBudget), an expired time budget (ErrBudget), or caller cancellation
// (the context's error) — or nil to continue. Time and context are polled
// every pollInterval calls to keep them off the hot path, except for the
// very first call, which always polls so tiny searches still honor
// already-expired deadlines. Once tripped, the reason latches.
func (sp *space) interrupted() error {
	if sp.stopErr != nil {
		return sp.stopErr
	}
	if sp.metrics.StatesCreated-sp.budgetBase > sp.opts.maxStates() {
		sp.stopErr = ErrBudget
		return sp.stopErr
	}
	sp.pollCountdown--
	if sp.pollCountdown > 0 {
		return nil
	}
	sp.pollCountdown = pollInterval
	if err := sp.ctx.Err(); err != nil {
		sp.stopErr = err
		return sp.stopErr
	}
	if !sp.deadline.IsZero() && time.Now().After(sp.deadline) {
		sp.stopErr = ErrBudget
		return sp.stopErr
	}
	return nil
}

// pollInterval is how many interrupted() calls pass between time/context
// polls.
const pollInterval = 256

// rebudget rearms an interrupted search with a fresh budget envelope for a
// resumed leg: MaxStates counts from the current state total, the deadline
// restarts from now, and the context is replaced. All other options keep
// their original values — they shaped the cached search state and cannot
// change mid-search.
func (sp *space) rebudget(ctx context.Context, opts Options) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp.ctx = ctx
	sp.opts.MaxStates = opts.MaxStates
	sp.opts.Timeout = opts.Timeout
	// Workers is verdict-neutral (plans are identical at any worker count),
	// so a resume leg may change it freely — a serial checkpoint can resume
	// under a parallel planner and vice versa, including switching the
	// adaptive policy on or off. A policy that shut parallelism off during
	// an earlier leg starts the new leg fresh: the counters it acted on
	// described the old budget envelope. The scheduler client is adopted
	// for the same reason: a preempted leg resumes under a freshly
	// registered client (the old one was closed to release its
	// reservation), and pool attachment is as verdict-neutral as the
	// worker count.
	sp.opts.Workers = opts.Workers
	sp.opts.Sched = opts.Sched
	if opts.Workers == WorkersAdaptive {
		sp.adaptive = newAdaptivePolicy(sp)
	} else {
		sp.adaptive = nil
	}
	sp.budgetBase = sp.metrics.StatesCreated
	sp.deadline = time.Time{}
	if opts.Timeout > 0 {
		sp.deadline = time.Now().Add(opts.Timeout)
	}
	sp.started = time.Now()
	sp.stopErr = nil
	sp.pollCountdown = 1
}

// pause banks the elapsed planning time when a search is interrupted, so
// the wall-clock gap until a later Resume is not counted as planning time.
func (sp *space) pause() {
	sp.priorElapsed += time.Since(sp.started)
	sp.started = time.Now()
}

// feasible checks the safety of the intermediate topology identified by the
// interned vector, consulting the equivalent-state cache first. last is the
// action type that produced this state; it matters only when funneling
// headroom is enabled (the in-flight block determines which circuits need
// headroom), in which case the verdict lives in the (vector, last)-keyed
// funneling cache instead of the per-vector table.
//
// Called only from the planner goroutine (lane 0). Parallel batches join
// before control returns to the search loop, so a feasClaimed entry is
// never observed here.
func (sp *space) feasible(vecIdx int32, last migration.ActionType) bool {
	if sp.opts.FunnelFactor > 1 && last >= 0 {
		ck := sp.extKey(vecIdx, last)
		if !sp.opts.DisableCache {
			if f, ok := sp.feasF[ck]; ok {
				sp.metrics.CacheHits++
				sp.rec.CacheHit()
				return f == feasYes
			}
			sp.metrics.CacheMisses++
			sp.rec.CacheMiss()
		}
		ok := sp.ln.check(sp.vec(vecIdx), last, true)
		res := feasNo
		if ok {
			res = feasYes
		}
		sp.feasF[ck] = res
		return ok
	}
	if !sp.opts.DisableCache {
		switch sp.feasT.get(vecIdx) {
		case feasYes:
			sp.metrics.CacheHits++
			sp.rec.CacheHit()
			sp.consumeSpec(vecIdx)
			return true
		case feasNo:
			sp.metrics.CacheHits++
			sp.rec.CacheHit()
			sp.consumeSpec(vecIdx)
			if sp.bd != nil {
				// Learned idempotently on the hit path too, so serial and
				// warmed runs observe identical cut evolution: the warmer
				// resolves verdicts on worker lanes (which never touch the
				// engine), and the serial search then learns them here — at
				// the same point in its deterministic visit sequence where
				// an unwarmed run would have learned from a fresh check.
				sp.bd.Learn(sp.vec(vecIdx), false)
			}
			return false
		}
		sp.metrics.CacheMisses++
		sp.rec.CacheMiss()
	}
	ok := sp.ln.check(sp.vec(vecIdx), last, false)
	res := feasNo
	if ok {
		res = feasYes
	}
	sp.feasT.set(vecIdx, res)
	if !ok && sp.bd != nil {
		sp.bd.Learn(sp.vec(vecIdx), sp.ln.occRejected)
	}
	return ok
}

// consumeSpec marks a speculatively-batched verdict as used by the serial
// search; whatever remains in the ledger at finalization was wasted work.
func (sp *space) consumeSpec(vecIdx int32) {
	if sp.specPending != nil {
		delete(sp.specPending, vecIdx)
	}
}

// feasibleOn resolves the non-funneling verdict for vecIdx on a worker
// lane, cooperating with other workers through the satisfiability table's
// claim protocol so every vector is checked exactly once. Returns feasYes
// or feasNo.
//
// Cache accounting mirrors the serial feasible(): a verdict answered from
// the table (including one another worker just resolved) is a hit, and a
// won claim — whose owner runs the evaluator — is a miss. The counts
// accumulate in the lane's private Metrics and fold into the shared ones
// after the batch joins, so the hit-rate metric means the same thing
// whether a planner consults the cache serially or from worker lanes.
func (sp *space) feasibleOn(ln *lane, vecIdx int32) int8 {
	for {
		switch v := sp.feasT.get(vecIdx); v {
		case feasYes, feasNo:
			ln.m.CacheHits++
			return v
		case feasClaimed:
			// Another worker is mid-check on this vector; yield and re-poll.
			runtime.Gosched()
		default:
			if !sp.feasT.claim(vecIdx) {
				// Lost the claim race to another worker.
				sp.contention.Add(1)
				continue
			}
			ln.m.CacheMisses++
			return sp.checkClaimed(ln, vecIdx)
		}
	}
}

// checkClaimed runs the check for a freshly-claimed cache entry and commits
// the verdict. If the check unwinds (a worker panic is rethrown by the
// batch coordinator) the claim is released back to unknown so no other
// worker wedges spinning on feasClaimed.
func (sp *space) checkClaimed(ln *lane, vecIdx int32) (res int8) {
	committed := false
	defer func() {
		if !committed {
			sp.feasT.set(vecIdx, 0)
		}
	}()
	res = feasNo
	if ln.check(sp.vt.vec(vecIdx), NoLast, false) {
		res = feasYes
	}
	sp.feasT.set(vecIdx, res)
	committed = true
	return res
}

// degradeToSerial contains a worker-lane panic: the event is counted, the
// degradation is recorded, and the degraded latch permanently retires the
// parallel paths for this run. The serial planners produce byte-identical
// plans, so correctness is unaffected — only wall-clock time.
func (sp *space) degradeToSerial() {
	sp.degraded = true
	sp.metrics.LanePanics++
	sp.rec.LanePanicDegraded()
}

// precomputeOccupancy derives per-block space-occupancy deltas: draining a
// switch frees its slot (the hardware is decommissioned and removed);
// undraining a switch requires its slot from that step on.
func (sp *space) precomputeOccupancy() {
	t := sp.task
	maxDC := -1
	for i := 0; i < t.Topo.NumSwitches(); i++ {
		if dc := t.Topo.Switch(topo.SwitchID(i)).DC; dc > maxDC {
			maxDC = dc
		}
	}
	nDC := maxDC + 2 // slot 0 holds the regional pseudo-DC (-1)
	sp.occBase = make([]int32, nDC)
	for i := 0; i < t.Topo.NumSwitches(); i++ {
		s := t.Topo.Switch(topo.SwitchID(i))
		if t.Topo.SwitchActive(s.ID) {
			sp.occBase[s.DC+1]++
		}
	}
	sp.occBudget = make([]int32, nDC)
	for dc, b := range sp.opts.SpaceBudget {
		if dc+1 >= 0 && dc+1 < nDC && b > 0 {
			sp.occBudget[dc+1] = int32(b)
		}
	}
	sp.actBase = routing.NewBitset(t.Topo.NumSwitches())
	for i := 0; i < t.Topo.NumSwitches(); i++ {
		if t.Topo.SwitchActive(topo.SwitchID(i)) {
			sp.actBase.Set(i)
		}
	}
	for dcSlot, b := range sp.occBudget {
		if b <= 0 {
			continue
		}
		e := occMaskEntry{budget: b, mask: routing.NewBitset(t.Topo.NumSwitches())}
		for i := 0; i < t.Topo.NumSwitches(); i++ {
			if t.Topo.Switch(topo.SwitchID(i)).DC+1 == dcSlot {
				e.mask.Set(i)
			}
		}
		sp.occCheck = append(sp.occCheck, e)
	}
	sp.occDelta = make([][]dcDelta, len(t.Blocks))
	for i := range t.Blocks {
		b := &t.Blocks[i]
		var d []dcDelta
		sign := int32(1)
		if t.Types[b.Type].Op == migration.Drain {
			sign = -1
		}
	blockSwitches:
		for _, sw := range b.Switches {
			dc := int32(t.Topo.Switch(sw).DC + 1)
			for k := range d {
				if d[k].dc == dc {
					d[k].delta += sign
					continue blockSwitches
				}
			}
			d = append(d, dcDelta{dc: dc, delta: sign})
		}
		sp.occDelta[i] = d
	}
}

// reconstruct walks the best-cost predecessor table back from the target
// state to the initial state, emitting block IDs in execution order.
func (sp *space) reconstruct(prev map[int64]prevInfo, vecIdx int32, last migration.ActionType, tail int) []int {
	var rev []int
	cur := append([]uint16(nil), sp.vec(vecIdx)...)
	for last != NoLast {
		atInitial := true
		for i := range cur {
			if cur[i] != sp.initial[i] {
				atInitial = false
				break
			}
		}
		if atInitial {
			break
		}
		blocks := sp.task.BlocksOfType(last)
		rev = append(rev, blocks[int(cur[last])-1])
		idx, ok := sp.lookup(cur)
		if !ok {
			panic("core: reconstruction reached unknown state")
		}
		p, ok := prev[sp.extKeyT(idx, last, tail)]
		if !ok {
			panic("core: reconstruction missing predecessor")
		}
		cur[last]--
		last = p.last
		tail = int(p.tail)
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// initLowerBound seeds the run's global lower bound from a start state:
// the planners' own admissible heuristic, sharpened by the engine's
// cut-aware completion bound when one is attached. Monotone — a resumed
// leg can only raise the bound, never lower it.
func (sp *space) initLowerBound(vecIdx int32, last migration.ActionType, tail int) {
	lb := sp.heuristicCapped(vecIdx, last, tail)
	if sp.bd != nil {
		if c := sp.bd.Completion(sp.vec(vecIdx), int(last)); c > lb && !math.IsInf(c, 1) {
			lb = c
		}
	}
	if lb > sp.lowerBound {
		sp.lowerBound = lb
	}
}

// certGap normalizes an (incumbent, lower bound) pair into the reported
// certificate. No incumbent yet → (0, lb, 1): nothing is certified. A
// zero-cost incumbent is trivially optimal. Otherwise the bound is
// clamped into [0, incumbent] (floating-point noise in the f-ordering can
// push it epsilon past the true optimum) and the relative gap returned —
// gap = 0 means the plan is provably optimal.
func certGap(incumbent, lb float64) (inc, lower, gap float64) {
	if math.IsInf(incumbent, 1) {
		if lb < 0 || math.IsInf(lb, 1) {
			lb = 0
		}
		return 0, lb, 1
	}
	if lb > incumbent {
		lb = incumbent
	}
	if lb < 0 {
		lb = 0
	}
	if incumbent <= 0 {
		return incumbent, incumbent, 0
	}
	return incumbent, lb, (incumbent - lb) / incumbent
}

// sealBound finalizes the engine after a successful run: every infeasible
// verdict the run resolved — including ones committed by worker lanes,
// which never reach the serial Learn hook — is imported as a cut, then
// the plan's optimal cost is sealed as the incumbent for this basis. The
// next run over the same bound problem prunes against the sealed tables.
// Interrupted and infeasible runs seal nothing: their search state is
// incomplete and their cost is not an incumbent.
func (sp *space) sealBound(p *Plan) {
	if sp.bd == nil {
		return
	}
	for i, n := int32(0), int32(sp.vt.len()); i < n; i++ {
		if sp.feasT.get(i) == feasNo {
			sp.bd.Learn(sp.vt.vec(i), false)
		}
	}
	sp.bd.Seal(p.Cost)
}

// elapsedMetrics finalizes and returns the metrics for a finished run,
// accumulating planning time across resumed legs (the wall-clock gap
// between interruption and resumption is not counted). Shard contention is
// folded as a delta so that an interrupted run's checkpoint metrics and the
// final metrics never double-count; speculative waste is a point-in-time
// gauge of batched-but-unconsumed verdicts. The optimality certificate
// (incumbent, global lower bound, relative gap) and the bound engine's
// effectiveness counters are stamped here so every exit path — success,
// interruption, checkpoint — reports them consistently.
func (sp *space) elapsedMetrics() Metrics {
	cont := int(sp.contention.Load() + sp.vt.contention.Load())
	if d := cont - sp.contFolded; d > 0 {
		sp.metrics.ShardContention += d
		sp.rec.ShardContention(d)
		sp.contFolded = cont
	}
	sp.metrics.SpeculativeWaste = len(sp.specPending)
	sp.rec.SpeculativeWaste(len(sp.specPending))
	if sp.bd != nil {
		cl := sp.bd.CutsLearned() - sp.bdCutsBase
		ch := sp.bd.CutHits() - sp.bdHitsBase
		cx := sp.bd.CrossHits() - sp.bdCrossBase
		sp.rec.BoundCutsLearnedAdded(cl - sp.metrics.BoundCutsLearned)
		sp.rec.BoundCutHitsAdded(ch - sp.metrics.BoundCutHits)
		sp.rec.BoundCrossHitsAdded(cx - sp.metrics.BoundCrossHits)
		sp.metrics.BoundCutsLearned = cl
		sp.metrics.BoundCutHits = ch
		sp.metrics.BoundCrossHits = cx
	}
	sp.metrics.IncumbentCost, sp.metrics.LowerBound, sp.metrics.OptimalityGap =
		certGap(sp.incumbent, sp.lowerBound)
	sp.rec.OptimalityGap(sp.metrics.OptimalityGap)
	m := sp.metrics
	m.PlanningTime = sp.priorElapsed + time.Since(sp.started)
	return m
}
