// Package core implements the Klotski migration planners: the A* search
// planner (paper §4.4, Algorithm 2) and the DP-based planner (§4.3,
// Algorithm 1), both operating on the pruned operation-block search space
// with efficient satisfiability checking (§4.2).
//
// # State space
//
// A search state is (V, a): the compact topology representation V — the
// vector counting finished actions per action type — plus the type a of the
// last finished action. Blocks of one type are operated in canonical
// (insertion) order, so V fully determines which blocks are done and hence
// the intermediate topology; this is the ordering-agnostic representation
// of Definition 1 that lets satisfiability results be cached per V rather
// than per action sequence.
//
// # Cost model
//
// Plan cost follows Eq. 1 generalized by the §5 cost function
// f_cost(x) = 1 + α(x−1): an action of type a costs unit_a when it starts a
// new run (previous action had a different type) and α·unit_a when it
// extends the current run. With α = 0 and unit costs of 1 this is exactly
// "number of action-type changes + 1".
//
// # Heuristic
//
// The A* priority is f = g + h with h the cheapest conceivable completion:
// every remaining type must be visited at least once, except that the
// current run's type can be finished without starting a new run. This is
// the paper's Eq. 9 heuristic made tight (and consistent) in the corner
// case where the last action's type still has pending actions; see
// heuristic() for the algebra.
package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"klotski/internal/audit"
	"klotski/internal/bound"
	"klotski/internal/migration"
	"klotski/internal/obs"
	"klotski/internal/routing"
	"klotski/internal/sched"
	"klotski/internal/topo"
)

// Planning errors.
var (
	// ErrInfeasible means no safe action sequence exists under the given
	// constraints (or the initial/target state itself violates them).
	ErrInfeasible = errors.New("core: no feasible migration plan")

	// ErrBudget means the planner exceeded its state or time budget before
	// finding an optimal plan (rendered as a cross in the paper's figures).
	ErrBudget = errors.New("core: planning budget exceeded")

	// ErrUnsupported is returned by planners that cannot handle the task
	// (used by baselines for topology-changing migrations).
	ErrUnsupported = errors.New("core: migration type not supported by this planner")
)

// NoLast marks "no action finished yet" in replanning options and run
// reconstruction.
const NoLast migration.ActionType = -1

// Options parameterizes a planning run. The zero value gives the paper's
// defaults: θ = 0.75, α = 0, A* heuristic and secondary priority on,
// satisfiability cache on, no funneling headroom, no space constraints.
type Options struct {
	// Theta is the maximum circuit utilization bound (Eq. 5). 0 means the
	// paper default of 0.75.
	Theta float64

	// Alpha is the within-run marginal cost of the generalized cost
	// function f_cost(x) = 1 + α(x−1) (§5), in [0, 1].
	Alpha float64

	// Split selects the traffic-splitting policy of the safety checker:
	// plain ECMP (default, the paper's model) or capacity-weighted WCMP,
	// modeling the temporary routing configurations of §7.1.
	Split routing.SplitMode

	// DisableCache turns off efficient satisfiability checking (the
	// "Klotski w/o ESC" ablation of Fig. 10): every state re-checks its
	// topology even when an equivalent state was already checked.
	DisableCache bool

	// DisableHeuristic reduces A* to uniform-cost search (the "Klotski
	// w/o A*" ablation of Fig. 10).
	DisableHeuristic bool

	// DisableSecondaryPriority turns off the finished-action-count
	// tiebreak among states with equal f (§4.4).
	DisableSecondaryPriority bool

	// FunnelFactor, when > 1, reserves transient headroom against traffic
	// funneling (§7.2): circuits parallel to the block being operated are
	// held to θ/FunnelFactor.
	FunnelFactor float64

	// MaxRunLength caps how many same-type actions execute as one parallel
	// run (a maintenance-window / affinity rule in the spirit of §7.2):
	// after MaxRunLength consecutive same-type actions the crews stop, the
	// network is observed — and therefore checked — and a new run begins
	// at full cost. 0 means unlimited (the paper's model).
	MaxRunLength int

	// SpaceBudget, when non-nil, caps the number of physically present
	// switches per datacenter during the transient (§7.2 space and power
	// constraints): old switches occupy space until drained, new switches
	// occupy space from the moment they are undrained. Missing DCs are
	// unconstrained.
	SpaceBudget map[int]int

	// DisableIncrementalView rebuilds the intermediate topology from
	// scratch for every satisfiability check instead of applying block
	// deltas from the previously checked state. Kept for the overlay
	// ablation benchmark; never faster.
	DisableIncrementalView bool

	// DisableIncrementalEval forces every cache-missing satisfiability
	// check through the classic full evaluation (one BFS + sweep per
	// destination) instead of the incremental engine that invalidates only
	// the destination groups a block delta can affect. Kept for ablation
	// and differential cross-checks; the two paths produce identical
	// verdicts. Incremental evaluation is also bypassed automatically when
	// FunnelFactor > 1 (funneling bounds depend on the in-flight block) or
	// when a shared Evaluator is supplied via Options.Evaluator, and the
	// engine disables itself mid-run when successive deltas keep
	// invalidating (nearly) every destination group — dense homogeneous
	// fabrics hit this structurally; Metrics.IncDisables counts it.
	DisableIncrementalEval bool

	// Workers sets the parallelism of the search: 0 or 1 runs fully serial;
	// n > 1 lets the planners resolve satisfiability checks on n concurrent
	// worker lanes (A* warms the frontier speculatively, DP sweeps the
	// lattice in wavefront layers); WorkersAdaptive (-1) hands the choice
	// to the runtime adaptive policy, which starts from GOMAXPROCS and
	// resizes lanes — and disables speculative warming — from the observed
	// shard-contention, speculative-waste, and cache hit-rate counters (see
	// adaptive.go). The emitted plan is byte-identical at every worker
	// count and under the adaptive policy for any counter history —
	// parallelism only changes where verdicts are computed, never which
	// states the search commits. Values above GOMAXPROCS are honored as
	// given; values below WorkersAdaptive are rejected.
	Workers int

	// MaxStates caps the number of states the planner may create. 0 means
	// the default of 4,000,000.
	MaxStates int

	// Timeout caps wall-clock planning time. 0 means no limit.
	Timeout time.Duration

	// InitialCounts and InitialLast resume planning from a partially
	// executed migration (replanning after demand shifts or failures,
	// §7.1–7.2): InitialCounts[i] blocks of type i are already done and the
	// last executed action had type InitialLast (NoLast if none).
	// InitialRunLength is the length of the in-progress run, relevant only
	// under MaxRunLength.
	InitialCounts    []int
	InitialLast      migration.ActionType
	InitialRunLength int

	// SkipAudit disables the independent post-planning audit: by default
	// every emitted plan is replayed step-by-step against an independent
	// verifier (internal/audit) before it is returned, and planning fails
	// with ErrAudit if any boundary state violates a constraint.
	// Benchmarks isolating raw search time opt out; production callers
	// should not.
	SkipAudit bool

	// AuditSerial forces the post-planning audit onto the serial reference
	// engine. The default replays the plan with the incremental + parallel
	// audit engine (audit.ModeIncremental), which is differential-tested
	// byte-identical to the serial reference but roughly removes the
	// 40-50% audit overhead of re-evaluating every boundary from scratch.
	// Set AuditSerial when certifying a release build against the pristine
	// reference path.
	AuditSerial bool

	// Evaluator optionally supplies a routing evaluator to reuse across
	// planning runs over the same topology. When nil a fresh one is built.
	// The post-planning audit never uses it: audits run on a fresh
	// evaluator by construction.
	Evaluator *routing.Evaluator

	// Recorder optionally streams planner events (states, checks, cache
	// hits/misses, check latency, spans) into an observability registry.
	// nil — the default — is the no-op recorder: every hook degrades to a
	// single branch, keeping the search hot path unaffected.
	Recorder *obs.Recorder

	// Bound optionally attaches a lower-bound engine (internal/bound):
	// infeasible boundary verdicts discovered during search are learned as
	// cuts, provably-dead states are skipped, and — once the engine has
	// been sealed by a completed run over the same problem — DP cells whose
	// bound exceeds the incumbent are pruned. Plans are byte-identical with
	// and without an engine; only the effort changes. The engine must have
	// been built for this task's shape (see NewBoundEngine); a mismatched
	// engine is ignored, as are configurations the cut model does not cover
	// (funneling, run caps). The same engine may be reused across runs and
	// replans — that reuse is where the pruning power comes from — but it
	// is not safe for concurrent planner runs.
	Bound *bound.Engine

	// Sched optionally attaches the run to a shared worker pool
	// (internal/sched): the parallel phases — DP wavefront layers, A*
	// frontier-warm batches, the incremental audit's replay spans —
	// submit their task closures to the pool instead of spawning
	// per-plan goroutines, so N concurrent plans share one worker
	// budget instead of oversubscribing the host N-fold. Under
	// WorkersAdaptive the adaptive policy seeds its lane count from the
	// client's pool share instead of GOMAXPROCS. Plans stay
	// byte-identical at any pool size, share, or steal interleaving —
	// the pool only changes where closures execute, never which states
	// the search commits. nil keeps the classic per-plan goroutines.
	Sched *sched.Client
}

// validate rejects option combinations that would silently produce
// nonsense: utilization bounds outside (0, 1], α outside [0, 1], negative
// budgets or run caps, and funneling factors below 1.
func (o *Options) validate() error {
	if o.Theta < 0 || o.Theta > 1 {
		return fmt.Errorf("core: Theta %v outside (0, 1] (0 selects the default 0.75)", o.Theta)
	}
	if o.Alpha < 0 || o.Alpha > 1 {
		return fmt.Errorf("core: Alpha %v outside [0, 1]", o.Alpha)
	}
	if o.MaxStates < 0 {
		return fmt.Errorf("core: negative MaxStates %d", o.MaxStates)
	}
	if o.MaxRunLength < 0 {
		return fmt.Errorf("core: negative MaxRunLength %d", o.MaxRunLength)
	}
	if o.FunnelFactor != 0 && o.FunnelFactor < 1 {
		return fmt.Errorf("core: FunnelFactor %v below 1 would loosen the bound", o.FunnelFactor)
	}
	if o.InitialRunLength < 0 {
		return fmt.Errorf("core: negative InitialRunLength %d", o.InitialRunLength)
	}
	if o.Workers < WorkersAdaptive {
		return fmt.Errorf("core: Workers %d invalid (0 selects serial, %d the adaptive policy)", o.Workers, WorkersAdaptive)
	}
	return nil
}

func (o *Options) theta() float64 {
	if o.Theta <= 0 {
		return 0.75
	}
	return o.Theta
}

func (o *Options) maxStates() int {
	if o.MaxStates <= 0 {
		return 4_000_000
	}
	return o.MaxStates
}

// Run is a maximal subsequence of consecutive same-type actions in a plan.
// All blocks of a run are operated in parallel by field crews (§3).
type Run struct {
	Type   migration.ActionType
	Blocks []int // block IDs, in execution order
}

// Metrics reports planner effort.
type Metrics struct {
	StatesCreated int           // distinct (V, last) states materialized
	StatesPopped  int           // states expanded from the queue / DP table
	Checks        int           // satisfiability checks actually executed
	CacheHits     int           // checks answered from the equivalent-state cache
	CacheMisses   int           // checks that missed the cache and ran the evaluator
	PlanningTime  time.Duration // wall clock

	// Incremental-evaluation counters (zero when the engine is disabled).
	GroupInvalidations int // destination groups recomputed by delta checks
	GroupsReused       int // destination groups served from the memo
	IncDisables        int // incremental engine self-disable events (low-reuse fabric)
	BatchedChecks      int // frontier checks resolved by parallel batches

	// Parallel-search counters (zero on serial runs).
	WorkerChecks     int // satisfiability checks executed on worker lanes
	ShardContention  int // intern-shard and verdict-claim collisions between workers
	SpeculativeWaste int // speculatively batched verdicts the search never consumed
	LanePanics       int // worker-lane panics contained by degrading to serial execution

	// Adaptive worker-policy trace (zero unless Workers == WorkersAdaptive).
	AdaptiveDecisions int // policy decisions taken (incl. the initial resolve)
	AdaptiveLanes     int // effective lane count after the last decision
	AdaptiveWarmOffs  int // speculative-warming disables by the policy

	// SpeculativeStates counts wavefront-valued DP cells the equivalent
	// serial recursion never evaluates (reachable only through infeasible
	// boundaries). They are memoized but excluded from StatesCreated and
	// StatesPopped, so effort counts agree at every worker count.
	SpeculativeStates int

	// Lower-bound engine counters (zero unless Options.Bound is attached).
	BoundCutsLearned  int // new infeasibility cuts learned during this run
	BoundCutHits      int // queries answered from the cut set (dead/dominated)
	BoundStatesPruned int // search states skipped as provably dead or dominated
	BoundCrossHits    int // structural cuts imported from the shared cross-plan store

	// Anytime optimality certificate. IncumbentCost is the cost of the
	// best complete plan found (0 with OptimalityGap 1 when none yet);
	// LowerBound is a certified lower bound on the optimal cost;
	// OptimalityGap is (incumbent − bound)/incumbent, so 0 means the
	// incumbent is provably optimal. Completed A*/DP runs always certify
	// gap 0; interrupted checkpoints carry the gap of the partial search.
	// Baseline planners (MRC, Janus) do not certify: they report a zero
	// certificate (all three fields 0).
	IncumbentCost float64
	LowerBound    float64
	OptimalityGap float64
}

// Plan is an ordered, safe, minimum-cost migration plan.
type Plan struct {
	Task     *migration.Task
	Sequence []int // block IDs in execution order
	Runs     []Run
	Cost     float64
	Metrics  Metrics

	// Audit is the report of the independent post-planning audit (nil when
	// Options.SkipAudit was set). A plan only reaches the caller with
	// Audit.Passed == true; the control loop refuses plans without it.
	Audit *audit.Report
}

// String renders the plan as one line per run.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for %s: cost %g, %d actions in %d runs\n",
		p.Task.Name, p.Cost, len(p.Sequence), len(p.Runs))
	for i, r := range p.Runs {
		fmt.Fprintf(&b, "  run %d: %s × %d (%s)\n",
			i+1, p.Task.Types[r.Type].Name, len(r.Blocks), blockNames(p.Task, r.Blocks, 4))
	}
	return b.String()
}

func blockNames(t *migration.Task, ids []int, max int) string {
	var names []string
	for i, id := range ids {
		if i == max {
			names = append(names, fmt.Sprintf("… %d more", len(ids)-max))
			break
		}
		names = append(names, t.Blocks[id].Name)
	}
	return strings.Join(names, ", ")
}

// runsFromSequence groups a block sequence into runs.
func runsFromSequence(t *migration.Task, seq []int) []Run {
	return RunsOf(t, seq, 0)
}

// RunsOf groups a block sequence into runs, splitting same-type runs every
// maxRun actions when maxRun > 0 (Options.MaxRunLength semantics).
func RunsOf(t *migration.Task, seq []int, maxRun int) []Run {
	var runs []Run
	for _, id := range seq {
		ty := t.Blocks[id].Type
		startNew := len(runs) == 0 || runs[len(runs)-1].Type != ty
		if !startNew && maxRun > 0 && len(runs[len(runs)-1].Blocks) >= maxRun {
			startNew = true
		}
		if startNew {
			runs = append(runs, Run{Type: ty})
		}
		last := &runs[len(runs)-1]
		last.Blocks = append(last.Blocks, id)
	}
	return runs
}

// SequenceCost computes the generalized cost of executing the given block
// sequence, starting from a run of type initialLast (NoLast for a fresh
// start). It is the reference implementation of Eq. 1 + §5 used by tests
// and by baseline planners.
func SequenceCost(t *migration.Task, seq []int, alpha float64, initialLast migration.ActionType) float64 {
	return SequenceCostCapped(t, seq, alpha, initialLast, 0, 0)
}

// SequenceCostCapped is SequenceCost under Options.MaxRunLength semantics:
// runs are force-split every maxRun same-type actions, each split paying a
// fresh unit cost. initialRun is the length of the in-progress run at the
// start (relevant when resuming mid-run).
func SequenceCostCapped(t *migration.Task, seq []int, alpha float64, initialLast migration.ActionType, maxRun, initialRun int) float64 {
	cost := 0.0
	last := initialLast
	tail := initialRun
	for _, id := range seq {
		ty := t.Blocks[id].Type
		unit := unitCost(t, ty)
		switch {
		case ty != last:
			cost += unit
			tail = 1
		case maxRun > 0 && tail >= maxRun:
			cost += unit
			tail = 1
		default:
			cost += alpha * unit
			tail++
		}
		last = ty
	}
	return cost
}

// NewBoundEngine builds a lower-bound engine sized to the task's shape
// (per-type totals, unit costs, α), ready to attach via Options.Bound.
// The engine accumulates infeasibility cuts across every run it is
// attached to — including drift replans, where structurally-valid cuts
// survive — so reusing one engine per task is what makes it effective.
func NewBoundEngine(task *migration.Task, opts Options) *bound.Engine {
	n := task.NumTypes()
	totals := make([]uint16, n)
	units := make([]float64, n)
	for i, c := range task.Counts() {
		if c > 0xFFFF {
			c = 0xFFFF // out of planner range anyway; Matches will reject
		}
		totals[i] = uint16(c)
		units[i] = unitCost(task, migration.ActionType(i))
	}
	return bound.New(totals, units, opts.Alpha)
}

// CompletionLowerBound is an admissible lower bound on the cost of any
// feasible completion of a partially executed migration: counts[i]
// actions of type i are done, the last executed action had type last
// (NoLast for none), runs are capped at maxRun (0 = uncapped). It is the
// pure counting relaxation of the planners' heuristic — independent of
// demands and topology state, so it remains a valid bound on the optimal
// cost of ANY replan of the same remaining work, even after drift or
// outages. The in-progress run is assumed at its weakest (full tail)
// under a run cap, keeping the bound admissible without tail knowledge.
func CompletionLowerBound(t *migration.Task, counts []int, last migration.ActionType, alpha float64, maxRun int) float64 {
	n := t.NumTypes()
	units := make([]float64, n)
	rem := make([]int, n)
	for i := 0; i < n; i++ {
		units[i] = unitCost(t, migration.ActionType(i))
		rem[i] = len(t.BlocksOfType(migration.ActionType(i)))
		if counts != nil && i < len(counts) {
			rem[i] -= counts[i]
		}
	}
	return bound.RelaxCapped(units, rem, alpha, int(last), maxRun, maxRun)
}

// ValidateSequence checks that a block sequence is a permutation of the
// task's blocks not yet executed (given initialCounts, which may be nil)
// and that blocks of each type appear in canonical order. Baselines and
// the execution simulator rely on it.
func ValidateSequence(t *migration.Task, seq []int, initialCounts []int) error {
	counts := make([]int, t.NumTypes())
	if initialCounts != nil {
		copy(counts, initialCounts)
	}
	seen := make(map[int]bool, len(seq))
	for _, id := range seq {
		if id < 0 || id >= len(t.Blocks) {
			return fmt.Errorf("core: sequence references invalid block %d", id)
		}
		if seen[id] {
			return fmt.Errorf("core: block %d appears twice in sequence", id)
		}
		seen[id] = true
		ty := t.Blocks[id].Type
		ofType := t.BlocksOfType(ty)
		if counts[ty] >= len(ofType) {
			return fmt.Errorf("core: too many blocks of type %s in sequence", t.Types[ty].Name)
		}
		if want := ofType[counts[ty]]; want != id {
			return fmt.Errorf("core: block %d of type %s out of canonical order (want %d)",
				id, t.Types[ty].Name, want)
		}
		counts[ty]++
	}
	for ty, c := range counts {
		if c != len(t.BlocksOfType(migration.ActionType(ty))) {
			return fmt.Errorf("core: sequence incomplete for type %s (%d of %d)",
				t.Types[ty].Name, c, len(t.BlocksOfType(migration.ActionType(ty))))
		}
	}
	return nil
}

// unitCost returns the effective unit cost of an action type.
func unitCost(t *migration.Task, a migration.ActionType) float64 {
	u := t.Types[a].UnitCost
	if u == 0 {
		return 1
	}
	return u
}

// funnelCircuits lists the up circuits that survive next to the circuits a
// block takes down — the circuits onto which traffic funnels while the
// block's elements drain asynchronously (§2.2). For an undrain block the
// set is empty: adding capacity does not funnel traffic.
func funnelCircuits(t *migration.Task, blockID int) []topo.CircuitID {
	b := &t.Blocks[blockID]
	if t.Types[b.Type].Op != migration.Drain {
		return nil
	}
	affected := make(map[topo.SwitchID]bool)
	operatedCk := make(map[topo.CircuitID]bool)
	for _, s := range b.Switches {
		for _, c := range t.Topo.Switch(s).Circuits() {
			operatedCk[c] = true
			affected[t.Topo.Circuit(c).Other(s)] = true
		}
	}
	for _, c := range b.Circuits {
		operatedCk[c] = true
		ck := t.Topo.Circuit(c)
		affected[ck.A] = true
		affected[ck.B] = true
	}
	var out []topo.CircuitID
	for s := range affected {
		for _, c := range t.Topo.Switch(s).Circuits() {
			if !operatedCk[c] {
				out = append(out, c)
			}
		}
	}
	return out
}
