package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// resumeLadder drives an interruptible planner to completion: it starts
// with a tiny MaxStates budget, expects an *Interrupted checkpoint, and
// resumes with a doubled budget until the plan lands. It returns the final
// plan and the number of interruptions survived.
func resumeLadder(t *testing.T, plan func(context.Context, Options) (*Plan, error), opts Options, startBudget int) (*Plan, int) {
	t.Helper()
	ctx := context.Background()
	budget := startBudget
	lopts := opts
	lopts.MaxStates = budget
	p, err := plan(ctx, lopts)
	hops := 0
	for err != nil {
		var intr *Interrupted
		if !errors.As(err, &intr) {
			t.Fatalf("want *Interrupted, got %T: %v", err, err)
		}
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("interruption reason should be ErrBudget, got %v", intr.Reason)
		}
		if intr.Checkpoint == nil {
			t.Fatal("Interrupted without checkpoint")
		}
		if intr.Checkpoint.Counts == nil {
			t.Fatal("checkpoint missing counts")
		}
		hops++
		if hops > 64 {
			t.Fatal("resume ladder did not converge")
		}
		budget *= 2
		ropts := opts
		ropts.MaxStates = budget
		p, err = Resume(ctx, intr.Checkpoint, ropts)
	}
	return p, hops
}

// TestAnytimeResumeMatchesUninterrupted asserts the anytime contract on
// both core planners: a search interrupted by an absurdly small MaxStates
// budget and resumed (possibly many times) under doubling budgets produces
// the exact plan — cost and sequence — of an uninterrupted run.
func TestAnytimeResumeMatchesUninterrupted(t *testing.T) {
	task := bridgeTask(t, 4, 4, 100, 100, 150, 0)
	opts := Options{Alpha: 0.2}

	for _, tc := range []struct {
		name string
		plan func(context.Context, Options) (*Plan, error)
	}{
		{"astar", func(ctx context.Context, o Options) (*Plan, error) { return PlanAStarContext(ctx, task, o) }},
		{"dp", func(ctx context.Context, o Options) (*Plan, error) { return PlanDPContext(ctx, task, o) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := tc.plan(context.Background(), opts)
			if err != nil {
				t.Fatalf("uninterrupted plan: %v", err)
			}
			p, hops := resumeLadder(t, tc.plan, opts, 2)
			if hops == 0 {
				t.Fatal("budget of 2 states did not interrupt the search")
			}
			if math.Abs(p.Cost-ref.Cost) > 1e-9 {
				t.Fatalf("resumed cost %v != uninterrupted %v (after %d interruptions)", p.Cost, ref.Cost, hops)
			}
			if !reflect.DeepEqual(p.Sequence, ref.Sequence) {
				t.Fatalf("resumed sequence %v != uninterrupted %v", p.Sequence, ref.Sequence)
			}
			checkPlan(t, task, p, opts)
		})
	}
}

// TestAnytimeTimeoutCheckpoint asserts a 1ns timeout interrupts both core
// planners deterministically (the first budget poll trips), the error
// wraps ErrBudget, and resuming with the timeout lifted completes the
// plan.
func TestAnytimeTimeoutCheckpoint(t *testing.T) {
	task := bridgeTask(t, 3, 3, 100, 100, 150, 0)
	opts := Options{Alpha: 0.2, Timeout: time.Nanosecond}

	for _, tc := range []struct {
		name string
		plan func(context.Context, Options) (*Plan, error)
	}{
		{"astar", func(ctx context.Context, o Options) (*Plan, error) { return PlanAStarContext(ctx, task, o) }},
		{"dp", func(ctx context.Context, o Options) (*Plan, error) { return PlanDPContext(ctx, task, o) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.plan(context.Background(), opts)
			var intr *Interrupted
			if !errors.As(err, &intr) {
				t.Fatalf("want *Interrupted, got %v", err)
			}
			if !errors.Is(err, ErrBudget) {
				t.Fatalf("timeout should wrap ErrBudget, got %v", intr.Reason)
			}
			ropts := Options{Alpha: 0.2} // no timeout on the resumed leg
			p, err := Resume(context.Background(), intr.Checkpoint, ropts)
			if err != nil {
				t.Fatalf("resume after timeout: %v", err)
			}
			ref, err := PlanAStar(task, Options{Alpha: 0.2})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(p.Cost-ref.Cost) > 1e-9 {
				t.Fatalf("resumed cost %v != reference %v", p.Cost, ref.Cost)
			}
		})
	}
}

// TestAnytimeContextCancelled asserts a pre-cancelled context interrupts
// all context-aware core planners with an error matching both
// context.Canceled and carrying a resumable checkpoint.
func TestAnytimeContextCancelled(t *testing.T) {
	task := bridgeTask(t, 3, 3, 100, 100, 150, 0)
	opts := Options{Alpha: 0.2}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, tc := range []struct {
		name string
		plan func(context.Context, Options) (*Plan, error)
	}{
		{"astar", func(ctx context.Context, o Options) (*Plan, error) { return PlanAStarContext(ctx, task, o) }},
		{"dp", func(ctx context.Context, o Options) (*Plan, error) { return PlanDPContext(ctx, task, o) }},
		{"dp-parallel", func(ctx context.Context, o Options) (*Plan, error) {
			return PlanDPParallelContext(ctx, task, o, 2)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.plan(ctx, opts)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			var intr *Interrupted
			if !errors.As(err, &intr) {
				t.Fatalf("want *Interrupted, got %T", err)
			}
			p, rerr := Resume(context.Background(), intr.Checkpoint, Options{Alpha: 0.2})
			if rerr != nil {
				t.Fatalf("resume after cancellation: %v", rerr)
			}
			checkPlan(t, task, p, Options{Alpha: 0.2})
		})
	}
}

// TestPrecheckWorkerPanicRecovered asserts a panicking wavefront worker
// degrades the planner to serial instead of crashing or failing: the run
// completes, the plan is byte-identical to the serial planner's, and the
// degradation is visible in Metrics.LanePanics.
func TestPrecheckWorkerPanicRecovered(t *testing.T) {
	task := bridgeTask(t, 4, 4, 100, 100, 150, 0)
	// Keep GOMAXPROCS pinned up so goroutines genuinely interleave even on
	// single-core CI runners.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	parallelTestHook = func(worker int) {
		if worker == 1 {
			panic("injected test panic")
		}
	}
	defer func() { parallelTestHook = nil }()

	p, err := PlanDPParallel(task, Options{Alpha: 0.2}, 2)
	if err != nil {
		t.Fatalf("a lane panic must degrade the run to serial, not fail it: %v", err)
	}
	if p.Metrics.LanePanics == 0 {
		t.Fatal("Metrics.LanePanics = 0; the degradation must be accounted")
	}
	parallelTestHook = nil
	serial, err := PlanDP(task, Options{Alpha: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Sequence, serial.Sequence) || p.Cost != serial.Cost {
		t.Fatalf("degraded plan differs from serial:\n%v (cost %.3f)\n%v (cost %.3f)",
			p.Sequence, p.Cost, serial.Sequence, serial.Cost)
	}
	checkPlan(t, task, p, Options{Alpha: 0.2})
}

// TestFrontierWarmerPanicDegradesToSerial asserts a panicking A* batch
// worker retires the frontier warmer instead of killing the search: the
// run completes on the serial lazy path, the plan is byte-identical to the
// serial planner's, and Metrics.LanePanics records the degradation.
func TestFrontierWarmerPanicDegradesToSerial(t *testing.T) {
	task := bridgeTask(t, 4, 4, 100, 100, 150, 0)
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	batchTestHook = func(worker int) {
		if worker == 1 {
			panic("injected test panic")
		}
	}
	defer func() { batchTestHook = nil }()

	p, err := PlanAStarParallel(task, Options{Alpha: 0.2}, 4)
	if err != nil {
		t.Fatalf("a warmer panic must degrade the search to serial, not fail it: %v", err)
	}
	if p.Metrics.LanePanics == 0 {
		t.Fatal("Metrics.LanePanics = 0; the degradation must be accounted")
	}
	batchTestHook = nil
	serial, err := PlanAStar(task, Options{Alpha: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Sequence, serial.Sequence) || p.Cost != serial.Cost {
		t.Fatalf("degraded plan differs from serial:\n%v (cost %.3f)\n%v (cost %.3f)",
			p.Sequence, p.Cost, serial.Sequence, serial.Cost)
	}
	checkPlan(t, task, p, Options{Alpha: 0.2})
}

// TestCheckpointPartialIsExecutable asserts the advisory Partial prefix in
// a checkpoint is a valid executable prefix: canonical per-type order with
// every intermediate boundary safe.
func TestCheckpointPartialIsExecutable(t *testing.T) {
	task := bridgeTask(t, 4, 4, 100, 100, 150, 0)
	opts := Options{Alpha: 0.2, MaxStates: 6}
	_, err := PlanAStarContext(context.Background(), task, opts)
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("want *Interrupted, got %v", err)
	}
	cp := intr.Checkpoint
	if len(cp.Partial) == 0 {
		t.Skip("search interrupted before any state was reached")
	}
	counts := make([]int, task.NumTypes())
	for _, id := range cp.Partial {
		counts[task.Blocks[id].Type]++
	}
	if !reflect.DeepEqual(counts, cp.Counts) {
		t.Fatalf("Partial %v does not reach Counts %v", cp.Partial, cp.Counts)
	}
	// Each type's subsequence must be the canonical within-type prefix —
	// the contract that lets pipeline.Replan continue from the partial.
	seen := make([]int, task.NumTypes())
	for _, id := range cp.Partial {
		ty := task.Blocks[id].Type
		if want := task.BlocksOfType(ty)[seen[ty]]; id != want {
			t.Fatalf("partial sequence %v breaks canonical order: got block %d, want %d", cp.Partial, id, want)
		}
		seen[ty]++
	}
}
