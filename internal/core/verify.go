package core

import (
	"fmt"

	"klotski/internal/migration"
	"klotski/internal/routing"
)

// VerifyPlanFreeOrder audits a plan that may operate same-type blocks out
// of canonical order (baseline planners are not bound by Klotski's
// ordering-agnostic state representation). It checks that the sequence is
// a complete permutation of the task's blocks and that the initial state,
// every run boundary, and the final state satisfy the demand and port
// constraints. Funneling headroom and space budgets, which are defined on
// the canonical representation, are not applied.
func VerifyPlanFreeOrder(task *migration.Task, seq []int, opts Options) error {
	if err := task.Validate(); err != nil {
		return err
	}
	seen := make(map[int]bool, len(seq))
	for _, id := range seq {
		if id < 0 || id >= len(task.Blocks) {
			return fmt.Errorf("core: sequence references invalid block %d", id)
		}
		if seen[id] {
			return fmt.Errorf("core: block %d appears twice in sequence", id)
		}
		seen[id] = true
	}
	if len(seen) != len(task.Blocks) {
		return fmt.Errorf("core: sequence covers %d of %d blocks", len(seen), len(task.Blocks))
	}
	eval := routing.NewEvaluator(task.Topo)
	view := task.Topo.NewView()
	copts := routing.CheckOpts{Theta: opts.theta(), Split: opts.Split}
	// Boundary checks sample the task's demand forecast at each state's
	// horizon (finished-action count), matching the canonical-order
	// planners and the audit replay.
	if viol := eval.Check(view, &task.Demands, copts); !viol.OK() {
		return planErrf(ErrInfeasible, "initial state unsafe: %s", viol)
	}
	last := NoLast
	for i, id := range seq {
		ty := task.Blocks[id].Type
		if last != NoLast && ty != last {
			copts.DemandScale = task.Forecast.ScaleAt(i)
			if viol := eval.Check(view, &task.Demands, copts); !viol.OK() {
				return planErrf(ErrInfeasible, "unsafe run boundary before step %d (%s): %s",
					i, task.Blocks[id].Name, viol)
			}
		}
		task.Apply(view, id)
		last = ty
	}
	copts.DemandScale = task.Forecast.ScaleAt(len(seq))
	if viol := eval.Check(view, &task.Demands, copts); !viol.OK() {
		return planErrf(ErrInfeasible, "final state unsafe: %s", viol)
	}
	return nil
}

// CheckState verifies the single network state given by per-type progress
// counts (how many blocks of each type have been executed, in canonical
// order) against the demand, port, and space constraints.
func CheckState(task *migration.Task, counts []int, opts Options) error {
	opts.InitialCounts = counts
	opts.InitialLast = NoLast
	sp, err := newSpace(task, opts)
	if err != nil {
		return err
	}
	idx, _ := sp.intern(sp.initial)
	if !sp.feasible(idx, NoLast) {
		return planErrf(ErrInfeasible, "state %v violates constraints", counts)
	}
	return nil
}

// VerifyPlan independently audits a migration plan: the sequence must be a
// canonical-order permutation of the task's remaining blocks, and the
// initial state, every run boundary, and the final state must satisfy the
// demand, port, and (when configured) space constraints.
//
// This is the "extra audits and safety checks" layer of the paper's
// deployment section (§7.2): plans are re-verified before execution and
// after any out-of-band change, independently of the planner that produced
// them.
func VerifyPlan(task *migration.Task, seq []int, opts Options) error {
	if err := task.Validate(); err != nil {
		return err
	}
	if err := ValidateSequence(task, seq, opts.InitialCounts); err != nil {
		return err
	}
	sp, err := newSpace(task, opts)
	if err != nil {
		return err
	}
	vec := append([]uint16(nil), sp.initial...)
	idx, _ := sp.intern(vec)
	if !sp.feasible(idx, NoLast) {
		return planErrf(ErrInfeasible, "initial state unsafe")
	}
	last := NoLast
	tail := 0
	if opts.InitialCounts != nil {
		last = opts.InitialLast
		tail = opts.InitialRunLength
	}
	for i, id := range seq {
		ty := task.Blocks[id].Type
		_, newTail, needsBoundary := sp.step(last, ty, tail)
		if needsBoundary && last != NoLast {
			// Run boundary (type change, or a forced split under
			// MaxRunLength): the state being left was observed by the
			// network and must have been safe.
			if !sp.feasible(idx, last) {
				return planErrf(ErrInfeasible,
					"unsafe run boundary before step %d (%s)", i, task.Blocks[id].Name)
			}
		}
		vec[ty]++
		idx, _ = sp.intern(vec)
		last = ty
		tail = newTail
	}
	if !sp.feasible(idx, last) {
		return planErrf(ErrInfeasible, "final state unsafe")
	}
	for i, total := range sp.totals {
		if vec[i] != total {
			return fmt.Errorf("core: plan leaves %d blocks of type %s unexecuted",
				int(total)-int(vec[i]), task.Types[i].Name)
		}
	}
	return nil
}
