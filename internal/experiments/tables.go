package experiments

import (
	"fmt"

	"klotski/internal/core"
	"klotski/internal/gen"
)

// Table1Row reproduces one row of the paper's Table 1: per-migration scale
// statistics (switches, circuits, affected capacity) plus an estimated
// duration from a crude field-work model.
type Table1Row struct {
	Migration    string
	Switches     int     // switches operated
	Circuits     int     // circuits whose state changes
	CapacityTbps float64 // capacity drained over the migration
	Runs         int     // runs in the optimal plan
	Duration     string  // estimated wall time of the physical work
}

// Table1 regenerates the paper's Table 1 from the three migration
// scenarios at the configured scale. Durations come from an explicit,
// crude OPEX model — see estimateDuration — since the paper's durations
// reflect Meta's actual field operations.
func Table1(cfg Config) ([]Table1Row, error) {
	cfg = cfg.withDefaults()
	cases := []struct{ label, suite string }{
		{"HGRID", "E"},
		{"SSW Forklift", "E-SSW"},
		{"DMAG", "E-DMAG"},
	}
	var rows []Table1Row
	for _, c := range cases {
		s, err := gen.Suite(c.suite, cfg.Scale)
		if err != nil {
			return nil, err
		}
		st := s.Task.Stats()
		plan, err := core.PlanAStar(s.Task, cfg.options())
		runs := 0
		if err == nil {
			runs = len(plan.Runs)
		}
		rows = append(rows, Table1Row{
			Migration:    c.label,
			Switches:     st.Switches,
			Circuits:     st.Circuits,
			CapacityTbps: st.AffectedTbps,
			Runs:         runs,
			Duration:     estimateDuration(st.Switches, runs),
		})
	}
	return rows, nil
}

// estimateDuration is a deliberately crude field-work model: each run needs
// a crew mobilization (≈3 days) and each switch operation — physical
// rewiring at two locations — averages half a day. The paper's Table 1
// durations (months for HGRID, weeks for DMAG) come from real operations;
// this model reproduces their order of magnitude.
func estimateDuration(switchOps, runs int) string {
	days := float64(runs)*3 + float64(switchOps)*0.5
	switch {
	case days >= 60:
		return fmt.Sprintf("~%.0f months", days/30)
	case days >= 14:
		return fmt.Sprintf("~%.0f weeks", days/7)
	default:
		return fmt.Sprintf("~%.0f days", days)
	}
}

// Table3Row reproduces one row of the paper's Table 3: the evaluation
// topology configurations.
type Table3Row struct {
	Topology string
	Switches int // active switches in the original topology
	Circuits int // up circuits in the original topology
	Actions  int // switch-level operations in the migration
}

// PaperTable3 holds the paper's reported (approximate) values for
// comparison in reports.
var PaperTable3 = map[string]Table3Row{
	"A":      {Topology: "A", Switches: 40, Circuits: 80, Actions: 50},
	"B":      {Topology: "B", Switches: 100, Circuits: 600, Actions: 100},
	"C":      {Topology: "C", Switches: 600, Circuits: 8000, Actions: 300},
	"D":      {Topology: "D", Switches: 1000, Circuits: 20000, Actions: 300},
	"E":      {Topology: "E", Switches: 10000, Circuits: 100000, Actions: 700},
	"E-DMAG": {Topology: "E-DMAG", Switches: 10000, Circuits: 100000, Actions: 100},
	"E-SSW":  {Topology: "E-SSW", Switches: 10000, Circuits: 100000, Actions: 300},
}

// Table3 regenerates the paper's Table 3 from the generated suite at the
// configured scale.
func Table3(cfg Config) ([]Table3Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table3Row
	for _, name := range gen.SuiteNames() {
		s, err := gen.Suite(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		st := s.Task.Topo.Stats()
		ts := s.Task.Stats()
		actions := ts.Switches
		if actions == 0 {
			actions = ts.Actions
		} else {
			// Circuit-only blocks count as one action each on top of the
			// switch operations.
			for i := range s.Task.Blocks {
				if len(s.Task.Blocks[i].Switches) == 0 {
					actions++
				}
			}
		}
		rows = append(rows, Table3Row{
			Topology: name,
			Switches: st.Switches,
			Circuits: st.Circuits,
			Actions:  actions,
		})
	}
	return rows, nil
}
