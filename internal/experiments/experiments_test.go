package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// testCfg keeps experiment tests fast: tiny topologies, short budgets.
var testCfg = Config{Scale: 0.1, Timeout: time.Minute}

func TestFig8ShapesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	rows, err := Fig8(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 topologies, got %d", len(rows))
	}
	for _, row := range rows {
		astar, ok := row.Outcome(PlannerAStar)
		if !ok || !astar.OK() {
			t.Fatalf("%s: Klotski-A* must plan: %+v", row.Case, astar)
		}
		if astar.NormCost != 1 {
			t.Errorf("%s: A* must be optimal (norm cost %v)", row.Case, astar.NormCost)
		}
		dp, ok := row.Outcome(PlannerDP)
		if !ok || !dp.OK() {
			t.Fatalf("%s: Klotski-DP must plan on HGRID cases", row.Case)
		}
		if dp.NormCost != 1 {
			t.Errorf("%s: Klotski-DP should find the optimum, norm cost %v", row.Case, dp.NormCost)
		}
		// Janus dedups only by symmetry; on large asymmetric topologies its
		// subset space exhausts the budget (the paper capped it at 24h).
		janus, _ := row.Outcome(PlannerJanus)
		switch {
		case janus.OK():
			if janus.NormCost != 1 {
				t.Errorf("%s: Janus should find the optimum when it finishes, norm cost %v",
					row.Case, janus.NormCost)
			}
		case janus.Note == "budget":
			// Acceptable cross on large cases.
		default:
			t.Errorf("%s: unexpected Janus outcome %+v", row.Case, janus)
		}
		mrc, _ := row.Outcome(PlannerMRC)
		if mrc.OK() && mrc.NormCost < 1 {
			t.Errorf("%s: MRC cannot beat the optimum", row.Case)
		}
	}
	// On the largest case the paper's ordering holds: A* strictly fastest.
	last := rows[len(rows)-1]
	astar, _ := last.Outcome(PlannerAStar)
	for _, name := range []string{PlannerMRC, PlannerJanus, PlannerDP} {
		o, _ := last.Outcome(name)
		if o.OK() && o.Time < astar.Time {
			t.Errorf("E: %s (%v) faster than Klotski-A* (%v)", name, o.Time, astar.Time)
		}
	}
}

func TestFig9Crosses(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	rows, err := Fig9(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	byCase := map[string]CaseResult{}
	for _, r := range rows {
		byCase[r.Case] = r
	}
	dmag := byCase["E-DMAG"]
	for _, name := range []string{PlannerMRC, PlannerJanus} {
		o, _ := dmag.Outcome(name)
		if o.Note != "unsupported" {
			t.Errorf("E-DMAG: %s should be an unsupported cross, got %+v", name, o)
		}
	}
	for _, name := range []string{PlannerDP, PlannerAStar} {
		o, _ := dmag.Outcome(name)
		if !o.OK() {
			t.Errorf("E-DMAG: %s should plan, got %+v", name, o)
		}
	}
}

func TestFig10AblationsOptimalAndSlower(t *testing.T) {
	rows, err := Fig10(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		base, _ := row.Outcome(PlannerAStar)
		if !base.OK() {
			t.Fatalf("%s: baseline A* failed", row.Case)
		}
		for _, v := range []string{VariantNoStar, VariantNoESC} {
			o, _ := row.Outcome(v)
			if !o.OK() {
				t.Errorf("%s: %s should still plan", row.Case, v)
				continue
			}
			if o.NormCost != 1 {
				t.Errorf("%s: %s must stay optimal", row.Case, v)
			}
		}
		// w/o ESC performs at least as many checks.
		noESC, _ := row.Outcome(VariantNoESC)
		if noESC.OK() && noESC.Checks < base.Checks {
			t.Errorf("%s: w/o ESC did fewer checks (%d) than base (%d)",
				row.Case, noESC.Checks, base.Checks)
		}
	}
}

func TestFig11BlockFactorShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	rows, err := Fig11(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 factors, got %d", len(rows))
	}
	// Fewer blocks (smaller factor) → cost no lower than more blocks, among
	// the feasible points (paper: cost negatively related to block count).
	var prev float64
	prevSet := false
	for _, row := range rows { // 0.25x .. 4x: ascending block count
		o, _ := row.Outcome(PlannerAStar)
		if !o.OK() {
			continue // crosses allowed (paper's 0.25× case)
		}
		if prevSet && o.Cost > prev+1e-9 {
			t.Errorf("cost should not increase with more blocks: %v then %v at %s",
				prev, o.Cost, row.Case)
		}
		prev, prevSet = o.Cost, true
	}
}

func TestFig12ThetaShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	rows, err := Fig12(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	var costs []float64
	for _, row := range rows {
		o, _ := row.Outcome(PlannerAStar)
		if !o.OK() {
			costs = append(costs, -1)
			continue
		}
		costs = append(costs, o.Cost)
	}
	// Among feasible points, cost is non-increasing as θ loosens.
	last := -1.0
	for i, c := range costs {
		if c < 0 {
			continue
		}
		if last > 0 && c > last+1e-9 {
			t.Errorf("cost increased as theta loosened: %v at row %d after %v", c, i, last)
		}
		last = c
	}
	if costs[0] == costs[len(costs)-1] {
		t.Error("theta sweep should change the optimal cost")
	}
}

func TestFig13AlphaShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	rows, err := Fig13(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	last := -1.0
	for _, row := range rows {
		o, _ := row.Outcome(PlannerAStar)
		if !o.OK() {
			t.Fatalf("%s: A* failed", row.Case)
		}
		if o.Cost < last {
			t.Errorf("optimal cost decreased as alpha grew: %v after %v", o.Cost, last)
		}
		last = o.Cost
		dp, _ := row.Outcome(PlannerDP)
		if !dp.OK() || dp.NormCost != 1 {
			t.Errorf("%s: DP should match the optimum", row.Case)
		}
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 migrations, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Switches == 0 && r.Circuits == 0 {
			t.Errorf("%s: empty stats", r.Migration)
		}
		if r.Duration == "" {
			t.Errorf("%s: missing duration", r.Migration)
		}
	}
	// HGRID is the biggest migration, DMAG the smallest, as in the paper.
	if rows[0].Switches <= rows[2].Switches {
		t.Errorf("HGRID (%d switches) should exceed DMAG (%d)", rows[0].Switches, rows[2].Switches)
	}
}

func TestTable3AscendingSizes(t *testing.T) {
	rows, err := Table3(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("want 7 rows, got %d", len(rows))
	}
	prev := 0
	for _, r := range rows[:5] { // A..E ascend
		if r.Switches <= prev {
			t.Errorf("%s: switches %d not ascending", r.Topology, r.Switches)
		}
		prev = r.Switches
	}
}

func TestEstimateDuration(t *testing.T) {
	cases := []struct {
		ops, runs int
		contains  string
	}{
		{4, 2, "days"},
		{60, 4, "weeks"},
		{400, 8, "months"},
	}
	for _, c := range cases {
		got := estimateDuration(c.ops, c.runs)
		if !strings.Contains(got, c.contains) {
			t.Errorf("estimateDuration(%d, %d) = %q, want unit %q", c.ops, c.runs, got, c.contains)
		}
	}
}

func TestPrinters(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	rows, err := Fig9(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintCaseResults(&buf, "test", rows)
	out := buf.String()
	if !strings.Contains(out, "E-DMAG") || !strings.Contains(out, "✗ unsupported") {
		t.Errorf("case results rendering missing content:\n%s", out)
	}
	t1, err := Table1(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	PrintTable1(&buf, t1)
	if !strings.Contains(buf.String(), "HGRID") {
		t.Error("table 1 rendering missing content")
	}
	t3, err := Table3(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	PrintTable3(&buf, t3, 0.1)
	if !strings.Contains(buf.String(), "E-SSW") {
		t.Error("table 3 rendering missing content")
	}
}

func TestBudgetCrossRendering(t *testing.T) {
	// A 1ns timeout turns every planner into a budget cross without
	// breaking the experiment machinery.
	cfg := Config{Scale: 0.1, Timeout: time.Nanosecond, MaxStates: 2}
	rows, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	foundCross := false
	for _, row := range rows {
		for _, o := range row.Outcomes {
			if o.Note == "budget" {
				foundCross = true
			}
		}
	}
	if !foundCross {
		t.Error("expected at least one budget cross under a 1ns timeout")
	}
}

func TestTypeGranularity(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	rows, err := TypeGranularity(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 granularity cases, got %d", len(rows))
	}
	for _, row := range rows {
		astar, _ := row.Outcome(PlannerAStar)
		dp, _ := row.Outcome(PlannerDP)
		if !astar.OK() || !dp.OK() {
			t.Fatalf("%s: planners failed: %+v / %+v", row.Case, astar, dp)
		}
		if astar.NormCost != 1 || dp.NormCost != 1 {
			t.Errorf("%s: A* and DP must agree on the optimum", row.Case)
		}
	}
	// The split-role case has the deeper search space.
	merged, _ := rows[0].Outcome(PlannerAStar)
	split, _ := rows[1].Outcome(PlannerAStar)
	if split.States <= merged.States {
		t.Errorf("|A|=4 should search more states: %d vs %d", split.States, merged.States)
	}
}
