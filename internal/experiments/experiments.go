// Package experiments regenerates every table and figure of the Klotski
// paper's evaluation (§6): the Table-1 migration statistics, the Table-3
// topology suite, the scalability comparison (Fig. 8), the generality
// comparison (Fig. 9), the design-choice ablations (Fig. 10), and the
// operation-block / utilization-bound / cost-function sweeps
// (Figs. 11–13).
//
// Each experiment returns structured rows so cmd/figures can print them
// and benchmarks can assert on them. Planning times are reported both raw
// and normalized by Klotski-A* on the same case, mirroring the paper's
// privacy-normalized presentation. A planner that cannot handle a case —
// unsupported migration type, infeasible constraints, or exhausted budget —
// is reported with a note, rendered as the paper's crosses.
package experiments

import (
	"errors"
	"fmt"
	"time"

	"klotski/internal/baseline"
	"klotski/internal/core"
	"klotski/internal/gen"
	"klotski/internal/migration"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale sizes the generated topologies (1 = paper-sized Table 3;
	// default 0.25, laptop-friendly).
	Scale float64

	// Timeout bounds each planner invocation (default 120s). Planners
	// exceeding it are reported as budget crosses, standing in for the
	// paper's 24-hour cap.
	Timeout time.Duration

	// MaxStates bounds each planner's state count (default 2,000,000).
	MaxStates int

	// Theta is the utilization bound for experiments that don't sweep it.
	Theta float64
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.25
	}
	if c.Timeout == 0 {
		c.Timeout = 120 * time.Second
	}
	if c.MaxStates == 0 {
		c.MaxStates = 2_000_000
	}
	if c.Theta == 0 {
		c.Theta = 0.75
	}
	return c
}

func (c Config) options() core.Options {
	return core.Options{Theta: c.Theta, Timeout: c.Timeout, MaxStates: c.MaxStates}
}

// Planner labels, in the paper's bar order.
const (
	PlannerMRC    = "MRC"
	PlannerJanus  = "Janus"
	PlannerDP     = "Klotski-DP"
	PlannerAStar  = "Klotski-A*"
	VariantNoOB   = "Klotski w/o OB"
	VariantNoStar = "Klotski w/o A*"
	VariantNoESC  = "Klotski w/o ESC"
)

// Outcome is one planner's result on one case.
type Outcome struct {
	Planner  string
	Cost     float64
	NormCost float64 // cost / optimal cost for the case
	Time     time.Duration
	NormTime float64 // time / Klotski-A* time for the case
	States   int
	Checks   int
	Note     string // "", "unsupported", "infeasible", or "budget"
}

// OK reports whether the planner produced a plan.
func (o Outcome) OK() bool { return o.Note == "" }

// CaseResult groups the outcomes of all planners on one case.
type CaseResult struct {
	Case     string
	Outcomes []Outcome
}

// Outcome returns the named planner's outcome, if present.
func (c *CaseResult) Outcome(planner string) (Outcome, bool) {
	for _, o := range c.Outcomes {
		if o.Planner == planner {
			return o, true
		}
	}
	return Outcome{}, false
}

type plannerFunc func(*migration.Task, core.Options) (*core.Plan, error)

func runOne(name string, fn plannerFunc, task *migration.Task, opts core.Options) Outcome {
	out := Outcome{Planner: name}
	start := time.Now()
	plan, err := fn(task, opts)
	out.Time = time.Since(start)
	if err != nil {
		switch {
		case errors.Is(err, core.ErrUnsupported):
			out.Note = "unsupported"
		case errors.Is(err, core.ErrBudget):
			out.Note = "budget"
		case errors.Is(err, core.ErrInfeasible):
			out.Note = "infeasible"
		default:
			out.Note = "error: " + err.Error()
		}
		return out
	}
	out.Cost = plan.Cost
	out.States = plan.Metrics.StatesCreated
	out.Checks = plan.Metrics.Checks
	return out
}

// normalize fills NormCost (vs the best cost achieved) and NormTime (vs the
// planner named ref).
func normalize(outs []Outcome, ref string) {
	best := 0.0
	for _, o := range outs {
		if o.OK() && (best == 0 || o.Cost < best) {
			best = o.Cost
		}
	}
	normalizeAgainst(outs, ref, best)
}

// normalizeToRef fills NormCost and NormTime both against the named
// planner — used when the outcomes in a row come from tasks of different
// granularity (Fig. 10's w/o-OB variant), where "best cost across the row"
// is not a shared optimum.
func normalizeToRef(outs []Outcome, ref string) {
	best := 0.0
	for _, o := range outs {
		if o.Planner == ref && o.OK() {
			best = o.Cost
		}
	}
	normalizeAgainst(outs, ref, best)
}

func normalizeAgainst(outs []Outcome, ref string, best float64) {
	var refTime time.Duration
	for _, o := range outs {
		if o.Planner == ref && o.OK() {
			refTime = o.Time
		}
	}
	for i := range outs {
		if !outs[i].OK() {
			continue
		}
		if best > 0 {
			outs[i].NormCost = outs[i].Cost / best
		}
		if refTime > 0 {
			outs[i].NormTime = float64(outs[i].Time) / float64(refTime)
		}
	}
}

// comparePlanners runs the paper's four planners on a task.
func comparePlanners(task *migration.Task, opts core.Options) []Outcome {
	outs := []Outcome{
		runOne(PlannerMRC, baseline.PlanMRC, task, opts),
		runOne(PlannerJanus, baseline.PlanJanus, task, opts),
		runOne(PlannerDP, core.PlanDP, task, opts),
		runOne(PlannerAStar, core.PlanAStar, task, opts),
	}
	normalize(outs, PlannerAStar)
	return outs
}

// Fig8 reproduces Figure 8: optimality and normalized planning time of
// MRC, Janus, Klotski-DP, and Klotski-A* on topologies A–E under HGRID
// V1→V2 migration.
func Fig8(cfg Config) ([]CaseResult, error) {
	cfg = cfg.withDefaults()
	var rows []CaseResult
	for _, name := range []string{"A", "B", "C", "D", "E"} {
		s, err := gen.Suite(name, cfg.Scale)
		if err != nil {
			return nil, fmt.Errorf("experiments: build %s: %w", name, err)
		}
		rows = append(rows, CaseResult{Case: name, Outcomes: comparePlanners(s.Task, cfg.options())})
	}
	return rows, nil
}

// Fig9 reproduces Figure 9: the same comparison across migration types —
// E (HGRID), E-DMAG, and E-SSW. MRC and Janus cross on E-DMAG.
func Fig9(cfg Config) ([]CaseResult, error) {
	cfg = cfg.withDefaults()
	var rows []CaseResult
	for _, name := range []string{"E", "E-DMAG", "E-SSW"} {
		s, err := gen.Suite(name, cfg.Scale)
		if err != nil {
			return nil, fmt.Errorf("experiments: build %s: %w", name, err)
		}
		rows = append(rows, CaseResult{Case: name, Outcomes: comparePlanners(s.Task, cfg.options())})
	}
	return rows, nil
}

// Fig10 reproduces Figure 10: Klotski-A* against its ablations — without
// operation blocks (symmetry granularity), without the A* heuristic
// (uniform-cost search), and without efficient satisfiability checking —
// on topologies A–E.
func Fig10(cfg Config) ([]CaseResult, error) {
	cfg = cfg.withDefaults()
	var rows []CaseResult
	for _, name := range []string{"A", "B", "C", "D", "E"} {
		s, err := gen.Suite(name, cfg.Scale)
		if err != nil {
			return nil, fmt.Errorf("experiments: build %s: %w", name, err)
		}
		opts := cfg.options()
		noHeuristic := opts
		noHeuristic.DisableHeuristic = true
		noHeuristic.DisableSecondaryPriority = true
		noCache := opts
		noCache.DisableCache = true

		symTask := migration.SymmetryGranularity(s.Task)
		outs := []Outcome{
			runOne(VariantNoOB, core.PlanAStar, symTask, opts),
			runOne(VariantNoStar, core.PlanAStar, s.Task, noHeuristic),
			runOne(VariantNoESC, core.PlanAStar, s.Task, noCache),
			runOne(PlannerAStar, core.PlanAStar, s.Task, opts),
		}
		// Normalize against the default configuration: the w/o-OB variant
		// plans a finer-grained task whose optimum can legitimately be
		// lower (cf. Fig. 11), so a cross-variant "best" is not a shared
		// reference.
		normalizeToRef(outs, PlannerAStar)
		rows = append(rows, CaseResult{Case: name, Outcomes: outs})
	}
	return rows, nil
}

// Fig11 reproduces Figure 11: the impact of the operation-block
// organization policy, re-blocking topology E's task by factors 0.25×–4×
// and planning with Klotski-DP and Klotski-A*.
func Fig11(cfg Config) ([]CaseResult, error) {
	cfg = cfg.withDefaults()
	s, err := gen.Suite("E", cfg.Scale)
	if err != nil {
		return nil, err
	}
	var rows []CaseResult
	for _, factor := range []float64{0.25, 0.5, 1, 2, 4} {
		task, err := migration.Reblock(s.Task, factor)
		if err != nil {
			return nil, err
		}
		outs := []Outcome{
			runOne(PlannerDP, core.PlanDP, task, cfg.options()),
			runOne(PlannerAStar, core.PlanAStar, task, cfg.options()),
		}
		normalize(outs, PlannerAStar)
		rows = append(rows, CaseResult{Case: fmt.Sprintf("%gx", factor), Outcomes: outs})
	}
	return rows, nil
}

// Fig12 reproduces Figure 12: the impact of the utilization-rate bound,
// sweeping θ from 55% to 95% on topology E.
func Fig12(cfg Config) ([]CaseResult, error) {
	cfg = cfg.withDefaults()
	s, err := gen.Suite("E", cfg.Scale)
	if err != nil {
		return nil, err
	}
	var rows []CaseResult
	for _, theta := range []float64{0.55, 0.65, 0.75, 0.85, 0.95} {
		opts := cfg.options()
		opts.Theta = theta
		outs := []Outcome{
			runOne(PlannerDP, core.PlanDP, s.Task, opts),
			runOne(PlannerAStar, core.PlanAStar, s.Task, opts),
		}
		normalize(outs, PlannerAStar)
		rows = append(rows, CaseResult{Case: fmt.Sprintf("%d%%", int(theta*100)), Outcomes: outs})
	}
	return rows, nil
}

// Fig13 reproduces Figure 13: the impact of the generalized cost function,
// sweeping α from 0 to 1 on topology E.
func Fig13(cfg Config) ([]CaseResult, error) {
	cfg = cfg.withDefaults()
	s, err := gen.Suite("E", cfg.Scale)
	if err != nil {
		return nil, err
	}
	var rows []CaseResult
	for _, alpha := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		opts := cfg.options()
		opts.Alpha = alpha
		outs := []Outcome{
			runOne(PlannerDP, core.PlanDP, s.Task, opts),
			runOne(PlannerAStar, core.PlanAStar, s.Task, opts),
		}
		normalize(outs, PlannerAStar)
		rows = append(rows, CaseResult{Case: fmt.Sprintf("α=%.1f", alpha), Outcomes: outs})
	}
	return rows, nil
}

// TypeGranularity is an extension experiment beyond the paper's figures:
// it re-plans topology C's HGRID migration with the grid blocks split by
// switch role (|A| = 4 action types instead of the production policy's 2)
// and compares Klotski-A* against uniform-cost search and DP on both. The
// informed search's advantage grows with the number of action types — the
// heuristic of Eq. 9 has more dynamic range — which is where the paper's
// larger A*-speedup factors come from. (Topology C keeps the |A|=4 product
// space tractable; E's 32 grids would make it 33⁴ ≈ 10⁶ vectors.)
func TypeGranularity(cfg Config) ([]CaseResult, error) {
	cfg = cfg.withDefaults()
	merged, err := gen.Suite("C", cfg.Scale)
	if err != nil {
		return nil, err
	}
	split, err := gen.HGRIDScenario("C-split", gen.HGRIDScenarioParams{
		Region:     merged.Region.Params,
		SplitRoles: true,
	})
	if err != nil {
		return nil, err
	}
	var rows []CaseResult
	for _, c := range []struct {
		name string
		task *migration.Task
	}{
		{"|A|=2 (merged, paper policy)", merged.Task},
		{"|A|=4 (split roles)", split.Task},
	} {
		noHeuristic := cfg.options()
		noHeuristic.DisableHeuristic = true
		noHeuristic.DisableSecondaryPriority = true
		outs := []Outcome{
			runOne(VariantNoStar, core.PlanAStar, c.task, noHeuristic),
			runOne(PlannerDP, core.PlanDP, c.task, cfg.options()),
			runOne(PlannerAStar, core.PlanAStar, c.task, cfg.options()),
		}
		normalize(outs, PlannerAStar)
		rows = append(rows, CaseResult{Case: c.name, Outcomes: outs})
	}
	return rows, nil
}
