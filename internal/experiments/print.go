package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// PrintCaseResults renders planner-comparison rows as an aligned text
// table: one line per (case, planner) with cost, normalized cost, raw and
// normalized planning time. Crosses render as the planner's failure note.
func PrintCaseResults(w io.Writer, title string, rows []CaseResult) {
	fmt.Fprintf(w, "== %s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "case\tplanner\tcost\tnorm cost\ttime\tnorm time\tstates\tchecks")
	for _, row := range rows {
		for _, o := range row.Outcomes {
			if !o.OK() {
				fmt.Fprintf(tw, "%s\t%s\t✗ %s\t\t\t\t\t\n", row.Case, o.Planner, o.Note)
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%.3g\t%.2f\t%s\t%.2f\t%d\t%d\n",
				row.Case, o.Planner, o.Cost, o.NormCost, o.Time.Round(o.Time/100+1), o.NormTime,
				o.States, o.Checks)
		}
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// PrintTable1 renders Table-1 rows next to the paper's reported ranges.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "== Table 1: migration statistics per region (paper ranges in brackets)")
	paper := map[string]string{
		"HGRID":        "[320-352 sw, 13.7k-26.8k ck, 1.3-6.3T, 4-9 months]",
		"SSW Forklift": "[144-288 sw, 14.1k-40.3k ck, 14-16T, 3-4 months]",
		"DMAG":         "[48-64 sw, 1.6k-5.6k ck, 0.2-0.5T, 1-2 weeks]",
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "migration\tswitches\tcircuits\tcapacity (Tbps)\truns\tduration\tpaper")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%d\t%s\t%s\n",
			r.Migration, r.Switches, r.Circuits, r.CapacityTbps, r.Runs, r.Duration, paper[r.Migration])
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// PrintTable3 renders Table-3 rows next to the paper's reported values.
func PrintTable3(w io.Writer, rows []Table3Row, scale float64) {
	fmt.Fprintf(w, "== Table 3: topology configurations at scale %g (paper values at scale 1 in brackets)\n", scale)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "topology\tswitches\tcircuits\tactions\tpaper")
	for _, r := range rows {
		p := PaperTable3[r.Topology]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t[~%d sw, ~%d ck, ~%d actions]\n",
			r.Topology, r.Switches, r.Circuits, r.Actions, p.Switches, p.Circuits, p.Actions)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
