package gen

import (
	"math/rand"
	"testing"

	"klotski/internal/core"
	"klotski/internal/routing"
	"klotski/internal/topo"
)

// randomRegionParams draws structurally valid region parameters: plane
// counts in {4, 8}, grid counts that are either ≤ minPlanes (plane-level
// striping) or ≥ 4×maxPlanes (dilution striping) — the two regimes the
// generators are designed for.
func randomRegionParams(rng *rand.Rand) RegionParams {
	nDC := 1 + rng.Intn(3)
	var dcs []FabricParams
	minPlanes, maxPlanes := 8, 4
	for i := 0; i < nDC; i++ {
		planes := 4
		if rng.Intn(4) == 0 {
			planes = 8
		}
		if planes < minPlanes {
			minPlanes = planes
		}
		if planes > maxPlanes {
			maxPlanes = planes
		}
		dcs = append(dcs, FabricParams{
			Pods:        1 + rng.Intn(4),
			RSWPerPod:   1 + rng.Intn(3),
			Planes:      planes,
			SSWPerPlane: 1 + rng.Intn(4),
			FSWUplinks:  1 + rng.Intn(2),
		})
	}
	grids := minPlanes // plane-level regime
	if rng.Intn(3) == 0 {
		grids = 4 * maxPlanes // dilution regime
	}
	return RegionParams{
		Name: "rand-region",
		DCs:  dcs,
		HGRID: HGRIDParams{
			Grids:        grids,
			FADUPerGrid:  1 + rng.Intn(4),
			FAUUPerGrid:  1 + rng.Intn(3),
			SSWDownlinks: 1 + rng.Intn(2),
		},
		EBs: 2 + 2*rng.Intn(3), DRs: 1 + rng.Intn(3), EBBs: 1 + rng.Intn(3),
		EBCap: 40, DRCap: 80,
	}
}

// TestBuildRegionInvariants: any structurally valid parameter draw yields a
// valid, fully-routable region.
func TestBuildRegionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		params := randomRegionParams(rng)
		r := BuildRegion(params)
		if err := r.Topo.Validate(); err != nil {
			t.Fatalf("trial %d: invalid topology: %v (params %+v)", trial, err, params)
		}
		ds := BuildDemands(r, DemandSpec{})
		eval := routing.NewEvaluator(r.Topo)
		res, viol := eval.Evaluate(r.Topo.NewView(), &ds, routing.CheckOpts{Theta: 1e9})
		if viol.Kind == routing.ViolationUnreachable || res.Unreachable > 0 {
			t.Fatalf("trial %d: base region cannot route demands: %v (params %+v)",
				trial, viol, params)
		}
		// Structural accounting: every RSW has exactly FSWPerPod uplinks.
		for d, rsws := range r.RSWs {
			per := params.DCs[d].FSWPerPod
			if per == 0 {
				per = 4
			}
			for _, id := range rsws {
				if got := len(r.Topo.Switch(id).Circuits()); got != per {
					t.Fatalf("trial %d: RSW %s has %d circuits, want %d",
						trial, r.Topo.Switch(id).Name, got, per)
				}
			}
		}
	}
}

// TestHGRIDScenarioInvariants: scenarios over random regions validate,
// plan, and verify end to end.
func TestHGRIDScenarioInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	planned := 0
	for trial := 0; trial < 15; trial++ {
		params := randomRegionParams(rng)
		s, err := HGRIDScenario("rand", HGRIDScenarioParams{Region: params})
		if err != nil {
			t.Fatalf("trial %d: scenario build failed: %v (params %+v)", trial, err, params)
		}
		if err := s.Task.Validate(); err != nil {
			t.Fatalf("trial %d: task invalid: %v", trial, err)
		}
		p, err := core.PlanAStar(s.Task, core.Options{MaxStates: 300_000})
		if err != nil {
			// Some random draws are legitimately too tight to migrate;
			// what matters is that the failures are clean.
			continue
		}
		planned++
		if err := core.VerifyPlan(s.Task, p.Sequence, core.Options{}); err != nil {
			t.Fatalf("trial %d: plan failed verification: %v", trial, err)
		}
	}
	if planned < 8 {
		t.Errorf("only %d of 15 random scenarios plannable; generators drifting too tight", planned)
	}
}

// TestViewIsolationUnderPlanning: planning must never mutate the base
// topology's activity state.
func TestViewIsolationUnderPlanning(t *testing.T) {
	s := buildSuite(t, "B", testScale)
	before := s.Task.Topo.Stats()
	if _, err := core.PlanAStar(s.Task, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := core.PlanDP(s.Task, core.Options{}); err != nil {
		t.Fatal(err)
	}
	after := s.Task.Topo.Stats()
	if before.Switches != after.Switches || before.Circuits != after.Circuits ||
		before.Capacity != after.Capacity {
		t.Fatalf("planning mutated base activity: %+v vs %+v", before, after)
	}
}

// TestDemandEndpointsAlwaysActive: generated demands must never target a
// switch the migration operates — planning would otherwise chase a moving
// endpoint.
func TestDemandEndpointsAlwaysActive(t *testing.T) {
	for _, name := range SuiteNames() {
		s := buildSuite(t, name, testScale)
		operated := map[topo.SwitchID]bool{}
		for _, b := range s.Task.Blocks {
			for _, sw := range b.Switches {
				operated[sw] = true
			}
		}
		for _, d := range s.Task.Demands.Demands {
			if operated[d.Src] || operated[d.Dst] {
				t.Errorf("%s: demand %s endpoints are operated switches", name, d.Name)
			}
		}
	}
}
