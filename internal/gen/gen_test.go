package gen

import (
	"errors"
	"math"
	"testing"

	"klotski/internal/baseline"
	"klotski/internal/core"
	"klotski/internal/migration"
	"klotski/internal/routing"
	"klotski/internal/topo"
)

const testScale = 0.12

func buildSuite(t *testing.T, name string, scale float64) *Scenario {
	t.Helper()
	s, err := Suite(name, scale)
	if err != nil {
		t.Fatalf("Suite(%s, %v): %v", name, scale, err)
	}
	return s
}

func TestSuiteNames(t *testing.T) {
	names := SuiteNames()
	want := []string{"A", "B", "C", "D", "E", "E-DMAG", "E-SSW"}
	if len(names) != len(want) {
		t.Fatalf("SuiteNames = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("SuiteNames = %v, want %v", names, want)
		}
	}
	if _, err := Suite("nope", 1); err == nil {
		t.Error("unknown suite name should error")
	}
}

func TestAllScenariosValidate(t *testing.T) {
	for _, name := range SuiteNames() {
		s := buildSuite(t, name, testScale)
		if err := s.Task.Topo.Validate(); err != nil {
			t.Errorf("%s topology invalid: %v", name, err)
		}
		if err := s.Task.Validate(); err != nil {
			t.Errorf("%s task invalid: %v", name, err)
		}
		if s.Task.NumActions() == 0 {
			t.Errorf("%s has no actions", name)
		}
	}
}

func TestAllScenariosPlannable(t *testing.T) {
	for _, name := range SuiteNames() {
		s := buildSuite(t, name, testScale)
		p, err := core.PlanAStar(s.Task, core.Options{})
		if err != nil {
			t.Errorf("%s unplannable at default θ: %v", name, err)
			continue
		}
		if err := core.VerifyPlan(s.Task, p.Sequence, core.Options{}); err != nil {
			t.Errorf("%s plan failed verification: %v", name, err)
		}
		if p.Cost < 2 {
			t.Errorf("%s plan cost %v suspiciously low", name, p.Cost)
		}
	}
}

func TestCalibrationPinsMaxUtil(t *testing.T) {
	for _, name := range []string{"A", "C", "E-DMAG"} {
		s := buildSuite(t, name, testScale)
		eval := routing.NewEvaluator(s.Task.Topo)
		res, viol := eval.Evaluate(s.Task.Topo.NewView(), &s.Task.Demands, routing.CheckOpts{Theta: 1e9})
		if !viol.OK() {
			t.Fatalf("%s base state violates: %v", name, viol)
		}
		if math.Abs(res.MaxUtil-s.BaseUtil) > 1e-6 {
			t.Errorf("%s base max util = %v, want %v", name, res.MaxUtil, s.BaseUtil)
		}
	}
}

// The migrated layer must be the binding layer: the calibration-pinned
// peak-utilization circuit must touch the equipment being migrated.
func TestBindingLayerIsMigrated(t *testing.T) {
	cases := map[string][]topo.Role{
		"A":     {topo.RoleFADU, topo.RoleFAUU},
		"E":     {topo.RoleFADU, topo.RoleFAUU},
		"E-SSW": {topo.RoleSSW, topo.RoleFADU, topo.RoleFAUU},
		// DMAG drains FAUU→EB circuits.
		"E-DMAG": {topo.RoleFAUU, topo.RoleEB},
	}
	for name, roles := range cases {
		s := buildSuite(t, name, testScale)
		tp := s.Task.Topo
		eval := routing.NewEvaluator(tp)
		res, _ := eval.Evaluate(tp.NewView(), &s.Task.Demands, routing.CheckOpts{Theta: 1e9})
		ck := tp.Circuit(res.MaxUtilCircuit)
		ra, rb := tp.Switch(ck.A).Role, tp.Switch(ck.B).Role
		ok := false
		for _, r := range roles {
			if ra == r || rb == r {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s binding circuit is %s-%s, expected one of %v", name, ra, rb, roles)
		}
	}
}

func TestTargetStateIsSafe(t *testing.T) {
	for _, name := range SuiteNames() {
		s := buildSuite(t, name, testScale)
		eval := routing.NewEvaluator(s.Task.Topo)
		if viol := eval.Check(s.Task.TargetView(), &s.Task.Demands, routing.CheckOpts{}); !viol.OK() {
			t.Errorf("%s target state unsafe: %v", name, viol)
		}
	}
}

func TestHGRIDThetaSensitivity(t *testing.T) {
	s := buildSuite(t, "E", testScale)
	var costs []float64
	for _, theta := range []float64{0.55, 0.75, 0.95} {
		p, err := core.PlanAStar(s.Task, core.Options{Theta: theta})
		if err != nil {
			t.Fatalf("theta %v: %v", theta, err)
		}
		costs = append(costs, p.Cost)
	}
	if !(costs[0] >= costs[1] && costs[1] >= costs[2]) {
		t.Errorf("costs should be non-increasing in theta: %v", costs)
	}
	if costs[0] == costs[2] {
		t.Errorf("theta sweep should change cost, got flat %v", costs)
	}
}

func TestHGRIDPortBudgetForcesInterleaving(t *testing.T) {
	s := buildSuite(t, "E", testScale)
	p, err := core.PlanAStar(s.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Runs) < 4 {
		t.Errorf("HGRID plan should interleave drains and undrains, got %d runs", len(p.Runs))
	}
	// The trivial undrain-all-then-drain-all plan must NOT verify.
	var und, dr []int
	for i := range s.Task.Blocks {
		if s.Task.Types[s.Task.Blocks[i].Type].Op == migration.Undrain {
			und = append(und, i)
		} else {
			dr = append(dr, i)
		}
	}
	trivial := append(append([]int{}, und...), dr...)
	if err := core.VerifyPlan(s.Task, trivial, core.Options{}); err == nil {
		t.Error("undrain-everything-first should violate SSW port budgets")
	}
}

func TestDMAGOnlyKlotskiPlans(t *testing.T) {
	s := buildSuite(t, "E-DMAG", testScale)
	if !s.Task.TopologyChanging {
		t.Fatal("DMAG task must be marked topology-changing")
	}
	if _, err := core.PlanAStar(s.Task, core.Options{}); err != nil {
		t.Errorf("Klotski should plan DMAG: %v", err)
	}
}

func TestDMAGDirectCircuitsHaveMetric2(t *testing.T) {
	s := buildSuite(t, "E-DMAG", testScale)
	tp := s.Task.Topo
	found := 0
	for c := 0; c < tp.NumCircuits(); c++ {
		ck := tp.Circuit(topo.CircuitID(c))
		ra, rb := tp.Switch(ck.A).Role, tp.Switch(ck.B).Role
		if (ra == topo.RoleFAUU && rb == topo.RoleEB) || (ra == topo.RoleEB && rb == topo.RoleFAUU) {
			if ck.Metric != 2 {
				t.Fatalf("direct FAUU-EB circuit %d has metric %d, want 2", c, ck.Metric)
			}
			found++
		}
	}
	if found == 0 {
		t.Fatal("no direct FAUU-EB circuits found")
	}
}

func TestForkliftMirrorsWiring(t *testing.T) {
	s := buildSuite(t, "E-SSW", testScale)
	tp := s.Task.Topo
	// Every generation-2 SSW must have the same neighbor count as its
	// generation-1 counterpart, at 1.5× capacity.
	count := 0
	for i := 0; i < tp.NumSwitches(); i++ {
		sw := tp.Switch(topo.SwitchID(i))
		if sw.Role != topo.RoleSSW || sw.Generation != 2 {
			continue
		}
		count++
		if tp.SwitchActive(sw.ID) {
			t.Fatalf("new SSW %s should start inactive", sw.Name)
		}
		if len(sw.Circuits()) == 0 {
			t.Fatalf("new SSW %s has no wiring", sw.Name)
		}
	}
	if count == 0 {
		t.Fatal("no generation-2 SSWs found")
	}
}

func TestReblockedScenarioFactorQuarterHarderOrInfeasible(t *testing.T) {
	s := buildSuite(t, "E", testScale)
	base, err := core.PlanAStar(s.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := migration.Reblock(s.Task, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.PlanAStar(coarse, core.Options{})
	if err != nil {
		if !errors.Is(err, core.ErrInfeasible) {
			t.Fatalf("unexpected error: %v", err)
		}
		return // infeasible, matching the paper's 0.25× cross
	}
	if p.Cost < base.Cost {
		t.Errorf("coarser blocks should not lower cost: %v vs %v", p.Cost, base.Cost)
	}
}

func TestReblockedScenarioFinerNotWorse(t *testing.T) {
	s := buildSuite(t, "A", testScale)
	base, err := core.PlanAStar(s.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := migration.Reblock(s.Task, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.PlanAStar(fine, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost > base.Cost+1e-9 {
		t.Errorf("finer blocks should not raise optimal cost: %v vs %v", p.Cost, base.Cost)
	}
}

func TestScaleGrowsTopology(t *testing.T) {
	small := buildSuite(t, "C", 0.1)
	big := buildSuite(t, "C", 0.3)
	ss, bs := small.Task.Topo.Stats(), big.Task.Topo.Stats()
	if bs.TotalSwitches <= ss.TotalSwitches || bs.TotalCircuits <= ss.TotalCircuits {
		t.Errorf("scale should grow topology: %v vs %v", ss, bs)
	}
}

func TestTableThreeOrdering(t *testing.T) {
	// Switch counts must ascend A → E like Table 3.
	prev := -1
	for _, name := range []string{"A", "B", "C", "D", "E"} {
		s := buildSuite(t, name, testScale)
		n := s.Task.Topo.Stats().Switches
		if n <= prev {
			t.Errorf("%s switch count %d not greater than predecessor %d", name, n, prev)
		}
		prev = n
	}
}

func TestShapeLayerCapacities(t *testing.T) {
	r := BuildRegion(RegionParams{
		Name:  "shape-test",
		DCs:   []FabricParams{{Pods: 2, RSWPerPod: 2, Planes: 4, SSWPerPlane: 2}},
		HGRID: HGRIDParams{Grids: 4, FADUPerGrid: 2, FAUUPerGrid: 1},
	})
	ds := BuildDemands(r, DemandSpec{})
	targets := map[string]float64{"SSW-FADU": 1.0, "FSW-SSW": 0.5}
	peaks, err := ShapeLayerCapacities(r.Topo, &ds, targets)
	if err != nil {
		t.Fatal(err)
	}
	eval := routing.NewEvaluator(r.Topo)
	eval.Evaluate(r.Topo.NewView(), &ds, routing.CheckOpts{Theta: 1e9})
	maxPer := map[string]float64{}
	for c := 0; c < r.Topo.NumCircuits(); c++ {
		cid := topo.CircuitID(c)
		ck := r.Topo.Circuit(cid)
		ab, ba := eval.CircuitLoad(cid)
		layer := LayerOf(r.Topo, ck)
		if u := (ab + ba) / ck.Capacity; u > maxPer[layer] {
			maxPer[layer] = u
		}
	}
	for layer, want := range targets {
		if math.Abs(maxPer[layer]-want) > 1e-6 {
			t.Errorf("layer %s peak = %v, want %v", layer, maxPer[layer], want)
		}
		if math.Abs(peaks[layer]-want) > 1e-6 {
			t.Errorf("reported peak for %s = %v, want %v", layer, peaks[layer], want)
		}
	}
}

func TestShapeRejectsBadTarget(t *testing.T) {
	r := BuildRegion(RegionParams{
		Name:  "shape-bad",
		DCs:   []FabricParams{{Pods: 1, RSWPerPod: 1, Planes: 4, SSWPerPlane: 1}},
		HGRID: HGRIDParams{Grids: 4, FADUPerGrid: 1, FAUUPerGrid: 1},
	})
	ds := BuildDemands(r, DemandSpec{})
	if _, err := ShapeLayerCapacities(r.Topo, &ds, map[string]float64{"SSW-FADU": -1}); err == nil {
		t.Error("negative target should error")
	}
}

func TestBuildDemandsDestinationsBounded(t *testing.T) {
	s := buildSuite(t, "E", testScale)
	dsts := s.Task.Demands.Destinations()
	if len(dsts) > 24 {
		t.Errorf("%d distinct destinations; checks scale with this — keep it bounded", len(dsts))
	}
	if len(dsts) < 3 {
		t.Errorf("too few destinations (%d) to exercise routing", len(dsts))
	}
}

func TestMRCAndJanusOnScenario(t *testing.T) {
	s := buildSuite(t, "B", testScale)
	opt, err := core.PlanAStar(s.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mrc, err := baseline.PlanMRC(s.Task, core.Options{})
	if err != nil {
		t.Fatalf("MRC on B: %v", err)
	}
	if mrc.Cost < opt.Cost-1e-9 {
		t.Errorf("MRC cost %v below optimal %v", mrc.Cost, opt.Cost)
	}
	if err := core.VerifyPlanFreeOrder(s.Task, mrc.Sequence, core.Options{}); err != nil {
		t.Errorf("MRC plan invalid: %v", err)
	}
	j, err := baseline.PlanJanus(s.Task, core.Options{MaxStates: 500_000})
	if err != nil {
		if errors.Is(err, core.ErrBudget) {
			// Little symmetry in generated regions: Janus's subset space
			// can legitimately exhaust its budget (the paper's 24h cap).
			t.Logf("Janus budget-crossed on B: %v", err)
			return
		}
		t.Fatalf("Janus on B: %v", err)
	}
	if math.Abs(j.Cost-opt.Cost) > 1e-9 {
		t.Errorf("Janus cost %v != optimal %v", j.Cost, opt.Cost)
	}
	if err := core.VerifyPlanFreeOrder(s.Task, j.Sequence, core.Options{}); err != nil {
		t.Errorf("Janus plan invalid: %v", err)
	}
}

// TestGeneratorDeterminism: identical parameters must produce identical
// topologies, demands, and therefore identical optimal plans — experiments
// depend on it.
func TestGeneratorDeterminism(t *testing.T) {
	a := buildSuite(t, "C", testScale)
	b := buildSuite(t, "C", testScale)
	sa, sb := a.Task.Topo.Stats(), b.Task.Topo.Stats()
	if sa.TotalSwitches != sb.TotalSwitches || sa.TotalCircuits != sb.TotalCircuits ||
		sa.Capacity != sb.Capacity {
		t.Fatalf("topology stats differ: %+v vs %+v", sa, sb)
	}
	for i := 0; i < a.Task.Topo.NumSwitches(); i++ {
		if a.Task.Topo.Switch(topo.SwitchID(i)).Name != b.Task.Topo.Switch(topo.SwitchID(i)).Name {
			t.Fatalf("switch %d name differs", i)
		}
	}
	if a.Task.Demands.Total() != b.Task.Demands.Total() {
		t.Fatal("demand totals differ")
	}
	pa, err := core.PlanAStar(a.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := core.PlanAStar(b.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pa.Cost != pb.Cost || len(pa.Sequence) != len(pb.Sequence) {
		t.Fatal("plans differ across identical builds")
	}
	for i := range pa.Sequence {
		if pa.Sequence[i] != pb.Sequence[i] {
			t.Fatalf("plan sequences diverge at %d", i)
		}
	}
}

// TestSplitRolesGranularity checks the |A|=4 action-type ablation: the
// migration stays plannable, costs at least as much as the merged-block
// default (finer crew scheduling cannot be free), and A* keeps agreeing
// with DP.
func TestSplitRolesGranularity(t *testing.T) {
	base := buildSuite(t, "C", testScale)
	split, err := HGRIDScenario("C-split", HGRIDScenarioParams{
		Region:        base.Region.Params,
		SplitRoles:    true,
		V2FADUPerGrid: sc(15, testScale, 2),
		V2FAUUPerGrid: sc(6, testScale, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if split.Task.NumTypes() != 4 {
		t.Fatalf("split-role task has %d types, want 4", split.Task.NumTypes())
	}
	pa, err := core.PlanAStar(split.Task, core.Options{})
	if err != nil {
		t.Fatalf("split-role task unplannable: %v", err)
	}
	pd, err := core.PlanDP(split.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pa.Cost-pd.Cost) > 1e-9 {
		t.Fatalf("A* %v != DP %v on split-role task", pa.Cost, pd.Cost)
	}
	merged, err := core.PlanAStar(base.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pa.Cost < merged.Cost-1e-9 {
		t.Errorf("finer types should not beat merged blocks: %v vs %v", pa.Cost, merged.Cost)
	}
	if err := core.VerifyPlan(split.Task, pa.Sequence, core.Options{}); err != nil {
		t.Fatal(err)
	}
	t.Logf("split-role cost %v (A* %d states) vs merged cost %v (A* %d states)",
		pa.Cost, pa.Metrics.StatesPopped, merged.Cost, merged.Metrics.StatesPopped)
}

// TestJointScenario exercises the §2.2 multiple-DC coupling: two regions
// migrated in one plan, coupled by inter-region demands over WAN circuits.
func TestJointScenario(t *testing.T) {
	paramsA, err := SuiteParams("A", testScale)
	if err != nil {
		t.Fatal(err)
	}
	paramsB, err := SuiteParams("B", testScale)
	if err != nil {
		t.Fatal(err)
	}
	s, err := JointScenario("joint", JointParams{A: paramsA, B: paramsB})
	if err != nil {
		t.Fatal(err)
	}
	if s.Task.NumTypes() != 4 {
		t.Fatalf("joint task has %d types, want 4 (2 per region)", s.Task.NumTypes())
	}
	p, err := core.PlanAStar(s.Task, core.Options{})
	if err != nil {
		t.Fatalf("joint task unplannable: %v", err)
	}
	if err := core.VerifyPlan(s.Task, p.Sequence, core.Options{}); err != nil {
		t.Fatal(err)
	}

	// Each region alone needs some minimum number of runs; the joint plan
	// cannot beat either (their types are disjoint, so joint cost is the
	// sum of per-region run structures).
	sa, err := HGRIDScenario("solo-A", HGRIDScenarioParams{Region: paramsA})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := core.PlanAStar(sa.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost < pa.Cost {
		t.Errorf("joint cost %v below region A's solo cost %v", p.Cost, pa.Cost)
	}
	t.Logf("joint cost %v (A solo %v)", p.Cost, pa.Cost)

	// Inter-region demands must actually cross the WAN: tracing one must
	// succeed on the base state.
	for _, d := range s.Task.Demands.Demands {
		if len(d.Name) > 5 && d.Name[:5] == "inter" {
			eval := routing.NewEvaluator(s.Task.Topo)
			if _, err := eval.Trace(s.Task.Topo.NewView(), d.Src, d.Dst); err != nil {
				t.Fatalf("inter-region demand %s unroutable: %v", d.Name, err)
			}
			break
		}
	}
}
