package gen

import (
	"fmt"

	"klotski/internal/demand"
	"klotski/internal/routing"
	"klotski/internal/topo"
)

// Per-layer capacity shaping.
//
// Production layers are sized deliberately: the layer being migrated is the
// narrow waist, lower layers have rebalancing slack, and the backbone
// boundary is fat. The generators reproduce this by evaluating the base
// traffic placement and then rescaling each layer's (uniform) circuit
// capacity so that the layer's peak utilization hits a prescribed target.
// ECMP placement depends only on topology and metrics — never on capacity —
// so shaping is exact and does not perturb routing.

// LayerOf returns the canonical layer key of a circuit: the two endpoint
// roles joined bottom-up, e.g. "SSW-FADU".
func LayerOf(t *topo.Topology, c *topo.Circuit) string {
	ra, rb := t.Switch(c.A).Role, t.Switch(c.B).Role
	if rb < ra {
		ra, rb = rb, ra
	}
	return ra.String() + "-" + rb.String()
}

// ShapeLayerCapacities rescales every circuit's capacity so that each
// layer's peak utilization under the given demands (in the base activity
// state) equals targets[layer]. Layers missing from targets keep their
// capacities. It returns the per-layer peak utilizations after shaping.
//
// Targets are utilizations at the current demand level; global demand
// calibration afterwards preserves their ratios, so in practice they read
// as "relative tightness": the layer with the highest target becomes the
// binding layer of the generated region.
func ShapeLayerCapacities(t *topo.Topology, ds *demand.Set, targets map[string]float64) (map[string]float64, error) {
	eval := routing.NewEvaluator(t)
	view := t.NewView()
	res, viol := eval.Evaluate(view, ds, routing.CheckOpts{Theta: 1e9})
	if viol.Kind == routing.ViolationUnreachable || res.Unreachable > 0 {
		return nil, fmt.Errorf("gen: cannot shape capacities: %s", viol)
	}

	peak := make(map[string]float64)
	for c := 0; c < t.NumCircuits(); c++ {
		cid := topo.CircuitID(c)
		if !t.CircuitUp(cid) {
			continue
		}
		ck := t.Circuit(cid)
		ab, ba := eval.CircuitLoad(cid)
		if u := (ab + ba) / ck.Capacity; u > peak[LayerOf(t, ck)] {
			peak[LayerOf(t, ck)] = u
		}
	}

	scale := make(map[string]float64)
	for layer, target := range targets {
		if target <= 0 {
			return nil, fmt.Errorf("gen: non-positive shaping target for layer %s", layer)
		}
		if p := peak[layer]; p > 0 {
			scale[layer] = p / target
		}
	}
	out := make(map[string]float64)
	for c := 0; c < t.NumCircuits(); c++ {
		ck := t.Circuit(topo.CircuitID(c))
		layer := LayerOf(t, ck)
		if f, ok := scale[layer]; ok {
			t.SetCapacity(ck.ID, ck.Capacity*f)
		}
	}
	for layer, p := range peak {
		if _, ok := scale[layer]; ok {
			out[layer] = targets[layer]
		} else {
			out[layer] = p
		}
	}
	return out, nil
}

// layerCapacity returns the capacity of the first base-active circuit whose
// endpoints have the given roles — the uniform per-circuit capacity of that
// layer after shaping. It panics when the layer has no circuits, which
// always indicates a generator bug.
func layerCapacity(t *topo.Topology, a, b topo.Role) float64 {
	for c := 0; c < t.NumCircuits(); c++ {
		cid := topo.CircuitID(c)
		ck := t.Circuit(cid)
		ra, rb := t.Switch(ck.A).Role, t.Switch(ck.B).Role
		if (ra == a && rb == b) || (ra == b && rb == a) {
			if t.CircuitUp(cid) {
				return ck.Capacity
			}
		}
	}
	panic(fmt.Sprintf("gen: no active %s-%s circuit in topology", a, b))
}

// Default shaping targets per scenario kind. The migrated layer carries the
// highest target (it becomes the binding layer); adjacent layers sit close
// enough that wide drains spill over, lower layers have rebalancing slack,
// and rack uplinks plus the backbone never bind.
var (
	// The migrated SSW-FADU layer binds; the layers above it sit well
	// clear, because their EB-attachment pattern is not plane-symmetric —
	// if they were near-binding, which *set* of grids is down would matter
	// beyond the per-type counts, breaking the within-type
	// interchangeability that Klotski's compact representation (and the
	// operation-block policy, paper §4.1) relies on.
	hgridShape = map[string]float64{
		"RSW-FSW":   0.15,
		"FSW-SSW":   0.80,
		"SSW-FADU":  1.00,
		"FADU-FAUU": 0.60,
		"FAUU-EB":   0.60,
		"EB-DR":     0.30,
		"DR-EBB":    0.30,
	}
	forkliftShape = map[string]float64{
		"RSW-FSW":   0.15,
		"FSW-SSW":   0.85,
		"SSW-FADU":  1.00,
		"FADU-FAUU": 0.60,
		"FAUU-EB":   0.60,
		"EB-DR":     0.30,
		"DR-EBB":    0.30,
	}
	dmagShape = map[string]float64{
		"RSW-FSW":   0.15,
		"FSW-SSW":   0.60,
		"SSW-FADU":  0.70,
		"FADU-FAUU": 0.80,
		"FAUU-EB":   1.00,
		"EB-DR":     0.30,
		"DR-EBB":    0.30,
	}
)
