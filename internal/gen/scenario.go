package gen

import (
	"fmt"

	"klotski/internal/demand"
	"klotski/internal/migration"
	"klotski/internal/routing"
	"klotski/internal/topo"
)

// Scenario is a ready-to-plan migration: a task over a generated region,
// with calibrated demands.
type Scenario struct {
	Name        string
	Description string
	Task        *migration.Task
	Region      *Region

	// BaseUtil is the maximum circuit utilization of the pre-migration
	// network after demand calibration.
	BaseUtil float64
}

// DemandSpec parameterizes synthetic demand generation. The three demand
// kinds follow the paper's methodology (§6.1): RSW→EBB (egress), EBB→RSW
// (ingress), and RSW→RSW (east-west, cross-DC).
type DemandSpec struct {
	SourcesPerDC int     // representative RSWs per DC (default 2)
	UpWeight     float64 // relative egress volume per source (default 1)
	DownWeight   float64 // relative ingress volume per source (default 0.8)
	EastWeight   float64 // relative east-west volume per DC pair (default 1.5)

	// BaseUtil is the target maximum circuit utilization of the
	// pre-migration network; demand rates are scaled so the most loaded
	// circuit sits exactly here (default 0.40, leaving enough headroom
	// that migrations stay plannable down to the θ = 0.55 end of the
	// paper's Fig. 12 sweep).
	BaseUtil float64
}

func (s *DemandSpec) setDefaults() {
	if s.SourcesPerDC == 0 {
		s.SourcesPerDC = 2
	}
	if s.UpWeight == 0 {
		s.UpWeight = 1
	}
	if s.DownWeight == 0 {
		s.DownWeight = 0.8
	}
	if s.EastWeight == 0 {
		s.EastWeight = 1.5
	}
	if s.BaseUtil == 0 {
		s.BaseUtil = 0.40
	}
}

// BuildDemands synthesizes a demand set over the region per the spec. The
// set deliberately uses few distinct destinations — satisfiability-check
// cost is linear in that count — while still exercising every layer:
// egress and ingress cross the HGRID and backbone boundary; east-west
// crosses the HGRID between DCs.
func BuildDemands(r *Region, spec DemandSpec) demand.Set {
	spec.setDefaults()
	var ds demand.Set
	reps := representativeRSWs(r, spec.SourcesPerDC)
	nEBB := len(r.EBBSw)

	for d, rsws := range reps {
		for i, rsw := range rsws {
			ebb := r.EBBSw[(d+i)%nEBB]
			ds.Add(demand.Demand{
				Name: fmt.Sprintf("up-d%d-%d", d, i),
				Src:  rsw, Dst: ebb, Rate: spec.UpWeight,
			})
			ds.Add(demand.Demand{
				Name: fmt.Sprintf("down-d%d-%d", d, i),
				Src:  ebb, Dst: rsw, Rate: spec.DownWeight,
			})
		}
	}
	// East-west: one demand per adjacent DC pair, between representatives
	// already in use (keeping the distinct-destination count bounded).
	nDC := len(reps)
	for d := 0; d+1 < nDC; d++ {
		src := reps[d][0]
		dst := reps[d+1][0]
		ds.Add(demand.Demand{
			Name: fmt.Sprintf("east-d%d-d%d", d, d+1),
			Src:  src, Dst: dst, Rate: spec.EastWeight,
		})
		ds.Add(demand.Demand{
			Name: fmt.Sprintf("west-d%d-d%d", d+1, d),
			Src:  dst, Dst: src, Rate: spec.EastWeight,
		})
	}
	return ds
}

// representativeRSWs picks spread-out rack switches per DC: one from every
// len/sources-th position of the DC's RSW list, which the generators lay
// out pod-major so the picks land in different pods.
func representativeRSWs(r *Region, perDC int) [][]topo.SwitchID {
	out := make([][]topo.SwitchID, len(r.RSWs))
	for d, rsws := range r.RSWs {
		n := perDC
		if n > len(rsws) {
			n = len(rsws)
		}
		for i := 0; i < n; i++ {
			out[d] = append(out[d], rsws[i*len(rsws)/n])
		}
	}
	return out
}

// Calibrate scales the demand set so the most utilized circuit of the base
// network state sits at exactly targetUtil. It returns the scaled set and
// the pre-scaling maximum utilization, or an error when any demand is
// unroutable in the base state.
func Calibrate(t *topo.Topology, ds demand.Set, targetUtil float64) (demand.Set, float64, error) {
	eval := routing.NewEvaluator(t)
	view := t.NewView()
	res, viol := eval.Evaluate(view, &ds, routing.CheckOpts{Theta: 1e9})
	if viol.Kind == routing.ViolationUnreachable || res.Unreachable > 0 {
		return demand.Set{}, 0, fmt.Errorf("gen: base topology cannot route demands: %s", viol)
	}
	if res.MaxUtil <= 0 {
		return demand.Set{}, 0, fmt.Errorf("gen: base topology carries no load; cannot calibrate")
	}
	return ds.Scaled(targetUtil / res.MaxUtil), res.MaxUtil, nil
}

// finishScenario validates the task, calibrates the (already built,
// already shaping-evaluated) demands, and wraps everything into a Scenario.
func finishScenario(name, desc string, r *Region, task *migration.Task, spec DemandSpec, ds demand.Set) (*Scenario, error) {
	spec.setDefaults()
	ds, _, err := Calibrate(r.Topo, ds, spec.BaseUtil)
	if err != nil {
		return nil, err
	}
	task.Demands = ds
	if err := r.Topo.Validate(); err != nil {
		return nil, err
	}
	if err := task.Validate(); err != nil {
		return nil, err
	}
	return &Scenario{
		Name:        name,
		Description: desc,
		Task:        task,
		Region:      r,
		BaseUtil:    spec.BaseUtil,
	}, nil
}
