package gen

import (
	"fmt"

	"klotski/internal/migration"
	"klotski/internal/topo"
)

// HGRIDScenarioParams parameterizes the HGRID V1→V2 migration (paper §2.4,
// Fig. 3a): every v1 grid is decommissioned and replaced by a new
// generation with more, smaller nodes and larger aggregate capacity.
type HGRIDScenarioParams struct {
	Region RegionParams
	Demand DemandSpec

	// V2GridFactor is how many v2 grids replace each v1 grid (default 2 —
	// the disaggregated generation has more nodes, Fig. 2c).
	V2GridFactor int

	// V2CapFactor is the per-circuit capacity of v2 links relative to v1
	// (default 0.55: smaller per node, but V2GridFactor×V2CapFactor > 1
	// total, "larger capacity").
	V2CapFactor float64

	// V2FADUPerGrid and V2FAUUPerGrid size the new grids (defaults: ¾ of
	// the v1 grid's, reflecting smaller disaggregated nodes).
	V2FADUPerGrid int
	V2FAUUPerGrid int

	// PortHeadroomGrids is how many v2 grids' worth of downlink ports each
	// SSW has spare before any v1 drain frees ports (default 1). This is
	// the hard physical constraint that forces drains and undrains to
	// interleave (§2.3 "port constraints").
	PortHeadroomGrids int

	// SplitRoles keeps a grid's FADU and FAUU sub-switches in separate
	// operation blocks with separate action types (|A| = 4 instead of 2).
	// The paper's production policy merges them (Fig. 5: "merge six
	// operations on symmetry blocks to one operation on the operation
	// block"); this option exists for the action-type-granularity ablation
	// — more types mean finer crew scheduling, a deeper search space, and
	// a heuristic with more dynamic range.
	SplitRoles bool
}

func (p *HGRIDScenarioParams) setDefaults() {
	if p.V2GridFactor == 0 {
		p.V2GridFactor = 2
	}
	if p.V2CapFactor == 0 {
		// 0.55 per link × factor 2 grids = 1.1× total capacity after the
		// migration ("larger capacity"), but only 0.55× while just the
		// first half of the v2 grids is up — which is what forces drains
		// and undrains to interleave in capacity-bound waves.
		p.V2CapFactor = 0.55
	}
	if p.V2FADUPerGrid == 0 {
		p.V2FADUPerGrid = (p.Region.HGRID.FADUPerGrid*3 + 3) / 4
	}
	if p.V2FAUUPerGrid == 0 {
		p.V2FAUUPerGrid = (p.Region.HGRID.FAUUPerGrid*3 + 3) / 4
	}
	if p.PortHeadroomGrids == 0 {
		p.PortHeadroomGrids = 1
	}
}

// HGRIDScenario builds the HGRID V1→V2 migration task: the v2 grids are
// added to the universe inactive, SSWs are wired to both generations, and
// SSW port budgets are set so only PortHeadroomGrids v2 grids fit before a
// v1 drain frees ports. Operation blocks are one per grid, per the
// production organization policy (§5): drain-v1-grid and undrain-v2-grid.
func HGRIDScenario(name string, p HGRIDScenarioParams) (*Scenario, error) {
	p.Region.setDefaults()
	p.setDefaults()
	r := BuildRegion(p.Region)
	t := r.Topo
	h := p.Region.HGRID
	g1 := h.Grids
	g2 := g1 * p.V2GridFactor

	// Demands are built before shaping so the shaping evaluation sees the
	// real traffic; shaping then makes the SSW-FADU layer the region's
	// narrow waist (see shape.go).
	ds := BuildDemands(r, p.Demand)
	if _, err := ShapeLayerCapacities(t, &ds, hgridShape); err != nil {
		return nil, err
	}

	// v2 circuit capacities derive from the shaped v1 capacities: each v2
	// link carries V2CapFactor of its v1 counterpart, and grid-internal /
	// uplink capacities are scaled so a full v2 grid pair provides
	// V2GridFactor × V2CapFactor of the v1 grid it replaces.
	linkCap := layerCapacity(t, topo.RoleSSW, topo.RoleFADU)
	internalCap := layerCapacity(t, topo.RoleFADU, topo.RoleFAUU)
	uplinkCap := layerCapacity(t, topo.RoleFAUU, topo.RoleEB)
	v2cap := linkCap * p.V2CapFactor
	v2internal := internalCap * p.V2CapFactor *
		float64(h.FADUPerGrid*h.FAUUPerGrid) / float64(p.V2FADUPerGrid*p.V2FAUUPerGrid)
	v2uplink := uplinkCap * p.V2CapFactor * float64(h.FAUUPerGrid) / float64(p.V2FAUUPerGrid)

	// Build the v2 grids, inactive: switches exist physically (space has
	// been prepared) but carry no traffic until undrained.
	v2grids := make([]Grid, g2)
	for g := 0; g < g2; g++ {
		grid := Grid{}
		for i := 0; i < p.V2FADUPerGrid; i++ {
			id := t.AddSwitch(topo.Switch{
				Name: fmt.Sprintf("fadu-v2-g%d-%d", g, i), Role: topo.RoleFADU,
				DC: -1, Pod: -1, Plane: -1, Grid: g1 + g, Generation: h.Generation + 1,
			})
			t.SetSwitchActive(id, false)
			grid.FADUs = append(grid.FADUs, id)
		}
		for i := 0; i < p.V2FAUUPerGrid; i++ {
			id := t.AddSwitch(topo.Switch{
				Name: fmt.Sprintf("fauu-v2-g%d-%d", g, i), Role: topo.RoleFAUU,
				DC: -1, Pod: -1, Plane: -1, Grid: g1 + g, Generation: h.Generation + 1,
			})
			t.SetSwitchActive(id, false)
			grid.FAUUs = append(grid.FAUUs, id)
			for _, fd := range grid.FADUs {
				t.AddCircuit(fd, id, v2internal)
			}
			n := 2
			if n > p.Region.EBs {
				n = p.Region.EBs
			}
			for k := 0; k < n; k++ {
				t.AddCircuit(id, r.EBSw[(g+i+k*(p.Region.EBs/2+1))%p.Region.EBs], v2uplink)
			}
		}
		v2grids[g] = grid
	}

	// Wire every SSW to its v2 grids: the SSW attached to v1 grid gBase
	// serves v2 grids {gBase + k·g1}. Port budgets are set afterwards from
	// the *active* (v1) degree, so the extra physical wiring is what the
	// migration plan must fit within the port budget over time.
	for d := range r.SSWs {
		for q := range r.SSWs[d] {
			for j, ssw := range r.SSWs[d][q] {
				gBase := v1GridOf(q, j, g1, len(r.SSWs[d]))
				for k := 0; k < p.V2GridFactor; k++ {
					grid := &v2grids[gBase+k*g1]
					for l := 0; l < h.SSWDownlinks; l++ {
						fadu := grid.FADUs[(j+l)%len(grid.FADUs)]
						t.AddCircuit(ssw, fadu, v2cap)
					}
				}
				budget := t.ActiveDegree(ssw) + p.PortHeadroomGrids*h.SSWDownlinks
				t.SetPorts(ssw, budget)
			}
		}
	}

	// Task: one operation block per grid (or per grid × role under
	// SplitRoles). Canonical drain order walks grids 0..g1−1, one per
	// plane residue, matching how field crews phase the rollout.
	task := &migration.Task{Name: name, Topo: t}
	if p.SplitRoles {
		buildSplitRoleBlocks(task, r, v2grids, g1, p.V2GridFactor)
	} else {
		drainType := task.AddType(migration.ActionTypeInfo{
			Name: "drain-hgrid-v1-grid", Op: migration.Drain, Role: topo.RoleFADU,
		})
		undrainType := task.AddType(migration.ActionTypeInfo{
			Name: "undrain-hgrid-v2-grid", Op: migration.Undrain, Role: topo.RoleFADU,
		})
		for g := 0; g < g1; g++ {
			task.AddBlock(migration.Block{
				Type: drainType, Name: fmt.Sprintf("v1-grid-%d", g), DC: -1,
				Switches: r.Grids[g].Switches(),
			})
		}
		// One undrain block per stripe, containing every v2 grid that
		// replaces the stripe's v1 grid. Operation blocks must be
		// interchangeable within their action type for the compact
		// representation to be lossless (paper §4.1–4.2); splitting a
		// stripe's replacement across blocks would make block order matter
		// through the shared SSW ports. The port budget (one spare grid's
		// worth of downlinks) then forces the real structure: a stripe's
		// replacement cannot onboard until its v1 grid drains, so plans
		// alternate capacity-bounded drain waves with the matching
		// onboarding waves.
		for gBase := 0; gBase < g1; gBase++ {
			var sw []topo.SwitchID
			for k := 0; k < p.V2GridFactor; k++ {
				sw = append(sw, v2grids[gBase+k*g1].Switches()...)
			}
			task.AddBlock(migration.Block{
				Type: undrainType, Name: fmt.Sprintf("v2-stripe-%d", gBase), DC: -1,
				Switches: sw,
			})
		}
	}

	desc := fmt.Sprintf("HGRID V1→V2: replace %d v1 grids with %d v2 grids (cap ×%.2g per link)",
		g1, g2, p.V2CapFactor)
	return finishScenario(name, desc, r, task, p.Demand, ds)
}

// buildSplitRoleBlocks interns four action types — drain/undrain ×
// FADU/FAUU — and emits one block per grid (or stripe) per role. FAUUs
// drain before their grid's FADUs become useless and undrain after the new
// FADUs land, but the planner discovers that ordering itself; nothing here
// encodes it.
func buildSplitRoleBlocks(task *migration.Task, r *Region, v2grids []Grid, g1, factor int) {
	drainFADU := task.AddType(migration.ActionTypeInfo{
		Name: "drain-hgrid-v1-fadu", Op: migration.Drain, Role: topo.RoleFADU,
	})
	drainFAUU := task.AddType(migration.ActionTypeInfo{
		Name: "drain-hgrid-v1-fauu", Op: migration.Drain, Role: topo.RoleFAUU,
	})
	undrainFADU := task.AddType(migration.ActionTypeInfo{
		Name: "undrain-hgrid-v2-fadu", Op: migration.Undrain, Role: topo.RoleFADU,
	})
	undrainFAUU := task.AddType(migration.ActionTypeInfo{
		Name: "undrain-hgrid-v2-fauu", Op: migration.Undrain, Role: topo.RoleFAUU,
	})
	for g := 0; g < g1; g++ {
		task.AddBlock(migration.Block{
			Type: drainFADU, Name: fmt.Sprintf("v1-grid-%d-fadu", g), DC: -1,
			Switches: append([]topo.SwitchID(nil), r.Grids[g].FADUs...),
		})
	}
	for g := 0; g < g1; g++ {
		task.AddBlock(migration.Block{
			Type: drainFAUU, Name: fmt.Sprintf("v1-grid-%d-fauu", g), DC: -1,
			Switches: append([]topo.SwitchID(nil), r.Grids[g].FAUUs...),
		})
	}
	for gBase := 0; gBase < g1; gBase++ {
		var fadus, fauus []topo.SwitchID
		for k := 0; k < factor; k++ {
			fadus = append(fadus, v2grids[gBase+k*g1].FADUs...)
			fauus = append(fauus, v2grids[gBase+k*g1].FAUUs...)
		}
		task.AddBlock(migration.Block{
			Type: undrainFADU, Name: fmt.Sprintf("v2-stripe-%d-fadu", gBase), DC: -1,
			Switches: fadus,
		})
		task.AddBlock(migration.Block{
			Type: undrainFAUU, Name: fmt.Sprintf("v2-stripe-%d-fauu", gBase), DC: -1,
			Switches: fauus,
		})
	}
}
