package gen

import (
	"fmt"

	"klotski/internal/demand"
	"klotski/internal/migration"
	"klotski/internal/topo"
)

// Joint multi-region migration (paper §2.2, "Consider multiple DCs").
//
// When two regions are migrated in the same period, their plans are
// coupled through the inter-region traffic: a region's drained capacity is
// also lost to the WAN flows that transit it, so per-region planning can
// produce combinations of states that are individually safe and jointly
// not. JointScenario merges two HGRID scenarios into one planning problem:
// one topology universe, the two regions' EBBs interconnected by WAN
// circuits, inter-region demands riding them, and the regions' operation
// blocks carrying distinct action types (distinct field crews).

// JointParams parameterizes a joint two-region migration.
type JointParams struct {
	// A and B are the constituent scenarios' region parameters (both
	// undergo HGRID V1→V2 migration).
	A, B RegionParams

	// WANCircuits is the number of EBB↔EBB circuits between the regions
	// (default: one per EBB pair, round-robin).
	WANCircuits int

	// InterRegionWeight sizes the inter-region demands relative to the
	// per-region demand weights (default 1.0).
	InterRegionWeight float64

	Demand DemandSpec
}

// JointScenario builds the merged two-region migration task.
func JointScenario(name string, p JointParams) (*Scenario, error) {
	if p.InterRegionWeight == 0 {
		p.InterRegionWeight = 1
	}
	p.Demand.setDefaults()

	// Build each region's scenario independently (unshaped demands are
	// replaced below, so BaseUtil here only affects intermediate
	// calibration that we redo on the merged universe).
	sa, err := HGRIDScenario(name+"-A", HGRIDScenarioParams{Region: p.A, Demand: p.Demand})
	if err != nil {
		return nil, fmt.Errorf("gen: joint region A: %w", err)
	}
	sb, err := HGRIDScenario(name+"-B", HGRIDScenarioParams{Region: p.B, Demand: p.Demand})
	if err != nil {
		return nil, fmt.Errorf("gen: joint region B: %w", err)
	}

	merged, swOffset, _ := topo.Merge(name, "a/", sa.Task.Topo, "b/", sb.Task.Topo)

	// Interconnect the regions at the EBB layer. WAN capacity is sized
	// from the smaller region's EBB attachment so inter-region demands are
	// carried comfortably but not freely.
	ebbA := remapIDs(sa.Region.EBBSw, 0)
	ebbB := remapIDs(sb.Region.EBBSw, swOffset)
	wan := p.WANCircuits
	if wan == 0 {
		wan = max(len(ebbA), len(ebbB))
	}
	wanCap := layerCapacity(merged, topo.RoleDR, topo.RoleEBB) * 2
	for i := 0; i < wan; i++ {
		merged.AddCircuit(ebbA[i%len(ebbA)], ebbB[i%len(ebbB)], wanCap)
	}

	// The joint task: both regions' blocks, with per-region action types.
	task := &migration.Task{Name: name, Topo: merged}
	remapTask(task, sa.Task, "a/", 0)
	remapTask(task, sb.Task, "b/", swOffset)

	// Demands: both regions' sets (remapped), plus inter-region flows
	// between representative RSWs across the WAN.
	var ds demand.Set
	for _, d := range sa.Task.Demands.Demands {
		d.Name = "a/" + d.Name
		ds.Add(d)
	}
	for _, d := range sb.Task.Demands.Demands {
		d.Name = "b/" + d.Name
		d.Src += swOffset
		d.Dst += swOffset
		ds.Add(d)
	}
	repsA := representativeRSWs(sa.Region, p.Demand.SourcesPerDC)
	repsB := representativeRSWs(sb.Region, p.Demand.SourcesPerDC)
	for i := 0; i < min(len(repsA), len(repsB)); i++ {
		src := repsA[i][0]
		dst := repsB[i][0] + swOffset
		rate := p.InterRegionWeight
		ds.Add(demand.Demand{Name: fmt.Sprintf("inter-a%d-b%d", i, i), Src: src, Dst: dst, Rate: rate})
		ds.Add(demand.Demand{Name: fmt.Sprintf("inter-b%d-a%d", i, i), Src: dst, Dst: src, Rate: rate})
	}

	// Re-calibrate on the merged universe so the joint base state peaks at
	// the configured utilization.
	ds, _, err = Calibrate(merged, ds, p.Demand.BaseUtil)
	if err != nil {
		return nil, err
	}
	task.Demands = ds
	if err := merged.Validate(); err != nil {
		return nil, err
	}
	if err := task.Validate(); err != nil {
		return nil, err
	}

	// Keep region A's structural references for callers that need them;
	// the merged Region is synthetic.
	region := &Region{Params: p.A, Topo: merged}
	return &Scenario{
		Name: name,
		Description: fmt.Sprintf("joint migration of two regions (%d + %d blocks, %d WAN circuits)",
			sa.Task.NumActions(), sb.Task.NumActions(), wan),
		Task:     task,
		Region:   region,
		BaseUtil: p.Demand.BaseUtil,
	}, nil
}

// remapTask copies src's types and blocks into dst with prefixed type
// names and offset IDs.
func remapTask(dst *migration.Task, src *migration.Task, prefix string, swOffset topo.SwitchID) {
	typeMap := make([]migration.ActionType, len(src.Types))
	for i, info := range src.Types {
		info.Name = prefix + info.Name
		typeMap[i] = dst.AddType(info)
	}
	for i := range src.Blocks {
		b := src.Blocks[i]
		nb := migration.Block{
			Type: typeMap[b.Type],
			Name: prefix + b.Name,
			DC:   b.DC,
		}
		for _, s := range b.Switches {
			nb.Switches = append(nb.Switches, s+swOffset)
		}
		// Circuit-only blocks do not occur in HGRID scenarios; circuit IDs
		// would need their own offset if they did.
		if len(b.Circuits) > 0 {
			panic("gen: joint scenarios do not support circuit-only blocks")
		}
		dst.AddBlock(nb)
	}
}

func remapIDs(ids []topo.SwitchID, offset topo.SwitchID) []topo.SwitchID {
	out := make([]topo.SwitchID, len(ids))
	for i, id := range ids {
		out[i] = id + offset
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
