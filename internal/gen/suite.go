package gen

import (
	"fmt"
	"math"
	"sort"
)

// The Table-3 topology suite: five production-scale topologies A–E in
// ascending size, plus the E-DMAG and E-SSW migration variants of §6.3.
// At scale = 1 the generated sizes approximate the paper's Table 3
// (40–10,000 switches, 80–100,000 circuits, 50–700 switch-level actions);
// smaller scales shrink every dimension proportionally with sensible
// floors, for laptop-sized runs of the full evaluation harness.

// SuiteNames lists the scenario names accepted by Suite, in Table-3 order.
func SuiteNames() []string {
	names := make([]string, 0, len(suiteBuilders))
	for n := range suiteBuilders {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return suiteOrder[names[i]] < suiteOrder[names[j]] })
	return names
}

var suiteOrder = map[string]int{
	"A": 0, "B": 1, "C": 2, "D": 3, "E": 4, "E-DMAG": 5, "E-SSW": 6,
}

var suiteBuilders = map[string]func(scale float64) (*Scenario, error){
	"A":      TopologyA,
	"B":      TopologyB,
	"C":      TopologyC,
	"D":      TopologyD,
	"E":      TopologyE,
	"E-DMAG": EDMAG,
	"E-SSW":  ESSW,
}

// Suite builds one of the named evaluation scenarios at the given scale
// (1 = paper-sized, smaller values shrink proportionally).
func Suite(name string, scale float64) (*Scenario, error) {
	b, ok := suiteBuilders[name]
	if !ok {
		return nil, fmt.Errorf("gen: unknown suite scenario %q (have %v)", name, SuiteNames())
	}
	return b(scale)
}

// sc scales a count with a floor.
func sc(base int, scale float64, min int) int {
	n := int(math.Round(float64(base) * scale))
	if n < min {
		n = min
	}
	return n
}

// TopologyA builds the smallest Table-3 case: a single-building region
// (~40 switches, ~80 circuits) under HGRID V1→V2 migration (~50 actions).
func TopologyA(scale float64) (*Scenario, error) {
	return HGRIDScenario("A", HGRIDScenarioParams{
		Region: RegionParams{
			Name: "region-A",
			DCs: []FabricParams{
				{Pods: sc(2, scale, 1), RSWPerPod: sc(2, scale, 1), Planes: 4,
					SSWPerPlane: sc(2, scale, 1), FSWUplinks: 1},
			},
			HGRID: HGRIDParams{Grids: 4, FADUPerGrid: sc(2, scale, 1),
				FAUUPerGrid: sc(2, scale, 1), SSWDownlinks: 1},
			EBs: 2, DRs: 1, EBBs: 1,
			EBCap: 40, DRCap: 80,
		},
		V2FADUPerGrid: sc(2, scale, 1),
		V2FAUUPerGrid: 1,
	})
}

// TopologyB builds the second Table-3 case: two buildings
// (~100 switches, ~600 circuits, ~100 actions).
func TopologyB(scale float64) (*Scenario, error) {
	fab := FabricParams{Pods: sc(4, scale, 1), RSWPerPod: sc(3, scale, 1), Planes: 4,
		SSWPerPlane: sc(4, scale, 2), FSWUplinks: sc(4, scale, 1)}
	return HGRIDScenario("B", HGRIDScenarioParams{
		Region: RegionParams{
			Name: "region-B",
			DCs:  []FabricParams{fab, fab},
			HGRID: HGRIDParams{Grids: 4, FADUPerGrid: sc(8, scale, 2),
				FAUUPerGrid: sc(2, scale, 1), SSWDownlinks: 2},
			EBs: 4, DRs: 2, EBBs: 2,
			EBCap: 40, DRCap: 80,
		},
	})
}

// TopologyC builds the third Table-3 case: three buildings
// (~600 switches, ~8,000 circuits, ~300 actions).
func TopologyC(scale float64) (*Scenario, error) {
	fab := FabricParams{Pods: sc(12, scale, 2), RSWPerPod: sc(8, scale, 2), Planes: 4,
		SSWPerPlane: sc(8, scale, 2), FSWUplinks: sc(8, scale, 2)}
	return HGRIDScenario("C", HGRIDScenarioParams{
		Region: RegionParams{
			Name: "region-C",
			DCs:  []FabricParams{fab, fab, fab},
			HGRID: HGRIDParams{Grids: 4, FADUPerGrid: sc(20, scale, 2),
				FAUUPerGrid: sc(8, scale, 1), SSWDownlinks: 2},
			EBs: 8, DRs: 4, EBBs: 2,
			EBCap: 40, DRCap: 80,
		},
		V2FADUPerGrid: sc(15, scale, 2),
		V2FAUUPerGrid: sc(6, scale, 1),
	})
}

// TopologyD builds the fourth Table-3 case: four buildings, one of them an
// upgraded 8-plane generation (the mixed-generation complication of §2.2),
// ~1,000 switches, ~20,000 circuits, ~300 actions.
func TopologyD(scale float64) (*Scenario, error) {
	fab4 := FabricParams{Pods: sc(16, scale, 2), RSWPerPod: sc(10, scale, 2), Planes: 4,
		SSWPerPlane: sc(12, scale, 4), FSWUplinks: sc(12, scale, 2)}
	fab8 := FabricParams{Pods: sc(16, scale, 2), RSWPerPod: sc(10, scale, 2), Planes: 8,
		SSWPerPlane: sc(6, scale, 2), FSWUplinks: sc(6, scale, 1)}
	return HGRIDScenario("D", HGRIDScenarioParams{
		Region: RegionParams{
			Name: "region-D",
			DCs:  []FabricParams{fab4, fab4, fab4, fab8},
			HGRID: HGRIDParams{Grids: 4, FADUPerGrid: sc(20, scale, 2),
				FAUUPerGrid: sc(6, scale, 1), SSWDownlinks: 2},
			EBs: 8, DRs: 4, EBBs: 2,
			EBCap: 60, DRCap: 120,
		},
		V2FADUPerGrid: sc(15, scale, 2),
		V2FAUUPerGrid: sc(5, scale, 1),
	})
}

// eRegion is the Table-3 "E" region, comparable to a full Meta DCN region:
// six buildings (one upgraded to 8 planes), a 32-grid HGRID, and a
// 16-EB backbone boundary. At scale 1 it has ≈10,000 switches.
func eRegion(scale float64) RegionParams {
	fab4 := FabricParams{Pods: sc(40, scale, 2), RSWPerPod: sc(31, scale, 2), Planes: 4,
		SSWPerPlane: sc(36, scale, 4), FSWUplinks: sc(36, scale, 2)}
	fab8 := FabricParams{Pods: sc(40, scale, 2), RSWPerPod: sc(31, scale, 2), Planes: 8,
		SSWPerPlane: sc(18, scale, 2), FSWUplinks: sc(18, scale, 1)}
	return RegionParams{
		Name: "region-E",
		DCs:  []FabricParams{fab4, fab4, fab4, fab4, fab4, fab8},
		// The grid count is structural, not scaled: 32 grids give every
		// 4-plane DC 8 stripes per plane (and the 8-plane DC 4), which is
		// what lets ECMP dilute a drained stripe across its siblings.
		HGRID: HGRIDParams{Grids: 32, FADUPerGrid: sc(8, scale, 2),
			FAUUPerGrid: sc(3, scale, 1), SSWDownlinks: 2},
		EBs: sc(16, scale, 4), DRs: sc(8, scale, 2), EBBs: sc(4, scale, 2),
		EBCap: 80, DRCap: 160,
	}
}

// TopologyE builds the largest Table-3 case under HGRID V1→V2 migration
// (~10,000 switches, ~700 actions).
func TopologyE(scale float64) (*Scenario, error) {
	return HGRIDScenario("E", HGRIDScenarioParams{
		Region:        eRegion(scale),
		V2FADUPerGrid: sc(4, scale, 2),
		V2FAUUPerGrid: sc(2, scale, 1),
	})
}

// EDMAG builds the E-DMAG case: the E region under DMAG migration
// (~100 actions; topology-changing, unplannable by MRC and Janus).
func EDMAG(scale float64) (*Scenario, error) {
	return DMAGScenario("E-DMAG", DMAGParams{Region: eRegion(scale)})
}

// ESSW builds the E-SSW case: the E region under an SSW forklift of one
// 4-plane building (~300 actions).
func ESSW(scale float64) (*Scenario, error) {
	return ForkliftScenario("E-SSW", ForkliftParams{Region: eRegion(scale), DC: 0})
}

// SuiteParams returns a suite topology's region parameters at the given
// scale, for building derived scenarios (joint migrations, custom demand
// specs, role-split ablations) without rebuilding the whole scenario.
func SuiteParams(name string, scale float64) (RegionParams, error) {
	s, err := Suite(name, scale)
	if err != nil {
		return RegionParams{}, err
	}
	return s.Region.Params, nil
}
