package gen

import (
	"fmt"

	"klotski/internal/migration"
	"klotski/internal/topo"
)

// ForkliftParams parameterizes the SSW forklift migration (paper §2.4,
// Fig. 3b): every spine switch in one DC is replaced by new-generation
// hardware with more capacity, in place.
type ForkliftParams struct {
	Region RegionParams
	Demand DemandSpec

	// DC selects which building's spines to forklift (default 0).
	DC int

	// GroupsPerPlane is the number of operation blocks each plane's SSWs
	// are split into (the §5 organization policy: "we split SSWs on a
	// plane into several operation blocks, considering the traffic
	// demand"). Default 4.
	GroupsPerPlane int

	// NewCapFactor is the capacity multiplier of new-generation circuits
	// (default 1.5).
	NewCapFactor float64

	// PortHeadroomFrac is the fraction of a neighbor's new-generation
	// links that fit before old drains free ports (default 0.5).
	PortHeadroomFrac float64
}

func (p *ForkliftParams) setDefaults() {
	if p.GroupsPerPlane == 0 {
		p.GroupsPerPlane = 4
	}
	if p.NewCapFactor == 0 {
		p.NewCapFactor = 1.5
	}
	if p.PortHeadroomFrac == 0 {
		p.PortHeadroomFrac = 0.5
	}
}

// ForkliftScenario builds the SSW forklift task: new SSWs mirror the old
// wiring (same FSW and FADU neighbors) at NewCapFactor capacity, and the
// FSW/FADU port budgets only admit a fraction of the new links until old
// SSWs drain. Blocks are per-plane groups ordered round-robin across
// planes, so operating a canonical prefix degrades every plane evenly.
func ForkliftScenario(name string, p ForkliftParams) (*Scenario, error) {
	p.Region.setDefaults()
	p.setDefaults()
	r := BuildRegion(p.Region)
	t := r.Topo
	d := p.DC
	if d < 0 || d >= len(r.SSWs) {
		return nil, fmt.Errorf("gen: forklift DC %d out of range (%d DCs)", d, len(r.SSWs))
	}

	// Shape capacities before mirroring so new-generation circuits copy
	// the shaped values.
	ds := BuildDemands(r, p.Demand)
	if _, err := ShapeLayerCapacities(t, &ds, forkliftShape); err != nil {
		return nil, err
	}

	// Track how many new links each neighbor will receive so its port
	// budget can be set afterwards.
	newLinks := make(map[topo.SwitchID]int)

	// Create new-generation SSWs mirroring the old wiring.
	newSSWs := make([][]topo.SwitchID, len(r.SSWs[d]))
	for q := range r.SSWs[d] {
		for j, old := range r.SSWs[d][q] {
			id := t.AddSwitch(topo.Switch{
				Name: fmt.Sprintf("d%d-ssw2-q%d-%d", d, q, j), Role: topo.RoleSSW,
				DC: d, Pod: -1, Plane: q, Grid: -1, Generation: 2,
			})
			t.SetSwitchActive(id, false)
			newSSWs[q] = append(newSSWs[q], id)
			for _, cid := range t.Switch(old).Circuits() {
				c := t.Circuit(cid)
				nb := c.Other(old)
				t.AddCircuit(id, nb, c.Capacity*p.NewCapFactor)
				newLinks[nb]++
			}
		}
	}

	// Port budgets on the neighbors (FSWs and FADUs): current active
	// degree plus a fraction of the incoming new links.
	for nb, n := range newLinks {
		headroom := int(float64(n)*p.PortHeadroomFrac + 0.999)
		t.SetPorts(nb, t.ActiveDegree(nb)+headroom)
	}

	task := &migration.Task{Name: name, Topo: t}
	drainType := task.AddType(migration.ActionTypeInfo{
		Name: "drain-ssw-gen1", Op: migration.Drain, Role: topo.RoleSSW,
	})
	undrainType := task.AddType(migration.ActionTypeInfo{
		Name: "undrain-ssw-gen2", Op: migration.Undrain, Role: topo.RoleSSW,
	})

	// Blocks: group i of plane q holds SSWs [i·m/G, (i+1)·m/G). Insertion
	// is group-major: group 0 of every plane, then group 1, … so canonical
	// prefixes spread the capacity loss across planes.
	planes := len(r.SSWs[d])
	addGroups := func(ty migration.ActionType, label string, ssws [][]topo.SwitchID) {
		for i := 0; i < p.GroupsPerPlane; i++ {
			for q := 0; q < planes; q++ {
				m := len(ssws[q])
				lo, hi := i*m/p.GroupsPerPlane, (i+1)*m/p.GroupsPerPlane
				if lo == hi {
					continue
				}
				task.AddBlock(migration.Block{
					Type: ty, Name: fmt.Sprintf("%s-q%d-g%d", label, q, i), DC: d,
					Switches: append([]topo.SwitchID(nil), ssws[q][lo:hi]...),
				})
			}
		}
	}
	addGroups(drainType, "ssw1", r.SSWs[d])
	addGroups(undrainType, "ssw2", newSSWs)

	desc := fmt.Sprintf("SSW forklift in DC %d: replace %d planes × %d spines (cap ×%.2g)",
		d, planes, len(r.SSWs[d][0]), p.NewCapFactor)
	return finishScenario(name, desc, r, task, p.Demand, ds)
}
