package gen

import (
	"fmt"

	"klotski/internal/migration"
	"klotski/internal/topo"
)

// DMAGParams parameterizes the DMAG migration (paper §2.4, Fig. 3c): a new
// metro-aggregation layer is inserted between the FAUUs and the EBs, and
// the direct FAUU→EB circuits are decommissioned. This migration changes
// the network's layer structure, which is what the MRC and Janus baselines
// cannot plan (Fig. 9).
type DMAGParams struct {
	Region RegionParams
	Demand DemandSpec

	// MAPerEB is how many MA switches serve each EB (default 2).
	MAPerEB int

	// MASubBlocks splits each EB's MA group into this many undrain blocks
	// (default 2): EB port budgets only admit the first sub-block before
	// the direct circuits drain and free ports.
	MASubBlocks int

	// MACapFactor is each MA's capacity relative to the direct circuits it
	// shadows (default 0.8; the full MA group provides
	// MAPerEB × MACapFactor ≥ 1 of the direct capacity).
	MACapFactor float64
}

func (p *DMAGParams) setDefaults() {
	if p.MAPerEB == 0 {
		p.MAPerEB = 2
	}
	if p.MASubBlocks == 0 {
		p.MASubBlocks = 2
	}
	if p.MASubBlocks > p.MAPerEB {
		p.MASubBlocks = p.MAPerEB
	}
	if p.MACapFactor == 0 {
		p.MACapFactor = 0.8
	}
}

// DMAGScenario builds the DMAG migration task. For every EB, MAPerEB MA
// switches are added (inactive), each mirroring the EB's direct FAUU
// circuits at MACapFactor capacity plus one fat MA→EB uplink. Blocks:
//
//   - undrain-ma: per (EB, sub-block), canonical order sub-block-major so
//     every EB gets its first MA before any gets its second;
//   - drain-fauu-eb: per EB, a circuit-only block draining all the EB's
//     direct FAUU circuits (ports are then free for the remaining MAs).
func DMAGScenario(name string, p DMAGParams) (*Scenario, error) {
	p.Region.setDefaults()
	p.setDefaults()
	r := BuildRegion(p.Region)
	t := r.Topo

	// Collect each EB's direct FAUU circuits and raise their routing
	// metric to 2: the FAUU→MA→EB detour then has equal path cost, so
	// ECMP splits traffic across both while they coexist. This models the
	// temporary routing configurations operators install during layer
	// insertions (paper §7.1) — without it, hop-count ECMP would ignore
	// the MA layer entirely until the last direct circuit drained.
	direct := make([][]topo.CircuitID, len(r.EBSw))
	for i, eb := range r.EBSw {
		for _, cid := range t.Switch(eb).Circuits() {
			if t.Switch(t.Circuit(cid).Other(eb)).Role == topo.RoleFAUU {
				direct[i] = append(direct[i], cid)
				t.SetMetric(cid, 2)
			}
		}
	}

	// Shape capacities with the metric already in place (metrics change
	// path lengths for the shaping evaluation); the FAUU-EB layer is this
	// scenario's narrow waist.
	ds := BuildDemands(r, p.Demand)
	if _, err := ShapeLayerCapacities(t, &ds, dmagShape); err != nil {
		return nil, err
	}

	// Build the MA layer, inactive.
	mas := make([][]topo.SwitchID, len(r.EBSw))
	for i, eb := range r.EBSw {
		for m := 0; m < p.MAPerEB; m++ {
			id := t.AddSwitch(topo.Switch{
				Name: fmt.Sprintf("ma-e%d-%d", i, m), Role: topo.RoleMA,
				DC: -1, Pod: -1, Plane: -1, Grid: -1, Generation: 1,
			})
			t.SetSwitchActive(id, false)
			mas[i] = append(mas[i], id)
			total := 0.0
			for _, cid := range direct[i] {
				c := t.Circuit(cid)
				cap := c.Capacity * p.MACapFactor
				t.AddCircuit(c.Other(eb), id, cap)
				total += cap
			}
			if total == 0 {
				return nil, fmt.Errorf("gen: EB %d has no direct FAUU circuits to shadow", i)
			}
			t.AddCircuit(id, eb, total)
		}
		// EB port budget: current active degree plus room for the first
		// MA sub-block only; the rest must wait for the direct circuits
		// to drain ("decommission circuits first to free up ports", §2.3).
		perSub := (p.MAPerEB + p.MASubBlocks - 1) / p.MASubBlocks
		t.SetPorts(eb, t.ActiveDegree(eb)+perSub)
	}

	task := &migration.Task{Name: name, Topo: t, TopologyChanging: true}
	undrainType := task.AddType(migration.ActionTypeInfo{
		Name: "undrain-ma", Op: migration.Undrain, Role: topo.RoleMA,
	})
	drainType := task.AddType(migration.ActionTypeInfo{
		Name: "drain-fauu-eb-circuits", Op: migration.Drain, Role: topo.RoleEB,
	})
	// Undrain blocks, sub-block-major.
	for s := 0; s < p.MASubBlocks; s++ {
		for i := range r.EBSw {
			lo, hi := s*p.MAPerEB/p.MASubBlocks, (s+1)*p.MAPerEB/p.MASubBlocks
			if lo == hi {
				continue
			}
			task.AddBlock(migration.Block{
				Type: undrainType, Name: fmt.Sprintf("ma-e%d-s%d", i, s), DC: -1,
				Switches: append([]topo.SwitchID(nil), mas[i][lo:hi]...),
			})
		}
	}
	// Drain blocks: per EB, circuit-only.
	for i := range r.EBSw {
		task.AddBlock(migration.Block{
			Type: drainType, Name: fmt.Sprintf("direct-e%d", i), DC: -1,
			Circuits: append([]topo.CircuitID(nil), direct[i]...),
		})
	}

	desc := fmt.Sprintf("DMAG: insert %d MAs between FAUUs and %d EBs, decommission %d direct circuit groups",
		p.MAPerEB*len(r.EBSw), len(r.EBSw), len(r.EBSw))
	return finishScenario(name, desc, r, task, p.Demand, ds)
}
