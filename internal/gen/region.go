// Package gen builds synthetic Meta-style datacenter regions and the three
// production migration scenarios of the Klotski paper (§2.4): HGRID V1→V2,
// SSW forklift, and DMAG. It also provides the Table-3 topology suite
// (A–E, E-DMAG, E-SSW) used by the evaluation harness.
//
// Real NPD exports of Meta datacenters are proprietary; these generators
// reproduce the properties that drive planner behaviour — layering,
// plane/grid structure, meshing patterns, coexisting hardware generations,
// port pressure, and capacity headroom — at parameterized scale
// (see DESIGN.md, "Substitutions").
package gen

import (
	"fmt"

	"klotski/internal/topo"
)

// FabricParams describes one datacenter building's fabric.
type FabricParams struct {
	Pods        int // pods in the fabric
	RSWPerPod   int // rack switches per pod
	FSWPerPod   int // fabric switches per pod (Meta uses 4)
	Planes      int // spine planes (4, or 8 for upgraded generations)
	SSWPerPlane int // spine switches per plane
	FSWUplinks  int // SSWs each FSW connects to, per plane it serves

	RSWUplinkCap float64 // Tbps per RSW→FSW circuit
	FSWUplinkCap float64 // Tbps per FSW→SSW circuit
}

func (p *FabricParams) setDefaults() {
	if p.FSWPerPod == 0 {
		p.FSWPerPod = 4
	}
	if p.Planes == 0 {
		p.Planes = 4
	}
	if p.FSWUplinks == 0 || p.FSWUplinks > p.SSWPerPlane {
		p.FSWUplinks = p.SSWPerPlane
	}
	if p.RSWUplinkCap == 0 {
		// Rack uplinks are deliberately overprovisioned: RSWs are never
		// migrated, so they must not be the binding constraint.
		p.RSWUplinkCap = 8.0
	}
	if p.FSWUplinkCap == 0 {
		// Fabric uplinks carry the cross-plane rebalancing when a plane's
		// aggregation drains; their slack bounds how much of the HGRID can
		// be down at once (tuned so they sit near the HGRID layer's
		// utilization at the calibrated base point).
		p.FSWUplinkCap = 0.3
	}
}

// HGRIDParams describes the regional fabric-aggregation layer.
type HGRIDParams struct {
	Grids        int // grids (≈ one per spine plane for generation 1)
	FADUPerGrid  int
	FAUUPerGrid  int
	SSWDownlinks int // FADU circuits per SSW per grid it attaches to

	LinkCap         float64 // SSW→FADU circuit capacity, Tbps
	GridInternalCap float64 // FADU→FAUU circuit capacity
	UplinkCap       float64 // FAUU→EB circuit capacity
	Generation      int
}

func (p *HGRIDParams) setDefaults() {
	if p.SSWDownlinks == 0 {
		p.SSWDownlinks = 2
	}
	if p.SSWDownlinks > p.FADUPerGrid {
		p.SSWDownlinks = p.FADUPerGrid
	}
	if p.LinkCap == 0 {
		p.LinkCap = 1.0
	}
	if p.GridInternalCap == 0 {
		p.GridInternalCap = 2.0
	}
	if p.UplinkCap == 0 {
		p.UplinkCap = 2.0
	}
	if p.Generation == 0 {
		p.Generation = 1
	}
}

// RegionParams describes a full region: several DC buildings sharing an
// HGRID aggregation layer and a backbone boundary.
type RegionParams struct {
	Name  string
	DCs   []FabricParams
	HGRID HGRIDParams

	EBs  int
	DRs  int
	EBBs int

	EBCap float64 // EB→DR circuit capacity
	DRCap float64 // DR→EBB circuit capacity
}

func (p *RegionParams) setDefaults() {
	for i := range p.DCs {
		p.DCs[i].setDefaults()
	}
	p.HGRID.setDefaults()
	if p.EBs == 0 {
		p.EBs = 2
	}
	if p.DRs == 0 {
		p.DRs = 2
	}
	if p.EBBs == 0 {
		p.EBBs = 1
	}
	if p.EBCap == 0 {
		p.EBCap = 8
	}
	if p.DRCap == 0 {
		p.DRCap = 16
	}
}

// v1GridOf maps an SSW (plane q, index j) to its v1 grid: planes map to
// grid residues, and when there are more grids than planes the plane's
// SSWs are striped across the extra grids.
func v1GridOf(q, j, grids, planes int) int {
	per := grids / planes
	if per < 1 {
		per = 1
	}
	return (q + planes*(j%per)) % grids
}

// Grid holds the switch IDs of one HGRID grid.
type Grid struct {
	FADUs []topo.SwitchID
	FAUUs []topo.SwitchID
}

// Switches returns all the grid's switches, FADUs first.
func (g *Grid) Switches() []topo.SwitchID {
	out := make([]topo.SwitchID, 0, len(g.FADUs)+len(g.FAUUs))
	out = append(out, g.FADUs...)
	out = append(out, g.FAUUs...)
	return out
}

// Region is a built topology plus the structural references the scenario
// builders need.
type Region struct {
	Params RegionParams
	Topo   *topo.Topology

	RSWs  [][]topo.SwitchID   // [dc][i]
	FSWs  [][]topo.SwitchID   // [dc][i]
	SSWs  [][][]topo.SwitchID // [dc][plane][i]
	Grids []Grid              // generation-1 grids
	EBSw  []topo.SwitchID
	DRSw  []topo.SwitchID
	EBBSw []topo.SwitchID
}

// BuildRegion constructs the generation-1 region topology: fabrics wired to
// HGRID v1 grids, FAUUs uplinked to EBs, and the EB→DR→EBB backbone
// boundary. All elements are active.
func BuildRegion(p RegionParams) *Region {
	p.setDefaults()
	r := &Region{Params: p, Topo: topo.New(p.Name)}
	t := r.Topo

	// Backbone boundary, top-down so lower layers can reference it.
	for i := 0; i < p.EBBs; i++ {
		r.EBBSw = append(r.EBBSw, t.AddSwitch(topo.Switch{
			Name: fmt.Sprintf("ebb%d", i), Role: topo.RoleEBB,
			DC: -1, Pod: -1, Plane: -1, Grid: -1, Generation: 1,
		}))
	}
	for i := 0; i < p.DRs; i++ {
		id := t.AddSwitch(topo.Switch{
			Name: fmt.Sprintf("dr%d", i), Role: topo.RoleDR,
			DC: -1, Pod: -1, Plane: -1, Grid: -1, Generation: 1,
		})
		r.DRSw = append(r.DRSw, id)
		for _, ebb := range r.EBBSw {
			t.AddCircuit(id, ebb, p.DRCap)
		}
	}
	for i := 0; i < p.EBs; i++ {
		id := t.AddSwitch(topo.Switch{
			Name: fmt.Sprintf("eb%d", i), Role: topo.RoleEB,
			DC: -1, Pod: -1, Plane: -1, Grid: -1, Generation: 1,
		})
		r.EBSw = append(r.EBSw, id)
		// Each EB homes to two DRs (or all, when fewer exist).
		n := 2
		if n > p.DRs {
			n = p.DRs
		}
		for k := 0; k < n; k++ {
			t.AddCircuit(id, r.DRSw[(i+k)%p.DRs], p.EBCap)
		}
	}

	// HGRID v1 grids.
	h := p.HGRID
	for g := 0; g < h.Grids; g++ {
		grid := Grid{}
		for i := 0; i < h.FADUPerGrid; i++ {
			grid.FADUs = append(grid.FADUs, t.AddSwitch(topo.Switch{
				Name: fmt.Sprintf("fadu-v1-g%d-%d", g, i), Role: topo.RoleFADU,
				DC: -1, Pod: -1, Plane: -1, Grid: g, Generation: h.Generation,
			}))
		}
		for i := 0; i < h.FAUUPerGrid; i++ {
			id := t.AddSwitch(topo.Switch{
				Name: fmt.Sprintf("fauu-v1-g%d-%d", g, i), Role: topo.RoleFAUU,
				DC: -1, Pod: -1, Plane: -1, Grid: g, Generation: h.Generation,
			})
			grid.FAUUs = append(grid.FAUUs, id)
			// Full bipartite FADU↔FAUU inside the grid.
			for _, fd := range grid.FADUs {
				t.AddCircuit(fd, id, h.GridInternalCap)
			}
			// Each FAUU uplinks to two EBs, spread by grid and index.
			n := 2
			if n > p.EBs {
				n = p.EBs
			}
			for k := 0; k < n; k++ {
				t.AddCircuit(id, r.EBSw[(g+i+k*(p.EBs/2+1))%p.EBs], h.UplinkCap)
			}
		}
		r.Grids = append(r.Grids, grid)
	}

	// Fabrics, one per DC.
	for d := range p.DCs {
		r.buildFabric(d)
	}
	return r
}

func (r *Region) buildFabric(d int) {
	p := r.Params.DCs[d]
	h := r.Params.HGRID
	t := r.Topo

	// Spine planes.
	ssws := make([][]topo.SwitchID, p.Planes)
	for q := 0; q < p.Planes; q++ {
		for j := 0; j < p.SSWPerPlane; j++ {
			id := t.AddSwitch(topo.Switch{
				Name: fmt.Sprintf("d%d-ssw-q%d-%d", d, q, j), Role: topo.RoleSSW,
				DC: d, Pod: -1, Plane: q, Grid: -1, Generation: 1,
			})
			ssws[q] = append(ssws[q], id)
			// SSW downlinks to its v1 grid: planes map to grid residues,
			// and when there are more grids than planes the plane's SSWs
			// are striped across the extra grids.
			g := v1GridOf(q, j, h.Grids, p.Planes)
			for k := 0; k < h.SSWDownlinks; k++ {
				fadu := r.Grids[g].FADUs[(j+k)%h.FADUPerGrid]
				t.AddCircuit(id, fadu, h.LinkCap)
			}
		}
	}
	r.SSWs = append(r.SSWs, ssws)

	// Pods: FSWs and RSWs.
	var fsws, rsws []topo.SwitchID
	for pod := 0; pod < p.Pods; pod++ {
		podFSWs := make([]topo.SwitchID, 0, p.FSWPerPod)
		for i := 0; i < p.FSWPerPod; i++ {
			id := t.AddSwitch(topo.Switch{
				Name: fmt.Sprintf("d%d-p%d-fsw%d", d, pod, i), Role: topo.RoleFSW,
				DC: d, Pod: pod, Plane: -1, Grid: -1, Generation: 1,
			})
			podFSWs = append(podFSWs, id)
			fsws = append(fsws, id)
			// FSW i serves planes q ≡ i (mod FSWPerPod).
			for q := i % p.FSWPerPod; q < p.Planes; q += p.FSWPerPod {
				for u := 0; u < p.FSWUplinks; u++ {
					// Spread pods across the plane's SSWs.
					j := (pod*p.FSWUplinks + u) % p.SSWPerPlane
					t.AddCircuit(id, ssws[q][j], p.FSWUplinkCap)
				}
			}
		}
		for rk := 0; rk < p.RSWPerPod; rk++ {
			id := t.AddSwitch(topo.Switch{
				Name: fmt.Sprintf("d%d-p%d-rsw%d", d, pod, rk), Role: topo.RoleRSW,
				DC: d, Pod: pod, Plane: -1, Grid: -1, Generation: 1,
			})
			rsws = append(rsws, id)
			for _, f := range podFSWs {
				t.AddCircuit(id, f, p.RSWUplinkCap)
			}
		}
	}
	r.FSWs = append(r.FSWs, fsws)
	r.RSWs = append(r.RSWs, rsws)
}
