// Package audit is the independent plan verifier of the defense-in-depth
// layer (paper §7.2, "extra audits and safety checks"): every plan the
// planners emit is replayed step-by-step against a fresh topo.View and a
// fresh routing.Evaluator — none of the planner's satisfiability caches,
// search-state interning, or parallel lanes in the loop — and every
// boundary state is re-checked for reachability, capacity, and occupancy.
//
// Two replay engines produce that verdict. ModeSerial re-evaluates every
// boundary from scratch and is the pristine reference. ModeIncremental
// (see incremental.go) reuses the routing evaluator's per-destination
// group memo across consecutive boundaries and can split the replay over
// parallel lanes; it is differential-tested byte-identical to the serial
// engine, Report for Report, including failure steps under tampering.
//
// The package deliberately does NOT import internal/core: it re-derives
// the boundary semantics (canonical ordering, run splits, funneling
// circuits, space occupancy) from the task definition alone, so a bug in
// the planner's fast paths cannot hide in a shared helper. core depends on
// audit, never the reverse.
package audit

import (
	"errors"
	"fmt"

	"klotski/internal/migration"
	"klotski/internal/obs"
	"klotski/internal/routing"
	"klotski/internal/topo"
)

// NoLast marks "no action executed yet" in Config.InitialLast. It mirrors
// core.NoLast without importing core.
const NoLast migration.ActionType = -1

// Config parameterizes a verification run. The zero value audits a
// complete, canonical-order plan under the paper defaults (θ = 0.75, ECMP,
// no funneling, no run cap, no space budget).
type Config struct {
	// Theta is the maximum circuit utilization bound (Eq. 5). 0 means the
	// paper default of 0.75.
	Theta float64

	// Split selects the traffic-splitting policy (ECMP default, WCMP).
	Split routing.SplitMode

	// FunnelFactor, when > 1, re-applies the transient funneling headroom
	// (§7.2) at run boundaries: circuits parallel to the block just
	// operated are held to Theta/FunnelFactor. Ignored in FreeOrder mode,
	// where "the block just operated" is not defined canonically.
	FunnelFactor float64

	// MaxRunLength caps same-type runs; a forced split is a boundary the
	// network observes and is therefore checked. 0 means unlimited.
	MaxRunLength int

	// SpaceBudget caps physically present switches per datacenter. The
	// auditor counts active switches in the replayed view directly —
	// independently of the planner's precomputed occupancy deltas.
	SpaceBudget map[int]int

	// InitialCounts resumes the audit from a partially executed canonical
	// migration: InitialCounts[i] blocks of type i are already done.
	// InitialLast is the type of the last executed action (NoLast if
	// none); InitialRunLength the length of the in-progress run, relevant
	// only under MaxRunLength. Ignored in FreeOrder mode.
	InitialCounts    []int
	InitialLast      migration.ActionType
	InitialRunLength int

	// FreeOrder audits plans not bound to canonical within-type order
	// (the MRC and Janus baselines). Executed lists the exact block IDs
	// already executed, in order, so the replay starts from the true
	// partial state. Funneling headroom and MaxRunLength splits, which are
	// defined on the canonical representation, are not applied.
	FreeOrder bool
	Executed  []int

	// AllowPartial accepts a sequence that does not finish the migration
	// (an interrupted plan prefix, e.g. from a checkpoint). The state
	// after the last step is still checked as a run boundary.
	AllowPartial bool

	// Mode selects the replay engine: ModeSerial (zero value) re-evaluates
	// every boundary from scratch and is the pristine reference;
	// ModeIncremental reuses the evaluator's group memo across boundaries
	// and may fan out across Workers lanes. Both produce byte-identical
	// Reports (differential-tested); the incremental engine exists to make
	// the mandatory audit cheap, not to change its answers.
	Mode Mode

	// Workers is the lane count for ModeIncremental; 0 or 1 replays on a
	// single lane. Ignored by ModeSerial. The verdict is identical at any
	// worker count.
	Workers int

	// Runner, when non-nil, executes ModeIncremental's lane closures
	// instead of one goroutine per lane — the hook through which a shared
	// scheduler pool runs audit spans as stealable tasks. The closures
	// write disjoint result segments and Runner must not return until all
	// have run, so any execution order or interleaving yields the same
	// Report. Kept a plain func type to preserve this package's
	// import-free independence from the planner and scheduler.
	Runner func(tasks []func())

	// Recorder optionally streams audit counters (states checked,
	// failures) into an observability registry; nil is a no-op.
	Recorder *obs.Recorder
}

// Step records one audited boundary state of the replay.
type Step struct {
	// Index is the sequence position the state precedes: 0 is the initial
	// state, len(seq) the final state.
	Index int

	// Block is the block executed next from this state, -1 for the final
	// state.
	Block int

	OK bool

	// MaxUtil is the highest circuit utilization observed in this state.
	MaxUtil float64

	// Violation is the routing violation when !OK (zero for occupancy
	// failures, which are described by Detail).
	Violation routing.Violation

	// Detail describes non-routing failures (space budget).
	Detail string
}

// Report is the structured result of an audit.
type Report struct {
	// Passed is true iff the sequence is well formed and every audited
	// state satisfies all constraints.
	Passed bool

	// FailStep is the sequence index at which the audit failed: the index
	// of the offending action for sequence-validation failures, the index
	// of the action entered from an unsafe state for boundary failures,
	// len(seq) for final-state or completeness failures. -1 when Passed.
	FailStep int

	// Reason describes the failure in operator terms; empty when Passed.
	Reason string

	// StatesChecked counts the boundary states replayed and verified.
	StatesChecked int

	// WorstUtil is the highest circuit utilization over all checked
	// states — the transient headroom the plan actually consumes.
	WorstUtil float64

	// Gap is the planner's certified relative optimality gap for the
	// audited plan (0 = provably optimal), stamped by the planner after
	// verification. The auditor itself does not compute it; audits
	// invoked directly leave it 0.
	Gap float64

	// Steps holds one record per audited boundary state, in replay order.
	// Sequence-validation failures abort before the replay, leaving it
	// empty.
	Steps []Step
}

// String renders the report verdict as one line.
func (r *Report) String() string {
	if r.Passed {
		return fmt.Sprintf("audit passed: %d states checked, worst utilization %.3f",
			r.StatesChecked, r.WorstUtil)
	}
	return fmt.Sprintf("audit FAILED at step %d: %s (%d states checked)",
		r.FailStep, r.Reason, r.StatesChecked)
}

// Verify replays seq against a pristine serial evaluator and audits every
// boundary state. It returns an error only for malformed inputs (nil or
// invalid task, bad config); a plan that fails its audit yields a Report
// with Passed == false, not an error.
func Verify(task *migration.Task, seq []int, cfg Config) (*Report, error) {
	if task == nil {
		return nil, errors.New("audit: nil task")
	}
	if err := task.Validate(); err != nil {
		return nil, fmt.Errorf("audit: invalid task: %w", err)
	}
	if cfg.Theta < 0 || cfg.Theta > 1 {
		return nil, fmt.Errorf("audit: Theta %v outside (0, 1]", cfg.Theta)
	}
	if !cfg.FreeOrder && cfg.InitialCounts != nil && len(cfg.InitialCounts) != task.NumTypes() {
		return nil, fmt.Errorf("audit: InitialCounts has %d types, task has %d",
			len(cfg.InitialCounts), task.NumTypes())
	}

	rep := &Report{FailStep: -1}
	defer func() {
		cfg.Recorder.AuditSteps(rep.StatesChecked)
		if !rep.Passed {
			cfg.Recorder.AuditFailure()
		}
	}()

	if !validateSequence(task, seq, &cfg, rep) {
		return rep, nil
	}
	if cfg.Mode == ModeIncremental {
		replayIncremental(task, seq, &cfg, rep)
	} else {
		replay(task, seq, &cfg, rep)
	}
	return rep, nil
}

// fail records the first audit failure and reports false.
func (r *Report) fail(step int, format string, args ...any) bool {
	r.Passed = false
	r.FailStep = step
	r.Reason = fmt.Sprintf(format, args...)
	return false
}

// validateSequence performs the structural audit: every referenced block
// must exist, appear at most once (and not among the already-executed
// prefix), respect canonical within-type order unless FreeOrder, and —
// unless AllowPartial — the sequence must finish the migration. This is
// what catches maliciously or accidentally reordered, injected, or dropped
// actions before any network state is evaluated.
func validateSequence(task *migration.Task, seq []int, cfg *Config, rep *Report) bool {
	counts := make([]int, task.NumTypes())
	seen := make(map[int]bool, len(seq)+len(cfg.Executed))
	if cfg.FreeOrder {
		for _, id := range cfg.Executed {
			if id < 0 || id >= len(task.Blocks) {
				rep.fail(0, "executed prefix references invalid block %d", id)
				return false
			}
			if seen[id] {
				rep.fail(0, "executed prefix lists block %q twice", task.Blocks[id].Name)
				return false
			}
			seen[id] = true
			counts[task.Blocks[id].Type]++
		}
	} else if cfg.InitialCounts != nil {
		copy(counts, cfg.InitialCounts)
	}
	for i, id := range seq {
		if id < 0 || id >= len(task.Blocks) {
			return rep.fail(i, "step %d references invalid block %d", i, id)
		}
		if seen[id] {
			return rep.fail(i, "step %d repeats block %q (duplicate or injected action)",
				i, task.Blocks[id].Name)
		}
		seen[id] = true
		ty := task.Blocks[id].Type
		ofType := task.BlocksOfType(ty)
		if counts[ty] >= len(ofType) {
			return rep.fail(i, "step %d exceeds the %d blocks of type %s (injected action)",
				i, len(ofType), task.Types[ty].Name)
		}
		if !cfg.FreeOrder {
			if want := ofType[counts[ty]]; want != id {
				return rep.fail(i, "step %d operates block %q out of canonical order (want %q) — reordered action",
					i, task.Blocks[id].Name, task.Blocks[want].Name)
			}
		}
		counts[ty]++
	}
	if !cfg.AllowPartial {
		for ty, c := range counts {
			if total := len(task.BlocksOfType(migration.ActionType(ty))); c != total {
				return rep.fail(len(seq), "sequence incomplete for type %s (%d of %d) — dropped action",
					task.Types[ty].Name, c, total)
			}
		}
	}
	return true
}

// replay executes the sequence on a fresh view with a fresh serial
// evaluator, checking the initial state, every run boundary, and the final
// state.
func replay(task *migration.Task, seq []int, cfg *Config, rep *Report) {
	theta := cfg.Theta
	if theta <= 0 {
		theta = 0.75
	}
	view := task.Topo.NewView()
	eval := routing.NewEvaluator(task.Topo)

	// Establish the already-executed starting state and run context.
	// applied counts all executed actions including the initial prefix: it
	// is the state's demand-forecast horizon, matching the planners'
	// absolute count vectors.
	last := NoLast
	tail := 0
	applied := 0
	lastBlock := -1 // most recently executed block, for funneling headroom
	if cfg.FreeOrder {
		for _, id := range cfg.Executed {
			task.Apply(view, id)
		}
		applied = len(cfg.Executed)
		if n := len(cfg.Executed); n > 0 {
			lastBlock = cfg.Executed[n-1]
			last = task.Blocks[lastBlock].Type
		}
	} else if cfg.InitialCounts != nil {
		for ty, c := range cfg.InitialCounts {
			for _, id := range task.BlocksOfType(migration.ActionType(ty))[:c] {
				task.Apply(view, id)
			}
			applied += c
		}
		last = cfg.InitialLast
		tail = cfg.InitialRunLength
		if last != NoLast && cfg.InitialCounts[last] > 0 {
			lastBlock = task.BlocksOfType(last)[cfg.InitialCounts[last]-1]
		}
	}

	// check audits the current view as the state preceding sequence index
	// idx (block = the next block, -1 at the end). withFunnel applies the
	// funneling headroom of the block just operated; the initial state is
	// checked without it, matching the planner's (V, NoLast) semantics.
	check := func(idx, block int, withFunnel bool) bool {
		rep.StatesChecked++
		// The state is checked against the demand the network will carry
		// when it is reached: the task's forecast sampled at the state's
		// horizon (total applied actions), not the t=0 demand.
		copts := routing.CheckOpts{Theta: theta, Split: cfg.Split,
			DemandScale: task.Forecast.ScaleAt(applied)}
		if withFunnel && !cfg.FreeOrder && cfg.FunnelFactor > 1 && lastBlock >= 0 {
			copts.FunnelFactor = cfg.FunnelFactor
			copts.FunnelCircuits = funnelCircuits(task, lastBlock)
		}
		res, viol := eval.Evaluate(view, &task.Demands, copts)
		if res.MaxUtil > rep.WorstUtil {
			rep.WorstUtil = res.MaxUtil
		}
		step := Step{Index: idx, Block: block, OK: true, MaxUtil: res.MaxUtil}
		if !viol.OK() {
			step.OK = false
			step.Violation = viol
			rep.Steps = append(rep.Steps, step)
			return rep.fail(idx, "unsafe state before step %d: %s", idx, viol)
		}
		if dc, n, budget, ok := occupancyOK(task, view, cfg.SpaceBudget); !ok {
			step.OK = false
			step.Detail = fmt.Sprintf("space budget exceeded in DC %d: %d switches present, budget %d", dc, n, budget)
			rep.Steps = append(rep.Steps, step)
			return rep.fail(idx, "unsafe state before step %d: %s", idx, step.Detail)
		}
		rep.Steps = append(rep.Steps, step)
		return true
	}

	nextBlock := func(i int) int {
		if i < len(seq) {
			return seq[i]
		}
		return -1
	}

	if !check(0, nextBlock(0), false) {
		return
	}
	for i, id := range seq {
		ty := task.Blocks[id].Type
		boundary := ty != last ||
			(!cfg.FreeOrder && cfg.MaxRunLength > 0 && tail >= cfg.MaxRunLength)
		if boundary && last != NoLast {
			// Run boundary (type change, or a forced split under
			// MaxRunLength): the state being left was observed by the
			// network and must have been safe.
			if !check(i, id, true) {
				return
			}
		}
		task.Apply(view, id)
		applied++
		if ty != last || boundary {
			tail = 1
		} else {
			tail++
		}
		last = ty
		lastBlock = id
	}
	if !check(len(seq), -1, true) {
		return
	}
	rep.Passed = true
}

// occupancyOK counts the switches physically present per datacenter
// directly from the replayed view — old switches occupy their slot until
// drained, new switches from the moment they are undrained — and compares
// against the budget. It reports the first offending DC, or ok == true.
func occupancyOK(task *migration.Task, view *topo.View, budget map[int]int) (dc, n, limit int, ok bool) {
	if len(budget) == 0 {
		return 0, 0, 0, true
	}
	present := make(map[int]int)
	for i := 0; i < task.Topo.NumSwitches(); i++ {
		if view.SwitchActive(topo.SwitchID(i)) {
			present[task.Topo.Switch(topo.SwitchID(i)).DC]++
		}
	}
	for i := 0; i < task.Topo.NumSwitches(); i++ {
		d := task.Topo.Switch(topo.SwitchID(i)).DC
		if b, capped := budget[d]; capped && b > 0 && present[d] > b {
			return d, present[d], b, false
		}
	}
	return 0, 0, 0, true
}

// funnelCircuits re-derives — independently of the planner — the up
// circuits that survive next to the circuits a drain block takes down: the
// circuits onto which traffic funnels while the block's elements drain
// asynchronously (§2.2). Empty for undrain blocks: adding capacity does
// not funnel traffic.
func funnelCircuits(task *migration.Task, blockID int) []topo.CircuitID {
	b := &task.Blocks[blockID]
	if task.Types[b.Type].Op != migration.Drain {
		return nil
	}
	affected := make(map[topo.SwitchID]bool)
	operated := make(map[topo.CircuitID]bool)
	for _, s := range b.Switches {
		for _, c := range task.Topo.Switch(s).Circuits() {
			operated[c] = true
			affected[task.Topo.Circuit(c).Other(s)] = true
		}
	}
	for _, c := range b.Circuits {
		operated[c] = true
		ck := task.Topo.Circuit(c)
		affected[ck.A] = true
		affected[ck.B] = true
	}
	var out []topo.CircuitID
	for s := range affected {
		for _, c := range task.Topo.Switch(s).Circuits() {
			if !operated[c] {
				out = append(out, c)
			}
		}
	}
	return out
}
