package audit_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"klotski/internal/audit"
	"klotski/internal/core"
	"klotski/internal/gen"
	"klotski/internal/migration"
	"klotski/internal/routing"
)

// Differential harness for the incremental + parallel audit engine: every
// Report it produces — passing, replay-failing, tampered, partial, resumed,
// free-order — must be byte-identical (reflect.DeepEqual, floats included)
// to the serial reference engine's, at every worker count. The serial
// engine stays the pristine trust anchor; this suite is what licenses the
// planners to use the cheap engine for the mandatory post-planning audit.

// auditWorkerCounts is the worker matrix the differential runs over.
func auditWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// diffAudit verifies seq under cfg with the serial engine and with the
// incremental engine at every worker count, requires all Reports
// byte-identical, and returns the serial reference.
func diffAudit(t *testing.T, label string, task *migration.Task, seq []int, cfg audit.Config) *audit.Report {
	t.Helper()
	sCfg := cfg
	sCfg.Mode = audit.ModeSerial
	ref, err := audit.Verify(task, seq, sCfg)
	if err != nil {
		t.Fatalf("%s: serial audit: %v", label, err)
	}
	for _, w := range auditWorkerCounts() {
		iCfg := cfg
		iCfg.Mode = audit.ModeIncremental
		iCfg.Workers = w
		got, err := audit.Verify(task, seq, iCfg)
		if err != nil {
			t.Fatalf("%s: incremental audit (workers=%d): %v", label, w, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("%s: incremental audit (workers=%d) diverged from serial\nserial:      %+v\nincremental: %+v",
				label, w, ref, got)
		}
	}
	return ref
}

// baseConfig mirrors core's auditConfig mapping for a planning option set.
func baseConfig(opts core.Options) audit.Config {
	return audit.Config{
		Theta:        opts.Theta,
		Split:        opts.Split,
		FunnelFactor: opts.FunnelFactor,
		MaxRunLength: opts.MaxRunLength,
		SpaceBudget:  opts.SpaceBudget,
		InitialLast:  audit.NoLast,
	}
}

// exerciseFabric runs the full differential battery on one fabric: plan it,
// then audit the plan and adversarial variants of it under both engines.
// Reports false if the fabric is infeasible under opts.
func exerciseFabric(t *testing.T, task *migration.Task, opts core.Options) bool {
	t.Helper()
	opts.SkipAudit = true // this suite audits explicitly, under both engines
	plan, err := core.PlanAStar(task, opts)
	if errors.Is(err, core.ErrInfeasible) {
		return false
	}
	if err != nil {
		t.Fatalf("planning: %v", err)
	}
	seq := plan.Sequence
	cfg := baseConfig(opts)

	// Passing plan: many OK boundaries, so WorstUtil/MaxUtil accumulate
	// across the whole replay — the strongest float-identity probe.
	ref := diffAudit(t, "passing", task, seq, cfg)
	if !ref.Passed {
		t.Fatalf("planner-emitted plan failed audit: %s", ref)
	}

	// Tightened bound: the replay must fail mid-sequence at the same
	// boundary with the same synthesized Violation in both engines.
	if ref.WorstUtil > 0 {
		tight := cfg
		tight.Theta = ref.WorstUtil * 0.95
		r := diffAudit(t, "tight-theta", task, seq, tight)
		if r.Passed {
			t.Fatalf("audit passed with Theta %.4f below WorstUtil %.4f", tight.Theta, ref.WorstUtil)
		}
	}

	// Over-tight space budget: the occupancy failure path, including the
	// first-offending-DC scan and the Detail string.
	if task.Topo.NumSwitches() > 1 {
		occ := cfg
		occ.SpaceBudget = map[int]int{task.Topo.Switch(0).DC: 1}
		diffAudit(t, "tight-occupancy", task, seq, occ)
	}

	// The four tamper kinds: each must fail at the exact offending step,
	// identically under both engines.
	exerciseTampers(t, task, seq, cfg)

	// Partial prefix (checkpoint audit).
	if len(seq) > 2 {
		part := cfg
		part.AllowPartial = true
		diffAudit(t, "partial", task, seq[:len(seq)/2], part)
	}

	// Resumed canonical plan: replay the tail from per-type initial counts.
	if opts.MaxRunLength == 0 && len(seq) > 2 {
		h := len(seq) / 2
		counts := make([]int, task.NumTypes())
		for _, id := range seq[:h] {
			counts[task.Blocks[id].Type]++
		}
		res := cfg
		res.InitialCounts = counts
		res.InitialLast = task.Blocks[seq[h-1]].Type
		diffAudit(t, "resumed", task, seq[h:], res)
	}

	// Free-order replay of the tail after an executed prefix.
	if len(seq) > 2 {
		fo := cfg
		fo.FreeOrder = true
		fo.Executed = seq[:len(seq)/2]
		diffAudit(t, "free-order", task, seq[len(seq)/2:], fo)
	}
	return true
}

// exerciseTampers mutates a known-good sequence four ways — reordered,
// injected, dropped, duplicated — and requires both engines to reject each
// at the exact tamper step with the same Report.
func exerciseTampers(t *testing.T, task *migration.Task, seq []int, cfg audit.Config) {
	t.Helper()
	if len(seq) < 2 {
		return
	}

	// Reorder: swap an adjacent same-type pair (cross-type order is
	// legitimately free, so only a within-type swap is a real tamper).
	for i := 0; i+1 < len(seq); i++ {
		if task.Blocks[seq[i]].Type != task.Blocks[seq[i+1]].Type {
			continue
		}
		tampered := append([]int(nil), seq...)
		tampered[i], tampered[i+1] = tampered[i+1], tampered[i]
		r := diffAudit(t, "tamper-reorder", task, tampered, cfg)
		if r.Passed || r.FailStep != i || !strings.Contains(r.Reason, "reordered") {
			t.Fatalf("reorder at %d: passed=%v FailStep=%d reason=%q", i, r.Passed, r.FailStep, r.Reason)
		}
		break
	}

	// Inject: append a block that already executed.
	injected := append(append([]int(nil), seq...), seq[0])
	r := diffAudit(t, "tamper-inject", task, injected, cfg)
	if r.Passed || r.FailStep != len(seq) || !strings.Contains(r.Reason, "injected") {
		t.Fatalf("inject: passed=%v FailStep=%d reason=%q; want step %d", r.Passed, r.FailStep, r.Reason, len(seq))
	}

	// Drop: cut the final action (incomplete migration).
	r = diffAudit(t, "tamper-drop", task, seq[:len(seq)-1], cfg)
	if r.Passed || r.FailStep != len(seq)-1 || !strings.Contains(r.Reason, "dropped") {
		t.Fatalf("drop: passed=%v FailStep=%d reason=%q; want step %d", r.Passed, r.FailStep, r.Reason, len(seq)-1)
	}

	// Duplicate: repeat a mid-sequence action in place.
	k := len(seq) / 2
	dup := append([]int(nil), seq[:k+1]...)
	dup = append(dup, seq[k])
	dup = append(dup, seq[k+1:]...)
	r = diffAudit(t, "tamper-duplicate", task, dup, cfg)
	if r.Passed || r.FailStep != k+1 || !strings.Contains(r.Reason, "duplicate") {
		t.Fatalf("duplicate: passed=%v FailStep=%d reason=%q; want step %d", r.Passed, r.FailStep, r.Reason, k+1)
	}
}

// TestAuditEngineDifferentialSuites runs the engine differential over every
// fabric of the evaluation suite.
func TestAuditEngineDifferentialSuites(t *testing.T) {
	scales := map[string]float64{"A": 0.1, "B": 0.1, "C": 0.1, "D": 0.05, "E": 0.1, "E-DMAG": 0.05, "E-SSW": 0.05}
	for _, name := range gen.SuiteNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := gen.Suite(name, scales[name])
			if err != nil {
				t.Fatal(err)
			}
			if !exerciseFabric(t, s.Task, core.Options{MaxStates: 2_000_000}) {
				t.Skipf("suite %s infeasible at scale %v", name, scales[name])
			}
		})
	}
}

// TestAuditEngineDifferentialConstraintKnobs re-runs the differential on a
// small fabric with the constraint knobs that change boundary structure:
// funneling headroom (classic fallback path per boundary), forced run
// splits, and capacity-weighted splitting.
func TestAuditEngineDifferentialConstraintKnobs(t *testing.T) {
	s, err := gen.Suite("A", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts core.Options
	}{
		{"funnel", core.Options{FunnelFactor: 1.3, MaxStates: 2_000_000}},
		{"runlength", core.Options{MaxRunLength: 2, MaxStates: 2_000_000}},
		{"wcmp", core.Options{Split: routing.SplitCapacityWeighted, MaxStates: 2_000_000}},
		{"theta-tight", core.Options{Theta: 0.7, MaxStates: 2_000_000}},
	}
	feasible := 0
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if exerciseFabric(t, s.Task, c.opts) {
				feasible++
			} else {
				t.Skip("infeasible under this constraint set")
			}
		})
	}
	if feasible == 0 {
		t.Error("every constraint variant infeasible; the differential exercised nothing")
	}
}

// TestAuditEngineDifferentialRandomFabrics draws seeded random HGRID
// fabrics (≥10) and runs the engine differential on each. The seed is
// fixed, so a failure reproduces.
func TestAuditEngineDifferentialRandomFabrics(t *testing.T) {
	if testing.Short() {
		t.Skip("property test over generated fabrics")
	}
	rng := rand.New(rand.NewSource(20260808))
	const cases = 10
	feasible := 0
	for i := 0; i < cases; i++ {
		p := gen.HGRIDScenarioParams{
			Region: gen.RegionParams{
				Name: fmt.Sprintf("auditdiff-%d", i),
				DCs: []gen.FabricParams{{
					Pods:        1 + rng.Intn(2),
					RSWPerPod:   2,
					Planes:      4,
					SSWPerPlane: 1 + rng.Intn(2),
					FSWUplinks:  1,
				}},
				HGRID: gen.HGRIDParams{
					Grids:        2 + rng.Intn(3),
					FADUPerGrid:  1 + rng.Intn(2),
					FAUUPerGrid:  1,
					SSWDownlinks: 1,
				},
				EBs: 2, DRs: 1, EBBs: 1,
			},
			Demand:            gen.DemandSpec{BaseUtil: 0.30 + 0.15*rng.Float64()},
			V2GridFactor:      1 + rng.Intn(2),
			V2CapFactor:       0.5 + 0.5*rng.Float64(),
			PortHeadroomGrids: 1,
		}
		opts := core.Options{
			Theta:     0.65 + 0.2*rng.Float64(),
			MaxStates: 500_000,
		}
		switch i % 3 {
		case 1:
			opts.MaxRunLength = 1 + rng.Intn(3)
		case 2:
			opts.FunnelFactor = 1.1 + 0.4*rng.Float64()
		}
		i := i
		t.Run(fmt.Sprintf("case=%d", i), func(t *testing.T) {
			s, err := gen.HGRIDScenario(p.Region.Name, p)
			if err != nil {
				t.Fatalf("generating fabric: %v", err)
			}
			if exerciseFabric(t, s.Task, opts) {
				feasible++
			}
		})
	}
	if feasible == 0 {
		t.Error("every random fabric infeasible; the differential exercised nothing")
	}
}
