package audit

import (
	"fmt"
	"sync"

	"klotski/internal/migration"
	"klotski/internal/routing"
	"klotski/internal/topo"
)

// This file implements the incremental + parallel replay engine — the cheap
// audit of ROADMAP item 3. The serial engine in audit.go re-evaluates every
// boundary state from scratch: one full placement per boundary, which costs
// 40-50% of the whole planning run on top of every plan. The incremental
// engine replays the same boundary states but:
//
//   - evaluates consecutive boundaries with routing.EvaluateDelta, reusing
//     the evaluator's per-destination-group memo across boundaries instead
//     of recomputing every group's placement each time;
//   - optionally splits the boundary list across worker lanes, each lane
//     replaying its contiguous segment on its own fresh view and evaluator;
//   - counts datacenter occupancy with a reused dense scratch instead of a
//     fresh map per boundary.
//
// Independence is preserved. The auditor still builds its own topo.View and
// its own routing evaluator, still re-derives boundary positions, funneling
// circuits, and occupancy directly from the task definition, and still
// shares no code or state with internal/core (which this package does not
// import). What it reuses is routing's incremental engine — the same
// evaluation library the serial auditor already trusts for classic checks —
// and EvaluateDelta promises (and the routing differential tests verify)
// results byte-identical to a classic full evaluation. On top of that, this
// engine as a whole is differential-tested byte-identical, Report for
// Report, against the serial auditor across fabrics, tamperings, and worker
// counts; ModeSerial remains the pristine reference path.
//
// Verdict assembly is strictly sequential regardless of worker count: lane
// results are merged in ascending boundary order and the report is
// truncated at the first failing boundary, so StatesChecked, WorstUtil,
// Steps, FailStep, and Reason are exactly what the serial replay produces.

// Mode selects the audit replay engine.
type Mode uint8

const (
	// ModeSerial replays every boundary with a full, from-scratch
	// evaluation — the pristine reference engine.
	ModeSerial Mode = iota

	// ModeIncremental replays boundaries with memo-reusing delta
	// evaluations, optionally across parallel lanes (Config.Workers).
	// Differential-tested byte-identical to ModeSerial.
	ModeIncremental
)

// boundary is one state the replay must audit: the state reached after
// applying seq[:idx], checked before executing block (or -1 at the end).
type boundary struct {
	idx        int
	block      int
	withFunnel bool
	applied    int // absolute executed-action count (demand horizon)
	lastBlock  int // block whose funneling headroom applies; -1 none
}

// boundaryResult is one boundary's evaluation, produced by a lane and
// consumed by the sequential assembly.
type boundaryResult struct {
	res       routing.Result
	viol      routing.Violation
	occOK     bool
	occDC     int
	occN      int
	occBudget int
}

// boundaries enumerates the audited states of seq with exactly the loop
// structure of the serial replay: the initial state, every run boundary
// (type change, or forced MaxRunLength split), and the final state.
func boundaries(task *migration.Task, seq []int, cfg *Config, last migration.ActionType, tail, applied, lastBlock int) []boundary {
	bs := make([]boundary, 0, len(seq)+2)
	next := -1
	if len(seq) > 0 {
		next = seq[0]
	}
	bs = append(bs, boundary{idx: 0, block: next, withFunnel: false, applied: applied, lastBlock: lastBlock})
	for i, id := range seq {
		ty := task.Blocks[id].Type
		b := ty != last ||
			(!cfg.FreeOrder && cfg.MaxRunLength > 0 && tail >= cfg.MaxRunLength)
		if b && last != NoLast {
			bs = append(bs, boundary{idx: i, block: id, withFunnel: true, applied: applied + i, lastBlock: lastBlock})
		}
		if ty != last || b {
			tail = 1
		} else {
			tail++
		}
		last = ty
		lastBlock = id
	}
	bs = append(bs, boundary{idx: len(seq), block: -1, withFunnel: true, applied: applied + len(seq), lastBlock: lastBlock})
	return bs
}

// replayIncremental is the ModeIncremental counterpart of replay. It
// produces a Report byte-identical to the serial engine's.
func replayIncremental(task *migration.Task, seq []int, cfg *Config, rep *Report) {
	theta := cfg.Theta
	if theta <= 0 {
		theta = 0.75
	}

	// Establish the already-executed starting context, mirroring replay.
	last := NoLast
	tail := 0
	applied := 0
	lastBlock := -1
	if cfg.FreeOrder {
		applied = len(cfg.Executed)
		if n := len(cfg.Executed); n > 0 {
			lastBlock = cfg.Executed[n-1]
			last = task.Blocks[lastBlock].Type
		}
	} else if cfg.InitialCounts != nil {
		for _, c := range cfg.InitialCounts {
			applied += c
		}
		last = cfg.InitialLast
		tail = cfg.InitialRunLength
		if last != NoLast && cfg.InitialCounts[last] > 0 {
			lastBlock = task.BlocksOfType(last)[cfg.InitialCounts[last]-1]
		}
	}

	bs := boundaries(task, seq, cfg, last, tail, applied, lastBlock)
	results := make([]boundaryResult, len(bs))

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(bs) {
		workers = len(bs)
	}
	if workers == 1 {
		replayLane(task, seq, cfg, theta, bs, results)
	} else {
		// Contiguous segments, balanced to within one boundary. Each lane
		// re-applies its prefix once and then replays deltas; results land
		// in disjoint slices of the shared results array, so the tasks are
		// order-independent and safe to hand to any runner.
		var tasks []func()
		for w := 0; w < workers; w++ {
			lo := w * len(bs) / workers
			hi := (w + 1) * len(bs) / workers
			if lo == hi {
				continue
			}
			tasks = append(tasks, func() {
				replayLane(task, seq, cfg, theta, bs[lo:hi], results[lo:hi])
			})
		}
		if cfg.Runner != nil {
			cfg.Runner(tasks)
		} else {
			var wg sync.WaitGroup
			wg.Add(len(tasks))
			for _, t := range tasks {
				go func(t func()) {
					defer wg.Done()
					t()
				}(t)
			}
			wg.Wait()
		}
	}

	// Sequential assembly in ascending boundary order: exactly the serial
	// replay's accounting, truncated at the first failing boundary.
	for k := range bs {
		b := &bs[k]
		r := &results[k]
		rep.StatesChecked++
		if r.res.MaxUtil > rep.WorstUtil {
			rep.WorstUtil = r.res.MaxUtil
		}
		step := Step{Index: b.idx, Block: b.block, OK: true, MaxUtil: r.res.MaxUtil}
		if !r.viol.OK() {
			step.OK = false
			step.Violation = r.viol
			rep.Steps = append(rep.Steps, step)
			rep.fail(b.idx, "unsafe state before step %d: %s", b.idx, r.viol)
			return
		}
		if !r.occOK {
			step.OK = false
			step.Detail = fmt.Sprintf("space budget exceeded in DC %d: %d switches present, budget %d", r.occDC, r.occN, r.occBudget)
			rep.Steps = append(rep.Steps, step)
			rep.fail(b.idx, "unsafe state before step %d: %s", b.idx, step.Detail)
			return
		}
		rep.Steps = append(rep.Steps, step)
	}
	rep.Passed = true
}

// replayLane evaluates one contiguous run of boundaries on a fresh view and
// a fresh evaluator: it applies the executed prefix plus every sequence step
// preceding its first boundary, then walks its boundaries in order, feeding
// each inter-boundary block delta to the memo-reusing evaluator.
func replayLane(task *migration.Task, seq []int, cfg *Config, theta float64, bs []boundary, results []boundaryResult) {
	view := task.Topo.NewView()
	eval := routing.NewEvaluator(task.Topo)

	if cfg.FreeOrder {
		for _, id := range cfg.Executed {
			task.Apply(view, id)
		}
	} else if cfg.InitialCounts != nil {
		for ty, c := range cfg.InitialCounts {
			for _, id := range task.BlocksOfType(migration.ActionType(ty))[:c] {
				task.Apply(view, id)
			}
		}
	}
	view.Track()

	occ := newOccScratch(task, cfg.SpaceBudget)
	var xsw []topo.SwitchID
	var xck []topo.CircuitID
	pos := 0
	for k := range bs {
		b := &bs[k]
		for ; pos < b.idx; pos++ {
			task.Apply(view, seq[pos])
		}
		// Close the raw touched set over circuit/switch incidence, as
		// CheckDelta's invalidation rule requires (see ExpandTouched); the
		// buffers are lane-local and reused across boundaries.
		tsw, tck := view.TakeTouched()
		xsw, xck = xsw[:0], xck[:0]
		xsw = append(xsw, tsw...)
		xck = append(xck, tck...)
		for _, s := range tsw {
			xck = append(xck, task.Topo.Switch(s).Circuits()...)
		}
		for _, c := range xck {
			cc := task.Topo.Circuit(c)
			xsw = append(xsw, cc.A, cc.B)
		}

		copts := routing.CheckOpts{Theta: theta, Split: cfg.Split,
			DemandScale: task.Forecast.ScaleAt(b.applied)}
		if b.withFunnel && !cfg.FreeOrder && cfg.FunnelFactor > 1 && b.lastBlock >= 0 {
			copts.FunnelFactor = cfg.FunnelFactor
			copts.FunnelCircuits = funnelCircuits(task, b.lastBlock)
		}
		r := &results[k]
		r.res, r.viol = eval.EvaluateDelta(view, xsw, xck, &task.Demands, copts)
		r.occDC, r.occN, r.occBudget, r.occOK = occ.check(task, view)
	}
}

// occScratch counts per-DC switch presence with a reused map, replicating
// occupancyOK's first-offender semantics without a fresh allocation per
// boundary.
type occScratch struct {
	budget  map[int]int
	present map[int]int
}

func newOccScratch(task *migration.Task, budget map[int]int) *occScratch {
	if len(budget) == 0 {
		return &occScratch{}
	}
	return &occScratch{budget: budget, present: make(map[int]int, len(budget)+1)}
}

// check mirrors occupancyOK: count active switches per DC from the view,
// then report the first over-budget DC in ascending switch order.
func (o *occScratch) check(task *migration.Task, view *topo.View) (dc, n, limit int, ok bool) {
	if len(o.budget) == 0 {
		return 0, 0, 0, true
	}
	for k := range o.present {
		delete(o.present, k)
	}
	for i := 0; i < task.Topo.NumSwitches(); i++ {
		if view.SwitchActive(topo.SwitchID(i)) {
			o.present[task.Topo.Switch(topo.SwitchID(i)).DC]++
		}
	}
	for i := 0; i < task.Topo.NumSwitches(); i++ {
		d := task.Topo.Switch(topo.SwitchID(i)).DC
		if b, capped := o.budget[d]; capped && b > 0 && o.present[d] > b {
			return d, o.present[d], b, false
		}
	}
	return 0, 0, 0, true
}
