package audit

import (
	"strings"
	"testing"

	"klotski/internal/demand"
	"klotski/internal/migration"
	"klotski/internal/obs"
	"klotski/internal/topo"
)

// bridgeTask builds the same migration microcosm the core tests use: nOld
// active and nNew inactive parallel bridges between src and dst, with one
// demand. Draining an old bridge and undraining a new one are the two
// action types.
func bridgeTask(t testing.TB, nOld, nNew int, oldCap, newCap, rate float64) *migration.Task {
	t.Helper()
	tp := topo.New("bridges")
	src := tp.AddSwitch(topo.Switch{Name: "src", Role: topo.RoleRSW})
	dst := tp.AddSwitch(topo.Switch{Name: "dst", Role: topo.RoleEBB})
	task := &migration.Task{Name: "bridges", Topo: tp}
	d := task.AddType(migration.ActionTypeInfo{Name: "drain-old", Op: migration.Drain, Role: topo.RoleFADU})
	u := task.AddType(migration.ActionTypeInfo{Name: "undrain-new", Op: migration.Undrain, Role: topo.RoleFADU})
	for i := 0; i < nOld; i++ {
		s := tp.AddSwitch(topo.Switch{Name: "old" + string(rune('a'+i)), Role: topo.RoleFADU, Generation: 1})
		tp.AddCircuit(src, s, oldCap)
		tp.AddCircuit(s, dst, oldCap)
		task.AddBlock(migration.Block{Type: d, Switches: []topo.SwitchID{s}})
	}
	for i := 0; i < nNew; i++ {
		s := tp.AddSwitch(topo.Switch{Name: "new" + string(rune('a'+i)), Role: topo.RoleFADU, Generation: 2})
		tp.SetSwitchActive(s, false)
		tp.AddCircuit(src, s, newCap)
		tp.AddCircuit(s, dst, newCap)
		task.AddBlock(migration.Block{Type: u, Switches: []topo.SwitchID{s}})
	}
	task.Demands.Add(demand.Demand{Name: "d", Src: src, Dst: dst, Rate: rate})
	return task
}

// safeSeq is the undrain-first full migration: [new..., old...] block IDs.
func safeSeq(task *migration.Task) []int {
	var seq []int
	seq = append(seq, task.BlocksOfType(1)...) // undrain-new
	seq = append(seq, task.BlocksOfType(0)...) // drain-old
	return seq
}

func TestVerifyPassesSafePlan(t *testing.T) {
	task := bridgeTask(t, 2, 2, 100, 100, 150)
	rep, err := Verify(task, safeSeq(task), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("safe plan failed audit: %s", rep)
	}
	if rep.FailStep != -1 || rep.Reason != "" {
		t.Errorf("passing report carries failure fields: %+v", rep)
	}
	// Initial state, the undrain→drain boundary, and the final state.
	if rep.StatesChecked != 3 || len(rep.Steps) != 3 {
		t.Errorf("states checked = %d, steps = %d, want 3 each", rep.StatesChecked, len(rep.Steps))
	}
	if rep.WorstUtil <= 0 {
		t.Errorf("worst utilization not recorded: %v", rep.WorstUtil)
	}
}

func TestVerifyDetectsUnsafeBoundary(t *testing.T) {
	// Draining both old bridges before any new capacity is up makes the
	// demand unreachable at the drain→undrain boundary.
	task := bridgeTask(t, 2, 2, 100, 100, 150)
	seq := append(append([]int{}, task.BlocksOfType(0)...), task.BlocksOfType(1)...)
	rep, err := Verify(task, seq, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("unsafe plan passed audit")
	}
	if rep.FailStep != 2 {
		t.Errorf("FailStep = %d, want 2 (the boundary entered after both drains)", rep.FailStep)
	}
	if !strings.Contains(rep.Reason, "unsafe state") {
		t.Errorf("reason: %s", rep.Reason)
	}
	lastStep := rep.Steps[len(rep.Steps)-1]
	if lastStep.OK || lastStep.Violation.OK() {
		t.Errorf("failing step not recorded: %+v", lastStep)
	}
}

func TestVerifyDetectsReorderedAction(t *testing.T) {
	task := bridgeTask(t, 2, 2, 100, 100, 150)
	seq := safeSeq(task)
	seq[0], seq[1] = seq[1], seq[0] // same type, out of canonical order
	rep, err := Verify(task, seq, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("reordered plan passed canonical audit")
	}
	if rep.FailStep != 0 || !strings.Contains(rep.Reason, "reordered") {
		t.Errorf("FailStep = %d, reason %q; want step 0, reordered", rep.FailStep, rep.Reason)
	}

	// The same sequence is legitimate for a free-order planner.
	rep, err = Verify(task, seq, Config{FreeOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("free-order audit rejected a safe reordering: %s", rep)
	}
}

func TestVerifyDetectsInjectedAction(t *testing.T) {
	task := bridgeTask(t, 2, 2, 100, 100, 150)
	seq := safeSeq(task)
	seq = append(seq[:3:3], append([]int{seq[0]}, seq[3:]...)...) // re-inject an executed block
	rep, err := Verify(task, seq, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("injected duplicate passed audit")
	}
	if rep.FailStep != 3 || !strings.Contains(rep.Reason, "injected") {
		t.Errorf("FailStep = %d, reason %q; want step 3, injected", rep.FailStep, rep.Reason)
	}
}

func TestVerifyDetectsDroppedAction(t *testing.T) {
	task := bridgeTask(t, 2, 2, 100, 100, 150)
	seq := safeSeq(task)
	short := seq[:len(seq)-1]
	rep, err := Verify(task, short, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("incomplete plan passed audit")
	}
	if rep.FailStep != len(short) || !strings.Contains(rep.Reason, "dropped") {
		t.Errorf("FailStep = %d, reason %q; want %d, dropped", rep.FailStep, rep.Reason, len(short))
	}

	// The same prefix is a legitimate checkpoint under AllowPartial.
	rep, err = Verify(task, short, Config{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("partial audit rejected a safe prefix: %s", rep)
	}
}

func TestVerifyResumedCanonical(t *testing.T) {
	task := bridgeTask(t, 2, 2, 100, 100, 150)
	seq := safeSeq(task)
	counts := []int{0, 2} // both undrains executed
	rep, err := Verify(task, seq[2:], Config{
		InitialCounts: counts,
		InitialLast:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("resumed audit failed: %s", rep)
	}
}

func TestVerifySpaceBudget(t *testing.T) {
	task := bridgeTask(t, 2, 2, 100, 100, 150)
	// All switches live in DC 0; initially 4 are active (src, dst, 2 old).
	// Undraining before draining peaks at 6; a budget of 5 makes the
	// undrain-first plan's boundary unsafe.
	budget := map[int]int{0: 5}
	rep, err := Verify(task, safeSeq(task), Config{SpaceBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("space-budget violation passed audit")
	}
	if !strings.Contains(rep.Reason, "space budget") {
		t.Errorf("reason: %s", rep.Reason)
	}
	// A looser budget admits the same plan.
	rep, err = Verify(task, safeSeq(task), Config{SpaceBudget: map[int]int{0: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("plan within budget failed: %s", rep)
	}
}

func TestVerifyMaxRunLengthBoundaries(t *testing.T) {
	task := bridgeTask(t, 3, 3, 100, 100, 150)
	rep, err := Verify(task, safeSeq(task), Config{MaxRunLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("capped-run plan failed: %s", rep)
	}
	// Initial + forced split inside each 3-run + the type change + final:
	// runs [2,1][2,1] → boundaries before steps 2, 3, 5 plus ends = 5.
	if rep.StatesChecked != 5 {
		t.Errorf("states checked = %d, want 5 under MaxRunLength=2", rep.StatesChecked)
	}
}

func TestVerifyRecorderCounters(t *testing.T) {
	task := bridgeTask(t, 2, 2, 100, 100, 150)
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg)

	if _, err := Verify(task, safeSeq(task), Config{Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	bad := append(append([]int{}, task.BlocksOfType(0)...), task.BlocksOfType(1)...)
	if _, err := Verify(task, bad, Config{Recorder: rec}); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters[obs.MetricAuditSteps]; got < 4 {
		t.Errorf("%s = %d, want >= 4", obs.MetricAuditSteps, got)
	}
	if got := snap.Counters[obs.MetricAuditFailures]; got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricAuditFailures, got)
	}
}

func TestVerifyRejectsMalformedInputs(t *testing.T) {
	task := bridgeTask(t, 1, 1, 100, 100, 50)
	if _, err := Verify(nil, nil, Config{}); err == nil {
		t.Error("nil task accepted")
	}
	if _, err := Verify(task, nil, Config{Theta: 1.5}); err == nil {
		t.Error("Theta > 1 accepted")
	}
	if _, err := Verify(task, nil, Config{InitialCounts: []int{1}}); err == nil {
		t.Error("short InitialCounts accepted")
	}
	rep, err := Verify(task, []int{99}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed || !strings.Contains(rep.Reason, "invalid block") {
		t.Errorf("out-of-range block: %s", rep)
	}
}
