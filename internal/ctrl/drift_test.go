package ctrl

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"klotski/internal/core"
	"klotski/internal/demand"
	"klotski/internal/sim"
)

// TestRunDriftReplansOnGrowth: organic demand growth is invisible to the
// epoch channel (the network does not "fail", traffic just grows), so only
// the telemetry loop can catch it. With a drift threshold set, the
// controller must observe the growth, replan, and still finish with zero
// boundary violations.
func TestRunDriftReplansOnGrowth(t *testing.T) {
	task, _ := loopTask(t)
	world := sim.NewWorld(task, nil, 1)
	world.SetDemandGrowth(0.02) // +2% per applied action, epoch never moves
	out, err := Run(context.Background(), task, world, Options{
		Sleep:          noSleep,
		Seed:           1,
		DriftThreshold: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatal("drifting run should complete")
	}
	if out.DriftReplans == 0 {
		t.Fatal("sustained growth above the threshold never triggered a drift replan")
	}
	if out.Replans < out.DriftReplans {
		t.Fatalf("drift replans (%d) must be included in replans (%d)", out.DriftReplans, out.Replans)
	}
	if out.TelemetryFaults != 0 || out.DegradedRuns != 0 {
		t.Fatalf("clean telemetry should not count faults (%d) or degraded runs (%d)",
			out.TelemetryFaults, out.DegradedRuns)
	}
	if out.BoundaryViolations != 0 {
		t.Fatalf("controller let %d unsafe boundary states onto the live network", out.BoundaryViolations)
	}
	if err := core.ValidateSequence(task, out.Executed, nil); err != nil {
		t.Fatalf("executed order invalid: %v", err)
	}
}

// TestRunDriftDisabledIgnoresTelemetry: with DriftThreshold unset the
// observation loop must stay off — no telemetry reads, no drift counters —
// preserving pre-drift behavior exactly.
func TestRunDriftDisabledIgnoresTelemetry(t *testing.T) {
	task, _ := loopTask(t)
	world := sim.NewWorld(task, sim.Schedule{
		{Step: 0, Kind: sim.FaultTelemetryDrop, Steps: 100},
	}, 1)
	out, err := Run(context.Background(), task, world, Options{Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatal("run should complete")
	}
	if out.DriftReplans+out.TelemetryFaults+out.DegradedRuns != 0 {
		t.Fatalf("drift loop off but counters moved: %+v", out)
	}
}

// TestRunTelemetryLossDegrades: when every observation is dropped, the
// controller must not stall and must not trust garbage — it degrades to
// planning against the inflated-demand envelope and still completes.
func TestRunTelemetryLossDegrades(t *testing.T) {
	task, _ := loopTask(t)
	world := sim.NewWorld(task, sim.Schedule{
		{Step: 0, Kind: sim.FaultTelemetryDrop, Steps: 1000},
	}, 1)
	out, err := Run(context.Background(), task, world, Options{
		Sleep:          noSleep,
		Seed:           1,
		DriftThreshold: 0.05,
		DemandMargin:   1.2, // 120 × 1.2 = 144 stays plannable on this fabric
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatal("telemetry loss must degrade, not stall: run should complete")
	}
	if out.TelemetryFaults == 0 {
		t.Fatal("dropped observations were not counted")
	}
	if out.DegradedRuns == 0 {
		t.Fatal("runs executed blind were not counted as degraded")
	}
	if out.BoundaryViolations != 0 {
		t.Fatalf("degraded mode let %d unsafe boundary states through", out.BoundaryViolations)
	}
}

// TestRunCorruptTelemetryRejected: corrupt samples (NaN, negative, wildly
// inflated rates) must fail the sanity checks and push the controller into
// degraded mode rather than poisoning the planner's demand model.
func TestRunCorruptTelemetryRejected(t *testing.T) {
	task, _ := loopTask(t)
	world := sim.NewWorld(task, sim.Schedule{
		{Step: 0, Kind: sim.FaultTelemetryCorrupt, Steps: 1000},
	}, 3)
	out, err := Run(context.Background(), task, world, Options{
		Sleep:          noSleep,
		Seed:           3,
		DriftThreshold: 0.05,
		DemandMargin:   1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatal("corrupt telemetry must not stall the migration")
	}
	if out.TelemetryFaults == 0 {
		t.Fatal("corrupt observations passed the sanity checks")
	}
	if out.BoundaryViolations != 0 {
		t.Fatalf("%d boundary violations", out.BoundaryViolations)
	}
}

// TestRunDriftReplanBudgetExhausted: drift and environment replans share
// one MaxReplans budget; when a hostile world outruns it, the controller
// must surface the exhaustion error instead of looping.
func TestRunReplanBudgetExhausted(t *testing.T) {
	task, _ := loopTask(t)
	world := sim.NewWorld(task, sim.Schedule{
		{Step: 1, Kind: sim.FaultSurge, Surge: &demand.Surge{Fraction: 1, Multiplier: 1.01}},
		{Step: 3, Kind: sim.FaultSurge, Surge: &demand.Surge{Fraction: 1, Multiplier: 1.01}},
	}, 1)
	out, err := Run(context.Background(), task, world, Options{
		Sleep:      noSleep,
		MaxReplans: 1,
	})
	if err == nil {
		t.Fatal("second epoch change with a budget of 1 should error out")
	}
	if !strings.Contains(err.Error(), "replan budget (1) exhausted") {
		t.Fatalf("error should cite the exhausted budget: %v", err)
	}
	if out.Completed {
		t.Fatal("budget-exhausted run must not report completion")
	}
}

// TestRunWatchdogBackoffDeterministic: the telemetry watchdog and the
// action-retry loop share one rng seeded from Options.Seed, so two
// identical runs must sleep the exact same durations in the same order —
// the reproducibility contract chaos campaigns rely on.
func TestRunWatchdogBackoffDeterministic(t *testing.T) {
	run := func() []time.Duration {
		task, _ := loopTask(t)
		world := sim.NewWorld(task, sim.Schedule{
			{Step: 0, Kind: sim.FaultTelemetryDrop, Steps: 4},
			{Step: 2, Kind: sim.FaultTransient, Attempts: 2},
		}, 42)
		var sleeps []time.Duration
		_, err := Run(context.Background(), task, world, Options{
			Sleep:          func(d time.Duration) { sleeps = append(sleeps, d) },
			Seed:           42,
			DriftThreshold: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sleeps
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("schedule should force at least one backoff sleep")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("backoff timing not reproducible:\n  run1: %v\n  run2: %v", a, b)
	}
}

// TestCampaignDriftChaos is the acceptance campaign for the drift loop:
// random fault trains drawing surges (some transient) plus telemetry
// stale/drop/corrupt faults, executed with drift-aware replanning. Every
// executed plan is audit-gated by the controller, and no run may let an
// unsafe boundary state onto the live network.
func TestCampaignDriftChaos(t *testing.T) {
	task, _ := loopTask(t)
	rep, err := Campaign(context.Background(), task, CampaignOptions{
		Seeds: 8,
		Seed:  500,
		Schedule: sim.ScheduleOptions{
			Faults:     4,
			Telemetry:  true,
			SurgeSteps: 2,
		},
		Run: Options{
			DriftThreshold: 0.05,
			DemandMargin:   1.2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BoundaryViolations != 0 {
		t.Fatalf("campaign observed %d boundary violations", rep.BoundaryViolations)
	}
	if rep.CompletionRate < 0.5 {
		t.Fatalf("completion rate %.2f suspiciously low; failed seeds %v",
			rep.CompletionRate, rep.FailedSeeds)
	}
	if rep.Completed+len(rep.FailedSeeds) != rep.Seeds {
		t.Errorf("accounting mismatch: %d completed + %d failed != %d seeds",
			rep.Completed, len(rep.FailedSeeds), rep.Seeds)
	}
	if rep.TelemetryFaults == 0 {
		t.Error("telemetry fault trains drew no observation faults across 8 seeds")
	}
	if !strings.Contains(rep.String(), "telemetry faults") {
		t.Errorf("report should surface drift counters: %s", rep)
	}
}

// TestCampaignDriftChaosDeterministic: the same drift campaign run twice
// must produce byte-identical reports — seeds fully determine fault
// trains, watchdog retries, and replan decisions.
func TestCampaignDriftChaosDeterministic(t *testing.T) {
	task, _ := loopTask(t)
	campaign := func() *CampaignReport {
		rep, err := Campaign(context.Background(), task, CampaignOptions{
			Seeds:    4,
			Seed:     900,
			Schedule: sim.ScheduleOptions{Faults: 4, Telemetry: true, SurgeSteps: 2},
			Run:      Options{DriftThreshold: 0.05, DemandMargin: 1.2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := campaign(), campaign()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("campaign not reproducible:\n  run1: %+v\n  run2: %+v", a, b)
	}
}

// errTelemetryIsMatchable pins the sentinel's errors.Is contract.
func TestErrTelemetryMatchable(t *testing.T) {
	task, _ := loopTask(t)
	world := sim.NewWorld(task, sim.Schedule{
		{Step: 0, Kind: sim.FaultTelemetryDrop, Steps: 1},
	}, 1)
	world.Poll()
	if _, err := world.ObserveDemands(); !errors.Is(err, sim.ErrTelemetry) {
		t.Fatalf("dropped observation should match ErrTelemetry, got %v", err)
	}
}
