// Package ctrl closes the loop the planner opens: it executes an audited
// migration plan against a live (simulated) network, observing the real
// topology and demand after every action, retrying transient operation
// failures with capped exponential backoff, and replanning the remainder
// when the environment drifts out from under the plan — the operational
// practices of paper §7.2 ("failures during operation duration",
// "simultaneous operations", "unexpected traffic surge") as an executable
// controller rather than prose.
//
// Every action is journaled to a crash-safe write-ahead log before and
// after it runs, so a controller crash loses at most the in-flight action
// — and drain/undrain operations are idempotent, so replaying that action
// on restart is harmless.
package ctrl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// Entry is one journal record. Op "begin" is written before an action is
// issued to the network, "done" after it is observed complete; "replan"
// marks a replanning decision so post-mortems can see why the executed
// order diverged from the original plan.
type Entry struct {
	Seq     int    `json:"seq"`               // index in the overall executed order
	Op      string `json:"op"`                // "begin" | "done" | "replan"
	Block   int    `json:"block"`             // block ID (begin/done)
	Name    string `json:"name,omitempty"`    // block name, for human readers
	Attempt int    `json:"attempt,omitempty"` // retry attempt that succeeded
	Detail  string `json:"detail,omitempty"`  // replan reason
}

// Journal is a write-ahead log of executed actions: JSON lines, fsynced
// per append. It tolerates a truncated final line on read — the signature
// of a crash mid-write — by ignoring it.
type Journal struct {
	path    string
	f       *os.File
	entries []Entry
}

// NewJournal creates (or truncates) a journal at path.
func NewJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ctrl: creating journal: %w", err)
	}
	return &Journal{path: path, f: f}, nil
}

// OpenJournal opens an existing journal for crash recovery: prior entries
// are replayed (a truncated tail line is dropped) and new appends go to
// the end.
func OpenJournal(path string) (*Journal, error) {
	entries, err := ReadJournal(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ctrl: opening journal: %w", err)
	}
	return &Journal{path: path, f: f, entries: entries}, nil
}

// ReadJournal reads a journal file without opening it for appends. A
// malformed or truncated final line is tolerated (crash mid-append);
// malformed lines elsewhere are an error.
func ReadJournal(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ctrl: reading journal: %w", err)
	}
	defer f.Close()
	var entries []Entry
	sc := bufio.NewScanner(f)
	var pendingErr error
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// The malformed line was not the last one: real corruption.
			return nil, pendingErr
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			pendingErr = fmt.Errorf("ctrl: corrupt journal line %d: %w", len(entries)+1, err)
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ctrl: reading journal: %w", err)
	}
	return entries, nil
}

// Append writes one entry and syncs it to stable storage before returning.
func (j *Journal) Append(e Entry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("ctrl: encoding journal entry: %w", err)
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("ctrl: appending journal entry: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ctrl: syncing journal: %w", err)
	}
	j.entries = append(j.entries, e)
	return nil
}

// Entries returns a copy of the journal's records.
func (j *Journal) Entries() []Entry {
	return append([]Entry(nil), j.entries...)
}

// CommittedPrefix returns the block IDs whose execution is journaled as
// complete ("done"), in execution order. A trailing "begin" without a
// "done" is the in-flight action at crash time; it is NOT included — the
// restarted controller re-issues it (idempotent).
func (j *Journal) CommittedPrefix() []int {
	var prefix []int
	for _, e := range j.entries {
		if e.Op == "done" {
			prefix = append(prefix, e.Block)
		}
	}
	return prefix
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
